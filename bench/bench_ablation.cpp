// Ablation study over OptChain's design choices (DESIGN.md §4):
//   - L2S weight: 0 (pure T2S) vs 0.01 (paper) vs 0.1
//   - T2S divisor policy: current spenders (paper-literal) vs declared outputs
//   - Greedy tie-break: first-shard (paper-literal) vs smallest-shard
//   - Cross-shard protocol: OmniLedger client-driven vs RapidChain yanking
//   - LeastLoaded strawman: temporal balance without affinity
// Each row reports cross-TX fraction, avg/max latency, and throughput under
// the Fig. 3 simulation at a stressed operating point.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench_common.hpp"
#include "core/optchain_placer.hpp"
#include "placement/greedy_placer.hpp"
#include "placement/least_loaded_placer.hpp"

int main(int argc, char** argv) {
  using namespace optchain;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto rate = static_cast<double>(flags.get_int("rate", 4000));
  const auto k = static_cast<std::uint32_t>(flags.get_int("k", 8));
  const std::size_t n = bench::stream_size(flags, rate, 60.0);

  bench::print_header(
      "Ablation — OptChain design choices",
      "DESIGN.md §4 (not a paper figure)",
      "rate x issue window (--issue_seconds, default 60 s; or --txs=N)");
  std::printf("operating point: %u shards, %.0f tps\n\n", k, rate);

  const auto txs = bench::make_stream(n, seed);
  const std::span<const tx::Transaction> all(txs);

  // Custom placer configurations enter through the pipeline's factory
  // constructor; named line-up methods come from the registry as usual.
  struct Variant {
    std::string label;
    std::function<api::PlacementPipeline()> make;
    sim::ProtocolMode protocol = sim::ProtocolMode::kOmniLedger;
  };

  const auto outputs_of = [&all](tx::TxIndex index) -> std::uint32_t {
    return static_cast<std::uint32_t>(all[index].outputs.size());
  };

  std::vector<Variant> variants;
  variants.push_back({"OptChain (weight 0.01, paper)", [&] {
                        return bench::make_method("OptChain", all, k, seed);
                      }});
  variants.push_back({"T2S only (weight 0)", [&] {
                        return bench::make_method("T2S", all, k, seed);
                      }});
  variants.push_back({"OptChain (weight 0.1)", [&] {
                        return api::PlacementPipeline(
                            k, [](const graph::TanDag& dag) {
                              core::OptChainConfig config;
                              config.l2s_weight = 0.1;
                              return std::make_unique<core::OptChainPlacer>(
                                  dag, config, "OptChain-w0.1");
                            });
                      }});
  variants.push_back({"OptChain (declared-outputs divisor)", [&] {
                        return api::PlacementPipeline(
                            k, [&outputs_of](const graph::TanDag& dag) {
                              core::OptChainConfig config;
                              config.t2s.divisor =
                                  core::DivisorPolicy::kDeclaredOutputs;
                              return std::make_unique<core::OptChainPlacer>(
                                  dag, config, "OptChain-outdiv", outputs_of);
                            });
                      }});
  variants.push_back({"OptChain over RapidChain yanking",
                      [&] {
                        return bench::make_method("OptChain", all, k, seed);
                      },
                      sim::ProtocolMode::kRapidChain});
  variants.push_back({"Greedy (first-shard ties, paper)", [&] {
                        return bench::make_method("Greedy", all, k, seed);
                      }});
  variants.push_back({"Greedy (smallest-shard ties)", [&] {
                        return api::PlacementPipeline(
                            k, std::make_unique<placement::GreedyPlacer>(
                                   all.size(), 0.1,
                                   placement::GreedyTieBreak::kSmallestShard));
                      }});
  variants.push_back({"LeastLoaded (balance only)", [&] {
                        return bench::make_method("LeastLoaded", all, k, seed);
                      }});

  TextTable table({"variant", "cross-TX", "avg latency(s)", "max latency(s)",
                   "throughput(tps)"});
  for (auto& variant : variants) {
    api::PlacementPipeline method = variant.make();
    const auto result = bench::run_sim(all, method, rate, variant.protocol);
    table.add_row({variant.label,
                   TextTable::fmt_percent(result.cross_fraction(), 1),
                   TextTable::fmt(result.avg_latency_s, 1),
                   TextTable::fmt(result.max_latency_s, 1),
                   TextTable::fmt(result.throughput_tps, 0)});
  }
  table.print();
  bench::maybe_save_csv(flags, "ablation", table);

  // Fault injection: a chronically slow shard, with and without OptChain's
  // L2S routing (hash placement cannot react).
  std::printf("\n-- failure injection: shard 0 running 6x slow --\n");
  TextTable fault_table({"variant", "share of txs in slow shard",
                         "avg latency(s)", "throughput(tps)"});
  for (const char* name : {"OptChain", "OmniLedger"}) {
    auto method = bench::make_method(name, all, k, seed);
    sim::SimConfig config;
    config.num_shards = k;
    config.tx_rate_tps = rate;
    config.shard_slowdown = {6.0};
    sim::Simulation simulation(config);
    const auto result = simulation.run(all, method);
    const double share =
        static_cast<double>(result.final_shard_sizes[0]) /
        static_cast<double>(all.size());
    fault_table.add_row({name, TextTable::fmt_percent(share, 1),
                         TextTable::fmt(result.avg_latency_s, 1),
                         TextTable::fmt(result.throughput_tps, 0)});
  }
  fault_table.print();
  std::printf("(uniform share would be %.1f %%)\n", 100.0 / k);
  return 0;
}

// Ablation study over OptChain's design choices (DESIGN.md §4):
//   - L2S weight: 0 (pure T2S) vs 0.01 (paper) vs 0.1
//   - T2S divisor policy: current spenders (paper-literal) vs declared outputs
//   - Greedy tie-break: first-shard (paper-literal) vs smallest-shard
//   - Cross-shard protocol: OmniLedger client-driven vs RapidChain yanking
//   - LeastLoaded strawman: temporal balance without affinity
// Each row reports cross-TX fraction, avg/max latency, and throughput under
// the Fig. 3 simulation at a stressed operating point.
#include <cstdio>
#include <functional>

#include "bench_common.hpp"
#include "placement/greedy_placer.hpp"
#include "placement/least_loaded_placer.hpp"

int main(int argc, char** argv) {
  using namespace optchain;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto rate = static_cast<double>(flags.get_int("rate", 4000));
  const auto k = static_cast<std::uint32_t>(flags.get_int("k", 8));
  const std::size_t n = bench::stream_size(flags, rate, 60.0);

  bench::print_header(
      "Ablation — OptChain design choices",
      "DESIGN.md §4 (not a paper figure)",
      "rate x issue window (--issue_seconds, default 60 s; or --txs=N)");
  std::printf("operating point: %u shards, %.0f tps\n\n", k, rate);

  const auto txs = bench::make_stream(n, seed);
  const std::span<const tx::Transaction> all(txs);

  struct Variant {
    std::string label;
    std::function<bench::Method()> make;
    sim::ProtocolMode protocol = sim::ProtocolMode::kOmniLedger;
  };

  const auto outputs_of = [&all](tx::TxIndex index) -> std::uint32_t {
    return static_cast<std::uint32_t>(all[index].outputs.size());
  };

  std::vector<Variant> variants;
  variants.push_back({"OptChain (weight 0.01, paper)", [&] {
                        bench::Method m;
                        m.name = "OptChain";
                        m.placer = std::make_unique<core::OptChainPlacer>(
                            m.dag, core::OptChainConfig{});
                        return m;
                      }});
  variants.push_back({"T2S only (weight 0)", [&] {
                        bench::Method m;
                        m.name = "T2S";
                        core::OptChainConfig config;
                        config.l2s_weight = 0.0;
                        config.expected_txs = all.size();
                        m.placer = std::make_unique<core::OptChainPlacer>(
                            m.dag, config, "T2S");
                        return m;
                      }});
  variants.push_back({"OptChain (weight 0.1)", [&] {
                        bench::Method m;
                        m.name = "OptChain-w0.1";
                        core::OptChainConfig config;
                        config.l2s_weight = 0.1;
                        m.placer = std::make_unique<core::OptChainPlacer>(
                            m.dag, config, "OptChain-w0.1");
                        return m;
                      }});
  variants.push_back({"OptChain (declared-outputs divisor)", [&] {
                        bench::Method m;
                        m.name = "OptChain-outdiv";
                        core::OptChainConfig config;
                        config.t2s.divisor =
                            core::DivisorPolicy::kDeclaredOutputs;
                        m.placer = std::make_unique<core::OptChainPlacer>(
                            m.dag, config, "OptChain-outdiv", outputs_of);
                        return m;
                      }});
  variants.push_back({"OptChain over RapidChain yanking",
                      [&] {
                        bench::Method m;
                        m.name = "OptChain";
                        m.placer = std::make_unique<core::OptChainPlacer>(
                            m.dag, core::OptChainConfig{});
                        return m;
                      },
                      sim::ProtocolMode::kRapidChain});
  variants.push_back({"Greedy (first-shard ties, paper)", [&] {
                        bench::Method m;
                        m.name = "Greedy";
                        m.placer = std::make_unique<placement::GreedyPlacer>(
                            all.size());
                        return m;
                      }});
  variants.push_back({"Greedy (smallest-shard ties)", [&] {
                        bench::Method m;
                        m.name = "Greedy-smallest";
                        m.placer = std::make_unique<placement::GreedyPlacer>(
                            all.size(), 0.1,
                            placement::GreedyTieBreak::kSmallestShard);
                        return m;
                      }});
  variants.push_back({"LeastLoaded (balance only)", [&] {
                        bench::Method m;
                        m.name = "LeastLoaded";
                        m.placer =
                            std::make_unique<placement::LeastLoadedPlacer>();
                        return m;
                      }});

  TextTable table({"variant", "cross-TX", "avg latency(s)", "max latency(s)",
                   "throughput(tps)"});
  for (auto& variant : variants) {
    bench::Method method = variant.make();
    const auto result = bench::run_sim(all, method, k, rate, variant.protocol);
    table.add_row({variant.label,
                   TextTable::fmt_percent(result.cross_fraction(), 1),
                   TextTable::fmt(result.avg_latency_s, 1),
                   TextTable::fmt(result.max_latency_s, 1),
                   TextTable::fmt(result.throughput_tps, 0)});
  }
  table.print();
  bench::maybe_save_csv(flags, "ablation", table);

  // Fault injection: a chronically slow shard, with and without OptChain's
  // L2S routing (hash placement cannot react).
  std::printf("\n-- failure injection: shard 0 running 6x slow --\n");
  TextTable fault_table({"variant", "share of txs in slow shard",
                         "avg latency(s)", "throughput(tps)"});
  for (const char* name : {"OptChain", "OmniLedger"}) {
    bench::Method method = bench::make_method(name, all, k, seed);
    sim::SimConfig config;
    config.num_shards = k;
    config.tx_rate_tps = rate;
    config.shard_slowdown = {6.0};
    sim::Simulation simulation(config);
    const auto result = simulation.run(all, *method.placer, method.dag);
    const double share =
        static_cast<double>(result.final_shard_sizes[0]) /
        static_cast<double>(all.size());
    fault_table.add_row({name, TextTable::fmt_percent(share, 1),
                         TextTable::fmt(result.avg_latency_s, 1),
                         TextTable::fmt(result.throughput_tps, 0)});
  }
  fault_table.print();
  std::printf("(uniform share would be %.1f %%)\n", 100.0 / k);
  return 0;
}

// Account-model (Ethereum-style) placement study — extension beyond the
// paper's UTXO evaluation, motivated by its related-work discussion of
// Ethereum 2.0 ("each transaction in the account model has only one input
// and one output", §II).
//
// Under the account model the TaN degenerates toward per-account chains, so
// transaction placement faces a different regime: chains never merge, and
// the only cross-pressure comes from transfers between accounts placed in
// different shards. This bench reports Table-I-style cross-TX percentages
// plus a simulation comparison at one operating point.
#include <cstdio>

#include "bench_common.hpp"
#include "placement/greedy_placer.hpp"
#include "placement/random_placer.hpp"
#include "workload/account_workload.hpp"

namespace {

using namespace optchain;

double run_account_placement(std::span<const tx::Transaction> txs,
                             placement::Placer& placer, graph::TanDag& dag,
                             std::uint32_t k) {
  placement::ShardAssignment assignment(k);
  std::uint64_t total = 0, cross = 0;
  for (const auto& t : txs) {
    const auto inputs = t.distinct_input_txs();
    dag.add_node(inputs);
    placement::PlacementRequest request;
    request.index = t.index;
    request.input_txs = inputs;
    request.hash64 = t.txid().low64();
    const auto shard = placer.choose(request, assignment);
    assignment.record(t.index, shard);
    placer.notify_placed(request, shard);
    if (!t.inputs.empty()) {
      ++total;
      cross += assignment.is_cross_shard(inputs, shard);
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(cross) / static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace optchain;
  const Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("txs", 200000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto shard_counts = flags.get_int_list("shards", {4, 8, 16, 32, 64});
  const bool both_deps = flags.get_bool("receiver_dep", false);

  bench::print_header(
      "Account model — cross-TX under Ethereum-style transfers",
      "extension (paper §II related work); Table-I methodology on the "
      "account model",
      std::to_string(n) + " transfers — override with --txs=N");

  workload::AccountWorkloadConfig workload_config;
  if (both_deps) {
    workload_config.dependency =
        workload::AccountDependency::kSenderAndReceiver;
  }
  workload::AccountWorkloadGenerator generator(workload_config, seed);
  const auto txs = generator.generate(n);

  TextTable table({"k", "OptChain(T2S)", "Greedy", "Omniledger"});
  for (const auto k_value : shard_counts) {
    const auto k = static_cast<std::uint32_t>(k_value);
    std::vector<std::string> row{std::to_string(k)};

    {
      graph::TanDag dag;
      core::OptChainConfig config;
      config.l2s_weight = 0.0;
      config.expected_txs = txs.size();
      core::OptChainPlacer placer(dag, config, "T2S");
      row.push_back(
          TextTable::fmt_percent(run_account_placement(txs, placer, dag, k)));
    }
    {
      graph::TanDag dag;
      placement::GreedyPlacer placer(txs.size());
      row.push_back(
          TextTable::fmt_percent(run_account_placement(txs, placer, dag, k)));
    }
    {
      graph::TanDag dag;
      placement::RandomPlacer placer;
      row.push_back(
          TextTable::fmt_percent(run_account_placement(txs, placer, dag, k)));
    }
    table.add_row(std::move(row));
  }
  table.print();
  bench::maybe_save_csv(flags, "account_model", table);

  // One simulated operating point.
  std::printf("\n-- simulation at 8 shards, 3000 tps --\n");
  TextTable sim_table(
      {"method", "cross-TX", "avg latency(s)", "throughput(tps)"});
  for (const char* name : {"OptChain", "OmniLedger"}) {
    bench::Method method = bench::make_method(name, txs, 8, seed);
    const auto result = bench::run_sim(txs, method, 8, 3000.0);
    sim_table.add_row({name, TextTable::fmt_percent(result.cross_fraction()),
                       TextTable::fmt(result.avg_latency_s, 1),
                       TextTable::fmt(result.throughput_tps, 0)});
  }
  sim_table.print();
  return 0;
}

// Account-model (Ethereum-style) placement study — extension beyond the
// paper's UTXO evaluation, motivated by its related-work discussion of
// Ethereum 2.0 ("each transaction in the account model has only one input
// and one output", §II).
//
// Under the account model the TaN degenerates toward per-account chains, so
// transaction placement faces a different regime: chains never merge, and
// the only cross-pressure comes from transfers between accounts placed in
// different shards. This bench reports Table-I-style cross-TX percentages
// plus a simulation comparison at one operating point.
#include <cstdio>

#include "bench_common.hpp"
#include "workload/account_workload.hpp"

namespace {

using namespace optchain;

/// Streams the transfer batch through a registry method; funding (input-less)
/// transactions are excluded from the cross-TX fraction, exactly as coinbase
/// is in the UTXO tables.
double run_account_placement(std::span<const tx::Transaction> txs,
                             const char* method, std::uint32_t k,
                             std::uint64_t seed) {
  auto pipeline = bench::make_method(method, txs, k, seed);
  return pipeline.place_stream(txs).fraction();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace optchain;
  const Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("txs", 200000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto shard_counts = flags.get_int_list("shards", {4, 8, 16, 32, 64});
  const bool both_deps = flags.get_bool("receiver_dep", false);

  bench::print_header(
      "Account model — cross-TX under Ethereum-style transfers",
      "extension (paper §II related work); Table-I methodology on the "
      "account model",
      std::to_string(n) + " transfers — override with --txs=N");

  workload::AccountWorkloadConfig workload_config;
  if (both_deps) {
    workload_config.dependency =
        workload::AccountDependency::kSenderAndReceiver;
  }
  workload::AccountWorkloadGenerator generator(workload_config, seed);
  const auto txs = generator.generate(n);

  TextTable table({"k", "OptChain(T2S)", "Greedy", "Omniledger"});
  for (const auto k_value : shard_counts) {
    const auto k = static_cast<std::uint32_t>(k_value);
    std::vector<std::string> row{std::to_string(k)};

    for (const char* name : {"T2S", "Greedy", "OmniLedger"}) {
      row.push_back(TextTable::fmt_percent(
          run_account_placement(txs, name, k, seed)));
    }
    table.add_row(std::move(row));
  }
  table.print();
  bench::maybe_save_csv(flags, "account_model", table);

  // One simulated operating point.
  std::printf("\n-- simulation at 8 shards, 3000 tps --\n");
  TextTable sim_table(
      {"method", "cross-TX", "avg latency(s)", "throughput(tps)"});
  for (const char* name : {"OptChain", "OmniLedger"}) {
    auto method = bench::make_method(name, txs, 8, seed);
    const auto result = bench::run_sim(txs, method, 3000.0);
    sim_table.add_row({name, TextTable::fmt_percent(result.cross_fraction()),
                       TextTable::fmt(result.avg_latency_s, 1),
                       TextTable::fmt(result.throughput_tps, 0)});
  }
  sim_table.print();
  return 0;
}

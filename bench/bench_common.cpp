#include "bench_common.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace optchain::bench {

void JsonWriter::comma() {
  if (needs_comma_) out_ += ",";
  needs_comma_ = true;
}

void JsonWriter::key(const std::string& name) {
  comma();
  out_ += "\"" + name + "\":";
}

JsonWriter& JsonWriter::field(const std::string& k, const std::string& value) {
  key(k);
  out_ += "\"";
  for (const char c : value) {
    if (c == '"' || c == '\\') {
      out_ += '\\';
      out_ += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char escaped[8];
      std::snprintf(escaped, sizeof(escaped), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out_ += escaped;
    } else {
      out_ += c;
    }
  }
  out_ += "\"";
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& k, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  key(k);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& k, bool value) {
  key(k);
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::begin_object(const std::string& k) {
  key(k);
  out_ += "{";
  needs_comma_ = false;
  ++depth_;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += "}";
  needs_comma_ = true;
  --depth_;
  return *this;
}

std::string JsonWriter::finish() {
  while (depth_ > 0) {
    out_ += "}";
    --depth_;
  }
  return out_;
}

void JsonWriter::save(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << finish() << "\n";
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<tx::Transaction> make_stream(std::size_t n, std::uint64_t seed,
                                         workload::WorkloadConfig config) {
  workload::BitcoinLikeGenerator generator(config, seed);
  return generator.generate(n);
}

std::size_t stream_size(const Flags& flags, double rate_tps,
                        double default_issue_seconds) {
  const std::int64_t fixed = flags.get_int("txs", 0);
  if (fixed > 0) return static_cast<std::size_t>(fixed);
  const double issue_seconds =
      flags.get_double("issue_seconds", default_issue_seconds);
  return static_cast<std::size_t>(rate_tps * issue_seconds);
}

api::PlacementPipeline make_method(const std::string& name,
                                   std::span<const tx::Transaction> txs,
                                   std::uint32_t k, std::uint64_t seed) {
  return api::make_pipeline(name, k, txs, seed);
}

sim::SimResult run_sim(std::span<const tx::Transaction> txs,
                       api::PlacementPipeline& pipeline, double rate_tps,
                       sim::ProtocolMode protocol, double commit_window_s) {
  sim::SimConfig config;
  config.num_shards = pipeline.k();
  config.tx_rate_tps = rate_tps;
  config.protocol = protocol;
  config.commit_window_s = commit_window_s;
  sim::Simulation simulation(config);
  return simulation.run(txs, pipeline);
}

void print_header(const std::string& title, const std::string& paper_ref,
                  const std::string& scale_note) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("scale: %s (paper: 10,000,000 transactions)\n\n",
              scale_note.c_str());
}

void maybe_save_csv(const Flags& flags, const std::string& name,
                    const TextTable& table) {
  const std::string dir = flags.get_string("csv_dir", "");
  if (dir.empty()) return;
  const std::string path = dir + "/" + name + ".csv";
  table.save_csv(path);
  std::printf("(wrote %s)\n", path.c_str());
}

}  // namespace optchain::bench

#include "bench_common.hpp"

#include <cstdio>

namespace optchain::bench {

void print_header(const std::string& title, const std::string& paper_ref,
                  const std::string& scale_note) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("scale: %s (paper: 10,000,000 transactions)\n\n",
              scale_note.c_str());
}

}  // namespace optchain::bench

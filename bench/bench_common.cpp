#include "bench_common.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "placement/greedy_placer.hpp"
#include "placement/least_loaded_placer.hpp"
#include "placement/random_placer.hpp"
#include "placement/static_placer.hpp"
#include "workload/tan_builder.hpp"

namespace optchain::bench {

std::vector<tx::Transaction> make_stream(std::size_t n, std::uint64_t seed,
                                         workload::WorkloadConfig config) {
  workload::BitcoinLikeGenerator generator(config, seed);
  return generator.generate(n);
}

std::size_t stream_size(const Flags& flags, double rate_tps,
                        double default_issue_seconds) {
  const std::int64_t fixed = flags.get_int("txs", 0);
  if (fixed > 0) return static_cast<std::size_t>(fixed);
  const double issue_seconds =
      flags.get_double("issue_seconds", default_issue_seconds);
  return static_cast<std::size_t>(rate_tps * issue_seconds);
}

Method make_method(const std::string& name,
                   std::span<const tx::Transaction> txs, std::uint32_t k,
                   std::uint64_t seed) {
  Method method;
  method.name = name;
  if (name == "OptChain") {
    core::OptChainConfig config;  // paper defaults: α=0.5, weight 0.01
    method.placer = std::make_unique<core::OptChainPlacer>(method.dag, config,
                                                           "OptChain");
  } else if (name == "T2S") {
    core::OptChainConfig config;
    config.l2s_weight = 0.0;
    config.expected_txs = txs.size();  // ε-capped like Greedy (paper §IV.B)
    method.placer =
        std::make_unique<core::OptChainPlacer>(method.dag, config, "T2S");
  } else if (name == "OmniLedger") {
    method.placer = std::make_unique<placement::RandomPlacer>();
  } else if (name == "Greedy") {
    method.placer = std::make_unique<placement::GreedyPlacer>(txs.size());
  } else if (name == "LeastLoaded") {
    method.placer = std::make_unique<placement::LeastLoadedPlacer>();
  } else if (name == "Metis") {
    const graph::TanDag full = workload::build_tan(txs);
    metis::PartitionConfig config;
    config.k = k;
    config.seed = seed;
    method.placer = std::make_unique<placement::StaticPlacer>(
        metis::partition_kway(full.to_undirected(), config), "Metis");
  } else {
    std::fprintf(stderr, "unknown method: %s\n", name.c_str());
    std::abort();
  }
  return method;
}

PlacementOutcome run_placement(std::span<const tx::Transaction> txs,
                               Method& method, std::uint32_t k,
                               std::span<const std::uint32_t> warm_parts) {
  placement::ShardAssignment assignment(k);
  PlacementOutcome outcome;
  for (const auto& transaction : txs) {
    const auto inputs = transaction.distinct_input_txs();
    method.dag.add_node(inputs);

    placement::PlacementRequest request;
    request.index = transaction.index;
    request.input_txs = inputs;
    request.hash64 = transaction.txid().low64();

    // choose() always runs so stateful placers build their score vectors;
    // warm-start transactions then get the precomputed partition.
    placement::ShardId shard = method.placer->choose(request, assignment);
    const bool warm = transaction.index < warm_parts.size();
    if (warm) shard = warm_parts[transaction.index];
    assignment.record(transaction.index, shard);
    method.placer->notify_placed(request, shard);

    if (!warm && !transaction.is_coinbase()) {
      ++outcome.total;
      if (assignment.is_cross_shard(inputs, shard)) ++outcome.cross;
    }
  }
  outcome.shard_sizes = assignment.sizes();
  return outcome;
}

sim::SimResult run_sim(std::span<const tx::Transaction> txs, Method& method,
                       std::uint32_t k, double rate_tps,
                       sim::ProtocolMode protocol, double commit_window_s) {
  sim::SimConfig config;
  config.num_shards = k;
  config.tx_rate_tps = rate_tps;
  config.protocol = protocol;
  config.commit_window_s = commit_window_s;
  sim::Simulation simulation(config);
  return simulation.run(txs, *method.placer, method.dag);
}

void print_header(const std::string& title, const std::string& paper_ref,
                  const std::string& scale_note) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("scale: %s (paper: 10,000,000 transactions)\n\n",
              scale_note.c_str());
}

void maybe_save_csv(const Flags& flags, const std::string& name,
                    const TextTable& table) {
  const std::string dir = flags.get_string("csv_dir", "");
  if (dir.empty()) return;
  const std::string path = dir + "/" + name + ".csv";
  table.save_csv(path);
  std::printf("(wrote %s)\n", path.c_str());
}

}  // namespace optchain::bench

// Shared harness code for the per-table/per-figure benchmark binaries,
// built on the optchain::api layer (PlacerRegistry + PlacementPipeline).
//
// Every binary accepts:
//   --txs=N       stream length (per-bench default; paper scale via flags)
//   --seed=S      workload seed
//   --shards=a,b  shard-count list        --rates=a,b   tx-rate list
// plus bench-specific flags. Output is printed as aligned text tables whose
// rows mirror the paper's tables/figure series.
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "api/placement_pipeline.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "sim/simulation.hpp"
#include "txmodel/transaction.hpp"
#include "workload/bitcoin_like_generator.hpp"

namespace optchain::bench {

/// Minimal ordered JSON emitter for machine-readable bench artifacts
/// (BENCH_*.json): nested objects, string/number/bool fields, no external
/// dependency. Keys are emitted verbatim — callers use plain identifiers.
class JsonWriter {
 public:
  JsonWriter() { out_ = "{"; }

  JsonWriter& field(const std::string& key, const std::string& value);
  JsonWriter& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  JsonWriter& field(const std::string& key, double value);
  JsonWriter& field(const std::string& key, bool value);
  /// One overload for every integer width/signedness, so call sites never
  /// need casts to dodge overload ambiguity.
  JsonWriter& field(const std::string& name,
                    std::integral auto value) requires(
      !std::same_as<decltype(value), bool>) {
    key(name);
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& begin_object(const std::string& key);
  JsonWriter& end_object();

  /// Closes the root object and returns the document.
  std::string finish();

  /// Writes finish() to `path` (with a trailing newline).
  void save(const std::string& path);

 private:
  void comma();
  void key(const std::string& name);

  std::string out_;
  bool needs_comma_ = false;
  int depth_ = 1;
};

/// Names used across the harness, matching the paper's method line-up.
/// All of them (and more) resolve through the api::PlacerRegistry.
inline constexpr const char* kMethods[] = {"OptChain", "OmniLedger", "Metis",
                                           "Greedy"};

/// Builds a fresh pipeline for a registry method name: "OptChain" (full
/// Algorithm 1), "T2S" (no L2S, ε-capped), "OmniLedger" (random), "Greedy",
/// "Metis" (offline partition of the full stream), "LeastLoaded", "Static".
/// `txs` is the full stream (Metis needs it; capacity-capped methods only
/// its length).
api::PlacementPipeline make_method(const std::string& name,
                                   std::span<const tx::Transaction> txs,
                                   std::uint32_t k, std::uint64_t seed = 1);

/// Generates the standard benchmark stream.
std::vector<tx::Transaction> make_stream(std::size_t n, std::uint64_t seed,
                                         workload::WorkloadConfig config = {});

/// Stream length for a rate sweep: --txs=N if given, otherwise
/// rate × --issue_seconds (default `default_issue_seconds`). Keeping the
/// issue window constant across rates equalizes the drain-tail bias in the
/// throughput metric (the paper amortizes it over a 1667 s run).
std::size_t stream_size(const Flags& flags, double rate_tps,
                        double default_issue_seconds = 120.0);

/// Placement-only runs (Tables I-II) stream directly through
/// api::PlacementPipeline::place_stream (warm starts included).

/// Simulation run for one (method, k, rate) cell of the figure grids.
sim::SimResult run_sim(std::span<const tx::Transaction> txs,
                       api::PlacementPipeline& pipeline, double rate_tps,
                       sim::ProtocolMode protocol =
                           sim::ProtocolMode::kOmniLedger,
                       double commit_window_s = 10.0);

/// Prints the standard bench header (what is being reproduced, at what
/// scale) so bench logs are self-describing.
void print_header(const std::string& title, const std::string& paper_ref,
                  const std::string& scale_note);

/// If --csv_dir=<dir> was passed, writes the table to <dir>/<name>.csv
/// (for plotting); otherwise does nothing.
void maybe_save_csv(const Flags& flags, const std::string& name,
                    const TextTable& table);

}  // namespace optchain::bench

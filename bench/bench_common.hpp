// Shared harness code for the benchmark binaries (bench_scale, bench_micro,
// optchain-bench). The per-figure driver scaffolding that used to live here
// (method/stream construction, run_sim, CSV plumbing) is gone: scenarios are
// declarative api::ScenarioSpec grids executed by api::SweepRunner — see
// bench/scenarios.{hpp,cpp} and the optchain-bench tool.
#pragma once

#include <string>

#include "common/flags.hpp"
#include "common/json_writer.hpp"

namespace optchain::bench {

/// The JSON emitter moved to src/common so the SweepReport API can emit it;
/// bench call sites keep the historical name.
using optchain::JsonWriter;

/// Prints the standard bench header (what is being reproduced, at what
/// scale) so bench logs are self-describing.
void print_header(const std::string& title, const std::string& paper_ref,
                  const std::string& scale_note);

}  // namespace optchain::bench

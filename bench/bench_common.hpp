// Shared harness code for the per-table/per-figure benchmark binaries.
//
// Every binary accepts:
//   --txs=N       stream length (per-bench default; paper scale via flags)
//   --seed=S      workload seed
//   --shards=a,b  shard-count list        --rates=a,b   tx-rate list
// plus bench-specific flags. Output is printed as aligned text tables whose
// rows mirror the paper's tables/figure series.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/optchain_placer.hpp"
#include "graph/dag.hpp"
#include "metis/kway_partitioner.hpp"
#include "placement/placer.hpp"
#include "sim/simulation.hpp"
#include "txmodel/transaction.hpp"
#include "workload/bitcoin_like_generator.hpp"

namespace optchain::bench {

/// Names used across the harness, matching the paper's method line-up.
inline constexpr const char* kMethods[] = {"OptChain", "OmniLedger", "Metis",
                                           "Greedy"};

/// A placement method bundled with the TaN DAG it reads (OptChain's scorer
/// holds a reference into it; the driver fills it online).
struct Method {
  std::string name;
  graph::TanDag dag;
  std::unique_ptr<placement::Placer> placer;
};

/// Builds a method by name: "OptChain" (full Algorithm 1), "T2S" (no L2S,
/// ε-capped), "OmniLedger" (random), "Greedy", "Metis" (offline partition of
/// the full stream), "LeastLoaded". `txs` is the full stream (Metis needs
/// it; others only its length).
Method make_method(const std::string& name,
                   std::span<const tx::Transaction> txs, std::uint32_t k,
                   std::uint64_t seed = 1);

/// Generates the standard benchmark stream.
std::vector<tx::Transaction> make_stream(std::size_t n, std::uint64_t seed,
                                         workload::WorkloadConfig config = {});

/// Stream length for a rate sweep: --txs=N if given, otherwise
/// rate × --issue_seconds (default `default_issue_seconds`). Keeping the
/// issue window constant across rates equalizes the drain-tail bias in the
/// throughput metric (the paper amortizes it over a 1667 s run).
std::size_t stream_size(const Flags& flags, double rate_tps,
                        double default_issue_seconds = 120.0);

/// Placement-only outcome (Tables I-II).
struct PlacementOutcome {
  std::uint64_t total = 0;        // non-coinbase transactions considered
  std::uint64_t cross = 0;
  std::vector<std::uint64_t> shard_sizes;

  double fraction() const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(cross) / static_cast<double>(total);
  }
};

/// Streams `txs` through the method. If `warm_parts` is non-empty, the first
/// warm_parts.size() transactions are force-placed per that partition and
/// excluded from the cross-TX count (Table II's warm start).
PlacementOutcome run_placement(std::span<const tx::Transaction> txs,
                               Method& method, std::uint32_t k,
                               std::span<const std::uint32_t> warm_parts = {});

/// Simulation run for one (method, k, rate) cell of the figure grids.
sim::SimResult run_sim(std::span<const tx::Transaction> txs,
                       Method& method, std::uint32_t k, double rate_tps,
                       sim::ProtocolMode protocol =
                           sim::ProtocolMode::kOmniLedger,
                       double commit_window_s = 10.0);

/// Prints the standard bench header (what is being reproduced, at what
/// scale) so bench logs are self-describing.
void print_header(const std::string& title, const std::string& paper_ref,
                  const std::string& scale_note);

/// If --csv_dir=<dir> was passed, writes the table to <dir>/<name>.csv
/// (for plotting); otherwise does nothing.
void maybe_save_csv(const Flags& flags, const std::string& name,
                    const TextTable& table);

}  // namespace optchain::bench

// Fig. 10: "Latency distribution" — the cumulative distribution of
// confirmation latency at 6000 tps, 16 shards. Paper: within 10 s, OptChain
// confirms 70% of transactions vs 41.2% (Greedy), 7.9% (OmniLedger), 2.4%
// (Metis).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace optchain;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto rate = static_cast<double>(flags.get_int("rate", 6000));
  const auto k = static_cast<std::uint32_t>(flags.get_int("k", 16));
  const std::size_t n = bench::stream_size(flags, rate, 90.0);

  bench::print_header(
      "Fig. 10 — latency CDF",
      "Fig. 10 of the paper (§V.B.2); 6000 tps, 16 shards",
      "rate x issue window (--issue_seconds, default 90 s; or --txs=N)");

  const auto txs = bench::make_stream(n, seed);
  const std::vector<double> thresholds = {2,  4,  6,  8,  10, 15, 20,
                                          30, 40, 60, 90, 120};

  std::vector<std::vector<double>> cdfs;
  for (const char* name : bench::kMethods) {
    auto method = bench::make_method(name, txs, k, seed);
    const auto result = bench::run_sim(txs, method, rate);
    cdfs.push_back(result.latencies.cdf_at(thresholds));
  }

  TextTable table(
      {"latency <= (s)", "OptChain", "OmniLedger", "Metis", "Greedy"});
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    std::vector<std::string> row{TextTable::fmt(thresholds[i], 0)};
    for (const auto& cdf : cdfs) {
      row.push_back(TextTable::fmt_percent(cdf[i], 1));
    }
    table.add_row(std::move(row));
  }
  table.print();
  bench::maybe_save_csv(flags, "fig10_latency_cdf", table);
  std::printf("\npaper at 10 s: OptChain 70%%, Greedy 41.2%%, OmniLedger "
              "7.9%%, Metis 2.4%%\n");
  return 0;
}

// Fig. 11: "OptChain scalability" — the highest transaction rate OptChain
// sustains (throughput ≈ rate, queues drain) as the shard count grows, and
// the worst confirmation delay at that operating point. Paper: near-linear
// scaling past 20,000 tps at 62 shards with confirmation never above 11 s
// when the rate is sustainable.
#include <cstdio>

#include "bench_common.hpp"

namespace {

/// True when the run kept up with the input: everything committed and the
/// drain tail after the last issued transaction stayed short.
bool sustainable(const optchain::sim::SimResult& result, std::size_t n,
                 double rate) {
  const double issue_window = static_cast<double>(n) / rate;
  return result.completed && result.duration_s <= issue_window + 30.0 &&
         result.avg_latency_s <= 20.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace optchain;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto shard_counts =
      flags.get_int_list("shards", {4, 8, 16, 24, 32, 48, 62});
  const double issue_seconds = flags.get_double("issue_seconds", 20.0);

  std::printf("== Fig. 11 — OptChain scalability ==\n");
  std::printf("reproduces: Fig. 11 of the paper (§V.C)\n");
  std::printf("stream sized to %.0f s of issue time per probe; binary search "
              "over rates\n\n",
              issue_seconds);

  TextTable table({"shards", "max sustainable rate(tps)", "avg latency(s)",
                   "max latency(s)"});
  for (const auto k_value : shard_counts) {
    const auto k = static_cast<std::uint32_t>(k_value);

    // Binary search the highest sustainable rate for this shard count.
    double lo = 500.0;
    double hi = 1100.0 * k;  // above any plausible per-shard capacity
    double best_avg = 0.0, best_max = 0.0;
    for (int iter = 0; iter < 8; ++iter) {
      const double rate = (lo + hi) / 2.0;
      const auto n = static_cast<std::size_t>(rate * issue_seconds);
      const auto txs = bench::make_stream(n, seed);
      auto method = bench::make_method("OptChain", txs, k, seed);
      const auto result = bench::run_sim(txs, method, rate);
      if (sustainable(result, n, rate)) {
        lo = rate;
        best_avg = result.avg_latency_s;
        best_max = result.max_latency_s;
      } else {
        hi = rate;
      }
    }
    table.add_row({std::to_string(k), TextTable::fmt(lo, 0),
                   TextTable::fmt(best_avg, 1), TextTable::fmt(best_max, 1)});
  }
  table.print();
  bench::maybe_save_csv(flags, "fig11_scalability", table);
  std::printf("\npaper shape: near-linear in #shards; >20k tps at 62 shards; "
              "confirmation <= 11 s while sustainable\n");
  return 0;
}

// Fig. 2: TaN network statistics.
//   (a) degree distribution (log-log power law)
//   (b) cumulative degree distribution — the paper reports 93.1% of nodes
//       with in-degree (spender-degree) < 3; 86.3% with out-degree
//       (input-degree) < 3; 97.6% with out-degree < 10
//   (c) average degree over time — stable except during the flood-attack
//       episode (the 2015 spam attack around the 80,000,000th transaction)
#include <cstdio>

#include "bench_common.hpp"
#include "common/histogram.hpp"
#include "workload/tan_builder.hpp"

int main(int argc, char** argv) {
  using namespace optchain;
  const Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("txs", 1000000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  bench::print_header("Fig. 2 — TaN network statistics",
                      "Fig. 2a/2b/2c of the paper (§IV.A)",
                      std::to_string(n) + " transactions — override with "
                      "--txs=N");

  // Place a flood episode at ~60% of the stream, mirroring the spam attack
  // the paper observes around transaction 80M of 298M.
  workload::WorkloadConfig config;
  config.flood.start = static_cast<std::uint64_t>(0.60 * static_cast<double>(n));
  config.flood.end = config.flood.start + n / 50;
  config.flood.inputs_per_tx = 12;
  // Extra liquidity so the consolidation episode has dust to sweep.
  config.coinbase_interval = 50;

  const auto txs = bench::make_stream(n, seed, config);
  const graph::TanDag dag = workload::build_tan(txs);
  const auto stats = graph::compute_degree_stats(dag);

  std::printf("nodes=%llu edges=%llu (paper: 298,325,121 / 696,860,716 full; "
              "10M/19.96M for the evaluation prefix)\n",
              static_cast<unsigned long long>(stats.nodes),
              static_cast<unsigned long long>(stats.edges));
  std::printf("average in-/out-degree = %.3f (paper: ~2.0-2.3)\n",
              stats.average_degree);
  std::printf("coinbase nodes (no inputs):    %llu\n",
              static_cast<unsigned long long>(stats.coinbase_nodes));
  std::printf("unspent frontier (no spenders): %llu\n",
              static_cast<unsigned long long>(stats.unspent_nodes));
  std::printf("isolated nodes:                 %llu\n\n",
              static_cast<unsigned long long>(stats.isolated_nodes));

  // (a) Degree distributions.
  IntHistogram input_degree, spender_degree;
  for (graph::NodeId u = 0; u < dag.num_nodes(); ++u) {
    input_degree.add(dag.input_degree(u));
    spender_degree.add(dag.spender_count(u));
  }
  std::printf("-- Fig. 2a: degree distribution (head; log-log power law) --\n");
  TextTable degree_table({"degree", "count(inputs)", "count(spenders)"});
  for (std::uint64_t d = 0; d <= 12; ++d) {
    degree_table.add_row(
        {std::to_string(d),
         TextTable::fmt_int(static_cast<long long>(input_degree.count_of(d))),
         TextTable::fmt_int(
             static_cast<long long>(spender_degree.count_of(d)))});
  }
  degree_table.print();

  // (b) Cumulative distribution at the paper's reference points.
  std::printf("\n-- Fig. 2b: cumulative distribution --\n");
  TextTable cdf_table({"statistic", "measured", "paper"});
  cdf_table.add_row({"P[spender-degree < 3]",
                     TextTable::fmt_percent(spender_degree.fraction_below(3)),
                     "93.1 %"});
  cdf_table.add_row({"P[input-degree < 3]",
                     TextTable::fmt_percent(input_degree.fraction_below(3)),
                     "86.3 %"});
  cdf_table.add_row({"P[input-degree < 10]",
                     TextTable::fmt_percent(input_degree.fraction_below(10)),
                     "97.6 %"});
  cdf_table.print();

  // (c) Average degree over time (windowed), flood episode visible.
  std::printf("\n-- Fig. 2c: average degree over time (%zu windows) --\n",
              static_cast<std::size_t>(20));
  TextTable time_table({"window(txs)", "avg inputs/tx", "note"});
  const std::size_t window = dag.num_nodes() / 20;
  for (std::size_t w = 0; w < 20; ++w) {
    const std::size_t begin = w * window;
    const std::size_t end = std::min(begin + window, dag.num_nodes());
    std::uint64_t edges_in_window = 0;
    for (std::size_t u = begin; u < end; ++u) {
      edges_in_window += dag.input_degree(static_cast<graph::NodeId>(u));
    }
    const double avg =
        static_cast<double>(edges_in_window) / static_cast<double>(end - begin);
    const bool flooded = begin < config.flood.end && end > config.flood.start;
    time_table.add_row({std::to_string(begin) + "-" + std::to_string(end),
                        TextTable::fmt(avg, 3),
                        flooded ? "<-- flood episode" : ""});
  }
  time_table.print();
  return 0;
}

// Fig. 3: "Impact of different transactions rates and number of shards on
// the latency and throughput" — the full (method × rate × #shards) grid.
//
// Paper shape: every method improves with more shards; OptChain is the only
// method whose throughput tracks the input rate across the board (e.g.
// healthy at 2000 tps with ≥6 shards, 6000 tps with 16 shards), while
// OmniLedger needs ≥16 shards for 3000 tps and Metis never keeps up.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace optchain;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto rates = flags.get_int_list("rates", {2000, 4000, 6000});
  const auto shard_counts = flags.get_int_list("shards", {4, 8, 12, 16});

  bench::print_header(
      "Fig. 3 — latency & throughput grid",
      "Fig. 3a-3d of the paper (§V.B); paper grid: rates 2000-6000, shards "
      "4-16 (full grid via --rates=2000,3000,4000,5000,6000 "
      "--shards=4,6,8,10,12,14,16)",
      "rate x issue window (--issue_seconds, default 60 s; or --txs=N)");

  for (const char* name : bench::kMethods) {
    std::printf("-- %s --\n", name);
    TextTable table({"rate(tps)", "shards", "avg latency(s)", "max latency(s)",
                     "throughput(tps)", "healthy"});
    for (const auto rate : rates) {
      const std::size_t n =
          bench::stream_size(flags, static_cast<double>(rate), 60.0);
      const auto txs = bench::make_stream(n, seed);
      for (const auto k_value : shard_counts) {
        const auto k = static_cast<std::uint32_t>(k_value);
        auto method = bench::make_method(name, txs, k, seed);
        const auto result =
            bench::run_sim(txs, method, static_cast<double>(rate));
        // "Healthy" = the system keeps up with the input rate: everything
        // drains shortly after the last transaction is issued.
        const double issue_window =
            static_cast<double>(n) / static_cast<double>(rate);
        const bool healthy =
            result.completed && result.duration_s <= issue_window + 30.0;
        table.add_row({TextTable::fmt_int(rate), std::to_string(k),
                       TextTable::fmt(result.avg_latency_s, 1),
                       TextTable::fmt(result.max_latency_s, 1),
                       TextTable::fmt(result.throughput_tps, 0),
                       healthy ? "yes" : "no"});
      }
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}

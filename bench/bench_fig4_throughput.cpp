// Fig. 4: system throughput.
//   (a) throughput vs transaction rate at 16 shards — OptChain tracks the
//       rate furthest; OmniLedger/Greedy/Metis saturate earlier.
//   (b) maximum throughput at the (rate, #shards) frontier — the paper
//       reports OptChain's 16-shard maximum 34.4% above OmniLedger's, 30.5%
//       above Metis's, 16.6% above Greedy's.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace optchain;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto rates = flags.get_int_list("rates", {2000, 3000, 4000, 5000, 6000});
  const auto k = static_cast<std::uint32_t>(flags.get_int("k", 16));

  bench::print_header(
      "Fig. 4 — system throughput",
      "Fig. 4a (k=16) and Fig. 4b of the paper (§V.B.1)",
      "rate x issue window (--issue_seconds, default 120 s; or --txs=N)");

  std::printf("-- Fig. 4a: throughput vs rate at %u shards --\n", k);
  TextTable table_a({"rate(tps)", "OptChain", "OmniLedger", "Metis", "Greedy"});
  std::vector<double> best(4, 0.0);
  for (const auto rate : rates) {
    const std::size_t n =
        bench::stream_size(flags, static_cast<double>(rate));
    const auto txs = bench::make_stream(n, seed);
    std::vector<std::string> row{TextTable::fmt_int(rate)};
    std::size_t column = 0;
    for (const char* name : bench::kMethods) {
      auto method = bench::make_method(name, txs, k, seed);
      const auto result =
          bench::run_sim(txs, method, static_cast<double>(rate));
      row.push_back(TextTable::fmt(result.throughput_tps, 0));
      best[column] = std::max(best[column], result.throughput_tps);
      ++column;
    }
    table_a.add_row(std::move(row));
  }
  table_a.print();
  bench::maybe_save_csv(flags, "fig4a_throughput", table_a);

  std::printf("\n-- Fig. 4b: maximum throughput at %u shards --\n", k);
  TextTable table_b({"method", "max throughput(tps)", "vs OptChain"});
  for (std::size_t i = 0; i < 4; ++i) {
    const double gain = (best[0] - best[i]) / best[i];
    table_b.add_row({bench::kMethods[i], TextTable::fmt(best[i], 0),
                     i == 0 ? "-" : "+" + TextTable::fmt(gain * 100.0, 1) +
                                        " % (OptChain higher)"});
  }
  table_b.print();
  bench::maybe_save_csv(flags, "fig4b_max_throughput", table_b);
  std::printf("\npaper: OptChain's 16-shard maximum is +34.4%% vs OmniLedger, "
              "+30.5%% vs Metis, +16.6%% vs Greedy\n");
  return 0;
}

// Fig. 5: "Number of committed transactions across time" at 6000 tps and 16
// shards — OptChain/OmniLedger/Greedy commit at a steady cadence; Metis lags
// during the opening period and oscillates (shard congestion), and the final
// window drops as the stream ends.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace optchain;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto rate = static_cast<double>(flags.get_int("rate", 6000));
  const auto k = static_cast<std::uint32_t>(flags.get_int("k", 16));
  const std::size_t n = bench::stream_size(flags, rate, 90.0);
  // Paper uses 50 s windows over a 1667 s run; scale the window to the run.
  const double window_s = flags.get_double(
      "window", std::max(5.0, static_cast<double>(n) / rate / 12.0));

  bench::print_header(
      "Fig. 5 — committed transactions per time window",
      "Fig. 5 of the paper (§V.B.1); 6000 tps, 16 shards",
      "rate x issue window (--issue_seconds, default 90 s; or --txs=N)");
  std::printf("window = %.0f s (paper: 50 s)\n\n", window_s);

  const auto txs = bench::make_stream(n, seed);

  std::vector<std::vector<std::uint64_t>> series;
  std::size_t max_windows = 0;
  for (const char* name : bench::kMethods) {
    auto method = bench::make_method(name, txs, k, seed);
    const auto result = bench::run_sim(txs, method, rate,
                                       sim::ProtocolMode::kOmniLedger,
                                       window_s);
    series.push_back(result.commits_per_window.counts());
    max_windows = std::max(max_windows, series.back().size());
  }

  TextTable table({"window", "OptChain", "OmniLedger", "Metis", "Greedy"});
  for (std::size_t w = 0; w < max_windows; ++w) {
    std::vector<std::string> row{
        TextTable::fmt(static_cast<double>(w) * window_s, 0) + "s"};
    for (const auto& counts : series) {
      row.push_back(TextTable::fmt_int(
          w < counts.size() ? static_cast<long long>(counts[w]) : 0));
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}

// Fig. 6: "Maximum and minimum queue size of shards over time" at 6000 tps,
// 16 shards — OptChain's max and min hug each other (temporal balance);
// Metis/Greedy leave some shards empty while others drown; OmniLedger's
// queues are balanced but grow without bound (the rate exceeds what random
// placement can sustain).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace optchain;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto rate = static_cast<double>(flags.get_int("rate", 6000));
  const auto k = static_cast<std::uint32_t>(flags.get_int("k", 16));
  const std::size_t n = bench::stream_size(flags, rate, 90.0);

  bench::print_header(
      "Fig. 6 — max/min shard queue sizes over time",
      "Fig. 6a-6d of the paper (§V.B.1); 6000 tps, 16 shards",
      "rate x issue window (--issue_seconds, default 90 s; or --txs=N)");

  const auto txs = bench::make_stream(n, seed);

  for (const char* name : bench::kMethods) {
    auto method = bench::make_method(name, txs, k, seed);
    const auto result = bench::run_sim(txs, method, rate);
    std::printf("-- %s (worst max queue %llu; paper: OptChain ~44k, Metis "
                "~507k, Greedy ~230k, OmniLedger ~499k at full scale) --\n",
                name,
                static_cast<unsigned long long>(
                    result.queue_tracker.global_max()));
    TextTable table({"time(s)", "max queue", "min queue"});
    const auto& snapshots = result.queue_tracker.snapshots();
    // Print ~16 evenly spaced snapshots.
    const std::size_t step = std::max<std::size_t>(1, snapshots.size() / 16);
    for (std::size_t i = 0; i < snapshots.size(); i += step) {
      table.add_row(
          {TextTable::fmt(snapshots[i].time, 0),
           TextTable::fmt_int(static_cast<long long>(snapshots[i].max_queue)),
           TextTable::fmt_int(
               static_cast<long long>(snapshots[i].min_queue))});
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}

// Fig. 7: "Queue size ratio" — max/min shard queue size over time at 6000
// tps, 16 shards. The paper's point: Metis and Greedy are orders of
// magnitude out of balance; OptChain and OmniLedger stay near 1.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace optchain;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto rate = static_cast<double>(flags.get_int("rate", 6000));
  const auto k = static_cast<std::uint32_t>(flags.get_int("k", 16));
  const std::size_t n = bench::stream_size(flags, rate, 90.0);

  bench::print_header(
      "Fig. 7 — max/min queue-size ratio over time",
      "Fig. 7 of the paper (§V.B.1); 6000 tps, 16 shards (min clamped to 1 "
      "to keep the ratio finite)",
      "rate x issue window (--issue_seconds, default 90 s; or --txs=N)");

  const auto txs = bench::make_stream(n, seed);

  std::vector<std::vector<stats::QueueSnapshot>> series;
  std::vector<double> worst;
  std::size_t max_len = 0;
  for (const char* name : bench::kMethods) {
    auto method = bench::make_method(name, txs, k, seed);
    const auto result = bench::run_sim(txs, method, rate);
    series.push_back(result.queue_tracker.snapshots());
    worst.push_back(result.queue_tracker.worst_ratio());
    max_len = std::max(max_len, series.back().size());
  }

  TextTable table({"time(s)", "OptChain", "OmniLedger", "Metis", "Greedy"});
  const std::size_t step = std::max<std::size_t>(1, max_len / 20);
  for (std::size_t i = 0; i < max_len; i += step) {
    std::vector<std::string> row;
    row.push_back(
        TextTable::fmt(i < series[0].size() ? series[0][i].time
                                            : static_cast<double>(i), 0));
    for (const auto& snapshots : series) {
      row.push_back(i < snapshots.size()
                        ? TextTable::fmt(snapshots[i].ratio(), 1)
                        : "-");
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nworst ratio:  ");
  for (std::size_t i = 0; i < 4; ++i) {
    std::printf("%s=%.1f  ", bench::kMethods[i], worst[i]);
  }
  std::printf("\npaper shape: Metis and Greedy orders of magnitude above "
              "OptChain/OmniLedger\n");
  return 0;
}

// Fig. 8: average transaction latency.
//   (a) at 16 shards, rates 2000-6000 — OptChain stays in single-digit
//       seconds (paper: 8.7 s at 4000 tps) while the others blow up once
//       backlogged (paper: OmniLedger 346.2 s at 6000 tps — a 93% reduction
//       by OptChain).
//   (b) at the best (rate, #shards) pairings — OptChain's worst average is
//       10.5 s at 6000 tps / 16 shards.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace optchain;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto rates = flags.get_int_list("rates", {2000, 3000, 4000, 5000, 6000});
  const auto k = static_cast<std::uint32_t>(flags.get_int("k", 16));

  bench::print_header(
      "Fig. 8 — average transaction latency",
      "Fig. 8a (k=16) and Fig. 8b of the paper (§V.B.2)",
      "rate x issue window (--issue_seconds, default 90 s; or --txs=N)");

  std::printf("-- Fig. 8a: average latency (s) vs rate at %u shards --\n", k);
  TextTable table_a({"rate(tps)", "OptChain", "OmniLedger", "Metis", "Greedy"});
  for (const auto rate : rates) {
    const std::size_t n =
        bench::stream_size(flags, static_cast<double>(rate), 90.0);
    const auto txs = bench::make_stream(n, seed);
    std::vector<std::string> row{TextTable::fmt_int(rate)};
    for (const char* name : bench::kMethods) {
      auto method = bench::make_method(name, txs, k, seed);
      const auto result =
          bench::run_sim(txs, method, static_cast<double>(rate));
      row.push_back(TextTable::fmt(result.avg_latency_s, 1));
    }
    table_a.add_row(std::move(row));
  }
  table_a.print();
  bench::maybe_save_csv(flags, "fig8a_avg_latency", table_a);

  // Fig. 8b: the paper pairs each rate with the smallest shard count that
  // keeps OptChain healthy (2000→6, 3000→8, 4000→10, 5000→14, 6000→16).
  std::printf("\n-- Fig. 8b: average latency (s) at (rate, #shards) "
              "pairings --\n");
  const std::vector<std::pair<int, std::uint32_t>> pairings = {
      {2000, 6}, {3000, 8}, {4000, 10}, {5000, 14}, {6000, 16}};
  TextTable table_b(
      {"rate(tps)", "shards", "OptChain", "OmniLedger", "Metis", "Greedy"});
  for (const auto& [rate, shards] : pairings) {
    const std::size_t n =
        bench::stream_size(flags, static_cast<double>(rate), 90.0);
    const auto txs = bench::make_stream(n, seed);
    std::vector<std::string> row{TextTable::fmt_int(rate),
                                 std::to_string(shards)};
    for (const char* name : bench::kMethods) {
      auto method = bench::make_method(name, txs, shards, seed);
      const auto result =
          bench::run_sim(txs, method, static_cast<double>(rate));
      row.push_back(TextTable::fmt(result.avg_latency_s, 1));
    }
    table_b.add_row(std::move(row));
  }
  table_b.print();
  bench::maybe_save_csv(flags, "fig8b_avg_latency", table_b);
  std::printf("\npaper: OptChain's highest average across these pairings is "
              "10.5 s; OmniLedger reaches 346.2 s at 6000/16\n");
  return 0;
}

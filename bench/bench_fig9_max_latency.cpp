// Fig. 9: maximum transaction latency.
//   (a) at 16 shards vs rate — paper: at 6000 tps OptChain's worst
//       transaction takes 100.9 s vs 1309.5 s (OmniLedger), 1345.9 s
//       (Metis), 628.9 s (Greedy).
//   (b) at the (rate, #shards) pairings of Fig. 8b — OptChain's worst is
//       102.7 s at 5000 tps / 14 shards.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace optchain;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto rates = flags.get_int_list("rates", {2000, 3000, 4000, 5000, 6000});
  const auto k = static_cast<std::uint32_t>(flags.get_int("k", 16));

  bench::print_header(
      "Fig. 9 — maximum transaction latency",
      "Fig. 9a (k=16) and Fig. 9b of the paper (§V.B.2)",
      "rate x issue window (--issue_seconds, default 90 s; or --txs=N)");

  std::printf("-- Fig. 9a: max latency (s) vs rate at %u shards --\n", k);
  TextTable table_a({"rate(tps)", "OptChain", "OmniLedger", "Metis", "Greedy"});
  for (const auto rate : rates) {
    const std::size_t n =
        bench::stream_size(flags, static_cast<double>(rate), 90.0);
    const auto txs = bench::make_stream(n, seed);
    std::vector<std::string> row{TextTable::fmt_int(rate)};
    for (const char* name : bench::kMethods) {
      auto method = bench::make_method(name, txs, k, seed);
      const auto result =
          bench::run_sim(txs, method, static_cast<double>(rate));
      row.push_back(TextTable::fmt(result.max_latency_s, 1));
    }
    table_a.add_row(std::move(row));
  }
  table_a.print();

  std::printf("\n-- Fig. 9b: max latency (s) at (rate, #shards) pairings --\n");
  const std::vector<std::pair<int, std::uint32_t>> pairings = {
      {2000, 6}, {3000, 8}, {4000, 10}, {5000, 14}, {6000, 16}};
  TextTable table_b(
      {"rate(tps)", "shards", "OptChain", "OmniLedger", "Metis", "Greedy"});
  for (const auto& [rate, shards] : pairings) {
    const std::size_t n =
        bench::stream_size(flags, static_cast<double>(rate), 90.0);
    const auto txs = bench::make_stream(n, seed);
    std::vector<std::string> row{TextTable::fmt_int(rate),
                                 std::to_string(shards)};
    for (const char* name : bench::kMethods) {
      auto method = bench::make_method(name, txs, shards, seed);
      const auto result =
          bench::run_sim(txs, method, static_cast<double>(rate));
      row.push_back(TextTable::fmt(result.max_latency_s, 1));
    }
    table_b.add_row(std::move(row));
  }
  table_b.print();
  return 0;
}

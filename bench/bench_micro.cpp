// Micro-benchmarks (google-benchmark): per-operation costs of the hot paths.
// The paper's practicality argument (§IV.B) rests on the O(k·|Nin|) T2S
// update being cheap enough for wallet software; these benchmarks quantify
// it, along with the substrate costs.
#include <benchmark/benchmark.h>

#include <memory>

#include "api/placement_pipeline.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "core/optchain_placer.hpp"
#include "latency/l2s_model.hpp"
#include "metis/kway_partitioner.hpp"
#include "placement/random_placer.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"
#include "sim/tree_gossip.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/tan_builder.hpp"

namespace {

using namespace optchain;

void BM_Sha256_512B(benchmark::State& state) {
  std::vector<std::uint8_t> data(512, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_Sha256_512B);

void BM_WorkloadGenerator(benchmark::State& state) {
  workload::BitcoinLikeGenerator generator({}, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WorkloadGenerator);

/// Full OptChain placement step through the api::PlacementPipeline (TaN
/// registration + txid + T2S scoring + argmax + commit), per transaction,
/// across shard counts. The paper's average scoring cost is O(k). The
/// pipeline is stateful; when the prepared stream runs out, state resets
/// outside the timed region.
void BM_OptChainPlacement(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  workload::BitcoinLikeGenerator generator({}, 2);
  const auto txs = generator.generate(200000);

  const auto fresh_pipeline = [k] {
    return std::make_unique<api::PlacementPipeline>(
        k, [](const graph::TanDag& dag) {
          core::OptChainConfig config;
          config.l2s_weight = 0.0;
          return std::make_unique<core::OptChainPlacer>(dag, config);
        });
  };

  auto pipeline = fresh_pipeline();
  std::size_t i = 0;
  for (auto _ : state) {
    if (i >= txs.size()) {
      state.PauseTiming();
      pipeline = fresh_pipeline();
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(pipeline->step(txs[i]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OptChainPlacement)->Arg(4)->Arg(16)->Arg(64);

void BM_L2sScoreAll(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  std::vector<latency::ShardTiming> timings(k);
  Rng rng(3);
  for (auto& timing : timings) {
    timing.mean_comm = rng.uniform(0.05, 0.3);
    timing.mean_verify = rng.uniform(0.5, 8.0);
  }
  const std::vector<std::uint32_t> inputs{0, 1 % k, 2 % k};
  latency::L2sEstimator estimator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.score_all(timings, inputs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_L2sScoreAll)->Arg(4)->Arg(16)->Arg(64);

struct NullHandler final : sim::EventHandler {
  void on_event(const sim::Event&) override {}
};

/// schedule + dispatch of one typed POD event (no allocation, no indirect
/// closure call). Arg = number of events already pending in the heap.
void BM_EventQueue(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  sim::EventQueue queue;
  NullHandler handler;
  double t = 0.0;
  for (std::size_t i = 0; i < depth; ++i) {
    queue.schedule(1e12 + static_cast<double>(i), sim::Event::tx_issue(0));
  }
  for (auto _ : state) {
    queue.schedule(t + 1.0, sim::Event::tx_issue(0));
    queue.run_one(handler);
    t += 1.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueue)->Arg(0)->Arg(1024);

void BM_MetisPartition(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  workload::BitcoinLikeGenerator generator({}, 4);
  const auto txs = generator.generate(n);
  const graph::Csr undirected = workload::build_tan(txs).to_undirected();
  for (auto _ : state) {
    metis::PartitionConfig config;
    config.k = 16;
    benchmark::DoNotOptimize(metis::partition_kway(undirected, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MetisPartition)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

/// The O(k(|V|+|E|)) full recomputation the paper rejects (§IV.B), per
/// transaction — contrast with BM_OptChainPlacement's incremental O(k·|Nin|).
void BM_OfflineT2sRecompute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  workload::BitcoinLikeGenerator generator({}, 6);
  const auto txs = generator.generate(n);
  const graph::TanDag dag = workload::build_tan(txs);
  placement::ShardAssignment assignment(16);
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    assignment.record(static_cast<tx::TxIndex>(i),
                      static_cast<placement::ShardId>(rng.below(16)));
  }
  core::T2sConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::recompute_all_scores_dense(dag, assignment, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OfflineT2sRecompute)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

/// Message-level tree-gossip consensus round vs the closed-form model.
void BM_TreeGossipRound(benchmark::State& state) {
  const auto committee = static_cast<std::uint32_t>(state.range(0));
  sim::NetworkModel network;
  const sim::Position leader{0.5, 0.5};
  sim::ConsensusConfig consensus;
  consensus.committee_size = committee;
  for (auto _ : state) {
    Rng rng(9);
    benchmark::DoNotOptimize(sim::simulate_tree_gossip_round(
        network, leader, consensus, 2000, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TreeGossipRound)->Arg(64)->Arg(400)
    ->Unit(benchmark::kMicrosecond);

void BM_SimulationEndToEnd(benchmark::State& state) {
  workload::BitcoinLikeGenerator generator({}, 5);
  const auto txs = generator.generate(20000);
  for (auto _ : state) {
    sim::SimConfig config;
    config.num_shards = 8;
    config.tx_rate_tps = 2000.0;
    api::PlacementPipeline pipeline(
        8, std::make_unique<placement::RandomPlacer>());
    sim::Simulation simulation(config);
    benchmark::DoNotOptimize(simulation.run(txs, pipeline));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(txs.size()));
  state.SetLabel("20k txs / iteration");
}
BENCHMARK(BM_SimulationEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

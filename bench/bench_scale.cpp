// bench_scale — the million-transaction engine benchmark.
//
// Streams a paper-scale generated workload (default 1M transactions;
// the paper's headline runs use the first 10M of the MIT Bitcoin dataset,
// §V.A) through two paths and emits a machine-readable BENCH_scale.json so
// the perf trajectory accumulates per PR:
//
//   1. placement-only: a pre-generated stream through the micro-batched
//      front-end (api::BatchPlacementPipeline) and the tx-at-a-time loop
//   2. full-sim: a (smaller, default 100k) streamed run through the typed
//      POD event engine and the OmniLedger cross-shard protocol
//
// Flags:
//   --txs=N         placement stream length   (default 1,000,000)
//   --sim_txs=N     full-sim stream length    (default 100,000)
//   --shards=K      shard count               (default 16)
//   --rate=TPS      sim issue rate            (default 4000)
//   --seed=S        workload seed             (default 1)
//   --method=M      placement strategy        (default OptChain)
//   --place_jobs=N  batched front-end workers; 0 = tx-at-a-time only
//                   (default 1: the batched kernel, single-threaded)
//   --batch=N       micro-batch length        (default 512)
//   --out=PATH      JSON output path          (default BENCH_scale.json)
//   --smoke         CI smoke mode: 20k placement / 4k sim transactions
//
// The placement path runs twice when place_jobs >= 1: once through the
// micro-batched front-end (the headline "placement" object) and once
// through the tx-at-a-time loop ("placement_sequential"), asserting the two
// outcomes are identical — the bench doubles as an end-to-end check of the
// bit-identity contract at paper scale.
//
// Since the batch-pipeline PR the placement stream is materialized before
// the clock starts and workload generation is timed separately
// ("workload_gen"): earlier BENCH_scale.json placement numbers include
// generator time in the placement rate, so compare like with like
// (placement-only rates are higher than the old combined rates on
// unchanged code).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include <sys/resource.h>

#include "api/batch_pipeline.hpp"
#include "api/placement_pipeline.hpp"
#include "bench_common.hpp"
#include "sim/simulation.hpp"
#include "workload/tx_source.hpp"

namespace optchain::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Peak resident set size of this process, in MiB (Linux ru_maxrss is KiB).
double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const auto txs =
      static_cast<std::uint64_t>(flags.get_int("txs", smoke ? 20'000
                                                            : 1'000'000));
  const auto sim_txs =
      static_cast<std::uint64_t>(flags.get_int("sim_txs", smoke ? 4'000
                                                                : 100'000));
  const auto shards = static_cast<std::uint32_t>(flags.get_int("shards", 16));
  const double rate = flags.get_double("rate", 4000.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string method = flags.get_string("method", "OptChain");
  const auto place_jobs =
      static_cast<std::uint32_t>(flags.get_int("place_jobs", 1));
  const auto batch = static_cast<std::uint32_t>(flags.get_int("batch", 512));
  const std::string out_path = flags.get_string("out", "BENCH_scale.json");

  print_header("bench_scale — million-transaction engine",
               "engine scaling (paper §V.A runs 10M-tx streams)",
               std::to_string(txs) + " placement txs + " +
                   std::to_string(sim_txs) + " simulated txs, k=" +
                   std::to_string(shards));

  JsonWriter json;
  json.field("bench", "bench_scale");
  json.begin_object("config")
      .field("txs", txs)
      .field("sim_txs", sim_txs)
      .field("shards", shards)
      .field("rate_tps", rate)
      .field("seed", seed)
      .field("method", method)
      .field("place_jobs", place_jobs)
      .field("batch", batch)
      .field("smoke", smoke)
      .end_object();

  // ---- workload generation (timed separately, not placement) -----------
  std::vector<tx::Transaction> stream;
  {
    stream.reserve(txs);
    workload::GeneratorTxSource source({}, seed, txs);
    tx::Transaction transaction;
    const auto start = Clock::now();
    while (source.next(transaction)) stream.push_back(std::move(transaction));
    const double elapsed = seconds_since(start);
    std::printf("generation: %llu txs in %.2f s  (%.0f tx/s)\n",
                static_cast<unsigned long long>(txs), elapsed,
                static_cast<double>(txs) / elapsed);
    json.begin_object("workload_gen")
        .field("txs", txs)
        .field("seconds", elapsed)
        .field("tx_per_s", static_cast<double>(txs) / elapsed)
        .end_object();
  }

  // ---- placement-only path ---------------------------------------------
  // Headline run: the micro-batched front-end (place_jobs >= 1), else the
  // tx-at-a-time loop.
  api::StreamOutcome batched_outcome;
  {
    workload::SpanTxSource source(stream);
    api::PlacementPipeline pipeline =
        api::make_pipeline(method, shards, {}, seed, {}, txs);
    api::BatchLatencyStats batch_stats;
    const auto start = Clock::now();
    if (place_jobs >= 1) {
      api::BatchPlacementPipeline batched(pipeline, {place_jobs, batch});
      batched_outcome = batched.place_stream(source);
      batch_stats = batched.latency_stats();
    } else {
      batched_outcome = pipeline.place_stream(source);
    }
    const double elapsed = seconds_since(start);
    const double tx_per_s = static_cast<double>(txs) / elapsed;

    std::printf(
        "placement : %llu txs in %.2f s  (%.0f tx/s, cross %.2f%%, "
        "jobs=%u batch=%u, batch p50 %.0f us p99 %.0f us)\n",
        static_cast<unsigned long long>(txs), elapsed, tx_per_s,
        100.0 * batched_outcome.fraction(), place_jobs, batch,
        batch_stats.p50_us, batch_stats.p99_us);
    json.begin_object("placement")
        .field("txs", txs)
        .field("seconds", elapsed)
        .field("tx_per_s", tx_per_s)
        .field("cross_fraction", batched_outcome.fraction())
        .field("tan_edges", pipeline.dag().num_edges())
        .field("place_jobs", place_jobs)
        .field("batch", batch)
        .field("batch_p50_us", batch_stats.p50_us)
        .field("batch_p99_us", batch_stats.p99_us)
        .end_object();
  }

  // Sequential comparison run: same stream through the tx-at-a-time loop.
  // Doubles as a paper-scale bit-identity check — any divergence from the
  // batched outcome is a hard failure, not a logged curiosity.
  if (place_jobs >= 1) {
    workload::SpanTxSource source(stream);
    api::PlacementPipeline pipeline =
        api::make_pipeline(method, shards, {}, seed, {}, txs);
    const auto start = Clock::now();
    const api::StreamOutcome outcome = pipeline.place_stream(source);
    const double elapsed = seconds_since(start);
    const double tx_per_s = static_cast<double>(txs) / elapsed;

    std::printf("  sequential: %llu txs in %.2f s  (%.0f tx/s)\n",
                static_cast<unsigned long long>(txs), elapsed, tx_per_s);
    if (outcome.total != batched_outcome.total ||
        outcome.cross != batched_outcome.cross ||
        outcome.shard_sizes != batched_outcome.shard_sizes) {
      std::fprintf(stderr,
                   "bench_scale: batched and sequential placement DIVERGED "
                   "(total %llu vs %llu, cross %llu vs %llu)\n",
                   static_cast<unsigned long long>(batched_outcome.total),
                   static_cast<unsigned long long>(outcome.total),
                   static_cast<unsigned long long>(batched_outcome.cross),
                   static_cast<unsigned long long>(outcome.cross));
      std::exit(1);
    }
    json.begin_object("placement_sequential")
        .field("txs", txs)
        .field("seconds", elapsed)
        .field("tx_per_s", tx_per_s)
        .field("identical_to_batched", true)
        .end_object();
  }

  // ---- full-sim streaming path -----------------------------------------
  {
    sim::SimConfig config;
    config.num_shards = shards;
    config.tx_rate_tps = rate;
    config.seed = seed;
    config.commit_window_s = 10.0;
    workload::GeneratorTxSource source({}, seed, sim_txs);
    api::PlacementPipeline pipeline =
        api::make_pipeline(method, shards, {}, seed, {}, sim_txs);
    sim::Simulation simulation(config);
    const auto start = Clock::now();
    const sim::SimResult result = simulation.run(source, pipeline);
    const double elapsed = seconds_since(start);
    const double events_per_s =
        static_cast<double>(result.total_events) / elapsed;

    std::printf(
        "simulation: %llu txs, %llu events in %.2f s  (%.0f events/s, "
        "%.0f sim-tx/s, cross %.2f%%, heap peak %llu)\n",
        static_cast<unsigned long long>(sim_txs),
        static_cast<unsigned long long>(result.total_events), elapsed,
        events_per_s, static_cast<double>(sim_txs) / elapsed,
        100.0 * result.cross_fraction(),
        static_cast<unsigned long long>(result.event_heap_peak));
    // Event-memory shape: the deepest the event heap got, plus the
    // shard-addressed event counts as one CSV string (JsonWriter has no
    // arrays; the counts are diagnostics, not a sweep axis).
    std::string shard_events;
    for (const std::uint64_t count : result.shard_event_counts) {
      if (!shard_events.empty()) shard_events += ',';
      shard_events += std::to_string(count);
    }
    json.begin_object("simulation")
        .field("txs", sim_txs)
        .field("events", result.total_events)
        .field("seconds", elapsed)
        .field("events_per_s", events_per_s)
        .field("sim_tx_per_s", static_cast<double>(sim_txs) / elapsed)
        .field("committed", result.committed_txs)
        .field("aborted", result.aborted_txs)
        .field("completed", result.completed)
        .field("cross_fraction", result.cross_fraction())
        .field("avg_latency_s", result.avg_latency_s)
        .field("throughput_tps", result.throughput_tps)
        .field("event_heap_peak", result.event_heap_peak)
        .field("shard_event_counts", shard_events)
        .end_object();
  }

  const double rss_mib = peak_rss_mib();
  json.field("peak_rss_mib", rss_mib);
  std::printf("peak RSS  : %.1f MiB\n", rss_mib);
  json.save(out_path);
  std::printf("(wrote %s)\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace optchain::bench

int main(int argc, char** argv) { return optchain::bench::run(argc, argv); }

// Table I: "Percentage of cross-TXs when running from scratch".
//
// Paper values (10M Bitcoin txs):
//   k   Metis    Greedy   Omniledger  T2S-based
//   4   1.66 %   24.62 %  80.82 %      9.28 %
//   8   3.09 %   27.02 %  90.33 %     12.52 %
//   16  4.70 %   28.14 %  94.87 %     15.73 %
//   32  6.91 %   28.69 %  97.09 %     18.94 %
//   64  9.91 %   28.97 %  98.18 %     21.65 %
//
// Expected shape on the synthetic stream: Metis < T2S < Greedy < OmniLedger
// at every k, with the random baseline rising toward 1 − 1/k and all methods
// degrading slowly in k.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace optchain;
  const Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("txs", 200000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto shard_counts = flags.get_int_list("shards", {4, 8, 16, 32, 64});

  bench::print_header("Table I — cross-TX percentage, from scratch",
                      "Table I of the paper (§IV.B)",
                      std::to_string(n) + " transactions — override with "
                      "--txs=N");

  const auto txs = bench::make_stream(n, seed);

  TextTable table({"k", "Metis", "Greedy", "Omniledger", "T2S-based"});
  for (const auto k_value : shard_counts) {
    const auto k = static_cast<std::uint32_t>(k_value);
    std::vector<std::string> row{std::to_string(k)};
    for (const char* name : {"Metis", "Greedy", "OmniLedger", "T2S"}) {
      auto method = bench::make_method(name, txs, k, seed);
      const auto outcome = method.place_stream(txs);
      row.push_back(TextTable::fmt_percent(outcome.fraction()));
    }
    table.add_row(std::move(row));
  }
  table.print();
  bench::maybe_save_csv(flags, "table1_cross_shard", table);
  return 0;
}

// Table II: "Number of cross-TXs when running from a certain stage of the
// system" — the TaN of the first 30M transactions is partitioned offline
// with Metis; the next 1M transactions are then placed online and their
// cross-TX counts compared.
//
// Paper values (warm 30M + 1M placed):
//   k   Greedy    Omniledger  T2S-based
//   4   335,269   837,356     112,657
//   8   407,747   922,073     172,978
//   16  441,267   960,935     226,171
//   32  449,032   979,323     282,108
//   64  454,321   988,144     366,854
//
// We keep the paper's 30:1 warm-to-placed ratio at reduced scale and report
// both the raw counts and the equivalent percentage.
#include <cstdio>

#include "bench_common.hpp"
#include "metis/kway_partitioner.hpp"
#include "workload/tan_builder.hpp"

int main(int argc, char** argv) {
  using namespace optchain;
  const Flags flags(argc, argv);
  const auto placed =
      static_cast<std::size_t>(flags.get_int("txs", 20000));  // "next 1M"
  const auto warm = static_cast<std::size_t>(
      flags.get_int("warm", static_cast<std::int64_t>(placed * 30)));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto shard_counts = flags.get_int_list("shards", {4, 8, 16, 32, 64});

  std::printf("== Table II — cross-TXs from a warm-started system ==\n");
  std::printf("reproduces: Table II of the paper (§IV.B)\n");
  std::printf("scale: warm %zu + placed %zu (paper: 30M + 1M) — override "
              "with --warm/--txs\n\n",
              warm, placed);

  const auto txs = bench::make_stream(warm + placed, seed);
  const std::span<const tx::Transaction> all(txs);

  TextTable table({"k", "Greedy", "Omniledger", "T2S-based", "Greedy %",
                   "Omniledger %", "T2S %"});
  for (const auto k_value : shard_counts) {
    const auto k = static_cast<std::uint32_t>(k_value);

    // Offline Metis partition of the warm prefix (the "certain stage").
    const graph::TanDag warm_tan =
        workload::build_tan(all.subspan(0, warm));
    metis::PartitionConfig metis_config;
    metis_config.k = k;
    metis_config.seed = seed;
    const auto warm_parts =
        metis::partition_kway(warm_tan.to_undirected(), metis_config);

    std::vector<std::string> row{std::to_string(k)};
    std::vector<std::string> percent_cells;
    for (const char* name : {"Greedy", "OmniLedger", "T2S"}) {
      auto method = bench::make_method(name, txs, k, seed);
      const auto outcome = method.place_stream(all, warm_parts);
      row.push_back(TextTable::fmt_int(static_cast<long long>(outcome.cross)));
      percent_cells.push_back(TextTable::fmt_percent(outcome.fraction()));
    }
    for (auto& cell : percent_cells) row.push_back(std::move(cell));
    table.add_row(std::move(row));
  }
  table.print();
  bench::maybe_save_csv(flags, "table2_warm_start", table);
  return 0;
}

#include "scenarios.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>

#include "api/placer_registry.hpp"
#include "api/run_spec.hpp"
#include "bench_common.hpp"
#include "common/histogram.hpp"
#include "common/table.hpp"
#include "core/optchain_placer.hpp"
#include "graph/dag.hpp"
#include "obs/chrome_export.hpp"
#include "obs/run_tracer.hpp"
#include "placement/greedy_placer.hpp"
#include "trace/trace_import.hpp"
#include "trace/trace_reader.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/tan_builder.hpp"
#include "workload/tx_source.hpp"

namespace optchain::bench {
namespace {

// ---------------------------------------------------------------- helpers

std::uint64_t seed_of(const Flags& flags) {
  return static_cast<std::uint64_t>(flags.get_int("seed", 1));
}

bool smoke(const Flags& flags) { return flags.get_bool("smoke", false); }

/// Issue-window seconds: explicit --issue_seconds wins, --smoke shrinks to a
/// 1 s window, otherwise the figure's paper-scale default.
double issue_window(const Flags& flags, double default_seconds) {
  if (flags.has("issue_seconds")) {
    return flags.get_double("issue_seconds", default_seconds);
  }
  return smoke(flags) ? 1.0 : default_seconds;
}

/// Fixed stream length: explicit --txs wins, --smoke uses the CI size.
std::uint64_t sized(const Flags& flags, std::uint64_t full,
                    std::uint64_t smoke_size) {
  if (flags.has("txs")) {
    return static_cast<std::uint64_t>(
        flags.get_int("txs", static_cast<std::int64_t>(full)));
  }
  return smoke(flags) ? smoke_size : full;
}

std::vector<double> rate_axis(const Flags& flags,
                              std::vector<std::int64_t> fallback) {
  std::vector<double> out;
  for (const auto rate : flags.get_int_list("rates", std::move(fallback))) {
    out.push_back(static_cast<double>(rate));
  }
  return out;
}

std::vector<std::uint32_t> shard_axis(const Flags& flags,
                                      std::vector<std::int64_t> fallback) {
  std::vector<std::uint32_t> out;
  for (const auto k : flags.get_int_list("shards", std::move(fallback))) {
    out.push_back(static_cast<std::uint32_t>(k));
  }
  return out;
}

/// Method line-up override (--methods=A,B,...). An explicitly empty list
/// (--methods=) flows through to ScenarioSpec::expand(), which rejects it —
/// an empty expansion must fail loudly, never run zero cells successfully.
std::vector<std::string> method_axis(const Flags& flags,
                                     std::vector<std::string> fallback) {
  return flags.get_string_list("methods", std::move(fallback));
}

/// The simulation-scenario base: the paper's method line-up, one seed, the
/// historical 10 s Fig. 5 window, sized by rate × issue window.
api::ScenarioSpec sim_spec(const Flags& flags, double default_issue_seconds) {
  api::ScenarioSpec spec;
  spec.mode = api::RunMode::kSimulate;
  spec.methods =
      method_axis(flags, {"OptChain", "OmniLedger", "Metis", "Greedy"});
  spec.seeds = {seed_of(flags)};
  spec.replicas =
      static_cast<std::uint32_t>(flags.get_int("replicas", 1));
  spec.issue_seconds = issue_window(flags, default_issue_seconds);
  spec.txs = static_cast<std::uint64_t>(flags.get_int("txs", 0));
  spec.commit_window_s = 10.0;
  return spec;
}

std::vector<tx::Transaction> make_stream(std::size_t n, std::uint64_t seed,
                                         workload::WorkloadConfig config = {}) {
  workload::BitcoinLikeGenerator generator(config, seed);
  return generator.generate(n);
}

void maybe_save_csv(const Flags& flags, const std::string& name,
                    const TextTable& table) {
  const std::string dir = flags.get_string("csv_dir", "");
  if (dir.empty()) return;
  const std::string path = dir + "/" + name + ".csv";
  table.save_csv(path);
  std::printf("(wrote %s)\n", path.c_str());
}

double metric_or_zero(const api::CellReport* cell,
                      double api::Aggregate::*stat,
                      api::Aggregate api::CellReport::*metric) {
  return cell == nullptr ? 0.0 : (cell->*metric).*stat;
}

/// rates × methods pivot of one aggregate's mean (Figs. 4a/8a/9a shape).
TextTable rate_method_table(const api::SweepReport& report,
                            const std::vector<std::string>& methods,
                            const std::vector<double>& rates, std::uint32_t k,
                            api::Aggregate api::CellReport::*metric,
                            int precision) {
  std::vector<std::string> header{"rate(tps)"};
  header.insert(header.end(), methods.begin(), methods.end());
  TextTable table(std::move(header));
  for (const double rate : rates) {
    std::vector<std::string> row{
        TextTable::fmt_int(static_cast<long long>(rate))};
    for (const std::string& method : methods) {
      row.push_back(TextTable::fmt(
          metric_or_zero(report.find(method, k, rate), &api::Aggregate::mean,
                         metric),
          precision));
    }
    table.add_row(std::move(row));
  }
  return table;
}

/// (rate, shards) pairings × methods pivot (Figs. 8b/9b shape).
TextTable pairing_method_table(const api::SweepReport& report,
                               const std::vector<std::string>& methods,
                               const std::vector<api::OperatingPoint>& points,
                               api::Aggregate api::CellReport::*metric,
                               int precision) {
  std::vector<std::string> header{"rate(tps)", "shards"};
  header.insert(header.end(), methods.begin(), methods.end());
  TextTable table(std::move(header));
  for (const api::OperatingPoint& point : points) {
    std::vector<std::string> row{
        TextTable::fmt_int(static_cast<long long>(point.rate_tps)),
        std::to_string(point.shards)};
    for (const std::string& method : methods) {
      row.push_back(TextTable::fmt(
          metric_or_zero(report.find(method, point.shards, point.rate_tps),
                         &api::Aggregate::mean, metric),
          precision));
    }
    table.add_row(std::move(row));
  }
  return table;
}

const std::vector<api::OperatingPoint>& paper_pairings() {
  // The paper pairs each rate with the smallest shard count that keeps
  // OptChain healthy (Figs. 8b/9b).
  static const std::vector<api::OperatingPoint> kPairings = {
      {2000.0, 6}, {3000.0, 8}, {4000.0, 10}, {5000.0, 14}, {6000.0, 16}};
  return kPairings;
}

// ------------------------------------------------------------ fig2 (custom)

int run_fig2(const Flags& flags, JsonWriter* json) {
  const auto n = static_cast<std::size_t>(sized(flags, 1'000'000, 20'000));
  const std::uint64_t seed = seed_of(flags);

  // Place a flood episode at ~60% of the stream, mirroring the spam attack
  // the paper observes around transaction 80M of 298M.
  workload::WorkloadConfig config;
  config.flood.start =
      static_cast<std::uint64_t>(0.60 * static_cast<double>(n));
  config.flood.end = config.flood.start + n / 50;
  config.flood.inputs_per_tx = 12;
  // Extra liquidity so the consolidation episode has dust to sweep.
  config.coinbase_interval = 50;

  const auto txs = make_stream(n, seed, config);
  const graph::TanDag dag = workload::build_tan(txs);
  const auto stats = graph::compute_degree_stats(dag);

  std::printf("nodes=%llu edges=%llu (paper: 298,325,121 / 696,860,716 full; "
              "10M/19.96M for the evaluation prefix)\n",
              static_cast<unsigned long long>(stats.nodes),
              static_cast<unsigned long long>(stats.edges));
  std::printf("average in-/out-degree = %.3f (paper: ~2.0-2.3)\n",
              stats.average_degree);

  // (a) Degree distributions.
  IntHistogram input_degree, spender_degree;
  for (graph::NodeId u = 0; u < dag.num_nodes(); ++u) {
    input_degree.add(dag.input_degree(u));
    spender_degree.add(dag.spender_count(u));
  }
  std::printf("\n-- Fig. 2a: degree distribution (head; log-log power law) "
              "--\n");
  TextTable degree_table({"degree", "count(inputs)", "count(spenders)"});
  for (std::uint64_t d = 0; d <= 12; ++d) {
    degree_table.add_row(
        {std::to_string(d),
         TextTable::fmt_int(static_cast<long long>(input_degree.count_of(d))),
         TextTable::fmt_int(
             static_cast<long long>(spender_degree.count_of(d)))});
  }
  degree_table.print();

  // (b) Cumulative distribution at the paper's reference points.
  std::printf("\n-- Fig. 2b: cumulative distribution --\n");
  TextTable cdf_table({"statistic", "measured", "paper"});
  cdf_table.add_row({"P[spender-degree < 3]",
                     TextTable::fmt_percent(spender_degree.fraction_below(3)),
                     "93.1 %"});
  cdf_table.add_row({"P[input-degree < 3]",
                     TextTable::fmt_percent(input_degree.fraction_below(3)),
                     "86.3 %"});
  cdf_table.add_row({"P[input-degree < 10]",
                     TextTable::fmt_percent(input_degree.fraction_below(10)),
                     "97.6 %"});
  cdf_table.print();
  maybe_save_csv(flags, "fig2b_degree_cdf", cdf_table);

  // (c) Average degree over time (windowed), flood episode visible.
  std::printf("\n-- Fig. 2c: average degree over time (20 windows) --\n");
  TextTable time_table({"window(txs)", "avg inputs/tx", "note"});
  const std::size_t window = dag.num_nodes() / 20;
  for (std::size_t w = 0; w < 20 && window > 0; ++w) {
    const std::size_t begin = w * window;
    const std::size_t end = std::min(begin + window, dag.num_nodes());
    std::uint64_t edges_in_window = 0;
    for (std::size_t u = begin; u < end; ++u) {
      edges_in_window += dag.input_degree(static_cast<graph::NodeId>(u));
    }
    const double avg = static_cast<double>(edges_in_window) /
                       static_cast<double>(end - begin);
    const bool flooded = begin < config.flood.end && end > config.flood.start;
    time_table.add_row({std::to_string(begin) + "-" + std::to_string(end),
                        TextTable::fmt(avg, 3),
                        flooded ? "<-- flood episode" : ""});
  }
  time_table.print();

  if (json != nullptr) {
    json->field("txs", n)
        .field("nodes", stats.nodes)
        .field("edges", stats.edges)
        .field("average_degree", stats.average_degree)
        .field("p_spender_degree_lt3", spender_degree.fraction_below(3))
        .field("p_input_degree_lt3", input_degree.fraction_below(3))
        .field("p_input_degree_lt10", input_degree.fraction_below(10));
  }
  return 0;
}

// ----------------------------------------------------------- fig11 (custom)

/// True when the run kept up with the input: everything committed and the
/// drain tail after the last issued transaction stayed short.
bool sustainable(const sim::SimResult& result, std::size_t n, double rate) {
  const double issue_window_s = static_cast<double>(n) / rate;
  return result.completed && result.duration_s <= issue_window_s + 30.0 &&
         result.avg_latency_s <= 20.0;
}

int run_fig11(const Flags& flags, JsonWriter* json) {
  const std::uint64_t seed = seed_of(flags);
  const auto shard_counts =
      shard_axis(flags, smoke(flags)
                            ? std::vector<std::int64_t>{4, 8}
                            : std::vector<std::int64_t>{4, 8, 16, 24, 32, 48,
                                                        62});
  const double issue_seconds = issue_window(flags, 20.0);

  std::printf("stream sized to %.1f s of issue time per probe; binary search "
              "over rates\n\n",
              issue_seconds);

  TextTable table({"shards", "max sustainable rate(tps)", "avg latency(s)",
                   "max latency(s)"});
  for (const std::uint32_t k : shard_counts) {
    // Binary search the highest sustainable rate for this shard count.
    double lo = 500.0;
    double hi = 1100.0 * k;  // above any plausible per-shard capacity
    double best_avg = 0.0, best_max = 0.0;
    for (int iter = 0; iter < 8; ++iter) {
      const double rate = (lo + hi) / 2.0;
      const auto n = static_cast<std::size_t>(rate * issue_seconds);
      const auto txs = make_stream(n, seed);
      api::RunSpec spec;
      spec.method = "OptChain";
      spec.num_shards = k;
      spec.seed = seed;
      spec.rate_tps = rate;
      spec.commit_window_s = 10.0;
      const api::RunReport report = api::simulate(spec, txs);
      if (sustainable(*report.sim, n, rate)) {
        lo = rate;
        best_avg = report.sim->avg_latency_s;
        best_max = report.sim->max_latency_s;
      } else {
        hi = rate;
      }
    }
    table.add_row({std::to_string(k), TextTable::fmt(lo, 0),
                   TextTable::fmt(best_avg, 1), TextTable::fmt(best_max, 1)});
    if (json != nullptr) {
      json->begin_object("k" + std::to_string(k))
          .field("max_rate_tps", lo)
          .field("avg_latency_s", best_avg)
          .field("max_latency_s", best_max)
          .end_object();
    }
  }
  table.print();
  maybe_save_csv(flags, "fig11_scalability", table);
  std::printf("\npaper shape: near-linear in #shards; >20k tps at 62 shards; "
              "confirmation <= 11 s while sustainable\n");
  return 0;
}

// -------------------------------------------------------- parallel (custom)

/// Wall-clock one simulate() call and return (report, seconds).
std::pair<api::RunReport, double> timed_simulate(
    const api::RunSpec& spec, std::span<const tx::Transaction> txs) {
  const auto start = std::chrono::steady_clock::now();
  api::RunReport report = api::simulate(spec, txs);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  return {std::move(report), wall.count()};
}

/// Engine benchmark, not a paper figure: the sequential engine vs the
/// conservative parallel engine (sim/parallel/) on one big run, reporting
/// wall-clock, events/s and speedup per --sim_jobs value. Bit-identity of
/// the results is asserted, not assumed — a mismatch fails the scenario.
int run_parallel_bench(const Flags& flags, JsonWriter* json) {
  const std::uint64_t seed = seed_of(flags);
  const std::uint64_t n = sized(flags, 100'000, 5'000);
  const auto shards =
      static_cast<std::uint32_t>(flags.get_int("k", 16));
  const double rate = flags.get_double("rate", 4000.0);
  const auto jobs_axis =
      flags.get_int_list("sim_jobs", std::vector<std::int64_t>{1, 2, 4});

  std::printf("%llu txs, %u shards, %.0f tps; sequential baseline then "
              "--sim_jobs axis\n\n",
              static_cast<unsigned long long>(n), shards, rate);
  const auto txs = make_stream(n, seed);

  api::RunSpec spec;
  spec.method = "OptChain";
  spec.num_shards = shards;
  spec.seed = seed;
  spec.rate_tps = rate;
  spec.commit_window_s = 10.0;

  const auto [baseline, baseline_wall] = timed_simulate(spec, txs);
  const double baseline_events_per_s =
      static_cast<double>(baseline.sim->total_events) / baseline_wall;

  TextTable table({"engine", "wall(s)", "events/s", "speedup"});
  table.add_row({"sequential", TextTable::fmt(baseline_wall, 3),
                 TextTable::fmt(baseline_events_per_s, 0), "1.00"});
  if (json != nullptr) {
    json->field("txs", static_cast<double>(n))
        .field("shards", static_cast<double>(shards))
        .field("rate_tps", rate)
        .field("total_events",
               static_cast<double>(baseline.sim->total_events))
        .begin_object("sequential")
        .field("wall_s", baseline_wall)
        .field("events_per_s", baseline_events_per_s)
        .field("speedup", 1.0)
        .end_object();
  }

  int exit_code = 0;
  for (const std::int64_t jobs : jobs_axis) {
    spec.sim_jobs = static_cast<std::uint32_t>(jobs);
    const auto [report, wall] = timed_simulate(spec, txs);
    // The determinism contract, enforced where the numbers are produced.
    if (report.sim->total_events != baseline.sim->total_events ||
        report.sim->avg_latency_s != baseline.sim->avg_latency_s) {
      std::fprintf(stderr,
                   "parallel: sim_jobs=%lld DIVERGED from the sequential "
                   "engine (events %llu vs %llu)\n",
                   static_cast<long long>(jobs),
                   static_cast<unsigned long long>(report.sim->total_events),
                   static_cast<unsigned long long>(
                       baseline.sim->total_events));
      exit_code = 1;
    }
    const double events_per_s =
        static_cast<double>(report.sim->total_events) / wall;
    const double speedup = baseline_wall / wall;
    const std::string label = "jobs=" + std::to_string(jobs);
    table.add_row({label, TextTable::fmt(wall, 3),
                   TextTable::fmt(events_per_s, 0),
                   TextTable::fmt(speedup, 2)});
    if (json != nullptr) {
      json->begin_object(label)
          .field("wall_s", wall)
          .field("events_per_s", events_per_s)
          .field("speedup", speedup)
          .end_object();
    }
  }
  table.print();
  maybe_save_csv(flags, "parallel_engine", table);
  std::printf("\nresults are bit-identical across engines by contract; "
              "speedup needs real cores (events/s saturates at the memory "
              "bus on 1-core hosts)\n");
  return exit_code;
}

// --------------------------------------------------------- network (custom)

/// Link-fabric study, not a paper figure: the placement lineup under
/// link-level network topologies (sim/fabric/: geo-region latency tiers,
/// access-link bandwidth queues with tail drop, stragglers), sweeping
/// placers × topology × cross-shard cost — the inter-region latency scale.
/// The paper's flat model prices every message the same; this scenario
/// shows what each placer's cross-shard avoidance is worth once crossing
/// shards costs real network resources. Output is deterministic (no wall
/// clock), so the scenario participates in `optchain-bench all`.
int run_network_bench(const Flags& flags, JsonWriter* json) {
  const std::uint64_t seed = seed_of(flags);
  const std::uint64_t n = sized(flags, 50'000, 3'000);
  const auto shards = static_cast<std::uint32_t>(flags.get_int("k", 16));
  const double rate = flags.get_double("rate", 4000.0);
  const std::vector<std::string> topologies =
      flags.get_string_list("topology", {"flat", "wan", "congested"});
  const std::vector<double> inter_scales =
      flags.get_double_list("inter_scale", {1.0, 2.0});
  const std::vector<std::string> methods =
      method_axis(flags, {"OptChain", "OmniLedger", "Greedy"});

  std::printf("%llu txs, %u shards, %.0f tps; topologies × inter-region "
              "latency scale × methods\n\n",
              static_cast<unsigned long long>(n), shards, rate);
  const auto txs = make_stream(n, seed);

  TextTable table({"topology", "xscale", "method", "tput(tps)", "avg_lat(s)",
                   "cross%", "drops", "peak_backlog(s)"});
  if (json != nullptr) {
    json->field("txs", n)
        .field("shards", shards)
        .field("rate_tps", rate);
  }
  for (const std::string& topology : topologies) {
    const sim::FabricConfig base = sim::fabric_preset(topology);
    for (const double scale : inter_scales) {
      // A single-region topology has no inter-region tier to scale; keep
      // one row instead of duplicating identical runs per scale value.
      if (base.regions < 2 && scale != inter_scales.front()) continue;
      sim::FabricConfig fabric = base;
      fabric.inter_region_latency_s *= scale;
      const std::string scale_label = TextTable::fmt(scale, 1);
      for (const std::string& method : methods) {
        api::RunSpec spec;
        spec.method = method;
        spec.num_shards = shards;
        spec.seed = seed;
        spec.rate_tps = rate;
        spec.commit_window_s = 10.0;
        spec.fabric = fabric;
        const api::RunReport report = api::simulate(spec, txs);
        table.add_row(
            {topology, scale_label, report.method,
             TextTable::fmt(report.sim->throughput_tps, 0),
             TextTable::fmt(report.sim->avg_latency_s, 2),
             TextTable::fmt_percent(report.cross_fraction()),
             TextTable::fmt_int(
                 static_cast<long long>(report.sim->link_drops)),
             TextTable::fmt(report.sim->link_peak_backlog_s, 3)});
        if (json != nullptr) {
          json->begin_object(topology + "/x" + scale_label + "/" +
                             report.method)
              .field("throughput_tps", report.sim->throughput_tps)
              .field("avg_latency_s", report.sim->avg_latency_s)
              .field("cross_fraction", report.cross_fraction())
              .field("link_messages", report.sim->link_messages)
              .field("link_drops", report.sim->link_drops)
              .field("link_queue_delay_s", report.sim->link_queue_delay_s)
              .field("link_peak_backlog_s", report.sim->link_peak_backlog_s)
              .end_object();
        }
      }
    }
  }
  table.print();
  maybe_save_csv(flags, "network_fabric", table);
  std::printf("\n\"flat\" is the degenerate fabric (bit-identical to the "
              "classic NetworkModel path); wan/congested add region tiers, "
              "queueing and stragglers\n");
  return 0;
}

// ----------------------------------------------------------- batch (custom)

/// Engine benchmark, not a paper figure: the tx-at-a-time placement loop vs
/// the micro-batched front-end (api/batch_pipeline.hpp) on one big stream,
/// reporting tx/s and speedup per --place_jobs value. Bit-identity of the
/// outcomes is asserted, not assumed — a mismatch fails the scenario.
int run_batch_bench(const Flags& flags, JsonWriter* json) {
  const std::uint64_t seed = seed_of(flags);
  const std::uint64_t n = sized(flags, 200'000, 5'000);
  const auto shards = static_cast<std::uint32_t>(flags.get_int("k", 16));
  const auto batch = static_cast<std::uint32_t>(flags.get_int("batch", 512));
  const std::string method = flags.get_string("method", "OptChain");
  const auto jobs_axis =
      flags.get_int_list("place_jobs", std::vector<std::int64_t>{1, 2, 4});

  std::printf("%llu txs, %u shards, %s, batch=%u; tx-at-a-time baseline "
              "then --place_jobs axis\n\n",
              static_cast<unsigned long long>(n), shards, method.c_str(),
              batch);
  const auto txs = make_stream(n, seed);

  api::RunSpec spec;
  spec.method = method;
  spec.num_shards = shards;
  spec.seed = seed;
  spec.place_batch = batch;

  const auto timed_place = [&txs](const api::RunSpec& run_spec) {
    const auto start = std::chrono::steady_clock::now();
    api::RunReport report = api::place(run_spec, txs);
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    return std::make_pair(std::move(report), wall.count());
  };

  spec.place_jobs = 0;  // the sequential loop
  const auto [baseline, baseline_wall] = timed_place(spec);
  const double baseline_tx_per_s = static_cast<double>(n) / baseline_wall;

  TextTable table({"front-end", "wall(s)", "tx/s", "speedup"});
  table.add_row({"tx-at-a-time", TextTable::fmt(baseline_wall, 3),
                 TextTable::fmt(baseline_tx_per_s, 0), "1.00"});
  if (json != nullptr) {
    json->field("txs", static_cast<double>(n))
        .field("shards", static_cast<double>(shards))
        .field("method", method)
        .field("batch", static_cast<double>(batch))
        .begin_object("sequential")
        .field("wall_s", baseline_wall)
        .field("tx_per_s", baseline_tx_per_s)
        .field("speedup", 1.0)
        .end_object();
  }

  int exit_code = 0;
  for (const std::int64_t jobs : jobs_axis) {
    spec.place_jobs = static_cast<std::uint32_t>(jobs);
    const auto [report, wall] = timed_place(spec);
    // The determinism contract, enforced where the numbers are produced.
    if (report.total != baseline.total || report.cross != baseline.cross ||
        report.shard_sizes != baseline.shard_sizes) {
      std::fprintf(stderr,
                   "batch: place_jobs=%lld DIVERGED from the sequential "
                   "loop (cross %llu vs %llu)\n",
                   static_cast<long long>(jobs),
                   static_cast<unsigned long long>(report.cross),
                   static_cast<unsigned long long>(baseline.cross));
      exit_code = 1;
    }
    const double tx_per_s = static_cast<double>(n) / wall;
    const std::string label = "jobs=" + std::to_string(jobs);
    table.add_row({label, TextTable::fmt(wall, 3),
                   TextTable::fmt(tx_per_s, 0),
                   TextTable::fmt(baseline_wall / wall, 2)});
    if (json != nullptr) {
      json->begin_object(label)
          .field("wall_s", wall)
          .field("tx_per_s", tx_per_s)
          .field("speedup", baseline_wall / wall)
          .end_object();
    }
  }
  table.print();
  maybe_save_csv(flags, "batch_placement", table);
  std::printf("\noutcomes are bit-identical across front-ends by contract; "
              "jobs>1 speedup needs real cores (the batched kernel itself "
              "wins on one)\n");
  return exit_code;
}

// --------------------------------------------------- observability (custom)

/// A whole file as raw bytes (trace bit-identity checks).
std::string slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open " + path);
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

/// Observability benchmark, not a paper figure: the run-telemetry layer
/// (src/obs) end to end. Three checks on one operating point:
///  1. trace bit-identity — the .otrace bytes a RunTracer captures are
///     byte-for-byte equal at every --sim_jobs value (determinism rule 9);
///     a mismatch fails the scenario,
///  2. tracer overhead — traced vs untraced wall-clock (best of --reps);
///     above --max_overhead (default 5%) the scenario fails,
///  3. engine-phase profile — a --profile run's phase-A/phase-B split.
/// Publishes the trace (--trace_out) and its Perfetto export
/// (--export_out), so CI uploads an openable ui.perfetto.dev artifact.
int run_observability(const Flags& flags, JsonWriter* json) {
  const std::uint64_t seed = seed_of(flags);
  const std::uint64_t n = sized(flags, 100'000, 4'000);
  const auto shards = static_cast<std::uint32_t>(flags.get_int("k", 16));
  const double rate = flags.get_double("rate", 4000.0);
  const auto reps = static_cast<int>(
      std::max<std::int64_t>(1, flags.get_int("reps", 3)));
  const double max_overhead = flags.get_double("max_overhead", 0.05);
  const std::string trace_out =
      flags.get_string("trace_out", "obs_run.otrace");
  const std::string export_out =
      flags.get_string("export_out", "obs_run.perfetto.json");
  const auto jobs_axis =
      flags.get_int_list("sim_jobs", std::vector<std::int64_t>{0, 1, 4});

  std::printf("%llu txs, %u shards, %.0f tps; trace identity over "
              "--sim_jobs, tracer overhead (best of %d), phase profile\n\n",
              static_cast<unsigned long long>(n), shards, rate, reps);
  const auto txs = make_stream(n, seed);

  api::RunSpec spec;
  spec.method = "OptChain";
  spec.num_shards = shards;
  spec.seed = seed;
  spec.rate_tps = rate;
  spec.commit_window_s = 10.0;

  if (json != nullptr) {
    json->field("txs", n).field("shards", shards).field("rate_tps", rate);
  }

  // 1. Trace bit-identity across engines (determinism rule 9).
  int exit_code = 0;
  const auto temp = std::filesystem::temp_directory_path();
  std::string baseline_bytes;
  std::string baseline_path;
  std::uint64_t trace_records = 0;
  TextTable identity_table({"sim_jobs", "records", "bytes", "identical"});
  for (const std::int64_t jobs : jobs_axis) {
    const std::string path =
        (temp / ("optchain_obs_j" + std::to_string(jobs) + "_s" +
                 std::to_string(seed) + ".otrace"))
            .string();
    obs::RunTracer tracer(path);
    api::RunSpec traced = spec;
    traced.sim_jobs = static_cast<std::uint32_t>(jobs);
    traced.observers.push_back(&tracer);
    api::simulate(traced, txs);
    const std::uint64_t records = tracer.finish();
    const std::string bytes = slurp(path);
    bool identical = true;
    if (baseline_path.empty()) {
      baseline_path = path;
      baseline_bytes = bytes;
      trace_records = records;
    } else {
      identical = bytes == baseline_bytes;
    }
    if (!identical) {
      std::fprintf(stderr,
                   "observability: sim_jobs=%lld trace DIVERGED from "
                   "sim_jobs=%lld (rule 9 violation)\n",
                   static_cast<long long>(jobs),
                   static_cast<long long>(jobs_axis.front()));
      exit_code = 1;
    }
    identity_table.add_row(
        {std::to_string(jobs),
         TextTable::fmt_int(static_cast<long long>(records)),
         TextTable::fmt_int(static_cast<long long>(bytes.size())),
         identical ? "yes" : "NO"});
    if (json != nullptr) {
      json->begin_object("trace_jobs" + std::to_string(jobs))
          .field("records", records)
          .field("bytes", static_cast<std::uint64_t>(bytes.size()))
          .field("identical", identical)
          .end_object();
    }
  }
  std::printf("-- trace bit-identity across --sim_jobs --\n");
  identity_table.print();

  // Publish the artifacts: the sequential trace and its Perfetto export.
  std::filesystem::copy_file(baseline_path, trace_out,
                             std::filesystem::copy_options::overwrite_existing);
  const std::uint64_t perfetto_events =
      obs::export_chrome_trace(trace_out, export_out);
  std::printf("\nwrote %s (%llu records) and %s (%llu trace events; open "
              "in ui.perfetto.dev)\n",
              trace_out.c_str(),
              static_cast<unsigned long long>(trace_records),
              export_out.c_str(),
              static_cast<unsigned long long>(perfetto_events));
  if (json != nullptr) {
    json->field("trace_records", trace_records)
        .field("trace_path", trace_out)
        .field("perfetto_events", perfetto_events)
        .field("perfetto_path", export_out);
  }

  // 2. Tracer overhead: untraced vs traced wall-clock, best of --reps
  // (minimum filters scheduler noise — the stable floor is the comparison
  // that reflects the tracer's real cost). Measured on a stream of at
  // least 16k txs even in --smoke: at 4k txs the runs are ~10 ms and
  // timer/scheduler jitter swamps the few-percent marginal cost the
  // budget bounds.
  const std::uint64_t overhead_n = std::max<std::uint64_t>(n, 16'000);
  const std::vector<tx::Transaction> overhead_txs =
      overhead_n == n ? txs : make_stream(overhead_n, seed);
  const auto best_wall = [&](bool with_tracer) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
      const std::string path =
          (temp / ("optchain_obs_overhead_" + std::to_string(rep) +
                   ".otrace"))
              .string();
      api::RunSpec run_spec = spec;
      std::unique_ptr<obs::RunTracer> tracer;
      if (with_tracer) {
        tracer = std::make_unique<obs::RunTracer>(path);
        run_spec.observers.push_back(tracer.get());
      }
      const auto start = std::chrono::steady_clock::now();
      api::simulate(run_spec, overhead_txs);
      if (tracer != nullptr) tracer->finish();
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - start;
      best = std::min(best, wall.count());
    }
    return best;
  };
  const double untraced_wall = best_wall(false);
  const double traced_wall = best_wall(true);
  const double overhead = (traced_wall - untraced_wall) / untraced_wall;
  std::printf("\n-- tracer overhead (finish() included, %llu txs) --\n",
              static_cast<unsigned long long>(overhead_n));
  std::printf("untraced %.3fs, traced %.3fs: %+.1f%% (budget %.0f%%)\n",
              untraced_wall, traced_wall, 100.0 * overhead,
              100.0 * max_overhead);
  if (overhead > max_overhead) {
    std::fprintf(stderr,
                 "observability: tracer overhead %.1f%% exceeds the %.0f%% "
                 "budget\n",
                 100.0 * overhead, 100.0 * max_overhead);
    exit_code = 1;
  }
  if (json != nullptr) {
    json->field("untraced_wall_s", untraced_wall)
        .field("traced_wall_s", traced_wall)
        .field("tracer_overhead", overhead)
        .field("max_overhead", max_overhead);
  }

  // 3. Engine-phase profile: the parallel engine's phase-A/phase-B split.
  api::RunSpec profiled = spec;
  profiled.sim_jobs = static_cast<std::uint32_t>(flags.get_int("jobs", 4));
  profiled.profile = true;
  const api::RunReport report = api::simulate(profiled, txs);
  std::printf("\n-- engine phase profile (sim_jobs=%u) --\n",
              profiled.sim_jobs);
  TextTable profile_table({"phase", "wall(s)", "calls"});
  if (json != nullptr) json->begin_object("profile");
  for (const api::ProfileEntry& entry : report.profile) {
    profile_table.add_row({entry.phase, TextTable::fmt(entry.seconds, 4),
                           TextTable::fmt_int(
                               static_cast<long long>(entry.calls))});
    if (json != nullptr) {
      json->begin_object(entry.phase)
          .field("seconds", entry.seconds)
          .field("calls", entry.calls)
          .end_object();
    }
  }
  if (json != nullptr) json->end_object();
  profile_table.print();
  return exit_code;
}

// ----------------------------------------------------------- trace (custom)

int run_trace(const Flags& flags, JsonWriter* json) {
  // The dataset is named by --trace= (a container built with
  // `optchain-trace import` — the CI path). Without one the scenario stays
  // self-contained: it snapshots a generated workload into the temp dir
  // once (keyed by seed and size, so repeated runs and the sweep's cells
  // all replay the same import) and replays that.
  std::string path = flags.get_string("trace", "");
  if (path.empty()) {
    const std::uint64_t n = sized(flags, 1'000'000, 20'000);
    const std::uint64_t seed = seed_of(flags);
    path = (std::filesystem::temp_directory_path() /
            ("optchain_bench_trace_s" + std::to_string(seed) + "_n" +
             std::to_string(n) + ".optx"))
               .string();
    // Reuse a previous run's snapshot only if it actually opens: a killed
    // import leaves a trailerless file, and exists() alone would let it
    // poison every future run. The import itself goes to a unique name and
    // is renamed into place atomically, so concurrent runs at the same
    // (seed, n) never see each other's half-written bytes.
    bool usable = false;
    if (std::filesystem::exists(path)) {
      try {
        trace::TraceReader probe(path);
        usable = probe.size() == n;
      } catch (const std::exception&) {
        usable = false;
      }
    }
    if (!usable) {
      const std::string staging =
          path + ".tmp." +
          std::to_string(static_cast<unsigned long long>(
              std::chrono::steady_clock::now().time_since_epoch().count()));
      workload::GeneratorTxSource source({}, seed, n);
      trace::import_source(source, staging);
      std::filesystem::rename(staging, path);
    }
    std::printf("(no --trace=; replaying generated snapshot %s)\n\n",
                path.c_str());
  }

  api::ScenarioSpec spec;
  spec.name = "trace";
  spec.title = "cross-TX placement over an imported trace";
  spec.paper_ref = "§V.A replay method (real-dataset placement)";
  spec.mode = api::RunMode::kPlace;
  spec.workload = api::WorkloadKind::kTrace;
  spec.trace.path = path;
  spec.trace.begin = static_cast<std::uint64_t>(flags.get_int("begin", 0));
  spec.trace.end = static_cast<std::uint64_t>(flags.get_int("end", 0));
  // --txs caps the replayed window; --smoke keeps CI at seconds. 0 = the
  // whole window.
  spec.txs = flags.has("txs")
                 ? static_cast<std::uint64_t>(flags.get_int("txs", 0))
                 : (smoke(flags) ? 20'000 : 0);
  // The streaming lineup (Metis/Static need a materialized stream and are
  // exactly what a trace replay avoids).
  spec.methods = method_axis(
      flags, {"OptChain", "T2S", "Greedy", "OmniLedger", "LeastLoaded"});
  spec.shards = shard_axis(flags, {16});
  spec.seeds = {seed_of(flags)};
  spec.replicas =
      static_cast<std::uint32_t>(flags.get_int("replicas", 1));

  api::SweepOptions options;
  options.jobs = static_cast<unsigned>(
      std::max<std::int64_t>(0, flags.get_int("jobs", 1)));
  const api::SweepReport report = api::SweepRunner(options).run(spec);
  report.to_table().print();
  maybe_save_csv(flags, "trace_place", report.to_table());
  if (json != nullptr) {
    json->begin_object(report.scenario);
    report.write_json(*json);
    json->end_object();
  }
  return 0;
}

// ----------------------------------------------------- sweep spec builders

api::ScenarioSpec fig3_spec(const Flags& flags) {
  api::ScenarioSpec spec = sim_spec(flags, 60.0);
  spec.name = "fig3";
  spec.rates = rate_axis(flags, {2000, 4000, 6000});
  spec.shards = shard_axis(flags, {4, 8, 12, 16});
  return spec;
}

api::ScenarioSpec fig4_spec(const Flags& flags) {
  api::ScenarioSpec spec = sim_spec(flags, 120.0);
  spec.name = "fig4";
  spec.rates = rate_axis(flags, {2000, 3000, 4000, 5000, 6000});
  spec.shards = {static_cast<std::uint32_t>(flags.get_int("k", 16))};
  return spec;
}

/// One (rate, k) operating point with the whole method line-up — the Figs.
/// 5/6/7/10 shape; they differ only in which SimResult series they render.
api::ScenarioSpec stressed_point_spec(const Flags& flags, const char* name) {
  api::ScenarioSpec spec = sim_spec(flags, 90.0);
  spec.name = name;
  spec.rates = {static_cast<double>(flags.get_int("rate", 6000))};
  spec.shards = {static_cast<std::uint32_t>(flags.get_int("k", 16))};
  return spec;
}

api::ScenarioSpec fig5_spec(const Flags& flags) {
  api::ScenarioSpec spec = stressed_point_spec(flags, "fig5");
  // Paper uses 50 s windows over a 1667 s run; scale the window to the run.
  const double issue_s = spec.txs > 0 ? static_cast<double>(spec.txs) /
                                            spec.rates[0]
                                      : spec.issue_seconds;
  spec.commit_window_s =
      flags.get_double("window", std::max(5.0, issue_s / 12.0));
  return spec;
}

api::ScenarioSpec fig8a_spec(const Flags& flags) {
  api::ScenarioSpec spec = sim_spec(flags, 90.0);
  spec.name = "fig8a";
  spec.rates = rate_axis(flags, {2000, 3000, 4000, 5000, 6000});
  spec.shards = {static_cast<std::uint32_t>(flags.get_int("k", 16))};
  return spec;
}

api::ScenarioSpec fig8b_spec(const Flags& flags) {
  api::ScenarioSpec spec = sim_spec(flags, 90.0);
  spec.name = "fig8b";
  spec.pairings = paper_pairings();
  return spec;
}

api::ScenarioSpec table1_spec(const Flags& flags) {
  api::ScenarioSpec spec;
  spec.name = "table1";
  spec.mode = api::RunMode::kPlace;
  spec.methods = method_axis(flags, {"Metis", "Greedy", "OmniLedger", "T2S"});
  spec.shards = shard_axis(flags, {4, 8, 16, 32, 64});
  spec.seeds = {seed_of(flags)};
  spec.txs = sized(flags, 200'000, 10'000);
  return spec;
}

api::ScenarioSpec table2_spec(const Flags& flags) {
  api::ScenarioSpec spec;
  spec.name = "table2";
  spec.mode = api::RunMode::kPlace;
  spec.methods = method_axis(flags, {"Greedy", "OmniLedger", "T2S"});
  spec.shards = shard_axis(flags, {4, 8, 16, 32, 64});
  spec.seeds = {seed_of(flags)};
  spec.txs = sized(flags, 20'000, 1'000);  // the "next 1M", scaled
  // The paper warms with the first 30M transactions before placing 1M.
  spec.warm_ratio =
      static_cast<std::uint32_t>(flags.get_int("warm_ratio", 30));
  return spec;
}

api::ScenarioSpec ablation_main_spec(const Flags& flags) {
  api::ScenarioSpec spec = sim_spec(flags, 60.0);
  spec.name = "ablation";
  spec.methods = {"OptChain",       "T2S",
                  "OptChain-w0.1",  "OptChain-outdiv",
                  "Greedy",         "Greedy-smallties",
                  "LeastLoaded"};
  spec.rates = {static_cast<double>(flags.get_int("rate", 4000))};
  spec.shards = {static_cast<std::uint32_t>(flags.get_int("k", 8))};
  return spec;
}

api::ScenarioSpec ablation_rapidchain_spec(const Flags& flags) {
  api::ScenarioSpec spec = ablation_main_spec(flags);
  spec.name = "ablation-rapidchain";
  spec.methods = {"OptChain"};
  spec.protocol = sim::ProtocolMode::kRapidChain;
  return spec;
}

api::ScenarioSpec ablation_slowdown_spec(const Flags& flags) {
  api::ScenarioSpec spec = ablation_main_spec(flags);
  spec.name = "ablation-slowdown";
  spec.methods = {"OptChain", "OmniLedger"};
  spec.shard_slowdown = {flags.get_double("slow_factor", 6.0)};
  return spec;
}

api::ScenarioSpec account_place_spec(const Flags& flags) {
  api::ScenarioSpec spec;
  spec.name = "account-place";
  spec.mode = api::RunMode::kPlace;
  spec.workload = api::WorkloadKind::kAccount;
  if (flags.get_bool("receiver_dep", false)) {
    spec.account_workload.dependency =
        workload::AccountDependency::kSenderAndReceiver;
  }
  spec.methods = {"T2S", "Greedy", "OmniLedger"};
  spec.shards = shard_axis(flags, {4, 8, 16, 32, 64});
  spec.seeds = {seed_of(flags)};
  spec.txs = sized(flags, 200'000, 10'000);
  return spec;
}

api::ScenarioSpec account_sim_spec(const Flags& flags) {
  api::ScenarioSpec spec = account_place_spec(flags);
  spec.name = "account-sim";
  spec.mode = api::RunMode::kSimulate;
  spec.methods = {"OptChain", "OmniLedger"};
  spec.shards = {8};
  spec.rates = {3000.0};
  spec.commit_window_s = 10.0;
  return spec;
}

// --------------------------------------- dynamic-workload spec builders

/// The dynamic-workload method line-up: the paper's online strategies plus
/// the Shard Scheduler-style affinity baseline. Metis is deliberately absent
/// (an offline oracle cannot follow a moving workload, and injecting
/// profiles never materialize the emitted stream).
std::vector<std::string> dynamic_lineup(const Flags& flags) {
  return method_axis(flags,
                     {"OptChain", "OmniLedger", "Greedy", "ShardScheduler"});
}

/// `dynamic`: one operating point under a four-act rate wave — calm,
/// linear ramp to 2x, flash crowd spiking to 3x, diurnal tail — sized so
/// the acts partition the nominal issue window.
api::ScenarioSpec dynamic_spec(const Flags& flags) {
  api::ScenarioSpec spec;
  spec.name = "dynamic";
  spec.mode = api::RunMode::kSimulate;
  spec.methods = dynamic_lineup(flags);
  spec.seeds = {seed_of(flags)};
  spec.replicas = static_cast<std::uint32_t>(flags.get_int("replicas", 1));
  spec.commit_window_s = 10.0;
  const auto base = static_cast<double>(flags.get_int("rate", 3000));
  spec.rates = {base};
  spec.shards = {static_cast<std::uint32_t>(flags.get_int("k", 16))};
  spec.issue_seconds = issue_window(flags, 60.0);
  spec.txs = static_cast<std::uint64_t>(flags.get_int("txs", 0));
  // The acts partition the *effective* issue window — a --txs override
  // shrinks the wave with the stream, so the whole curve always executes.
  const double w = spec.txs > 0
                       ? static_cast<double>(spec.txs) / base
                       : spec.issue_seconds;
  spec.dynamic.rate.constant(base, 0.25 * w)
      .ramp(base, 2.0 * base, 0.25 * w)
      .flash_crowd(base, 3.0 * base, 0.05 * w, 0.25 * w)
      .diurnal(base, 0.5 * base, 0.5 * w, 0.25 * w);
  return spec;
}

/// `hotspot`: Zipfian rotating-hot-set injection plus a mid-stream
/// consolidation-spam burst (parent fan-out 24) at a fixed operating point.
api::ScenarioSpec hotspot_spec(const Flags& flags) {
  api::ScenarioSpec spec;
  spec.name = "hotspot";
  spec.mode = api::RunMode::kSimulate;
  spec.methods = dynamic_lineup(flags);
  spec.seeds = {seed_of(flags)};
  spec.replicas = static_cast<std::uint32_t>(flags.get_int("replicas", 1));
  spec.commit_window_s = 10.0;
  spec.rates = {static_cast<double>(flags.get_int("rate", 3000))};
  spec.shards = {static_cast<std::uint32_t>(flags.get_int("k", 16))};
  spec.issue_seconds = issue_window(flags, 60.0);
  spec.txs = static_cast<std::uint64_t>(flags.get_int("txs", 0));

  workload::HotspotConfig& hotspot = spec.dynamic.hotspot;
  hotspot.injection_fraction = flags.get_double("hot_fraction", 0.10);
  hotspot.zipf_s = flags.get_double("zipf", 1.2);
  hotspot.hot_set_size = 32;
  hotspot.fanout_inputs = 2;
  const std::uint64_t n = spec.stream_length(spec.rates[0]);
  hotspot.rotation_interval = std::max<std::uint64_t>(1, n / 10);
  // DoS episode over the middle tenth of the stream: injection doubles and
  // injected transactions consolidate 24 hot parents each (Fig. 2c's flood
  // shape, aimed at the hot set).
  spec.dynamic.bursts = {{n / 2, n / 2 + std::max<std::uint64_t>(1, n / 10),
                          0.5, 24}};
  return spec;
}

/// `churn`: the shard set changes mid-run — the largest shard retires at
/// 25% of the issue window (bulk handoff to the least-loaded survivor) and
/// two fresh shards join at 50% / 70%.
api::ScenarioSpec churn_spec(const Flags& flags) {
  api::ScenarioSpec spec;
  spec.name = "churn";
  spec.mode = api::RunMode::kSimulate;
  spec.methods = dynamic_lineup(flags);
  spec.seeds = {seed_of(flags)};
  spec.replicas = static_cast<std::uint32_t>(flags.get_int("replicas", 1));
  spec.commit_window_s = 10.0;
  spec.rates = {static_cast<double>(flags.get_int("rate", 3000))};
  spec.shards = {static_cast<std::uint32_t>(flags.get_int("k", 12))};
  spec.issue_seconds = issue_window(flags, 60.0);
  spec.txs = static_cast<std::uint64_t>(flags.get_int("txs", 0));
  const double w = spec.txs > 0
                       ? static_cast<double>(spec.txs) / spec.rates[0]
                       : spec.issue_seconds;
  spec.churn.events = {
      {0.25 * w, sim::ChurnKind::kRemoveShard,
       sim::ShardChurnEvent::kAutoShard},
      {0.50 * w, sim::ChurnKind::kAddShard, 0},
      {0.70 * w, sim::ChurnKind::kAddShard, 0},
  };
  return spec;
}

/// One `repartition` grid part: the online lineup (OptChain, Greedy, plus
/// the Fennel streaming baseline) under the periodic Metis re-partition
/// controller (sim/repartition.hpp) ticking every `interval_fraction` of
/// the issue window, optionally under the churn plan of churn_spec. The
/// --repartition_budget/--repartition_window flags cap the per-event
/// migration and the TaN snapshot (defaults: a tenth of the stream per
/// event — small enough that deferral shows up — and the whole graph).
api::ScenarioSpec repartition_spec(const Flags& flags, std::string name,
                                   double interval_fraction,
                                   bool with_churn) {
  api::ScenarioSpec spec;
  spec.name = std::move(name);
  spec.mode = api::RunMode::kSimulate;
  spec.methods = method_axis(flags, {"OptChain", "Greedy", "Fennel"});
  spec.seeds = {seed_of(flags)};
  spec.replicas = static_cast<std::uint32_t>(flags.get_int("replicas", 1));
  spec.commit_window_s = 10.0;
  spec.rates = {static_cast<double>(flags.get_int("rate", 3000))};
  spec.shards = {static_cast<std::uint32_t>(flags.get_int("k", 12))};
  spec.issue_seconds = issue_window(flags, 60.0);
  spec.txs = static_cast<std::uint64_t>(flags.get_int("txs", 0));
  const double w = spec.txs > 0
                       ? static_cast<double>(spec.txs) / spec.rates[0]
                       : spec.issue_seconds;
  const std::uint64_t n = spec.stream_length(spec.rates[0]);
  spec.repartition.interval_s = interval_fraction * w;
  spec.repartition.budget = static_cast<std::uint64_t>(flags.get_int(
      "repartition_budget", static_cast<std::int64_t>(n / 10)));
  spec.repartition.window = static_cast<std::uint64_t>(
      flags.get_int("repartition_window", 0));
  if (with_churn) {
    spec.churn.events = {
        {0.25 * w, sim::ChurnKind::kRemoveShard,
         sim::ShardChurnEvent::kAutoShard},
        {0.50 * w, sim::ChurnKind::kAddShard, 0},
        {0.70 * w, sim::ChurnKind::kAddShard, 0},
    };
  }
  return spec;
}

// ------------------------------------------------------------------ shapes

void shape_fig3(std::span<const api::ScenarioSpec> specs,
                std::span<const api::SweepReport> reports,
                const Flags& /*flags*/) {
  const api::ScenarioSpec& spec = specs[0];
  for (const std::string& method : spec.methods) {
    std::printf("-- %s --\n", method.c_str());
    TextTable table({"rate(tps)", "shards", "avg latency(s)",
                     "max latency(s)", "throughput(tps)", "healthy"});
    for (const double rate : spec.rates) {
      for (const std::uint32_t k : spec.shards) {
        const api::CellReport* cell = reports[0].find(method, k, rate);
        if (cell == nullptr) continue;
        // "Healthy" = the system keeps up with the input rate: everything
        // drains shortly after the last transaction is issued.
        const double issue_window_s =
            static_cast<double>(cell->txs) / rate;
        const bool healthy = cell->completed &&
                             cell->duration_s.max <= issue_window_s + 30.0;
        table.add_row({TextTable::fmt_int(static_cast<long long>(rate)),
                       std::to_string(k),
                       TextTable::fmt(cell->avg_latency_s.mean, 1),
                       TextTable::fmt(cell->max_latency_s.mean, 1),
                       TextTable::fmt(cell->throughput_tps.mean, 0),
                       healthy ? "yes" : "no"});
      }
    }
    table.print();
    std::printf("\n");
  }
}

void shape_fig4(std::span<const api::ScenarioSpec> specs,
                std::span<const api::SweepReport> reports,
                const Flags& flags) {
  const api::ScenarioSpec& spec = specs[0];
  const std::uint32_t k = spec.shards[0];

  std::printf("-- Fig. 4a: throughput vs rate at %u shards --\n", k);
  TextTable table_a =
      rate_method_table(reports[0], spec.methods, spec.rates, k,
                        &api::CellReport::throughput_tps, 0);
  table_a.print();
  maybe_save_csv(flags, "fig4a_throughput", table_a);

  std::printf("\n-- Fig. 4b: maximum throughput at %u shards --\n", k);
  std::vector<double> best(spec.methods.size(), 0.0);
  for (std::size_t m = 0; m < spec.methods.size(); ++m) {
    for (const double rate : spec.rates) {
      const api::CellReport* cell = reports[0].find(spec.methods[m], k, rate);
      if (cell != nullptr) {
        best[m] = std::max(best[m], cell->throughput_tps.mean);
      }
    }
  }
  TextTable table_b({"method", "max throughput(tps)", "OptChain gain"});
  for (std::size_t m = 0; m < spec.methods.size(); ++m) {
    // Signed gain: negative means this baseline beat OptChain on this run
    // (possible at reduced scale), and the sign must say so.
    const double gain = best[m] > 0.0 ? (best[0] - best[m]) / best[m] : 0.0;
    table_b.add_row({spec.methods[m], TextTable::fmt(best[m], 0),
                     m == 0 ? "-"
                            : TextTable::fmt_signed_percent(gain, 1)});
  }
  table_b.print();
  maybe_save_csv(flags, "fig4b_max_throughput", table_b);
  std::printf("\npaper: OptChain's 16-shard maximum is +34.4%% vs OmniLedger, "
              "+30.5%% vs Metis, +16.6%% vs Greedy\n");
}

void shape_fig5(std::span<const api::ScenarioSpec> specs,
                std::span<const api::SweepReport> reports,
                const Flags& flags) {
  const api::ScenarioSpec& spec = specs[0];
  const double window_s = spec.commit_window_s;
  std::printf("window = %.0f s (paper: 50 s)\n\n", window_s);

  std::vector<std::vector<std::uint64_t>> series;
  std::size_t max_windows = 0;
  for (const std::string& method : spec.methods) {
    const api::CellReport* cell =
        reports[0].find(method, spec.shards[0], spec.rates[0]);
    series.push_back(cell != nullptr
                         ? cell->first().sim->commits_per_window.counts()
                         : std::vector<std::uint64_t>{});
    max_windows = std::max(max_windows, series.back().size());
  }

  std::vector<std::string> header{"window"};
  header.insert(header.end(), spec.methods.begin(), spec.methods.end());
  TextTable table(std::move(header));
  for (std::size_t w = 0; w < max_windows; ++w) {
    std::vector<std::string> row{
        TextTable::fmt(static_cast<double>(w) * window_s, 0) + "s"};
    for (const auto& counts : series) {
      row.push_back(TextTable::fmt_int(
          w < counts.size() ? static_cast<long long>(counts[w]) : 0));
    }
    table.add_row(std::move(row));
  }
  table.print();
  maybe_save_csv(flags, "fig5_commit_timeline", table);
}

void shape_fig6(std::span<const api::ScenarioSpec> specs,
                std::span<const api::SweepReport> reports,
                const Flags& /*flags*/) {
  const api::ScenarioSpec& spec = specs[0];
  for (const std::string& method : spec.methods) {
    const api::CellReport* cell =
        reports[0].find(method, spec.shards[0], spec.rates[0]);
    if (cell == nullptr) continue;
    const auto& tracker = cell->first().sim->queue_tracker;
    std::printf("-- %s (worst max queue %llu; paper: OptChain ~44k, Metis "
                "~507k, Greedy ~230k, OmniLedger ~499k at full scale) --\n",
                method.c_str(),
                static_cast<unsigned long long>(tracker.global_max()));
    TextTable table({"time(s)", "max queue", "min queue"});
    const auto& snapshots = tracker.snapshots();
    // Print ~16 evenly spaced snapshots.
    const std::size_t step = std::max<std::size_t>(1, snapshots.size() / 16);
    for (std::size_t i = 0; i < snapshots.size(); i += step) {
      table.add_row(
          {TextTable::fmt(snapshots[i].time, 0),
           TextTable::fmt_int(static_cast<long long>(snapshots[i].max_queue)),
           TextTable::fmt_int(
               static_cast<long long>(snapshots[i].min_queue))});
    }
    table.print();
    std::printf("\n");
  }
}

void shape_fig7(std::span<const api::ScenarioSpec> specs,
                std::span<const api::SweepReport> reports,
                const Flags& /*flags*/) {
  const api::ScenarioSpec& spec = specs[0];
  std::vector<const stats::QueueTracker*> trackers;
  std::size_t max_len = 0;
  for (const std::string& method : spec.methods) {
    const api::CellReport* cell =
        reports[0].find(method, spec.shards[0], spec.rates[0]);
    trackers.push_back(cell != nullptr
                           ? &cell->first().sim->queue_tracker
                           : nullptr);
    if (trackers.back() != nullptr) {
      max_len = std::max(max_len, trackers.back()->snapshots().size());
    }
  }

  std::vector<std::string> header{"time(s)"};
  header.insert(header.end(), spec.methods.begin(), spec.methods.end());
  TextTable table(std::move(header));
  const std::size_t step = std::max<std::size_t>(1, max_len / 20);
  for (std::size_t i = 0; i < max_len; i += step) {
    std::vector<std::string> row;
    row.push_back(TextTable::fmt(
        trackers[0] != nullptr && i < trackers[0]->snapshots().size()
            ? trackers[0]->snapshots()[i].time
            : static_cast<double>(i),
        0));
    for (const stats::QueueTracker* tracker : trackers) {
      row.push_back(tracker != nullptr && i < tracker->snapshots().size()
                        ? TextTable::fmt(tracker->snapshots()[i].ratio(), 1)
                        : "-");
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nworst ratio:  ");
  for (std::size_t m = 0; m < spec.methods.size(); ++m) {
    std::printf("%s=%.1f  ", spec.methods[m].c_str(),
                trackers[m] != nullptr ? trackers[m]->worst_ratio() : 0.0);
  }
  std::printf("\npaper shape: Metis and Greedy orders of magnitude above "
              "OptChain/OmniLedger\n");
}

void shape_latency_figure(std::span<const api::ScenarioSpec> specs,
                          std::span<const api::SweepReport> reports,
                          const Flags& flags, const char* figure,
                          api::Aggregate api::CellReport::*metric,
                          const char* csv_prefix) {
  const api::ScenarioSpec& spec_a = specs[0];
  const std::uint32_t k = spec_a.shards[0];
  std::printf("-- Fig. %sa: latency (s) vs rate at %u shards --\n", figure,
              k);
  TextTable table_a =
      rate_method_table(reports[0], spec_a.methods, spec_a.rates, k, metric,
                        1);
  table_a.print();
  maybe_save_csv(flags, std::string(csv_prefix) + "a", table_a);

  std::printf("\n-- Fig. %sb: latency (s) at (rate, #shards) pairings --\n",
              figure);
  TextTable table_b = pairing_method_table(reports[1], specs[1].methods,
                                           specs[1].pairings, metric, 1);
  table_b.print();
  maybe_save_csv(flags, std::string(csv_prefix) + "b", table_b);
}

void shape_fig10(std::span<const api::ScenarioSpec> specs,
                 std::span<const api::SweepReport> reports,
                 const Flags& flags) {
  const api::ScenarioSpec& spec = specs[0];
  const std::vector<double> thresholds = {2,  4,  6,  8,  10, 15, 20,
                                          30, 40, 60, 90, 120};
  std::vector<std::vector<double>> cdfs;
  for (const std::string& method : spec.methods) {
    const api::CellReport* cell =
        reports[0].find(method, spec.shards[0], spec.rates[0]);
    cdfs.push_back(cell != nullptr
                       ? cell->first().sim->latencies.cdf_at(thresholds)
                       : std::vector<double>(thresholds.size(), 0.0));
  }

  std::vector<std::string> header{"latency <= (s)"};
  header.insert(header.end(), spec.methods.begin(), spec.methods.end());
  TextTable table(std::move(header));
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    std::vector<std::string> row{TextTable::fmt(thresholds[i], 0)};
    for (const auto& cdf : cdfs) {
      row.push_back(TextTable::fmt_percent(cdf[i], 1));
    }
    table.add_row(std::move(row));
  }
  table.print();
  maybe_save_csv(flags, "fig10_latency_cdf", table);
  std::printf("\npaper at 10 s: OptChain 70%%, Greedy 41.2%%, OmniLedger "
              "7.9%%, Metis 2.4%%\n");
}

void shape_table1(std::span<const api::ScenarioSpec> specs,
                  std::span<const api::SweepReport> reports,
                  const Flags& flags) {
  const api::ScenarioSpec& spec = specs[0];
  TextTable table({"k", "Metis", "Greedy", "Omniledger", "T2S-based"});
  for (const std::uint32_t k : spec.shards) {
    std::vector<std::string> row{std::to_string(k)};
    for (const std::string& method : spec.methods) {
      const api::CellReport* cell =
          reports[0].find(method, k, spec.rates[0]);
      row.push_back(TextTable::fmt_percent(
          cell != nullptr ? cell->cross_fraction.mean : 0.0));
    }
    table.add_row(std::move(row));
  }
  table.print();
  maybe_save_csv(flags, "table1_cross_shard", table);
}

void shape_table2(std::span<const api::ScenarioSpec> specs,
                  std::span<const api::SweepReport> reports,
                  const Flags& flags) {
  const api::ScenarioSpec& spec = specs[0];
  std::printf("scale: warm %llu + placed %llu (paper: 30M + 1M) — override "
              "with --warm_ratio/--txs\n\n",
              static_cast<unsigned long long>(
                  static_cast<std::uint64_t>(spec.warm_ratio) * spec.txs),
              static_cast<unsigned long long>(spec.txs));
  TextTable table({"k", "Greedy", "Omniledger", "T2S-based", "Greedy %",
                   "Omniledger %", "T2S %"});
  for (const std::uint32_t k : spec.shards) {
    std::vector<std::string> row{std::to_string(k)};
    std::vector<std::string> percent_cells;
    for (const std::string& method : spec.methods) {
      const api::CellReport* cell =
          reports[0].find(method, k, spec.rates[0]);
      row.push_back(TextTable::fmt(
          cell != nullptr ? cell->cross_txs.mean : 0.0, 0));
      percent_cells.push_back(TextTable::fmt_percent(
          cell != nullptr ? cell->cross_fraction.mean : 0.0));
    }
    for (auto& cell : percent_cells) row.push_back(std::move(cell));
    table.add_row(std::move(row));
  }
  table.print();
  maybe_save_csv(flags, "table2_warm_start", table);
}

void shape_ablation(std::span<const api::ScenarioSpec> specs,
                    std::span<const api::SweepReport> reports,
                    const Flags& flags) {
  const api::ScenarioSpec& spec = specs[0];
  std::printf("operating point: %u shards, %.0f tps\n\n", spec.shards[0],
              spec.rates[0]);

  TextTable table({"variant", "cross-TX", "avg latency(s)", "max latency(s)",
                   "throughput(tps)"});
  const auto add_cells = [&table](const api::SweepReport& report,
                                  const char* suffix) {
    for (const api::CellReport& cell : report.cells) {
      table.add_row({cell.method + suffix,
                     TextTable::fmt_percent(cell.cross_fraction.mean, 1),
                     TextTable::fmt(cell.avg_latency_s.mean, 1),
                     TextTable::fmt(cell.max_latency_s.mean, 1),
                     TextTable::fmt(cell.throughput_tps.mean, 0)});
    }
  };
  add_cells(reports[0], "");
  add_cells(reports[1], " (RapidChain yanking)");
  table.print();
  maybe_save_csv(flags, "ablation", table);

  // Fault injection: a chronically slow shard, with and without OptChain's
  // L2S routing (hash placement cannot react).
  std::printf("\n-- failure injection: shard 0 running %.0fx slow --\n",
              specs[2].shard_slowdown[0]);
  TextTable fault_table({"variant", "share of txs in slow shard",
                         "avg latency(s)", "throughput(tps)"});
  for (const api::CellReport& cell : reports[2].cells) {
    const auto& sizes = cell.first().shard_sizes;
    std::uint64_t placed = 0;
    for (const std::uint64_t size : sizes) placed += size;
    const double share = placed == 0 ? 0.0
                                     : static_cast<double>(sizes[0]) /
                                           static_cast<double>(placed);
    fault_table.add_row({cell.method, TextTable::fmt_percent(share, 1),
                         TextTable::fmt(cell.avg_latency_s.mean, 1),
                         TextTable::fmt(cell.throughput_tps.mean, 0)});
  }
  fault_table.print();
  std::printf("(uniform share would be %.1f %%)\n", 100.0 / spec.shards[0]);
}

void shape_account(std::span<const api::ScenarioSpec> specs,
                   std::span<const api::SweepReport> reports,
                   const Flags& flags) {
  const api::ScenarioSpec& spec = specs[0];
  TextTable table({"k", "OptChain(T2S)", "Greedy", "Omniledger"});
  for (const std::uint32_t k : spec.shards) {
    std::vector<std::string> row{std::to_string(k)};
    for (const std::string& method : spec.methods) {
      const api::CellReport* cell =
          reports[0].find(method, k, spec.rates[0]);
      row.push_back(TextTable::fmt_percent(
          cell != nullptr ? cell->cross_fraction.mean : 0.0));
    }
    table.add_row(std::move(row));
  }
  table.print();
  maybe_save_csv(flags, "account_model", table);

  std::printf("\n-- simulation at 8 shards, 3000 tps --\n");
  TextTable sim_table(
      {"method", "cross-TX", "avg latency(s)", "throughput(tps)"});
  for (const api::CellReport& cell : reports[1].cells) {
    sim_table.add_row({cell.method,
                       TextTable::fmt_percent(cell.cross_fraction.mean),
                       TextTable::fmt(cell.avg_latency_s.mean, 1),
                       TextTable::fmt(cell.throughput_tps.mean, 0)});
  }
  sim_table.print();
}

/// Per-method summary of a one-operating-point dynamic scenario, plus a
/// commits-per-window timeline that makes the wave/burst visible.
void shape_dynamic(std::span<const api::ScenarioSpec> specs,
                   std::span<const api::SweepReport> reports,
                   const Flags& flags, const char* csv_name,
                   bool show_timeline) {
  const api::ScenarioSpec& spec = specs[0];
  std::printf("operating point: %u shards, %.0f tps nominal\n\n",
              spec.shards[0], spec.rates[0]);

  TextTable table({"method", "cross-TX", "throughput(tps)", "avg lat(s)",
                   "max lat(s)", "aborted", "completed"});
  for (const std::string& method : spec.methods) {
    const api::CellReport* cell =
        reports[0].find(method, spec.shards[0], spec.rates[0]);
    if (cell == nullptr) continue;
    table.add_row({method, TextTable::fmt_percent(cell->cross_fraction.mean),
                   TextTable::fmt(cell->throughput_tps.mean, 0),
                   TextTable::fmt(cell->avg_latency_s.mean, 1),
                   TextTable::fmt(cell->max_latency_s.mean, 1),
                   TextTable::fmt(cell->aborted.mean, 0),
                   cell->completed ? "yes" : "no"});
  }
  table.print();
  maybe_save_csv(flags, csv_name, table);
  if (!show_timeline) return;

  std::printf("\n-- commits per %.0f s window (the wave) --\n",
              spec.commit_window_s);
  std::vector<std::vector<std::uint64_t>> series;
  std::size_t max_windows = 0;
  for (const std::string& method : spec.methods) {
    const api::CellReport* cell =
        reports[0].find(method, spec.shards[0], spec.rates[0]);
    series.push_back(cell != nullptr
                         ? cell->first().sim->commits_per_window.counts()
                         : std::vector<std::uint64_t>{});
    max_windows = std::max(max_windows, series.back().size());
  }
  std::vector<std::string> header{"window"};
  header.insert(header.end(), spec.methods.begin(), spec.methods.end());
  TextTable timeline(std::move(header));
  for (std::size_t w = 0; w < max_windows; ++w) {
    std::vector<std::string> row{
        TextTable::fmt(static_cast<double>(w) * spec.commit_window_s, 0) +
        "s"};
    for (const auto& counts : series) {
      row.push_back(TextTable::fmt_int(
          w < counts.size() ? static_cast<long long>(counts[w]) : 0));
    }
    timeline.add_row(std::move(row));
  }
  timeline.print();
}

void shape_churn(std::span<const api::ScenarioSpec> specs,
                 std::span<const api::SweepReport> reports,
                 const Flags& flags) {
  const api::ScenarioSpec& spec = specs[0];
  std::printf("churn plan: %zu events over a %u-shard start "
              "(remove @25%%, add @50%%, add @70%% of the issue window)\n\n",
              spec.churn.events.size(), spec.shards[0]);
  TextTable table({"method", "cross-TX", "throughput(tps)", "avg lat(s)",
                   "shard changes", "migrated txs", "migrated UTXOs",
                   "completed"});
  for (const std::string& method : spec.methods) {
    const api::CellReport* cell =
        reports[0].find(method, spec.shards[0], spec.rates[0]);
    if (cell == nullptr) continue;
    table.add_row({method, TextTable::fmt_percent(cell->cross_fraction.mean),
                   TextTable::fmt(cell->throughput_tps.mean, 0),
                   TextTable::fmt(cell->avg_latency_s.mean, 1),
                   TextTable::fmt(cell->shard_changes.mean, 0),
                   TextTable::fmt(cell->migrated_txs.mean, 0),
                   TextTable::fmt(cell->migrated_utxos.mean, 0),
                   cell->completed ? "yes" : "no"});
  }
  table.print();
  maybe_save_csv(flags, "churn", table);
}

void shape_repartition(std::span<const api::ScenarioSpec> specs,
                       std::span<const api::SweepReport> reports,
                       const Flags& flags) {
  TextTable table({"part", "method", "cross-TX", "throughput(tps)",
                   "avg lat(s)", "repart events", "moved txs", "moved UTXOs",
                   "deferred", "completed"});
  for (std::size_t part = 0; part < specs.size(); ++part) {
    const api::ScenarioSpec& spec = specs[part];
    for (const std::string& method : spec.methods) {
      const api::CellReport* cell =
          reports[part].find(method, spec.shards[0], spec.rates[0]);
      if (cell == nullptr) continue;
      table.add_row(
          {spec.name, method,
           TextTable::fmt_percent(cell->cross_fraction.mean),
           TextTable::fmt(cell->throughput_tps.mean, 0),
           TextTable::fmt(cell->avg_latency_s.mean, 1),
           TextTable::fmt(cell->repartition_events.mean, 0),
           TextTable::fmt(cell->repartition_migrated_txs.mean, 0),
           TextTable::fmt(cell->repartition_migrated_utxos.mean, 0),
           TextTable::fmt(cell->repartition_deferred_txs.mean, 0),
           cell->completed ? "yes" : "no"});
    }
  }
  table.print();
  maybe_save_csv(flags, "repartition", table);
}

// ---------------------------------------------------------------- registry

std::vector<Scenario> build_registry() {
  std::vector<Scenario> registry;

  registry.push_back({"fig2", "TaN network statistics",
                      "Fig. 2a/2b/2c of the paper (§IV.A)", {}, nullptr,
                      run_fig2});
  registry.push_back({"fig3",
                      "latency & throughput over the (method x rate x "
                      "shards) grid",
                      "Fig. 3a-3d of the paper (§V.B)",
                      {fig3_spec},
                      shape_fig3,
                      nullptr});
  registry.push_back({"fig4", "system throughput vs rate, max throughput",
                      "Fig. 4a/4b of the paper (§V.B.1)",
                      {fig4_spec},
                      shape_fig4,
                      nullptr});
  registry.push_back({"fig5", "committed transactions per time window",
                      "Fig. 5 of the paper (§V.B.1); 6000 tps, 16 shards",
                      {fig5_spec},
                      shape_fig5,
                      nullptr});
  registry.push_back(
      {"fig6", "max/min shard queue sizes over time",
       "Fig. 6a-6d of the paper (§V.B.1); 6000 tps, 16 shards",
       {[](const Flags& flags) { return stressed_point_spec(flags, "fig6"); }},
       shape_fig6,
       nullptr});
  registry.push_back(
      {"fig7", "max/min queue-size ratio over time",
       "Fig. 7 of the paper (§V.B.1); 6000 tps, 16 shards",
       {[](const Flags& flags) { return stressed_point_spec(flags, "fig7"); }},
       shape_fig7,
       nullptr});
  registry.push_back(
      {"fig8", "average transaction latency",
       "Fig. 8a (k=16) and Fig. 8b of the paper (§V.B.2)",
       {fig8a_spec, fig8b_spec},
       [](std::span<const api::ScenarioSpec> specs,
          std::span<const api::SweepReport> reports, const Flags& flags) {
         shape_latency_figure(specs, reports, flags, "8",
                              &api::CellReport::avg_latency_s, "fig8");
         std::printf("\npaper: OptChain's highest average across these "
                     "pairings is 10.5 s; OmniLedger reaches 346.2 s at "
                     "6000/16\n");
       },
       nullptr});
  registry.push_back(
      {"fig9", "maximum transaction latency",
       "Fig. 9a (k=16) and Fig. 9b of the paper (§V.B.2)",
       {[](const Flags& flags) {
          api::ScenarioSpec spec = fig8a_spec(flags);
          spec.name = "fig9a";
          return spec;
        },
        [](const Flags& flags) {
          api::ScenarioSpec spec = fig8b_spec(flags);
          spec.name = "fig9b";
          return spec;
        }},
       [](std::span<const api::ScenarioSpec> specs,
          std::span<const api::SweepReport> reports, const Flags& flags) {
         shape_latency_figure(specs, reports, flags, "9",
                              &api::CellReport::max_latency_s, "fig9");
       },
       nullptr});
  registry.push_back(
      {"fig10", "confirmation-latency CDF",
       "Fig. 10 of the paper (§V.B.2); 6000 tps, 16 shards",
       {[](const Flags& flags) {
          return stressed_point_spec(flags, "fig10");
        }},
       shape_fig10,
       nullptr});
  registry.push_back({"fig11", "OptChain scalability (max sustainable rate)",
                      "Fig. 11 of the paper (§V.C)", {}, nullptr, run_fig11});
  registry.push_back({"table1", "cross-TX percentage, from scratch",
                      "Table I of the paper (§IV.B)",
                      {table1_spec},
                      shape_table1,
                      nullptr});
  registry.push_back({"table2", "cross-TXs from a warm-started system",
                      "Table II of the paper (§IV.B)",
                      {table2_spec},
                      shape_table2,
                      nullptr});
  registry.push_back({"ablation", "OptChain design-choice ablation",
                      "design-choice ablation (not a paper figure)",
                      {ablation_main_spec, ablation_rapidchain_spec,
                       ablation_slowdown_spec},
                      shape_ablation,
                      nullptr});
  registry.push_back({"account",
                      "account-model (Ethereum-style) placement study",
                      "extension (paper §II related work)",
                      {account_place_spec, account_sim_spec},
                      shape_account,
                      nullptr});
  registry.push_back(
      {"dynamic", "rate waves: ramp, flash crowd, diurnal cycle",
       "extension (dynamic workloads; cf. Shard Scheduler, AFT 2021)",
       {dynamic_spec},
       [](std::span<const api::ScenarioSpec> specs,
          std::span<const api::SweepReport> reports, const Flags& flags) {
         shape_dynamic(specs, reports, flags, "dynamic",
                       /*show_timeline=*/true);
       },
       nullptr});
  registry.push_back(
      {"hotspot", "Zipfian rotating hot set + consolidation-spam burst",
       "extension (dynamic workloads; cf. Fig. 2c flood episode)",
       {hotspot_spec},
       [](std::span<const api::ScenarioSpec> specs,
          std::span<const api::SweepReport> reports, const Flags& flags) {
         shape_dynamic(specs, reports, flags, "hotspot",
                       /*show_timeline=*/false);
       },
       nullptr});
  registry.push_back({"churn",
                      "shards leaving/joining mid-run, migration accounting",
                      "extension (dynamic shard sets; cf. OmniLedger epochs)",
                      {churn_spec},
                      shape_churn,
                      nullptr});
  registry.push_back(
      {"repartition",
       "online Metis re-partitioning under a migration budget, two cadences "
       "x churn on/off, Fennel streaming baseline",
       "extension (online repartitioning; cf. Fennel WSDM'14, Metis)",
       {[](const Flags& flags) {
          return repartition_spec(flags, "repartition_fast", 0.20, false);
        },
        [](const Flags& flags) {
          return repartition_spec(flags, "repartition_slow", 0.45, false);
        },
        [](const Flags& flags) {
          return repartition_spec(flags, "repartition_fast_churn", 0.20,
                                  true);
        },
        [](const Flags& flags) {
          return repartition_spec(flags, "repartition_slow_churn", 0.45,
                                  true);
        }},
       shape_repartition,
       nullptr});
  registry.push_back({"parallel",
                      "parallel engine events/s + speedup vs sequential "
                      "(--sim_jobs=1,2,4 --k= --rate=)",
                      "engineering benchmark (determinism contract of "
                      "sim/parallel/)",
                      {},
                      nullptr,
                      run_parallel_bench,
                      /*exclude_from_all=*/true});
  registry.push_back({"batch",
                      "micro-batched placement tx/s + speedup vs the "
                      "tx-at-a-time loop (--place_jobs=1,2,4 --batch= "
                      "--k= --method=)",
                      "engineering benchmark (determinism contract of "
                      "api/batch_pipeline.hpp)",
                      {},
                      nullptr,
                      run_batch_bench,
                      /*exclude_from_all=*/true});
  registry.push_back({"observability",
                      "run-telemetry layer: trace bit-identity over "
                      "--sim_jobs, tracer overhead budget, engine phase "
                      "profile (--max_overhead= --reps= --trace_out=)",
                      "engineering benchmark (src/obs; determinism rule 9)",
                      {},
                      nullptr,
                      run_observability,
                      /*exclude_from_all=*/true});
  registry.push_back({"network",
                      "placement lineup under link-level topologies "
                      "(--topology=flat,wan,congested --inter_scale=1,2 "
                      "--k= --rate=)",
                      "extension (link-level fabric; sim/fabric/)",
                      {},
                      nullptr,
                      run_network_bench});
  registry.push_back({"trace",
                      "placement lineup replayed from an imported .optx "
                      "trace (--trace=; see optchain-trace)",
                      "§V.A replay method (real-dataset placement)",
                      {},
                      nullptr,
                      run_trace});
  return registry;
}

}  // namespace

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> kRegistry = build_registry();
  return kRegistry;
}

const Scenario* find_scenario(std::string_view name) {
  for (const Scenario& scenario : scenarios()) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

void register_bench_placers() {
  static const bool registered = [] {
    api::PlacerRegistry& registry = api::PlacerRegistry::instance();
    registry.register_placer(
        "OptChain-w0.1", [](const api::PlacerContext& context) {
          core::OptChainConfig config;
          config.l2s_weight = 0.1;
          return std::make_unique<core::OptChainPlacer>(context.dag, config,
                                                        "OptChain-w0.1");
        });
    registry.register_placer(
        "OptChain-outdiv", [](const api::PlacerContext& context) {
          if (context.stream.empty()) {
            throw std::invalid_argument(
                "OptChain-outdiv needs a materialized stream (declared-"
                "outputs divisor)");
          }
          core::OptChainConfig config;
          config.t2s.divisor = core::DivisorPolicy::kDeclaredOutputs;
          const std::span<const tx::Transaction> stream = context.stream;
          return std::make_unique<core::OptChainPlacer>(
              context.dag, config, "OptChain-outdiv",
              [stream](tx::TxIndex index) {
                return static_cast<std::uint32_t>(
                    stream[index].outputs.size());
              });
        });
    registry.register_placer(
        "Greedy-smallties", [](const api::PlacerContext& context) {
          return std::make_unique<placement::GreedyPlacer>(
              context.stream_size_hint(), 0.1,
              placement::GreedyTieBreak::kSmallestShard);
        });
    return true;
  }();
  (void)registered;
}

int run_scenario(const Scenario& scenario, const Flags& flags,
                 JsonWriter* json) {
  print_header(scenario.name + " — " + scenario.title,
               scenario.paper_ref,
               smoke(flags) ? "--smoke (CI-sized streams)"
                            : "flag-controlled (--txs / --issue_seconds)");
  if (json != nullptr) json->begin_object(scenario.name);
  int exit_code = 0;
  if (scenario.custom) {
    exit_code = scenario.custom(flags, json);
  } else {
    api::SweepOptions options;
    options.jobs =
        static_cast<unsigned>(std::max<std::int64_t>(0,
                                                     flags.get_int("jobs",
                                                                   1)));
    const api::SweepRunner runner(options);
    std::vector<api::ScenarioSpec> specs;
    std::vector<api::SweepReport> reports;
    specs.reserve(scenario.parts.size());
    reports.reserve(scenario.parts.size());
    for (const auto& part : scenario.parts) {
      specs.push_back(part(flags));
      reports.push_back(runner.run(specs.back()));
    }
    if (json != nullptr) {
      for (const api::SweepReport& report : reports) {
        json->begin_object(report.scenario);
        report.write_json(*json);
        json->end_object();
      }
    }
    if (scenario.shape) {
      scenario.shape(specs, reports, flags);
    } else {
      for (const api::SweepReport& report : reports) {
        report.to_table().print();
      }
    }
  }
  if (json != nullptr) json->end_object();
  std::printf("\n");
  return exit_code;
}

}  // namespace optchain::bench

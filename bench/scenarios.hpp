// The paper-figure scenario registry behind the `optchain-bench` tool.
//
// Every figure/table of the paper's evaluation is one registered Scenario:
// a name (`fig4`, `table1`, ...), one or more declarative
// api::ScenarioSpec builders (its sweep "parts"), and a shaping function
// that renders the finished SweepReports in the figure's layout. The
// SweepRunner executes all parts — there is no per-figure driver loop
// anywhere anymore. Two scenarios (fig2's TaN statistics, fig11's adaptive
// max-rate search) don't fit a static grid and plug in through the `custom`
// hook instead.
//
// Beyond the paper, three dynamic-workload scenarios (`dynamic`, `hotspot`,
// `churn`) stress placement where the workload *moves*: rate waves through a
// workload::DynamicProfile decorator, Zipfian hot-set spam injection, and
// scripted shard churn with migration accounting (sim::ShardChurnPlan).
// The `trace` scenario replays the placement lineup from an imported .optx
// trace container (--trace=; see src/trace and the optchain-trace tool) —
// the paper's real-dataset replay method, import once / replay every cell.
//
// Shared flags (every scenario): --seed, --replicas, --jobs=N, --smoke
// (CI-sized streams), --txs=N (override stream length), --issue_seconds,
// --csv_dir=DIR, --methods=A,B (method line-up override; an empty list is
// rejected loudly), plus the per-scenario axis overrides documented by
// `optchain-bench list`.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/scenario_spec.hpp"
#include "api/sweep_runner.hpp"
#include "common/flags.hpp"
#include "common/json_writer.hpp"

namespace optchain::bench {

struct Scenario {
  std::string name;       // registry key, e.g. "fig4"
  std::string title;      // one-line description for `list`
  std::string paper_ref;  // what it reproduces
  /// Sweep parts; empty for fully custom scenarios.
  std::vector<std::function<api::ScenarioSpec(const Flags&)>> parts;
  /// Figure-shaped rendering of the finished sweeps: specs[i] is the exact
  /// spec parts[i] produced and reports[i] its result, so shapes pivot over
  /// the axes that actually ran instead of re-deriving them. Null falls
  /// back to the generic SweepReport table.
  std::function<void(std::span<const api::ScenarioSpec>,
                     std::span<const api::SweepReport>, const Flags&)>
      shape;
  /// Fully custom scenarios; `json` (nullable) is an open object to add
  /// result fields to.
  std::function<int(const Flags&, JsonWriter*)> custom;
  /// Excluded from `optchain-bench all` (still runnable by name): set for
  /// wall-clock benchmarks whose output is inherently non-reproducible,
  /// preserving `all`'s byte-identical-JSON contract.
  bool exclude_from_all = false;
};

/// The 14 paper figures/tables plus the dynamic-workload extensions
/// (dynamic/hotspot/churn) and the trace-replay scenario (`trace`);
/// registration order = paper order, extensions last.
const std::vector<Scenario>& scenarios();

/// Case-sensitive lookup; nullptr when unknown.
const Scenario* find_scenario(std::string_view name);

/// Registers the ablation's placer variants (OptChain-w0.1,
/// OptChain-outdiv, Greedy-smallties) into the global PlacerRegistry so
/// they are reachable as ScenarioSpec method names. Idempotent.
void register_bench_placers();

/// Runs one scenario end-to-end: expand parts → SweepRunner(--jobs) →
/// shape/print → append to `json` (nullable) under an object keyed by the
/// scenario's name. Returns a process exit code.
int run_scenario(const Scenario& scenario, const Flags& flags,
                 JsonWriter* json);

}  // namespace optchain::bench

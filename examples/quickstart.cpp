// Quickstart: the OptChain public API in ~40 lines.
//
// Builds a small Bitcoin-like transaction stream, places it into 8 shards
// with OptChain, and reports the cross-shard fraction against OmniLedger's
// hash-based placement. Each strategy comes out of the api::PlacerRegistry
// by name; api::PlacementPipeline owns the TaN dag, the shard assignment and
// the cross-TX accounting.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "api/placement_pipeline.hpp"
#include "workload/bitcoin_like_generator.hpp"

using namespace optchain;

int main() {
  constexpr std::uint32_t kShards = 8;

  // A 50k-transaction synthetic Bitcoin-like stream (UTXO-valid, power-law
  // degrees, wallet/community structure).
  workload::BitcoinLikeGenerator generator;
  const std::vector<tx::Transaction> txs = generator.generate(50000);

  // OptChain (paper Algorithm 1: T2S affinity + L2S balance).
  api::PlacementPipeline optchain = api::make_pipeline("OptChain", kShards);
  const double optchain_cross = optchain.place_stream(txs).fraction();

  // OmniLedger's default: shard = hash(txid) mod k.
  api::PlacementPipeline random = api::make_pipeline("OmniLedger", kShards);
  const double random_cross = random.place_stream(txs).fraction();

  std::printf("placed %zu transactions into %u shards\n", txs.size(), kShards);
  std::printf("  OptChain   cross-shard fraction: %5.1f %%\n",
              100.0 * optchain_cross);
  std::printf("  OmniLedger cross-shard fraction: %5.1f %%\n",
              100.0 * random_cross);
  std::printf("  reduction: %.1fx\n", random_cross / optchain_cross);
  return 0;
}

// Quickstart: the OptChain public API in ~60 lines.
//
// Builds a small Bitcoin-like transaction stream, places it into 8 shards
// with OptChain, and reports the cross-shard fraction against OmniLedger's
// hash-based placement.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/optchain_placer.hpp"
#include "placement/random_placer.hpp"
#include "stats/metrics.hpp"
#include "workload/bitcoin_like_generator.hpp"

using namespace optchain;

namespace {

/// Streams transactions through a placement strategy; returns the fraction
/// of non-coinbase transactions that ended up cross-shard.
double place_stream(const std::vector<tx::Transaction>& txs,
                    placement::Placer& placer, graph::TanDag& dag,
                    std::uint32_t num_shards) {
  placement::ShardAssignment assignment(num_shards);
  stats::CrossTxCounter counter;

  for (const tx::Transaction& transaction : txs) {
    // 1. Register the transaction as a TaN node (edges to the transactions
    //    whose outputs it spends).
    const std::vector<tx::TxIndex> inputs = transaction.distinct_input_txs();
    dag.add_node(inputs);

    // 2. Ask the placer for a shard, then record the decision.
    placement::PlacementRequest request;
    request.index = transaction.index;
    request.input_txs = inputs;
    request.hash64 = transaction.txid().low64();
    const placement::ShardId shard = placer.choose(request, assignment);
    assignment.record(transaction.index, shard);
    placer.notify_placed(request, shard);

    if (!transaction.is_coinbase()) {
      counter.record(assignment.is_cross_shard(inputs, shard));
    }
  }
  return counter.fraction();
}

}  // namespace

int main() {
  constexpr std::uint32_t kShards = 8;

  // A 50k-transaction synthetic Bitcoin-like stream (UTXO-valid, power-law
  // degrees, wallet/community structure).
  workload::BitcoinLikeGenerator generator;
  const std::vector<tx::Transaction> txs = generator.generate(50000);

  // OptChain (paper Algorithm 1: T2S affinity + L2S balance).
  graph::TanDag optchain_dag;
  core::OptChainPlacer optchain(optchain_dag);
  const double optchain_cross =
      place_stream(txs, optchain, optchain_dag, kShards);

  // OmniLedger's default: shard = hash(txid) mod k.
  graph::TanDag random_dag;
  placement::RandomPlacer random;
  const double random_cross = place_stream(txs, random, random_dag, kShards);

  std::printf("placed %zu transactions into %u shards\n", txs.size(), kShards);
  std::printf("  OptChain   cross-shard fraction: %5.1f %%\n",
              100.0 * optchain_cross);
  std::printf("  OmniLedger cross-shard fraction: %5.1f %%\n",
              100.0 * random_cross);
  std::printf("  reduction: %.1fx\n", random_cross / optchain_cross);
  return 0;
}

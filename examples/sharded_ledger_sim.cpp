// Full sharded-ledger simulation: the paper's §V experiment in one program.
//
// Simulates an OmniLedger-style sharded blockchain (mempools, 1 MB blocks,
// BFT committees, the two-phase cross-shard commit protocol) fed with a
// Bitcoin-like stream, and compares OptChain against random placement.
//
//   $ ./examples/sharded_ledger_sim [--txs=120000] [--rate=4000] [--k=8]
#include <cstdio>

#include "api/run_spec.hpp"
#include "common/flags.hpp"
#include "workload/bitcoin_like_generator.hpp"

using namespace optchain;

namespace {

void report(const sim::SimResult& result) {
  std::printf("  placement:          %s\n", result.placer_name.c_str());
  std::printf("  committed:          %llu / %llu txs%s\n",
              static_cast<unsigned long long>(result.committed_txs),
              static_cast<unsigned long long>(result.total_txs),
              result.completed ? "" : "  (INCOMPLETE)");
  std::printf("  cross-shard:        %.1f %%\n",
              100.0 * result.cross_fraction());
  std::printf("  throughput:         %.0f tps\n", result.throughput_tps);
  std::printf("  avg latency:        %.1f s\n", result.avg_latency_s);
  std::printf("  p95 latency:        %.1f s\n",
              result.latencies.quantile(0.95));
  std::printf("  max latency:        %.1f s\n", result.max_latency_s);
  std::printf("  blocks committed:   %llu\n",
              static_cast<unsigned long long>(result.total_blocks));
  std::printf("  peak shard queue:   %llu txs\n\n",
              static_cast<unsigned long long>(
                  result.queue_tracker.global_max()));
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("txs", 120000));
  const auto rate = flags.get_double("rate", 4000.0);
  const auto k = static_cast<std::uint32_t>(flags.get_int("k", 8));

  std::printf("simulating %zu transactions at %.0f tps over %u shards\n",
              n, rate, k);
  std::printf("(1 MB blocks, 2000 txs/block, 400-validator committees, "
              "100 ms links, 20 Mbps)\n\n");

  workload::BitcoinLikeGenerator generator;
  const std::vector<tx::Transaction> txs = generator.generate(n);

  // One RunSpec describes the operating point; only the method changes.
  api::RunSpec spec;
  spec.num_shards = k;
  spec.rate_tps = rate;
  for (const char* method : {"OptChain", "OmniLedger"}) {
    spec.method = method;
    report(api::simulate(spec, txs).sim.value());
  }
  return 0;
}

// TaN network explorer: builds the Transactions-as-Nodes DAG (paper §IV.A,
// Definition 1) from a generated stream — or from an on-disk edge list in
// the documented format — and prints its structural statistics, offline
// Metis partition quality, and a per-node drill-down.
//
//   $ ./examples/tan_explorer                       # synthetic stream
//   $ ./examples/tan_explorer --load=path/tan.txt   # your own dataset
//   $ ./examples/tan_explorer --save=path/tan.txt   # export the stream
#include <cstdio>

#include "common/flags.hpp"
#include "common/histogram.hpp"
#include "metis/kway_partitioner.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/dataset_loader.hpp"
#include "workload/tan_builder.hpp"

using namespace optchain;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("txs", 200000));

  graph::TanDag dag;
  if (flags.has("load")) {
    const std::string path = flags.get_string("load", "");
    std::printf("loading TaN from %s\n", path.c_str());
    dag = workload::load_tan_edge_list(path);
  } else {
    workload::BitcoinLikeGenerator generator;
    dag = workload::build_tan(generator.generate(n));
  }
  if (flags.has("save")) {
    const std::string path = flags.get_string("save", "");
    workload::save_tan_edge_list(dag, path);
    std::printf("saved TaN to %s\n", path.c_str());
  }

  const auto stats = graph::compute_degree_stats(dag);
  std::printf("\nTaN network\n");
  std::printf("  nodes (transactions):  %llu\n",
              static_cast<unsigned long long>(stats.nodes));
  std::printf("  edges (spend links):   %llu\n",
              static_cast<unsigned long long>(stats.edges));
  std::printf("  average degree:        %.3f\n", stats.average_degree);
  std::printf("  coinbase nodes:        %llu\n",
              static_cast<unsigned long long>(stats.coinbase_nodes));
  std::printf("  unspent frontier:      %llu\n",
              static_cast<unsigned long long>(stats.unspent_nodes));

  IntHistogram inputs_hist;
  for (graph::NodeId u = 0; u < dag.num_nodes(); ++u) {
    inputs_hist.add(dag.input_degree(u));
  }
  std::printf("  P[inputs < 3]:         %.1f %% (paper: 86.3 %%)\n",
              100.0 * inputs_hist.fraction_below(3));

  // Offline partition quality (the oracle bound on cross-TX placement).
  for (std::uint32_t k : {4u, 16u}) {
    metis::PartitionConfig config;
    config.k = k;
    const graph::Csr undirected = dag.to_undirected();
    const auto parts = metis::partition_kway(undirected, config);
    const double cut_fraction =
        static_cast<double>(metis::edge_cut(undirected, parts)) /
        static_cast<double>(std::max<std::size_t>(dag.num_edges(), 1));
    std::printf("  metis %2u-way edge cut: %.2f %% of edges (balance %.3f)\n",
                k, 100.0 * cut_fraction, metis::balance_factor(parts, k));
  }

  // Drill into the highest-spender node (most-referenced transaction).
  graph::NodeId hub = 0;
  for (graph::NodeId u = 1; u < dag.num_nodes(); ++u) {
    if (dag.spender_count(u) > dag.spender_count(hub)) hub = u;
  }
  std::printf("\nmost-spent transaction: tx%u (%u spenders, %u inputs)\n", hub,
              dag.spender_count(hub), dag.input_degree(hub));
  std::printf("its inputs:");
  for (const graph::NodeId v : dag.inputs(hub)) std::printf(" tx%u", v);
  std::printf("\n");
  return 0;
}

// Wallet-side placement: what the paper's "user-side software" deployment
// looks like (§I "Practicality", §III.C).
//
// A wallet holds a few UTXOs, samples per-shard round-trip times and
// verification-time estimates (queue depth x recent consensus time), and
// uses OptChain's temporal fitness to choose the shard for a new payment.
// The example prints the full decision breakdown: T2S score, L2S estimate,
// and the combined fitness per shard.
//
//   $ ./examples/wallet_placement
#include <cstdio>

#include "api/placement_pipeline.hpp"
#include "core/optchain_placer.hpp"
#include "latency/l2s_model.hpp"
#include "workload/bitcoin_like_generator.hpp"

using namespace optchain;

int main() {
  constexpr std::uint32_t kShards = 4;

  // Bootstrap a small history so the wallet's inputs have TaN context.
  workload::BitcoinLikeGenerator generator;
  const std::vector<tx::Transaction> history = generator.generate(20000);

  api::PlacementPipeline pipeline = api::make_pipeline("OptChain", kShards);

  // What the wallet observes about each shard: its own sampled RTT and a
  // verification estimate derived from queue depth. Shard 2 is backlogged.
  const std::vector<latency::ShardTiming> observed = {
      {.mean_comm = 0.21, .mean_verify = 2.9},   // shard 0
      {.mean_comm = 0.25, .mean_verify = 3.1},   // shard 1
      {.mean_comm = 0.23, .mean_verify = 19.5},  // shard 2: deep queue
      {.mean_comm = 0.28, .mean_verify = 3.0},   // shard 3
  };

  for (const tx::Transaction& transaction : history) {
    pipeline.step(transaction, observed);
  }

  // The wallet now issues one more payment spending two recent outputs.
  // Find two spendable-looking recent transactions as inputs.
  const auto in_a = static_cast<tx::TxIndex>(history.size() - 2);
  const auto in_b = static_cast<tx::TxIndex>(history.size() - 17);
  tx::Transaction payment;
  payment.index = static_cast<tx::TxIndex>(history.size());
  payment.inputs = {{in_a, 0}, {in_b, 0}};
  payment.outputs = {{1000, 7}, {250, 8}};

  // What-if scoring: the pipeline registers the TaN node and asks the placer
  // without committing a decision.
  const placement::ShardId choice = pipeline.preview(payment, observed);
  const auto& assignment = pipeline.assignment();

  std::printf("wallet payment spending tx%u and tx%u\n", in_a, in_b);
  std::printf("input shards: tx%u -> shard %u, tx%u -> shard %u\n\n", in_a,
              assignment.shard_of(in_a), in_b, assignment.shard_of(in_b));

  // Decision breakdown (the temporal fitness of Algorithm 1, line 9).
  const auto& placer = dynamic_cast<const core::OptChainPlacer&>(
      pipeline.placer());
  latency::L2sEstimator l2s;
  const std::vector<placement::ShardId> input_shards =
      assignment.input_shards(payment.distinct_input_txs());
  std::printf("shard  fitness     E[latency](s)  note\n");
  std::printf("------------------------------------------------\n");
  for (std::uint32_t j = 0; j < kShards; ++j) {
    const double expected = l2s.score(observed, input_shards, j);
    std::printf("%-6u %+.6f   %6.2f        %s%s\n", j,
                placer.last_scores()[j], expected,
                j == choice ? "<- chosen" : "",
                j == 2 ? " (backlogged)" : "");
  }
  std::printf("\nOptChain sends the payment to shard %u\n", choice);
  return 0;
}

#include "api/batch_pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/assert.hpp"
#include "common/histogram.hpp"
#include "core/batch_scorer.hpp"
#include "obs/phase_profiler.hpp"

namespace optchain::api {

namespace {

/// Slots claimed per cursor fetch — large enough to amortize the atomic,
/// small enough to balance uneven gather costs across workers.
constexpr std::size_t kClaimChunk = 8;

}  // namespace

/// One transaction of the in-flight micro-batch.
struct BatchPlacementPipeline::Slot {
  tx::Transaction tx;
  std::uint32_t input_begin = 0;  // into inputs_ / divisors_
  std::uint32_t input_count = 0;
  bool independent = false;       // no in-batch parent
  // Where the score phase put this slot's gathered vector.
  std::uint32_t arena_worker = 0;
  std::uint32_t arena_begin = 0;
  std::uint32_t arena_len = 0;
};

/// Per-worker scoring state: a private scratch plus an output arena the
/// commit phase reads spans out of.
struct BatchPlacementPipeline::Worker {
  std::unique_ptr<core::BatchScorable::Scratch> scratch;
  std::vector<core::ScoreEntry> arena;
  std::vector<core::ScoreEntry> merged;  // per-gather staging buffer
};

BatchPlacementPipeline::BatchPlacementPipeline(PlacementPipeline& pipeline,
                                               BatchConfig config)
    : pipeline_(pipeline), config_(config) {
  config_.jobs = std::max<std::uint32_t>(1, config_.jobs);
  OPTCHAIN_EXPECTS(config_.batch_txs >= 1);
  kernel_ = dynamic_cast<core::BatchScorable*>(&pipeline_.placer());
  slots_.resize(config_.batch_txs);
  if (kernel_ != nullptr) {
    workers_ = std::make_unique<Worker[]>(config_.jobs);
    for (std::uint32_t w = 0; w < config_.jobs; ++w) {
      workers_[w].scratch = kernel_->make_scratch();
    }
    threads_.reserve(config_.jobs - 1);
    for (std::uint32_t w = 1; w < config_.jobs; ++w) {
      threads_.emplace_back([this, w] { worker_main(w); });
    }
  }
}

BatchPlacementPipeline::~BatchPlacementPipeline() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void BatchPlacementPipeline::worker_main(std::uint32_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] { return stop_ || round_ != seen; });
      if (stop_) return;
      seen = round_;
    }
    score_range(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (++finished_ == threads_.size()) work_done_.notify_one();
    }
  }
}

void BatchPlacementPipeline::score_range(std::uint32_t worker) {
  Worker& state = workers_[worker];
  const std::uint32_t k = pipeline_.assignment_.k();
  const std::size_t ready_count = ready_.size();
  for (;;) {
    const std::size_t begin =
        cursor_.fetch_add(kClaimChunk, std::memory_order_relaxed);
    if (begin >= ready_count) break;
    const std::size_t end = std::min(ready_count, begin + kClaimChunk);
    for (std::size_t i = begin; i < end; ++i) {
      Slot& slot = slots_[ready_[i]];
      const auto parents =
          std::span<const tx::TxIndex>(inputs_)
              .subspan(slot.input_begin, slot.input_count);
      const auto divisors =
          std::span<const double>(divisors_)
              .subspan(slot.input_begin, slot.input_count);
      kernel_->gather(parents, divisors, k, *state.scratch, state.merged);
      slot.arena_worker = worker;
      slot.arena_begin = static_cast<std::uint32_t>(state.arena.size());
      slot.arena_len = static_cast<std::uint32_t>(state.merged.size());
      state.arena.insert(state.arena.end(), state.merged.begin(),
                         state.merged.end());
    }
  }
}

void BatchPlacementPipeline::prepare_batch(std::uint32_t count) {
  inputs_.clear();
  divisors_.clear();
  ready_.clear();
  const tx::TxIndex base = slots_[0].tx.index;
  graph::TanDag& dag = *pipeline_.dag_;
  for (std::uint32_t i = 0; i < count; ++i) {
    Slot& slot = slots_[i];
    slot.tx.distinct_input_txs(inputs_scratch_);
    slot.input_begin = static_cast<std::uint32_t>(inputs_.size());
    slot.input_count = static_cast<std::uint32_t>(inputs_scratch_.size());
    slot.arena_worker = 0;
    slot.arena_begin = 0;
    slot.arena_len = 0;
    // Register the TaN node *before* reading spender counts, exactly like
    // the sequential add-node-before-choose ordering — so each divisor
    // snapshot includes this transaction, and in-batch spends bump the
    // counts seen by later batch members.
    OPTCHAIN_EXPECTS(dag.num_nodes() == slot.tx.index);
    dag.add_node(inputs_scratch_);
    bool independent = true;
    for (const tx::TxIndex v : inputs_scratch_) {
      inputs_.push_back(v);
      divisors_.push_back(kernel_->parent_divisor(v, dag.spender_count(v)));
      independent &= (v < base);
    }
    slot.independent = independent;
    // With one worker there is nobody to overlap with: staging gathers
    // through the arena would only add a copy. Commit gathers every slot
    // in place instead (parents of independent slots are final even before
    // the batch, so the operand values — and therefore the bits — are the
    // same either way).
    if (config_.jobs > 1 && independent && slot.input_count > 0) {
      ready_.push_back(i);
    }
  }
}

void BatchPlacementPipeline::score_batch() {
  for (std::uint32_t w = 0; w < config_.jobs; ++w) workers_[w].arena.clear();
  if (ready_.empty()) return;
  parallel_txs_ += ready_.size();
  cursor_.store(0, std::memory_order_relaxed);
  if (config_.jobs == 1) {
    score_range(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    finished_ = 0;
    ++round_;
  }
  work_ready_.notify_all();
  score_range(0);
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [&] { return finished_ == threads_.size(); });
}

void BatchPlacementPipeline::commit_batch(
    std::uint32_t count, std::span<const std::uint32_t> warm_parts) {
  const std::uint32_t k = pipeline_.assignment_.k();
  for (std::uint32_t i = 0; i < count; ++i) {
    Slot& slot = slots_[i];
    placement::PlacementRequest request;
    request.index = slot.tx.index;
    request.input_txs = std::span<const tx::TxIndex>(inputs_).subspan(
        slot.input_begin, slot.input_count);
    request.transaction = &slot.tx;

    std::span<const core::ScoreEntry> merged;
    const bool staged = slot.independent && config_.jobs > 1;
    if (staged) {
      merged = std::span<const core::ScoreEntry>(
                   workers_[slot.arena_worker].arena)
                   .subspan(slot.arena_begin, slot.arena_len);
    } else {
      // Chained slots' in-batch parents are final now (they committed
      // earlier in arrival order) — and at jobs == 1 every slot gathers
      // here (see prepare_batch). The divisors were snapshotted during
      // prepare, so this is one FP op sequence, identical to the
      // sequential path.
      if (!slot.independent) ++chained_txs_;
      const auto divisors = std::span<const double>(divisors_).subspan(
          slot.input_begin, slot.input_count);
      kernel_->gather(request.input_txs, divisors, k, *workers_[0].scratch,
                      chained_merged_);
      merged = chained_merged_;
    }

    placement::ShardId shard =
        kernel_->choose_gathered(request, merged, pipeline_.assignment_);
    const bool forced = slot.tx.index < warm_parts.size();
    if (forced) shard = warm_parts[slot.tx.index];
    if (!pipeline_.assignment_.is_active(shard)) {
      shard = pipeline_.assignment_.least_loaded();
    }
    pipeline_.assignment_.record(slot.tx.index, shard);
    kernel_->commit_gathered(request, merged, shard);
    const bool counted = !forced && !slot.tx.is_coinbase();
    if (counted) {
      pipeline_.counter_.record(
          pipeline_.assignment_.is_cross_shard(request.input_txs, shard));
    }
  }
}

StreamOutcome BatchPlacementPipeline::place_stream(
    workload::TxSource& source, std::span<const std::uint32_t> warm_parts) {
  using clock = std::chrono::steady_clock;
  if (const auto hint = source.size_hint()) {
    pipeline_.reserve(*hint);
  }
  // The kernel path bypasses step(), so a pending preview() decision would
  // be silently dropped — reject the combination outright.
  OPTCHAIN_EXPECTS(kernel_ == nullptr || !pipeline_.previewed_.has_value());
  const std::uint64_t counted_before = pipeline_.counter_.total();
  const std::uint64_t cross_before = pipeline_.counter_.cross();
  for (;;) {
    std::uint32_t count = 0;
    while (count < config_.batch_txs && source.next(slots_[count].tx)) {
      ++count;
    }
    if (count == 0) break;
    const clock::time_point start = clock::now();
    if (kernel_ != nullptr) {
      {
        obs::ScopedPhase timer(obs::Phase::kBatchPrepare);
        prepare_batch(count);
      }
      {
        obs::ScopedPhase timer(obs::Phase::kBatchScore);
        score_batch();
      }
      {
        obs::ScopedPhase timer(obs::Phase::kBatchCommit);
        commit_batch(count, warm_parts);
      }
    } else {
      // Generic placers: the exact sequential loop, batch-sliced. Identical
      // by construction; the batching only provides latency accounting.
      for (std::uint32_t i = 0; i < count; ++i) {
        if (slots_[i].tx.index < warm_parts.size()) {
          pipeline_.step_forced(slots_[i].tx, warm_parts[slots_[i].tx.index]);
        } else {
          pipeline_.step(slots_[i].tx);
        }
      }
    }
    latencies_us_.push_back(
        std::chrono::duration<double, std::micro>(clock::now() - start)
            .count());
    if (count < config_.batch_txs) break;  // source drained mid-batch
  }
  StreamOutcome outcome;
  outcome.total = pipeline_.counter_.total() - counted_before;
  outcome.cross = pipeline_.counter_.cross() - cross_before;
  outcome.shard_sizes = pipeline_.assignment_.sizes();
  return outcome;
}

BatchLatencyStats BatchPlacementPipeline::latency_stats() const {
  BatchLatencyStats stats;
  stats.batches = latencies_us_.size();
  if (latencies_us_.empty()) return stats;
  // Nearest-rank quantiles via the shared common/histogram path — the same
  // math the obs::MetricsRegistry histograms report.
  SampleStats samples;
  for (const double latency : latencies_us_) samples.add(latency);
  stats.p50_us = samples.p50();
  stats.p99_us = samples.p99();
  stats.max_us = samples.max();
  return stats;
}

}  // namespace optchain::api

// BatchPlacementPipeline — the parallel micro-batched placement front-end.
//
// The tx-at-a-time hot path (PlacementPipeline::place_stream) interleaves
// gather, argmax and commit per transaction. This front-end restructures the
// same work into micro-batches of three phases:
//
//   prepare (sequential)  — drain up to `batch_txs` transactions, register
//     their TaN nodes, snapshot each parent's |Nout| divisor at its exact
//     sequential value, and split the batch into *independent* transactions
//     (every parent placed before the batch) and *chained* ones (some parent
//     inside the batch);
//   score (parallel)      — independent transactions gather their parents'
//     final p' vectors concurrently on a worker pool (the score slab is
//     read-only in this phase);
//   commit (sequential)   — arrival order: chained transactions gather now
//     (their in-batch parents are final by commit order), then every
//     transaction runs the live-size argmax, the assignment increment and
//     the α self-mass append exactly as the sequential pipeline would.
//
// Because the argmax reads live shard sizes and every decision changes them,
// the *decision* is inherently sequential; what parallelizes is the gather —
// the bulk of the per-transaction cost. The phasing keeps results
// bit-identical to PlacementPipeline::place_stream for every placer at any
// jobs ≥ 1 and any batch size (the PR 6 contract, extended to placement).
// Placers that do not implement core::BatchScorable run through the exact
// sequential step loop per batch — identical by construction, just not
// parallel.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "api/placement_pipeline.hpp"
#include "core/score_pool.hpp"
#include "workload/tx_source.hpp"

namespace optchain::core {
class BatchScorable;
}  // namespace optchain::core

namespace optchain::api {

/// Tuning knobs of the micro-batched placement front-end.
struct BatchConfig {
  /// Scoring workers. 1 runs the batched kernel single-threaded (no worker
  /// pool, still batched gathers); n > 1 adds n − 1 helper threads that
  /// share the gather phase with the calling thread. Values exceeding the
  /// core count are allowed (the pool just oversubscribes). 0 is treated
  /// as 1.
  std::uint32_t jobs = 1;
  /// Transactions per micro-batch (≥ 1). Larger batches amortize the phase
  /// hand-off and expose more parallel gathers, at the cost of per-batch
  /// latency and cache locality between the phases (512 measured best on
  /// the 1M-tx bench_scale stream).
  std::uint32_t batch_txs = 512;
};

/// Per-batch latency percentiles measured across every micro-batch committed
/// by place_stream() so far (prepare through commit, excluding source I/O).
struct BatchLatencyStats {
  std::uint64_t batches = 0;  ///< micro-batches committed
  double p50_us = 0.0;        ///< median batch latency, microseconds
  double p99_us = 0.0;        ///< 99th-percentile batch latency, microseconds
  double max_us = 0.0;        ///< worst batch latency, microseconds
};

/// The parallel micro-batched front-end over a borrowed PlacementPipeline
/// (see the file comment for the phase structure and the bit-identity
/// contract).
class BatchPlacementPipeline {
 public:
  /// Wraps `pipeline`, which must outlive this object and not be driven
  /// through step()/preview() while a place_stream() call is in flight.
  /// Worker threads (config.jobs − 1 of them, when the placer implements
  /// the batch kernel) are spawned here and live until destruction.
  explicit BatchPlacementPipeline(PlacementPipeline& pipeline,
                                  BatchConfig config = {});

  /// Joins the worker pool.
  ~BatchPlacementPipeline();

  BatchPlacementPipeline(const BatchPlacementPipeline&) = delete;
  BatchPlacementPipeline& operator=(const BatchPlacementPipeline&) = delete;

  /// Streams the whole source through micro-batches. Semantics (outcome,
  /// per-shard sizes, every individual decision, the scorer's stored
  /// vectors) are bit-identical to PlacementPipeline::place_stream on the
  /// same source. `warm_parts` force-places the first warm_parts.size()
  /// transactions exactly like the sequential overload.
  StreamOutcome place_stream(workload::TxSource& source,
                             std::span<const std::uint32_t> warm_parts = {});

  /// Latency percentiles over all micro-batches committed so far.
  BatchLatencyStats latency_stats() const;

  /// Raw per-batch latencies in microseconds (one entry per committed
  /// micro-batch; callers aggregating across several pipelines — e.g.
  /// optchain-serve passes — read these directly).
  std::span<const double> batch_latencies_us() const noexcept {
    return latencies_us_;
  }

  /// Whether the wrapped placer implements core::BatchScorable (the
  /// OptChain family). When false, batches run the exact sequential step
  /// loop and no worker threads are spawned.
  bool kernel_active() const noexcept { return kernel_ != nullptr; }

  /// Transactions whose gather ran in the parallel score phase.
  std::uint64_t parallel_txs() const noexcept { return parallel_txs_; }

  /// Transactions with an in-batch parent, gathered at commit time instead.
  std::uint64_t chained_txs() const noexcept { return chained_txs_; }

  /// The configuration in effect (jobs normalized to ≥ 1).
  const BatchConfig& config() const noexcept { return config_; }

 private:
  struct Slot;
  struct Worker;

  void prepare_batch(std::uint32_t count);
  void score_batch();
  void commit_batch(std::uint32_t count,
                    std::span<const std::uint32_t> warm_parts);
  void score_range(std::uint32_t worker);
  void worker_main(std::uint32_t worker);

  PlacementPipeline& pipeline_;
  BatchConfig config_;
  core::BatchScorable* kernel_ = nullptr;  // null → sequential fallback

  std::vector<Slot> slots_;             // micro-batch transaction slots
  std::vector<tx::TxIndex> inputs_;     // flat per-batch parent array
  std::vector<double> divisors_;        // parallel to inputs_
  std::vector<std::uint32_t> ready_;    // slots gathered in the score phase
  std::vector<core::ScoreEntry> chained_merged_;  // commit-time gather out
  std::vector<tx::TxIndex> inputs_scratch_;       // distinct_input_txs out
  std::unique_ptr<Worker[]> workers_;   // [config_.jobs]; worker 0 = caller

  std::vector<double> latencies_us_;
  std::uint64_t parallel_txs_ = 0;
  std::uint64_t chained_txs_ = 0;

  // Worker-pool handshake: a round counter guarded by mutex_ publishes the
  // shared batch state to helpers; helpers claim ready_ chunks via the
  // atomic cursor and report completion through finished_.
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::uint64_t round_ = 0;
  std::uint32_t finished_ = 0;
  bool stop_ = false;
  std::atomic<std::size_t> cursor_{0};
};

}  // namespace optchain::api

#include "api/placement_pipeline.hpp"

#include <utility>

#include "api/placer_registry.hpp"
#include "common/assert.hpp"

namespace optchain::api {

PlacementPipeline::PlacementPipeline(std::uint32_t k,
                                     std::unique_ptr<placement::Placer> placer)
    : dag_(std::make_unique<graph::TanDag>()),
      assignment_(k),
      placer_(std::move(placer)) {
  OPTCHAIN_EXPECTS(placer_ != nullptr);
}

PlacementPipeline::PlacementPipeline(std::uint32_t k,
                                     const PlacerFactory& factory)
    : dag_(std::make_unique<graph::TanDag>()), assignment_(k) {
  placer_ = factory(*dag_);
  OPTCHAIN_EXPECTS(placer_ != nullptr);
}

void PlacementPipeline::add_tan_node(
    const tx::Transaction& transaction,
    const std::vector<tx::TxIndex>& inputs) {
  // Dense arrival order; a preceding preview() has already added the node.
  if (dag_->num_nodes() == transaction.index) {
    dag_->add_node(inputs);
  }
  OPTCHAIN_EXPECTS(dag_->num_nodes() == transaction.index + 1);
}

placement::ShardId PlacementPipeline::preview(
    const tx::Transaction& transaction,
    std::span<const latency::ShardTiming> timings) {
  OPTCHAIN_EXPECTS(transaction.index == assignment_.total());
  // choose() is stateful for OptChain-style placers (the scorer builds one
  // vector per arrival), so it runs at most once per transaction: repeated
  // previews return the cached decision.
  if (previewed_.has_value() && previewed_->first == transaction.index) {
    return previewed_->second;
  }
  transaction.distinct_input_txs(inputs_scratch_);
  add_tan_node(transaction, inputs_scratch_);

  placement::PlacementRequest request;
  request.index = transaction.index;
  request.input_txs = inputs_scratch_;
  request.transaction = &transaction;
  request.timings = timings;
  const placement::ShardId shard = placer_->choose(request, assignment_);
  previewed_ = {transaction.index, shard};
  return shard;
}

StepResult PlacementPipeline::step_impl(
    const tx::Transaction& transaction,
    std::optional<placement::ShardId> forced,
    std::span<const latency::ShardTiming> timings) {
  OPTCHAIN_EXPECTS(transaction.index == assignment_.total());
  transaction.distinct_input_txs(inputs_scratch_);
  add_tan_node(transaction, inputs_scratch_);

  placement::PlacementRequest request;
  request.index = transaction.index;
  request.input_txs = inputs_scratch_;
  request.transaction = &transaction;
  request.timings = timings;

  // choose() always runs exactly once per transaction — stateful placers
  // (OptChain's T2S vectors) build their per-transaction state there — so a
  // preceding preview's decision is reused instead of re-chosen. A warm
  // start may then override the decision.
  placement::ShardId shard;
  if (previewed_.has_value() && previewed_->first == transaction.index) {
    shard = previewed_->second;
    previewed_.reset();
  } else {
    shard = placer_->choose(request, assignment_);
  }
  if (forced.has_value()) shard = *forced;
  // Churn safety net: strategies replaying pre-churn decisions (Static,
  // Metis, stale warm starts) may still name a retired shard; divert to the
  // least-loaded active one. No-op (single branch) in churn-free runs.
  if (!assignment_.is_active(shard)) shard = assignment_.least_loaded();
  assignment_.record(transaction.index, shard);
  placer_->notify_placed(request, shard);

  StepResult result;
  result.shard = shard;
  result.coinbase = transaction.is_coinbase();
  result.cross = assignment_.is_cross_shard(inputs_scratch_, shard);
  // Sin(u) is only materialized when the protocol actually has remote locks
  // to take — for same-shard transactions it is trivially {shard}, and
  // skipping the allocation keeps the hot placement loop at the
  // pre-refactor cost.
  if (result.cross) {
    result.input_shards = assignment_.input_shards(inputs_scratch_);
  }
  result.counted = !forced.has_value() && !result.coinbase;
  if (result.counted) counter_.record(result.cross);
  return result;
}

StepResult PlacementPipeline::step(
    const tx::Transaction& transaction,
    std::span<const latency::ShardTiming> timings) {
  return step_impl(transaction, std::nullopt, timings);
}

StepResult PlacementPipeline::step_forced(
    const tx::Transaction& transaction, placement::ShardId forced,
    std::span<const latency::ShardTiming> timings) {
  return step_impl(transaction, forced, timings);
}

StreamOutcome PlacementPipeline::place_stream(
    std::span<const tx::Transaction> transactions,
    std::span<const std::uint32_t> warm_parts) {
  const std::uint64_t counted_before = counter_.total();
  const std::uint64_t cross_before = counter_.cross();
  for (const tx::Transaction& transaction : transactions) {
    if (transaction.index < warm_parts.size()) {
      step_forced(transaction, warm_parts[transaction.index]);
    } else {
      step(transaction);
    }
  }
  StreamOutcome outcome;
  outcome.total = counter_.total() - counted_before;
  outcome.cross = counter_.cross() - cross_before;
  outcome.shard_sizes = assignment_.sizes();
  return outcome;
}

StreamOutcome PlacementPipeline::place_stream(
    workload::TxSource& source, std::span<const std::uint32_t> warm_parts) {
  if (const auto hint = source.size_hint()) {
    reserve(*hint);
  }
  const std::uint64_t counted_before = counter_.total();
  const std::uint64_t cross_before = counter_.cross();
  tx::Transaction transaction;
  while (source.next(transaction)) {
    if (transaction.index < warm_parts.size()) {
      step_forced(transaction, warm_parts[transaction.index]);
    } else {
      step(transaction);
    }
  }
  StreamOutcome outcome;
  outcome.total = counter_.total() - counted_before;
  outcome.cross = counter_.cross() - cross_before;
  outcome.shard_sizes = assignment_.sizes();
  return outcome;
}

placement::ShardId PlacementPipeline::add_shard() {
  return assignment_.add_shard();
}

std::uint64_t PlacementPipeline::retire_shard(placement::ShardId shard,
                                              placement::ShardId successor) {
  return assignment_.retire_shard(shard, successor);
}

void PlacementPipeline::reassign(tx::TxIndex index, placement::ShardId shard) {
  assignment_.reassign(index, shard);
}

void PlacementPipeline::reserve(std::uint64_t expected_txs) {
  const auto n = static_cast<std::size_t>(expected_txs);
  // Bitcoin-like TaN networks carry ~2 edges per node (paper Fig. 2); a
  // generous factor here only rounds the reservation up.
  dag_->reserve(n, 2 * n);
  assignment_.reserve(n);
  placer_->reserve(expected_txs);
}

PlacementPipeline make_pipeline(std::string_view method, std::uint32_t k,
                                std::span<const tx::Transaction> stream,
                                std::uint64_t seed,
                                std::span<const std::uint32_t> static_parts,
                                std::uint64_t expected_txs) {
  if (expected_txs == 0) expected_txs = stream.size();
  PlacementPipeline pipeline(
      k, [&](const graph::TanDag& dag) {
        const PlacerContext context{dag, k, seed, stream, static_parts,
                                    expected_txs};
        return PlacerRegistry::instance().make(method, context);
      });
  if (expected_txs > 0) pipeline.reserve(expected_txs);
  return pipeline;
}

}  // namespace optchain::api

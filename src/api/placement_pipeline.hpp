// PlacementPipeline — the one streaming driver for transaction placement.
//
// Every consumer used to hand-roll the same fragile loop:
//
//   dag.add_node(inputs);                      // BEFORE choose() — invariant!
//   shard = placer.choose(request, assignment);
//   assignment.record(index, shard);
//   placer.notify_placed(request, shard);
//
// The pipeline owns the TanDag, the ShardAssignment and the cross-TX
// counters and encapsulates that ordering once: callers feed transactions
// (step / place_stream) and read the outcome. Warm-start overrides
// (Table II) and what-if scoring (wallet UX) are first-class:
//
//   auto pipeline = api::make_pipeline("OptChain", k, txs);
//   for (const auto& t : txs) pipeline.step(t);
//   double cross = pipeline.cross_counter().fraction();
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/dag.hpp"
#include "latency/l2s_model.hpp"
#include "placement/placer.hpp"
#include "placement/shard_assignment.hpp"
#include "stats/metrics.hpp"
#include "txmodel/transaction.hpp"
#include "workload/tx_source.hpp"

namespace optchain::api {

class BatchPlacementPipeline;

/// The outcome of placing one transaction.
struct StepResult {
  /// The shard the transaction was placed into.
  placement::ShardId shard = placement::kUnplaced;
  /// The transaction has no inputs (block reward).
  bool coinbase = false;
  /// Some input lives in a different shard than the transaction (coinbase is
  /// never cross-shard).
  bool cross = false;
  /// Whether this step contributed to the cross-TX statistics (non-coinbase
  /// and not a forced warm-start placement).
  bool counted = false;
  /// Distinct shards holding the transaction's inputs — Sin(u), first-seen
  /// order (what the cross-shard protocol must lock). Filled only for
  /// cross-shard transactions; otherwise every input shares the
  /// transaction's own shard and no allocation is paid.
  std::vector<placement::ShardId> input_shards;
};

/// Aggregate outcome of a streamed batch (the Table I/II measurements).
struct StreamOutcome {
  std::uint64_t total = 0;  ///< transactions counted (non-coinbase, non-warm)
  std::uint64_t cross = 0;  ///< counted transactions placed cross-shard
  std::vector<std::uint64_t> shard_sizes;  ///< final per-shard sizes

  /// cross / total (0 when nothing was counted).
  double fraction() const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(cross) / static_cast<double>(total);
  }
};

/// The one streaming driver for transaction placement: owns the TaN dag,
/// the ShardAssignment and the cross-TX counters, and encapsulates the
/// add-node-before-choose invariant (see the file comment).
class PlacementPipeline {
 public:
  /// Builds the placer over the pipeline-owned dag (for strategies like
  /// OptChain whose scorer holds a reference into the growing TaN).
  using PlacerFactory = std::function<std::unique_ptr<placement::Placer>(
      const graph::TanDag&)>;

  /// Pipeline around a dag-independent placer (Random, Greedy, Static, ...).
  PlacementPipeline(std::uint32_t k,
                    std::unique_ptr<placement::Placer> placer);

  /// Pipeline whose placer is constructed over the pipeline's own dag.
  PlacementPipeline(std::uint32_t k, const PlacerFactory& factory);

  /// Movable (the dag's address stays stable; see dag_), not copyable.
  PlacementPipeline(PlacementPipeline&&) noexcept = default;
  /// Move-assignable counterpart.
  PlacementPipeline& operator=(PlacementPipeline&&) noexcept = default;

  /// Places one transaction: registers its TaN node, asks the placer, records
  /// the decision and notifies the placer. Transactions must arrive in dense
  /// index order (0, 1, 2, ...). `timings` is the caller's current view of
  /// per-shard latencies for the L2S term; empty when unavailable.
  StepResult step(const tx::Transaction& transaction,
                  std::span<const latency::ShardTiming> timings = {});

  /// Like step(), but the decision is overridden with `forced` (Table II's
  /// warm start). choose() still runs so stateful placers build their
  /// per-transaction score vectors; the forced transaction is excluded from
  /// the cross-TX statistics.
  StepResult step_forced(const tx::Transaction& transaction,
                         placement::ShardId forced,
                         std::span<const latency::ShardTiming> timings = {});

  /// What-if scoring (the wallet deployment): registers the TaN node and
  /// returns the placer's choice WITHOUT recording it. A later step() for the
  /// same transaction commits exactly the previewed decision (choose() is
  /// stateful for OptChain-style placers and runs once per transaction, so
  /// the node is not re-added and the preview's timings are the ones that
  /// count). Repeated previews of the same transaction return the cached
  /// decision.
  placement::ShardId preview(const tx::Transaction& transaction,
                             std::span<const latency::ShardTiming> timings =
                                 {});

  /// Streams a whole batch. If `warm_parts` is non-empty, the first
  /// warm_parts.size() transactions are force-placed per that partition and
  /// excluded from the cross-TX count (Table II).
  StreamOutcome place_stream(std::span<const tx::Transaction> transactions,
                             std::span<const std::uint32_t> warm_parts = {});

  /// Streams from a pull source without materializing the stream: a
  /// 10M-transaction run needs O(1) transactions in memory (the pipeline's
  /// own per-tx state — dag, assignment, scorer — is pre-sized from the
  /// source's size hint).
  StreamOutcome place_stream(workload::TxSource& source,
                             std::span<const std::uint32_t> warm_parts = {});

  /// Pre-sizes everything that scales with the stream: the TaN dag (nodes +
  /// ~2n edges), the assignment table and the placer's per-transaction state.
  void reserve(std::uint64_t expected_txs);

  // ----- shard churn (see sim/shard_churn.hpp) ---------------------------

  /// Appends a fresh active shard to the assignment; returns its id. The
  /// placer sees the grown shard set on its next choose().
  placement::ShardId add_shard();

  /// Retires `shard`, bulk-migrating its transactions to `successor` (both
  /// active, distinct); returns the migrated-transaction count. Subsequent
  /// steps never place into a retired shard — a strategy that still picks
  /// one (Static/Metis replay a pre-churn partition) is diverted to the
  /// least-loaded active shard.
  std::uint64_t retire_shard(placement::ShardId shard,
                             placement::ShardId successor);

  /// Moves one already-placed transaction to the active shard `shard` — the
  /// online re-partition controller's migration primitive (see
  /// sim/repartition.hpp). A same-shard move is a no-op.
  void reassign(tx::TxIndex index, placement::ShardId shard);

  /// Shard count (every shard that ever existed, retired ones included).
  std::uint32_t k() const noexcept { return assignment_.k(); }
  /// Transactions placed so far.
  std::uint64_t total() const noexcept { return assignment_.total(); }
  /// The placer's self-reported strategy name.
  std::string_view method_name() const noexcept { return placer_->name(); }

  /// The pipeline-owned online TaN.
  const graph::TanDag& dag() const noexcept { return *dag_; }
  /// The shared transaction→shard assignment state.
  const placement::ShardAssignment& assignment() const noexcept {
    return assignment_;
  }
  /// Cross-TX statistics over the counted (non-coinbase, non-warm) steps.
  const stats::CrossTxCounter& cross_counter() const noexcept {
    return counter_;
  }
  /// The driven strategy (mutable: placers carry per-stream state).
  placement::Placer& placer() noexcept { return *placer_; }
  /// Const view of the driven strategy.
  const placement::Placer& placer() const noexcept { return *placer_; }

 private:
  // The micro-batched front-end drives the same dag/assignment/counter state
  // through its phased commit loop (see api/batch_pipeline.hpp).
  friend class BatchPlacementPipeline;

  StepResult step_impl(const tx::Transaction& transaction,
                       std::optional<placement::ShardId> forced,
                       std::span<const latency::ShardTiming> timings);
  void add_tan_node(const tx::Transaction& transaction,
                    const std::vector<tx::TxIndex>& inputs);

  // unique_ptr keeps the dag's address stable across pipeline moves (the
  // placer may hold a reference into it).
  std::unique_ptr<graph::TanDag> dag_;
  placement::ShardAssignment assignment_;
  std::unique_ptr<placement::Placer> placer_;
  stats::CrossTxCounter counter_;
  /// Decision cached by preview() for the next index, if any.
  std::optional<std::pair<tx::TxIndex, placement::ShardId>> previewed_;
  /// Scratch Nin(u) buffer reused across steps (allocation-free steady
  /// state).
  std::vector<tx::TxIndex> inputs_scratch_;
};

/// One-stop construction through the PlacerRegistry: builds the pipeline and
/// the named strategy over it. `stream` is the full batch when known up front
/// (Metis needs it); `static_parts` feeds the "Static" strategy.
/// `expected_txs` is the stream-length hint for streamed runs where the
/// batch is NOT materialized — it sizes the capacity caps of the
/// capacity-capped methods (Greedy, T2S) and pre-reserves the pipeline
/// (dag/assignment/scorer). When a non-empty `stream` is given its length is
/// used automatically.
PlacementPipeline make_pipeline(std::string_view method, std::uint32_t k,
                                std::span<const tx::Transaction> stream = {},
                                std::uint64_t seed = 1,
                                std::span<const std::uint32_t> static_parts =
                                    {},
                                std::uint64_t expected_txs = 0);

}  // namespace optchain::api

#include "api/placer_registry.hpp"

#include <cctype>
#include <stdexcept>
#include <utility>

#include "core/optchain_placer.hpp"
#include "metis/kway_partitioner.hpp"
#include "placement/affinity_placer.hpp"
#include "placement/fennel_placer.hpp"
#include "placement/greedy_placer.hpp"
#include "placement/least_loaded_placer.hpp"
#include "placement/random_placer.hpp"
#include "placement/static_placer.hpp"
#include "workload/tan_builder.hpp"

namespace optchain::api {

std::string PlacerRegistry::fold_case(std::string_view name) {
  std::string folded(name);
  for (char& c : folded) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return folded;
}

PlacerRegistry& PlacerRegistry::instance() {
  static PlacerRegistry* registry = [] {
    auto* r = new PlacerRegistry();
    register_builtin_placers(*r);
    return r;
  }();
  return *registry;
}

void PlacerRegistry::register_placer(std::string name, Factory factory) {
  std::string key = fold_case(name);
  auto [it, inserted] =
      entries_.insert_or_assign(key, Entry{std::move(name), std::move(factory)});
  if (inserted) registration_order_.push_back(it->first);
}

bool PlacerRegistry::contains(std::string_view name) const {
  return entries_.count(fold_case(name)) != 0;
}

std::unique_ptr<placement::Placer> PlacerRegistry::make(
    std::string_view name, const PlacerContext& context) const {
  const auto it = entries_.find(fold_case(name));
  if (it == entries_.end()) {
    std::string known;
    for (const std::string& canonical : names()) {
      if (!known.empty()) known += ", ";
      known += canonical;
    }
    throw std::invalid_argument("unknown placement method \"" +
                                std::string(name) + "\" (known: " + known +
                                ")");
  }
  return it->second.factory(context);
}

std::vector<std::string> PlacerRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(registration_order_.size());
  for (const std::string& key : registration_order_) {
    result.push_back(entries_.at(key).canonical);
  }
  return result;
}

namespace {

/// The "Static" strategy replays a fixed partition. Without one it degrades
/// to round-robin over the stream — a deterministic baseline that needs no
/// precomputation, so `--method=Static` runs end-to-end wherever the stream
/// is known. With neither parts nor a stream there is nothing to replay.
std::vector<std::uint32_t> static_parts_or_round_robin(
    const PlacerContext& context) {
  if (!context.static_parts.empty()) {
    return {context.static_parts.begin(), context.static_parts.end()};
  }
  if (context.stream.empty()) {
    throw std::invalid_argument(
        "Static placement needs a precomputed partition "
        "(PlacerContext::static_parts) or the full stream to round-robin "
        "over (PlacerContext::stream); both are empty");
  }
  const std::size_t n = context.stream.size();
  std::vector<std::uint32_t> parts(n);
  for (std::size_t i = 0; i < n; ++i) {
    parts[i] = static_cast<std::uint32_t>(i % context.k);
  }
  return parts;
}

}  // namespace

void register_builtin_placers(PlacerRegistry& registry) {
  registry.register_placer("OptChain", [](const PlacerContext& context) {
    return std::make_unique<core::OptChainPlacer>(context.dag,
                                                  core::OptChainConfig{},
                                                  "OptChain");
  });
  registry.register_placer("T2S", [](const PlacerContext& context) {
    core::OptChainConfig config;  // ε-capped, no L2S (paper §IV.B)
    config.l2s_weight = 0.0;
    config.expected_txs = context.stream_size_hint();
    return std::make_unique<core::OptChainPlacer>(context.dag, config, "T2S");
  });
  registry.register_placer("Greedy", [](const PlacerContext& context) {
    return std::make_unique<placement::GreedyPlacer>(
        context.stream_size_hint());
  });
  registry.register_placer("Fennel", [](const PlacerContext& context) {
    return std::make_unique<placement::FennelPlacer>(
        context.stream_size_hint());
  });
  registry.register_placer("OmniLedger", [](const PlacerContext&) {
    return std::make_unique<placement::RandomPlacer>();
  });
  registry.register_placer("LeastLoaded", [](const PlacerContext&) {
    return std::make_unique<placement::LeastLoadedPlacer>();
  });
  registry.register_placer("Static", [](const PlacerContext& context) {
    return std::make_unique<placement::StaticPlacer>(
        static_parts_or_round_robin(context), "Static");
  });
  registry.register_placer("Metis", [](const PlacerContext& context) {
    if (context.stream.empty()) {
      throw std::invalid_argument(
          "Metis placement needs the full stream up front "
          "(PlacerContext::stream is empty)");
    }
    const graph::TanDag full = workload::build_tan(context.stream);
    metis::PartitionConfig config;
    config.k = context.k;
    config.seed = context.seed;
    return std::make_unique<placement::StaticPlacer>(
        metis::partition_kway(full.to_undirected(), config), "Metis");
  });
  registry.register_placer("ShardScheduler", [](const PlacerContext&) {
    return std::make_unique<placement::AffinityPlacer>();
  });
  // Alias: the CLI historically called hash placement "random".
  registry.register_placer("Random", [](const PlacerContext&) {
    return std::make_unique<placement::RandomPlacer>();
  });
}

}  // namespace optchain::api

// PlacerRegistry — the single string→factory source of truth for placement
// strategies.
//
// Every consumer that builds a placer by name (the CLI, the bench harness,
// the examples, tests) goes through here instead of hand-rolling its own
// if/else chain, so a new strategy plugs in with one register_placer() call
// and is immediately reachable from every driver.
//
// Built-in names (case-insensitive lookup):
//   OptChain    — full Algorithm 1 (T2S affinity + L2S balance)
//   T2S         — the paper's "T2S-based" variant: no L2S term, ε-capped
//   Greedy      — one-hop input-majority baseline (§IV.B)
//   OmniLedger  — hash-based random placement ("Random" is an alias)
//   LeastLoaded — pure load balancing strawman
//   Static      — replays PlacerContext::static_parts (round-robin when empty)
//   Metis       — offline k-way partition of the full stream's TaN (oracle)
//   ShardScheduler — account-affinity with load-triggered migration
//                    (Król et al., AFT 2021) — the churn-aware baseline
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/dag.hpp"
#include "placement/placer.hpp"
#include "txmodel/transaction.hpp"

namespace optchain::api {

/// Everything a factory may need to construct its strategy. The dag is the
/// online TaN the driving pipeline owns and fills; stateful placers keep a
/// reference into it.
struct PlacerContext {
  /// The online TaN the driving pipeline owns and fills.
  const graph::TanDag& dag;
  /// Shard count of the run.
  std::uint32_t k = 16;
  /// Method/partition seed (not the simulator's).
  std::uint64_t seed = 1;
  /// The full stream, when known up front. Metis partitions it offline;
  /// Greedy and T2S derive their (1 + ε)·⌊n/k⌋ capacity caps from its
  /// length. An empty span means "stream is not materialized" — Metis is
  /// unavailable, and capacity caps fall back to expected_txs.
  std::span<const tx::Transaction> stream = {};
  /// Precomputed partition for the "Static" strategy (part id per tx index).
  std::span<const std::uint32_t> static_parts = {};
  /// Stream-length hint for streamed runs where the batch is not
  /// materialized (0 = unknown). stream_size_hint() folds the two sources.
  std::uint64_t expected_txs = 0;

  /// The best known stream length: the materialized stream's size, else the
  /// explicit hint, else 0 (unknown — capacity caps disabled).
  std::uint64_t stream_size_hint() const noexcept {
    return stream.empty() ? expected_txs : stream.size();
  }
};

/// The single string→factory source of truth for placement strategies;
/// see the file comment for the built-in line-up.
class PlacerRegistry {
 public:
  /// Builds a strategy from everything a run knows (see PlacerContext).
  using Factory =
      std::function<std::unique_ptr<placement::Placer>(const PlacerContext&)>;

  /// The process-wide registry, pre-populated with the built-in strategies.
  static PlacerRegistry& instance();

  /// Registers (or replaces) a strategy. Lookup is case-insensitive; `name`
  /// is kept verbatim as the canonical spelling reported by names().
  void register_placer(std::string name, Factory factory);

  /// True when `name` (case-insensitive) is registered.
  bool contains(std::string_view name) const;

  /// Constructs the named strategy. Throws std::invalid_argument for an
  /// unknown name (the message lists every registered name).
  std::unique_ptr<placement::Placer> make(std::string_view name,
                                          const PlacerContext& context) const;

  /// Canonical names in registration order (built-ins first).
  std::vector<std::string> names() const;

  /// A fresh registry with no built-ins (tests).
  PlacerRegistry() = default;

 private:
  struct Entry {
    std::string canonical;
    Factory factory;
  };

  static std::string fold_case(std::string_view name);

  std::map<std::string, Entry> entries_;          // key = case-folded name
  std::vector<std::string> registration_order_;   // case-folded keys
};

/// Registers the paper's built-in line-up into `registry` (what
/// PlacerRegistry::instance() starts with).
void register_builtin_placers(PlacerRegistry& registry);

}  // namespace optchain::api

#include "api/run_spec.hpp"

#include <string>
#include <utility>

#include "api/batch_pipeline.hpp"
#include "api/placement_pipeline.hpp"
#include "obs/phase_profiler.hpp"
#include "sim/parallel/parallel_simulation.hpp"

namespace optchain::api {
namespace {

/// Arms the global obs::PhaseProfiler for one run when the spec asks for it
/// (RunSpec::profile); finish() disables it and returns the collected rows.
/// Wall-clock only — a profiled run's results are bit-identical to an
/// unprofiled one.
class ProfileScope {
 public:
  explicit ProfileScope(bool active) : active_(active) {
    if (active_) {
      obs::PhaseProfiler& profiler = obs::PhaseProfiler::instance();
      profiler.reset();
      profiler.set_enabled(true);
    }
  }

  std::vector<ProfileEntry> finish() {
    if (!active_) return {};
    obs::PhaseProfiler& profiler = obs::PhaseProfiler::instance();
    profiler.set_enabled(false);
    std::vector<ProfileEntry> out;
    for (const obs::PhaseEntry& entry : profiler.snapshot()) {
      out.push_back({entry.phase, entry.seconds, entry.calls});
    }
    return out;
  }

 private:
  bool active_;
};

/// Streams `source` through the front-end the spec selects: the micro-
/// batched engine when place_jobs ≥ 1, the tx-at-a-time loop otherwise.
/// Results are bit-identical either way — place_jobs is a speed knob, not a
/// semantics knob (the PR 6 sim_jobs contract, extended to placement).
StreamOutcome run_placement(const RunSpec& spec, workload::TxSource& source,
                            PlacementPipeline& pipeline,
                            std::span<const std::uint32_t> warm_parts = {}) {
  if (spec.place_jobs >= 1) {
    BatchPlacementPipeline batched(pipeline,
                                   {spec.place_jobs, spec.place_batch});
    return batched.place_stream(source, warm_parts);
  }
  return pipeline.place_stream(source, warm_parts);
}

/// Runs `source` through the engine the spec selects: the conservative
/// parallel engine when sim_jobs ≥ 1 and the fabric gives it a positive
/// lookahead (its min delivery delay; the network base latency when the
/// fabric is disabled), the sequential engine otherwise. Results are
/// bit-identical either way — sim_jobs is a speed knob, not a semantics
/// knob, fabric runs included.
sim::SimResult run_engine(const RunSpec& spec, workload::TxSource& source,
                          PlacementPipeline& pipeline) {
  const sim::SimConfig config = spec.sim_config();
  if (spec.sim_jobs >= 1 && config.fabric.min_delay(config.network) > 0.0) {
    sim::parallel::ParallelSimulation simulation(config, spec.sim_jobs);
    return simulation.run(source, pipeline);
  }
  sim::Simulation simulation(config);
  return simulation.run(source, pipeline);
}

}  // namespace

sim::SimConfig RunSpec::sim_config() const {
  sim::SimConfig config;
  config.num_shards = num_shards;
  config.tx_rate_tps = rate_tps;
  config.protocol = protocol;
  config.seed = sim_seed;
  config.commit_window_s = commit_window_s;
  config.queue_sample_interval_s = queue_sample_interval_s;
  config.leader_fault_rate = leader_fault_rate;
  config.shard_slowdown = shard_slowdown;
  config.fabric = fabric;
  config.churn = churn;
  config.repartition = repartition;
  if (config.repartition.seed == 0) {
    // Default the controller seed to the method/partition seed: the offline
    // Metis baseline and the online controller then re-roll together, and
    // replicas (which vary only sim_seed) keep identical re-partition plans.
    config.repartition.seed = seed;
  }
  config.observers = observers;
  return config;
}

TextTable RunReport::to_table() const {
  TextTable table({"metric", "value"});
  table.add_row({"method", method});
  table.add_row({"shards", TextTable::fmt_int(num_shards)});
  table.add_row({"transactions counted",
                 TextTable::fmt_int(static_cast<long long>(total))});
  table.add_row({"cross-shard",
                 TextTable::fmt_int(static_cast<long long>(cross))});
  table.add_row({"cross-shard fraction",
                 TextTable::fmt_percent(cross_fraction())});
  if (sim.has_value()) {
    table.add_row({"committed", TextTable::fmt_int(static_cast<long long>(
                                    sim->committed_txs))});
    table.add_row({"aborted", TextTable::fmt_int(static_cast<long long>(
                                  sim->aborted_txs))});
    table.add_row({"throughput (tps)", TextTable::fmt(sim->throughput_tps,
                                                      0)});
    table.add_row({"avg latency (s)", TextTable::fmt(sim->avg_latency_s, 2)});
    table.add_row({"max latency (s)", TextTable::fmt(sim->max_latency_s, 2)});
    table.add_row({"blocks", TextTable::fmt_int(static_cast<long long>(
                                 sim->total_blocks))});
    table.add_row({"completed", sim->completed ? "yes" : "no"});
    if (sim->link_messages > 0) {  // fabric-enabled runs only
      table.add_row({"link messages", TextTable::fmt_int(static_cast<long long>(
                                          sim->link_messages))});
      table.add_row({"link drops", TextTable::fmt_int(static_cast<long long>(
                                       sim->link_drops))});
      table.add_row(
          {"link peak backlog (s)", TextTable::fmt(sim->link_peak_backlog_s,
                                                   3)});
    }
    if (sim->repartition_events > 0) {  // re-partition-enabled runs only
      table.add_row({"repartition events",
                     TextTable::fmt_int(static_cast<long long>(
                         sim->repartition_events))});
      table.add_row({"repartition migrated txs",
                     TextTable::fmt_int(static_cast<long long>(
                         sim->repartition_migrated_txs))});
      table.add_row({"repartition migrated utxos",
                     TextTable::fmt_int(static_cast<long long>(
                         sim->repartition_migrated_utxos))});
      table.add_row({"repartition deferred txs",
                     TextTable::fmt_int(static_cast<long long>(
                         sim->repartition_deferred_txs))});
    }
  }
  for (std::size_t s = 0; s < shard_sizes.size(); ++s) {
    table.add_row({"shard " + std::to_string(s) + " txs",
                   TextTable::fmt_int(static_cast<long long>(
                       shard_sizes[s]))});
  }
  // Wall-clock phase profile (RunSpec::profile runs only) — e.g. the
  // parallel engine's phase-A vs phase-B split. Deliberately last: these
  // rows are non-reproducible timings, not results.
  for (const ProfileEntry& entry : profile) {
    table.add_row({"profile " + entry.phase + " (s)",
                   TextTable::fmt(entry.seconds, 4)});
    table.add_row({"profile " + entry.phase + " calls",
                   TextTable::fmt_int(static_cast<long long>(entry.calls))});
  }
  return table;
}

std::string RunReport::to_csv() const { return to_table().to_csv(); }

RunReport place(const RunSpec& spec,
                std::span<const tx::Transaction> transactions,
                std::span<const std::uint32_t> warm_parts) {
  ProfileScope profile(spec.profile);
  PlacementPipeline pipeline = make_pipeline(
      spec.method, spec.num_shards, transactions, spec.seed);
  workload::SpanTxSource source(transactions);
  const StreamOutcome outcome =
      run_placement(spec, source, pipeline, warm_parts);

  RunReport report;
  report.profile = profile.finish();
  report.method = std::string(pipeline.method_name());
  report.num_shards = spec.num_shards;
  report.total = outcome.total;
  report.cross = outcome.cross;
  report.shard_sizes = outcome.shard_sizes;
  return report;
}

RunReport place(const RunSpec& spec, workload::TxSource& source,
                std::uint64_t expected_txs) {
  ProfileScope profile(spec.profile);
  PlacementPipeline pipeline =
      make_pipeline(spec.method, spec.num_shards, {}, spec.seed, {},
                    source.size_hint().value_or(expected_txs));
  const StreamOutcome outcome = run_placement(spec, source, pipeline);

  RunReport report;
  report.profile = profile.finish();
  report.method = std::string(pipeline.method_name());
  report.num_shards = spec.num_shards;
  report.total = outcome.total;
  report.cross = outcome.cross;
  report.shard_sizes = outcome.shard_sizes;
  return report;
}

RunReport simulate(const RunSpec& spec,
                   std::span<const tx::Transaction> transactions) {
  ProfileScope profile(spec.profile);
  PlacementPipeline pipeline = make_pipeline(
      spec.method, spec.num_shards, transactions, spec.seed);
  workload::SpanTxSource source(transactions);
  sim::SimResult result = run_engine(spec, source, pipeline);

  RunReport report;
  report.profile = profile.finish();
  report.method = result.placer_name;
  report.num_shards = spec.num_shards;
  // Simulation runs report the protocol-level cross-TX metric (denominator =
  // every issued transaction, SimResult::cross_fraction), keeping the CLI
  // and the bench figure binaries comparable on the same run.
  report.total = result.total_txs;
  report.cross = result.cross_txs;
  report.shard_sizes = result.final_shard_sizes;  // == assignment().sizes()
  report.sim = std::move(result);
  return report;
}

RunReport simulate(const RunSpec& spec, workload::TxSource& source,
                   std::uint64_t expected_txs) {
  ProfileScope profile(spec.profile);
  PlacementPipeline pipeline =
      make_pipeline(spec.method, spec.num_shards, {}, spec.seed, {},
                    source.size_hint().value_or(expected_txs));
  sim::SimResult result = run_engine(spec, source, pipeline);

  RunReport report;
  report.profile = profile.finish();
  report.method = result.placer_name;
  report.num_shards = spec.num_shards;
  report.total = result.total_txs;
  report.cross = result.cross_txs;
  report.shard_sizes = result.final_shard_sizes;
  report.sim = std::move(result);
  return report;
}

}  // namespace optchain::api

// RunSpec / RunReport — the config-object pair describing one experiment run
// and its results, shared by the CLI, the bench harness and the examples.
//
//   api::RunSpec spec;
//   spec.method = "OptChain";
//   spec.num_shards = 16;
//   api::RunReport report = api::place(spec, txs);        // Tables I-II
//   api::RunReport report = api::simulate(spec, txs);     // Figs. 3-11
//   report.to_table().print();       // aligned text table
//   report.to_csv();                 // RFC-4180 CSV, same rows
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/simulation.hpp"
#include "txmodel/transaction.hpp"

namespace optchain::api {

/// Describes one (method, shard count, operating point) run. Placement-only
/// runs ignore the simulation knobs.
struct RunSpec {
  std::string method = "OptChain";  ///< a PlacerRegistry name
  std::uint32_t num_shards = 16;    ///< shard count k
  std::uint64_t seed = 1;           ///< method/partition seed

  // Simulation operating point (simulate() only).
  /// Seed of the simulator's network/consensus sampling — kept separate from
  /// `seed` (the method/partition seed) so placement results are comparable
  /// across operating points.
  std::uint64_t sim_seed = 42;
  double rate_tps = 2000.0;  ///< nominal client issue rate
  /// Cross-shard commit protocol (client-driven Atomix or RapidChain yank).
  sim::ProtocolMode protocol = sim::ProtocolMode::kOmniLedger;
  double commit_window_s = 50.0;         ///< Fig. 5 window width
  double queue_sample_interval_s = 5.0;  ///< Figs. 6-7 sampling cadence
  double leader_fault_rate = 0.0;        ///< P[view change] per round
  /// Chronic per-shard slowdown factors (missing entries = 1.0).
  std::vector<double> shard_slowdown;

  /// Link-level network fabric (simulate() only; see sim/fabric/): geo-region
  /// latency tiers, per-access-link bandwidth queues, jitter and stragglers.
  /// Disabled by default — every delivery then uses the flat NetworkModel
  /// path unchanged. Start from sim::fabric_preset("wan"), etc.
  sim::FabricConfig fabric;

  /// Worker threads for the conservative parallel engine
  /// (sim/parallel/parallel_simulation.hpp). 0 = the sequential engine;
  /// any value ≥ 1 produces bit-identical results (simulate() only).
  /// Falls back to sequential when the network model has no positive base
  /// latency (the parallel engine's lookahead).
  std::uint32_t sim_jobs = 0;

  /// Scoring workers of the micro-batched placement front-end
  /// (api/batch_pipeline.hpp). 0 = the classic tx-at-a-time loop; any value
  /// ≥ 1 routes place() through BatchPlacementPipeline with that many
  /// workers — bit-identical results, like sim_jobs (place() only).
  std::uint32_t place_jobs = 0;

  /// Micro-batch length of the batched front-end (used when place_jobs ≥ 1).
  std::uint32_t place_batch = 512;

  /// Scripted shard membership changes (simulate() only; see
  /// sim/shard_churn.hpp). Empty = the classic fixed shard set.
  sim::ShardChurnPlan churn;

  /// Periodic Metis re-partitioning of the live assignment (simulate()
  /// only; see sim/repartition.hpp). Disabled by default (interval 0).
  /// When repartition.seed is 0, sim_config() derives the controller seed
  /// from `seed` so the partitioner re-rolls with the method seed, not the
  /// simulator's stochastic sampling.
  sim::RepartitionConfig repartition;

  /// Borrowed sim::SimObserver hooks installed into the run (simulate()
  /// only); each must outlive it. This is how the stats/ collectors — or any
  /// custom instrumentation — attach to a run through the API instead of
  /// being hand-wired into a driver binary.
  std::vector<sim::SimObserver*> observers;

  /// Collect wall-clock engine-phase timings (obs::PhaseProfiler) for this
  /// run into RunReport::profile — the parallel engine's phase-A/phase-B
  /// split, the batch front-end's prepare/score/commit stages. The CLI's
  /// --profile. Wall-clock only: results, goldens and traces are untouched.
  bool profile = false;

  /// The full SimConfig this spec describes.
  sim::SimConfig sim_config() const;
};

/// One wall-clock profile row of a RunReport (RunSpec::profile runs only):
/// an engine phase, its accumulated seconds, and how many scoped sections
/// contributed. Mirrors obs::PhaseEntry without making this header depend
/// on src/obs.
struct ProfileEntry {
  std::string phase;        ///< e.g. "sim.parallel.phase_b"
  double seconds = 0.0;     ///< accumulated wall-clock seconds
  std::uint64_t calls = 0;  ///< scoped sections accumulated
};

/// Unified result of a run: placement statistics always, simulation metrics
/// when the run went through the simulator.
struct RunReport {
  std::string method;            ///< the placer's self-reported name
  std::uint32_t num_shards = 0;  ///< shard count of the run
  /// Denominator of the cross-TX metric: non-coinbase transactions for
  /// placement runs (Tables I-II convention), every issued transaction for
  /// simulation runs (SimResult::cross_fraction convention).
  std::uint64_t total = 0;
  std::uint64_t cross = 0;  ///< cross-shard transactions
  std::vector<std::uint64_t> shard_sizes;  ///< final per-shard sizes
  /// Simulation metrics, present when the run went through the simulator.
  std::optional<sim::SimResult> sim;
  /// Wall-clock engine-phase timings; non-empty only for RunSpec::profile
  /// runs whose engines hit instrumented phases. Never part of goldens.
  std::vector<ProfileEntry> profile;

  /// cross / total (0 when nothing was counted).
  double cross_fraction() const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(cross) / static_cast<double>(total);
  }

  /// metric/value rows: method, shards, cross-TX always; the simulation
  /// metrics (throughput, latency, ...) when present; then per-shard sizes.
  TextTable to_table() const;
  /// The same rows as RFC-4180 CSV (header included).
  std::string to_csv() const;
};

/// Placement-only run (Tables I-II): streams `transactions` through the
/// spec's method. If `warm_parts` is non-empty the first warm_parts.size()
/// transactions are force-placed per that partition and excluded from the
/// cross-TX count (Table II's warm start).
RunReport place(const RunSpec& spec,
                std::span<const tx::Transaction> transactions,
                std::span<const std::uint32_t> warm_parts = {});

/// Placement-only run over a pull source (dynamic-workload decorators plug
/// in here). Stream-dependent strategies (Metis, Static) are unavailable —
/// the stream is never materialized. `expected_txs` backs up the source's
/// size hint when it has none (injecting decorators): capacity-capped
/// methods (Greedy, T2S) need a stream-length estimate or they degenerate
/// to uncapped first-shard pile-up.
RunReport place(const RunSpec& spec, workload::TxSource& source,
                std::uint64_t expected_txs = 0);

/// Full simulation run (Figs. 3-11): places online inside the simulator's
/// event loop, with the client's live shard-timing view feeding the L2S term.
RunReport simulate(const RunSpec& spec,
                   std::span<const tx::Transaction> transactions);

/// Full simulation run over a pull source. The source also owns the issue
/// schedule (TxSource::issue_time), which is how rate-curve decorators
/// (workload::DynamicTxSource) drive time-varying load through an otherwise
/// unchanged engine. `expected_txs` as in place().
RunReport simulate(const RunSpec& spec, workload::TxSource& source,
                   std::uint64_t expected_txs = 0);

}  // namespace optchain::api

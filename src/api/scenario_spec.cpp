#include "api/scenario_spec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "trace/trace_reader.hpp"

namespace optchain::api {

const char* to_string(RunMode mode) noexcept {
  return mode == RunMode::kPlace ? "place" : "simulate";
}

std::size_t ScenarioSpec::num_cells() const noexcept {
  const std::size_t points =
      pairings.empty() ? shards.size() * rates.size() : pairings.size();
  return methods.size() * points * seeds.size();
}

std::uint64_t ScenarioSpec::stream_length(double rate_tps) const noexcept {
  if (txs > 0) return txs;
  const double sized = rate_tps * issue_seconds;
  return sized < 1.0 ? 1 : static_cast<std::uint64_t>(sized);
}

Sweep ScenarioSpec::expand() const {
  if (methods.empty()) throw std::invalid_argument("ScenarioSpec: no methods");
  if (seeds.empty()) throw std::invalid_argument("ScenarioSpec: no seeds");
  if (replicas == 0) throw std::invalid_argument("ScenarioSpec: replicas==0");
  if (pairings.empty() && (shards.empty() || rates.empty())) {
    throw std::invalid_argument("ScenarioSpec: empty shard/rate axis");
  }
  if (!churn.empty() && mode == RunMode::kPlace) {
    throw std::invalid_argument(
        "ScenarioSpec: shard churn needs the simulator (mode = kSimulate)");
  }
  if (repartition.enabled() && mode == RunMode::kPlace) {
    throw std::invalid_argument(
        "ScenarioSpec: re-partitioning needs the simulator (mode = "
        "kSimulate)");
  }
  if (repartition.enabled() && warm_ratio > 0) {
    throw std::invalid_argument(
        "ScenarioSpec: re-partitioning cannot be combined with a Metis warm "
        "prefix (warm_ratio > 0) — the warm prefix assumes a static "
        "assignment");
  }
  repartition.validate();
  if (dynamic.active() && warm_ratio > 0) {
    throw std::invalid_argument(
        "ScenarioSpec: a dynamic profile cannot be combined with a Metis "
        "warm prefix (warm_ratio > 0)");
  }
  dynamic.validate();
  fabric.validate();  // reject broken fabric configs before any cell runs

  // Trace replay: resolve the window against the container once — the
  // import happened offline, exactly once, and every cell and replica below
  // shares the same file. Opening a v2 trace reads only the header and the
  // footer index (O(1) in the trace length).
  TraceReplay window = trace;
  if (workload == WorkloadKind::kTrace) {
    if (trace.path.empty()) {
      throw std::invalid_argument(
          "ScenarioSpec: workload kTrace needs trace.path (import one with "
          "`optchain-trace import`)");
    }
    if (warm_ratio > 0) {
      throw std::invalid_argument(
          "ScenarioSpec: a Metis warm prefix (warm_ratio > 0) needs a "
          "materialized generator stream, not a trace replay");
    }
    trace::TraceReader reader(trace.path);
    window.end = trace.end == 0 ? reader.size() : trace.end;
    if (window.end > reader.size() || window.begin >= window.end) {
      throw std::invalid_argument(
          "ScenarioSpec: trace window [" + std::to_string(window.begin) +
          ", " + std::to_string(window.end) + ") outside trace \"" +
          trace.path + "\" (" + std::to_string(reader.size()) + " txs)");
    }
    // `txs` caps the replayed window length (the bench --smoke convention);
    // issue_seconds never sizes a trace — the stream is what was captured.
    if (txs > 0) {
      window.end = std::min(window.end, window.begin + txs);
    }
  }

  // Materialize the operating points once; the explicit pairing list wins.
  std::vector<OperatingPoint> points = pairings;
  if (points.empty()) {
    points.reserve(shards.size() * rates.size());
    for (const std::uint32_t k : shards) {
      for (const double rate : rates) points.push_back({rate, k});
    }
  }

  Sweep sweep;
  sweep.scenario = name;
  sweep.title = title;
  sweep.paper_ref = paper_ref;
  sweep.mode = mode;
  sweep.replicas = replicas;
  sweep.cells.reserve(num_cells() * replicas);

  std::size_t cell_id = 0;
  for (const std::string& method : methods) {
    for (const OperatingPoint& point : points) {
      for (const std::uint64_t seed : seeds) {
        for (std::uint32_t replica = 0; replica < replicas; ++replica) {
          SweepCell cell;
          cell.cell = cell_id;
          cell.replica = replica;
          cell.mode = mode;
          cell.stream_txs = workload == WorkloadKind::kTrace
                                ? window.end - window.begin
                                : stream_length(point.rate_tps);
          cell.trace = window;
          cell.warm_txs =
              mode == RunMode::kPlace
                  ? static_cast<std::uint64_t>(warm_ratio) * cell.stream_txs
                  : 0;
          cell.workload_seed = seed;
          cell.workload = workload;
          cell.bitcoin_workload = bitcoin_workload;
          cell.account_workload = account_workload;
          cell.dynamic = dynamic;

          RunSpec& spec = cell.spec;
          spec.method = method;
          spec.num_shards = point.shards;
          spec.seed = seed;
          // Replicas re-roll only the simulator's stochastic sampling
          // (network positions, leader faults), never the workload or the
          // placement method — the paper's "same stream, repeated runs"
          // replication model.
          spec.sim_seed = kBaseSimSeed + replica;
          spec.rate_tps = point.rate_tps;
          spec.protocol = protocol;
          spec.commit_window_s = commit_window_s;
          spec.queue_sample_interval_s = queue_sample_interval_s;
          spec.leader_fault_rate = leader_fault_rate;
          spec.shard_slowdown = shard_slowdown;
          spec.fabric = fabric;
          spec.churn = churn;
          spec.repartition = repartition;
          spec.sim_jobs = sim_jobs;
          spec.place_jobs = place_jobs;
          spec.place_batch = place_batch;
          sweep.cells.push_back(std::move(cell));
        }
        ++cell_id;
      }
    }
  }
  return sweep;
}

}  // namespace optchain::api

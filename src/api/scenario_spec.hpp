// ScenarioSpec — a declarative description of an experiment grid.
//
// The paper's whole evaluation (Figs. 2-11, Tables I-II) is a sweep of
// (method × shard count × tx rate × seed) runs over a generated workload.
// A ScenarioSpec names the axes and the fixed operating knobs once and
// expands into a Sweep: one fully self-contained SweepCell per grid point
// per replica, each carrying the complete api::RunSpec plus the workload
// recipe that produces its transaction stream. SweepRunner executes cells
// (in any order, on any number of threads — every cell's randomness derives
// only from its own seeds) and aggregates replicas into a SweepReport.
//
//   api::ScenarioSpec spec;
//   spec.name = "fig4a";
//   spec.methods = {"OptChain", "OmniLedger", "Metis", "Greedy"};
//   spec.rates = {2000, 3000, 4000, 5000, 6000};
//   spec.issue_seconds = 120.0;
//   api::SweepReport report = api::SweepRunner({.jobs = 8}).run(spec);
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "api/run_spec.hpp"
#include "workload/account_workload.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/dynamic_profile.hpp"

namespace optchain::api {

/// What each cell runs: placement-only streaming (Tables I-II) or the full
/// discrete-event simulation (Figs. 3-11).
enum class RunMode : std::uint8_t {
  kPlace,     ///< placement-only streaming (Tables I-II)
  kSimulate,  ///< full discrete-event simulation (Figs. 3-11)
};

/// "place" or "simulate" (report/JSON labels).
const char* to_string(RunMode mode) noexcept;

/// Which generator produces the cell's transaction stream.
enum class WorkloadKind : std::uint8_t {
  kBitcoinLike,  ///< workload::BitcoinLikeGenerator (UTXO model)
  kAccount,      ///< workload::AccountWorkloadGenerator (Ethereum-style)
  kTrace,        ///< trace::TraceTxSource replay of an imported .optx trace
};

/// Replay recipe for WorkloadKind::kTrace: one imported chunk-indexed
/// trace (see src/trace) shared by every cell and replica of the sweep —
/// the import happens once, offline, and cells stream windows of the file
/// instead of regenerating workloads per grid point.
struct TraceReplay {
  std::string path;         ///< the .optx container (OPTX v1 also accepted)
  std::uint64_t begin = 0;  ///< first absolute trace index to replay
  /// One past the last index; 0 = to the end of the trace. expand()
  /// resolves the actual end against the file (and against
  /// ScenarioSpec::txs, which caps the window length when set).
  std::uint64_t end = 0;
};

/// An explicit (rate, shard count) operating point. When a scenario lists
/// pairings they replace the shards × rates cross product — the paper's
/// Figs. 8b/9b pair each rate with the smallest shard count that keeps
/// OptChain healthy instead of sweeping the full grid.
struct OperatingPoint {
  double rate_tps = 2000.0;   ///< client issue rate
  std::uint32_t shards = 16;  ///< shard count paired with that rate
};

struct SweepCell;
struct Sweep;

/// A declarative experiment grid; see the file comment for the model.
struct ScenarioSpec {
  std::string name;       ///< registry key, e.g. "fig4a"
  std::string title;      ///< human description for list/report headers
  std::string paper_ref;  ///< what it reproduces, e.g. "Fig. 4a (§V.B.1)"

  /// Placement-only or full simulation (see RunMode).
  RunMode mode = RunMode::kSimulate;

  // ----- axes (cross product, in this nesting order: methods, then shard ×
  // rate points, then seeds, then replicas) ------------------------------
  std::vector<std::string> methods = {"OptChain"};  ///< PlacerRegistry names
  std::vector<std::uint32_t> shards = {16};  ///< shard-count axis
  std::vector<double> rates = {2000.0};      ///< issue-rate axis (tps)
  /// Non-empty: replaces shards × rates with this explicit point list.
  std::vector<OperatingPoint> pairings;
  /// Workload/method seeds (RunSpec::seed; also seeds the generator).
  std::vector<std::uint64_t> seeds = {1};
  /// Stochastic-simulation replicas per grid point: replica r runs the same
  /// workload under sim_seed = kBaseSimSeed + r, and SweepRunner reports
  /// mean/min/max across them.
  std::uint32_t replicas = 1;

  // ----- fixed RunSpec knobs -------------------------------------------
  /// Cross-shard commit protocol of every cell.
  sim::ProtocolMode protocol = sim::ProtocolMode::kOmniLedger;
  double leader_fault_rate = 0.0;      ///< P[view change] per round
  std::vector<double> shard_slowdown;  ///< chronic per-shard slowdowns
  double commit_window_s = 10.0;       ///< Fig. 5 window width
  double queue_sample_interval_s = 5.0;  ///< Figs. 6-7 sampling cadence
  /// Scripted shard membership changes applied to every cell (simulation
  /// mode only; expand() rejects churn in placement mode). `shards` then
  /// names each cell's *initial* shard count.
  sim::ShardChurnPlan churn;
  /// Periodic Metis re-partitioning applied to every cell (simulation mode
  /// only; expand() rejects it in placement mode, and in combination with
  /// warm_ratio — the Metis warm prefix assumes a static assignment).
  /// Disabled by default (interval 0); see sim/repartition.hpp and
  /// RunSpec::repartition for the seed-derivation rule.
  sim::RepartitionConfig repartition;
  /// Worker threads of the in-simulation parallel engine (0 = sequential;
  /// bit-identical either way — see RunSpec::sim_jobs). Orthogonal to
  /// SweepRunner's cross-cell `jobs`.
  std::uint32_t sim_jobs = 0;
  /// Scoring workers of the micro-batched placement front-end applied to
  /// every placement cell (0 = the tx-at-a-time loop; bit-identical either
  /// way — see RunSpec::place_jobs). Orthogonal to SweepRunner's `jobs`.
  std::uint32_t place_jobs = 0;
  /// Micro-batch length of the batched front-end (place_jobs ≥ 1; see
  /// RunSpec::place_batch).
  std::uint32_t place_batch = 512;
  /// Link-level network fabric applied to every simulation cell (disabled
  /// by default — cells then use the flat NetworkModel path unchanged; see
  /// RunSpec::fabric). expand() validates the config up front.
  sim::FabricConfig fabric;

  // ----- workload dynamics ---------------------------------------------
  /// Rate waves / hotspot skew / spam bursts decorating every cell's stream
  /// (see workload/dynamic_profile.hpp). Inert by default. Incompatible
  /// with warm_ratio (the Metis warm prefix assumes the undecorated
  /// stream); expand() rejects the combination. Stream-dependent methods
  /// (Metis, Static) cannot run under an *injecting* profile — the emitted
  /// stream is never materialized.
  workload::DynamicProfile dynamic;

  // ----- workload ------------------------------------------------------
  WorkloadKind workload = WorkloadKind::kBitcoinLike;  ///< which generator
  workload::WorkloadConfig bitcoin_workload;           ///< UTXO-model knobs
  workload::AccountWorkloadConfig account_workload;  ///< account-model knobs
  /// Trace replay recipe (workload == kTrace): every cell streams the same
  /// imported .optx window instead of regenerating a synthetic stream.
  /// Incompatible with warm_ratio (the Metis warm prefix assumes a
  /// materialized generator stream); expand() rejects the combination, an
  /// empty path, or a window outside the trace. Trace cells ignore `seeds`
  /// as a workload seed (the stream is fixed) but keep it as the method
  /// seed; rate_tps only drives the simulator's issue schedule.
  TraceReplay trace;
  /// Fixed stream length; 0 sizes each cell as rate × issue_seconds (the
  /// bench convention: a constant issue window equalizes the drain-tail
  /// bias across rates).
  std::uint64_t txs = 0;
  double issue_seconds = 90.0;
  /// Table II warm start: each cell's stream is preceded by
  /// warm_ratio × (placed txs) transactions whose TaN is partitioned
  /// offline with Metis and force-placed (excluded from the cross-TX
  /// count). 0 = cold start. Placement mode only.
  std::uint32_t warm_ratio = 0;

  /// sim_seed of replica 0 (matches SimConfig's default, so a 1-replica
  /// scenario reproduces the historical per-figure binaries exactly).
  static constexpr std::uint64_t kBaseSimSeed = 42;

  /// Grid points before replication: methods × points × seeds, where
  /// points = pairings.size() when pairings is non-empty, else
  /// shards.size() × rates.size().
  std::size_t num_cells() const noexcept;

  /// Stream length of a cell at `rate_tps` (excluding any warm prefix).
  std::uint64_t stream_length(double rate_tps) const noexcept;

  /// Expands the axes into num_cells() × replicas self-contained cells.
  /// Throws std::invalid_argument on an empty axis or replicas == 0.
  Sweep expand() const;
};

/// One grid point × one replica, fully self-contained: SweepRunner executes
/// a cell without reading anything but the cell (what makes the thread pool
/// trivially deterministic).
struct SweepCell {
  std::size_t cell = 0;       ///< dense grid-point id, expansion order
  std::uint32_t replica = 0;  ///< replica index within the grid point
  RunMode mode = RunMode::kSimulate;  ///< place or simulate
  RunSpec spec;  ///< complete run description for this replica
  std::uint64_t stream_txs = 0;  ///< placed/simulated stream length
  std::uint64_t warm_txs = 0;  ///< Metis warm prefix length (kPlace only)
  std::uint64_t workload_seed = 1;  ///< generator seed
  WorkloadKind workload = WorkloadKind::kBitcoinLike;  ///< which generator
  workload::WorkloadConfig bitcoin_workload;           ///< UTXO-model knobs
  workload::AccountWorkloadConfig account_workload;  ///< account-model knobs
  /// Resolved trace window of the cell (workload == kTrace): end is always
  /// concrete (never the 0 = "to end" shorthand) after expand().
  TraceReplay trace;
  /// Dynamic-workload decoration of the cell's stream (inert by default).
  workload::DynamicProfile dynamic;
};

/// An expanded scenario: the flat cell list (grid-point-major,
/// replica-minor) plus the metadata reports carry forward.
struct Sweep {
  std::string scenario;   ///< ScenarioSpec::name
  std::string title;      ///< ScenarioSpec::title
  std::string paper_ref;  ///< ScenarioSpec::paper_ref
  RunMode mode = RunMode::kSimulate;  ///< place or simulate
  std::uint32_t replicas = 1;         ///< replicas per grid point
  std::vector<SweepCell> cells;       ///< grid-point-major, replica-minor
};

}  // namespace optchain::api

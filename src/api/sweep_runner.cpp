#include "api/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

#include "common/assert.hpp"
#include "metis/kway_partitioner.hpp"
#include "obs/phase_profiler.hpp"
#include "trace/trace_source.hpp"
#include "workload/tan_builder.hpp"

namespace optchain::api {

namespace {

/// Per-run memo of Table II warm partitions. Within one sweep the workload
/// config is fixed, so (shards, seed, warm length, workload kind) identifies
/// the partition — without this, every method cell of a warm-started
/// scenario would redo the dominant Metis work on the same 30:1 warm prefix.
/// call_once gives each key exactly one Metis run even when method cells
/// race for it; distinct keys still partition in parallel.
struct WarmPartition {
  std::once_flag once;
  std::vector<std::uint32_t> parts;
};

struct WarmCache {
  using Key = std::tuple<std::uint32_t, std::uint64_t, std::uint64_t, int>;
  std::mutex mutex;
  std::map<Key, std::shared_ptr<WarmPartition>> entries;
};

/// run_cell with an optional warm-partition memo (the stream itself is still
/// generated per cell: at paper scale a shared materialized warm stream per
/// in-flight key would dwarf the partition's memory).
RunReport run_cell_cached(const SweepCell& cell, WarmCache* cache) {
  // Wall-clock cell accounting only (obs::PhaseProfiler) — the cell's
  // simulated results stay a pure function of its seeds.
  obs::ScopedPhase timer(obs::Phase::kSweepCell);
  // Trace cells never regenerate (or materialize) anything: each one
  // streams its window of the shared imported container straight off disk —
  // the "import once, replay many cells" contract. expand() already
  // rejected warm starts for traces, and stream-dependent methods (Metis,
  // Static) are unavailable for the same reason they are under dynamic
  // profiles: there is no materialized stream to hand them.
  if (cell.workload == WorkloadKind::kTrace) {
    OPTCHAIN_EXPECTS(cell.warm_txs == 0);
    trace::TraceTxSource source(cell.trace.path, cell.trace.begin,
                                cell.trace.end);
    if (cell.dynamic.active()) {
      workload::DynamicTxSource dynamic(source, cell.dynamic,
                                        cell.workload_seed);
      return cell.mode == RunMode::kSimulate
                 ? simulate(cell.spec, dynamic, cell.stream_txs)
                 : place(cell.spec, dynamic, cell.stream_txs);
    }
    return cell.mode == RunMode::kSimulate
               ? simulate(cell.spec, source, cell.stream_txs)
               : place(cell.spec, source, cell.stream_txs);
  }

  const std::vector<tx::Transaction> txs = SweepRunner::cell_stream(cell);

  // Dynamic profiles decorate the generated stream through the TxSource
  // seam: the engines consume the decorated pull source unchanged (rate
  // curve issue times, injected hot-spend transactions). Incompatible with
  // warm starts — expand() rejects that combination up front.
  if (cell.dynamic.active()) {
    OPTCHAIN_EXPECTS(cell.warm_txs == 0);
    workload::SpanTxSource inner(txs);
    workload::DynamicTxSource source(inner, cell.dynamic, cell.workload_seed);
    // Injecting profiles have no exact emitted length; the inner stream
    // length keeps the capacity-capped methods' caps meaningful.
    return cell.mode == RunMode::kSimulate
               ? simulate(cell.spec, source, cell.stream_txs)
               : place(cell.spec, source, cell.stream_txs);
  }

  if (cell.mode == RunMode::kSimulate) return simulate(cell.spec, txs);

  if (cell.warm_txs == 0) return place(cell.spec, txs);

  // Table II warm start: offline Metis partition of the warm prefix (the
  // "certain stage of the system"), replayed as forced placements.
  const std::span<const tx::Transaction> all(txs);
  const auto compute = [&] {
    const graph::TanDag warm_tan =
        workload::build_tan(all.subspan(0, cell.warm_txs));
    metis::PartitionConfig metis_config;
    metis_config.k = cell.spec.num_shards;
    metis_config.seed = cell.spec.seed;
    return metis::partition_kway(warm_tan.to_undirected(), metis_config);
  };
  if (cache == nullptr) return place(cell.spec, all, compute());

  std::shared_ptr<WarmPartition> entry;
  {
    const std::lock_guard<std::mutex> lock(cache->mutex);
    std::shared_ptr<WarmPartition>& slot =
        cache->entries[{cell.spec.num_shards, cell.spec.seed, cell.warm_txs,
                        static_cast<int>(cell.workload)}];
    if (slot == nullptr) slot = std::make_shared<WarmPartition>();
    entry = slot;
  }
  std::call_once(entry->once, [&] { entry->parts = compute(); });
  return place(cell.spec, all, entry->parts);
}

}  // namespace

Aggregate Aggregate::of(std::span<const double> values) noexcept {
  Aggregate aggregate;
  if (values.empty()) return aggregate;
  aggregate.min = values[0];
  aggregate.max = values[0];
  double sum = 0.0;
  for (const double value : values) {
    sum += value;
    aggregate.min = std::min(aggregate.min, value);
    aggregate.max = std::max(aggregate.max, value);
  }
  aggregate.mean = sum / static_cast<double>(values.size());
  return aggregate;
}

std::vector<tx::Transaction> SweepRunner::cell_stream(const SweepCell& cell) {
  const std::uint64_t n = cell.warm_txs + cell.stream_txs;
  if (cell.workload == WorkloadKind::kTrace) {
    trace::TraceTxSource source(cell.trace.path, cell.trace.begin,
                                cell.trace.end);
    return workload::materialize(source);
  }
  if (cell.workload == WorkloadKind::kAccount) {
    workload::AccountWorkloadGenerator generator(cell.account_workload,
                                                 cell.workload_seed);
    return generator.generate(n);
  }
  workload::BitcoinLikeGenerator generator(cell.bitcoin_workload,
                                           cell.workload_seed);
  return generator.generate(n);
}

RunReport SweepRunner::run_cell(const SweepCell& cell) {
  return run_cell_cached(cell, nullptr);
}

SweepReport SweepRunner::run(const ScenarioSpec& spec) const {
  return run(spec.expand());
}

SweepReport SweepRunner::run(const Sweep& sweep) const {
  // A sweep that expanded to nothing is a configuration bug (an emptied
  // methods axis, a filtered-out grid); running it would "succeed" with an
  // empty report and exit code 0 — fail loudly instead.
  if (sweep.cells.empty()) {
    throw std::runtime_error("sweep \"" + sweep.scenario +
                             "\" expanded to zero cells — check the "
                             "methods/shards/rates axes");
  }
  // Execute every cell, in parallel up to `jobs` workers. results[i] is
  // written only by the worker that claimed index i, so the outcome is
  // independent of scheduling; a failed cell records its error instead.
  std::vector<RunReport> results(sweep.cells.size());
  std::vector<std::string> errors(sweep.cells.size());
  std::atomic<std::size_t> next{0};
  WarmCache warm_cache;
  const auto worker = [&] {
    while (true) {
      const std::size_t index = next.fetch_add(1);
      if (index >= sweep.cells.size()) return;
      try {
        results[index] = run_cell_cached(sweep.cells[index], &warm_cache);
      } catch (const std::exception& error) {
        errors[index] = error.what();
      }
    }
  };

  unsigned jobs = options_.jobs != 0 ? options_.jobs
                                     : std::thread::hardware_concurrency();
  jobs = std::max(1u, std::min<unsigned>(
                          jobs, static_cast<unsigned>(sweep.cells.size())));
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }

  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (!errors[i].empty()) {
      throw std::runtime_error("sweep cell " + std::to_string(i) + " (" +
                               sweep.cells[i].spec.method + ", k=" +
                               std::to_string(sweep.cells[i].spec.num_shards) +
                               "): " + errors[i]);
    }
  }

  // Aggregate replicas grid-point by grid-point. Cells are grid-point-major
  // and replica-minor, so each group is a contiguous run of `replicas`.
  SweepReport report;
  report.scenario = sweep.scenario;
  report.title = sweep.title;
  report.paper_ref = sweep.paper_ref;
  report.mode = sweep.mode;
  const std::uint32_t replicas = std::max<std::uint32_t>(1, sweep.replicas);
  OPTCHAIN_EXPECTS(sweep.cells.size() % replicas == 0);
  report.cells.reserve(sweep.cells.size() / replicas);

  std::vector<double> values(replicas);
  const auto aggregate = [&](auto&& metric, std::size_t base) {
    for (std::uint32_t r = 0; r < replicas; ++r) {
      values[r] = metric(results[base + r]);
    }
    return Aggregate::of(values);
  };

  for (std::size_t base = 0; base < sweep.cells.size(); base += replicas) {
    const SweepCell& cell = sweep.cells[base];
    CellReport out;
    out.cell = cell.cell;
    // The requested registry key, not the placer's self-reported name: the
    // ablation registers variants ("Greedy-smallties") whose placer answers
    // with its family name, and cells must stay distinguishable.
    out.method = cell.spec.method;
    out.num_shards = cell.spec.num_shards;
    out.rate_tps = cell.spec.rate_tps;
    out.seed = cell.spec.seed;
    out.txs = cell.stream_txs;
    out.warm_txs = cell.warm_txs;
    out.replicas = replicas;

    out.cross_fraction =
        aggregate([](const RunReport& r) { return r.cross_fraction(); }, base);
    out.cross_txs = aggregate(
        [](const RunReport& r) { return static_cast<double>(r.cross); }, base);
    const auto sim_metric = [](double sim::SimResult::*field) {
      return [field](const RunReport& r) {
        return r.sim.has_value() ? (*r.sim).*field : 0.0;
      };
    };
    out.throughput_tps =
        aggregate(sim_metric(&sim::SimResult::throughput_tps), base);
    out.avg_latency_s =
        aggregate(sim_metric(&sim::SimResult::avg_latency_s), base);
    out.max_latency_s =
        aggregate(sim_metric(&sim::SimResult::max_latency_s), base);
    out.duration_s = aggregate(sim_metric(&sim::SimResult::duration_s), base);
    out.committed = aggregate(
        [](const RunReport& r) {
          return r.sim ? static_cast<double>(r.sim->committed_txs) : 0.0;
        },
        base);
    out.aborted = aggregate(
        [](const RunReport& r) {
          return r.sim ? static_cast<double>(r.sim->aborted_txs) : 0.0;
        },
        base);
    out.total_blocks = aggregate(
        [](const RunReport& r) {
          return r.sim ? static_cast<double>(r.sim->total_blocks) : 0.0;
        },
        base);
    out.shard_changes = aggregate(
        [](const RunReport& r) {
          return r.sim ? static_cast<double>(r.sim->shard_changes) : 0.0;
        },
        base);
    out.migrated_txs = aggregate(
        [](const RunReport& r) {
          return r.sim ? static_cast<double>(r.sim->migrated_txs) : 0.0;
        },
        base);
    out.migrated_utxos = aggregate(
        [](const RunReport& r) {
          return r.sim ? static_cast<double>(r.sim->migrated_utxos) : 0.0;
        },
        base);
    out.repartition_events = aggregate(
        [](const RunReport& r) {
          return r.sim ? static_cast<double>(r.sim->repartition_events) : 0.0;
        },
        base);
    out.repartition_migrated_txs = aggregate(
        [](const RunReport& r) {
          return r.sim
                     ? static_cast<double>(r.sim->repartition_migrated_txs)
                     : 0.0;
        },
        base);
    out.repartition_migrated_utxos = aggregate(
        [](const RunReport& r) {
          return r.sim
                     ? static_cast<double>(r.sim->repartition_migrated_utxos)
                     : 0.0;
        },
        base);
    out.repartition_deferred_txs = aggregate(
        [](const RunReport& r) {
          return r.sim
                     ? static_cast<double>(r.sim->repartition_deferred_txs)
                     : 0.0;
        },
        base);
    for (std::uint32_t r = 0; r < replicas; ++r) {
      if (results[base + r].sim && !results[base + r].sim->completed) {
        out.completed = false;
      }
      out.runs.push_back(std::move(results[base + r]));
    }
    report.cells.push_back(std::move(out));
  }
  return report;
}

const CellReport* SweepReport::find(std::string_view method,
                                    std::uint32_t num_shards,
                                    double rate_tps) const noexcept {
  for (const CellReport& cell : cells) {
    if (cell.method == method && cell.num_shards == num_shards &&
        cell.rate_tps == rate_tps) {
      return &cell;
    }
  }
  return nullptr;
}

TextTable SweepReport::to_table() const {
  if (mode == RunMode::kPlace) {
    TextTable table({"method", "shards", "seed", "txs", "cross-TX",
                     "cross-TX %"});
    for (const CellReport& cell : cells) {
      table.add_row({cell.method, std::to_string(cell.num_shards),
                     std::to_string(cell.seed),
                     TextTable::fmt_int(static_cast<long long>(cell.txs)),
                     TextTable::fmt(cell.cross_txs.mean, 0),
                     TextTable::fmt_percent(cell.cross_fraction.mean)});
    }
    return table;
  }
  TextTable table({"method", "shards", "rate(tps)", "seed", "cross-TX",
                   "throughput(tps)", "avg lat(s)", "max lat(s)",
                   "completed"});
  for (const CellReport& cell : cells) {
    table.add_row({cell.method, std::to_string(cell.num_shards),
                   TextTable::fmt(cell.rate_tps, 0),
                   std::to_string(cell.seed),
                   TextTable::fmt_percent(cell.cross_fraction.mean),
                   TextTable::fmt(cell.throughput_tps.mean, 0),
                   TextTable::fmt(cell.avg_latency_s.mean, 1),
                   TextTable::fmt(cell.max_latency_s.mean, 1),
                   cell.completed ? "yes" : "no"});
  }
  return table;
}

namespace {

void append_full(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void append_aggregate(std::string& out, const Aggregate& aggregate) {
  out += ',';
  append_full(out, aggregate.mean);
  out += ',';
  append_full(out, aggregate.min);
  out += ',';
  append_full(out, aggregate.max);
}

constexpr const char* kAggregateColumns[] = {
    "cross_fraction", "cross_txs",  "throughput_tps",
    "avg_latency_s",  "max_latency_s", "committed",
    "aborted",        "duration_s", "total_blocks",
    "shard_changes",  "migrated_txs", "migrated_utxos",
    "repartition_events", "repartition_migrated_txs",
    "repartition_migrated_utxos", "repartition_deferred_txs"};

}  // namespace

std::string SweepReport::to_csv() const {
  std::string out =
      "scenario,mode,cell,method,shards,rate_tps,seed,replicas,txs,warm_txs,"
      "completed";
  for (const char* column : kAggregateColumns) {
    out += std::string(",") + column + "_mean," + column + "_min," + column +
           "_max";
  }
  out += '\n';
  for (const CellReport& cell : cells) {
    out += scenario;
    out += ',';
    out += to_string(mode);
    out += ',' + std::to_string(cell.cell) + ',' + cell.method + ',' +
           std::to_string(cell.num_shards) + ',';
    append_full(out, cell.rate_tps);
    out += ',' + std::to_string(cell.seed) + ',' +
           std::to_string(cell.replicas) + ',' + std::to_string(cell.txs) +
           ',' + std::to_string(cell.warm_txs) + ',' +
           (cell.completed ? "1" : "0");
    const Aggregate* aggregates[] = {
        &cell.cross_fraction, &cell.cross_txs,  &cell.throughput_tps,
        &cell.avg_latency_s,  &cell.max_latency_s, &cell.committed,
        &cell.aborted,        &cell.duration_s, &cell.total_blocks,
        &cell.shard_changes,  &cell.migrated_txs, &cell.migrated_utxos,
        &cell.repartition_events, &cell.repartition_migrated_txs,
        &cell.repartition_migrated_utxos, &cell.repartition_deferred_txs};
    for (const Aggregate* aggregate : aggregates) {
      append_aggregate(out, *aggregate);
    }
    out += '\n';
  }
  return out;
}

void SweepReport::write_json(JsonWriter& json) const {
  json.field("scenario", scenario)
      .field("title", title)
      .field("paper_ref", paper_ref)
      .field("mode", to_string(mode))
      .field("num_cells", cells.size());
  for (const CellReport& cell : cells) {
    json.begin_object("cell" + std::to_string(cell.cell))
        .field("method", cell.method)
        .field("shards", cell.num_shards)
        .field("rate_tps", cell.rate_tps)
        .field("seed", cell.seed)
        .field("replicas", cell.replicas)
        .field("txs", cell.txs)
        .field("warm_txs", cell.warm_txs)
        .field("completed", cell.completed);
    const std::pair<const char*, const Aggregate*> metrics[] = {
        {"cross_fraction", &cell.cross_fraction},
        {"cross_txs", &cell.cross_txs},
        {"throughput_tps", &cell.throughput_tps},
        {"avg_latency_s", &cell.avg_latency_s},
        {"max_latency_s", &cell.max_latency_s},
        {"committed", &cell.committed},
        {"aborted", &cell.aborted},
        {"duration_s", &cell.duration_s},
        {"total_blocks", &cell.total_blocks},
        {"shard_changes", &cell.shard_changes},
        {"migrated_txs", &cell.migrated_txs},
        {"migrated_utxos", &cell.migrated_utxos},
        {"repartition_events", &cell.repartition_events},
        {"repartition_migrated_txs", &cell.repartition_migrated_txs},
        {"repartition_migrated_utxos", &cell.repartition_migrated_utxos},
        {"repartition_deferred_txs", &cell.repartition_deferred_txs}};
    for (const auto& [name, aggregate] : metrics) {
      json.begin_object(name)
          .field("mean", aggregate->mean)
          .field("min", aggregate->min)
          .field("max", aggregate->max)
          .end_object();
    }
    json.end_object();
  }
}

}  // namespace optchain::api

// SweepRunner — one parallel executor for every experiment sweep.
//
// Executes an expanded Sweep on a std::thread pool (one pipeline + one
// simulator per cell, nothing shared between workers) and aggregates the
// per-cell RunReports into a SweepReport. Determinism is structural, not
// lucky: each SweepCell is self-contained (its own workload seed, method
// seed and sim seed), workers only write results[their cell index], and
// aggregation walks cells in expansion order — so the SweepReport is
// bit-identical at --jobs=1 and --jobs=N (pinned by tests/scenario_test.cpp).
//
// A SweepReport emits three shapes: an aligned TextTable (one row per grid
// point), a full-precision CSV (the machine-readable artifact), and nested
// JSON via JsonWriter (the BENCH_figs.json schema).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/run_spec.hpp"
#include "api/scenario_spec.hpp"
#include "common/json_writer.hpp"
#include "common/table.hpp"
#include "txmodel/transaction.hpp"

namespace optchain::api {

/// mean/min/max of one metric across a grid point's replicas.
struct Aggregate {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;

  static Aggregate of(std::span<const double> values) noexcept;
};

/// One grid point of a finished sweep: identity, replica aggregates, and the
/// raw per-replica RunReports (figure shaping needs the full SimResult —
/// latency CDFs, commit windows, queue snapshots — not just scalars).
struct CellReport {
  std::size_t cell = 0;
  std::string method;
  std::uint32_t num_shards = 0;
  double rate_tps = 0.0;
  std::uint64_t seed = 1;
  std::uint64_t txs = 0;       // per-replica stream length
  std::uint64_t warm_txs = 0;  // Metis warm prefix (placement mode)
  std::uint32_t replicas = 1;
  /// Simulation mode: every replica drained before the safety horizon.
  bool completed = true;

  Aggregate cross_fraction;
  Aggregate cross_txs;
  Aggregate throughput_tps;
  Aggregate avg_latency_s;
  Aggregate max_latency_s;
  Aggregate committed;
  Aggregate aborted;
  Aggregate duration_s;
  Aggregate total_blocks;

  std::vector<RunReport> runs;  // one per replica, expansion order

  /// Replica 0's raw report (the common case for figure shaping).
  const RunReport& first() const { return runs.front(); }
};

struct SweepReport {
  std::string scenario;
  std::string title;
  std::string paper_ref;
  RunMode mode = RunMode::kSimulate;
  std::vector<CellReport> cells;

  /// First grid point matching (method, shards, rate) across seeds, or
  /// nullptr. Figure shaping pivots the cell list through this.
  const CellReport* find(std::string_view method, std::uint32_t num_shards,
                         double rate_tps) const noexcept;

  /// Generic per-grid-point summary table (means across replicas).
  TextTable to_table() const;
  /// Full-precision flat CSV, one row per grid point with
  /// mean/min/max columns — the canonical determinism artifact.
  std::string to_csv() const;
  /// Nested JSON into an already-open object of `json`.
  void write_json(JsonWriter& json) const;
};

struct SweepOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned jobs = 1;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {}) : options_(options) {}

  SweepReport run(const ScenarioSpec& spec) const;
  SweepReport run(const Sweep& sweep) const;

  /// One cell end-to-end (stream generation → place/simulate), producing
  /// exactly what a worker thread produces (workers additionally share a
  /// per-run warm-partition memo, which never changes results). Exposed so
  /// tests can replay a cell against the direct api::place/api::simulate
  /// calls.
  static RunReport run_cell(const SweepCell& cell);

  /// The deterministic stream a cell consumes (warm prefix included).
  static std::vector<tx::Transaction> cell_stream(const SweepCell& cell);

 private:
  SweepOptions options_;
};

}  // namespace optchain::api

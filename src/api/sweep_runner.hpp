// SweepRunner — one parallel executor for every experiment sweep.
//
// Executes an expanded Sweep on a std::thread pool (one pipeline + one
// simulator per cell, nothing shared between workers) and aggregates the
// per-cell RunReports into a SweepReport. Determinism is structural, not
// lucky: each SweepCell is self-contained (its own workload seed, method
// seed and sim seed), workers only write results[their cell index], and
// aggregation walks cells in expansion order — so the SweepReport is
// bit-identical at --jobs=1 and --jobs=N (pinned by tests/scenario_test.cpp).
//
// A SweepReport emits three shapes: an aligned TextTable (one row per grid
// point), a full-precision CSV (the machine-readable artifact), and nested
// JSON via JsonWriter (the BENCH_figs.json schema).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/run_spec.hpp"
#include "api/scenario_spec.hpp"
#include "common/json_writer.hpp"
#include "common/table.hpp"
#include "txmodel/transaction.hpp"

namespace optchain::api {

/// mean/min/max of one metric across a grid point's replicas.
struct Aggregate {
  double mean = 0.0;  ///< arithmetic mean across replicas
  double min = 0.0;   ///< smallest replica value
  double max = 0.0;   ///< largest replica value

  /// Aggregates `values` (all-zero when empty).
  static Aggregate of(std::span<const double> values) noexcept;
};

/// One grid point of a finished sweep: identity, replica aggregates, and the
/// raw per-replica RunReports (figure shaping needs the full SimResult —
/// latency CDFs, commit windows, queue snapshots — not just scalars).
struct CellReport {
  std::size_t cell = 0;          ///< dense grid-point id
  std::string method;            ///< the requested registry key
  std::uint32_t num_shards = 0;  ///< (initial) shard count
  double rate_tps = 0.0;         ///< nominal issue rate
  std::uint64_t seed = 1;        ///< workload/method seed
  std::uint64_t txs = 0;       ///< per-replica stream length
  std::uint64_t warm_txs = 0;  ///< Metis warm prefix (placement mode)
  std::uint32_t replicas = 1;  ///< replicas aggregated below
  /// Simulation mode: every replica drained before the safety horizon.
  bool completed = true;

  Aggregate cross_fraction;  ///< cross-shard fraction
  Aggregate cross_txs;       ///< cross-shard transaction count
  Aggregate throughput_tps;  ///< committed / duration
  Aggregate avg_latency_s;   ///< mean confirmation latency
  Aggregate max_latency_s;   ///< worst confirmation latency
  Aggregate committed;       ///< committed transactions
  Aggregate aborted;         ///< aborted transactions (rejection path)
  Aggregate duration_s;      ///< simulated time of the last terminal event
  Aggregate total_blocks;    ///< blocks committed across shards
  /// Shard churn metrics (all-zero without a churn plan).
  Aggregate shard_changes;
  Aggregate migrated_txs;   ///< records bulk-migrated off retiring shards
  Aggregate migrated_utxos; ///< live UTXO records that moved with them
  /// Re-partition metrics (all-zero without a repartition config).
  Aggregate repartition_events;         ///< controller ticks fired
  Aggregate repartition_migrated_txs;   ///< records moved by the controller
  Aggregate repartition_migrated_utxos; ///< live UTXOs that moved with them
  Aggregate repartition_deferred_txs;   ///< budget-deferred moves (pressure)

  std::vector<RunReport> runs;  ///< one per replica, expansion order

  /// Replica 0's raw report (the common case for figure shaping).
  const RunReport& first() const { return runs.front(); }
};

/// A finished sweep: per-grid-point aggregates plus emission helpers.
struct SweepReport {
  std::string scenario;   ///< ScenarioSpec::name
  std::string title;      ///< ScenarioSpec::title
  std::string paper_ref;  ///< ScenarioSpec::paper_ref
  RunMode mode = RunMode::kSimulate;  ///< place or simulate
  std::vector<CellReport> cells;      ///< expansion order

  /// First grid point matching (method, shards, rate) across seeds, or
  /// nullptr. Figure shaping pivots the cell list through this.
  const CellReport* find(std::string_view method, std::uint32_t num_shards,
                         double rate_tps) const noexcept;

  /// Generic per-grid-point summary table (means across replicas).
  TextTable to_table() const;
  /// Full-precision flat CSV, one row per grid point with
  /// mean/min/max columns — the canonical determinism artifact.
  std::string to_csv() const;
  /// Nested JSON into an already-open object of `json`.
  void write_json(JsonWriter& json) const;
};

/// Execution knobs of a SweepRunner.
struct SweepOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned jobs = 1;
};

/// The one parallel executor for every experiment sweep (see file comment).
class SweepRunner {
 public:
  /// `options` picks the worker-thread count; results never depend on it.
  explicit SweepRunner(SweepOptions options = {}) : options_(options) {}

  /// expand()s the spec and runs it (validation errors throw).
  SweepReport run(const ScenarioSpec& spec) const;
  /// Runs an already-expanded sweep. Throws std::runtime_error when the
  /// sweep has zero cells — an empty expansion is a configuration bug, not
  /// a successful no-op.
  SweepReport run(const Sweep& sweep) const;

  /// One cell end-to-end (stream generation → place/simulate), producing
  /// exactly what a worker thread produces (workers additionally share a
  /// per-run warm-partition memo, which never changes results). Exposed so
  /// tests can replay a cell against the direct api::place/api::simulate
  /// calls.
  static RunReport run_cell(const SweepCell& cell);

  /// The deterministic stream a cell consumes (warm prefix included).
  static std::vector<tx::Transaction> cell_stream(const SweepCell& cell);

 private:
  SweepOptions options_;
};

}  // namespace optchain::api

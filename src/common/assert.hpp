// Lightweight contract macros in the spirit of the C++ Core Guidelines'
// Expects()/Ensures() (I.6, I.8). Violations indicate a programming error and
// terminate; they are enabled in all build types because the library's
// correctness arguments (DAG-ness, UTXO single-spend, event-time monotonicity)
// rely on them.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace optchain::detail {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "%s violation: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace optchain::detail

#define OPTCHAIN_EXPECTS(cond)                                              \
  ((cond) ? static_cast<void>(0)                                            \
          : ::optchain::detail::contract_violation("Precondition", #cond,   \
                                                   __FILE__, __LINE__))

#define OPTCHAIN_ENSURES(cond)                                              \
  ((cond) ? static_cast<void>(0)                                            \
          : ::optchain::detail::contract_violation("Postcondition", #cond,  \
                                                   __FILE__, __LINE__))

#define OPTCHAIN_ASSERT(cond)                                               \
  ((cond) ? static_cast<void>(0)                                            \
          : ::optchain::detail::contract_violation("Invariant", #cond,      \
                                                   __FILE__, __LINE__))

#include "common/flags.hpp"

#include <stdexcept>
#include <string_view>

namespace optchain {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!item.empty()) out.push_back(std::move(item));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view token = argv[i];
    if (token.rfind("--benchmark", 0) == 0) continue;  // google-benchmark's
    if (token.rfind("--", 0) != 0) {
      throw std::invalid_argument("unrecognized argument: " +
                                  std::string(token));
    }
    const std::string_view body = token.substr(2);
    const std::size_t eq = body.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(body)] = "true";
    } else {
      values_[std::string(body.substr(0, eq))] =
          std::string(body.substr(eq + 1));
    }
  }
}

bool Flags::has(const std::string& name) const noexcept {
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stoll(it->second);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::int64_t> Flags::get_int_list(
    const std::string& name, std::vector<std::int64_t> fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  const std::string& text = it->second;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!item.empty()) out.push_back(std::stoll(item));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::vector<double> Flags::get_double_list(
    const std::string& name, std::vector<double> fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<double> out;
  const std::string& text = it->second;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!item.empty()) out.push_back(std::stod(item));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::vector<std::string> Flags::get_string_list(
    const std::string& name, std::vector<std::string> fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return split_csv(it->second);
}

}  // namespace optchain

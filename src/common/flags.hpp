// Minimal `--name=value` command-line flag parsing for the bench/example
// binaries. Unknown flags starting with "--benchmark" are ignored so the
// same argv can be shared with google-benchmark binaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace optchain {

/// Splits comma-separated text into its non-empty items ("a,,b" → {a, b};
/// "" → {}). The parsing behind every list-valued flag and the bench tool's
/// scenario lists.
std::vector<std::string> split_csv(const std::string& text);

class Flags {
 public:
  /// Parses argv. Throws std::invalid_argument on a malformed flag
  /// (non "--name[=value]" token).
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const noexcept;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list, e.g. --shards=4,8,16.
  std::vector<std::int64_t> get_int_list(
      const std::string& name, std::vector<std::int64_t> fallback) const;

  /// Comma-separated double list, e.g. --slowdown=6.0,1.0,2.5.
  std::vector<double> get_double_list(const std::string& name,
                                      std::vector<double> fallback) const;

  /// Comma-separated string list, e.g. --methods=OptChain,Greedy. An
  /// explicitly empty value (--methods=) yields an empty list — consumers
  /// decide whether that is an error (the bench axes treat it as one).
  std::vector<std::string> get_string_list(
      const std::string& name, std::vector<std::string> fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace optchain

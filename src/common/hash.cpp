#include "common/hash.hpp"

#include <bit>

namespace optchain {
namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t big_sigma0(std::uint32_t x) noexcept {
  return std::rotr(x, 2) ^ std::rotr(x, 13) ^ std::rotr(x, 22);
}
constexpr std::uint32_t big_sigma1(std::uint32_t x) noexcept {
  return std::rotr(x, 6) ^ std::rotr(x, 11) ^ std::rotr(x, 25);
}
constexpr std::uint32_t small_sigma0(std::uint32_t x) noexcept {
  return std::rotr(x, 7) ^ std::rotr(x, 18) ^ (x >> 3);
}
constexpr std::uint32_t small_sigma1(std::uint32_t x) noexcept {
  return std::rotr(x, 17) ^ std::rotr(x, 19) ^ (x >> 10);
}

}  // namespace

void Sha256::reset() noexcept {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha256::process_block(const std::uint8_t* block) noexcept {
  std::array<std::uint32_t, 64> w;
  for (std::size_t i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (std::size_t i = 16; i < 64; ++i) {
    w[i] = small_sigma1(w[i - 2]) + w[i - 7] + small_sigma0(w[i - 15]) +
           w[i - 16];
  }

  auto [a, b, c, d, e, f, g, h] = state_;
  for (std::size_t i = 0; i < 64; ++i) {
    const std::uint32_t t1 =
        h + big_sigma1(e) + ((e & f) ^ (~e & g)) + kRoundConstants[i] + w[i];
    const std::uint32_t t2 = big_sigma0(a) + ((a & b) ^ (a & c) ^ (b & c));
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(std::span<const std::uint8_t> data) noexcept {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Digest256 Sha256::finish() noexcept {
  const std::uint64_t bit_length = total_bytes_ * 8;
  // Padding: 0x80, zeros, then 64-bit big-endian length.
  const std::uint8_t pad_one = 0x80;
  update(std::span<const std::uint8_t>(&pad_one, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(std::span<const std::uint8_t>(&zero, 1));
  std::array<std::uint8_t, 8> len_bytes;
  for (std::size_t i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>(len_bytes));

  Digest256 out;
  for (std::size_t i = 0; i < 8; ++i) {
    out.bytes[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out.bytes[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out.bytes[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out.bytes[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

std::string Digest256::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (const std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

}  // namespace optchain

// Hashing primitives.
//
// - Sha256: a from-scratch FIPS 180-4 SHA-256 implementation. Transaction ids
//   are SHA-256 digests of the transaction's canonical encoding, mirroring
//   Bitcoin's txid construction (single pass; the double hash adds nothing for
//   the experiments here). OmniLedger-style random placement is
//   "hash of txid mod k", so a real cryptographic hash keeps that baseline
//   faithful to the paper.
// - mix64: a cheap statistically-strong 64-bit finalizer for hash tables and
//   for deriving per-entity sub-seeds.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

namespace optchain {

/// 256-bit digest.
struct Digest256 {
  std::array<std::uint8_t, 32> bytes{};

  friend bool operator==(const Digest256&, const Digest256&) = default;

  /// First 8 bytes interpreted little-endian; convenient uniform 64-bit view.
  std::uint64_t low64() const noexcept {
    std::uint64_t v = 0;
    std::memcpy(&v, bytes.data(), sizeof(v));
    return v;
  }

  std::string hex() const;
};

/// Incremental SHA-256 (FIPS 180-4).
class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view text) noexcept {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  }
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void update_value(const T& value) noexcept {
    std::array<std::uint8_t, sizeof(T)> raw;
    std::memcpy(raw.data(), &value, sizeof(T));
    update(std::span<const std::uint8_t>(raw));
  }

  /// Finalizes and returns the digest. The object must be reset() before reuse.
  Digest256 finish() noexcept;

  /// One-shot convenience.
  static Digest256 digest(std::span<const std::uint8_t> data) noexcept {
    Sha256 h;
    h.update(data);
    return h.finish();
  }
  static Digest256 digest(std::string_view text) noexcept {
    Sha256 h;
    h.update(text);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// Fast 64-bit mixing finalizer (splitmix64 finalizer). Suitable for hash
/// tables and seed derivation; not cryptographic.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a byte span; for cheap non-adversarial content hashing.
constexpr std::uint64_t fnv1a(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace optchain

#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace optchain {

void IntHistogram::add(std::uint64_t value, std::uint64_t count) {
  counts_[value] += count;
  total_ += count;
}

void IntHistogram::merge(const IntHistogram& other) {
  for (const auto& [value, count] : other.counts_) add(value, count);
}

std::uint64_t IntHistogram::count_of(std::uint64_t value) const noexcept {
  const auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t IntHistogram::max_value() const noexcept {
  return counts_.empty() ? 0 : counts_.rbegin()->first;
}

double IntHistogram::fraction_below(std::uint64_t bound) const noexcept {
  if (total_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (const auto& [value, count] : counts_) {
    if (value >= bound) break;
    below += count;
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> IntHistogram::sorted()
    const {
  return {counts_.begin(), counts_.end()};
}

std::vector<std::pair<std::uint64_t, double>> IntHistogram::cumulative() const {
  std::vector<std::pair<std::uint64_t, double>> out;
  out.reserve(counts_.size());
  std::uint64_t running = 0;
  for (const auto& [value, count] : counts_) {
    running += count;
    out.emplace_back(value,
                     static_cast<double>(running) / static_cast<double>(total_));
  }
  return out;
}

void SampleStats::add(double value) {
  samples_.push_back(value);
  sum_ += value;
  sorted_valid_ = false;
}

void SampleStats::merge(const SampleStats& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sorted_valid_ = false;
}

double SampleStats::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double SampleStats::min() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::max() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

void SampleStats::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleStats::quantile(double q) const {
  OPTCHAIN_EXPECTS(q >= 0.0 && q <= 1.0);
  OPTCHAIN_EXPECTS(!samples_.empty());
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return sorted_[std::min(index, sorted_.size() - 1)];
}

std::vector<double> SampleStats::cdf_at(
    const std::vector<double>& thresholds) const {
  ensure_sorted();
  std::vector<double> out;
  out.reserve(thresholds.size());
  for (const double t : thresholds) {
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), t);
    const auto below = static_cast<double>(it - sorted_.begin());
    out.push_back(sorted_.empty() ? 0.0
                                  : below / static_cast<double>(sorted_.size()));
  }
  return out;
}

}  // namespace optchain

// Histogram / empirical-distribution helpers used by the TaN statistics
// (Fig. 2), latency CDFs (Fig. 10), and queue-size tracking (Figs. 6-7).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace optchain {

/// Exact integer-valued histogram (counts per value). Suited to degree
/// distributions where the support is small relative to the sample count.
class IntHistogram {
 public:
  void add(std::uint64_t value, std::uint64_t count = 1);

  /// Folds another histogram in (per-value counts add).
  void merge(const IntHistogram& other);

  std::uint64_t count_of(std::uint64_t value) const noexcept;
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t max_value() const noexcept;

  /// Fraction of samples with value < bound (used for the "93.1% of nodes
  /// have in-degree lower than 3" style statements in Fig. 2b).
  double fraction_below(std::uint64_t bound) const noexcept;

  /// (value, count) pairs sorted by value.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted() const;

  /// Cumulative distribution: (value, P[X <= value]) sorted by value.
  std::vector<std::pair<std::uint64_t, double>> cumulative() const;

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Streaming summary for real-valued samples: mean/min/max plus exact
/// quantiles (stores all samples; fine for per-experiment sample counts).
class SampleStats {
 public:
  void add(double value);

  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept { return sum_; }

  /// Quantile in [0, 1] by nearest-rank on the sorted samples.
  double quantile(double q) const;

  /// Exact median (nearest-rank).
  double p50() const { return quantile(0.50); }
  /// Exact 99th percentile (nearest-rank).
  double p99() const { return quantile(0.99); }
  /// Exact 99.9th percentile (nearest-rank) — tail latency reporting.
  double p999() const { return quantile(0.999); }

  /// Folds another sample store in; quantiles over the merged store are
  /// exact over the union (obs::Histogram's merge path).
  void merge(const SampleStats& other);

  /// Empirical CDF evaluated at the given thresholds:
  /// returns P[X <= t] for each t.
  std::vector<double> cdf_at(const std::vector<double>& thresholds) const;

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

}  // namespace optchain

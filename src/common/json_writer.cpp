#include "common/json_writer.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace optchain {

void JsonWriter::comma() {
  if (needs_comma_) out_ += ",";
  needs_comma_ = true;
}

void JsonWriter::key(const std::string& name) {
  comma();
  out_ += "\"" + name + "\":";
}

JsonWriter& JsonWriter::field(const std::string& k, const std::string& value) {
  key(k);
  out_ += "\"";
  for (const char c : value) {
    if (c == '"' || c == '\\') {
      out_ += '\\';
      out_ += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char escaped[8];
      std::snprintf(escaped, sizeof(escaped), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out_ += escaped;
    } else {
      out_ += c;
    }
  }
  out_ += "\"";
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& k, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  key(k);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& k, bool value) {
  key(k);
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::begin_object(const std::string& k) {
  key(k);
  out_ += "{";
  needs_comma_ = false;
  ++depth_;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += "}";
  needs_comma_ = true;
  --depth_;
  return *this;
}

std::string JsonWriter::finish() {
  while (depth_ > 0) {
    out_ += "}";
    --depth_;
  }
  return out_;
}

void JsonWriter::save(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << finish() << "\n";
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace optchain

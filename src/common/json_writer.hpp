// Minimal ordered JSON emitter for machine-readable artifacts
// (BENCH_*.json, SweepReport exports): nested objects, string/number/bool
// fields, no external dependency. Keys are emitted verbatim — callers use
// plain identifiers. Lived in bench_common until the SweepReport API needed
// it; optchain::bench::JsonWriter remains as an alias.
#pragma once

#include <concepts>
#include <string>

namespace optchain {

class JsonWriter {
 public:
  JsonWriter() { out_ = "{"; }

  JsonWriter& field(const std::string& key, const std::string& value);
  JsonWriter& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  JsonWriter& field(const std::string& key, double value);
  JsonWriter& field(const std::string& key, bool value);
  /// One overload for every integer width/signedness, so call sites never
  /// need casts to dodge overload ambiguity.
  JsonWriter& field(const std::string& name,
                    std::integral auto value) requires(
      !std::same_as<decltype(value), bool>) {
    key(name);
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& begin_object(const std::string& key);
  JsonWriter& end_object();

  /// Closes the root object and returns the document.
  std::string finish();

  /// Writes finish() to `path` (with a trailing newline).
  void save(const std::string& path);

 private:
  void comma();
  void key(const std::string& name);

  std::string out_;
  bool needs_comma_ = false;
  int depth_ = 1;
};

}  // namespace optchain

// Deterministic, seedable random number generation.
//
// All stochastic components of the library (workload generation, placement
// tie-breaking, the discrete-event simulator) draw from Rng so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256** seeded via splitmix64 — fast, high quality, and stable across
// platforms (unlike std::mt19937 + std:: distributions, whose outputs are not
// specified bit-for-bit across standard library implementations).
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/assert.hpp"

namespace optchain {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = std::rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept {
    OPTCHAIN_EXPECTS(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    OPTCHAIN_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? (*this)() : below(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Exponential with rate lambda (> 0); mean 1/lambda.
  double exponential(double lambda) noexcept {
    OPTCHAIN_EXPECTS(lambda > 0.0);
    // 1 - uniform01() is in (0, 1], so log() is finite.
    return -std::log(1.0 - uniform01()) / lambda;
  }

  /// Standard normal via Box–Muller (no cached second value: determinism over
  /// micro-efficiency).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept {
    const double u1 = 1.0 - uniform01();
    const double u2 = uniform01();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * radius * std::cos(6.283185307179586 * u2);
  }

  /// Geometric: number of Bernoulli(p) failures before the first success.
  std::uint64_t geometric(double p) noexcept {
    OPTCHAIN_EXPECTS(p > 0.0 && p <= 1.0);
    if (p >= 1.0) return 0;
    return static_cast<std::uint64_t>(
        std::floor(std::log(1.0 - uniform01()) / std::log(1.0 - p)));
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// Samples from a bounded discrete power law: P(X = x) ∝ x^(-alpha) for
/// x in [1, xmax]. Used for TaN in/out-degree draws (Fig. 2a exhibits a
/// power-law degree distribution with small mean).
class ZipfSampler {
 public:
  ZipfSampler(double alpha, std::uint32_t xmax) : alpha_(alpha), xmax_(xmax) {
    OPTCHAIN_EXPECTS(xmax >= 1);
    cdf_.reserve(xmax);
    double total = 0.0;
    for (std::uint32_t x = 1; x <= xmax; ++x) {
      total += std::pow(static_cast<double>(x), -alpha);
      cdf_.push_back(total);
    }
    for (auto& c : cdf_) c /= total;
  }

  std::uint32_t sample(Rng& rng) const noexcept {
    const double u = rng.uniform01();
    // cdf_ is sorted; binary search for the first entry >= u.
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return static_cast<std::uint32_t>(lo + 1);
  }

  double alpha() const noexcept { return alpha_; }
  std::uint32_t xmax() const noexcept { return xmax_; }

  /// Mean of the distribution (exact, from the normalized pmf).
  double mean() const noexcept {
    double mu = 0.0;
    double prev = 0.0;
    for (std::size_t i = 0; i < cdf_.size(); ++i) {
      mu += static_cast<double>(i + 1) * (cdf_[i] - prev);
      prev = cdf_[i];
    }
    return mu;
  }

 private:
  double alpha_;
  std::uint32_t xmax_;
  std::vector<double> cdf_;
};

}  // namespace optchain

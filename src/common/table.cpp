#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "common/assert.hpp"

namespace optchain {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  OPTCHAIN_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  OPTCHAIN_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f %%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::fmt_signed_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f %%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::fmt_int(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
      out += (c + 1 == row.size()) ? "\n" : "  ";
    }
  };
  emit_row(header_);
  std::size_t rule_len = 0;
  for (const std::size_t w : widths) rule_len += w + 2;
  out.append(rule_len > 2 ? rule_len - 2 : rule_len, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void TextTable::print(std::FILE* out) const {
  const std::string text = to_string();
  std::fwrite(text.data(), 1, text.size(), out);
  std::fflush(out);
}

std::string TextTable::to_csv() const {
  const auto escape = [](const std::string& cell) -> std::string {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (const char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += escape(row[c]);
      out += (c + 1 == row.size()) ? "\n" : ",";
    }
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void TextTable::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write CSV: " + path);
  out << to_csv();
  if (!out) throw std::runtime_error("CSV write failed: " + path);
}

}  // namespace optchain

// Aligned plain-text table printer. The benchmark harnesses print
// paper-style rows (Table I/II and the figure series) with it, so the bench
// output is directly comparable against the paper.
#pragma once

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

namespace optchain {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string fmt(double value, int precision = 2);
  static std::string fmt_percent(double fraction, int precision = 2);
  /// Like fmt_percent but always signed ("+12.3 %" / "-12.3 %") — for
  /// relative-gain columns where the sign carries the comparison.
  static std::string fmt_signed_percent(double fraction, int precision = 2);
  static std::string fmt_int(long long value);

  /// Renders with column alignment and a header rule.
  std::string to_string() const;
  void print(std::FILE* out = stdout) const;

  /// RFC-4180-style CSV (quotes cells containing commas/quotes/newlines),
  /// header row included — for feeding the bench outputs into plotting
  /// tools.
  std::string to_csv() const;
  void save_csv(const std::string& path) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace optchain

// BatchScorable — the capability a placer exposes so the micro-batched
// front-end (api::BatchPlacementPipeline) can parallelize it.
//
// The OptChain decision splits cleanly in two:
//   gather — p'(u) = (1 − α) Σ p'(v)/|Nout(v)| reads only *final* parent
//            vectors plus DAG-structural divisors: embarrassingly parallel
//            across transactions whose parents are all placed;
//   commit — the argmax reads live shard sizes and the α self-mass mutates
//            the score store: inherently sequential in arrival order.
// This interface names that split. The front-end discovers it via
// dynamic_cast from placement::Placer; placers that do not implement it run
// through the exact sequential step loop instead (still bit-identical, just
// not parallel).
//
// Contract: for every transaction u, gather(parents, divisors) followed by
// choose_gathered + commit_gathered in arrival order must produce byte- and
// decision-identical state to the sequential choose() + notify_placed()
// pair. Divisors are computed by the caller during its sequential prepare
// pass (parent_divisor) so the gather itself never reads mutable DAG state.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/score_pool.hpp"
#include "placement/placer.hpp"
#include "placement/shard_assignment.hpp"

namespace optchain::core {

/// Capability interface for placers whose per-transaction decision separates
/// into a thread-safe gather over final parent score vectors and a
/// sequential arrival-order commit (see the file comment for the exact
/// contract). Implemented by OptChainPlacer; detected by
/// api::BatchPlacementPipeline via dynamic_cast.
class BatchScorable {
 public:
  virtual ~BatchScorable() = default;

  /// Opaque per-thread scratch state for gather(). Each scoring worker owns
  /// one instance; an instance must never be used by two concurrent
  /// gather() calls.
  class Scratch {
   public:
    virtual ~Scratch() = default;
  };

  /// Allocates a fresh scratch instance for one scoring thread.
  virtual std::unique_ptr<Scratch> make_scratch() const = 0;

  /// The |Nout(v)| divisor for `parent` exactly as the sequential scorer
  /// would compute it when the parent's observed spender count (including
  /// the arriving transaction) is `spenders`. May consult non-thread-safe
  /// state (e.g. a declared-outputs closure) — call only from the
  /// sequential prepare pass.
  virtual double parent_divisor(tx::TxIndex parent,
                                std::uint32_t spenders) const = 0;

  /// Thread-safe gather: fills `merged` with the sorted, pruned sparse
  /// pre-commit vector p'(u) = (1 − α) Σ_i p'(parents[i]) / divisors[i] —
  /// byte-identical to what the sequential scoring path would cache. Every
  /// parent's vector must be final (placed and committed) before the call.
  /// `k` is the current shard count.
  virtual void gather(std::span<const tx::TxIndex> parents,
                      std::span<const double> divisors, std::uint32_t k,
                      Scratch& scratch,
                      std::vector<ScoreEntry>& merged) const = 0;

  /// Commit-phase decision from a pre-gathered vector: normalizes `merged`
  /// by live shard sizes and runs the same argmax as choose(). Reads live
  /// assignment state — call sequentially, in arrival order.
  virtual placement::ShardId choose_gathered(
      const placement::PlacementRequest& request,
      std::span<const ScoreEntry> merged,
      const placement::ShardAssignment& assignment) = 0;

  /// Finalizes the arrival-order commit of `request.index` into `shard`:
  /// stores `merged` with the α self-mass folded in. Replaces the
  /// choose() + notify_placed() pair for batched arrivals; call sequentially
  /// right after choose_gathered() for the same transaction.
  virtual void commit_gathered(const placement::PlacementRequest& request,
                               std::span<const ScoreEntry> merged,
                               placement::ShardId shard) = 0;
};

}  // namespace optchain::core

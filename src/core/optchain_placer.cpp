#include "core/optchain_placer.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace optchain::core {

OptChainPlacer::OptChainPlacer(
    const graph::TanDag& dag, OptChainConfig config, std::string_view label,
    std::function<std::uint32_t(tx::TxIndex)> declared_outputs)
    : dag_(dag),
      config_(config),
      label_(label),
      scorer_(config.t2s, std::move(declared_outputs)),
      l2s_(config.l2s) {
  OPTCHAIN_EXPECTS(config_.l2s_weight >= 0.0);
}

placement::ShardId OptChainPlacer::choose(
    const placement::PlacementRequest& request,
    const placement::ShardAssignment& assignment) {
  const std::uint32_t k = assignment.k();
  OPTCHAIN_EXPECTS(request.index < dag_.num_nodes());

  // Step 1-2: normalized T2S scores (all-zero for coinbase), computed into
  // the reused member buffer.
  scorer_.score(dag_, request.index, assignment, last_scores_);

  // Step 3: subtract the weighted L2S expectation when timing data exists.
  if (!request.timings.empty() && config_.l2s_weight > 0.0) {
    OPTCHAIN_EXPECTS(request.timings.size() == k);
    assignment.input_shards(request.input_txs, input_shards_scratch_);
    l2s_.score_all(request.timings, input_shards_scratch_, l2s_scratch_);
    for (std::uint32_t j = 0; j < k; ++j) {
      last_scores_[j] -= config_.l2s_weight * l2s_scratch_[j];
    }
  }

  // Step 4: argmax of temporal fitness. Ties (typically all-zero coinbase
  // scores without timing data) go to the smaller shard, keeping startup
  // placement balanced; final tie on the lower shard id for determinism.
  if (config_.expected_txs == 0 && assignment.all_active()) {
    // No capacity cap (full OptChain): every shard is eligible, so the loop
    // reduces to a running (score, size) argmax whose common case — a score
    // strictly below the incumbent, true for the ~k-|support| zero entries
    // of a sparse T2S vector — is a single compare, no size loads.
    placement::ShardId best = 0;
    double best_score = last_scores_[0];
    std::uint64_t best_size = assignment.size_of(0);
    for (std::uint32_t j = 1; j < k; ++j) {
      const double score = last_scores_[j];
      if (score < best_score) continue;
      const std::uint64_t size = assignment.size_of(j);
      if (score > best_score || size < best_size) {
        best = j;
        best_score = score;
        best_size = size;
      }
    }
    return best;
  }

  // Capacity cap (1 + ε)·⌊n/k⌋ (T2S-based variant): full shards are
  // ineligible. Shard churn routes through here too — retired shards are
  // masked, the uncapped fast loop above being reserved for the all-active
  // common case.
  const std::uint64_t cap =
      config_.expected_txs == 0
          ? std::numeric_limits<std::uint64_t>::max()
          : static_cast<std::uint64_t>(
                (1.0 + config_.epsilon) *
                static_cast<double>(config_.expected_txs / k));
  placement::ShardId best = placement::kUnplaced;
  for (std::uint32_t j = 0; j < k; ++j) {
    if (!assignment.is_active(j)) continue;
    if (assignment.size_of(j) >= cap) continue;
    if (best == placement::kUnplaced ||
        last_scores_[j] > last_scores_[best] ||
        (last_scores_[j] == last_scores_[best] &&
         assignment.size_of(j) < assignment.size_of(best))) {
      best = j;
    }
  }
  return best == placement::kUnplaced ? assignment.least_loaded() : best;
}

void OptChainPlacer::notify_placed(const placement::PlacementRequest& request,
                                   placement::ShardId shard) {
  // Step 5: fix u's own mass into its shard.
  scorer_.commit(request.index, shard);
}

}  // namespace optchain::core

#include "core/optchain_placer.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace optchain::core {

OptChainPlacer::OptChainPlacer(
    const graph::TanDag& dag, OptChainConfig config, std::string_view label,
    std::function<std::uint32_t(tx::TxIndex)> declared_outputs)
    : dag_(dag),
      config_(config),
      label_(label),
      scorer_(config.t2s, std::move(declared_outputs)),
      l2s_(config.l2s) {
  OPTCHAIN_EXPECTS(config_.l2s_weight >= 0.0);
}

placement::ShardId OptChainPlacer::choose(
    const placement::PlacementRequest& request,
    const placement::ShardAssignment& assignment) {
  OPTCHAIN_EXPECTS(request.index < dag_.num_nodes());

  // Step 1-2: normalized T2S scores (all-zero for coinbase), computed into
  // the reused member buffer.
  scorer_.score(dag_, request.index, assignment, last_scores_);
  return select(request, assignment);
}

placement::ShardId OptChainPlacer::select(
    const placement::PlacementRequest& request,
    const placement::ShardAssignment& assignment) {
  const std::uint32_t k = assignment.k();

  // Step 3: subtract the weighted L2S expectation when timing data exists.
  if (!request.timings.empty() && config_.l2s_weight > 0.0) {
    OPTCHAIN_EXPECTS(request.timings.size() == k);
    assignment.input_shards(request.input_txs, input_shards_scratch_);
    l2s_.score_all(request.timings, input_shards_scratch_, l2s_scratch_);
    for (std::uint32_t j = 0; j < k; ++j) {
      last_scores_[j] -= config_.l2s_weight * l2s_scratch_[j];
    }
  }

  // Step 4: argmax of temporal fitness. Ties (typically all-zero coinbase
  // scores without timing data) go to the smaller shard, keeping startup
  // placement balanced; final tie on the lower shard id for determinism.
  if (config_.expected_txs == 0 && assignment.all_active()) {
    // No capacity cap (full OptChain). First a flat max reduction over the
    // dense score vector — no size loads, no data-dependent branches, so
    // the compiler can vectorize it — then the (smaller size, lower id)
    // tie-break touches only the max-score shards (usually one).
    double best_score = last_scores_[0];
    for (std::uint32_t j = 1; j < k; ++j) {
      best_score = std::max(best_score, last_scores_[j]);
    }
    placement::ShardId best = 0;
    std::uint64_t best_size = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t j = 0; j < k; ++j) {
      if (last_scores_[j] != best_score) continue;
      const std::uint64_t size = assignment.size_of(j);
      if (size < best_size) {
        best = j;
        best_size = size;
      }
    }
    return best;
  }

  // Capacity cap (1 + ε)·⌊n/k⌋ (T2S-based variant): full shards are
  // ineligible. Shard churn routes through here too — retired shards are
  // masked, the uncapped fast loop above being reserved for the all-active
  // common case.
  const std::uint64_t cap =
      config_.expected_txs == 0
          ? std::numeric_limits<std::uint64_t>::max()
          : static_cast<std::uint64_t>(
                (1.0 + config_.epsilon) *
                static_cast<double>(config_.expected_txs / k));
  placement::ShardId best = placement::kUnplaced;
  for (std::uint32_t j = 0; j < k; ++j) {
    if (!assignment.is_active(j)) continue;
    if (assignment.size_of(j) >= cap) continue;
    if (best == placement::kUnplaced ||
        last_scores_[j] > last_scores_[best] ||
        (last_scores_[j] == last_scores_[best] &&
         assignment.size_of(j) < assignment.size_of(best))) {
      best = j;
    }
  }
  return best == placement::kUnplaced ? assignment.least_loaded() : best;
}

void OptChainPlacer::notify_placed(const placement::PlacementRequest& request,
                                   placement::ShardId shard) {
  // Step 5: fix u's own mass into its shard.
  scorer_.commit(request.index, shard);
}

std::unique_ptr<BatchScorable::Scratch> OptChainPlacer::make_scratch() const {
  return std::make_unique<BatchScratch>();
}

void OptChainPlacer::gather(std::span<const tx::TxIndex> parents,
                            std::span<const double> divisors, std::uint32_t k,
                            Scratch& scratch,
                            std::vector<ScoreEntry>& merged) const {
  scorer_.gather(parents, divisors, k,
                 static_cast<BatchScratch&>(scratch).scratch, merged);
}

placement::ShardId OptChainPlacer::choose_gathered(
    const placement::PlacementRequest& request,
    std::span<const ScoreEntry> merged,
    const placement::ShardAssignment& assignment) {
  // Steps 2-4 with step 1 already done by gather(): normalize by the live
  // shard sizes, then run the exact choose() selection.
  scorer_.normalize(merged, assignment, last_scores_);
  return select(request, assignment);
}

void OptChainPlacer::commit_gathered(const placement::PlacementRequest& request,
                                     std::span<const ScoreEntry> merged,
                                     placement::ShardId shard) {
  // Steps 1-and-5 storage in one shot: the gathered vector is appended with
  // the α self-mass folded in (no slack-slot round trip).
  scorer_.adopt_committed(request.index, merged, shard);
}

}  // namespace optchain::core

// OptChain transaction placement — paper Algorithm 1.
//
// For an arriving transaction u:
//   1. p'(u) = (1 − α) Σ_{v ∈ Nin(u)} p'(v)/|Nout(v)|   (T2sScorer)
//   2. p(u)[i] = p'(u)[i] / |S_i|
//   3. E(j)   = expected confirmation latency of placing u into shard j
//               (L2sEstimator; skipped when no timing data is available)
//   4. place u into argmax_j ( p(u)[j] − l2s_weight · E(j) )
//   5. p'(u)[S(u)] += α
//
// The paper's "T2S-based" baseline (Tables I-II) is this placer with
// l2s_weight = 0 and a Greedy-style capacity cap (ε = 0.1); full OptChain
// (§V) uses l2s_weight = 0.01 and no cap — temporal balance comes from the
// L2S term instead.
//
// The placer also implements core::BatchScorable: steps 1 (gather) and 2-5
// (normalize + argmax + α-commit) are exposed separately so the micro-
// batched front-end can run step 1 concurrently for independent
// transactions while replaying 2-5 sequentially in arrival order —
// bit-identical to the tx-at-a-time choose()/notify_placed() path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/batch_scorer.hpp"
#include "core/t2s_scorer.hpp"
#include "graph/dag.hpp"
#include "latency/l2s_model.hpp"
#include "placement/placer.hpp"

namespace optchain::core {

struct OptChainConfig {
  T2sConfig t2s;
  latency::L2sConfig l2s;
  /// Weight of the L2S term in the temporal fitness (paper: 0.01). Ignored
  /// when a request carries no timing data.
  double l2s_weight = 0.01;
  /// Optional capacity cap (1 + ε)·⌊n/k⌋, used by the T2S-based variant.
  /// Disabled when expected_txs == 0.
  std::uint64_t expected_txs = 0;
  double epsilon = 0.1;
};

class OptChainPlacer final : public placement::Placer, public BatchScorable {
 public:
  /// `dag` must outlive the placer and receive each transaction (via
  /// TanDag::add_node / workload::TanBuilder) *before* choose() is called
  /// for it. `label` customizes name() so the T2S-based variant can be
  /// reported separately.
  OptChainPlacer(const graph::TanDag& dag, OptChainConfig config = {},
                 std::string_view label = "OptChain",
                 std::function<std::uint32_t(tx::TxIndex)> declared_outputs =
                     nullptr);

  placement::ShardId choose(const placement::PlacementRequest& request,
                            const placement::ShardAssignment& assignment)
      override;

  void notify_placed(const placement::PlacementRequest& request,
                     placement::ShardId shard) override;

  /// Pre-sizes the T2S score store for the expected stream length.
  void reserve(std::uint64_t expected_txs) override {
    scorer_.reserve(expected_txs);
  }

  std::string_view name() const noexcept override { return label_; }

  // ----- BatchScorable ----------------------------------------------------

  std::unique_ptr<Scratch> make_scratch() const override;

  double parent_divisor(tx::TxIndex parent,
                        std::uint32_t spenders) const override {
    return scorer_.parent_divisor(parent, spenders);
  }

  void gather(std::span<const tx::TxIndex> parents,
              std::span<const double> divisors, std::uint32_t k,
              Scratch& scratch,
              std::vector<ScoreEntry>& merged) const override;

  placement::ShardId choose_gathered(
      const placement::PlacementRequest& request,
      std::span<const ScoreEntry> merged,
      const placement::ShardAssignment& assignment) override;

  void commit_gathered(const placement::PlacementRequest& request,
                       std::span<const ScoreEntry> merged,
                       placement::ShardId shard) override;

  // ------------------------------------------------------------------------

  const T2sScorer& scorer() const noexcept { return scorer_; }

  /// Temporal fitness scores computed by the last choose() call (debugging /
  /// example output).
  std::span<const double> last_scores() const noexcept { return last_scores_; }

 private:
  struct BatchScratch final : Scratch {
    ScoreScratch scratch;
  };

  /// Steps 3-4 over the scores already in last_scores_: L2S subtraction
  /// (when timing data exists) and the tie-breaking argmax.
  placement::ShardId select(const placement::PlacementRequest& request,
                            const placement::ShardAssignment& assignment);

  const graph::TanDag& dag_;
  OptChainConfig config_;
  std::string_view label_;
  T2sScorer scorer_;
  latency::L2sEstimator l2s_;
  std::vector<double> last_scores_;
  // Scratch reused across choose() calls (allocation-free steady state).
  std::vector<placement::ShardId> input_shards_scratch_;
  std::vector<double> l2s_scratch_;
};

}  // namespace optchain::core

// ScorePool — append-only paged slab storage for sparse T2S score vectors.
//
// The incremental T2S scheme (paper §IV.B) works because p'(v) is *final*
// once v has been placed, so the natural storage is one append per node. A
// vector<vector<ScoreEntry>> pays a heap allocation (plus malloc metadata
// and pointer-chasing) per node — ruinous at 10M nodes. The pool instead
// bump-allocates entries out of large contiguous pages and keeps one
// {page, offset, len} handle per node: appending is a memcpy into the
// current page, reading is a span, and steady-state growth performs one
// allocation per page (65k entries), not per node.
//
// One wrinkle: the scorer finalizes the *latest* node after placement by
// adding α to its own shard's entry, which may need to INSERT an entry. The
// pool offers two protocols:
//   append_node + add_to_last  — the tx-at-a-time path: the append reserves
//     one slack slot so the later α-commit can insert in place; the next
//     append reclaims the slot eagerly if it went unused (the bump pointer
//     never counted it, so an uncommitted node — preview/diverted paths —
//     wastes nothing once the stream moves on).
//   append_committed           — the batched path: the placement is already
//     known at append time, so the α entry is folded into the copy and no
//     slack slot is ever reserved.
// Slot accounting (used_slots / slot_capacity / wasted_slots / slab_bytes)
// makes the "net waste: zero" claim checkable by tests instead of folklore:
// used_slots() == total_entries() always holds, and permanent waste is
// bounded by one node run + slack per *closed* page (the tail gap when a
// node did not fit), never by per-node slack.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace optchain::core {

/// One sparse entry of a p' vector.
struct ScoreEntry {
  std::uint32_t shard;
  double value;
};

class ScorePool {
 public:
  static constexpr std::uint32_t kDefaultPageEntries = 1u << 16;

  explicit ScorePool(std::uint32_t page_entries = kDefaultPageEntries)
      : page_entries_(page_entries) {
    OPTCHAIN_EXPECTS(page_entries_ >= 2);
  }

  /// Pre-sizes the handle table (and the page directory) for an expected
  /// node count.
  void reserve(std::size_t nodes) {
    handles_.reserve(nodes);
    // ~entries-per-node is workload-dependent; reserving the directory is
    // cheap either way (one pointer per 65k entries).
    pages_.reserve(nodes / page_entries_ + 1);
  }

  std::size_t num_nodes() const noexcept { return handles_.size(); }
  std::size_t total_entries() const noexcept { return total_entries_; }

  std::span<const ScoreEntry> vector_of(std::uint32_t node) const noexcept {
    OPTCHAIN_EXPECTS(node < handles_.size());
    const Handle& handle = handles_[node];
    return {pages_[handle.page].get() + handle.offset, handle.len};
  }

  /// Issues a read-prefetch hint for `node`'s vector (no-op on toolchains
  /// without __builtin_prefetch). The gather kernel calls this one parent
  /// ahead so the page line is warm when the merge loop reaches it.
  void prefetch(std::uint32_t node) const noexcept {
    OPTCHAIN_EXPECTS(node < handles_.size());
#if defined(__GNUC__) || defined(__clang__)
    const Handle& handle = handles_[node];
    __builtin_prefetch(pages_[handle.page].get() + handle.offset, 0, 1);
#endif
  }

  /// Appends the next node's vector (entries sorted by shard id). Reserves
  /// one extra slot so a following add_to_last() can insert in place.
  void append_node(std::span<const ScoreEntry> entries) {
    const auto len = static_cast<std::uint32_t>(entries.size());
    ScoreEntry* slot = allocate(len + 1);
    std::copy(entries.begin(), entries.end(), slot);
    handles_.push_back(Handle{static_cast<std::uint32_t>(pages_.size() - 1),
                             static_cast<std::uint32_t>(slot - current_page()),
                             len});
    total_entries_ += len;
  }

  /// Appends the next node's *final* vector in one shot: `entries` (sorted
  /// by shard id) with `value` merged into `shard` — added to an existing
  /// entry or inserted in shard order. Equivalent to append_node() followed
  /// by add_to_last(), but the placement is known up front so no slack slot
  /// is reserved: the batched commit path never carries reserved-but-unused
  /// bytes.
  void append_committed(std::span<const ScoreEntry> entries,
                        std::uint32_t shard, double value) {
    const auto len = static_cast<std::uint32_t>(entries.size());
    bool present = false;
    for (const ScoreEntry& entry : entries) {
      if (entry.shard == shard) {
        present = true;
        break;
      }
    }
    const std::uint32_t out_len = len + (present ? 0u : 1u);
    ScoreEntry* slot = allocate_exact(out_len);
    ScoreEntry* out = slot;
    bool inserted = present;
    for (const ScoreEntry& entry : entries) {
      if (!inserted && entry.shard > shard) {
        *out++ = {shard, value};
        inserted = true;
      }
      *out++ = entry;
      if (entry.shard == shard) out[-1].value += value;
    }
    if (!inserted) *out++ = {shard, value};
    OPTCHAIN_ASSERT(out == slot + out_len);
    handles_.push_back(Handle{static_cast<std::uint32_t>(pages_.size() - 1),
                             static_cast<std::uint32_t>(slot - current_page()),
                             out_len});
    total_entries_ += out_len;
  }

  /// Adds `value` to the last appended node's entry for `shard`, inserting
  /// (sorted) into the reserved slack slot if the shard is absent. Only the
  /// most recent node is mutable — everything older is final by the T2S
  /// invariant.
  void add_to_last(std::uint32_t node, std::uint32_t shard, double value) {
    OPTCHAIN_EXPECTS(!handles_.empty() && node == handles_.size() - 1);
    Handle& handle = handles_.back();
    ScoreEntry* begin = pages_[handle.page].get() + handle.offset;
    ScoreEntry* end = begin + handle.len;
    ScoreEntry* it = begin;
    while (it != end && it->shard < shard) ++it;
    if (it != end && it->shard == shard) {
      it->value += value;
      return;
    }
    // Insert into the slack slot, keeping shard order. The slot is only
    // valid while this node is the last allocation, which add_to_last's
    // precondition guarantees.
    OPTCHAIN_ASSERT(slack_available_);
    for (ScoreEntry* p = end; p != it; --p) *p = *(p - 1);
    *it = {shard, value};
    ++handle.len;
    ++total_entries_;
    slack_available_ = false;
    ++page_fill_;  // the slack slot became a real entry
  }

  // ----- slot accounting (memory telemetry; asserted by the pool tests) ---

  /// Slab pages allocated so far.
  std::size_t num_pages() const noexcept { return pages_.size(); }

  /// Entry slots holding live data across all pages. Invariant:
  /// used_slots() == total_entries() — pending slack slots are never counted
  /// as used (they are reclaimed eagerly by the next append unless the
  /// α-commit claimed them).
  std::size_t used_slots() const noexcept { return closed_fill_ + page_fill_; }

  /// Entry slots allocated across all pages (the slab's capacity).
  std::size_t slot_capacity() const noexcept {
    return closed_slots_ + page_capacity_back_;
  }

  /// Slots that can never be used again: the tail gaps of *closed* pages
  /// (a node run that did not fit opened a fresh page). Bounded by
  /// (max node len + 1) per closed page; per-node slack never shows up here.
  std::size_t wasted_slots() const noexcept {
    return closed_slots_ - closed_fill_;
  }

  /// Heap bytes held by the slab pages.
  std::size_t slab_bytes() const noexcept {
    return slot_capacity() * sizeof(ScoreEntry);
  }

 private:
  struct Handle {
    std::uint32_t page;
    std::uint32_t offset;
    std::uint32_t len;
  };

  ScoreEntry* current_page() const noexcept { return pages_.back().get(); }

  void open_page(std::uint32_t min_entries) {
    closed_slots_ += page_capacity_back_;
    closed_fill_ += page_fill_;
    const std::uint32_t page_size = std::max(page_entries_, min_entries);
    pages_.push_back(std::make_unique<ScoreEntry[]>(page_size));
    page_capacity_back_ = page_size;
    page_fill_ = 0;
  }

  /// Bump-allocates `count` contiguous entries, reclaiming the previous
  /// append's unused slack slot and opening a new page when the current one
  /// cannot fit the run (oversized runs get a dedicated page). The last of
  /// the `count` slots is the new node's slack: it is not counted as filled —
  /// the next allocation starts on top of it unless add_to_last claimed it.
  ScoreEntry* allocate(std::uint32_t count) {
    slack_available_ = true;
    if (pages_.empty() || page_fill_ + count > page_capacity_back_) {
      open_page(count);
    }
    ScoreEntry* slot = current_page() + page_fill_;
    page_fill_ += count - 1;
    return slot;
  }

  /// Bump-allocates exactly `count` entries with no slack slot (the
  /// append_committed path: the α entry is part of the run).
  ScoreEntry* allocate_exact(std::uint32_t count) {
    slack_available_ = false;
    if (pages_.empty() || page_fill_ + count > page_capacity_back_) {
      open_page(count);
    }
    ScoreEntry* slot = current_page() + page_fill_;
    page_fill_ += count;
    return slot;
  }

  std::uint32_t page_entries_;
  std::vector<std::unique_ptr<ScoreEntry[]>> pages_;
  std::uint32_t page_fill_ = 0;           // filled entries in the last page
  std::uint32_t page_capacity_back_ = 0;  // capacity of the last page
  bool slack_available_ = false;
  std::size_t closed_fill_ = 0;   // Σ page_fill_ over closed pages
  std::size_t closed_slots_ = 0;  // Σ capacity over closed pages
  std::vector<Handle> handles_;
  std::size_t total_entries_ = 0;
};

}  // namespace optchain::core

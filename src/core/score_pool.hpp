// ScorePool — append-only paged slab storage for sparse T2S score vectors.
//
// The incremental T2S scheme (paper §IV.B) works because p'(v) is *final*
// once v has been placed, so the natural storage is one append per node. A
// vector<vector<ScoreEntry>> pays a heap allocation (plus malloc metadata
// and pointer-chasing) per node — ruinous at 10M nodes. The pool instead
// bump-allocates entries out of large contiguous pages and keeps one
// {page, offset, len} handle per node: appending is a memcpy into the
// current page, reading is a span, and steady-state growth performs one
// allocation per page (65k entries), not per node.
//
// One wrinkle: the scorer finalizes the *latest* node after placement by
// adding α to its own shard's entry, which may need to INSERT an entry. The
// pool therefore reserves one slack slot after every append; commit_to_last
// can grow the last vector in place, and the next append reclaims the slot
// if it went unused (the bump pointer is rewound). Net waste: zero.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace optchain::core {

/// One sparse entry of a p' vector.
struct ScoreEntry {
  std::uint32_t shard;
  double value;
};

class ScorePool {
 public:
  static constexpr std::uint32_t kDefaultPageEntries = 1u << 16;

  explicit ScorePool(std::uint32_t page_entries = kDefaultPageEntries)
      : page_entries_(page_entries) {
    OPTCHAIN_EXPECTS(page_entries_ >= 2);
  }

  /// Pre-sizes the handle table (and the page directory) for an expected
  /// node count.
  void reserve(std::size_t nodes) {
    handles_.reserve(nodes);
    // ~entries-per-node is workload-dependent; reserving the directory is
    // cheap either way (one pointer per 65k entries).
    pages_.reserve(nodes / page_entries_ + 1);
  }

  std::size_t num_nodes() const noexcept { return handles_.size(); }
  std::size_t total_entries() const noexcept { return total_entries_; }

  std::span<const ScoreEntry> vector_of(std::uint32_t node) const noexcept {
    OPTCHAIN_EXPECTS(node < handles_.size());
    const Handle& handle = handles_[node];
    return {pages_[handle.page].get() + handle.offset, handle.len};
  }

  /// Appends the next node's vector (entries sorted by shard id). Reserves
  /// one extra slot so a following add_to_last() can insert in place.
  void append_node(std::span<const ScoreEntry> entries) {
    const auto len = static_cast<std::uint32_t>(entries.size());
    ScoreEntry* slot = allocate(len + 1);
    std::copy(entries.begin(), entries.end(), slot);
    handles_.push_back(Handle{static_cast<std::uint32_t>(pages_.size() - 1),
                             static_cast<std::uint32_t>(slot - current_page()),
                             len});
    total_entries_ += len;
  }

  /// Adds `value` to the last appended node's entry for `shard`, inserting
  /// (sorted) into the reserved slack slot if the shard is absent. Only the
  /// most recent node is mutable — everything older is final by the T2S
  /// invariant.
  void add_to_last(std::uint32_t node, std::uint32_t shard, double value) {
    OPTCHAIN_EXPECTS(!handles_.empty() && node == handles_.size() - 1);
    Handle& handle = handles_.back();
    ScoreEntry* begin = pages_[handle.page].get() + handle.offset;
    ScoreEntry* end = begin + handle.len;
    ScoreEntry* it = begin;
    while (it != end && it->shard < shard) ++it;
    if (it != end && it->shard == shard) {
      it->value += value;
      return;
    }
    // Insert into the slack slot, keeping shard order. The slot is only
    // valid while this node is the last allocation, which add_to_last's
    // precondition guarantees.
    OPTCHAIN_ASSERT(slack_available_);
    for (ScoreEntry* p = end; p != it; --p) *p = *(p - 1);
    *it = {shard, value};
    ++handle.len;
    ++total_entries_;
    slack_available_ = false;
    ++page_fill_;  // the slack slot became a real entry
  }

 private:
  struct Handle {
    std::uint32_t page;
    std::uint32_t offset;
    std::uint32_t len;
  };

  ScoreEntry* current_page() const noexcept { return pages_.back().get(); }

  /// Bump-allocates `count` contiguous entries, reclaiming the previous
  /// append's unused slack slot and opening a new page when the current one
  /// cannot fit the run (oversized runs get a dedicated page).
  ScoreEntry* allocate(std::uint32_t count) {
    slack_available_ = true;
    if (pages_.empty() || page_fill_ + count > page_capacity_back_) {
      const std::uint32_t page_size = std::max(page_entries_, count);
      pages_.push_back(std::make_unique<ScoreEntry[]>(page_size));
      page_capacity_back_ = page_size;
      page_fill_ = 0;
    }
    ScoreEntry* slot = current_page() + page_fill_;
    page_fill_ += count - 1;  // the +1 slack slot is not counted as filled:
                              // the next allocate() starts on top of it
                              // unless add_to_last claimed it
    return slot;
  }

  std::uint32_t page_entries_;
  std::vector<std::unique_ptr<ScoreEntry[]>> pages_;
  std::uint32_t page_fill_ = 0;           // filled entries in the last page
  std::uint32_t page_capacity_back_ = 0;  // capacity of the last page
  bool slack_available_ = false;
  std::vector<Handle> handles_;
  std::size_t total_entries_ = 0;
};

}  // namespace optchain::core

#include "core/t2s_scorer.hpp"

#include <algorithm>
#include <cmath>

namespace optchain::core {

T2sScorer::T2sScorer(T2sConfig config,
                     std::function<std::uint32_t(tx::TxIndex)> declared_outputs)
    : config_(config), declared_outputs_(std::move(declared_outputs)) {
  OPTCHAIN_EXPECTS(config_.alpha > 0.0 && config_.alpha <= 1.0);
  OPTCHAIN_EXPECTS(config_.prune_threshold >= 0.0);
  if (config_.divisor == DivisorPolicy::kDeclaredOutputs) {
    OPTCHAIN_EXPECTS(declared_outputs_ != nullptr);
  }
}

void T2sScorer::gather(std::span<const tx::TxIndex> parents,
                       std::span<const double> divisors, std::uint32_t k,
                       ScoreScratch& scratch,
                       std::vector<ScoreEntry>& merged) const {
  OPTCHAIN_EXPECTS(parents.size() == divisors.size());
  merged.clear();

  // Sizing pass doubles as a prefetch pass: each parent's handle is touched
  // one iteration before its entries are read below, so the page lines are
  // (likely) warm by the time the merge loop dereferences them.
  std::size_t total_len = 0;
  for (std::size_t i = 0; i < parents.size(); ++i) {
    pool_.prefetch(parents[i]);
    total_len += pool_.vector_of(parents[i]).size();
  }
  if (total_len == 0) return;

  if (total_len > k) {
    // Dense scatter: with more gathered entries than shards, summing into
    // k epoch-tagged bins beats sorting the entry list — O(total + k') with
    // k' = touched shards, no comparison sort over total entries. Per-shard
    // partial sums accumulate in parent push order, matching the stable
    // order of the sparse branch.
    if (scratch.bin_epoch.size() < k) {
      scratch.bin_epoch.resize(k, 0);
      scratch.bins.resize(k, 0.0);
    }
    std::uint32_t generation = ++scratch.generation;
    if (generation == 0) {  // tag wrap: invalidate all bins once per 2^32
      std::fill(scratch.bin_epoch.begin(), scratch.bin_epoch.end(), 0u);
      generation = scratch.generation = 1;
    }
    scratch.touched.clear();
    for (std::size_t i = 0; i < parents.size(); ++i) {
      const double divisor = divisors[i];
      OPTCHAIN_ASSERT(divisor >= 1.0);
      for (const ScoreEntry& entry : pool_.vector_of(parents[i])) {
        const double weight = entry.value / divisor;
        OPTCHAIN_ASSERT(entry.shard < k);
        if (scratch.bin_epoch[entry.shard] == generation) {
          scratch.bins[entry.shard] += weight;
        } else {
          scratch.bin_epoch[entry.shard] = generation;
          scratch.bins[entry.shard] = weight;
          scratch.touched.push_back(entry.shard);
        }
      }
    }
    std::sort(scratch.touched.begin(), scratch.touched.end());
    for (const std::uint32_t shard : scratch.touched) {
      merged.push_back({shard, scratch.bins[shard]});
    }
  } else {
    // Sparse sort-merge: collect entries, sort by shard id, fold adjacent
    // runs. For total_len ≤ k the entry list is tiny and the sort is an
    // insertion sort in practice.
    scratch.accumulator.clear();
    for (std::size_t i = 0; i < parents.size(); ++i) {
      const double divisor = divisors[i];
      OPTCHAIN_ASSERT(divisor >= 1.0);
      for (const ScoreEntry& entry : pool_.vector_of(parents[i])) {
        scratch.accumulator.push_back({entry.shard, entry.value / divisor});
      }
    }
    std::sort(scratch.accumulator.begin(), scratch.accumulator.end(),
              [](const ScoreEntry& a, const ScoreEntry& b) {
                return a.shard < b.shard;
              });
    for (const ScoreEntry& entry : scratch.accumulator) {
      if (!merged.empty() && merged.back().shard == entry.shard) {
        merged.back().value += entry.value;
      } else {
        merged.push_back(entry);
      }
    }
  }

  // Shared tail: damp by (1 − α), then prune negligible mass to bound
  // per-node memory.
  const double scale = 1.0 - config_.alpha;
  double total = 0.0;
  for (ScoreEntry& entry : merged) {
    entry.value *= scale;
    total += entry.value;
  }
  if (config_.prune_threshold > 0.0 && total > 0.0) {
    const double cutoff = total * config_.prune_threshold;
    std::erase_if(merged,
                  [cutoff](const ScoreEntry& e) { return e.value < cutoff; });
  }
}

void T2sScorer::normalize(std::span<const ScoreEntry> merged,
                          const placement::ShardAssignment& assignment,
                          std::vector<double>& normalized) const {
  normalized.assign(assignment.k(), 0.0);
  for (const ScoreEntry& entry : merged) {
    const std::uint64_t shard_size = assignment.size_of(entry.shard);
    if (shard_size > 0) {
      normalized[entry.shard] =
          entry.value / static_cast<double>(shard_size);
    }
  }
}

void T2sScorer::score(const graph::TanDag& dag, tx::TxIndex u,
                      const placement::ShardAssignment& assignment,
                      std::vector<double>& normalized) {
  OPTCHAIN_EXPECTS(u == pool_.num_nodes());  // dense arrival order
  OPTCHAIN_EXPECTS(u < dag.num_nodes());

  const std::span<const graph::NodeId> parents = dag.inputs(u);
  divisors_.clear();
  for (const graph::NodeId v : parents) {
    divisors_.push_back(parent_divisor(v, dag.spender_count(v)));
  }
  gather(parents, divisors_, assignment.k(), scratch_, merged_);
  normalize(merged_, assignment, normalized);
  pool_.append_node(merged_);
}

void T2sScorer::commit(tx::TxIndex u, std::uint32_t shard) {
  pool_.add_to_last(u, shard, config_.alpha);
}

void T2sScorer::adopt_committed(tx::TxIndex u,
                                std::span<const ScoreEntry> merged,
                                std::uint32_t shard) {
  OPTCHAIN_EXPECTS(u == pool_.num_nodes());  // dense arrival order
  pool_.append_committed(merged, shard, config_.alpha);
}

std::vector<std::vector<double>> recompute_all_scores_dense(
    const graph::TanDag& dag, const placement::ShardAssignment& assignment,
    const T2sConfig& config,
    const std::function<std::uint32_t(tx::TxIndex)>& declared_outputs) {
  const std::size_t n = dag.num_nodes();
  const std::uint32_t k = assignment.k();
  std::vector<std::vector<double>> scores(n, std::vector<double>(k, 0.0));
  // Replay arrival order with running spender counts, so divisors match what
  // the online scorer observed at each step.
  std::vector<std::uint32_t> running_spenders(n, 0);
  for (tx::TxIndex u = 0; u < n; ++u) {
    for (const graph::NodeId v : dag.inputs(u)) ++running_spenders[v];
    for (const graph::NodeId v : dag.inputs(u)) {
      const double divisor =
          config.divisor == DivisorPolicy::kCurrentSpenders
              ? static_cast<double>(running_spenders[v])
              : static_cast<double>(
                    std::max<std::uint32_t>(1, declared_outputs(v)));
      for (std::uint32_t i = 0; i < k; ++i) {
        scores[u][i] += (1.0 - config.alpha) * scores[v][i] / divisor;
      }
    }
    if (u < assignment.total()) {
      scores[u][assignment.shard_of(u)] += config.alpha;
    }
  }
  return scores;
}

}  // namespace optchain::core

#include "core/t2s_scorer.hpp"

#include <algorithm>
#include <cmath>

namespace optchain::core {

T2sScorer::T2sScorer(T2sConfig config,
                     std::function<std::uint32_t(tx::TxIndex)> declared_outputs)
    : config_(config), declared_outputs_(std::move(declared_outputs)) {
  OPTCHAIN_EXPECTS(config_.alpha > 0.0 && config_.alpha <= 1.0);
  OPTCHAIN_EXPECTS(config_.prune_threshold >= 0.0);
  if (config_.divisor == DivisorPolicy::kDeclaredOutputs) {
    OPTCHAIN_EXPECTS(declared_outputs_ != nullptr);
  }
}

std::vector<double> T2sScorer::score(
    const graph::TanDag& dag, tx::TxIndex u,
    const placement::ShardAssignment& assignment) {
  OPTCHAIN_EXPECTS(u == vectors_.size());  // dense arrival order
  OPTCHAIN_EXPECTS(u < dag.num_nodes());

  const std::uint32_t k = assignment.k();
  // Accumulate (1 − α) Σ p'(v)/divisor(v) sparsely: collect entries, then
  // merge by shard id.
  accumulator_.clear();
  for (const graph::NodeId v : dag.inputs(u)) {
    const double divisor =
        config_.divisor == DivisorPolicy::kCurrentSpenders
            ? static_cast<double>(dag.spender_count(v))
            : static_cast<double>(std::max<std::uint32_t>(
                  1, declared_outputs_(v)));
    OPTCHAIN_ASSERT(divisor >= 1.0);  // u itself spends v
    for (const ScoreEntry& entry : vectors_[v]) {
      accumulator_.push_back({entry.shard, entry.value / divisor});
    }
  }

  std::vector<ScoreEntry> merged;
  if (!accumulator_.empty()) {
    std::sort(accumulator_.begin(), accumulator_.end(),
              [](const ScoreEntry& a, const ScoreEntry& b) {
                return a.shard < b.shard;
              });
    double total = 0.0;
    merged.reserve(accumulator_.size());
    for (const ScoreEntry& entry : accumulator_) {
      if (!merged.empty() && merged.back().shard == entry.shard) {
        merged.back().value += entry.value;
      } else {
        merged.push_back(entry);
      }
    }
    const double scale = 1.0 - config_.alpha;
    for (ScoreEntry& entry : merged) {
      entry.value *= scale;
      total += entry.value;
    }
    // Prune negligible mass to bound per-node memory.
    if (config_.prune_threshold > 0.0 && total > 0.0) {
      const double cutoff = total * config_.prune_threshold;
      std::erase_if(merged,
                    [cutoff](const ScoreEntry& e) { return e.value < cutoff; });
    }
  }

  std::vector<double> normalized(k, 0.0);
  for (const ScoreEntry& entry : merged) {
    const std::uint64_t shard_size = assignment.size_of(entry.shard);
    if (shard_size > 0) {
      normalized[entry.shard] =
          entry.value / static_cast<double>(shard_size);
    }
  }
  vectors_.push_back(std::move(merged));
  return normalized;
}

void T2sScorer::commit(tx::TxIndex u, std::uint32_t shard) {
  OPTCHAIN_EXPECTS(u < vectors_.size());
  auto& vec = vectors_[u];
  const auto it = std::find_if(
      vec.begin(), vec.end(),
      [shard](const ScoreEntry& e) { return e.shard == shard; });
  if (it != vec.end()) {
    it->value += config_.alpha;
  } else {
    // Keep the vector sorted by shard id for cheap merging downstream.
    const auto pos = std::find_if(
        vec.begin(), vec.end(),
        [shard](const ScoreEntry& e) { return e.shard > shard; });
    vec.insert(pos, {shard, config_.alpha});
  }
}

std::size_t T2sScorer::total_entries() const noexcept {
  std::size_t total = 0;
  for (const auto& vec : vectors_) total += vec.size();
  return total;
}

std::vector<std::vector<double>> recompute_all_scores_dense(
    const graph::TanDag& dag, const placement::ShardAssignment& assignment,
    const T2sConfig& config,
    const std::function<std::uint32_t(tx::TxIndex)>& declared_outputs) {
  const std::size_t n = dag.num_nodes();
  const std::uint32_t k = assignment.k();
  std::vector<std::vector<double>> scores(n, std::vector<double>(k, 0.0));
  // Replay arrival order with running spender counts, so divisors match what
  // the online scorer observed at each step.
  std::vector<std::uint32_t> running_spenders(n, 0);
  for (tx::TxIndex u = 0; u < n; ++u) {
    for (const graph::NodeId v : dag.inputs(u)) ++running_spenders[v];
    for (const graph::NodeId v : dag.inputs(u)) {
      const double divisor =
          config.divisor == DivisorPolicy::kCurrentSpenders
              ? static_cast<double>(running_spenders[v])
              : static_cast<double>(
                    std::max<std::uint32_t>(1, declared_outputs(v)));
      for (std::uint32_t i = 0; i < k; ++i) {
        scores[u][i] += (1.0 - config.alpha) * scores[v][i] / divisor;
      }
    }
    if (u < assignment.total()) {
      scores[u][assignment.shard_of(u)] += config.alpha;
    }
  }
  return scores;
}

}  // namespace optchain::core

#include "core/t2s_scorer.hpp"

#include <algorithm>
#include <cmath>

namespace optchain::core {

T2sScorer::T2sScorer(T2sConfig config,
                     std::function<std::uint32_t(tx::TxIndex)> declared_outputs)
    : config_(config), declared_outputs_(std::move(declared_outputs)) {
  OPTCHAIN_EXPECTS(config_.alpha > 0.0 && config_.alpha <= 1.0);
  OPTCHAIN_EXPECTS(config_.prune_threshold >= 0.0);
  if (config_.divisor == DivisorPolicy::kDeclaredOutputs) {
    OPTCHAIN_EXPECTS(declared_outputs_ != nullptr);
  }
}

void T2sScorer::score(const graph::TanDag& dag, tx::TxIndex u,
                      const placement::ShardAssignment& assignment,
                      std::vector<double>& normalized) {
  OPTCHAIN_EXPECTS(u == pool_.num_nodes());  // dense arrival order
  OPTCHAIN_EXPECTS(u < dag.num_nodes());

  const std::uint32_t k = assignment.k();
  // Accumulate (1 − α) Σ p'(v)/divisor(v) sparsely: collect entries, then
  // merge by shard id. Both scratch buffers retain their capacity across
  // calls, so the steady-state loop is allocation-free.
  accumulator_.clear();
  for (const graph::NodeId v : dag.inputs(u)) {
    const double divisor =
        config_.divisor == DivisorPolicy::kCurrentSpenders
            ? static_cast<double>(dag.spender_count(v))
            : static_cast<double>(std::max<std::uint32_t>(
                  1, declared_outputs_(v)));
    OPTCHAIN_ASSERT(divisor >= 1.0);  // u itself spends v
    for (const ScoreEntry& entry : pool_.vector_of(v)) {
      accumulator_.push_back({entry.shard, entry.value / divisor});
    }
  }

  merged_.clear();
  if (!accumulator_.empty()) {
    std::sort(accumulator_.begin(), accumulator_.end(),
              [](const ScoreEntry& a, const ScoreEntry& b) {
                return a.shard < b.shard;
              });
    double total = 0.0;
    for (const ScoreEntry& entry : accumulator_) {
      if (!merged_.empty() && merged_.back().shard == entry.shard) {
        merged_.back().value += entry.value;
      } else {
        merged_.push_back(entry);
      }
    }
    const double scale = 1.0 - config_.alpha;
    for (ScoreEntry& entry : merged_) {
      entry.value *= scale;
      total += entry.value;
    }
    // Prune negligible mass to bound per-node memory.
    if (config_.prune_threshold > 0.0 && total > 0.0) {
      const double cutoff = total * config_.prune_threshold;
      std::erase_if(merged_,
                    [cutoff](const ScoreEntry& e) { return e.value < cutoff; });
    }
  }

  normalized.assign(k, 0.0);
  for (const ScoreEntry& entry : merged_) {
    const std::uint64_t shard_size = assignment.size_of(entry.shard);
    if (shard_size > 0) {
      normalized[entry.shard] =
          entry.value / static_cast<double>(shard_size);
    }
  }
  pool_.append_node(merged_);
}

void T2sScorer::commit(tx::TxIndex u, std::uint32_t shard) {
  pool_.add_to_last(u, shard, config_.alpha);
}

std::vector<std::vector<double>> recompute_all_scores_dense(
    const graph::TanDag& dag, const placement::ShardAssignment& assignment,
    const T2sConfig& config,
    const std::function<std::uint32_t(tx::TxIndex)>& declared_outputs) {
  const std::size_t n = dag.num_nodes();
  const std::uint32_t k = assignment.k();
  std::vector<std::vector<double>> scores(n, std::vector<double>(k, 0.0));
  // Replay arrival order with running spender counts, so divisors match what
  // the online scorer observed at each step.
  std::vector<std::uint32_t> running_spenders(n, 0);
  for (tx::TxIndex u = 0; u < n; ++u) {
    for (const graph::NodeId v : dag.inputs(u)) ++running_spenders[v];
    for (const graph::NodeId v : dag.inputs(u)) {
      const double divisor =
          config.divisor == DivisorPolicy::kCurrentSpenders
              ? static_cast<double>(running_spenders[v])
              : static_cast<double>(
                    std::max<std::uint32_t>(1, declared_outputs(v)));
      for (std::uint32_t i = 0; i < k; ++i) {
        scores[u][i] += (1.0 - config.alpha) * scores[v][i] / divisor;
      }
    }
    if (u < assignment.total()) {
      scores[u][assignment.shard_of(u)] += config.alpha;
    }
  }
  return scores;
}

}  // namespace optchain::core

// Transaction-to-Shard (T2S) scoring — paper §IV.B.
//
// Each placed transaction v carries an unnormalized fitness vector p'(v):
//
//   p'(u) = (1 − α) · Σ_{v ∈ Nin(u)} p'(v) / |Nout(v)|       (on arrival)
//   p'(u)[S(u)] += α                                          (after placement)
//
// The normalized T2S score of an arriving u against shard i is
// p(u)[i] = p'(u)[i] / |S_i|. The incremental scheme works because p'(v) is
// *final* once v has been placed (the shard-size normalization is applied at
// read time), turning the O(k(|V|+|E|)) full PageRank recomputation into
// O(k·|Nin(u)|) per arrival — the paper's key computational trick.
//
// p' vectors are stored sparsely (mass decays by (1 − α) per hop, so only a
// handful of shards carry non-negligible weight); entries below
// prune_threshold × total are dropped, bounding memory by a small constant
// per node in practice. Finality is also a storage gift: vectors live in an
// append-only paged slab (core::ScorePool) — one handle per node, one heap
// allocation per 65k entries — and score() runs entirely on reused scratch
// buffers, so the steady-state scoring loop allocates nothing.
//
// The gather/merge step is factored into a standalone kernel, gather(): it
// reads only *final* pool vectors plus caller-supplied divisors, so the
// batched front-end (api::BatchPlacementPipeline) can run it concurrently
// for transactions whose parents are all placed. Two merge strategies share
// the kernel: the historical sort-merge for small gathers, and a k-slot
// dense scatter (epoch-tagged bins, no sort over entries) once the gathered
// entry count exceeds k — per-shard partial sums accumulate in parent push
// order either way.
//
// |Nout(v)| — the out-neighborhood size of v — grows as later transactions
// spend v's outputs. The divisor policy selects the online reading:
//   kCurrentSpenders  — spenders observed so far, including u (paper-literal:
//                       the TaN in-degree of v at the time u arrives);
//   kDeclaredOutputs  — v's declared UTXO count (each output is spent at most
//                       once, so this upper-bounds the final |Nout(v)|).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "core/score_pool.hpp"
#include "graph/dag.hpp"
#include "placement/shard_assignment.hpp"

namespace optchain::core {

enum class DivisorPolicy : std::uint8_t {
  kCurrentSpenders,
  kDeclaredOutputs,
};

struct T2sConfig {
  double alpha = 0.5;  // paper's experiments use α = 0.5
  DivisorPolicy divisor = DivisorPolicy::kCurrentSpenders;
  /// Sparse entries below prune_threshold × (vector total) are dropped.
  double prune_threshold = 1e-7;
};

/// Reusable scratch state for the gather() kernel. One instance per scoring
/// thread — the scorer's own instance serves the sequential score() path;
/// the batched front-end allocates one per worker. Never share an instance
/// across concurrent gather() calls.
struct ScoreScratch {
  std::vector<ScoreEntry> accumulator;    ///< sparse path: gathered entries
  std::vector<double> bins;               ///< dense path: per-shard sums
  std::vector<std::uint32_t> bin_epoch;   ///< dense path: bin validity tags
  std::vector<std::uint32_t> touched;     ///< dense path: shards hit
  std::uint32_t generation = 0;           ///< current epoch tag
};

class T2sScorer {
 public:
  /// `declared_outputs(v)` is consulted only under kDeclaredOutputs; it must
  /// return v's output count (≥ 1).
  explicit T2sScorer(T2sConfig config = {},
                     std::function<std::uint32_t(tx::TxIndex)>
                         declared_outputs = nullptr);

  /// Computes p'(u) for the arriving node u (already inserted into `dag`,
  /// edges included) and caches it. Fills `normalized` with the dense T2S
  /// score vector p(u): p'(u)[i] / |S_i| (zero for empty shards). The output
  /// buffer is assign()ed, so a caller that reuses one across calls pays no
  /// allocation.
  void score(const graph::TanDag& dag, tx::TxIndex u,
             const placement::ShardAssignment& assignment,
             std::vector<double>& normalized);

  /// Convenience overload returning a fresh vector.
  std::vector<double> score(const graph::TanDag& dag, tx::TxIndex u,
                            const placement::ShardAssignment& assignment) {
    std::vector<double> normalized;
    score(dag, u, assignment, normalized);
    return normalized;
  }

  /// Finalizes u after placement into `shard`: p'(u)[shard] += α. Only valid
  /// for the most recently scored node (vectors are final after that).
  void commit(tx::TxIndex u, std::uint32_t shard);

  // ----- batch kernel (api::BatchPlacementPipeline) -----------------------

  /// The |Nout(v)| divisor for parent v under this scorer's policy, given
  /// v's observed spender count (including the arriving spender). Not
  /// thread-safe under kDeclaredOutputs (the closure may touch shared
  /// state) — call from the sequential prepare pass only.
  double parent_divisor(tx::TxIndex v, std::uint32_t spenders) const {
    return config_.divisor == DivisorPolicy::kCurrentSpenders
               ? static_cast<double>(spenders)
               : static_cast<double>(
                     std::max<std::uint32_t>(1, declared_outputs_(v)));
  }

  /// The pure gather/merge kernel: fills `merged` with the sorted, pruned
  /// sparse vector (1 − α) Σ_i p'(parents[i]) / divisors[i] — exactly the
  /// pre-commit p'(u) that score() would cache. Reads only final pool
  /// vectors, so concurrent calls with distinct scratch/output buffers are
  /// safe as long as no append runs in parallel. `k` is the shard count
  /// (dense-scatter bin width).
  void gather(std::span<const tx::TxIndex> parents,
              std::span<const double> divisors, std::uint32_t k,
              ScoreScratch& scratch, std::vector<ScoreEntry>& merged) const;

  /// Fills `normalized` with p(u)[i] = merged[i] / |S_i| (zero for empty
  /// shards) — the read-time normalization score() applies.
  void normalize(std::span<const ScoreEntry> merged,
                 const placement::ShardAssignment& assignment,
                 std::vector<double>& normalized) const;

  /// Appends a pre-gathered vector for node u with the α self-mass for
  /// `shard` folded in — the batched equivalent of score()'s append followed
  /// by commit(), minus the slack-slot round trip. Nodes must still arrive
  /// densely (u == number of stored vectors).
  void adopt_committed(tx::TxIndex u, std::span<const ScoreEntry> merged,
                       std::uint32_t shard);

  /// Pre-sizes the score store for an expected stream length.
  void reserve(std::size_t expected_txs) { pool_.reserve(expected_txs); }

  /// Sparse unnormalized vector of a placed (or scored) node.
  std::span<const ScoreEntry> raw_vector(tx::TxIndex u) const {
    return pool_.vector_of(u);
  }

  double alpha() const noexcept { return config_.alpha; }
  const T2sConfig& config() const noexcept { return config_; }

  /// Number of sparse entries across all nodes (memory telemetry).
  std::size_t total_entries() const noexcept { return pool_.total_entries(); }

  /// The underlying score slab (slot-accounting telemetry).
  const ScorePool& pool() const noexcept { return pool_; }

 private:
  T2sConfig config_;
  std::function<std::uint32_t(tx::TxIndex)> declared_outputs_;
  ScorePool pool_;                        // p' vectors, indexed by TxIndex
  ScoreScratch scratch_;                  // scratch for the sequential path
  std::vector<ScoreEntry> merged_;        // scratch: merged/pruned p'(u)
  std::vector<double> divisors_;          // scratch: per-parent divisors
};

/// Reference implementation: recomputes every p' vector from scratch by
/// propagating along the DAG in topological (arrival) order, given the final
/// placement. Used by tests to validate the incremental scheme
/// (O(k(|V|+|E|)); not for production use).
std::vector<std::vector<double>> recompute_all_scores_dense(
    const graph::TanDag& dag, const placement::ShardAssignment& assignment,
    const T2sConfig& config,
    const std::function<std::uint32_t(tx::TxIndex)>& declared_outputs =
        nullptr);

}  // namespace optchain::core

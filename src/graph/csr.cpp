#include "graph/csr.hpp"

namespace optchain::graph {

Csr::Csr(std::vector<std::uint64_t> offsets, std::vector<std::uint32_t> targets)
    : offsets_(std::move(offsets)), targets_(std::move(targets)) {
  OPTCHAIN_EXPECTS(!offsets_.empty());
  OPTCHAIN_EXPECTS(offsets_.front() == 0);
  OPTCHAIN_EXPECTS(offsets_.back() == targets_.size());
}

Csr Csr::from_edges(
    std::size_t n,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> edges) {
  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (const auto& [u, v] : edges) {
    OPTCHAIN_EXPECTS(u < n && v < n);
    ++offsets[u + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];

  std::vector<std::uint32_t> targets(edges.size());
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges) targets[cursor[u]++] = v;
  return Csr(std::move(offsets), std::move(targets));
}

}  // namespace optchain::graph

// Immutable compressed-sparse-row adjacency, the interchange format between
// the online TaN DAG and the offline partitioner.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace optchain::graph {

class Csr {
 public:
  Csr() : offsets_{0} {}
  Csr(std::vector<std::uint64_t> offsets, std::vector<std::uint32_t> targets);

  /// Builds a CSR from an edge list over n nodes: adjacency[u] contains v for
  /// every (u, v) in `edges`. Stable within each node (insertion order).
  static Csr from_edges(
      std::size_t n,
      std::span<const std::pair<std::uint32_t, std::uint32_t>> edges);

  std::size_t num_nodes() const noexcept { return offsets_.size() - 1; }
  std::size_t num_entries() const noexcept { return targets_.size(); }

  std::span<const std::uint32_t> neighbors(std::uint32_t u) const noexcept {
    OPTCHAIN_EXPECTS(u < num_nodes());
    return {targets_.data() + offsets_[u], targets_.data() + offsets_[u + 1]};
  }

  std::uint32_t degree(std::uint32_t u) const noexcept {
    OPTCHAIN_EXPECTS(u < num_nodes());
    return static_cast<std::uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint32_t> targets_;
};

}  // namespace optchain::graph

#include "graph/dag.hpp"

#include <algorithm>

namespace optchain::graph {

void TanDag::reserve(std::size_t nodes, std::size_t edges) {
  input_offsets_.reserve(nodes + 1);
  input_targets_.reserve(edges);
  spender_counts_.reserve(nodes);
}

NodeId TanDag::add_node(std::span<const NodeId> inputs) {
  const auto id = static_cast<NodeId>(num_nodes());
  const std::uint64_t start = input_targets_.size();
  for (const NodeId v : inputs) {
    OPTCHAIN_EXPECTS(v < id);  // inputs must precede u: DAG by construction
    // Collapse duplicate inputs (u spending several UTXOs of the same v is a
    // single TaN edge). Input lists are tiny, so a linear scan beats sorting.
    const auto* begin = input_targets_.data() + start;
    const auto* end = input_targets_.data() + input_targets_.size();
    if (std::find(begin, end, v) != end) continue;
    input_targets_.push_back(v);
    ++spender_counts_[v];
  }
  input_offsets_.push_back(input_targets_.size());
  spender_counts_.push_back(0);
  return id;
}

Csr TanDag::to_undirected() const {
  const std::size_t n = num_nodes();
  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : inputs(u)) {
      ++offsets[u + 1];
      ++offsets[v + 1];
    }
  }
  for (std::size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];

  std::vector<std::uint32_t> targets(offsets.back());
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : inputs(u)) {
      targets[cursor[u]++] = v;
      targets[cursor[v]++] = u;
    }
  }
  return Csr(std::move(offsets), std::move(targets));
}

Csr TanDag::to_spenders() const {
  const std::size_t n = num_nodes();
  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) offsets[v + 1] = spender_counts_[v];
  for (std::size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];

  std::vector<std::uint32_t> targets(offsets.back());
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : inputs(u)) targets[cursor[v]++] = u;
  }
  return Csr(std::move(offsets), std::move(targets));
}

TanDegreeStats compute_degree_stats(const TanDag& dag) {
  TanDegreeStats stats;
  stats.nodes = dag.num_nodes();
  stats.edges = dag.num_edges();
  for (NodeId u = 0; u < stats.nodes; ++u) {
    const bool no_inputs = dag.input_degree(u) == 0;
    const bool no_spenders = dag.spender_count(u) == 0;
    if (no_inputs) ++stats.coinbase_nodes;
    if (no_spenders) ++stats.unspent_nodes;
    if (no_inputs && no_spenders) ++stats.isolated_nodes;
  }
  stats.average_degree =
      stats.nodes == 0
          ? 0.0
          : static_cast<double>(stats.edges) / static_cast<double>(stats.nodes);
  return stats;
}

}  // namespace optchain::graph

// Append-only DAG storage for Transactions-as-Nodes (TaN) networks.
//
// Nodes arrive one at a time; node ids are assigned in arrival order, so the
// id sequence 0,1,2,... is a topological order by construction (a transaction
// can only spend outputs of transactions that already exist — paper §IV.A).
//
// Edge orientation follows the paper: an edge (u, v) exists when transaction
// u spends an output of transaction v. To avoid the in/out-degree ambiguity
// (the paper's Nin(u) are u's *input* transactions, reached by u's outgoing
// edges), the API speaks TaN language:
//   inputs(u)        — earlier transactions whose UTXOs u spends
//   input_degree(u)  — |Nin(u)| (graph out-degree of u)
//   spender_count(v) — |Nout(v)| (graph in-degree of v): transactions that
//                      spend v's outputs so far
//
// Storage is an online CSR over input lists (inputs are fully known when a
// node arrives) plus a per-node spender counter, which is all OptChain's T2S
// computation needs; full reverse adjacency is materialized on demand.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "graph/csr.hpp"

namespace optchain::graph {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class TanDag {
 public:
  TanDag() = default;

  /// Reserve capacity for an expected number of nodes/edges.
  void reserve(std::size_t nodes, std::size_t edges);

  /// Appends a node whose inputs are the given earlier nodes. Duplicates in
  /// `inputs` are collapsed to a single edge (the TaN definition has one edge
  /// per (spender, spent) transaction pair regardless of how many UTXOs are
  /// consumed). Every input must be an existing node (id < current size).
  /// Returns the new node's id.
  NodeId add_node(std::span<const NodeId> inputs);

  std::size_t num_nodes() const noexcept { return input_offsets_.size() - 1; }
  std::size_t num_edges() const noexcept { return input_targets_.size(); }

  /// Input transactions of u (deduplicated, in first-seen order).
  std::span<const NodeId> inputs(NodeId u) const noexcept {
    OPTCHAIN_EXPECTS(u < num_nodes());
    return {input_targets_.data() + input_offsets_[u],
            input_targets_.data() + input_offsets_[u + 1]};
  }

  std::uint32_t input_degree(NodeId u) const noexcept {
    OPTCHAIN_EXPECTS(u < num_nodes());
    return static_cast<std::uint32_t>(input_offsets_[u + 1] -
                                      input_offsets_[u]);
  }

  /// Number of transactions observed so far that spend outputs of v.
  std::uint32_t spender_count(NodeId v) const noexcept {
    OPTCHAIN_EXPECTS(v < num_nodes());
    return spender_counts_[v];
  }

  bool is_coinbase(NodeId u) const noexcept { return input_degree(u) == 0; }

  /// Undirected view (one neighbor entry per edge endpoint) for offline
  /// partitioning. O(V + E).
  Csr to_undirected() const;

  /// Reverse adjacency (spenders of each node), materialized in O(V + E).
  Csr to_spenders() const;

 private:
  // input_offsets_ has num_nodes()+1 entries; node u's inputs are
  // input_targets_[input_offsets_[u] .. input_offsets_[u+1]).
  std::vector<std::uint64_t> input_offsets_{0};
  std::vector<NodeId> input_targets_;
  std::vector<std::uint32_t> spender_counts_;
};

/// Degree statistics of a TaN DAG as reported in the paper's Fig. 2:
/// histograms of input-degree and spender-degree, counts of coinbase and
/// unspent-frontier nodes, and the average degree over arrival time.
struct TanDegreeStats {
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  std::uint64_t coinbase_nodes = 0;     // no inputs
  std::uint64_t unspent_nodes = 0;      // no spenders yet
  std::uint64_t isolated_nodes = 0;     // neither inputs nor spenders
  double average_degree = 0.0;          // edges / nodes (avg in- or out-degree)
};

TanDegreeStats compute_degree_stats(const TanDag& dag);

}  // namespace optchain::graph

#include "latency/l2s_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "latency/quadrature.hpp"

namespace optchain::latency {
namespace {

/// Rates from mean times; clamped away from zero for numerical safety.
struct Rates {
  double lc;
  double lv;
};

Rates rates_of(const ShardTiming& timing) noexcept {
  constexpr double kMinMean = 1e-9;
  return {1.0 / std::max(timing.mean_comm, kMinMean),
          1.0 / std::max(timing.mean_verify, kMinMean)};
}

}  // namespace

double two_phase_cdf(const ShardTiming& timing, double t) noexcept {
  if (t <= 0.0) return 0.0;
  const auto [lc, lv] = rates_of(timing);
  const double diff = lv - lc;
  if (std::abs(diff) < 1e-9 * lv) {
    // Erlang-2 with rate λ: F(t) = 1 − e^{−λt}(1 + λt).
    const double lt = lc * t;
    return 1.0 - std::exp(-lt) * (1.0 + lt);
  }
  // Hypoexponential: F(t) = 1 − (λv·e^{−λc t} − λc·e^{−λv t}) / (λv − λc).
  return 1.0 - (lv * std::exp(-lc * t) - lc * std::exp(-lv * t)) / diff;
}

double two_phase_pdf(const ShardTiming& timing, double t) noexcept {
  if (t < 0.0) return 0.0;
  const auto [lc, lv] = rates_of(timing);
  const double diff = lv - lc;
  if (std::abs(diff) < 1e-9 * lv) {
    return lc * lc * t * std::exp(-lc * t);
  }
  return lc * lv / diff * (std::exp(-lc * t) - std::exp(-lv * t));
}

double expected_max_two_phase(std::span<const ShardTiming> timings) {
  if (timings.empty()) return 0.0;
  if (timings.size() == 1) return expected_two_phase(timings[0]);

  double max_mean = 0.0;
  for (const auto& timing : timings) {
    max_mean = std::max(max_mean, expected_two_phase(timing));
  }
  // E[max] = ∫ (1 − Π F_i(t)) dt; the integrand decays like the slowest
  // shard's tail, so scale the cutoff with the largest mean.
  const auto survivor = [&](double t) {
    double prod = 1.0;
    for (const auto& timing : timings) prod *= two_phase_cdf(timing, t);
    return 1.0 - prod;
  };
  return integrate_decaying(survivor, max_mean, 30.0, 512);
}

double L2sEstimator::score(std::span<const ShardTiming> timings,
                           std::span<const std::uint32_t> input_shards,
                           std::uint32_t candidate) const {
  OPTCHAIN_EXPECTS(candidate < timings.size());
  for (const std::uint32_t s : input_shards) {
    OPTCHAIN_EXPECTS(s < timings.size());
  }

  // Same-shard placement (or coinbase): one submission, no proof phase.
  const bool same_shard =
      input_shards.empty() ||
      std::all_of(input_shards.begin(), input_shards.end(),
                  [candidate](std::uint32_t s) { return s == candidate; });
  if (same_shard) return expected_two_phase(timings[candidate]);

  std::vector<ShardTiming> proof_set;
  proof_set.reserve(input_shards.size());
  for (const std::uint32_t s : input_shards) proof_set.push_back(timings[s]);
  const double proof_phase = expected_max_two_phase(proof_set);

  switch (config_.mode) {
    case L2sMode::kPaperSelfConvolution:
      return 2.0 * proof_phase;
    case L2sMode::kProofPlusCommit:
      break;
  }
  return proof_phase + expected_two_phase(timings[candidate]);
}

std::vector<double> L2sEstimator::score_all(
    std::span<const ShardTiming> timings,
    std::span<const std::uint32_t> input_shards) {
  std::vector<double> scores;
  score_all(timings, input_shards, scores);
  return scores;
}

void L2sEstimator::score_all(std::span<const ShardTiming> timings,
                             std::span<const std::uint32_t> input_shards,
                             std::vector<double>& out) {
  const std::size_t k = timings.size();
  out.assign(k, 0.0);
  // The proof-gathering set is the input-shard set, independent of the
  // candidate; compute its expectation once.
  proof_scratch_.clear();
  proof_scratch_.reserve(input_shards.size());
  for (const std::uint32_t s : input_shards) {
    OPTCHAIN_EXPECTS(s < k);
    proof_scratch_.push_back(timings[s]);
  }
  const double proof_phase =
      proof_scratch_.empty() ? 0.0 : expected_max_two_phase(proof_scratch_);

  for (std::uint32_t j = 0; j < k; ++j) {
    const bool same_shard =
        input_shards.empty() ||
        std::all_of(input_shards.begin(), input_shards.end(),
                    [j](std::uint32_t s) { return s == j; });
    if (same_shard) {
      out[j] = expected_two_phase(timings[j]);
    } else if (config_.mode == L2sMode::kPaperSelfConvolution) {
      out[j] = 2.0 * proof_phase;
    } else {
      out[j] = proof_phase + expected_two_phase(timings[j]);
    }
  }
}

}  // namespace optchain::latency

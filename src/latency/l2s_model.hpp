// Latency-to-Shard (L2S) model — paper §IV.C.
//
// The time for shard i to produce a proof-of-acceptance is modeled as the sum
// of two independent exponentials: communication l_c ~ Exp(λ_c⁽ⁱ⁾) and
// verification l_v ~ Exp(λ_v⁽ⁱ⁾) (a hypoexponential). The user requests
// proofs from all input shards simultaneously, so gathering them all takes
// the *maximum* of the per-shard times: F(t) = Π_i F⁽ⁱ⁾(t). The commit phase
// at the output shard adds one more hypoexponential.
//
// The L2S score E(j) of placing transaction u into shard j is the expected
// total confirmation time:
//     E(j) = E[ max_{i ∈ S_j} (l_c⁽ⁱ⁾ + l_v⁽ⁱ⁾) ] + E[ l_c⁽ʲ⁾ + l_v⁽ʲ⁾ ]
// with S_j the set of shards that must issue proofs (the input shards). A
// placement that makes u same-shard skips the proof phase entirely (§III.A:
// the user "only needs to submit the transaction to the shard and wait for
// confirmation").
//
// E[max] has no closed form for heterogeneous rates; we compute it as
// ∫₀^∞ (1 − Π_i F⁽ⁱ⁾(t)) dt by quadrature. The paper's Algorithm 1 writes the
// expectation as a self-convolution of the proof-gathering density; that
// reading (E = 2·E[max]) is available as L2sMode::kPaperSelfConvolution.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace optchain::latency {

/// Expected-time parameters of one shard, as observed by a client:
/// mean_comm = 1/λ_c (round-trip sampling), mean_verify = 1/λ_v (recent
/// consensus time scaled by queue backlog).
struct ShardTiming {
  double mean_comm = 0.1;
  double mean_verify = 1.0;
};

/// CDF of l_c + l_v (hypoexponential; Erlang-2 when the rates coincide).
double two_phase_cdf(const ShardTiming& timing, double t) noexcept;

/// Density of l_c + l_v.
double two_phase_pdf(const ShardTiming& timing, double t) noexcept;

/// E[l_c + l_v] — closed form.
inline double expected_two_phase(const ShardTiming& timing) noexcept {
  return timing.mean_comm + timing.mean_verify;
}

/// E[max over the given shards of (l_c + l_v)], by quadrature on the
/// complementary CDF. Empty input yields 0.
double expected_max_two_phase(std::span<const ShardTiming> timings);

enum class L2sMode : std::uint8_t {
  /// E(j) = E[max proof-gathering] + E[commit at j]  (protocol reading).
  kProofPlusCommit,
  /// E(j) = 2 · E[max proof-gathering]               (paper's literal Alg. 1 line 6).
  kPaperSelfConvolution,
};

struct L2sConfig {
  L2sMode mode = L2sMode::kProofPlusCommit;
};

/// Computes L2S scores for every candidate output shard of one transaction.
class L2sEstimator {
 public:
  explicit L2sEstimator(L2sConfig config = {}) : config_(config) {}

  /// `timings[i]` describes shard i; `input_shards` lists the distinct shards
  /// holding the transaction's inputs (empty for coinbase). Returns E(j) in
  /// seconds for the given candidate shard j.
  double score(std::span<const ShardTiming> timings,
               std::span<const std::uint32_t> input_shards,
               std::uint32_t candidate) const;

  /// Scores all k candidates at once (reuses the proof-phase integral across
  /// candidates that share the same proof set). Non-const: the proof-set
  /// scratch buffer is reused across calls, so a shared estimator is not
  /// concurrently callable — which the signature now says out loud.
  std::vector<double> score_all(std::span<const ShardTiming> timings,
                                std::span<const std::uint32_t> input_shards);

  /// As above, into a caller-reused buffer (assign semantics) — the per-issue
  /// hot path of the simulator.
  void score_all(std::span<const ShardTiming> timings,
                 std::span<const std::uint32_t> input_shards,
                 std::vector<double>& out);

 private:
  L2sConfig config_;
  /// Scratch for the proof-gathering set (input-shard timings); reused so
  /// score_all allocates nothing in steady state.
  std::vector<ShardTiming> proof_scratch_;
};

}  // namespace optchain::latency

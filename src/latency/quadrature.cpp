// Header-only (template) module; this translation unit exists so the target
// has a compiled artifact and a place for future non-template helpers.
#include "latency/quadrature.hpp"

// Numerical integration helpers for the L2S latency expectations.
#pragma once

#include <concepts>

namespace optchain::latency {

/// Composite Simpson's rule on [a, b] with n subintervals (n rounded up to
/// even). Deterministic cost; integrands here are smooth and exponentially
/// decaying, so a fixed grid suffices.
template <std::invocable<double> F>
double integrate_simpson(F&& f, double a, double b, int n = 256) {
  if (b <= a) return 0.0;
  if (n % 2 != 0) ++n;
  const double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    sum += f(a + h * i) * (i % 2 == 0 ? 2.0 : 4.0);
  }
  return sum * h / 3.0;
}

/// Integrates f over [0, ∞) for an integrand known to decay like e^(-t/scale):
/// uses Simpson on [0, cutoff_scales * scale]. The truncation error is
/// O(e^(-cutoff_scales)) relative.
template <std::invocable<double> F>
double integrate_decaying(F&& f, double scale, double cutoff_scales = 30.0,
                          int n = 512) {
  return integrate_simpson(static_cast<F&&>(f), 0.0, scale * cutoff_scales, n);
}

}  // namespace optchain::latency

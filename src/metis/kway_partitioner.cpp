#include "metis/kway_partitioner.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace optchain::metis {
namespace {

constexpr std::uint32_t kUnassigned = static_cast<std::uint32_t>(-1);

/// Weighted graph level used during coarsening. Adjacency is CSR with
/// parallel edge weights; vertex weights count how many original vertices a
/// coarse vertex represents.
struct Level {
  std::vector<std::uint64_t> offsets{0};
  std::vector<std::uint32_t> targets;
  std::vector<std::uint64_t> eweights;
  std::vector<std::uint64_t> vweights;
  std::vector<std::uint32_t> coarse_map;  // fine vertex -> coarse vertex

  std::size_t num_nodes() const noexcept { return vweights.size(); }
};

Level from_csr(const graph::Csr& graph) {
  Level level;
  const std::size_t n = graph.num_nodes();
  level.offsets.resize(n + 1);
  level.targets.resize(graph.num_entries());
  level.eweights.assign(graph.num_entries(), 1);
  level.vweights.assign(n, 1);
  level.offsets[0] = 0;
  std::size_t cursor = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (const std::uint32_t v : graph.neighbors(u)) {
      level.targets[cursor++] = v;
    }
    level.offsets[u + 1] = cursor;
  }
  return level;
}

/// Heavy-edge matching: visit vertices in random order; match each unmatched
/// vertex with its unmatched neighbor of maximum edge weight.
std::vector<std::uint32_t> heavy_edge_matching(const Level& level, Rng& rng) {
  const std::size_t n = level.num_nodes();
  std::vector<std::uint32_t> match(n, kUnassigned);
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  for (const std::uint32_t u : order) {
    if (match[u] != kUnassigned) continue;
    std::uint32_t best = kUnassigned;
    std::uint64_t best_weight = 0;
    for (std::uint64_t e = level.offsets[u]; e < level.offsets[u + 1]; ++e) {
      const std::uint32_t v = level.targets[e];
      if (v == u || match[v] != kUnassigned) continue;
      if (level.eweights[e] > best_weight) {
        best_weight = level.eweights[e];
        best = v;
      }
    }
    if (best != kUnassigned) {
      match[u] = best;
      match[best] = u;
    } else {
      match[u] = u;  // stays single
    }
  }
  return match;
}

/// Contracts matched pairs into a coarser level.
Level coarsen(Level& fine, const std::vector<std::uint32_t>& match) {
  const std::size_t n = fine.num_nodes();
  fine.coarse_map.assign(n, kUnassigned);
  std::uint32_t next = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    if (fine.coarse_map[u] != kUnassigned) continue;
    fine.coarse_map[u] = next;
    if (match[u] != u) fine.coarse_map[match[u]] = next;
    ++next;
  }

  Level coarse;
  coarse.vweights.assign(next, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    coarse.vweights[fine.coarse_map[u]] += fine.vweights[u];
  }

  // Aggregate adjacency; a scratch map keyed by coarse target collapses
  // parallel edges, dropping self-loops.
  coarse.offsets.assign(1, 0);
  std::unordered_map<std::uint32_t, std::uint64_t> row;
  std::vector<std::vector<std::uint32_t>> members(next);
  for (std::uint32_t u = 0; u < n; ++u) {
    members[fine.coarse_map[u]].push_back(u);
  }
  for (std::uint32_t cu = 0; cu < next; ++cu) {
    row.clear();
    for (const std::uint32_t u : members[cu]) {
      for (std::uint64_t e = fine.offsets[u]; e < fine.offsets[u + 1]; ++e) {
        const std::uint32_t cv = fine.coarse_map[fine.targets[e]];
        if (cv == cu) continue;
        row[cv] += fine.eweights[e];
      }
    }
    for (const auto& [cv, w] : row) {
      coarse.targets.push_back(cv);
      coarse.eweights.push_back(w);
    }
    coarse.offsets.push_back(coarse.targets.size());
  }
  return coarse;
}

/// Greedy graph growing on the coarsest level: each of the k regions grows
/// by BFS until it holds ~1/k of the total vertex weight. TaN graphs have
/// many connected components (independent coinbase chains), so whenever a
/// region's frontier dries up before reaching its weight target it is
/// re-seeded from the next unassigned vertex.
std::vector<std::uint32_t> initial_partition(const Level& level,
                                             std::uint32_t k, Rng& rng) {
  const std::size_t n = level.num_nodes();
  const std::uint64_t total =
      std::accumulate(level.vweights.begin(), level.vweights.end(),
                      std::uint64_t{0});
  const std::uint64_t target = (total + k - 1) / k;

  std::vector<std::uint32_t> part(n, kUnassigned);
  std::vector<std::uint64_t> load(k, 0);
  std::vector<std::uint32_t> frontier;
  std::uint32_t scan = 0;  // next-unassigned-seed scan pointer

  const auto next_seed = [&]() -> std::uint32_t {
    // Try a few random probes first (spreads seeds), then scan.
    for (int attempt = 0; attempt < 8; ++attempt) {
      const auto candidate = static_cast<std::uint32_t>(rng.below(n));
      if (part[candidate] == kUnassigned) return candidate;
    }
    while (scan < n && part[scan] != kUnassigned) ++scan;
    return scan < n ? scan : kUnassigned;
  };

  for (std::uint32_t p = 0; p < k; ++p) {
    frontier.clear();
    std::size_t cursor = 0;
    while (load[p] < target) {
      if (cursor == frontier.size()) {  // frontier dry: re-seed
        const std::uint32_t seed = next_seed();
        if (seed == kUnassigned) break;  // no vertices left anywhere
        part[seed] = p;
        load[p] += level.vweights[seed];
        frontier.push_back(seed);
        continue;
      }
      const std::uint32_t u = frontier[cursor++];
      for (std::uint64_t e = level.offsets[u]; e < level.offsets[u + 1]; ++e) {
        const std::uint32_t v = level.targets[e];
        if (part[v] != kUnassigned) continue;
        part[v] = p;
        load[p] += level.vweights[v];
        frontier.push_back(v);
        if (load[p] >= target) break;
      }
    }
  }
  // Anything still unassigned (only when every part hit its target early)
  // joins the least-loaded part.
  for (std::uint32_t u = 0; u < n; ++u) {
    if (part[u] == kUnassigned) {
      const auto lightest = static_cast<std::uint32_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
      part[u] = lightest;
      load[lightest] += level.vweights[u];
    }
  }
  return part;
}

/// Forces every part under the balance bound by evicting vertices from
/// overloaded parts into the lightest part, preferring the evictions that
/// hurt the cut least. Run at the finest level, where all weights are 1 and
/// an exact rebalance is always possible.
void force_balance(const Level& level, std::uint32_t k,
                   std::uint64_t max_part_weight,
                   std::vector<std::uint32_t>& part,
                   std::vector<std::uint64_t>& load) {
  for (std::uint32_t from = 0; from < k; ++from) {
    if (load[from] <= max_part_weight) continue;
    // Cheapest-first eviction: vertices with the least internal connectivity
    // to `from` leave first.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> candidates;
    for (std::uint32_t u = 0; u < level.num_nodes(); ++u) {
      if (part[u] != from) continue;
      std::uint64_t internal = 0;
      for (std::uint64_t e = level.offsets[u]; e < level.offsets[u + 1]; ++e) {
        if (part[level.targets[e]] == from) internal += level.eweights[e];
      }
      candidates.emplace_back(internal, u);
    }
    std::sort(candidates.begin(), candidates.end());
    for (const auto& [internal, u] : candidates) {
      if (load[from] <= max_part_weight) break;
      const auto to = static_cast<std::uint32_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
      if (to == from) break;
      part[u] = to;
      load[from] -= level.vweights[u];
      load[to] += level.vweights[u];
    }
  }
}

std::uint64_t part_weight_target(const Level& level, std::uint32_t k) {
  const std::uint64_t total =
      std::accumulate(level.vweights.begin(), level.vweights.end(),
                      std::uint64_t{0});
  return (total + k - 1) / k;
}

/// One pass of greedy boundary refinement: move vertices to the neighboring
/// part with the highest positive gain, respecting the balance bound.
/// Returns the number of moves made.
std::size_t refine_pass(const Level& level, std::uint32_t k,
                        std::uint64_t max_part_weight,
                        std::vector<std::uint32_t>& part,
                        std::vector<std::uint64_t>& load,
                        std::vector<std::uint64_t>& scratch) {
  const std::size_t n = level.num_nodes();
  std::size_t moves = 0;
  scratch.assign(k, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    const std::uint32_t from = part[u];
    // Connectivity of u to each part.
    bool boundary = false;
    std::vector<std::uint32_t> touched;
    for (std::uint64_t e = level.offsets[u]; e < level.offsets[u + 1]; ++e) {
      const std::uint32_t p = part[level.targets[e]];
      if (scratch[p] == 0) touched.push_back(p);
      scratch[p] += level.eweights[e];
      if (p != from) boundary = true;
    }
    if (boundary) {
      const std::uint64_t internal = scratch[from];
      std::uint32_t best = from;
      std::uint64_t best_external = internal;  // require strict gain
      for (const std::uint32_t p : touched) {
        if (p == from) continue;
        if (scratch[p] > best_external &&
            load[p] + level.vweights[u] <= max_part_weight) {
          best_external = scratch[p];
          best = p;
        }
      }
      if (best != from) {
        part[u] = best;
        load[from] -= level.vweights[u];
        load[best] += level.vweights[u];
        ++moves;
      }
    }
    for (const std::uint32_t p : touched) scratch[p] = 0;
  }
  return moves;
}

void refine(const Level& level, std::uint32_t k, double imbalance,
            std::uint32_t passes, std::vector<std::uint32_t>& part) {
  const std::uint64_t max_part_weight = static_cast<std::uint64_t>(
      static_cast<double>(part_weight_target(level, k)) * (1.0 + imbalance));
  std::vector<std::uint64_t> load(k, 0);
  for (std::uint32_t u = 0; u < level.num_nodes(); ++u) {
    load[part[u]] += level.vweights[u];
  }
  std::vector<std::uint64_t> scratch;
  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    if (refine_pass(level, k, max_part_weight, part, load, scratch) == 0) {
      break;
    }
  }
}

}  // namespace

std::vector<std::uint32_t> partition_kway(const graph::Csr& graph,
                                          const PartitionConfig& config) {
  OPTCHAIN_EXPECTS(config.k >= 1);
  OPTCHAIN_EXPECTS(config.imbalance >= 0.0);
  const std::size_t n = graph.num_nodes();
  if (n == 0) return {};
  if (config.k == 1) return std::vector<std::uint32_t>(n, 0);

  Rng rng(config.seed);

  // Phase 1: coarsen. The coarsest graph must keep enough vertices per part
  // for the greedy growing to have room to work (~100 vertices/part).
  std::vector<Level> levels;
  levels.push_back(from_csr(graph));
  const std::size_t stop_at =
      std::max<std::size_t>(config.coarsen_target, 100ULL * config.k);
  while (levels.back().num_nodes() > stop_at) {
    Level& fine = levels.back();
    const auto match = heavy_edge_matching(fine, rng);
    Level coarse = coarsen(fine, match);
    // Matching can stall on star-like graphs; stop if reduction is < 10%.
    if (coarse.num_nodes() >
        fine.num_nodes() - fine.num_nodes() / 10) {
      break;
    }
    levels.push_back(std::move(coarse));
  }

  // Phase 2: initial partition on the coarsest level.
  std::vector<std::uint32_t> part =
      initial_partition(levels.back(), config.k, rng);
  refine(levels.back(), config.k, config.imbalance, config.refine_passes,
         part);

  // Phase 3: project back and refine each level.
  for (std::size_t i = levels.size() - 1; i-- > 0;) {
    const Level& fine = levels[i];
    std::vector<std::uint32_t> fine_part(fine.num_nodes());
    for (std::uint32_t u = 0; u < fine.num_nodes(); ++u) {
      fine_part[u] = part[fine.coarse_map[u]];
    }
    part = std::move(fine_part);
    refine(fine, config.k, config.imbalance, config.refine_passes, part);
  }

  // Final hard rebalance at unit weights, then one more refinement sweep to
  // recover any cut quality the evictions cost.
  {
    const Level& finest = levels.front();
    const std::uint64_t max_part_weight = static_cast<std::uint64_t>(
        static_cast<double>(part_weight_target(finest, config.k)) *
        (1.0 + config.imbalance));
    std::vector<std::uint64_t> load(config.k, 0);
    for (std::uint32_t u = 0; u < finest.num_nodes(); ++u) {
      load[part[u]] += finest.vweights[u];
    }
    force_balance(finest, config.k, max_part_weight, part, load);
    std::vector<std::uint64_t> scratch;
    refine_pass(finest, config.k, max_part_weight, part, load, scratch);
  }

  OPTCHAIN_ENSURES(part.size() == n);
  return part;
}

std::uint64_t edge_cut(const graph::Csr& graph,
                       std::span<const std::uint32_t> parts) {
  OPTCHAIN_EXPECTS(parts.size() == graph.num_nodes());
  std::uint64_t cut = 0;
  for (std::uint32_t u = 0; u < graph.num_nodes(); ++u) {
    for (const std::uint32_t v : graph.neighbors(u)) {
      if (parts[u] != parts[v]) ++cut;
    }
  }
  return cut / 2;  // undirected CSR stores each edge twice
}

double balance_factor(std::span<const std::uint32_t> parts, std::uint32_t k) {
  OPTCHAIN_EXPECTS(k >= 1);
  if (parts.empty()) return 1.0;
  std::vector<std::uint64_t> load(k, 0);
  for (const std::uint32_t p : parts) {
    OPTCHAIN_EXPECTS(p < k);
    ++load[p];
  }
  const std::uint64_t max_load = *std::max_element(load.begin(), load.end());
  const double average =
      static_cast<double>(parts.size()) / static_cast<double>(k);
  return static_cast<double>(max_load) / average;
}

}  // namespace optchain::metis

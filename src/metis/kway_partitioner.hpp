// Offline multilevel k-way graph partitioner, built from scratch in the
// style of Metis (Karypis & Kumar) — the paper's strongest cross-TX baseline
// ("Metis k-way", §IV.B discussion and §V experiments).
//
// Pipeline:
//   1. Coarsening: repeated heavy-edge matching merges strongly connected
//      vertex pairs until the graph is small.
//   2. Initial partitioning: greedy graph growing (BFS region growing) on the
//      coarsest graph, balanced to ceil(total_weight / k).
//   3. Uncoarsening: the partition is projected back level by level and
//      improved with greedy boundary Kernighan–Lin/Fiduccia–Mattheyses-style
//      refinement under the (1 + imbalance) balance constraint.
//
// The objective is the classic balanced edge-cut minimization — which, as the
// paper shows (Tables I-II vs Figs. 3-10), minimizes cross-shard transactions
// but destroys temporal balance, because consecutive transactions land in the
// same part. Reproducing that failure mode is the point of this module.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace optchain::metis {

struct PartitionConfig {
  std::uint32_t k = 2;
  /// Allowed relative imbalance ε: every part's vertex weight stays below
  /// (1 + ε) · ceil(total / k). The paper uses ε = 0.1.
  double imbalance = 0.1;
  /// Coarsening stops at max(coarsen_target, 4k) vertices.
  std::uint32_t coarsen_target = 2000;
  /// Refinement passes per uncoarsening level.
  std::uint32_t refine_passes = 4;
  std::uint64_t seed = 1;
};

/// Partitions the undirected graph into k parts; returns part id per vertex.
/// Isolated vertices are spread round-robin (they do not affect the cut).
std::vector<std::uint32_t> partition_kway(const graph::Csr& graph,
                                          const PartitionConfig& config);

/// Number of edges whose endpoints lie in different parts. `graph` is the
/// undirected CSR (each edge appears twice); the result counts each edge once.
std::uint64_t edge_cut(const graph::Csr& graph,
                       std::span<const std::uint32_t> parts);

/// Largest part weight divided by average part weight (1.0 = perfect).
double balance_factor(std::span<const std::uint32_t> parts, std::uint32_t k);

}  // namespace optchain::metis

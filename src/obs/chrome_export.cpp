#include "obs/chrome_export.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace optchain::obs {
namespace {

// Track layout: one synthetic "process" per record family keeps Perfetto's
// timeline grouped — async tx spans under pid 1, per-shard tracks (blocks,
// queue counters) under pid 2.
constexpr int kTxPid = 1;
constexpr int kShardPid = 2;

std::string fmt(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Simulated seconds → trace-event microseconds.
std::string ts(double time_s) { return fmt(time_s * 1e6); }

}  // namespace

std::uint64_t write_chrome_trace(OtraceReader& reader, std::ostream& out) {
  std::uint64_t events = 0;
  out << "{\"traceEvents\":[\n";
  const auto emit = [&](const std::string& event) {
    if (events > 0) out << ",\n";
    out << event;
    ++events;
  };
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
       std::to_string(kTxPid) +
       ",\"args\":{\"name\":\"transaction lifecycle\"}}");
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
       std::to_string(kShardPid) + ",\"args\":{\"name\":\"shards\"}}");

  TraceRecord record;
  while (reader.next(record)) {
    switch (record.type) {
      case TraceRecordType::kIssue:
        emit("{\"cat\":\"tx\",\"name\":\"tx\",\"ph\":\"b\",\"id\":" +
             std::to_string(record.tx) + ",\"pid\":" + std::to_string(kTxPid) +
             ",\"tid\":0,\"ts\":" + ts(record.time) +
             ",\"args\":{\"cross\":" + (record.cross ? "1" : "0") + "}}");
        break;
      case TraceRecordType::kCommit:
        emit("{\"cat\":\"tx\",\"name\":\"tx\",\"ph\":\"e\",\"id\":" +
             std::to_string(record.tx) + ",\"pid\":" + std::to_string(kTxPid) +
             ",\"tid\":0,\"ts\":" + ts(record.time) +
             ",\"args\":{\"outcome\":\"commit\",\"latency_us\":" +
             fmt(record.latency_s * 1e6) + "}}");
        break;
      case TraceRecordType::kAbort:
        emit("{\"cat\":\"tx\",\"name\":\"tx\",\"ph\":\"e\",\"id\":" +
             std::to_string(record.tx) + ",\"pid\":" + std::to_string(kTxPid) +
             ",\"tid\":0,\"ts\":" + ts(record.time) +
             ",\"args\":{\"outcome\":\"abort\"}}");
        break;
      case TraceRecordType::kBlock:
        emit("{\"cat\":\"shard\",\"name\":\"block\",\"ph\":\"i\",\"s\":\"t\","
             "\"pid\":" +
             std::to_string(kShardPid) +
             ",\"tid\":" + std::to_string(record.shard) +
             ",\"ts\":" + ts(record.time) + "}");
        break;
      case TraceRecordType::kQueueSample: {
        std::string args;
        for (std::size_t s = 0; s < record.queues.size(); ++s) {
          if (!args.empty()) args += ",";
          args += "\"s" + std::to_string(s) +
                  "\":" + std::to_string(record.queues[s]);
        }
        emit("{\"name\":\"queue\",\"ph\":\"C\",\"pid\":" +
             std::to_string(kShardPid) + ",\"tid\":0,\"ts\":" +
             ts(record.time) + ",\"args\":{" + args + "}}");
        break;
      }
      case TraceRecordType::kLinkSample: {
        std::string args;
        for (const TraceRecord::Link& link : record.links) {
          if (!args.empty()) args += ",";
          args += "\"e" + std::to_string(link.endpoint) +
                  "\":" + fmt(link.backlog_s);
        }
        emit("{\"name\":\"link_backlog_s\",\"ph\":\"C\",\"pid\":" +
             std::to_string(kShardPid) + ",\"tid\":0,\"ts\":" +
             ts(record.time) + ",\"args\":{" + args + "}}");
        break;
      }
      case TraceRecordType::kShardChange:
        emit("{\"cat\":\"churn\",\"name\":\"" +
             std::string(record.joined ? "shard join" : "shard retire") +
             "\",\"ph\":\"i\",\"s\":\"g\",\"pid\":" +
             std::to_string(kShardPid) +
             ",\"tid\":" + std::to_string(record.shard) +
             ",\"ts\":" + ts(record.time) +
             ",\"args\":{\"migrated_txs\":" +
             std::to_string(record.migrated_txs) + ",\"migrated_utxos\":" +
             std::to_string(record.migrated_utxos) + "}}");
        break;
      case TraceRecordType::kRepartition:
        emit("{\"cat\":\"repartition\",\"name\":\"repartition\",\"ph\":\"i\","
             "\"s\":\"g\",\"pid\":" +
             std::to_string(kShardPid) + ",\"tid\":0,\"ts\":" +
             ts(record.time) + ",\"args\":{\"migrated_txs\":" +
             std::to_string(record.migrated_txs) + ",\"migrated_utxos\":" +
             std::to_string(record.migrated_utxos) + ",\"deferred_txs\":" +
             std::to_string(record.deferred_txs) + "}}");
        break;
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return events;
}

std::uint64_t export_chrome_trace(const std::string& otrace_path,
                                  const std::string& json_path) {
  OtraceReader reader(otrace_path);
  std::ofstream out(json_path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("chrome export: cannot open " + json_path);
  }
  const std::uint64_t events = write_chrome_trace(reader, out);
  out.close();
  if (!out) {
    throw std::runtime_error("chrome export: write failed: " + json_path);
  }
  return events;
}

}  // namespace optchain::obs

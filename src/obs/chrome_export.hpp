// Chrome trace-event JSON export for .otrace run traces (src/obs).
//
// Renders a recorded run as the Trace Event Format JSON object that
// chrome://tracing and ui.perfetto.dev load directly:
//
//  - per-transaction lifecycle spans as async begin/end events
//    (issue → commit/abort, latency and cross-shard flag in args),
//  - per-shard block commits as instant events on one track per shard,
//  - queue and fabric-backlog samples as counter tracks,
//  - churn and re-partition events as global instant events.
//
// Timestamps are simulated microseconds (ts = sim seconds × 1e6). The
// export is a pure function of the trace bytes — %.17g number formatting,
// no wall clock, no locale — so exporting the same .otrace twice yields the
// same JSON byte-for-byte.
#pragma once

#include <ostream>
#include <string>

#include "obs/otrace_reader.hpp"

namespace optchain::obs {

/// Streams the Chrome trace-event JSON for every remaining record of
/// `reader` into `out`. Returns the number of trace events written.
std::uint64_t write_chrome_trace(OtraceReader& reader, std::ostream& out);

/// Convenience wrapper: opens `otrace_path`, writes the JSON to
/// `json_path`. Throws std::runtime_error on I/O failure or a corrupt
/// trace. Returns the number of trace events written.
std::uint64_t export_chrome_trace(const std::string& otrace_path,
                                  const std::string& json_path);

}  // namespace optchain::obs

#include "obs/metrics_registry.hpp"

#include <cmath>
#include <cstdio>

namespace optchain::obs {
namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; the registry's dotted
/// names map dots (and any other separator) to underscores.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string fmt_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

void Histogram::observe(double value) {
  ++buckets_[bucket_of(value)];
  samples_.add(value);
}

std::size_t Histogram::bucket_of(double value) noexcept {
  if (!(value >= 1.0)) return 0;  // sub-unit, zero, negative and NaN
  const int exponent = std::ilogb(value);
  const std::size_t bucket = static_cast<std::size_t>(exponent) + 1;
  return bucket < kBuckets ? bucket : kBuckets - 1;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  samples_.merge(other.samples_);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::write_json(JsonWriter& json,
                                 const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  json.begin_object(key);
  for (const auto& [name, counter] : counters_) {
    json.field(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    json.field(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    json.begin_object(name)
        .field("count", histogram->count())
        .field("mean", histogram->mean())
        .field("p50", histogram->p50())
        .field("p99", histogram->p99())
        .field("p999", histogram->p999())
        .field("max", histogram->max())
        .end_object();
  }
  json.end_object();
}

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + fmt_double(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " summary\n";
    out += metric + "{quantile=\"0.5\"} " + fmt_double(histogram->p50()) + "\n";
    out +=
        metric + "{quantile=\"0.99\"} " + fmt_double(histogram->p99()) + "\n";
    out +=
        metric + "{quantile=\"0.999\"} " + fmt_double(histogram->p999()) + "\n";
    out += metric + "_sum " + fmt_double(histogram->sum()) + "\n";
    out += metric + "_count " + std::to_string(histogram->count()) + "\n";
  }
  return out;
}

}  // namespace optchain::obs

// Unified named-metrics registry (src/obs).
//
// Replaces the ad-hoc tallies scattered across the serve daemon and the
// bench binaries with one named-instrument surface: Counter (monotonic),
// Gauge (last value) and Histogram (mergeable log-bucket counts plus exact
// p50/p99/p999 via common/histogram's SampleStats). A registry snapshot
// exports as ordered JSON (common/json_writer) or Prometheus text
// exposition, so the same numbers feed BENCH_*.json and periodic snapshots
// — one source of truth instead of per-binary percentile helpers.
//
// Metric objects are created on first lookup and have stable addresses for
// the registry's lifetime; lookups are mutex-protected, the instruments
// themselves are single-writer (the owning loop increments, snapshots read).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/json_writer.hpp"

namespace optchain::obs {

/// Monotonic event count.
class Counter {
 public:
  /// Adds `n` (default 1).
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  /// Current count.
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value instrument (rates, sizes, fractions).
class Gauge {
 public:
  /// Replaces the value.
  void set(double value) noexcept { value_ = value; }
  /// Current value.
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Distribution instrument: power-of-two log-bucket counts (bounded,
/// mergeable — the Prometheus-style bucket view) backed by a SampleStats
/// sample store for exact mean/min/max and exact p50/p99/p999.
class Histogram {
 public:
  /// Number of log2 buckets: bucket b counts samples in [2^(b-1), 2^b),
  /// bucket 0 counts samples < 1 (values are bucketed on their magnitude).
  static constexpr std::size_t kBuckets = 64;

  /// Records one sample (any finite value; negatives land in bucket 0).
  void observe(double value);

  /// Samples recorded.
  std::uint64_t count() const noexcept { return samples_.count(); }
  /// Sum of samples.
  double sum() const noexcept { return samples_.sum(); }
  /// Arithmetic mean (0 when empty).
  double mean() const noexcept { return samples_.mean(); }
  /// Smallest sample (0 when empty).
  double min() const noexcept { return samples_.min(); }
  /// Largest sample (0 when empty).
  double max() const noexcept { return samples_.max(); }
  /// Exact nearest-rank quantile (common/histogram semantics); 0 when empty.
  double quantile(double q) const {
    return samples_.count() == 0 ? 0.0 : samples_.quantile(q);
  }
  /// Exact median.
  double p50() const { return quantile(0.50); }
  /// Exact 99th percentile.
  double p99() const { return quantile(0.99); }
  /// Exact 99.9th percentile.
  double p999() const { return quantile(0.999); }

  /// The log2 bucket counts (index = bucket, see kBuckets).
  const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }
  /// The exact sample store (merge target, CDF queries).
  const SampleStats& samples() const noexcept { return samples_; }

  /// Folds another histogram in: bucket counts add, sample stores merge —
  /// quantiles of the merged histogram are exact over the union.
  void merge(const Histogram& other);

 private:
  static std::size_t bucket_of(double value) noexcept;

  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(kBuckets, 0);
  SampleStats samples_;
};

/// Named Counter/Gauge/Histogram registry with ordered snapshot export.
/// Names are conventionally dotted lowercase ("serve.batch_latency_us");
/// iteration (and therefore every export) is in lexicographic name order,
/// so snapshots are deterministic given deterministic inputs.
class MetricsRegistry {
 public:
  /// The counter named `name`, created zero-valued on first use.
  Counter& counter(const std::string& name);
  /// The gauge named `name`, created zero-valued on first use.
  Gauge& gauge(const std::string& name);
  /// The histogram named `name`, created empty on first use.
  Histogram& histogram(const std::string& name);

  /// Writes one flat JSON object per instrument family into `json` under
  /// `key`: counters as integers, gauges as doubles, histograms as
  /// {count, mean, p50, p99, p999, max} sub-objects.
  void write_json(JsonWriter& json, const std::string& key) const;

  /// Prometheus text exposition (one `# TYPE` line per metric; histograms
  /// emit _count/_sum plus quantile-labeled gauge lines). Metric names have
  /// dots mapped to underscores per Prometheus naming rules.
  std::string prometheus_text() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace optchain::obs

// OTRC v1 — the chunk-indexed binary run-trace container (src/obs).
//
// A .otrace file is the per-run lifecycle record stream obs::RunTracer
// writes: every SimObserver callback of a run (issue, commit, abort, block
// commit, queue/link samples, churn, re-partition), in simulated-time
// dispatch order, encoded one record at a time. The container framing is
// the OPTX v2 idiom (src/trace/trace_format.hpp) applied to records instead
// of transactions: LEB128 varints, independently-checksummed chunk frames,
// a footer index, and a fixed 12-byte trailer — O(chunk) memory at both
// ends and per-chunk corruption detection.
//
// Layout (all varints LEB128; f64 = 8-byte little-endian IEEE-754 bits):
//
//   header   "OTRC" magic, varint version = 1, varint chunk_capacity
//   chunk*   varint count            records in this chunk (>= 1)
//            varint payload_bytes
//            payload                 `count` records (codec below)
//            varint checksum         FNV-1a 64 over the payload bytes
//   footer   varint n_chunks, then per chunk
//            { varint file_offset, varint first_index, varint count },
//            varint total_records
//   trailer  u64 LE footer file offset, "CRTO" magic   (12 bytes, fixed)
//
// Record codec — u8 type tag, then per type:
//
//   kIssue        varint tx, f64 time, u8 cross
//   kCommit       varint tx, f64 time, f64 latency_s
//   kAbort        varint tx, f64 time
//   kBlock        varint shard, f64 time
//   kQueueSample  f64 time, varint n, varint queue[n]
//   kLinkSample   f64 time, varint n,
//                 { varint endpoint, f64 backlog_s, varint drops }[n]
//   kShardChange  varint shard, f64 time, u8 joined,
//                 varint migrated_txs, varint migrated_utxos
//   kRepartition  f64 time, varint migrated_txs, varint migrated_utxos,
//                 varint deferred_txs
//
// Every field is simulated-time data: trace content is a pure function of
// the run's seeds and bit-identical across engines at any sim_jobs
// (determinism rule 9). No wall-clock value is ever encoded.
#pragma once

#include <cstddef>
#include <cstdint>

namespace optchain::obs {

/// File magic of every .otrace container ("OTRC").
inline constexpr std::uint8_t kOtraceMagic[4] = {'O', 'T', 'R', 'C'};
/// Magic closing the fixed-size trailer ("CRTO" — OTRC reversed).
inline constexpr std::uint8_t kOtraceTrailerMagic[4] = {'C', 'R', 'T', 'O'};
/// The container version this module writes.
inline constexpr std::uint32_t kOtraceVersion = 1;
/// Trailer size: u64 LE footer offset + 4-byte trailer magic.
inline constexpr std::size_t kOtraceTrailerBytes = 12;
/// Default records per chunk: small records (~10-25 B), so 64k records keep
/// chunks around a megabyte and the footer index negligible.
inline constexpr std::uint32_t kOtraceDefaultChunkCapacity = 65536;

/// Record type tags (the codec's u8 discriminator). Values are part of the
/// on-disk format — append only, never renumber.
enum class TraceRecordType : std::uint8_t {
  kIssue = 1,        ///< transaction entered the system
  kCommit = 2,       ///< transaction committed (span close)
  kAbort = 3,        ///< transaction aborted (span close)
  kBlock = 4,        ///< one shard committed a block
  kQueueSample = 5,  ///< periodic per-shard queue sizes
  kLinkSample = 6,   ///< periodic per-endpoint fabric backlog/drops
  kShardChange = 7,  ///< churn: shard joined or retired
  kRepartition = 8,  ///< online re-partition tick applied
};

/// One footer-index entry: where a chunk lives and what it holds.
struct OtraceChunkInfo {
  std::uint64_t offset = 0;       ///< file offset of the chunk frame
  std::uint64_t first_index = 0;  ///< absolute index of the first record
  std::uint64_t count = 0;        ///< records in the chunk
};

}  // namespace optchain::obs

#include "obs/otrace_reader.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "txmodel/serialization.hpp"

namespace optchain::obs {
namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("otrace reader: " + path + ": " + what);
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t hash = 14695981039346656037ull;
  for (const std::uint8_t byte : data) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

OtraceReader::OtraceReader(const std::string& path)
    : file_(path, std::ios::binary), path_(path) {
  if (!file_) fail(path_, "cannot open");

  file_.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(file_.tellg());

  // Header: magic + version + chunk capacity.
  std::uint8_t magic[4] = {};
  file_.seekg(0, std::ios::beg);
  file_.read(reinterpret_cast<char*>(magic), 4);
  if (!file_ || !std::equal(magic, magic + 4, kOtraceMagic)) {
    fail(path_, "bad magic (not a .otrace file)");
  }
  // The header varints are tiny; 32 bytes covers any encodable pair.
  std::uint8_t header[32] = {};
  const std::size_t header_bytes = static_cast<std::size_t>(
      std::min<std::uint64_t>(sizeof(header), file_size - 4));
  file_.read(reinterpret_cast<char*>(header), header_bytes);
  std::span<const std::uint8_t> header_span(header, header_bytes);
  std::size_t offset = 0;
  const std::uint64_t version = tx::read_varint(header_span, offset);
  if (version != kOtraceVersion) {
    fail(path_, "unsupported version " + std::to_string(version));
  }
  chunk_capacity_ =
      static_cast<std::uint32_t>(tx::read_varint(header_span, offset));
  if (chunk_capacity_ == 0) fail(path_, "corrupt header (chunk_capacity 0)");

  // Trailer → footer → chunk index.
  if (file_size < 4 + kOtraceTrailerBytes) fail(path_, "truncated file");
  std::uint8_t trailer[kOtraceTrailerBytes] = {};
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(file_size - kOtraceTrailerBytes),
              std::ios::beg);
  file_.read(reinterpret_cast<char*>(trailer), kOtraceTrailerBytes);
  if (!file_ || !std::equal(trailer + 8, trailer + 12, kOtraceTrailerMagic)) {
    fail(path_, "bad trailer (unfinished or corrupt trace)");
  }
  std::uint64_t footer_offset = 0;
  for (int i = 7; i >= 0; --i) {
    footer_offset = (footer_offset << 8) | trailer[i];
  }
  if (footer_offset >= file_size - kOtraceTrailerBytes) {
    fail(path_, "corrupt trailer (footer offset past file end)");
  }

  const std::size_t footer_bytes =
      static_cast<std::size_t>(file_size - kOtraceTrailerBytes - footer_offset);
  std::vector<std::uint8_t> footer(footer_bytes);
  file_.seekg(static_cast<std::streamoff>(footer_offset), std::ios::beg);
  file_.read(reinterpret_cast<char*>(footer.data()),
             static_cast<std::streamsize>(footer_bytes));
  if (!file_) fail(path_, "footer read failed");
  try {
    std::size_t cursor = 0;
    const std::uint64_t n_chunks = tx::read_varint(footer, cursor);
    chunks_.reserve(n_chunks);
    for (std::uint64_t c = 0; c < n_chunks; ++c) {
      OtraceChunkInfo info;
      info.offset = tx::read_varint(footer, cursor);
      info.first_index = tx::read_varint(footer, cursor);
      info.count = tx::read_varint(footer, cursor);
      chunks_.push_back(info);
    }
    total_ = tx::read_varint(footer, cursor);
  } catch (const std::exception&) {
    fail(path_, "corrupt footer index");
  }
}

void OtraceReader::load_chunk(std::size_t chunk) {
  const OtraceChunkInfo& info = chunks_[chunk];
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(info.offset), std::ios::beg);

  // Frame prefix: varint count + varint payload_bytes (≤ 20 bytes).
  std::uint8_t prefix[20] = {};
  file_.read(reinterpret_cast<char*>(prefix), sizeof(prefix));
  const auto prefix_read = static_cast<std::size_t>(file_.gcount());
  std::span<const std::uint8_t> prefix_span(prefix, prefix_read);
  std::size_t cursor = 0;
  std::uint64_t count = 0;
  std::uint64_t payload_bytes = 0;
  try {
    count = tx::read_varint(prefix_span, cursor);
    payload_bytes = tx::read_varint(prefix_span, cursor);
  } catch (const std::exception&) {
    fail(path_, "corrupt chunk frame");
  }
  if (count != info.count) fail(path_, "chunk count mismatch vs footer");

  buffer_.resize(static_cast<std::size_t>(payload_bytes));
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(info.offset + cursor),
              std::ios::beg);
  file_.read(reinterpret_cast<char*>(buffer_.data()),
             static_cast<std::streamsize>(payload_bytes));
  if (static_cast<std::uint64_t>(file_.gcount()) != payload_bytes) {
    fail(path_, "truncated chunk payload");
  }

  // Checksum frame tail, then verify before any record escapes.
  std::uint8_t checksum_buf[10] = {};
  file_.read(reinterpret_cast<char*>(checksum_buf), sizeof(checksum_buf));
  const auto checksum_read = static_cast<std::size_t>(file_.gcount());
  std::span<const std::uint8_t> checksum_span(checksum_buf, checksum_read);
  std::size_t checksum_cursor = 0;
  std::uint64_t stored = 0;
  try {
    stored = tx::read_varint(checksum_span, checksum_cursor);
  } catch (const std::exception&) {
    fail(path_, "corrupt chunk checksum");
  }
  if (stored != fnv1a64(buffer_)) {
    fail(path_, "chunk checksum mismatch (corrupt trace)");
  }

  buffer_offset_ = 0;
  current_chunk_ = chunk;
}

std::uint64_t OtraceReader::read_payload_varint() {
  return tx::read_varint(buffer_, buffer_offset_);
}

double OtraceReader::read_payload_f64() {
  if (buffer_offset_ + 8 > buffer_.size()) {
    fail(path_, "truncated record (f64)");
  }
  std::uint64_t bits = 0;
  for (int i = 7; i >= 0; --i) {
    bits = (bits << 8) |
           buffer_[buffer_offset_ + static_cast<std::size_t>(i)];
  }
  buffer_offset_ += 8;
  return std::bit_cast<double>(bits);
}

bool OtraceReader::next(TraceRecord& out) {
  if (next_index_ >= total_) return false;

  // Locate the chunk holding next_index_ (records decode in order, so this
  // is almost always the current chunk or the one after it).
  if (current_chunk_ == SIZE_MAX ||
      next_index_ >=
          chunks_[current_chunk_].first_index + chunks_[current_chunk_].count) {
    const std::size_t target =
        current_chunk_ == SIZE_MAX ? 0 : current_chunk_ + 1;
    if (target >= chunks_.size()) fail(path_, "footer/total mismatch");
    load_chunk(target);
  }

  out = TraceRecord{};
  try {
    const auto type = static_cast<TraceRecordType>(buffer_.at(buffer_offset_));
    ++buffer_offset_;
    out.type = type;
    switch (type) {
      case TraceRecordType::kIssue:
        out.tx = static_cast<std::uint32_t>(read_payload_varint());
        out.time = read_payload_f64();
        out.cross = buffer_.at(buffer_offset_++) != 0;
        break;
      case TraceRecordType::kCommit:
        out.tx = static_cast<std::uint32_t>(read_payload_varint());
        out.time = read_payload_f64();
        out.latency_s = read_payload_f64();
        break;
      case TraceRecordType::kAbort:
        out.tx = static_cast<std::uint32_t>(read_payload_varint());
        out.time = read_payload_f64();
        break;
      case TraceRecordType::kBlock:
        out.shard = static_cast<std::uint32_t>(read_payload_varint());
        out.time = read_payload_f64();
        break;
      case TraceRecordType::kQueueSample: {
        out.time = read_payload_f64();
        const std::uint64_t n = read_payload_varint();
        out.queues.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
          out.queues.push_back(read_payload_varint());
        }
        break;
      }
      case TraceRecordType::kLinkSample: {
        out.time = read_payload_f64();
        const std::uint64_t n = read_payload_varint();
        out.links.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
          TraceRecord::Link link;
          link.endpoint = read_payload_varint();
          link.backlog_s = read_payload_f64();
          link.drops = read_payload_varint();
          out.links.push_back(link);
        }
        break;
      }
      case TraceRecordType::kShardChange:
        out.shard = static_cast<std::uint32_t>(read_payload_varint());
        out.time = read_payload_f64();
        out.joined = buffer_.at(buffer_offset_++) != 0;
        out.migrated_txs = read_payload_varint();
        out.migrated_utxos = read_payload_varint();
        break;
      case TraceRecordType::kRepartition:
        out.time = read_payload_f64();
        out.migrated_txs = read_payload_varint();
        out.migrated_utxos = read_payload_varint();
        out.deferred_txs = read_payload_varint();
        break;
      default:
        fail(path_, "unknown record type " +
                        std::to_string(static_cast<unsigned>(type)));
    }
  } catch (const std::out_of_range&) {
    fail(path_, "truncated record");
  }
  ++next_index_;
  return true;
}

TraceSummary OtraceReader::summarize() {
  TraceSummary summary;
  TraceRecord record;
  while (next(record)) {
    ++summary.records;
    summary.max_time_s = std::max(summary.max_time_s, record.time);
    switch (record.type) {
      case TraceRecordType::kIssue:
        ++summary.issues;
        if (record.cross) ++summary.cross_issues;
        break;
      case TraceRecordType::kCommit:
        ++summary.commits;
        summary.max_latency_s =
            std::max(summary.max_latency_s, record.latency_s);
        break;
      case TraceRecordType::kAbort:
        ++summary.aborts;
        break;
      case TraceRecordType::kBlock:
        ++summary.blocks;
        break;
      case TraceRecordType::kQueueSample:
        ++summary.queue_samples;
        break;
      case TraceRecordType::kLinkSample:
        ++summary.link_samples;
        break;
      case TraceRecordType::kShardChange:
        ++summary.shard_changes;
        break;
      case TraceRecordType::kRepartition:
        ++summary.repartitions;
        break;
    }
  }
  return summary;
}

}  // namespace optchain::obs

// Streaming reader for .otrace run-trace containers (obs/otrace_format.hpp).
//
// Opens in O(1) (header + footer index via the fixed trailer), then decodes
// one chunk at a time as next() walks the record stream, verifying each
// chunk's FNV-1a checksum before a single record escapes — corruption is
// rejected with std::runtime_error, never silently decoded. The consumers:
// obs::write_chrome_trace (Perfetto export), the optchain-obs tool
// (export / summarize / diff), and the obs test suite.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "obs/otrace_format.hpp"

namespace optchain::obs {

/// One decoded .otrace record. `type` selects which fields are meaningful
/// (the rest keep their zero defaults) — a fat flat struct instead of a
/// variant, mirroring the observer callback arguments one-to-one.
struct TraceRecord {
  TraceRecordType type = TraceRecordType::kIssue;  ///< record discriminator
  double time = 0.0;                 ///< simulated seconds (every type)
  std::uint32_t tx = 0;              ///< issue/commit/abort
  std::uint32_t shard = 0;           ///< block/shard-change
  double latency_s = 0.0;            ///< commit
  bool cross = false;                ///< issue
  bool joined = false;               ///< shard-change
  std::uint64_t migrated_txs = 0;    ///< shard-change/repartition
  std::uint64_t migrated_utxos = 0;  ///< shard-change/repartition
  std::uint64_t deferred_txs = 0;    ///< repartition
  std::vector<std::uint64_t> queues;  ///< queue-sample per-shard sizes
  /// One sampled fabric endpoint (link-sample records).
  struct Link {
    std::uint64_t endpoint = 0;  ///< 0 = client, 1 + s = shard s
    double backlog_s = 0.0;      ///< queued serialization seconds
    std::uint64_t drops = 0;     ///< cumulative tail drops
  };
  std::vector<Link> links;  ///< link-sample per-endpoint samples
};

/// Aggregate counts of a whole trace (the `optchain-obs summarize` view).
struct TraceSummary {
  std::uint64_t records = 0;       ///< total records
  std::uint64_t issues = 0;        ///< kIssue records
  std::uint64_t cross_issues = 0;  ///< kIssue records with cross set
  std::uint64_t commits = 0;       ///< kCommit records
  std::uint64_t aborts = 0;        ///< kAbort records
  std::uint64_t blocks = 0;        ///< kBlock records
  std::uint64_t queue_samples = 0;  ///< kQueueSample records
  std::uint64_t link_samples = 0;   ///< kLinkSample records
  std::uint64_t shard_changes = 0;  ///< kShardChange records
  std::uint64_t repartitions = 0;   ///< kRepartition records
  double max_time_s = 0.0;          ///< latest record timestamp
  double max_latency_s = 0.0;       ///< worst commit latency
};

/// Streaming decoder over an on-disk .otrace container.
class OtraceReader {
 public:
  /// Opens and validates `path` (magic, version, trailer, footer index).
  /// Throws std::runtime_error on I/O failure or a malformed container.
  explicit OtraceReader(const std::string& path);

  /// Total records in the trace (from the footer).
  std::uint64_t size() const noexcept { return total_; }
  /// Chunk count.
  std::uint64_t num_chunks() const noexcept { return chunks_.size(); }
  /// Nominal records per chunk (from the header).
  std::uint32_t chunk_capacity() const noexcept { return chunk_capacity_; }

  /// Decodes the next record. Returns false at end of trace. Throws
  /// std::runtime_error on truncation or a chunk checksum mismatch.
  bool next(TraceRecord& out);

  /// Decodes the remaining records into one aggregate summary.
  TraceSummary summarize();

 private:
  void load_chunk(std::size_t chunk);
  std::uint64_t read_payload_varint();
  double read_payload_f64();

  std::ifstream file_;
  std::string path_;
  std::uint32_t chunk_capacity_ = 0;
  std::uint64_t total_ = 0;
  std::vector<OtraceChunkInfo> chunks_;

  std::vector<std::uint8_t> buffer_;  ///< current chunk's payload
  std::size_t buffer_offset_ = 0;
  std::size_t current_chunk_ = SIZE_MAX;
  std::uint64_t next_index_ = 0;
};

}  // namespace optchain::obs

#include "obs/phase_profiler.hpp"

namespace optchain::obs {

const char* phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::kSimPhaseA:
      return "sim.parallel.phase_a";
    case Phase::kSimPhaseB:
      return "sim.parallel.phase_b";
    case Phase::kBatchPrepare:
      return "place.batch.prepare";
    case Phase::kBatchScore:
      return "place.batch.score";
    case Phase::kBatchCommit:
      return "place.batch.commit";
    case Phase::kSweepCell:
      return "sweep.cell";
    case Phase::kCount:
      break;
  }
  return "unknown";
}

PhaseProfiler& PhaseProfiler::instance() {
  static PhaseProfiler profiler;
  return profiler;
}

void PhaseProfiler::reset() noexcept {
  for (Slot& slot : slots_) {
    slot.nanos.store(0, std::memory_order_relaxed);
    slot.calls.store(0, std::memory_order_relaxed);
  }
}

void PhaseProfiler::add(Phase phase, std::uint64_t nanos) noexcept {
  Slot& slot = slots_[static_cast<std::size_t>(phase)];
  slot.nanos.fetch_add(nanos, std::memory_order_relaxed);
  slot.calls.fetch_add(1, std::memory_order_relaxed);
}

std::vector<PhaseEntry> PhaseProfiler::snapshot() const {
  std::vector<PhaseEntry> out;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const std::uint64_t calls = slots_[i].calls.load(std::memory_order_relaxed);
    if (calls == 0) continue;
    PhaseEntry entry;
    entry.phase = phase_name(static_cast<Phase>(i));
    entry.seconds =
        static_cast<double>(slots_[i].nanos.load(std::memory_order_relaxed)) /
        1e9;
    entry.calls = calls;
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace optchain::obs

// Wall-clock phase profiling for the execution engines (src/obs).
//
// The ROADMAP's parallel-engine item is blocked on measurement: "profile
// the phase-B coordinator replay (it is the serial fraction — Amdahl
// ceiling)". PhaseProfiler answers that with scoped wall-clock timers on a
// fixed set of engine phases — the parallel engine's phase-A/phase-B split,
// the batch front-end's prepare/score/commit stages, and SweepRunner cell
// execution — surfaced as the `profile` section of api::RunReport and the
// bench JSON.
//
// Wall-clock data is STRICTLY segregated from simulated-time results
// (determinism rule 9, docs/ARCHITECTURE.md): nothing here ever feeds a
// SimResult, an .otrace record, a golden, or any other deterministic
// artifact. The profiler is globally off by default; a disabled ScopedPhase
// is one relaxed atomic load — cheap enough to leave in the engines' inner
// loops.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace optchain::obs {

/// The instrumented engine phases. Fixed slots (not a name registry) keep
/// the hot-path cost to an indexed atomic add.
enum class Phase : std::uint8_t {
  kSimPhaseA = 0,   ///< parallel engine: workers execute a window
  kSimPhaseB,       ///< parallel engine: coordinator merged replay (serial)
  kBatchPrepare,    ///< batch front-end: drain + TaN registration
  kBatchScore,      ///< batch front-end: parallel gather/score
  kBatchCommit,     ///< batch front-end: sequential argmax + commit
  kSweepCell,       ///< sweep runner: one cell end-to-end
  kCount            ///< slot count, not a phase
};

/// Stable lowercase name of a phase (e.g. "sim.parallel.phase_a").
const char* phase_name(Phase phase) noexcept;

/// One finished profile row: accumulated wall-clock seconds and the number
/// of scoped sections that contributed.
struct PhaseEntry {
  std::string phase;        ///< phase_name() of the slot
  double seconds = 0.0;     ///< accumulated wall-clock seconds
  std::uint64_t calls = 0;  ///< scoped sections accumulated
};

/// Process-global accumulator of wall-clock phase timings. Disabled by
/// default; api::simulate()/place() enable it for the duration of a run
/// when RunSpec::profile is set (the CLI's --profile). Accumulation is
/// thread-safe (per-slot atomics) — workers and the coordinator time their
/// phases concurrently under the sweep pool and the parallel engine.
class PhaseProfiler {
 public:
  /// The process-wide profiler instance.
  static PhaseProfiler& instance();

  /// Turns collection on/off. Scopes opened while disabled record nothing.
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  /// Whether scopes currently record.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Zeroes every slot (typically paired with set_enabled(true)).
  void reset() noexcept;

  /// Adds `nanos` wall-clock nanoseconds to a phase slot. Thread-safe.
  void add(Phase phase, std::uint64_t nanos) noexcept;

  /// Non-empty slots in enum order, converted to seconds.
  std::vector<PhaseEntry> snapshot() const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> nanos{0};
    std::atomic<std::uint64_t> calls{0};
  };

  std::atomic<bool> enabled_{false};
  std::array<Slot, static_cast<std::size_t>(Phase::kCount)> slots_;
};

/// RAII wall-clock timer for one phase. When the global profiler is
/// disabled, construction is a single relaxed load and nothing is timed.
class ScopedPhase {
 public:
  /// Starts timing `phase` if the global profiler is enabled.
  explicit ScopedPhase(Phase phase) noexcept
      : phase_(phase), active_(PhaseProfiler::instance().enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }

  /// Stops the timer and accumulates the elapsed wall-clock into the slot.
  ~ScopedPhase() {
    if (active_) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      PhaseProfiler::instance().add(
          phase_, static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          elapsed)
                          .count()));
    }
  }

  /// Not copyable (a scope times exactly one section).
  ScopedPhase(const ScopedPhase&) = delete;
  /// Not copy-assignable.
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Phase phase_;
  bool active_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace optchain::obs

#include "obs/run_tracer.hpp"

#include <bit>
#include <stdexcept>

#include "txmodel/serialization.hpp"

namespace optchain::obs {
namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("run tracer: " + path + ": " + what);
}

/// FNV-1a 64 (the OPTX checksum, same constants — see trace_format.hpp).
std::uint64_t fnv1a64(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t hash = 14695981039346656037ull;
  for (const std::uint8_t byte : data) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

RunTracer::RunTracer(const std::string& path, RunTracerOptions options)
    : file_(path, std::ios::binary),
      path_(path),
      chunk_capacity_(options.chunk_capacity) {
  if (chunk_capacity_ == 0) fail(path_, "chunk_capacity must be > 0");
  if (!file_) fail(path_, "cannot open for writing");

  std::vector<std::uint8_t> header;
  for (const std::uint8_t byte : kOtraceMagic) header.push_back(byte);
  tx::write_varint(header, kOtraceVersion);
  tx::write_varint(header, chunk_capacity_);
  file_.write(reinterpret_cast<const char*>(header.data()),
              static_cast<std::streamsize>(header.size()));
  if (!file_) fail(path_, "header write failed");
  offset_ = header.size();
}

RunTracer::~RunTracer() {
  if (finished_) return;
  try {
    finish();
  } catch (...) {
    // Destruction must not throw; an unreadable tail is caught by the
    // reader's trailer/checksum validation.
  }
}

void RunTracer::begin_record(TraceRecordType type) {
  if (finished_) fail(path_, "record after finish()");
  payload_.push_back(static_cast<std::uint8_t>(type));
}

void RunTracer::end_record() {
  ++chunk_records_;
  ++total_;
  if (chunk_records_ >= chunk_capacity_) flush_chunk();
}

void RunTracer::write_f64(double value) {
  const auto bits = std::bit_cast<std::uint64_t>(value);
  for (int shift = 0; shift < 64; shift += 8) {
    payload_.push_back(static_cast<std::uint8_t>(bits >> shift));
  }
}

void RunTracer::on_issue(std::uint32_t tx, double time, bool cross) {
  begin_record(TraceRecordType::kIssue);
  tx::write_varint(payload_, tx);
  write_f64(time);
  payload_.push_back(cross ? 1 : 0);
  end_record();
}

void RunTracer::on_commit(std::uint32_t tx, double time, double latency_s) {
  begin_record(TraceRecordType::kCommit);
  tx::write_varint(payload_, tx);
  write_f64(time);
  write_f64(latency_s);
  end_record();
}

void RunTracer::on_abort(std::uint32_t tx, double time) {
  begin_record(TraceRecordType::kAbort);
  tx::write_varint(payload_, tx);
  write_f64(time);
  end_record();
}

void RunTracer::on_queue_sample(double time,
                                std::span<const std::uint64_t> queue_sizes) {
  begin_record(TraceRecordType::kQueueSample);
  write_f64(time);
  tx::write_varint(payload_, queue_sizes.size());
  for (const std::uint64_t size : queue_sizes) {
    tx::write_varint(payload_, size);
  }
  end_record();
}

void RunTracer::on_block_commit(std::uint32_t shard, double time) {
  begin_record(TraceRecordType::kBlock);
  tx::write_varint(payload_, shard);
  write_f64(time);
  end_record();
}

void RunTracer::on_link_sample(double time,
                               std::span<const sim::LinkSample> links) {
  begin_record(TraceRecordType::kLinkSample);
  write_f64(time);
  tx::write_varint(payload_, links.size());
  for (const sim::LinkSample& link : links) {
    tx::write_varint(payload_, link.endpoint);
    write_f64(link.backlog_s);
    tx::write_varint(payload_, link.drops);
  }
  end_record();
}

void RunTracer::on_shard_change(std::uint32_t shard, double time, bool joined,
                                std::uint64_t migrated_txs,
                                std::uint64_t migrated_utxos) {
  begin_record(TraceRecordType::kShardChange);
  tx::write_varint(payload_, shard);
  write_f64(time);
  payload_.push_back(joined ? 1 : 0);
  tx::write_varint(payload_, migrated_txs);
  tx::write_varint(payload_, migrated_utxos);
  end_record();
}

void RunTracer::on_repartition(double time, std::uint64_t migrated_txs,
                               std::uint64_t migrated_utxos,
                               std::uint64_t deferred_txs) {
  begin_record(TraceRecordType::kRepartition);
  write_f64(time);
  tx::write_varint(payload_, migrated_txs);
  tx::write_varint(payload_, migrated_utxos);
  tx::write_varint(payload_, deferred_txs);
  end_record();
}

void RunTracer::flush_chunk() {
  if (chunk_records_ == 0) return;
  OtraceChunkInfo info;
  info.offset = offset_;
  info.first_index = total_ - chunk_records_;
  info.count = chunk_records_;

  // Head (count + size) and tail (checksum) bracket the payload, which is
  // written straight from the accumulation buffer — no per-chunk copy.
  std::vector<std::uint8_t> head;
  tx::write_varint(head, chunk_records_);
  tx::write_varint(head, payload_.size());
  std::vector<std::uint8_t> tail;
  tx::write_varint(tail, fnv1a64(payload_));
  file_.write(reinterpret_cast<const char*>(head.data()),
              static_cast<std::streamsize>(head.size()));
  file_.write(reinterpret_cast<const char*>(payload_.data()),
              static_cast<std::streamsize>(payload_.size()));
  file_.write(reinterpret_cast<const char*>(tail.data()),
              static_cast<std::streamsize>(tail.size()));
  if (!file_) fail(path_, "chunk write failed");

  offset_ += head.size() + payload_.size() + tail.size();
  chunks_.push_back(info);
  payload_.clear();
  chunk_records_ = 0;
}

std::uint64_t RunTracer::finish() {
  if (finished_) return total_;
  flush_chunk();

  const std::uint64_t footer_offset = offset_;
  std::vector<std::uint8_t> footer;
  tx::write_varint(footer, chunks_.size());
  for (const OtraceChunkInfo& chunk : chunks_) {
    tx::write_varint(footer, chunk.offset);
    tx::write_varint(footer, chunk.first_index);
    tx::write_varint(footer, chunk.count);
  }
  tx::write_varint(footer, total_);

  // Fixed-size trailer: u64 LE footer offset + trailer magic, so a reader
  // finds the footer from the file's end without parsing anything else.
  for (int shift = 0; shift < 64; shift += 8) {
    footer.push_back(static_cast<std::uint8_t>(footer_offset >> shift));
  }
  for (const std::uint8_t byte : kOtraceTrailerMagic) footer.push_back(byte);

  file_.write(reinterpret_cast<const char*>(footer.data()),
              static_cast<std::streamsize>(footer.size()));
  file_.close();
  if (!file_) fail(path_, "footer write failed");
  finished_ = true;
  return total_;
}

}  // namespace optchain::obs

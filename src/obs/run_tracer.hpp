// obs::RunTracer — per-run lifecycle tracing as a sim::SimObserver.
//
// Attach one through api::RunSpec::observers (or SimConfig::observers) and
// every observer callback of the run streams into a chunk-indexed .otrace
// container (obs/otrace_format.hpp): per-transaction lifecycle spans
// (issue → commit/abort with latency), per-shard block timelines, queue and
// link samples, churn and re-partition events — O(chunk) memory however
// long the run.
//
//   obs::RunTracer tracer("run.otrace");
//   spec.observers.push_back(&tracer);
//   api::RunReport report = api::simulate(spec, txs);
//   tracer.finish();
//
// Because both engines fire observer callbacks in the exact sequential
// dispatch order (the parallel engine during phase-B replay), the produced
// byte stream is bit-identical at any sim_jobs — determinism rule 9,
// pinned by tests/engine_equivalence_test.cpp. Export with optchain-obs or
// obs::write_chrome_trace (obs/chrome_export.hpp) to open a run in
// ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "obs/otrace_format.hpp"
#include "sim/sim_observer.hpp"

namespace optchain::obs {

/// Knobs of a trace capture.
struct RunTracerOptions {
  /// Nominal records per chunk (flush granularity). Must be > 0.
  std::uint32_t chunk_capacity = kOtraceDefaultChunkCapacity;
};

/// Streams a run's observer callbacks into a .otrace file. The tracer must
/// outlive the run (observers are borrowed) and must be finish()ed before
/// the file is read — the footer index is written on finish().
class RunTracer final : public sim::SimObserver {
 public:
  /// Opens `path` for writing and emits the header. Throws
  /// std::runtime_error on I/O failure or chunk_capacity == 0.
  explicit RunTracer(const std::string& path, RunTracerOptions options = {});

  /// finish()es an unfinished tracer, swallowing errors — call finish()
  /// explicitly to observe them.
  ~RunTracer() override;

  /// Not copyable (owns the output stream and the in-flight chunk).
  RunTracer(const RunTracer&) = delete;
  /// Not copy-assignable.
  RunTracer& operator=(const RunTracer&) = delete;

  /// Records a transaction-issued span open.
  void on_issue(std::uint32_t tx, double time, bool cross) override;
  /// Records a commit span close (with the confirmation latency).
  void on_commit(std::uint32_t tx, double time, double latency_s) override;
  /// Records an abort span close.
  void on_abort(std::uint32_t tx, double time) override;
  /// Records a periodic per-shard queue-size sample.
  void on_queue_sample(double time,
                       std::span<const std::uint64_t> queue_sizes) override;
  /// Records a per-shard block commit.
  void on_block_commit(std::uint32_t shard, double time) override;
  /// Records a fabric link sample (fabric-enabled runs only).
  void on_link_sample(double time,
                      std::span<const sim::LinkSample> links) override;
  /// Records a churn event (shard joined or retired).
  void on_shard_change(std::uint32_t shard, double time, bool joined,
                       std::uint64_t migrated_txs,
                       std::uint64_t migrated_utxos) override;
  /// Records an applied re-partition tick.
  void on_repartition(double time, std::uint64_t migrated_txs,
                      std::uint64_t migrated_utxos,
                      std::uint64_t deferred_txs) override;

  /// Flushes the tail chunk, writes the footer index and trailer, and
  /// closes the file. Returns the total record count. Idempotent;
  /// recording after finish() throws.
  std::uint64_t finish();

  /// Records written so far.
  std::uint64_t total() const noexcept { return total_; }

 private:
  void begin_record(TraceRecordType type);
  void end_record();
  void write_f64(double value);
  void flush_chunk();

  std::ofstream file_;
  std::string path_;
  std::uint32_t chunk_capacity_;
  std::vector<std::uint8_t> payload_;       ///< in-flight chunk payload
  std::uint32_t chunk_records_ = 0;         ///< records in payload_
  std::uint64_t total_ = 0;                 ///< records written overall
  std::vector<OtraceChunkInfo> chunks_;     ///< footer index under way
  std::uint64_t offset_ = 0;                ///< bytes written so far
  bool finished_ = false;
};

}  // namespace optchain::obs

// Shard Scheduler-style account-affinity baseline with load-triggered
// migration (after Król et al., "Shard Scheduler: object placement and
// migration in sharded account-based blockchains", ACM AFT 2021).
//
// Shard Scheduler places each transaction with the shard that already holds
// the objects (accounts) it touches, weighting *recent* activity highest,
// and migrates activity away from a shard once its load share exceeds a
// balance threshold. Mapped onto the TaN/UTXO model:
//
//   - the "objects" a transaction touches are its input transactions
//     (the TaN in-neighborhood Nin(u));
//   - affinity(u, j) = Σ_{v ∈ Nin(u), S(v) = j} w(v), where the most recent
//     parent (highest index — the account's latest writer) carries weight
//     `recency_weight` and every other parent weight 1;
//   - the transaction goes to the affinity argmax over *active* shards
//     (ties → smaller shard, then lower id);
//   - migration trigger: if the winner already holds more than
//     balance_factor × (total / active shards) transactions, the new
//     activity is diverted to the least-loaded active shard instead — the
//     scheduler "migrates" the hot account's future activity;
//   - object-less transactions (coinbase / fresh accounts) start on the
//     least-loaded active shard, Shard Scheduler's new-object rule.
//
// Unlike Greedy this baseline reacts to load imbalance and to shard churn
// (a fresh shard is immediately the least-loaded target; a retired shard is
// skipped), which is exactly what makes it the honest competitor for
// OptChain in the dynamic-workload scenarios.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "placement/placer.hpp"

namespace optchain::placement {

/// Tuning knobs of AffinityPlacer (defaults follow Shard Scheduler's
/// "recent writer dominates, divert past ~25% overload" shape).
struct AffinityConfig {
  /// Weight of the most recent input transaction (>= 1); everything else
  /// weighs 1.
  double recency_weight = 2.0;
  /// Divert to the least-loaded shard once the winner's size exceeds this
  /// multiple of the mean active-shard size.
  double balance_factor = 1.25;
};

class AffinityPlacer final : public Placer {
 public:
  explicit AffinityPlacer(AffinityConfig config = {}) : config_(config) {}

  ShardId choose(const PlacementRequest& request,
                 const ShardAssignment& assignment) override {
    const std::uint32_t k = assignment.k();
    if (request.input_txs.empty()) {
      return assignment.least_loaded();  // new object → emptiest shard
    }

    // Recency-weighted affinity per shard. input_txs is Nin(u) in first-seen
    // order, so the latest writer is the max index, not necessarily the last
    // entry.
    tx::TxIndex latest = request.input_txs.front();
    for (const tx::TxIndex input : request.input_txs) {
      if (input > latest) latest = input;
    }
    affinity_.assign(k, 0.0);
    for (const tx::TxIndex input : request.input_txs) {
      affinity_[assignment.shard_of(input)] +=
          input == latest ? config_.recency_weight : 1.0;
    }

    ShardId best = kUnplaced;
    double best_affinity = 0.0;
    std::uint64_t best_size = 0;
    for (ShardId j = 0; j < k; ++j) {
      if (!assignment.is_active(j)) continue;
      const double affinity = affinity_[j];
      const std::uint64_t size = assignment.size_of(j);
      const bool wins = best == kUnplaced || affinity > best_affinity ||
                        (affinity == best_affinity && size < best_size);
      if (wins) {
        best = j;
        best_affinity = affinity;
        best_size = size;
      }
    }

    // Load-triggered migration: an overloaded winner loses the new activity
    // to the least-loaded shard.
    const double mean_size =
        static_cast<double>(assignment.total()) /
        static_cast<double>(assignment.active_count());
    if (static_cast<double>(best_size) > config_.balance_factor * mean_size &&
        assignment.active_count() > 1) {
      return assignment.least_loaded();
    }
    return best;
  }

  std::string_view name() const noexcept override { return "ShardScheduler"; }

 private:
  AffinityConfig config_;
  std::vector<double> affinity_;  // scratch, reused across choose() calls
};

}  // namespace optchain::placement

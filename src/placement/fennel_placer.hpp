// Fennel-style streaming graph partitioning (Tsourakakis et al., WSDM'14) —
// the cheap *online* baseline for the re-partition experiments
// (sim/repartition.hpp): one pass, O(k) per transaction, no stream length
// replay and no migration, against which the periodic Metis controller's
// migration budget buys its quality.
//
// For an arriving transaction u (a TaN vertex), shard j scores
//
//   score(u, j) = |Nin(u) ∩ S_j| − α·γ·|S_j|^(γ−1)
//
// — the neighbors it would join minus the marginal cost of growing shard j
// under the Fennel objective c(S) = α·Σ_j |S_j|^γ. The paper's standard
// interpolation parameters: γ = 1.5 and α = √k · m / n^1.5, with m the edge
// count and n the vertex count. Both are stream-global quantities; like the
// paper's one-pass setting we use the expected stream length for n (the
// Greedy/Metis convention in this repo) and the edges *seen so far* for m,
// so α tightens as the TaN densifies. A hard capacity cap ν·n/k (ν = 1.1,
// matching the repo-wide (1 + ε) balance convention) keeps the partition
// balanced even under adversarial arrival order; full shards are skipped
// and a fully-capped round falls back to the least-loaded active shard.
//
// Tie-breaking is the lowest shard id (strict > below) — deterministic, and
// consistent with the Greedy baseline's paper-literal first-shard rule.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "placement/placer.hpp"

namespace optchain::placement {

class FennelPlacer final : public Placer {
 public:
  /// `expected_txs` = n in the α and capacity formulas. Pass 0 to derive n
  /// from the running vertex count instead (open-ended streams).
  explicit FennelPlacer(std::uint64_t expected_txs, double gamma = 1.5,
                        double nu = 1.1)
      : expected_txs_(expected_txs), gamma_(gamma), nu_(nu) {}

  ShardId choose(const PlacementRequest& request,
                 const ShardAssignment& assignment) override {
    const std::uint32_t k = assignment.k();
    const std::uint32_t active = assignment.active_count();
    const double n = expected_txs_ != 0
                         ? static_cast<double>(expected_txs_)
                         : static_cast<double>(assignment.total() + 1);
    const double cap =
        nu_ * n / static_cast<double>(active == 0 ? 1 : active);
    const double alpha =
        std::sqrt(static_cast<double>(active)) *
        static_cast<double>(edges_seen_) / (n * std::sqrt(n));

    counts_.assign(k, 0);
    for (const tx::TxIndex input : request.input_txs) {
      ++counts_[assignment.shard_of(input)];
    }

    ShardId best = kUnplaced;
    double best_score = 0.0;
    for (ShardId j = 0; j < k; ++j) {
      if (!assignment.is_active(j)) continue;  // retired by shard churn
      const auto size = static_cast<double>(assignment.size_of(j));
      if (size >= cap) continue;
      const double score = static_cast<double>(counts_[j]) -
                           alpha * gamma_ * std::pow(size, gamma_ - 1.0);
      if (best == kUnplaced || score > best_score) {
        best = j;
        best_score = score;
      }
    }
    return best == kUnplaced ? assignment.least_loaded() : best;
  }

  void notify_placed(const PlacementRequest& request,
                     ShardId /*shard*/) override {
    edges_seen_ += request.input_txs.size();
  }

  std::string_view name() const noexcept override { return "Fennel"; }

 private:
  std::uint64_t expected_txs_;
  double gamma_;
  double nu_;
  std::uint64_t edges_seen_ = 0;  // m: TaN edges committed so far
  std::vector<std::uint64_t> counts_;
};

}  // namespace optchain::placement

// Greedy placement baseline (paper §IV.B).
//
// For an arriving transaction u, the cost of shard j is
// f(u, j) = |Sin(u) \ S_j| — the number of u's input transactions that live
// outside shard j. Greedy places u into the shard minimizing that cost (the
// paper's text says "maximum f(u,j)", an evident typo: maximizing the number
// of inputs *outside* the shard would maximize cross-TX work; the measured
// Greedy numbers in Tables I-II are only reachable with the minimizing
// reading; docs/ARCHITECTURE.md notes the convention).
//
// A capacity cap of (1 + ε)·⌊n/k⌋ transactions per shard (ε = 0.1 in the
// paper) keeps the final partition balanced; full shards are skipped and the
// best non-full shard wins. n must be known up front — like Metis, Greedy as
// specified is stream-length-aware.
//
// Tie-breaking: the paper specifies none, which means the first eligible
// shard wins (kFirstShard, the default here). That detail is load-bearing:
// input-less transactions and diverted chains pile into the lowest-index
// non-full shard, which is what drives the paper's Greedy to ~25-29%
// cross-TX and to the temporal imbalance visible in Fig. 6c. A
// kSmallestShard variant is provided for the ablation benchmarks; it
// markedly improves Greedy and is *not* what the paper measured.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "placement/placer.hpp"

namespace optchain::placement {

enum class GreedyTieBreak : std::uint8_t {
  kFirstShard,     // paper-literal: lowest-index eligible shard
  kSmallestShard,  // ablation: spread ties by current shard size
};

class GreedyPlacer final : public Placer {
 public:
  /// `expected_txs` = n in the capacity formula. Pass 0 for "no cap".
  explicit GreedyPlacer(std::uint64_t expected_txs, double epsilon = 0.1,
                        GreedyTieBreak tie_break = GreedyTieBreak::kFirstShard)
      : expected_txs_(expected_txs),
        epsilon_(epsilon),
        tie_break_(tie_break) {}

  ShardId choose(const PlacementRequest& request,
                 const ShardAssignment& assignment) override {
    const std::uint32_t k = assignment.k();
    const std::uint64_t cap = capacity(k);

    // Count how many input transactions each shard already holds.
    counts_.assign(k, 0);
    for (const tx::TxIndex input : request.input_txs) {
      ++counts_[assignment.shard_of(input)];
    }

    ShardId best = kUnplaced;
    std::uint64_t best_inside = 0;
    std::uint64_t best_size = std::numeric_limits<std::uint64_t>::max();
    for (ShardId j = 0; j < k; ++j) {
      if (!assignment.is_active(j)) continue;  // retired by shard churn
      if (assignment.size_of(j) >= cap) continue;
      const std::uint64_t inside = counts_[j];
      const std::uint64_t size = assignment.size_of(j);
      const bool wins =
          best == kUnplaced || inside > best_inside ||
          (inside == best_inside &&
           tie_break_ == GreedyTieBreak::kSmallestShard && size < best_size);
      if (wins) {
        best = j;
        best_inside = inside;
        best_size = size;
      }
    }
    return best == kUnplaced ? assignment.least_loaded() : best;
  }

  std::string_view name() const noexcept override { return "Greedy"; }

 private:
  std::uint64_t capacity(std::uint32_t k) const noexcept {
    if (expected_txs_ == 0) return std::numeric_limits<std::uint64_t>::max();
    return static_cast<std::uint64_t>(
        (1.0 + epsilon_) *
        static_cast<double>(expected_txs_ / k));
  }

  std::uint64_t expected_txs_;
  double epsilon_;
  GreedyTieBreak tie_break_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace optchain::placement

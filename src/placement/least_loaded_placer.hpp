// Pure load-balancing baseline: always the currently smallest shard.
// Not in the paper's line-up; used in the ablation benchmarks to separate
// "temporal balance only" from OptChain's combined objective.
#pragma once

#include <string_view>

#include "placement/placer.hpp"

namespace optchain::placement {

class LeastLoadedPlacer final : public Placer {
 public:
  ShardId choose(const PlacementRequest& /*request*/,
                 const ShardAssignment& assignment) override {
    return assignment.least_loaded();
  }

  std::string_view name() const noexcept override { return "LeastLoaded"; }
};

}  // namespace optchain::placement

#include "placement/placer.hpp"

namespace optchain::placement {

void Placer::notify_placed(const PlacementRequest& /*request*/,
                           ShardId /*shard*/) {}

void Placer::reserve(std::uint64_t /*expected_txs*/) {}

}  // namespace optchain::placement

#include "placement/placer.hpp"

namespace optchain::placement {

void Placer::notify_placed(const PlacementRequest& /*request*/,
                           ShardId /*shard*/) {}

}  // namespace optchain::placement

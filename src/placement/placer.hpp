// Placement strategy interface.
//
// Every strategy from the paper's evaluation (OptChain, OmniLedger random,
// Greedy, offline Metis) implements Placer. The driving loop is:
//
//   ShardId shard = placer.choose(request, assignment);
//   assignment.record(request.index, shard);
//   placer.notify_placed(request, shard);
//
// choose() must not mutate the assignment; notify_placed() lets stateful
// strategies (OptChain's T2S vectors) finalize their per-transaction state
// after the decision is recorded.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "latency/l2s_model.hpp"
#include "placement/shard_assignment.hpp"
#include "txmodel/transaction.hpp"

namespace optchain::placement {

struct PlacementRequest {
  tx::TxIndex index = tx::kInvalidTx;
  /// Distinct input transactions (the TaN neighborhood Nin(u)); empty for
  /// coinbase.
  std::span<const tx::TxIndex> input_txs;
  /// 64-bit transaction hash (txid truncation); drives random placement.
  /// Usually left 0 with `transaction` set instead — hash() then derives it
  /// on demand, so strategies that never look at it (OptChain, Greedy, ...)
  /// never pay the SHA-256.
  std::uint64_t hash64 = 0;
  /// The transaction being placed, when the caller has it (the pipeline
  /// always sets it). Strategies needing fields beyond the TaN neighborhood
  /// (the txid hash, output counts) read it lazily.
  const tx::Transaction* transaction = nullptr;
  /// Client-observed per-shard timing estimates for the L2S score; empty when
  /// no latency information is available (placement-only experiments).
  std::span<const latency::ShardTiming> timings;

  /// The hash driving random placement: hash64 when set explicitly,
  /// otherwise computed from the transaction.
  std::uint64_t hash() const {
    if (hash64 != 0 || transaction == nullptr) return hash64;
    return transaction->txid().low64();
  }
};

class Placer {
 public:
  virtual ~Placer() = default;

  /// Picks the shard for the arriving transaction.
  virtual ShardId choose(const PlacementRequest& request,
                         const ShardAssignment& assignment) = 0;

  /// Called after the decision has been recorded in the assignment.
  virtual void notify_placed(const PlacementRequest& request, ShardId shard);

  /// Size hint: the stream is expected to carry `expected_txs` transactions.
  /// Stateful strategies pre-size their per-transaction stores (OptChain's
  /// ScorePool); the default does nothing.
  virtual void reserve(std::uint64_t expected_txs);

  virtual std::string_view name() const noexcept = 0;
};

}  // namespace optchain::placement

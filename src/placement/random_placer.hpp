// OmniLedger's default placement: "the hashed value of a transaction is used
// to determine which shards the transaction will be placed into" (§III.C).
// Balances shard sizes in expectation but ignores transaction relationships,
// which is what makes ~94% (4 shards) to ~99.98% (16 shards) of typical
// transactions cross-shard.
#pragma once

#include <string_view>

#include "placement/placer.hpp"

namespace optchain::placement {

class RandomPlacer final : public Placer {
 public:
  ShardId choose(const PlacementRequest& request,
                 const ShardAssignment& assignment) override {
    return static_cast<ShardId>(request.hash() % assignment.k());
  }

  std::string_view name() const noexcept override { return "OmniLedger"; }
};

}  // namespace optchain::placement

// OmniLedger's default placement: "the hashed value of a transaction is used
// to determine which shards the transaction will be placed into" (§III.C).
// Balances shard sizes in expectation but ignores transaction relationships,
// which is what makes ~94% (4 shards) to ~99.98% (16 shards) of typical
// transactions cross-shard.
#pragma once

#include <string_view>

#include "placement/placer.hpp"

namespace optchain::placement {

class RandomPlacer final : public Placer {
 public:
  ShardId choose(const PlacementRequest& request,
                 const ShardAssignment& assignment) override {
    // Hash over the *active* shard set so churn-retired shards never win;
    // nth_active is the identity while every shard is alive.
    const std::uint64_t hash = request.hash();
    if (assignment.all_active()) {
      return static_cast<ShardId>(hash % assignment.k());
    }
    return assignment.nth_active(hash % assignment.active_count());
  }

  std::string_view name() const noexcept override { return "OmniLedger"; }
};

}  // namespace optchain::placement

#include "placement/shard_assignment.hpp"

#include <algorithm>

namespace optchain::placement {

std::vector<ShardId> ShardAssignment::input_shards(
    std::span<const tx::TxIndex> inputs) const {
  std::vector<ShardId> shards;
  input_shards(inputs, shards);
  return shards;
}

void ShardAssignment::input_shards(std::span<const tx::TxIndex> inputs,
                                   std::vector<ShardId>& out) const {
  out.clear();
  out.reserve(inputs.size());
  for (const tx::TxIndex input : inputs) {
    const ShardId s = shard_of(input);
    if (std::find(out.begin(), out.end(), s) == out.end()) {
      out.push_back(s);
    }
  }
}

bool ShardAssignment::is_cross_shard(std::span<const tx::TxIndex> inputs,
                                     ShardId shard) const {
  for (const tx::TxIndex input : inputs) {
    if (shard_of(input) != shard) return true;
  }
  return false;
}

ShardId ShardAssignment::least_loaded() const noexcept {
  const auto it = std::min_element(sizes_.begin(), sizes_.end());
  return static_cast<ShardId>(it - sizes_.begin());
}

}  // namespace optchain::placement

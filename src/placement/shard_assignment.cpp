#include "placement/shard_assignment.hpp"

#include <algorithm>

namespace optchain::placement {

std::vector<ShardId> ShardAssignment::input_shards(
    std::span<const tx::TxIndex> inputs) const {
  std::vector<ShardId> shards;
  input_shards(inputs, shards);
  return shards;
}

void ShardAssignment::input_shards(std::span<const tx::TxIndex> inputs,
                                   std::vector<ShardId>& out) const {
  out.clear();
  out.reserve(inputs.size());
  for (const tx::TxIndex input : inputs) {
    const ShardId s = shard_of(input);
    if (std::find(out.begin(), out.end(), s) == out.end()) {
      out.push_back(s);
    }
  }
}

bool ShardAssignment::is_cross_shard(std::span<const tx::TxIndex> inputs,
                                     ShardId shard) const {
  for (const tx::TxIndex input : inputs) {
    if (shard_of(input) != shard) return true;
  }
  return false;
}

ShardId ShardAssignment::least_loaded() const noexcept {
  ShardId best = kUnplaced;
  std::uint64_t best_size = 0;
  for (ShardId j = 0; j < k(); ++j) {
    if (active_[j] == 0) continue;
    if (best == kUnplaced || sizes_[j] < best_size) {
      best = j;
      best_size = sizes_[j];
    }
  }
  OPTCHAIN_ASSERT(best != kUnplaced);  // at least one shard is always active
  return best;
}

ShardId ShardAssignment::nth_active(std::uint64_t n) const noexcept {
  OPTCHAIN_EXPECTS(n < active_count_);
  if (all_active()) return static_cast<ShardId>(n);
  std::uint64_t seen = 0;
  for (ShardId j = 0; j < k(); ++j) {
    if (active_[j] == 0) continue;
    if (seen++ == n) return j;
  }
  OPTCHAIN_ASSERT(false);
  return kUnplaced;
}

ShardId ShardAssignment::largest_active() const noexcept {
  ShardId best = kUnplaced;
  std::uint64_t best_size = 0;
  for (ShardId j = 0; j < k(); ++j) {
    if (active_[j] == 0) continue;
    if (best == kUnplaced || sizes_[j] > best_size) {
      best = j;
      best_size = sizes_[j];
    }
  }
  OPTCHAIN_ASSERT(best != kUnplaced);
  return best;
}

ShardId ShardAssignment::add_shard() {
  const ShardId id = k();
  sizes_.push_back(0);
  active_.push_back(1);
  ++active_count_;
  return id;
}

std::uint64_t ShardAssignment::retire_shard(ShardId shard, ShardId successor) {
  OPTCHAIN_EXPECTS(shard != successor);
  OPTCHAIN_EXPECTS(is_active(shard) && is_active(successor));
  OPTCHAIN_EXPECTS(active_count_ >= 2);
  const std::uint64_t migrated = sizes_[shard];
  for (ShardId& owner : shard_of_) {
    if (owner == shard) owner = successor;
  }
  sizes_[successor] += migrated;
  sizes_[shard] = 0;
  active_[shard] = 0;
  --active_count_;
  return migrated;
}

}  // namespace optchain::placement

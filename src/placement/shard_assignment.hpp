// Global transaction-to-shard assignment state shared by every placement
// strategy: which shard each past transaction lives in and how large each
// shard is. In paper terms this is the partition S = {S₁, ..., S_k} of the
// TaN node set (§IV.A), updated online as transactions are placed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "txmodel/transaction.hpp"

namespace optchain::placement {

using ShardId = std::uint32_t;
inline constexpr ShardId kUnplaced = static_cast<ShardId>(-1);

class ShardAssignment {
 public:
  explicit ShardAssignment(std::uint32_t k) : sizes_(k, 0) {
    OPTCHAIN_EXPECTS(k >= 1);
  }

  std::uint32_t k() const noexcept {
    return static_cast<std::uint32_t>(sizes_.size());
  }

  /// Records the placement of the next transaction (dense index order).
  void record(tx::TxIndex index, ShardId shard) {
    OPTCHAIN_EXPECTS(index == shard_of_.size());
    OPTCHAIN_EXPECTS(shard < k());
    shard_of_.push_back(shard);
    ++sizes_[shard];
  }

  ShardId shard_of(tx::TxIndex index) const noexcept {
    OPTCHAIN_EXPECTS(index < shard_of_.size());
    return shard_of_[index];
  }

  std::uint64_t size_of(ShardId shard) const noexcept {
    OPTCHAIN_EXPECTS(shard < k());
    return sizes_[shard];
  }

  std::uint64_t total() const noexcept { return shard_of_.size(); }
  const std::vector<std::uint64_t>& sizes() const noexcept { return sizes_; }

  /// Pre-sizes the per-transaction table for an expected stream length.
  void reserve(std::size_t expected_txs) { shard_of_.reserve(expected_txs); }

  /// Distinct shards containing the given (already placed) transactions —
  /// the input-shard set Sin(u). Order is first-seen.
  std::vector<ShardId> input_shards(std::span<const tx::TxIndex> inputs) const;

  /// As above, into a caller-reused buffer (assign semantics): the hot
  /// placement loop calls this once per cross-candidate transaction.
  void input_shards(std::span<const tx::TxIndex> inputs,
                    std::vector<ShardId>& out) const;

  /// A transaction with the given inputs, placed into `shard`, is cross-shard
  /// iff some input lives elsewhere (Sin(u) ≠ {S(u)}; coinbase is never
  /// cross-shard).
  bool is_cross_shard(std::span<const tx::TxIndex> inputs,
                      ShardId shard) const;

  /// Least-loaded shard (lowest id wins ties).
  ShardId least_loaded() const noexcept;

 private:
  std::vector<ShardId> shard_of_;
  std::vector<std::uint64_t> sizes_;
};

}  // namespace optchain::placement

// Global transaction-to-shard assignment state shared by every placement
// strategy: which shard each past transaction lives in and how large each
// shard is. In paper terms this is the partition S = {S₁, ..., S_k} of the
// TaN node set (§IV.A), updated online as transactions are placed.
//
// Shard churn (sim::ShardChurnPlan) extends the partition with an *active
// set*: add_shard() appends a fresh empty shard and retire_shard() removes
// one by bulk-migrating its records to a successor. k() always counts every
// shard that ever existed (retired ids stay valid in shard_of()), while
// active_count()/is_active() describe the shards placement may still target.
// Strategies skip inactive shards; when every shard is active (the no-churn
// case) all of this collapses to the original fixed-k behavior bit-for-bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "txmodel/transaction.hpp"

namespace optchain::placement {

using ShardId = std::uint32_t;
inline constexpr ShardId kUnplaced = static_cast<ShardId>(-1);

class ShardAssignment {
 public:
  explicit ShardAssignment(std::uint32_t k)
      : sizes_(k, 0), active_(k, 1), active_count_(k) {
    OPTCHAIN_EXPECTS(k >= 1);
  }

  std::uint32_t k() const noexcept {
    return static_cast<std::uint32_t>(sizes_.size());
  }

  /// Records the placement of the next transaction (dense index order).
  void record(tx::TxIndex index, ShardId shard) {
    OPTCHAIN_EXPECTS(index == shard_of_.size());
    OPTCHAIN_EXPECTS(shard < k());
    shard_of_.push_back(shard);
    ++sizes_[shard];
  }

  ShardId shard_of(tx::TxIndex index) const noexcept {
    OPTCHAIN_EXPECTS(index < shard_of_.size());
    return shard_of_[index];
  }

  std::uint64_t size_of(ShardId shard) const noexcept {
    OPTCHAIN_EXPECTS(shard < k());
    return sizes_[shard];
  }

  std::uint64_t total() const noexcept { return shard_of_.size(); }
  const std::vector<std::uint64_t>& sizes() const noexcept { return sizes_; }

  /// Pre-sizes the per-transaction table for an expected stream length.
  void reserve(std::size_t expected_txs) { shard_of_.reserve(expected_txs); }

  /// Distinct shards containing the given (already placed) transactions —
  /// the input-shard set Sin(u). Order is first-seen.
  std::vector<ShardId> input_shards(std::span<const tx::TxIndex> inputs) const;

  /// As above, into a caller-reused buffer (assign semantics): the hot
  /// placement loop calls this once per cross-candidate transaction.
  void input_shards(std::span<const tx::TxIndex> inputs,
                    std::vector<ShardId>& out) const;

  /// A transaction with the given inputs, placed into `shard`, is cross-shard
  /// iff some input lives elsewhere (Sin(u) ≠ {S(u)}; coinbase is never
  /// cross-shard).
  bool is_cross_shard(std::span<const tx::TxIndex> inputs,
                      ShardId shard) const;

  /// Least-loaded *active* shard (lowest id wins ties).
  ShardId least_loaded() const noexcept;

  // ----- shard churn (active-set) API ------------------------------------

  /// True when `shard` may still receive placements (never retired).
  bool is_active(ShardId shard) const noexcept {
    OPTCHAIN_EXPECTS(shard < k());
    return active_[shard] != 0;
  }

  /// Number of active shards (k() minus retirements).
  std::uint32_t active_count() const noexcept { return active_count_; }

  /// True when no shard has ever been retired — the fast path every placer
  /// takes in churn-free runs.
  bool all_active() const noexcept { return active_count_ == k(); }

  /// The `n`-th active shard in id order (n < active_count()). Identity when
  /// all shards are active; hash-based placement maps through this so its
  /// modulus always lands on a live shard.
  ShardId nth_active(std::uint64_t n) const noexcept;

  /// Largest active shard (lowest id wins ties) — the churn plan's
  /// kAutoShard retirement target.
  ShardId largest_active() const noexcept;

  /// Appends a fresh, empty, active shard; returns its id (the old k()).
  ShardId add_shard();

  /// Retires `shard`, bulk-migrating every transaction it owns to
  /// `successor` (both must be distinct active shards). Returns the number
  /// of migrated transaction records. O(total()) — churn events are rare.
  std::uint64_t retire_shard(ShardId shard, ShardId successor);

  /// Moves one already-placed transaction to `shard` (which must be active) —
  /// the re-partition controller's single-record migration primitive. Size
  /// counters move with the record; a same-shard move is a no-op.
  void reassign(tx::TxIndex index, ShardId shard) {
    OPTCHAIN_EXPECTS(index < shard_of_.size());
    OPTCHAIN_EXPECTS(shard < k());
    OPTCHAIN_EXPECTS(active_[shard] != 0);
    const ShardId old = shard_of_[index];
    if (old == shard) return;
    OPTCHAIN_EXPECTS(sizes_[old] > 0);
    --sizes_[old];
    ++sizes_[shard];
    shard_of_[index] = shard;
  }

 private:
  std::vector<ShardId> shard_of_;
  std::vector<std::uint64_t> sizes_;
  std::vector<std::uint8_t> active_;  // 1 = placements allowed
  std::uint32_t active_count_ = 0;
};

}  // namespace optchain::placement

// Offline (oracle) placement: replays a precomputed partition — in the paper,
// the Metis k-way solution computed on the *whole* TaN network before the
// stream is run ("we first input the whole TaN network to get its Metis
// solution and then use the resulting partitions to determine S(u)", §V.A).
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "placement/placer.hpp"

namespace optchain::placement {

class StaticPlacer final : public Placer {
 public:
  explicit StaticPlacer(std::vector<std::uint32_t> parts,
                        std::string_view label = "Metis")
      : parts_(std::move(parts)), label_(label) {}

  ShardId choose(const PlacementRequest& request,
                 const ShardAssignment& assignment) override {
    OPTCHAIN_EXPECTS(request.index < parts_.size());
    const ShardId shard = parts_[request.index];
    OPTCHAIN_EXPECTS(shard < assignment.k());
    return shard;
  }

  std::string_view name() const noexcept override { return label_; }

 private:
  std::vector<std::uint32_t> parts_;
  std::string_view label_;
};

}  // namespace optchain::placement

#include "sim/consensus.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace optchain::sim {

ConsensusModel::ConsensusModel(const ConsensusConfig& config,
                               const NetworkModel& network,
                               const Position& leader, Rng& rng,
                               double bandwidth_override_bps)
    : config_(config) {
  OPTCHAIN_EXPECTS(config.committee_size >= 1);
  OPTCHAIN_EXPECTS(config.txs_per_block >= 1);

  // Sample the committee geography: mean leader<->validator round trip.
  // A modest sample is enough — the mean concentrates quickly and the whole
  // committee need not be materialized.
  const std::uint32_t sample =
      std::min<std::uint32_t>(config.committee_size, 64);
  double total_rtt = 0.0;
  for (std::uint32_t i = 0; i < sample; ++i) {
    const Position validator = network.random_position(rng);
    total_rtt += 2.0 * network.propagation_delay(leader, validator);
  }
  committee_rtt_ = total_rtt / sample;
  gossip_depth_ = std::ceil(std::log2(static_cast<double>(
      std::max<std::uint32_t>(2, config.committee_size))));
  // The same expression as NetworkModel::transfer_time, so an override equal
  // to the network bandwidth reproduces the historical double exactly.
  per_block_transfer_s_ =
      bandwidth_override_bps > 0.0
          ? static_cast<double>(config.block_bytes) * 8.0 /
                bandwidth_override_bps
          : network.transfer_time(config.block_bytes);
}

double ConsensusModel::round_duration(std::uint32_t txs_in_block) const {
  OPTCHAIN_EXPECTS(txs_in_block <= config_.txs_per_block);
  const double fill = static_cast<double>(txs_in_block) /
                      static_cast<double>(config_.txs_per_block);
  return config_.prepare_overhead_s + committee_rtt_ * gossip_depth_ +
         per_block_transfer_s_ * fill +
         config_.per_tx_validation_s * txs_in_block;
}

}  // namespace optchain::sim

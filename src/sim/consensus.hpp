// Intra-shard consensus-time model.
//
// The paper runs ~400 validators + leader per shard with a BFT protocol
// (OmniLedger's ByzCoinX). Simulating every gossip message among 400·k
// validators is what OverSim does; here the committee round is abstracted to
// a closed-form duration, keeping per-shard heterogeneity (each shard's
// committee has its own geography, hence its own round-trip time — the
// paper's "with high precision, λ_v⁽¹⁾ ≠ ... ≠ λ_v⁽ᵏ⁾"):
//
//   T(block) = prepare_overhead
//            + committee_rtt · ceil(log2(committee_size))   (tree gossip depth)
//            + block_bytes / bandwidth                       (dissemination)
//            + per_tx_validation · txs_in_block              (signature checks)
//
// This preserves what the experiments measure: block cadence (queueing
// capacity per shard) and its dependence on committee size and block size.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sim/network.hpp"

namespace optchain::sim {

struct ConsensusConfig {
  std::uint32_t committee_size = 400;   // paper: ~400 validators per shard
  double prepare_overhead_s = 0.05;     // leader proposal assembly
  double per_tx_validation_s = 50e-6;   // ECDSA verify throughput ~20k/s
  std::uint32_t txs_per_block = 2000;   // paper: 1 MB block, ~500 B txs
  std::uint64_t block_bytes = 1'000'000;
};

/// Per-shard consensus timing. Construction samples the committee's
/// positions around the shard leader to fix the committee round-trip time.
class ConsensusModel {
 public:
  /// `bandwidth_override_bps` > 0 replaces the network model's bandwidth for
  /// the block-dissemination term — how a link-level fabric (sim/fabric/)
  /// makes consensus pay the shard's access-link rate. 0 (the default)
  /// keeps the historical network-bandwidth term.
  ConsensusModel(const ConsensusConfig& config, const NetworkModel& network,
                 const Position& leader, Rng& rng,
                 double bandwidth_override_bps = 0.0);

  /// Duration of one consensus round over a block carrying `txs_in_block`
  /// transactions (partial blocks transfer proportionally fewer bytes).
  double round_duration(std::uint32_t txs_in_block) const;

  double committee_rtt() const noexcept { return committee_rtt_; }
  const ConsensusConfig& config() const noexcept { return config_; }

 private:
  ConsensusConfig config_;
  double committee_rtt_ = 0.0;
  double gossip_depth_ = 1.0;
  double per_block_transfer_s_ = 0.0;  // full-block serialization time
};

}  // namespace optchain::sim

#include "sim/event_queue.hpp"

#include <utility>

namespace optchain::sim {

void EventQueue::schedule(SimTime at, Action action) {
  OPTCHAIN_EXPECTS(at >= now_);
  heap_.push(Entry{at, next_seq_++, std::move(action)});
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the action must be moved out before pop.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  OPTCHAIN_ASSERT(entry.time >= now_);
  now_ = entry.time;
  entry.action();
  return true;
}

std::uint64_t EventQueue::run_until(SimTime horizon) {
  std::uint64_t executed = 0;
  while (!heap_.empty() && heap_.top().time <= horizon) {
    run_one();
    ++executed;
  }
  return executed;
}

}  // namespace optchain::sim

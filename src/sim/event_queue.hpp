// Deterministic discrete-event core.
//
// Events are typed POD records in a flat binary heap keyed by
// (time, sequence); the sequence number breaks time ties in schedule order,
// so a simulation run is a pure function of its inputs and seed — the
// property every integration test and every paper experiment rely on
// (determinism is tested in tests/sim_test.cpp).
//
// The queue stores *data*, not closures: a 10M-transaction run schedules
// tens of millions of events, and a std::function per event means a heap
// allocation (and an indirect call) per event. An Event is a small tagged
// union instead; the component that owns the queue dispatches on the tag
// (EventHandler::on_event, a switch in Simulation / tree-gossip) with zero
// per-event allocation in steady state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace optchain::sim {

using SimTime = double;  // seconds

/// Every kind of work the simulated system schedules. The payload fields are
/// interpreted per type; unused fields are zero.
enum class EventType : std::uint8_t {
  kTxIssue,       // client issues transaction `tx`
  kTxDeliver,     // same-shard transaction `tx` arrives at `shard`'s mempool
  kLockRequest,   // cross-TX lock request for `tx` arrives at input `shard`
  kProof,         // proof for `tx` from `shard`; flag = accepted
  kUnlockCommit,  // unlock-to-commit for `tx` arrives at output `shard`
  kUnlockAbort,   // unlock-to-abort for `tx` releases locks at `shard`
  kBlockCommit,   // `shard`'s consensus round completes
  kViewChange,    // like kBlockCommit, after a leader fault (view change)
  kQueueSample,   // periodic mempool-size sampling tick
  kGossipHop,     // tree-gossip message at `node`; flag = 0 down / 1 up
  kShardChange,   // scripted shard churn: `tx` = index into the churn plan
};

struct Event {
  EventType type = EventType::kTxIssue;
  std::uint8_t flag = 0;
  std::uint32_t shard = 0;  // shard id, or tree-gossip node id
  std::uint32_t tx = 0;     // transaction index

  static Event tx_issue(std::uint32_t tx) {
    return {EventType::kTxIssue, 0, 0, tx};
  }
  static Event deliver(EventType type, std::uint32_t shard, std::uint32_t tx) {
    return {type, 0, shard, tx};
  }
  static Event proof(std::uint32_t tx, std::uint32_t from_shard,
                     bool accepted) {
    return {EventType::kProof, accepted ? std::uint8_t{1} : std::uint8_t{0},
            from_shard, tx};
  }
  static Event round_complete(std::uint32_t shard, bool view_change) {
    return {view_change ? EventType::kViewChange : EventType::kBlockCommit, 0,
            shard, 0};
  }
  static Event queue_sample() { return {EventType::kQueueSample, 0, 0, 0}; }
  static Event gossip(std::uint32_t node, bool upward) {
    return {EventType::kGossipHop, upward ? std::uint8_t{1} : std::uint8_t{0},
            node, 0};
  }
  static Event shard_change(std::uint32_t plan_index) {
    return {EventType::kShardChange, 0, 0, plan_index};
  }
};

/// Receives popped events; the owner of the queue implements the dispatch
/// switch. Kept separate from EventQueue so shard nodes can schedule events
/// without knowing who dispatches them.
class EventHandler {
 public:
  virtual void on_event(const Event& event) = 0;

 protected:
  ~EventHandler() = default;
};

class EventQueue {
 public:
  /// Schedules `event` at absolute time `at` (must not precede now()).
  void schedule(SimTime at, const Event& event) {
    OPTCHAIN_EXPECTS(at >= now_);
    heap_.push_back(Entry{at, next_seq_++, event});
    if (heap_.size() > 1) sift_up(heap_.size() - 1);
  }

  /// Schedules `event` `delay` seconds from now.
  void schedule_in(SimTime delay, const Event& event) {
    schedule(now_ + delay, event);
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }
  SimTime now() const noexcept { return now_; }

  /// Pre-sizes the heap (steady-state runs then never reallocate it).
  void reserve(std::size_t events) { heap_.reserve(events); }

  /// Pops the earliest event, advances now(), and hands it to `handler`.
  /// Returns false when the queue is empty. Inline (with the sifts) so the
  /// per-event cost is a handful of instructions — and so a `final` handler
  /// devirtualizes the dispatch entirely.
  bool run_one(EventHandler& handler) {
    if (heap_.empty()) return false;
    // Copy out only what outlives the pop (the seq number is dead here).
    const SimTime time = heap_.front().time;
    const Event event = heap_.front().event;
    if (heap_.size() > 1) {
      heap_.front() = heap_.back();
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    OPTCHAIN_ASSERT(time >= now_);
    now_ = time;
    handler.on_event(event);
    return true;
  }

  /// Runs until the queue drains or the next event would exceed `horizon`.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime horizon, EventHandler& handler) {
    std::uint64_t executed = 0;
    while (!heap_.empty() && heap_.front().time <= horizon) {
      run_one(handler);
      ++executed;
    }
    return executed;
  }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Event event;
  };
  static bool earlier(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) noexcept {
    const Entry moved = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!earlier(moved, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = moved;
  }

  void sift_down(std::size_t i) noexcept {
    const std::size_t n = heap_.size();
    const Entry moved = heap_[i];
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
      if (!earlier(heap_[child], moved)) break;
      heap_[i] = heap_[child];
      i = child;
    }
    heap_[i] = moved;
  }

  // Min-heap over (time, seq) in a flat vector: reservable, POD moves only.
  std::vector<Entry> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace optchain::sim

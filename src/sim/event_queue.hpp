// Deterministic discrete-event core.
//
// Events are (time, sequence, action); the sequence number breaks time ties
// in schedule order, so a simulation run is a pure function of its inputs and
// seed — the property every integration test and every paper experiment rely
// on (determinism is tested in tests/sim_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace optchain::sim {

using SimTime = double;  // seconds

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at` (must not precede now()).
  void schedule(SimTime at, Action action);

  /// Schedules `action` `delay` seconds from now.
  void schedule_in(SimTime delay, Action action) {
    schedule(now_ + delay, std::move(action));
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }
  SimTime now() const noexcept { return now_; }

  /// Pops and runs the earliest event; advances now(). Returns false when the
  /// queue is empty.
  bool run_one();

  /// Runs until the queue drains or now() would exceed `horizon`.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime horizon);

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace optchain::sim

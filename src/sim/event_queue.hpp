// Deterministic discrete-event core.
//
// Events are typed POD records in a flat binary heap keyed by
// (time, content, sequence): time ties break on the event's *content*
// (a per-type rank, then the payload fields), with the schedule-order
// sequence number only as the final fallback. A content key instead of pure
// schedule order is what makes the order reproducible across engines — the
// parallel engine (sim/parallel/) runs one queue per shard group and merges
// worker streams by the same key, so both engines execute events in exactly
// the same order even though their per-queue sequence numbers differ. No two
// distinct simultaneous protocol events share a full content key (shard, tx
// and type disambiguate every message class), so the seq fallback never
// decides between engines. Determinism is tested in tests/sim_test.cpp and
// the cross-engine contract in tests/parallel_sim_test.cpp.
//
// The rank orders simultaneous events sensibly: scripted churn first (a
// membership change at time t precedes t's traffic), then re-partition
// ticks, then queue sampling, then client issues, then message/round events.
//
// The queue stores *data*, not closures: a 10M-transaction run schedules
// tens of millions of events, and a std::function per event means a heap
// allocation (and an indirect call) per event. An Event is a small tagged
// union instead; the component that owns the queue dispatches on the tag
// (EventHandler::on_event, a switch in Simulation / tree-gossip) with zero
// per-event allocation in steady state.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace optchain::sim {

using SimTime = double;  // seconds

/// Every kind of work the simulated system schedules. The payload fields are
/// interpreted per type; unused fields are zero.
enum class EventType : std::uint8_t {
  kTxIssue,       // client issues transaction `tx`
  kTxDeliver,     // same-shard transaction `tx` arrives at `shard`'s mempool
  kLockRequest,   // cross-TX lock request for `tx` arrives at input `shard`
  kProof,         // proof for `tx` from `shard`; flag = accepted
  kUnlockCommit,  // unlock-to-commit for `tx` arrives at output `shard`
  kUnlockAbort,   // unlock-to-abort for `tx` releases locks at `shard`
  kBlockCommit,   // `shard`'s consensus round completes
  kViewChange,    // like kBlockCommit, after a leader fault (view change)
  kQueueSample,   // periodic mempool-size sampling tick
  kGossipHop,     // tree-gossip message at `node`; flag = 0 down / 1 up
  kShardChange,   // scripted shard churn: `tx` = index into the churn plan
  kRepartition,   // periodic re-partition tick (see sim/repartition.hpp)
};

struct Event {
  EventType type = EventType::kTxIssue;
  std::uint8_t flag = 0;
  std::uint32_t shard = 0;  // shard id, or tree-gossip node id
  std::uint32_t tx = 0;     // transaction index

  static Event tx_issue(std::uint32_t tx) {
    return {EventType::kTxIssue, 0, 0, tx};
  }
  static Event deliver(EventType type, std::uint32_t shard, std::uint32_t tx) {
    return {type, 0, shard, tx};
  }
  static Event proof(std::uint32_t tx, std::uint32_t from_shard,
                     bool accepted) {
    return {EventType::kProof, accepted ? std::uint8_t{1} : std::uint8_t{0},
            from_shard, tx};
  }
  static Event round_complete(std::uint32_t shard, bool view_change) {
    return {view_change ? EventType::kViewChange : EventType::kBlockCommit, 0,
            shard, 0};
  }
  static Event queue_sample() { return {EventType::kQueueSample, 0, 0, 0}; }
  static Event gossip(std::uint32_t node, bool upward) {
    return {EventType::kGossipHop, upward ? std::uint8_t{1} : std::uint8_t{0},
            node, 0};
  }
  static Event shard_change(std::uint32_t plan_index) {
    return {EventType::kShardChange, 0, 0, plan_index};
  }
  static Event repartition() { return {EventType::kRepartition, 0, 0, 0}; }

  /// Rank of this event among simultaneous events (smaller fires first):
  /// churn < repartition < queue sample < client issue < everything else.
  /// Part of the deterministic tie-break key shared by the sequential and
  /// parallel engines (see the file comment).
  static constexpr std::uint8_t tie_rank(EventType type) noexcept {
    switch (type) {
      case EventType::kShardChange:
        return 0;
      case EventType::kRepartition:
        return 1;
      case EventType::kQueueSample:
        return 2;
      case EventType::kTxIssue:
        return 3;
      default:
        return 4;
    }
  }

  /// Content-key comparison of two simultaneous events: rank, then shard,
  /// tx, flag, and type as the final content discriminators. Returns <0, 0
  /// or >0 like memcmp. Exposed so the parallel engine's record merge orders
  /// cross-queue ties exactly like a single queue would.
  friend constexpr int content_order(const Event& a, const Event& b) noexcept {
    const std::uint8_t ra = Event::tie_rank(a.type);
    const std::uint8_t rb = Event::tie_rank(b.type);
    if (ra != rb) return ra < rb ? -1 : 1;
    if (a.shard != b.shard) return a.shard < b.shard ? -1 : 1;
    if (a.tx != b.tx) return a.tx < b.tx ? -1 : 1;
    if (a.flag != b.flag) return a.flag < b.flag ? -1 : 1;
    if (a.type != b.type) return a.type < b.type ? -1 : 1;
    return 0;
  }
};

/// Heap pre-size for a run expected to stream `expected_txs` transactions
/// (std::nullopt = unknown). The pending-event working set scales with the
/// *in-flight* transaction count, not the stream length, so the hint is an
/// over-bound — capped so a 10M-tx hint doesn't pre-commit tens of MB.
/// SimResult::event_heap_peak reports what a run actually used.
inline std::size_t event_heap_reserve(
    std::optional<std::uint64_t> expected_txs) noexcept {
  constexpr std::size_t kMin = 4096;
  constexpr std::size_t kMax = std::size_t{1} << 18;
  if (!expected_txs.has_value()) return kMin;
  return std::max(kMin, std::min(static_cast<std::size_t>(*expected_txs),
                                 kMax));
}

/// Full cross-engine ordering key of a scheduled event: (time, content).
/// Strict-weak; equal keys (same time, same content) only occur for the
/// *same* logical event, so any per-queue seq fallback is engine-local.
constexpr bool event_key_less(SimTime ta, const Event& ea, SimTime tb,
                              const Event& eb) noexcept {
  if (ta != tb) return ta < tb;
  return content_order(ea, eb) < 0;
}

/// Receives popped events; the owner of the queue implements the dispatch
/// switch. Kept separate from EventQueue so shard nodes can schedule events
/// without knowing who dispatches them.
class EventHandler {
 public:
  virtual void on_event(const Event& event) = 0;

 protected:
  ~EventHandler() = default;
};

class EventQueue {
 public:
  /// Schedules `event` at absolute time `at` (must not precede now()).
  void schedule(SimTime at, const Event& event) {
    OPTCHAIN_EXPECTS(at >= now_);
    heap_.push_back(Entry{at, next_seq_++, event});
    if (heap_.size() > 1) sift_up(heap_.size() - 1);
    if (heap_.size() > peak_pending_) peak_pending_ = heap_.size();
  }

  /// Schedules `event` `delay` seconds from now.
  void schedule_in(SimTime delay, const Event& event) {
    schedule(now_ + delay, event);
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }
  SimTime now() const noexcept { return now_; }

  /// Largest number of events ever pending at once — the heap's true working
  /// set, reported by bench_scale as the engine's memory-shape baseline.
  std::size_t peak_pending() const noexcept { return peak_pending_; }

  /// Time of the earliest pending event (queue must be non-empty).
  SimTime next_time() const noexcept {
    OPTCHAIN_EXPECTS(!heap_.empty());
    return heap_.front().time;
  }
  /// The earliest pending event itself (queue must be non-empty).
  const Event& next_event() const noexcept {
    OPTCHAIN_EXPECTS(!heap_.empty());
    return heap_.front().event;
  }

  /// Advances now() to `at` without running anything (no-op when `at` is in
  /// the past). The parallel engine uses this at churn barriers so work
  /// enqueued into a shard-group queue mid-migration is scheduled from the
  /// churn time, not from the queue's last locally-processed event.
  void advance_to(SimTime at) noexcept {
    if (at > now_) now_ = at;
  }

  /// Removes every pending event matching `pred(event)` and returns them as
  /// (time, event) pairs in unspecified order; the heap invariant is rebuilt
  /// afterwards. Shard churn uses this to move a retiring shard group's
  /// pending events (its in-flight round, late deliveries) to the successor
  /// group's queue — the content tie-break key makes the re-scheduled order
  /// independent of the new queue's sequence numbers.
  template <typename Pred>
  std::vector<std::pair<SimTime, Event>> extract_if(Pred pred) {
    std::vector<std::pair<SimTime, Event>> extracted;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (pred(heap_[i].event)) {
        extracted.emplace_back(heap_[i].time, heap_[i].event);
      } else {
        heap_[kept++] = heap_[i];
      }
    }
    if (!extracted.empty()) {
      heap_.resize(kept);
      for (std::size_t i = kept / 2; i-- > 0;) sift_down(i);
    }
    return extracted;
  }

  /// Pre-sizes the heap (steady-state runs then never reallocate it).
  void reserve(std::size_t events) { heap_.reserve(events); }

  /// Pops the earliest event, advances now(), and hands it to `handler`.
  /// Returns false when the queue is empty. Inline (with the sifts) so the
  /// per-event cost is a handful of instructions — and so a `final` handler
  /// devirtualizes the dispatch entirely.
  bool run_one(EventHandler& handler) {
    if (heap_.empty()) return false;
    // Copy out only what outlives the pop (the seq number is dead here).
    const SimTime time = heap_.front().time;
    const Event event = heap_.front().event;
    if (heap_.size() > 1) {
      heap_.front() = heap_.back();
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    OPTCHAIN_ASSERT(time >= now_);
    now_ = time;
    handler.on_event(event);
    return true;
  }

  /// Runs until the queue drains or the next event would exceed `horizon`.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime horizon, EventHandler& handler) {
    std::uint64_t executed = 0;
    while (!heap_.empty() && heap_.front().time <= horizon) {
      run_one(handler);
      ++executed;
    }
    return executed;
  }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Event event;
  };
  static bool earlier(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    const int content = content_order(a.event, b.event);
    if (content != 0) return content < 0;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) noexcept {
    const Entry moved = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!earlier(moved, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = moved;
  }

  void sift_down(std::size_t i) noexcept {
    const std::size_t n = heap_.size();
    const Entry moved = heap_[i];
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
      if (!earlier(heap_[child], moved)) break;
      heap_[i] = heap_[child];
      i = child;
    }
    heap_[i] = moved;
  }

  // Min-heap over (time, content, seq) in a flat vector: reservable, POD
  // moves only.
  std::vector<Entry> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t peak_pending_ = 0;
};

}  // namespace optchain::sim

#include "sim/fabric/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace optchain::sim {
namespace {

// Salts of the fabric's mix64-derived streams, disjoint from the shard spawn
// stream (0x5a17c0de, sim/shard_spawn.hpp) and the per-shard fault streams.
constexpr std::uint64_t kRegionSalt = 0xfab51C00ULL;
constexpr std::uint64_t kStragglerSalt = 0xfab51C01ULL;
constexpr std::uint64_t kJitterSalt = 0xfab51C02ULL;

/// Uniform [0, 1) from a mixed 64-bit word (the xoshiro uniform01 mapping:
/// top 53 bits).
double u01(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

void FabricConfig::validate() const {
  const auto reject = [](const std::string& what) {
    throw std::invalid_argument("FabricConfig: " + what);
  };
  if (!(link.bandwidth_bps > 0.0)) {
    reject("link.bandwidth_bps must be positive (got " +
           std::to_string(link.bandwidth_bps) + ")");
  }
  if (!enabled) return;
  if (regions == 0) reject("regions must be >= 1");
  if (!(intra_region_latency_s >= 0.0) || !(inter_region_latency_s >= 0.0)) {
    reject("region latencies must be non-negative");
  }
  if (!(max_distance_latency_s >= 0.0)) {
    reject("max_distance_latency_s must be non-negative");
  }
  if (!(max_jitter_s >= 0.0)) reject("max_jitter_s must be non-negative");
  if (!(straggler_fraction >= 0.0 && straggler_fraction <= 1.0)) {
    reject("straggler_fraction must be in [0, 1]");
  }
  if (!(straggler_extra_s >= 0.0)) {
    reject("straggler_extra_s must be non-negative");
  }
  if (link.queue_bytes > 0 && !(retransmit_timeout_s > 0.0)) {
    reject("retransmit_timeout_s must be positive with a finite queue");
  }
}

FabricConfig fabric_preset(std::string_view name) {
  FabricConfig config;
  if (name.empty() || name == "off") return config;
  if (name == "flat") {
    // Degenerate-enabled: the flat operating point expressed as a fabric.
    // Bit-identical to "off" (tests/fabric_test.cpp pins it).
    config.enabled = true;
    return config;
  }
  if (name == "wan") {
    config.enabled = true;
    config.regions = 4;
    config.intra_region_latency_s = 0.030;
    config.inter_region_latency_s = 0.180;
    config.max_jitter_s = 0.010;
    config.link.queue_bytes = 256 * 1024;
    return config;
  }
  if (name == "congested") {
    config.enabled = true;
    config.regions = 4;
    config.intra_region_latency_s = 0.030;
    config.inter_region_latency_s = 0.180;
    config.max_jitter_s = 0.010;
    config.link.bandwidth_bps = 5e6;
    config.link.queue_bytes = 64 * 1024;
    config.straggler_fraction = 0.10;
    config.straggler_extra_s = 0.100;
    return config;
  }
  throw std::invalid_argument("unknown fabric preset: " + std::string(name) +
                              " (try off|flat|wan|congested)");
}

LinkFabric::LinkFabric(const FabricConfig& config, const NetworkModel& flat,
                       std::uint64_t sim_seed)
    : config_(config),
      flat_(&flat),
      sim_seed_(sim_seed),
      intra_(NetworkConfig{config.intra_region_latency_s,
                           config.max_distance_latency_s,
                           config.link.bandwidth_bps}),
      inter_(NetworkConfig{config.inter_region_latency_s,
                           config.max_distance_latency_s,
                           config.link.bandwidth_bps}) {
  config_.validate();
}

std::uint32_t LinkFabric::add_endpoint() {
  const auto id = static_cast<std::uint32_t>(endpoints_.size());
  endpoints_.push_back(Endpoint{});
  return id;
}

double LinkFabric::min_delay() const noexcept {
  return config_.min_delay(flat_->config());
}

std::uint32_t LinkFabric::region_of(std::uint32_t ep) const noexcept {
  if (config_.regions <= 1) return 0;
  return static_cast<std::uint32_t>(
      mix64(sim_seed_ ^ mix64(kRegionSalt + ep)) % config_.regions);
}

bool LinkFabric::is_straggler(std::uint32_t ep) const noexcept {
  if (config_.straggler_fraction <= 0.0) return false;
  return u01(mix64(sim_seed_ ^ mix64(kStragglerSalt + ep))) <
         config_.straggler_fraction;
}

double LinkFabric::propagation_delay(std::uint32_t from, std::uint32_t to,
                                     const Position& from_pos,
                                     const Position& to_pos) const {
  if (!config_.enabled) return flat_->propagation_delay(from_pos, to_pos);
  const NetworkModel& tier =
      region_of(from) == region_of(to) ? intra_ : inter_;
  double delay = tier.propagation_delay(from_pos, to_pos);
  // Straggler extras join after the tier term; both are 0.0 in the
  // degenerate flat configuration, and x + 0.0 == x exactly.
  if (is_straggler(from)) delay += config_.straggler_extra_s;
  if (is_straggler(to)) delay += config_.straggler_extra_s;
  return delay;
}

double LinkFabric::jitter(std::uint32_t from, std::uint32_t to) {
  if (config_.max_jitter_s <= 0.0) return 0.0;
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(from) << 32) | to;
  const std::uint64_t stream = mix64(sim_seed_ ^ mix64(kJitterSalt + pair));
  const std::uint64_t counter = jitter_counters_[pair]++;
  return config_.max_jitter_s * u01(mix64(stream + counter));
}

double LinkFabric::message_delay(double now, std::uint32_t from,
                                 std::uint32_t to, const Position& from_pos,
                                 const Position& to_pos, std::uint64_t bytes) {
  if (!config_.enabled) return flat_->message_delay(from_pos, to_pos, bytes);
  OPTCHAIN_ASSERT(from < endpoints_.size() && to < endpoints_.size());
  ++stats_.messages;
  stats_.bytes += bytes;

  const NetworkModel& tier =
      region_of(from) == region_of(to) ? intra_ : inter_;
  double delay;
  if (config_.link.queue_bytes == 0) {
    // Unconstrained uplink: propagation + serialization, the literal
    // NetworkModel expression — what keeps the degenerate configuration
    // bit-identical to the flat path.
    delay = tier.message_delay(from_pos, to_pos, bytes);
  } else {
    Endpoint& src = endpoints_[from];
    const double ser = tier.transfer_time(bytes);
    // Tail drop + retransmit: each timeout drains timeout × bw / 8 bytes of
    // the (fixed) backlog ahead of us, so the loop always terminates; a
    // send finding an empty queue is always admitted.
    double depart = now;
    while (true) {
      const double wait =
          src.busy_until > depart ? src.busy_until - depart : 0.0;
      const double backlog_bytes =
          wait * config_.link.bandwidth_bps / 8.0;
      if (backlog_bytes > static_cast<double>(config_.link.queue_bytes)) {
        ++stats_.drops;
        ++src.drops;
        depart += config_.retransmit_timeout_s;
        continue;
      }
      stats_.peak_backlog_s = std::max(stats_.peak_backlog_s, wait);
      src.busy_until = depart + wait + ser;
      depart += wait;
      break;
    }
    const double queued = depart - now;  // retransmit waits + queueing
    stats_.queue_delay_s += queued;
    delay = queued + ser + tier.propagation_delay(from_pos, to_pos);
  }
  if (is_straggler(from)) delay += config_.straggler_extra_s;
  if (is_straggler(to)) delay += config_.straggler_extra_s;
  return delay + jitter(from, to);
}

void LinkFabric::sample_links(double now,
                              std::vector<LinkSample>& out) const {
  out.clear();
  out.reserve(endpoints_.size());
  for (std::uint32_t ep = 0; ep < endpoints_.size(); ++ep) {
    const Endpoint& endpoint = endpoints_[ep];
    LinkSample sample;
    sample.endpoint = ep;
    sample.backlog_s =
        endpoint.busy_until > now ? endpoint.busy_until - now : 0.0;
    sample.drops = endpoint.drops;
    out.push_back(sample);
  }
}

void LinkFabric::reset_state() {
  for (Endpoint& endpoint : endpoints_) endpoint = Endpoint{};
  jitter_counters_.clear();
  stats_ = Stats{};
}

}  // namespace optchain::sim

// LinkFabric — the runtime behind FabricConfig: per-endpoint access links
// with busy-until serialization state, geo-region propagation tiers,
// deterministic jitter streams and tail-drop/retransmit accounting.
//
// Model. Every protocol participant is an *endpoint* (the simulators use
// endpoint 0 for the client and 1 + s for shard s's leader; the tree-gossip
// validator builds one endpoint per tree node). Each endpoint owns an uplink
// with `LinkConfig::bandwidth_bps` of serialization capacity and, when
// `queue_bytes > 0`, a finite FIFO measured by the bytes still waiting to
// serialize. Delivering a message of b bytes sent at time t:
//
//   wait  = max(0, uplink busy-until − t)         (queueing behind earlier
//                                                  sends on the same uplink)
//   drop  if wait × bandwidth / 8 > queue_bytes:  tail drop; retry the whole
//                                                  computation at
//                                                  t + retransmit_timeout_s
//   ser   = b × 8 / bandwidth                     (serialization)
//   prop  = region-tier base + distance term      (+ straggler extras)
//   jit   = uniform draw from the directed pair's counter stream
//   delay = wait + ser + prop + jit               (and busy-until ← t + wait
//                                                  + ser)
//
// Determinism. All mutable state (busy-until, jitter counters, counters in
// Stats) advances only inside message_delay(), and both engines call
// message_delay() in exactly the sequential dispatch order — the parallel
// engine routes every fabric send through its coordinator's merged phase-B
// replay — so a fabric run is bit-identical at any sim_jobs. Region and
// straggler membership are pure functions of (sim_seed, endpoint id), never
// of spawn order. propagation_delay() is stateless and draw-free: the
// placement pipeline's timing view reads it without perturbing delivery.
//
// Flat identity. A disabled fabric delegates wholly to the borrowed flat
// NetworkModel. An *enabled* degenerate fabric (one region at the flat
// operating point, queue_bytes == 0, zero jitter, no stragglers) computes
// its delays through an internal NetworkModel configured with the tier
// latency — the same code path, hence bit-identical doubles; adding the
// zero-valued jitter/straggler terms is exact in IEEE arithmetic.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/fabric/fabric_config.hpp"
#include "sim/network.hpp"
#include "sim/sim_observer.hpp"

namespace optchain::sim {

/// The link-level fabric runtime; see the file comment for the model and the
/// determinism contract.
class LinkFabric {
 public:
  /// Cumulative delivery accounting, copied into SimResult at run end.
  struct Stats {
    std::uint64_t messages = 0;     ///< deliveries (successful sends)
    std::uint64_t bytes = 0;        ///< payload bytes delivered
    std::uint64_t drops = 0;        ///< tail drops (each later retransmitted)
    double queue_delay_s = 0.0;     ///< total time spent queued (drops incl.)
    double peak_backlog_s = 0.0;    ///< deepest uplink backlog ever, seconds
  };

  /// `flat` is the borrowed flat model (delegation target when disabled; it
  /// must outlive the fabric). `sim_seed` seeds region/straggler membership
  /// and the per-pair jitter streams. Throws std::invalid_argument on an
  /// invalid config (FabricConfig::validate()).
  LinkFabric(const FabricConfig& config, const NetworkModel& flat,
             std::uint64_t sim_seed);

  /// Registers the next endpoint; ids are dense from 0 in call order.
  std::uint32_t add_endpoint();

  bool enabled() const noexcept { return config_.enabled; }
  std::uint32_t num_endpoints() const noexcept {
    return static_cast<std::uint32_t>(endpoints_.size());
  }

  /// The conservative lookahead bound (FabricConfig::min_delay): no
  /// message_delay() result is ever smaller.
  double min_delay() const noexcept;

  /// Stateful delivery delay of `bytes` from endpoint `from` (at position
  /// `from_pos`) to endpoint `to` (at `to_pos`), sent at time `now`.
  /// Advances the sender's uplink and the pair's jitter stream — call in
  /// dispatch order only.
  double message_delay(double now, std::uint32_t from, std::uint32_t to,
                       const Position& from_pos, const Position& to_pos,
                       std::uint64_t bytes);

  /// Stateless one-way propagation between two endpoints: region-tier base +
  /// distance term + straggler extras. No jitter, no queueing, no draws —
  /// the client's timing view (placement L2S term) reads this.
  double propagation_delay(std::uint32_t from, std::uint32_t to,
                           const Position& from_pos,
                           const Position& to_pos) const;

  /// Region of endpoint `ep`: mix64-derived from (sim_seed, ep), uniform
  /// over [0, regions).
  std::uint32_t region_of(std::uint32_t ep) const noexcept;
  /// Straggler membership of endpoint `ep`, same derivation scheme.
  bool is_straggler(std::uint32_t ep) const noexcept;

  const Stats& stats() const noexcept { return stats_; }

  /// Appends one LinkSample per endpoint (uplink backlog at `now`,
  /// cumulative drops) — the payload of SimObserver::on_link_sample.
  void sample_links(double now, std::vector<LinkSample>& out) const;

  /// Clears all per-run state (busy-until, jitter counters, stats); endpoint
  /// registrations survive. Engines call this at the top of run().
  void reset_state();

 private:
  struct Endpoint {
    double busy_until = 0.0;   ///< uplink serialization frontier
    std::uint64_t drops = 0;   ///< cumulative tail drops on this uplink
  };

  double jitter(std::uint32_t from, std::uint32_t to);

  FabricConfig config_;
  const NetworkModel* flat_;
  std::uint64_t sim_seed_;
  /// Tier models: the same NetworkModel arithmetic as the flat path, with
  /// the tier latency as base — what makes the degenerate fabric
  /// bit-identical to the flat model (see the file comment).
  NetworkModel intra_;
  NetworkModel inter_;
  std::vector<Endpoint> endpoints_;
  /// Per-directed-pair jitter stream positions, keyed (from << 32) | to.
  std::unordered_map<std::uint64_t, std::uint64_t> jitter_counters_;
  Stats stats_;
};

}  // namespace optchain::sim

// FabricConfig — declarative description of a link-level network fabric.
//
// The paper's evaluation (§V.A) models the network as one flat latency plus
// a single shared bandwidth figure; sim::NetworkModel is exactly that. The
// fabric generalizes the model to geo-region topologies (every endpoint is
// assigned a region; intra- and inter-region links carry different base
// latencies), per-access-link bandwidth with a finite FIFO queue (concurrent
// senders genuinely congest a shared uplink; overflow is tail-dropped and
// retransmitted), bounded per-link jitter, and optional straggler endpoints.
// The degenerate configuration — one region whose tier latency equals the
// flat base latency, an unconstrained (queue_bytes == 0) link at the flat
// bandwidth, zero jitter, no stragglers — is bit-identical to NetworkModel,
// and `enabled == false` (the default) bypasses the fabric entirely, so
// every historical golden is reproduced untouched.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/network.hpp"

namespace optchain::sim {

/// Per-access-link properties: the bandwidth cap of an endpoint's uplink and
/// the byte capacity of its FIFO send queue.
struct LinkConfig {
  /// Serialization bandwidth of every access link (bits per second). Must be
  /// positive; FabricConfig::validate() rejects anything else.
  double bandwidth_bps = 20e6;
  /// FIFO queue capacity in bytes. 0 = unconstrained: serialization is paid
  /// but concurrent sends never queue behind each other (the stateless
  /// NetworkModel behaviour, kept for the bit-identical flat configuration).
  /// > 0 = real contention: a send finding more than `queue_bytes` of
  /// earlier traffic still waiting is tail-dropped and retransmitted after
  /// FabricConfig::retransmit_timeout_s.
  std::uint64_t queue_bytes = 0;
};

/// The whole fabric description. Plain aggregate — fill the fields (or start
/// from fabric_preset()) and hand it to api::RunSpec::fabric /
/// sim::SimConfig::fabric. See the file comment for the model.
struct FabricConfig {
  /// Master switch. false (the default) routes every delivery through the
  /// flat sim::NetworkModel unchanged — the fabric adds no state, no extra
  /// draws, and no new observer callbacks.
  bool enabled = false;

  /// Number of geo-regions. Every endpoint (the client and each shard
  /// leader) is assigned a region as a pure function of (sim_seed,
  /// endpoint id) — spawn-order independent, identical in both engines.
  std::uint32_t regions = 1;
  /// Base one-way latency of links within one region (seconds).
  double intra_region_latency_s = 0.100;
  /// Base one-way latency of links crossing regions (seconds). Unused when
  /// regions == 1.
  double inter_region_latency_s = 0.150;
  /// Distance-dependent extra latency, corner-to-corner on the unit square —
  /// the same normalization as NetworkConfig::max_distance_latency_s.
  double max_distance_latency_s = 0.050;

  /// Upper bound of the uniform per-message jitter (seconds). Each directed
  /// endpoint pair owns a counter-based RNG stream seeded from (sim_seed,
  /// pair), advanced once per delivered message in dispatch order — which is
  /// the coordinator's merged replay order, so jitter draws are identical at
  /// every sim_jobs value. 0 = no jitter (and no draws).
  double max_jitter_s = 0.0;

  /// Access-link bandwidth and queueing (see LinkConfig).
  LinkConfig link;

  /// Fraction of endpoints designated stragglers — again a pure function of
  /// (sim_seed, endpoint id). Every message touching a straggler endpoint
  /// pays `straggler_extra_s` more propagation per straggler end.
  double straggler_fraction = 0.0;
  /// Extra one-way propagation paid per straggler endpoint on a link.
  double straggler_extra_s = 0.0;

  /// Retransmit back-off after a tail drop (seconds). A dropped send retries
  /// from `send time + retransmit_timeout_s`; each wait drains
  /// timeout × bandwidth / 8 bytes of backlog, so delivery always
  /// terminates. Must be positive when link.queue_bytes > 0.
  double retransmit_timeout_s = 1.0;

  /// The fabric's minimum possible delivery delay — the conservative
  /// parallel engine's lookahead window. Every delivery pays at least the
  /// smallest region-tier base latency (jitter, queueing, serialization and
  /// straggler extras are all non-negative); a disabled fabric falls back to
  /// the flat model's base latency.
  double min_delay(const NetworkConfig& flat) const noexcept {
    if (!enabled) return flat.base_latency_s;
    return regions >= 2 && inter_region_latency_s < intra_region_latency_s
               ? inter_region_latency_s
               : intra_region_latency_s;
  }

  /// Rejects non-physical configurations with std::invalid_argument:
  /// non-positive (or NaN) link bandwidth, zero regions, negative latency /
  /// jitter / straggler terms, a straggler fraction outside [0, 1], or a
  /// finite queue without a positive retransmit timeout. The flat
  /// NetworkModel applies the same bandwidth check at construction.
  void validate() const;
};

/// Named fabric shapes, the CLI/bench vocabulary:
///   "off" (or "")  disabled fabric — the flat NetworkModel path.
///   "flat"         enabled but degenerate: one region at the flat 100 ms /
///                  50 ms / 20 Mbps operating point, unconstrained queue,
///                  zero jitter — bit-identical to "off" (pinned in
///                  tests/fabric_test.cpp).
///   "wan"          4 regions, 30 ms intra / 180 ms inter, 20 Mbps uplinks
///                  with 256 KiB queues, 10 ms jitter.
///   "congested"    4 regions, 30 ms intra / 180 ms inter, 5 Mbps uplinks
///                  with 64 KiB queues, 10 ms jitter, 10 % stragglers
///                  +100 ms.
/// Throws std::invalid_argument for any other name.
FabricConfig fabric_preset(std::string_view name);

}  // namespace optchain::sim

#include "sim/network.hpp"

#include <cmath>

namespace optchain::sim {

double NetworkModel::propagation_delay(const Position& a,
                                       const Position& b) const {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double distance = std::sqrt(dx * dx + dy * dy);
  // Unit square diagonal is sqrt(2); normalize so the farthest pair pays
  // exactly max_distance_latency_s on top of the base.
  constexpr double kDiagonal = 1.4142135623730951;
  return config_.base_latency_s +
         config_.max_distance_latency_s * (distance / kDiagonal);
}

double NetworkModel::message_delay(const Position& a, const Position& b,
                                   std::uint64_t bytes) const {
  return propagation_delay(a, b) + transfer_time(bytes);
}

}  // namespace optchain::sim

// Network model, matching the paper's simulation configuration (§V.A):
// every link carries a 100 ms base latency plus a distance-dependent term
// ("the distance between nodes affects the communication latency"), and
// 20 Mbps of bandwidth determines the serialization delay of block-sized
// messages. Shard leaders, validators, and the client sit at random
// coordinates on a unit square.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace optchain::sim {

struct NetworkConfig {
  double base_latency_s = 0.100;      // paper: 100 ms on all links
  double max_distance_latency_s = 0.050;  // corner-to-corner extra latency
  double bandwidth_bps = 20e6;        // paper: 20 Mbps
};

struct Position {
  double x = 0.0;
  double y = 0.0;
};

class NetworkModel {
 public:
  /// Throws std::invalid_argument when bandwidth_bps is not positive (or is
  /// NaN) — a zero/negative bandwidth would otherwise yield silent inf/nan
  /// transfer times that poison every downstream delay sum.
  explicit NetworkModel(NetworkConfig config = {}) : config_(config) {
    if (!(config_.bandwidth_bps > 0.0)) {
      throw std::invalid_argument(
          "NetworkConfig: bandwidth_bps must be positive (got " +
          std::to_string(config_.bandwidth_bps) + ")");
    }
  }

  /// Samples a uniform position on the unit square.
  Position random_position(Rng& rng) const {
    return {rng.uniform01(), rng.uniform01()};
  }

  /// One-way propagation latency between two positions (no payload).
  double propagation_delay(const Position& a, const Position& b) const;

  /// One-way delivery time of a message of `bytes` between two positions:
  /// propagation + serialization at the configured bandwidth.
  double message_delay(const Position& a, const Position& b,
                       std::uint64_t bytes) const;

  /// Serialization time alone (used by the consensus model for block
  /// dissemination).
  double transfer_time(std::uint64_t bytes) const {
    return static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
  }

  const NetworkConfig& config() const noexcept { return config_; }

 private:
  NetworkConfig config_;
};

}  // namespace optchain::sim

// Timestamped SPSC mailbox — the only cross-shard message channel of the
// parallel engine.
//
// The conservative engine (sim/parallel/parallel_simulation.hpp) alternates
// two strictly non-overlapping phases: workers execute shard-local events
// inside the current lookahead window, then the coordinator replays their
// record streams and runs the client side. Every message the client side
// sends to a shard group — transaction deliveries, lock requests, unlocks —
// is deposited here with its absolute arrival time during the coordinator
// phase, and flushed into the destination worker's EventQueue before the
// next worker phase starts.
//
// The lookahead rule makes this safe without per-message synchronization: a
// message sent at coordinator time t arrives at t + message_delay ≥ t +
// base_latency, and the window end is capped at window_start + base_latency,
// so every deposit lands at-or-after the window end — never inside a window
// a worker is currently executing. Single producer (the coordinator, in its
// phase), single consumer (the coordinator again, at the flush point between
// phases); the phase barrier's mutex hand-off provides the happens-before
// edges, so the buffer itself needs no atomics.
#pragma once

#include <utility>
#include <vector>

#include "sim/event_queue.hpp"

namespace optchain::sim::parallel {

/// Deposit buffer of (arrival time, event) pairs bound for one worker's
/// event queue. Synchronized purely by the engine's phase barrier (see the
/// file comment); not safe for concurrent access on its own.
class Mailbox {
 public:
  /// Deposits `event` for delivery at absolute time `at`.
  void deposit(SimTime at, const Event& event) {
    entries_.emplace_back(at, event);
  }

  bool empty() const noexcept { return entries_.empty(); }

  /// Moves every deposit into `queue` (coordinator-side, between phases).
  void flush_into(EventQueue& queue) {
    for (const auto& [at, event] : entries_) queue.schedule(at, event);
    entries_.clear();
  }

 private:
  std::vector<std::pair<SimTime, Event>> entries_;
};

}  // namespace optchain::sim::parallel

// Parallel engine implementation. Protocol semantics are duplicated
// statement-for-statement from sim/simulation.cpp (the source of truth);
// comments here cover only what the split adds — ownership, the lookahead
// window, record replay and churn-barrier migration. When simulation.cpp
// changes protocol behavior, the twin code paths here must follow; the
// golden and parallel bit-identity suites catch any drift.
#include "sim/parallel/parallel_simulation.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/assert.hpp"
#include "obs/phase_profiler.hpp"
#include "sim/shard_spawn.hpp"
#include "workload/dynamic_profile.hpp"

namespace optchain::sim::parallel {

namespace {
constexpr SimTime kNever = std::numeric_limits<SimTime>::infinity();
}  // namespace

ParallelSimulation::ParallelSimulation(SimConfig config, std::uint32_t jobs)
    : config_(std::move(config)),
      jobs_(std::max<std::uint32_t>(jobs, 1)),
      lookahead_(config_.fabric.min_delay(config_.network)),
      network_(config_.network),
      fabric_(config_.fabric, network_, config_.seed),
      rng_(config_.seed),
      result_{} {
  OPTCHAIN_EXPECTS(config_.num_shards >= 1);
  OPTCHAIN_EXPECTS(config_.tx_rate_tps > 0.0);
  // The lookahead IS the fabric's minimum delivery delay; without one the
  // window degenerates and the engine cannot run ahead (api::simulate falls
  // back to the sequential engine in that case).
  OPTCHAIN_EXPECTS(lookahead_ > 0.0);
  for (const ShardChurnEvent& change : config_.churn.events) {
    OPTCHAIN_EXPECTS(change.time_s >= 0.0);
  }

  // Same draw order as the sequential constructor: client first (the one
  // shared-Rng draw), then each shard from its private spawn stream.
  client_position_ = network_.random_position(rng_);
  OPTCHAIN_ASSERT(fabric_.add_endpoint() == kClientEndpoint);
  workers_ = std::vector<Worker>(jobs_);  // fixed: nodes reference queues
  shards_.reserve(config_.num_shards);
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) spawn_shard_node();
}

ParallelSimulation::~ParallelSimulation() {
  if (!threads_.empty()) stop_workers();
}

void ParallelSimulation::spawn_shard_node() {
  const auto s = static_cast<std::uint32_t>(shards_.size());
  SpawnedShard spawned = spawn_shard(
      config_.consensus, network_, config_.seed, s,
      config_.fabric.enabled ? config_.fabric.link.bandwidth_bps : 0.0);
  const Position leader = spawned.leader_position;
  ShardFaults faults;
  faults.slowdown =
      s < config_.shard_slowdown.size() ? config_.shard_slowdown[s] : 1.0;
  faults.leader_fault_rate = config_.leader_fault_rate;
  faults.view_change_penalty_s = config_.view_change_penalty_s;
  faults.seed = config_.seed;
  const std::uint32_t w = s % jobs_;
  shards_.push_back(std::make_unique<ShardNode>(
      s, leader, std::move(spawned.model), workers_[w].queue,
      [this](std::uint32_t shard, const QueueItem& item, SimTime time) {
        worker_item_committed(shard, item, time);
      },
      faults));
  shard_to_worker_.push_back(w);
  partitions_.emplace_back();
  OPTCHAIN_ASSERT(fabric_.add_endpoint() == endpoint_of(s));
  ShardMirror mirror;
  // Cached client↔leader round-trip: fabric propagation is stateless and a
  // pure function of immutable positions and endpoint ids, so the cached
  // double is bit-identical to the sequential engine's per-issue
  // recomputation.
  mirror.mean_comm =
      2.0 * fabric_.propagation_delay(kClientEndpoint, endpoint_of(s),
                                      client_position_, leader);
  mirror.last_round = shards_.back()->last_round_duration();
  mirror.queue_size = 0;
  mirror_.push_back(mirror);
}

SimResult ParallelSimulation::run(
    std::span<const tx::Transaction> transactions,
    api::PlacementPipeline& pipeline) {
  workload::SpanTxSource source(transactions);
  return run(source, pipeline);
}

SimResult ParallelSimulation::run(workload::TxSource& source,
                                  api::PlacementPipeline& pipeline) {
  OPTCHAIN_EXPECTS(pipeline.k() == config_.num_shards);
  OPTCHAIN_EXPECTS(pipeline.total() == 0);
  OPTCHAIN_EXPECTS(pipeline.dag().num_nodes() == 0);

  source_ = &source;
  pipeline_ = &pipeline;
  assignment_ = &pipeline.assignment();
  issued_ = 0;
  outstanding_ = 0;
  committed_ = 0;
  blocks_replayed_ = 0;
  now_ = 0.0;
  inflight_.clear();
  shadow_spent_.clear();
  for (LedgerPartition& partition : partitions_) partition.clear();
  successor_of_.resize(shards_.size());
  for (std::uint32_t s = 0; s < successor_of_.size(); ++s) {
    successor_of_[s] = s;
  }
  utxo_records_.assign(churn_enabled() ? shards_.size() : 0, 0);
  live_outputs_.clear();
  repartitioner_.reset();
  next_repartition_time_ = kNeverRepartition;
  if (repartition_enabled()) {
    repartitioner_ =
        std::make_unique<RepartitionController>(config_.repartition);
  }

  result_ = SimResult{};
  result_.placer_name = std::string(pipeline.method_name());
  fabric_.reset_state();

  metrics_ = stats::MetricsObserver(config_.commit_window_s);
  observers_.clear();
  observers_.push_back(&metrics_);
  for (SimObserver* observer : config_.observers) {
    OPTCHAIN_EXPECTS(observer != nullptr);
    observers_.push_back(observer);
  }

  const auto hint = source.size_hint();
  if (hint.has_value()) {
    pipeline.reserve(*hint);
    if (track_utxos()) {
      shadow_spent_.reserve(static_cast<std::size_t>(*hint * 2));
    }
    if (repartition_enabled()) {
      live_outputs_.reserve(static_cast<std::size_t>(*hint));
    }
  }
  inflight_.reserve(1024);
  // Satellite of the reserve contract: the coordinator heap and every
  // per-group heap are pre-sized from the expected-txs hint, so no heap
  // reallocates in steady state. Worker heaps split the hint — each group
  // sees roughly 1/jobs of the shard-addressed traffic.
  events_.reserve(event_heap_reserve(hint));
  const std::size_t per_worker = event_heap_reserve(
      hint.has_value() ? std::optional<std::uint64_t>(*hint / jobs_ + 1)
                       : std::nullopt);
  for (Worker& worker : workers_) worker.queue.reserve(per_worker);
  shard_event_counts_.assign(shards_.size(), 0);

  staged_valid_ = source_->next(staged_);
  if (staged_valid_) {
    events_.schedule(0.0, Event::tx_issue(0));
  }
  events_.schedule(0.0, Event::queue_sample());
  churn_times_.clear();
  churn_cursor_ = 0;
  for (std::uint32_t c = 0; c < config_.churn.events.size(); ++c) {
    events_.schedule(config_.churn.events[c].time_s, Event::shard_change(c));
    churn_times_.push_back(config_.churn.events[c].time_s);
  }
  std::sort(churn_times_.begin(), churn_times_.end());
  // Like churn, re-partition ticks cut windows: window ends never cross
  // next_repartition_time_, so each tick fires alone at a barrier.
  if (repartition_enabled()) {
    next_repartition_time_ = config_.repartition.interval_s;
    events_.schedule(next_repartition_time_, Event::repartition());
  }

  start_workers();

  // The window loop. Loop-entry checks mirror the sequential engine's
  // per-event loop condition (work_remaining, queue non-empty, now within
  // the horizon); replay_window re-checks them before every merged item.
  while (true) {
    for (Worker& worker : workers_) worker.mailbox.flush_into(worker.queue);
    if (!work_remaining()) break;
    if (now_ > config_.max_sim_time_s) break;

    SimTime t_min = kNever;
    if (!events_.empty()) t_min = events_.next_time();
    for (const Worker& worker : workers_) {
      if (!worker.queue.empty()) {
        t_min = std::min(t_min, worker.queue.next_time());
      }
    }
    if (t_min == kNever) break;  // nothing pending anywhere

    // Scripted churn or a re-partition tick due: ranks 0/1 make them the
    // globally earliest keys at their time, so each fires alone at a
    // barrier (workers idle, current window cut short by the min()s below
    // on earlier iterations). When both are due at once, churn's lower rank
    // fires first — the next loop iteration picks up the tick.
    if (!events_.empty() && events_.next_time() == t_min &&
        (events_.next_event().type == EventType::kShardChange ||
         events_.next_event().type == EventType::kRepartition)) {
      events_.run_one(*this);
      continue;
    }

    SimTime window_end = t_min + lookahead_;
    if (churn_cursor_ < churn_times_.size()) {
      window_end = std::min(window_end, churn_times_[churn_cursor_]);
    }
    window_end = std::min(window_end, next_repartition_time_);
    OPTCHAIN_ASSERT(window_end > t_min);

    {
      // phase A: workers execute [t_min, E)
      obs::ScopedPhase timer(obs::Phase::kSimPhaseA);
      run_worker_phase(window_end);
    }
    {
      // phase B: merged deterministic replay (the serial fraction)
      obs::ScopedPhase timer(obs::Phase::kSimPhaseB);
      replay_window(window_end);
    }
  }

  stop_workers();

  result_.total_txs = hint.has_value() ? *hint : issued_;
  result_.committed_txs = committed_;
  result_.completed = !work_remaining();
  result_.cross_txs = metrics_.cross_counter().cross();
  result_.aborted_txs = metrics_.aborted();
  result_.duration_s = metrics_.duration_s();
  result_.shard_changes = metrics_.shard_changes();
  result_.migrated_txs = metrics_.migrated_txs();
  result_.migrated_utxos = metrics_.migrated_utxos();
  result_.repartition_events = metrics_.repartition_events();
  result_.repartition_migrated_txs = metrics_.repartition_migrated_txs();
  result_.repartition_migrated_utxos = metrics_.repartition_migrated_utxos();
  result_.repartition_deferred_txs = metrics_.repartition_deferred_txs();
  result_.latencies = metrics_.latencies();
  result_.commits_per_window = metrics_.commits_per_window();
  result_.queue_tracker = metrics_.queue_tracker();
  if (result_.latencies.count() > 0) {
    result_.avg_latency_s = result_.latencies.average();
    result_.max_latency_s = result_.latencies.maximum();
  }
  if (result_.duration_s > 0.0) {
    result_.throughput_tps =
        static_cast<double>(result_.committed_txs) / result_.duration_s;
  }
  // Blocks are counted from *replayed* round records, never from node
  // state: workers legitimately overrun the coordinator's stop point
  // inside the final window, and only replayed rounds exist in the
  // sequential engine's timeline.
  result_.total_blocks = blocks_replayed_;
  const LinkFabric::Stats& link_stats = fabric_.stats();
  result_.link_messages = link_stats.messages;
  result_.link_bytes = link_stats.bytes;
  result_.link_drops = link_stats.drops;
  result_.link_queue_delay_s = link_stats.queue_delay_s;
  result_.link_peak_backlog_s = link_stats.peak_backlog_s;
  result_.event_heap_peak = events_.peak_pending();
  for (const Worker& worker : workers_) {
    result_.event_heap_peak =
        std::max<std::uint64_t>(result_.event_heap_peak,
                                worker.queue.peak_pending());
  }
  shard_event_counts_.resize(shards_.size(), 0);
  result_.shard_event_counts = shard_event_counts_;
  result_.final_shard_sizes = pipeline.assignment().sizes();
  assignment_ = nullptr;
  pipeline_ = nullptr;
  source_ = nullptr;
  return result_;
}

// ----------------------------------------------------------------- phase A

void ParallelSimulation::worker_main(Worker& worker) {
  std::uint64_t seen_epoch = 0;
  WorkerHandler handler(*this, worker);
  while (true) {
    SimTime window_end;
    {
      std::unique_lock lock(mu_);
      cv_workers_.wait(lock,
                       [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      window_end = window_end_;
    }
    worker.records.clear();
    worker.items.clear();
    while (!worker.queue.empty() && worker.queue.next_time() < window_end) {
      worker.queue.run_one(handler);
    }
    {
      std::lock_guard lock(mu_);
      if (++done_ == jobs_) cv_done_.notify_one();
    }
  }
}

void ParallelSimulation::worker_on_event(Worker& worker, const Event& event) {
  const SimTime time = worker.queue.now();
  WorkerRecord record;
  record.time = time;
  record.event = event;
  switch (event.type) {
    case EventType::kTxDeliver:
    case EventType::kLockRequest:
    case EventType::kUnlockCommit: {
      const std::uint32_t s = resolve_shard(event.shard);
      const ItemKind kind = event.type == EventType::kTxDeliver
                                ? ItemKind::kSameShard
                                : event.type == EventType::kLockRequest
                                      ? ItemKind::kLock
                                      : ItemKind::kCommit;
      shards_[s]->enqueue(QueueItem{event.tx, kind});
      record.resolved_shard = s;
      record.queue_size_after = shards_[s]->queue_size();
      break;
    }
    case EventType::kUnlockAbort: {
      const std::uint32_t s = resolve_shard(event.shard);
      partition_release_locks(event.tx, s);
      record.resolved_shard = s;
      break;
    }
    case EventType::kBlockCommit:
    case EventType::kViewChange: {
      record.item_begin = static_cast<std::uint32_t>(worker.items.size());
      shards_[event.shard]->complete_round();  // items land via the callback
      record.item_count =
          static_cast<std::uint32_t>(worker.items.size()) - record.item_begin;
      record.resolved_shard = resolve_shard(event.shard);
      record.last_round_duration = shards_[event.shard]->last_round_duration();
      record.queue_size_after = shards_[event.shard]->queue_size();
      break;
    }
    default:
      OPTCHAIN_ASSERT(false);  // client-side events never reach a worker
  }
  worker.records.push_back(record);
}

void ParallelSimulation::worker_item_committed(std::uint32_t node_id,
                                               const QueueItem& item,
                                               SimTime /*time*/) {
  // Runs inside complete_round() on the worker owning resolve(node_id) —
  // exactly the worker whose queue held the round event (churn migrates the
  // event and rebinds the node together).
  const std::uint32_t s = resolve_shard(node_id);
  Worker& worker = workers_[shard_to_worker_[s]];
  ItemOutcome outcome;
  outcome.item = item;
  switch (item.kind) {
    case ItemKind::kSameShard:
      outcome.locked = partition_try_lock(item.tx, s);
      if (outcome.locked) partition_spend(item.tx, s);
      break;
    case ItemKind::kCommit:
      partition_spend(item.tx, s);
      break;
    case ItemKind::kLock:
      // The lock verdict is decided here (partition state is worker-owned);
      // the proof's *delay* is computed at replay time on the coordinator —
      // the fabric's uplink state must advance in merged phase-B order.
      outcome.locked = partition_try_lock(item.tx, s);
      break;
  }
  worker.items.push_back(outcome);
}

bool ParallelSimulation::partition_try_lock(std::uint32_t index,
                                            std::uint32_t shard) {
  const Inflight& flight = inflight_.at(index);
  LedgerPartition& partition = partitions_[shard];
  for (const tx::OutPoint& point : flight.inputs) {
    if (assignment_->shard_of(point.tx) != shard) continue;
    const auto it = partition.find(outpoint_key(point));
    if (it != partition.end() && it->second.second != index) {
      return false;
    }
  }
  for (const tx::OutPoint& point : flight.inputs) {
    if (assignment_->shard_of(point.tx) != shard) continue;
    partition[outpoint_key(point)] = {OutpointState::kLocked, index};
  }
  return true;
}

void ParallelSimulation::partition_release_locks(std::uint32_t index,
                                                 std::uint32_t shard) {
  const Inflight& flight = inflight_.at(index);
  LedgerPartition& partition = partitions_[shard];
  for (const tx::OutPoint& point : flight.inputs) {
    if (assignment_->shard_of(point.tx) != shard) continue;
    const auto it = partition.find(outpoint_key(point));
    if (it != partition.end() &&
        it->second == std::make_pair(OutpointState::kLocked, index)) {
      partition.erase(it);
    }
  }
}

void ParallelSimulation::partition_spend(std::uint32_t index,
                                         std::uint32_t shard) {
  // Only this shard's owned inputs are marked. A cross-shard commit leaves
  // remote inputs (kLocked, index) in their owners' partitions forever —
  // observationally identical to the sequential engine's global kSpent
  // marker: conflict checks reject on any foreign entry, and a committed
  // transaction's locks are never released. UTXO accounting (churn runs)
  // happens on the coordinator's shadow map instead.
  const Inflight& flight = inflight_.at(index);
  LedgerPartition& partition = partitions_[shard];
  for (const tx::OutPoint& point : flight.inputs) {
    if (assignment_->shard_of(point.tx) != shard) continue;
    auto& entry = partition[outpoint_key(point)];
    if (entry.first == OutpointState::kSpent && entry.second != index) {
      // Churn handoffs and re-partition moves can both drop a lock.
      OPTCHAIN_ASSERT(churn_enabled() || repartition_enabled());
      continue;
    }
    entry = {OutpointState::kSpent, index};
  }
}

// ----------------------------------------------------------------- phase B

void ParallelSimulation::replay_window(SimTime window_end) {
  replay_cursor_.assign(jobs_, 0);
  while (work_remaining() && now_ <= config_.max_sim_time_s) {
    // Pick the globally-least item: worker record streams (already in key
    // order, all < window_end) vs the coordinator queue head.
    const WorkerRecord* best = nullptr;
    std::size_t best_worker = 0;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      const std::vector<WorkerRecord>& records = workers_[w].records;
      if (replay_cursor_[w] >= records.size()) continue;
      const WorkerRecord& candidate = records[replay_cursor_[w]];
      if (best == nullptr || record_key_less(candidate, *best)) {
        best = &candidate;
        best_worker = w;
      }
    }
    bool use_coordinator = false;
    if (!events_.empty() && events_.next_time() < window_end) {
      if (best == nullptr ||
          event_key_less(events_.next_time(), events_.next_event(),
                         best->time, best->event)) {
        use_coordinator = true;
      }
    }
    if (use_coordinator) {
      // Barrier events never appear inside a window: window ends are cut at
      // the next churn time and next_repartition_time_.
      OPTCHAIN_ASSERT(events_.next_event().type != EventType::kShardChange &&
                      events_.next_event().type != EventType::kRepartition);
      events_.run_one(*this);
    } else if (best != nullptr) {
      replay_record(workers_[best_worker], *best);
      ++replay_cursor_[best_worker];
    } else {
      break;  // window drained
    }
  }
}

void ParallelSimulation::replay_record(const Worker& worker,
                                       const WorkerRecord& record) {
  now_ = record.time;
  ++result_.total_events;
  count_shard_event(record.event.shard);
  switch (record.event.type) {
    case EventType::kTxDeliver:
    case EventType::kLockRequest:
    case EventType::kUnlockCommit:
      mirror_[record.resolved_shard].queue_size = record.queue_size_after;
      break;
    case EventType::kUnlockAbort: {
      Inflight& flight = inflight_.at(record.event.tx);
      OPTCHAIN_ASSERT(flight.releases_in_flight > 0);
      --flight.releases_in_flight;
      erase_if_settled(record.event.tx);
      break;
    }
    case EventType::kBlockCommit:
    case EventType::kViewChange: {
      for (std::uint32_t i = 0; i < record.item_count; ++i) {
        replay_item(record, worker.items[record.item_begin + i]);
      }
      mirror_[record.event.shard].queue_size = record.queue_size_after;
      mirror_[record.event.shard].last_round = record.last_round_duration;
      ++blocks_replayed_;
      notify_block_commit(record.event.shard, record.time);
      break;
    }
    default:
      OPTCHAIN_ASSERT(false);
  }
}

void ParallelSimulation::replay_item(const WorkerRecord& record,
                                     const ItemOutcome& outcome) {
  const std::uint32_t index = outcome.item.tx;
  switch (outcome.item.kind) {
    case ItemKind::kSameShard:
      if (outcome.locked) {
        shadow_spend(index);
        commit_transaction(index, record.time);
      } else {
        abort_transaction(index, record.time);
        inflight_.at(index).aborted = true;
        erase_if_settled(index);
      }
      break;
    case ItemKind::kCommit:
      shadow_spend(index);
      commit_transaction(index, record.time);
      break;
    case ItemKind::kLock: {
      // The proof delay is computed here, in merged replay order — the
      // exact moment the sequential engine computes it — so the fabric's
      // uplink/jitter state advances identically in both engines. The
      // proof re-enters the coordinator's own queue; its handling
      // (client-side quorum state) belongs to phase B of a later window.
      const std::uint32_t origin = record.resolved_shard;
      const std::uint32_t decision_ep =
          config_.protocol == ProtocolMode::kOmniLedger
              ? kClientEndpoint
              : endpoint_of(
                    resolve_shard(inflight_.at(index).cross.output_shard));
      const Position decision_point =
          decision_ep == kClientEndpoint
              ? client_position_
              : shards_[decision_ep - 1]->leader_position();
      const double proof_delay = fabric_.message_delay(
          record.time, endpoint_of(origin), decision_ep,
          shards_[origin]->leader_position(), decision_point,
          config_.proof_bytes);
      events_.schedule(record.time + proof_delay,
                       Event::proof(index, origin, outcome.locked));
      break;
    }
  }
}

void ParallelSimulation::on_event(const Event& event) {
  now_ = events_.now();
  ++result_.total_events;
  switch (event.type) {
    case EventType::kTxIssue:
      issue_transaction(event.tx);
      break;
    case EventType::kProof:
      count_shard_event(event.shard);
      handle_proof(event.tx, event.flag != 0, event.shard);
      break;
    case EventType::kQueueSample:
      sample_queues();
      if (work_remaining()) {
        events_.schedule(now_ + config_.queue_sample_interval_s,
                         Event::queue_sample());
      }
      break;
    case EventType::kShardChange:
      apply_churn(config_.churn.events[event.tx]);
      ++churn_cursor_;
      break;
    case EventType::kRepartition:
      apply_repartition();
      break;
    default:
      OPTCHAIN_ASSERT(false);  // shard events live in worker queues
  }
}

void ParallelSimulation::issue_transaction(std::uint32_t index) {
  OPTCHAIN_ASSERT(staged_valid_);
  OPTCHAIN_ASSERT(staged_.index == index);
  constexpr std::uint64_t kMinPayloadBytes = 512;

  Inflight flight;
  flight.issue_time = now_;

  observe_timings();
  const api::StepResult placed = pipeline_->step(staged_, timings_);
  const placement::ShardId target = placed.shard;

  const std::uint64_t payload =
      std::max<std::uint64_t>(staged_.serialized_size(), kMinPayloadBytes);
  if (!placed.cross) {
    send_to_shard(Event::deliver(EventType::kTxDeliver, target, index),
                  fabric_.message_delay(
                      now_, kClientEndpoint, endpoint_of(target),
                      client_position_, shards_[target]->leader_position(),
                      payload));
  } else {
    flight.cross.remaining_locks =
        static_cast<std::uint32_t>(placed.input_shards.size());
    flight.cross.output_shard = target;
    for (const placement::ShardId s : placed.input_shards) {
      send_to_shard(Event::deliver(EventType::kLockRequest, s, index),
                    fabric_.message_delay(
                        now_, kClientEndpoint, endpoint_of(s),
                        client_position_, shards_[s]->leader_position(),
                        payload));
    }
  }

  if (churn_enabled()) {
    utxo_records_[target] += staged_.outputs.size();
  }
  if (repartition_enabled()) {
    OPTCHAIN_ASSERT(live_outputs_.size() == index);
    live_outputs_.push_back(
        static_cast<std::uint32_t>(staged_.outputs.size()));
  }

  flight.inputs = std::move(staged_.inputs);
  const double issue_time = flight.issue_time;
  inflight_.emplace(index, std::move(flight));
  ++outstanding_;
  ++issued_;
  notify_issue(index, issue_time, placed.cross);

  staged_valid_ = source_->next(staged_);
  if (staged_valid_) {
    const double next_time =
        source_->issue_time(index + 1, config_.tx_rate_tps);
    events_.schedule(next_time, Event::tx_issue(index + 1));
  }
}

void ParallelSimulation::handle_proof(std::uint32_t index, bool accepted,
                                      std::uint32_t from_shard) {
  Inflight& flight = inflight_.at(index);
  PendingCross& pending = flight.cross;
  OPTCHAIN_ASSERT(pending.remaining_locks > 0);
  if (accepted) {
    pending.accepted_shards.push_back(from_shard);
  } else {
    pending.rejected = true;
  }
  if (--pending.remaining_locks > 0) return;

  const std::uint32_t output_shard = resolve_shard(pending.output_shard);
  const ShardNode& output = *shards_[output_shard];
  const std::uint32_t decision_ep =
      config_.protocol == ProtocolMode::kOmniLedger
          ? kClientEndpoint
          : endpoint_of(output_shard);
  const Position decision_point =
      config_.protocol == ProtocolMode::kOmniLedger
          ? client_position_
          : output.leader_position();

  if (!pending.rejected) {
    const double to_output = fabric_.message_delay(
        now_, decision_ep, endpoint_of(output_shard), decision_point,
        output.leader_position(), config_.proof_bytes + 512);
    send_to_shard(
        Event::deliver(EventType::kUnlockCommit, pending.output_shard, index),
        to_output);
    return;
  }

  for (const std::uint32_t shard : pending.accepted_shards) {
    const double to_shard = fabric_.message_delay(
        now_, decision_ep, endpoint_of(shard), decision_point,
        shards_[shard]->leader_position(), config_.proof_bytes);
    send_to_shard(Event::deliver(EventType::kUnlockAbort, shard, index),
                  to_shard);
  }
  flight.releases_in_flight =
      static_cast<std::uint32_t>(pending.accepted_shards.size());
  flight.aborted = true;
  abort_transaction(index, now_);
  erase_if_settled(index);
}

void ParallelSimulation::commit_transaction(std::uint32_t index,
                                            SimTime time) {
  OPTCHAIN_ASSERT(outstanding_ > 0);
  const auto it = inflight_.find(index);
  OPTCHAIN_ASSERT(it != inflight_.end());
  const double latency = time - it->second.issue_time;
  OPTCHAIN_ASSERT(latency >= 0.0);
  ++committed_;
  --outstanding_;
  inflight_.erase(it);
  notify_commit(index, time, latency);
}

void ParallelSimulation::abort_transaction(std::uint32_t index, SimTime time) {
  OPTCHAIN_ASSERT(outstanding_ > 0);
  --outstanding_;
  notify_abort(index, time);
}

void ParallelSimulation::erase_if_settled(std::uint32_t index) {
  const auto it = inflight_.find(index);
  OPTCHAIN_ASSERT(it != inflight_.end());
  if (it->second.aborted && it->second.releases_in_flight == 0) {
    inflight_.erase(it);
  }
}

void ParallelSimulation::shadow_spend(std::uint32_t index) {
  if (!track_utxos()) return;
  // Replays the *unfiltered* sequential spend_inputs() on the shadow map:
  // first spender wins, tolerated respends (dropped-lock handoffs) consume
  // nothing, and synthetic hotspot outpoints never credit a record.
  const Inflight& flight = inflight_.at(index);
  for (const tx::OutPoint& point : flight.inputs) {
    const auto [it, inserted] =
        shadow_spent_.try_emplace(outpoint_key(point), index);
    if (!inserted && it->second != index) continue;
    if (point.vout < workload::DynamicTxSource::kInjectedVoutBase) {
      if (churn_enabled()) {
        std::uint64_t& records =
            utxo_records_[assignment_->shard_of(point.tx)];
        if (records > 0) --records;
      }
      if (repartition_enabled() && point.tx < live_outputs_.size()) {
        std::uint32_t& live = live_outputs_[point.tx];
        if (live > 0) --live;
      }
    }
  }
}

void ParallelSimulation::observe_timings() {
  timings_.resize(mirror_.size());
  for (std::size_t s = 0; s < mirror_.size(); ++s) {
    timings_[s].mean_comm = mirror_[s].mean_comm;
    const double backlog_blocks =
        static_cast<double>(mirror_[s].queue_size) /
        static_cast<double>(config_.consensus.txs_per_block);
    timings_[s].mean_verify = mirror_[s].last_round * (1.0 + backlog_blocks);
  }
}

void ParallelSimulation::sample_queues() {
  queue_sizes_.resize(mirror_.size());
  for (std::size_t s = 0; s < mirror_.size(); ++s) {
    queue_sizes_[s] = mirror_[s].queue_size;
  }
  for (SimObserver* observer : observers_) {
    observer->on_queue_sample(now_, queue_sizes_);
  }
  // The fabric is coordinator-owned, so this reads exactly the state a
  // sequential sample at the same merged position would see.
  if (fabric_.enabled()) {
    fabric_.sample_links(now_, link_samples_);
    for (SimObserver* observer : observers_) {
      observer->on_link_sample(now_, link_samples_);
    }
  }
}

void ParallelSimulation::send_to_shard(const Event& event, double delay) {
  // The lookahead soundness condition: every message covers at least the
  // base latency, so the arrival lands at-or-after the current window end.
  OPTCHAIN_ASSERT(delay >= lookahead_);
  const std::uint32_t w = shard_to_worker_[resolve_shard(event.shard)];
  workers_[w].mailbox.deposit(now_ + delay, event);
}

void ParallelSimulation::count_shard_event(std::uint32_t shard) {
  if (shard >= shard_event_counts_.size()) {
    shard_event_counts_.resize(shard + 1, 0);
  }
  ++shard_event_counts_[shard];
}

void ParallelSimulation::notify_issue(std::uint32_t tx, double time,
                                      bool cross) {
  for (SimObserver* observer : observers_) observer->on_issue(tx, time, cross);
}

void ParallelSimulation::notify_commit(std::uint32_t tx, double time,
                                       double latency_s) {
  for (SimObserver* observer : observers_) {
    observer->on_commit(tx, time, latency_s);
  }
}

void ParallelSimulation::notify_abort(std::uint32_t tx, double time) {
  for (SimObserver* observer : observers_) observer->on_abort(tx, time);
}

void ParallelSimulation::notify_block_commit(std::uint32_t shard,
                                             double time) {
  for (SimObserver* observer : observers_) {
    observer->on_block_commit(shard, time);
  }
}

void ParallelSimulation::notify_shard_change(std::uint32_t shard, double time,
                                             bool joined,
                                             std::uint64_t migrated_txs,
                                             std::uint64_t migrated_utxos) {
  for (SimObserver* observer : observers_) {
    observer->on_shard_change(shard, time, joined, migrated_txs,
                              migrated_utxos);
  }
}

// ------------------------------------------------------------------- churn

void ParallelSimulation::apply_churn(const ShardChurnEvent& change) {
  // Fires at a barrier: workers idle, mailboxes flushed, every pending
  // event ≥ now_. The client-side sequence below matches the sequential
  // apply_churn statement-for-statement; the queue/partition migration is
  // the parallel engine's extra context handoff.
  const double time = now_;
  const placement::ShardAssignment& assignment = pipeline_->assignment();

  if (change.kind == ChurnKind::kAddShard) {
    spawn_shard_node();
    const placement::ShardId id = pipeline_->add_shard();
    OPTCHAIN_ASSERT(id + 1 == shards_.size());
    successor_of_.push_back(id);
    utxo_records_.push_back(0);
    notify_shard_change(id, time, /*joined=*/true, 0, 0);
    return;
  }

  std::uint32_t target = change.shard;
  if (target == ShardChurnEvent::kAutoShard) {
    target = assignment.largest_active();
  }
  OPTCHAIN_EXPECTS(target < assignment.k() && assignment.is_active(target));
  OPTCHAIN_EXPECTS(assignment.active_count() >= 2);
  std::uint32_t successor = placement::kUnplaced;
  std::uint64_t successor_size = 0;
  for (std::uint32_t j = 0; j < assignment.k(); ++j) {
    if (j == target || !assignment.is_active(j)) continue;
    if (successor == placement::kUnplaced ||
        assignment.size_of(j) < successor_size) {
      successor = j;
      successor_size = assignment.size_of(j);
    }
  }

  const std::uint64_t migrated_txs = pipeline_->retire_shard(target,
                                                             successor);
  const std::uint64_t migrated_utxos = utxo_records_[target];
  utxo_records_[successor] += migrated_utxos;
  utxo_records_[target] = 0;
  successor_of_[target] = successor;

  // Context migration: the retiring chain's pending events (late
  // deliveries, its in-flight round) move to the successor's worker, the
  // node rebinds so its round completes on that worker's clock, and the
  // ledger partition merges (key sets are disjoint — an outpoint has one
  // owner).
  const std::uint32_t old_worker = shard_to_worker_[target];
  const std::uint32_t new_worker = shard_to_worker_[successor];
  if (old_worker != new_worker) {
    auto moved = workers_[old_worker].queue.extract_if([&](const Event& e) {
      return shard_addressed(e.type) && resolve_shard(e.shard) == successor;
    });
    for (const auto& [at, event] : moved) {
      workers_[new_worker].queue.schedule(at, event);
    }
    shards_[target]->rebind_queue(workers_[new_worker].queue);
    shard_to_worker_[target] = new_worker;
  }
  partitions_[successor].merge(partitions_[target]);
  OPTCHAIN_ASSERT(partitions_[target].empty());

  // The drain-refill schedules successor rounds relative to the successor
  // queue's clock — advance it to the churn time first (it may lag at its
  // last locally-processed event).
  workers_[new_worker].queue.advance_to(time);
  for (const QueueItem& item : shards_[target]->drain_queue()) {
    shards_[successor]->enqueue(item);
  }
  // Refresh the timing mirror from live node state — exactly the view a
  // sequential post-churn queue sample would read.
  mirror_[target].queue_size = shards_[target]->queue_size();
  mirror_[target].last_round = shards_[target]->last_round_duration();
  mirror_[successor].queue_size = shards_[successor]->queue_size();
  mirror_[successor].last_round = shards_[successor]->last_round_duration();
  notify_shard_change(target, time, /*joined=*/false, migrated_txs,
                      migrated_utxos);
}

// ------------------------------------------------------------- repartition

void ParallelSimulation::notify_repartition(double time,
                                            std::uint64_t migrated_txs,
                                            std::uint64_t migrated_utxos,
                                            std::uint64_t deferred_txs) {
  for (SimObserver* observer : observers_) {
    observer->on_repartition(time, migrated_txs, migrated_utxos, deferred_txs);
  }
}

void ParallelSimulation::apply_repartition() {
  // Fires at a barrier (like churn): workers idle, mailboxes flushed, every
  // pending event ≥ now_. The controller drive and UTXO accounting match the
  // sequential apply_repartition statement-for-statement; the
  // ledger-partition migration below is the parallel engine's extra handoff.
  const double time = now_;
  const RepartitionOutcome outcome = repartitioner_->step(*pipeline_);
  std::uint64_t moved_utxos = 0;
  for (const RepartitionMove& move : outcome.applied) {
    OPTCHAIN_ASSERT(move.tx < live_outputs_.size());
    const std::uint64_t live = live_outputs_[move.tx];
    moved_utxos += live;
    if (churn_enabled() && live > 0) {
      std::uint64_t& from = utxo_records_[move.from];
      const std::uint64_t transfer = live < from ? live : from;
      from -= transfer;
      utxo_records_[move.to] += transfer;
    }
  }

  // Ledger handoff: an outpoint's lock/spend entry lives in the partition
  // of shard_of(its creator), so entries follow their moved creators.
  // moved[tx] is the final destination; an entry already there stays put
  // (which also keeps the map being iterated stable).
  if (!outcome.applied.empty()) {
    std::unordered_map<std::uint32_t, std::uint32_t> moved;
    moved.reserve(outcome.applied.size());
    std::vector<std::uint32_t> from_shards;
    from_shards.reserve(outcome.applied.size());
    for (const RepartitionMove& move : outcome.applied) {
      moved[move.tx] = move.to;
      from_shards.push_back(move.from);
    }
    std::sort(from_shards.begin(), from_shards.end());
    from_shards.erase(std::unique(from_shards.begin(), from_shards.end()),
                      from_shards.end());
    for (const std::uint32_t from : from_shards) {
      LedgerPartition& partition = partitions_[from];
      for (auto it = partition.begin(); it != partition.end();) {
        const auto mit =
            moved.find(static_cast<std::uint32_t>(it->first >> 32));
        if (mit != moved.end() && mit->second != from) {
          partitions_[mit->second].insert(*it);
          it = partition.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  notify_repartition(time, outcome.applied.size(), moved_utxos,
                     outcome.deferred);
  if (work_remaining()) {
    next_repartition_time_ = now_ + config_.repartition.interval_s;
    events_.schedule(next_repartition_time_, Event::repartition());
  } else {
    next_repartition_time_ = kNeverRepartition;
  }
}

// ----------------------------------------------------------- phase barrier

void ParallelSimulation::start_workers() {
  stop_ = false;
  epoch_ = 0;
  done_ = 0;
  threads_.reserve(jobs_);
  for (std::uint32_t w = 0; w < jobs_; ++w) {
    threads_.emplace_back([this, w] { worker_main(workers_[w]); });
  }
}

void ParallelSimulation::run_worker_phase(SimTime window_end) {
  {
    std::lock_guard lock(mu_);
    window_end_ = window_end;
    done_ = 0;
    ++epoch_;
  }
  cv_workers_.notify_all();
  std::unique_lock lock(mu_);
  cv_done_.wait(lock, [&] { return done_ == jobs_; });
}

void ParallelSimulation::stop_workers() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_workers_.notify_all();
  for (std::thread& thread : threads_) thread.join();
  threads_.clear();
}

}  // namespace optchain::sim::parallel

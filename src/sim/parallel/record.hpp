// Worker-phase execution records — the data the coordinator replays.
//
// During a worker phase each worker executes its shard groups' events ahead
// of the coordinator and appends one WorkerRecord per executed event, in its
// queue's pop order (= the content-key order of sim/event_queue.hpp). The
// coordinator phase then N-way-merges the per-worker record streams with its
// own event queue by event_key_less and replays them one at a time: protocol
// outcomes (lock grants, commits, proof sends) were already decided on the
// worker — deterministically, because every decision depends only on state
// owned by the event's shard — and the record carries exactly what the
// client side of the sequential engine would have observed at that moment:
// the shard's post-event mempool size, its last round duration, and each
// block item's outcome. Replaying in merged key order is what makes observer
// callbacks, metric accumulation (order-sensitive floating-point sums
// included) and proof scheduling bit-identical to the sequential engine.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/shard_node.hpp"

namespace optchain::sim::parallel {

/// Outcome of one block item, decided worker-side at round completion.
/// Only the *verdict* travels in the record: message delays (e.g. the kLock
/// proof's trip to its decision point) are computed by the coordinator at
/// replay time, because the link fabric's uplink state must advance in
/// merged phase-B order — the sequential dispatch order.
struct ItemOutcome {
  QueueItem item;
  /// kSameShard / kLock: whether the input locks were granted.
  bool locked = true;
};

/// One executed worker event. `items` index into the worker's per-window
/// ItemOutcome buffer (round records only).
struct WorkerRecord {
  SimTime time = 0.0;
  Event event;
  /// The shard the event resolved to through the churn successor chain at
  /// execution time (== event.shard without churn).
  std::uint32_t resolved_shard = 0;
  /// Mempool size of the acted-on shard node after this event — the value
  /// the coordinator's timing mirror must show from this instant on.
  std::uint64_t queue_size_after = 0;
  /// Round records: the just-finished round's duration (the node's new
  /// last_round_duration()).
  double last_round_duration = 0.0;
  /// Round records: slice [item_begin, item_begin + item_count) of the
  /// worker's ItemOutcome buffer, in block order.
  std::uint32_t item_begin = 0;
  std::uint32_t item_count = 0;
};

/// Merge order of two records: the shared cross-engine event key.
inline bool record_key_less(const WorkerRecord& a,
                            const WorkerRecord& b) noexcept {
  return event_key_less(a.time, a.event, b.time, b.event);
}

}  // namespace optchain::sim::parallel

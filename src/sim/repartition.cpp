#include "sim/repartition.hpp"

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "api/placement_pipeline.hpp"
#include "common/assert.hpp"
#include "graph/csr.hpp"
#include "graph/dag.hpp"
#include "metis/kway_partitioner.hpp"
#include "placement/shard_assignment.hpp"

namespace optchain::sim {

void RepartitionConfig::validate() const {
  if (interval_s < 0.0) {
    throw std::invalid_argument(
        "repartition: interval_s must be >= 0 (0 disables)");
  }
}

RepartitionController::RepartitionController(const RepartitionConfig& config)
    : config_(config) {
  config_.validate();
  OPTCHAIN_EXPECTS(config_.enabled());
}

void RepartitionController::compute_plan(
    const api::PlacementPipeline& pipeline) {
  plan_.clear();
  cursor_ = 0;
  const placement::ShardAssignment& assignment = pipeline.assignment();
  const graph::TanDag& dag = pipeline.dag();
  const std::uint64_t total = assignment.total();
  const std::uint32_t parts_k = assignment.active_count();
  if (parts_k < 2 || total < 2) return;
  const std::uint64_t begin =
      (config_.window == 0 || total <= config_.window) ? 0
                                                       : total - config_.window;
  const std::uint64_t count = total - begin;
  if (count < 2) return;

  // The snapshot graph: the undirected TaN restricted to [begin, total).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint64_t u = begin; u < total; ++u) {
    for (const std::uint32_t v : dag.inputs(static_cast<std::uint32_t>(u))) {
      if (v < begin) continue;
      const auto lu = static_cast<std::uint32_t>(u - begin);
      const auto lv = static_cast<std::uint32_t>(v - begin);
      edges.emplace_back(lu, lv);
      edges.emplace_back(lv, lu);
    }
  }
  const graph::Csr csr =
      graph::Csr::from_edges(static_cast<std::size_t>(count), edges);

  metis::PartitionConfig metis_config;
  metis_config.k = parts_k;
  metis_config.seed = config_.seed;
  const std::vector<std::uint32_t> parts =
      metis::partition_kway(csr, metis_config);

  // Relabel: give each Metis part the active shard it overlaps most. Greedy
  // maximum matching, deterministic ties (the strict > keeps the lowest
  // part, then the lowest shard). parts_k == active_count, so the matching
  // is perfect.
  const std::uint32_t k = assignment.k();
  std::vector<std::vector<std::uint64_t>> overlap(
      parts_k, std::vector<std::uint64_t>(k, 0));
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto tx = static_cast<std::uint32_t>(begin + i);
    ++overlap[parts[i]][assignment.shard_of(tx)];
  }
  std::vector<std::uint32_t> part_to_shard(parts_k, placement::kUnplaced);
  std::vector<std::uint8_t> shard_taken(k, 0);
  for (std::uint32_t round = 0; round < parts_k; ++round) {
    std::uint64_t best = 0;
    std::uint32_t best_part = 0;
    std::uint32_t best_shard = 0;
    bool found = false;
    for (std::uint32_t p = 0; p < parts_k; ++p) {
      if (part_to_shard[p] != placement::kUnplaced) continue;
      for (std::uint32_t s = 0; s < k; ++s) {
        if (!assignment.is_active(s) || shard_taken[s] != 0) continue;
        if (!found || overlap[p][s] > best) {
          best = overlap[p][s];
          best_part = p;
          best_shard = s;
          found = true;
        }
      }
    }
    OPTCHAIN_ASSERT(found);
    part_to_shard[best_part] = best_shard;
    shard_taken[best_shard] = 1;
  }

  for (std::uint64_t i = 0; i < count; ++i) {
    const auto tx = static_cast<std::uint32_t>(begin + i);
    const std::uint32_t target = part_to_shard[parts[i]];
    if (target != assignment.shard_of(tx)) plan_.emplace_back(tx, target);
  }
}

RepartitionOutcome RepartitionController::step(
    api::PlacementPipeline& pipeline) {
  if (cursor_ >= plan_.size()) compute_plan(pipeline);
  RepartitionOutcome outcome;
  const placement::ShardAssignment& assignment = pipeline.assignment();
  while (cursor_ < plan_.size()) {
    if (config_.budget != 0 && outcome.applied.size() >= config_.budget) break;
    const auto [tx, target] = plan_[cursor_++];
    // Entries staled since planning (target retired by churn, or the record
    // already migrated there) are skipped without consuming budget.
    if (!assignment.is_active(target)) continue;
    const std::uint32_t from = assignment.shard_of(tx);
    if (from == target) continue;
    pipeline.reassign(tx, target);
    outcome.applied.push_back({tx, from, target});
  }
  outcome.deferred = pending();
  return outcome;
}

}  // namespace optchain::sim

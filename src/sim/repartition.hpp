// Online re-partitioning under a migration budget.
//
// The Metis warm start (api/scenario_spec.hpp `warm_ratio`) is offline-only:
// it partitions a batch it has already seen and then never moves a record
// again, so under churn and fabric pressure the assignment can only drift
// away from the current TaN. The RepartitionController closes that loop
// online: on a fixed cadence (SimConfig::repartition.interval_s) it snapshots
// the most recent `window` transactions of the TaN, runs the in-repo Metis
// k-way pass (metis/kway_partitioner.hpp) over the *active* shard set, and
// applies the delta through ShardAssignment::reassign — at most `budget`
// transaction migrations per event, the excess deferred to the next cycle
// (no recompute while a plan is still draining).
//
// Metis part ids are arbitrary labels, so the controller first relabels each
// part to the active shard it overlaps most (greedy maximum matching with
// deterministic ties). The migration delta — not the raw cut — is what the
// budget pays for; a re-partition that agrees with the current assignment
// costs nothing.
//
// Both engines fire the controller at a barrier (like scripted churn), so
// repartition runs stay bit-identical at any sim_jobs — determinism rule 8
// in docs/ARCHITECTURE.md, pinned by tests/repartition_test.cpp.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace optchain::api {
class PlacementPipeline;
}  // namespace optchain::api

namespace optchain::sim {

/// Knobs of the online re-partition controller (`RunSpec::repartition`,
/// `ScenarioSpec::repartition`). Default-constructed = disabled.
struct RepartitionConfig {
  /// Cadence in simulated seconds between re-partition events; 0 disables
  /// the controller entirely.
  double interval_s = 0.0;
  /// Migration budget: maximum transactions migrated per event. Planned
  /// moves beyond the budget are deferred to the next event; 0 = unlimited.
  std::uint64_t budget = 0;
  /// Snapshot window: the Metis pass runs over the most recent `window`
  /// transactions of the TaN (only edges with both endpoints inside the
  /// window are considered). 0 = the whole TaN.
  std::uint64_t window = 0;
  /// Seed of the Metis pass. 0 = derived from the run's placement seed by
  /// api::RunSpec::sim_config().
  std::uint64_t seed = 0;

  /// True when the controller fires (interval_s > 0).
  bool enabled() const noexcept { return interval_s > 0.0; }

  /// Throws std::invalid_argument on nonsensical knobs.
  void validate() const;
};

/// One applied migration: transaction `tx` moved shard `from` → `to`.
struct RepartitionMove {
  std::uint32_t tx = 0;    ///< migrated transaction index
  std::uint32_t from = 0;  ///< shard the record left
  std::uint32_t to = 0;    ///< shard the record joined
};

/// What one re-partition event did: the applied moves (at most `budget`) and
/// how many planned moves were deferred to the next cycle.
struct RepartitionOutcome {
  std::vector<RepartitionMove> applied;  ///< moves applied this event
  std::uint64_t deferred = 0;            ///< planned moves left for later
};

/// The periodic Metis re-partition controller (see the file comment). The
/// engine owning the pipeline constructs one per run and calls step() every
/// time a kRepartition event fires.
class RepartitionController {
 public:
  /// `config` must be enabled(); validates it.
  explicit RepartitionController(const RepartitionConfig& config);

  /// Runs one re-partition event: computes a fresh plan when the previous
  /// one has drained, then applies up to `budget` migrations through
  /// `pipeline`. Entries staled by churn (target shard retired, or the
  /// record already where the plan wants it) are skipped without consuming
  /// budget.
  RepartitionOutcome step(api::PlacementPipeline& pipeline);

  /// Planned moves still waiting for budget (drained before any recompute).
  std::uint64_t pending() const noexcept {
    return static_cast<std::uint64_t>(plan_.size() - cursor_);
  }

 private:
  void compute_plan(const api::PlacementPipeline& pipeline);

  RepartitionConfig config_;
  /// (tx, target shard) in ascending tx order; applied from cursor_ on.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> plan_;
  std::size_t cursor_ = 0;
};

}  // namespace optchain::sim

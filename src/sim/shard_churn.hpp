// Shard churn plan — shards joining and leaving a running simulation.
//
// Production sharded chains resize: committees are re-drawn per epoch
// (OmniLedger, RapidChain), operators add shards under load, and shards
// drain away when capacity shrinks. A ShardChurnPlan scripts those moments
// for the simulator: each event fires through the typed event queue
// (EventType::kShardChange) at its simulated time, and observers hear about
// it on sim::SimObserver::on_shard_change.
//
// Removal semantics ("bulk handoff"): the retired shard names a successor —
// the least-loaded other active shard at removal time — and every
// transaction record it owns is remapped there in one step
// (placement::ShardAssignment::retire_shard). The migrated transaction and
// live-UTXO counts are first-class run metrics (SimResult::migrated_txs /
// migrated_utxos); pending mempool items transfer to the successor's queue,
// and in-flight protocol messages addressed to the retired shard are routed
// through the successor chain. Addition appends a fresh, empty shard that
// placement strategies start filling immediately (placers skip inactive
// shards and see the new one on their next choose()).
//
// Determinism: churn events are ordinary typed events, so a plan changes a
// run's event interleaving in exactly one reproducible way; an empty plan
// leaves every code path and random draw of the engine untouched (pinned by
// the engine goldens).
#pragma once

#include <cstdint>
#include <vector>

namespace optchain::sim {

/// What a churn event does to the shard set.
enum class ChurnKind : std::uint8_t {
  kAddShard,     ///< append a fresh shard (its id is the current shard count)
  kRemoveShard,  ///< retire a shard, migrating its records to a successor
};

/// One scripted membership change at an absolute simulated time.
struct ShardChurnEvent {
  /// Sentinel for `shard`: pick the largest active shard at fire time
  /// (deterministic; ties resolve to the lowest id).
  static constexpr std::uint32_t kAutoShard = 0xFFFFFFFFu;

  double time_s = 0.0;   ///< absolute simulated fire time (>= 0)
  ChurnKind kind = ChurnKind::kAddShard;  ///< add or remove
  /// Shard to retire (kRemoveShard only; kAutoShard = largest active).
  std::uint32_t shard = kAutoShard;
};

/// A scripted sequence of membership changes; order in the vector is
/// irrelevant (the event queue orders by time, ties by schedule order).
struct ShardChurnPlan {
  std::vector<ShardChurnEvent> events;  ///< the scripted changes

  /// True when the plan schedules nothing (the engine behaves exactly as
  /// without churn support).
  bool empty() const noexcept { return events.empty(); }
};

}  // namespace optchain::sim

#include "sim/shard_node.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace optchain::sim {

ShardNode::ShardNode(std::uint32_t id, Position leader_position,
                     ConsensusModel model, EventQueue& events,
                     CommitCallback on_commit, ShardFaults faults)
    : id_(id),
      leader_position_(leader_position),
      model_(std::move(model)),
      events_(&events),
      on_commit_(std::move(on_commit)),
      faults_(faults),
      fault_rng_(mix64(faults.seed ^ (0x51a4d0000ULL + id))) {
  OPTCHAIN_EXPECTS(on_commit_ != nullptr);
  OPTCHAIN_EXPECTS(faults_.slowdown > 0.0);
  OPTCHAIN_EXPECTS(faults_.leader_fault_rate >= 0.0 &&
                   faults_.leader_fault_rate <= 1.0);
  last_round_duration_ =
      model_.round_duration(model_.config().txs_per_block) * faults_.slowdown;
}

void ShardNode::enqueue(const QueueItem& item) {
  queue_.push_back(item);
  try_start_round();
}

void ShardNode::try_start_round() {
  if (round_in_progress_ || queue_.empty()) return;

  const std::uint32_t take = static_cast<std::uint32_t>(
      std::min<std::size_t>(queue_.size(), model_.config().txs_per_block));
  round_block_.clear();
  for (std::uint32_t i = 0; i < take; ++i) {
    round_block_.push_back(queue_.front());
    queue_.pop_front();
  }

  round_in_progress_ = true;
  double duration = model_.round_duration(take) * faults_.slowdown;
  bool view_change = false;
  if (faults_.leader_fault_rate > 0.0 &&
      fault_rng_.bernoulli(faults_.leader_fault_rate)) {
    duration += faults_.view_change_penalty_s;
    view_change = true;
    ++view_changes_;
  }
  round_duration_ = duration;
  events_->schedule_in(duration,
                       Event::round_complete(id_, view_change));
}

void ShardNode::complete_round() {
  OPTCHAIN_ASSERT(round_in_progress_);
  round_in_progress_ = false;
  ++blocks_committed_;
  items_committed_ += round_block_.size();
  // Clients estimate verification time from the most recent observed round;
  // faults and slowdowns are visible to them through this value.
  last_round_duration_ = round_duration_;
  const SimTime now = events_->now();
  // The commit callback never enqueues into this shard synchronously (every
  // protocol reaction travels through the event queue), so iterating the
  // member block buffer is safe until try_start_round() refills it below.
  for (const QueueItem& item : round_block_) on_commit_(id_, item, now);
  try_start_round();
}

}  // namespace optchain::sim

// One shard: a mempool queue plus a block-production loop driven by the
// consensus model ("each shard implements a queue (or mempool) to store
// incoming transactions that have not been processed yet", §V.A).
//
// Queue items are the three kinds of work the OmniLedger protocol creates:
// same-shard transactions, lock requests at input shards, and
// unlock-to-commit requests at output shards. Each consumes block space,
// which is exactly how cross-shard transactions tax throughput.
//
// The leader packs up to txs_per_block queued items into a block whenever it
// is not already running a round; the round's duration comes from the
// ConsensusModel. Round completion is scheduled as a typed kBlockCommit /
// kViewChange event carrying this shard's id; whoever dispatches the event
// queue (the Simulation, or a test harness) routes it back via
// complete_round(), which reports every item in the block through the commit
// callback (proof-of-acceptance for locks, final commit for the others).
// The in-flight block lives in a member buffer reused across rounds, so the
// steady-state block loop performs no heap allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "sim/consensus.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"

namespace optchain::sim {

/// Fault model for one shard's committee: a chronic slowdown factor (weak
/// hardware, bad geography) and per-round leader faults that trigger a view
/// change (round takes an extra penalty). Clients observe both through the
/// shard's last_round_duration(), which is how OptChain's L2S term learns to
/// route around degraded shards.
struct ShardFaults {
  double slowdown = 1.0;           // multiplier on every round duration
  double leader_fault_rate = 0.0;  // P[view change] per round
  double view_change_penalty_s = 5.0;
  std::uint64_t seed = 0;
};

enum class ItemKind : std::uint8_t {
  kSameShard,  // single-pass transaction
  kLock,       // cross-TX input validation (proof-of-acceptance on commit)
  kCommit,     // cross-TX unlock-to-commit at the output shard
};

struct QueueItem {
  std::uint32_t tx = 0;
  ItemKind kind = ItemKind::kSameShard;
};

class ShardNode {
 public:
  /// Called once per item when the block containing it commits.
  using CommitCallback =
      std::function<void(std::uint32_t shard, const QueueItem&, SimTime)>;

  ShardNode(std::uint32_t id, Position leader_position, ConsensusModel model,
            EventQueue& events, CommitCallback on_commit,
            ShardFaults faults = {});

  ShardNode(const ShardNode&) = delete;
  ShardNode& operator=(const ShardNode&) = delete;

  /// Adds an item to the mempool (at the current event time) and starts a
  /// block round if the leader is idle.
  void enqueue(const QueueItem& item);

  /// Removes and returns every item still waiting in the mempool, in queue
  /// order (the in-flight block, if any, stays and commits normally). Shard
  /// churn uses this to hand a retired shard's backlog to its successor.
  std::vector<QueueItem> drain_queue() {
    std::vector<QueueItem> items(queue_.begin(), queue_.end());
    queue_.clear();
    return items;
  }

  /// Completes the round whose kBlockCommit / kViewChange event just fired:
  /// commits the in-flight block and starts the next round if work is queued.
  /// The event-queue dispatcher must route round events here (see
  /// route_round_event for the common case).
  void complete_round();

  /// True if `event` is a round-completion event addressed to this shard;
  /// routes it via complete_round(). Convenience for dispatch switches.
  bool route_round_event(const Event& event) {
    if ((event.type != EventType::kBlockCommit &&
         event.type != EventType::kViewChange) ||
        event.shard != id_) {
      return false;
    }
    complete_round();
    return true;
  }

  std::uint32_t id() const noexcept { return id_; }
  const Position& leader_position() const noexcept { return leader_position_; }
  std::size_t queue_size() const noexcept { return queue_.size(); }
  std::uint64_t blocks_committed() const noexcept { return blocks_committed_; }
  std::uint64_t items_committed() const noexcept { return items_committed_; }
  std::uint64_t view_changes() const noexcept { return view_changes_; }

  /// Duration of the most recent consensus round; before any block commits,
  /// the model's full-block estimate. Clients read this (plus queue_size) to
  /// form their L2S verification-time estimate.
  double last_round_duration() const noexcept { return last_round_duration_; }

  const ConsensusModel& consensus() const noexcept { return model_; }

  /// Re-points the node at a different event queue. The parallel engine
  /// migrates a retiring shard's node to its successor's shard-group queue
  /// so the node's still-in-flight round completes on the worker that owns
  /// the successor's ledger partition. Only safe between rounds of event
  /// processing (the parallel engine calls it at churn barriers).
  void rebind_queue(EventQueue& events) noexcept { events_ = &events; }

 private:
  void try_start_round();

  std::uint32_t id_;
  Position leader_position_;
  ConsensusModel model_;
  EventQueue* events_;
  CommitCallback on_commit_;
  ShardFaults faults_;
  Rng fault_rng_;

  std::deque<QueueItem> queue_;
  std::vector<QueueItem> round_block_;  // in-flight block, reused per round
  double round_duration_ = 0.0;         // duration of the in-flight round
  bool round_in_progress_ = false;
  std::uint64_t blocks_committed_ = 0;
  std::uint64_t items_committed_ = 0;
  std::uint64_t view_changes_ = 0;
  double last_round_duration_ = 0.0;
};

}  // namespace optchain::sim

// Per-shard deterministic spawn streams.
//
// Creating a shard samples randomness twice: the leader's position and the
// committee geography behind its ConsensusModel. Historically both draws
// came from the simulation's one shared Rng, which made every shard's
// timing depend on the *global draw order* — fine for a single sequential
// engine, fatal for a parallel one (and a latent trap for any future change
// that reorders spawns). Each shard now owns a derived stream: seed =
// mix64(sim_seed ⊕ mix64(salt + shard_id)), so shard s's geography is a
// pure function of (sim_seed, s) no matter which engine, worker or churn
// schedule creates it. Both the sequential engine (sim/simulation.cpp) and
// the parallel engine (sim/parallel/) spawn through this helper — that
// shared path is the first half of the cross-engine bit-identity contract
// (the second half is the event-key merge order; see sim/event_queue.hpp).
//
// The client's own position stays on the undivided Rng(sim_seed) stream:
// there is exactly one client, drawn before any shard, in both engines.
#pragma once

#include <cstdint>
#include <utility>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "sim/consensus.hpp"
#include "sim/network.hpp"

namespace optchain::sim {

/// Seed of shard `shard`'s private spawn stream under simulation seed
/// `sim_seed`. The double mix decorrelates neighbouring shard ids and keeps
/// the stream disjoint from the client stream (raw Rng(sim_seed)) and the
/// per-shard fault streams (ShardNode's 0x51a4d0000-salted mix).
inline std::uint64_t shard_spawn_seed(std::uint64_t sim_seed,
                                      std::uint32_t shard) noexcept {
  constexpr std::uint64_t kSpawnSalt = 0x5a17c0deULL;
  return mix64(sim_seed ^ mix64(kSpawnSalt + shard));
}

/// Everything a spawn samples: the leader's position and the consensus
/// timing model built around it.
struct SpawnedShard {
  Position leader_position;
  ConsensusModel model;
};

/// Samples shard `shard`'s leader position and consensus model from its
/// private spawn stream (see the file comment). A positive
/// `bandwidth_override_bps` makes block dissemination pay that access-link
/// rate instead of the network model's bandwidth (the fabric hook — see
/// ConsensusModel); 0 keeps the historical term. The override is pure
/// config, so both engines pass the same value and stay bit-identical.
inline SpawnedShard spawn_shard(const ConsensusConfig& consensus,
                                const NetworkModel& network,
                                std::uint64_t sim_seed, std::uint32_t shard,
                                double bandwidth_override_bps = 0.0) {
  Rng rng(shard_spawn_seed(sim_seed, shard));
  const Position leader = network.random_position(rng);
  ConsensusModel model(consensus, network, leader, rng,
                       bandwidth_override_bps);
  return SpawnedShard{leader, std::move(model)};
}

}  // namespace optchain::sim

// SimObserver — the simulation's metric/instrumentation hook seam.
//
// The simulator used to be the only thing that could measure a run: every
// collector in stats/ was a hard-wired member of SimResult, and a bench
// binary wanting a new metric had to patch the engine. Observers invert
// that: the engine announces the four protocol-visible moments (issue,
// terminal commit/abort, periodic queue sample, per-shard block commit) and
// anything — the built-in stats::MetricsObserver, a bench scenario, a test
// golden — attaches through api::RunSpec::observers / SimConfig::observers
// without touching the event loop.
//
// Hooks fire synchronously inside the event dispatch, in simulated-time
// order, after the engine's own state update for that moment. Observers must
// not re-enter the simulation; they are pure sinks. An observer is borrowed
// (raw pointer) and must outlive the run.
#pragma once

#include <cstdint>
#include <span>

namespace optchain::sim {

/// One access-link utilization sample (fabric runs only): the state of
/// endpoint `endpoint`'s uplink at the sample instant. Endpoint 0 is the
/// client; endpoint 1 + s is shard s's leader (see sim/fabric/fabric.hpp).
struct LinkSample {
  std::uint32_t endpoint = 0;  ///< sampled endpoint id
  /// Seconds of traffic still queued on the uplink (0 when idle).
  double backlog_s = 0.0;
  /// Cumulative tail drops on this uplink since the run started.
  std::uint64_t drops = 0;
};

/// The simulation's instrumentation hook seam; every hook has an empty
/// default, so observers override only what they measure (see the file
/// comment for the firing contract).
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// Transaction `tx` entered the system at simulated `time`. `cross` is the
  /// placement verdict: at least one input lives outside the chosen shard,
  /// so the cross-shard protocol will run for it.
  virtual void on_issue(std::uint32_t tx, double time, bool cross) {
    (void)tx, (void)time, (void)cross;
  }

  /// Transaction `tx` committed at `time`; `latency_s` = time − issue time
  /// ("from when the transaction is sent until it is committed", §V.B.2).
  virtual void on_commit(std::uint32_t tx, double time, double latency_s) {
    (void)tx, (void)time, (void)latency_s;
  }

  /// Transaction `tx` aborted at `time` (proof-of-rejection path).
  virtual void on_abort(std::uint32_t tx, double time) { (void)tx, (void)time; }

  /// Periodic mempool snapshot (Figs. 6-7 cadence): `queue_sizes[s]` is shard
  /// s's queue length at `time`. The span is only valid during the call.
  virtual void on_queue_sample(double time,
                               std::span<const std::uint64_t> queue_sizes) {
    (void)time, (void)queue_sizes;
  }

  /// Shard `shard` committed a block at `time` (view-change rounds included —
  /// the round still produced its block, just late).
  virtual void on_block_commit(std::uint32_t shard, double time) {
    (void)shard, (void)time;
  }

  /// Periodic access-link snapshot, emitted at the queue-sample cadence when
  /// a link-level fabric is enabled (sim::FabricConfig::enabled) and never
  /// otherwise — flat runs see exactly the historical hook sequence.
  /// `links[i]` samples endpoint i's uplink. The span is only valid during
  /// the call.
  virtual void on_link_sample(double time, std::span<const LinkSample> links) {
    (void)time, (void)links;
  }

  /// The shard set changed at `time` (scripted sim::ShardChurnPlan event).
  /// `joined` = true announces a fresh shard `shard` (migration counts are
  /// zero); false announces shard `shard` retiring, with `migrated_txs`
  /// transaction records and `migrated_utxos` live UTXO-ledger records handed
  /// to its successor. Fires after the engine's own remap for that moment,
  /// interleaved with the other hooks in simulated-time order.
  virtual void on_shard_change(std::uint32_t shard, double time, bool joined,
                               std::uint64_t migrated_txs,
                               std::uint64_t migrated_utxos) {
    (void)shard, (void)time, (void)joined, (void)migrated_txs,
        (void)migrated_utxos;
  }

  /// A periodic re-partition event fired at `time` (sim/repartition.hpp
  /// cadence; fires even when the plan is empty). `migrated_txs` transaction
  /// records moved shards this event (at most the configured budget), owning
  /// `migrated_utxos` live UTXO-ledger records that moved with them;
  /// `deferred_txs` planned moves ran out of budget and wait for the next
  /// event. Fires after the engine's own remap for that moment.
  virtual void on_repartition(double time, std::uint64_t migrated_txs,
                              std::uint64_t migrated_utxos,
                              std::uint64_t deferred_txs) {
    (void)time, (void)migrated_txs, (void)migrated_utxos, (void)deferred_txs;
  }
};

}  // namespace optchain::sim

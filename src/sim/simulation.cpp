#include "sim/simulation.hpp"

#include <algorithm>
#include <functional>

#include "common/assert.hpp"

namespace optchain::sim {

Simulation::Simulation(SimConfig config)
    : config_(config),
      network_(config.network),
      rng_(config.seed),
      result_{} {
  OPTCHAIN_EXPECTS(config_.num_shards >= 1);
  OPTCHAIN_EXPECTS(config_.tx_rate_tps > 0.0);

  client_position_ = network_.random_position(rng_);
  shards_.reserve(config_.num_shards);
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) {
    const Position leader = network_.random_position(rng_);
    ConsensusModel model(config_.consensus, network_, leader, rng_);
    ShardFaults faults;
    faults.slowdown =
        s < config_.shard_slowdown.size() ? config_.shard_slowdown[s] : 1.0;
    faults.leader_fault_rate = config_.leader_fault_rate;
    faults.view_change_penalty_s = config_.view_change_penalty_s;
    faults.seed = config_.seed;
    shards_.push_back(std::make_unique<ShardNode>(
        s, leader, std::move(model), events_,
        [this](std::uint32_t shard, const QueueItem& item, SimTime time) {
          on_item_committed(shard, item, time);
        },
        faults));
  }
}

std::vector<latency::ShardTiming> Simulation::observe_timings() const {
  // What a client can see of each shard (paper §IV.C): the round-trip time it
  // samples itself, and a verification-time estimate formed from the shard's
  // recent consensus duration scaled by the mempool backlog.
  std::vector<latency::ShardTiming> timings(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardNode& shard = *shards_[s];
    timings[s].mean_comm =
        2.0 * network_.propagation_delay(client_position_,
                                         shard.leader_position());
    const double backlog_blocks =
        static_cast<double>(shard.queue_size()) /
        static_cast<double>(config_.consensus.txs_per_block);
    timings[s].mean_verify =
        shard.last_round_duration() * (1.0 + backlog_blocks);
  }
  return timings;
}

SimResult Simulation::run(std::span<const tx::Transaction> transactions,
                          api::PlacementPipeline& pipeline) {
  OPTCHAIN_EXPECTS(pipeline.k() == config_.num_shards);
  // Fresh pipeline only: nothing placed AND nothing previewed (a stale
  // preview would commit a decision made without the simulator's live
  // timing view).
  OPTCHAIN_EXPECTS(pipeline.total() == 0);
  OPTCHAIN_EXPECTS(pipeline.dag().num_nodes() == 0);
  const std::uint64_t n = transactions.size();
  transactions_ = transactions;
  issue_time_.assign(n, 0.0);
  pending_.assign(n, PendingCross{});
  outpoint_state_.clear();
  remaining_ = n;

  result_ = SimResult{};
  result_.placer_name = std::string(pipeline.method_name());
  result_.total_txs = n;
  result_.commits_per_window = stats::WindowCounter(config_.commit_window_s);

  assignment_ = &pipeline.assignment();
  constexpr std::uint64_t kMinPayloadBytes = 512;

  // Issue events are chained — each schedules the next — to keep the event
  // heap small. issue_fn lives on this frame, which outlives the event queue
  // processing loop below.
  std::function<void(std::uint32_t)> issue_fn = [&](std::uint32_t index) {
    const tx::Transaction& transaction = transactions_[index];
    OPTCHAIN_ASSERT(transaction.index == index);
    issue_time_[index] = events_.now();

    // Client-side placement with the client's current view of shard timings
    // for the L2S term. The pipeline handles the TaN registration, the
    // decision and the placer bookkeeping.
    const std::vector<latency::ShardTiming> timings = observe_timings();
    const api::StepResult placed = pipeline.step(transaction, timings);
    const placement::ShardId target = placed.shard;

    // Dispatch into the cross-shard protocol.
    const std::uint64_t payload =
        std::max<std::uint64_t>(transaction.serialized_size(),
                                kMinPayloadBytes);
    if (!placed.cross) {
      ShardNode& shard = *shards_[target];
      events_.schedule_in(
          network_.message_delay(client_position_, shard.leader_position(),
                                 payload),
          [&shard, index] {
            shard.enqueue(QueueItem{index, ItemKind::kSameShard});
          });
    } else {
      ++result_.cross_txs;
      pending_[index].remaining_locks =
          static_cast<std::uint32_t>(placed.input_shards.size());
      pending_[index].output_shard = target;
      for (const placement::ShardId s : placed.input_shards) {
        ShardNode& shard = *shards_[s];
        events_.schedule_in(
            network_.message_delay(client_position_, shard.leader_position(),
                                   payload),
            [&shard, index] {
              shard.enqueue(QueueItem{index, ItemKind::kLock});
            });
      }
    }

    // 4. Chain the next issue event at its nominal time index/rate.
    const std::uint32_t next = index + 1;
    if (next < transactions_.size()) {
      const double next_time =
          static_cast<double>(next) / config_.tx_rate_tps;
      events_.schedule(next_time, [&issue_fn, next] { issue_fn(next); });
    }
  };

  if (n > 0) {
    events_.schedule(0.0, [&issue_fn] { issue_fn(0); });
  }

  // Periodic queue sampling (Figs. 6-7); stops once everything committed.
  std::function<void()> sampler = [this, &sampler] {
    sample_queues();
    if (remaining_ > 0) {
      events_.schedule_in(config_.queue_sample_interval_s, sampler);
    }
  };
  events_.schedule(0.0, sampler);

  while (remaining_ > 0 && !events_.empty() &&
         events_.now() <= config_.max_sim_time_s) {
    events_.run_one();
    ++result_.total_events;
  }

  result_.committed_txs = n - remaining_ - result_.aborted_txs;
  result_.completed = (remaining_ == 0);
  if (result_.latencies.count() > 0) {
    result_.avg_latency_s = result_.latencies.average();
    result_.max_latency_s = result_.latencies.maximum();
  }
  if (result_.duration_s > 0.0) {
    result_.throughput_tps =
        static_cast<double>(result_.committed_txs) / result_.duration_s;
  }
  for (const auto& shard : shards_) {
    result_.total_blocks += shard->blocks_committed();
  }
  result_.final_shard_sizes = pipeline.assignment().sizes();
  assignment_ = nullptr;
  return result_;
}

std::vector<tx::OutPoint> Simulation::inputs_owned_by(
    std::uint32_t index, std::uint32_t shard) const {
  std::vector<tx::OutPoint> owned;
  for (const tx::OutPoint& point : transactions_[index].inputs) {
    if (assignment_->shard_of(point.tx) == shard) owned.push_back(point);
  }
  return owned;
}

bool Simulation::try_lock_inputs(std::uint32_t index, std::uint32_t shard) {
  const std::vector<tx::OutPoint> owned = inputs_owned_by(index, shard);
  for (const tx::OutPoint& point : owned) {
    const auto it = outpoint_state_.find(outpoint_key(point));
    if (it != outpoint_state_.end() && it->second.second != index) {
      return false;  // held or spent by a conflicting transaction
    }
  }
  for (const tx::OutPoint& point : owned) {
    outpoint_state_[outpoint_key(point)] = {OutpointState::kLocked, index};
  }
  return true;
}

void Simulation::release_locks(std::uint32_t index, std::uint32_t shard) {
  for (const tx::OutPoint& point : inputs_owned_by(index, shard)) {
    const auto it = outpoint_state_.find(outpoint_key(point));
    if (it != outpoint_state_.end() &&
        it->second == std::make_pair(OutpointState::kLocked, index)) {
      outpoint_state_.erase(it);
    }
  }
}

void Simulation::spend_inputs(std::uint32_t index) {
  for (const tx::OutPoint& point : transactions_[index].inputs) {
    auto& entry = outpoint_state_[outpoint_key(point)];
    OPTCHAIN_ASSERT(entry.first != OutpointState::kSpent ||
                    entry.second == index);
    entry = {OutpointState::kSpent, index};
  }
}

void Simulation::on_item_committed(std::uint32_t shard, const QueueItem& item,
                                   SimTime time) {
  switch (item.kind) {
    case ItemKind::kSameShard: {
      // Single-pass validation: all inputs live here. A conflict (outpoint
      // already locked/spent by another transaction) is rejected outright.
      if (try_lock_inputs(item.tx, shard)) {
        spend_inputs(item.tx);
        commit_transaction(item.tx, time);
      } else {
        abort_transaction(item.tx, time);
      }
      break;
    }
    case ItemKind::kCommit:
      // Unlock-to-commit at the output shard: locks become permanent spends.
      spend_inputs(item.tx);
      commit_transaction(item.tx, time);
      break;
    case ItemKind::kLock: {
      // Validate and lock this shard's inputs; the proof (acceptance or
      // rejection) travels to the decision point — the client in OmniLedger,
      // the output committee in RapidChain.
      const std::uint32_t index = item.tx;
      const bool accepted = try_lock_inputs(index, shard);
      ShardNode& origin = *shards_[shard];
      const Position decision_point =
          config_.protocol == ProtocolMode::kOmniLedger
              ? client_position_
              : shards_[pending_[index].output_shard]->leader_position();
      const double delay = network_.message_delay(
          origin.leader_position(), decision_point, config_.proof_bytes);
      events_.schedule_in(delay, [this, index, accepted, shard] {
        handle_proof(index, accepted, shard);
      });
      break;
    }
  }
}

void Simulation::handle_proof(std::uint32_t index, bool accepted,
                              std::uint32_t from_shard) {
  PendingCross& pending = pending_[index];
  OPTCHAIN_ASSERT(pending.remaining_locks > 0);
  if (accepted) {
    pending.accepted_shards.push_back(from_shard);
  } else {
    pending.rejected = true;
  }
  if (--pending.remaining_locks > 0) return;

  ShardNode& output = *shards_[pending.output_shard];
  const Position decision_point =
      config_.protocol == ProtocolMode::kOmniLedger
          ? client_position_
          : output.leader_position();

  if (!pending.rejected) {
    // All proofs of acceptance: unlock-to-commit to the output shard.
    const double to_output = network_.message_delay(
        decision_point, output.leader_position(), config_.proof_bytes + 512);
    events_.schedule_in(to_output, [index, &output] {
      output.enqueue(QueueItem{index, ItemKind::kCommit});
    });
    return;
  }

  // At least one proof-of-rejection: unlock-to-abort reclaims the locks at
  // every shard that accepted, and the transaction is abandoned.
  for (const std::uint32_t shard : pending.accepted_shards) {
    const double to_shard = network_.message_delay(
        decision_point, shards_[shard]->leader_position(),
        config_.proof_bytes);
    events_.schedule_in(to_shard, [this, index, shard] {
      release_locks(index, shard);
    });
  }
  abort_transaction(index, events_.now());
}

void Simulation::commit_transaction(std::uint32_t index, SimTime time) {
  OPTCHAIN_ASSERT(remaining_ > 0);
  const double latency = time - issue_time_[index];
  OPTCHAIN_ASSERT(latency >= 0.0);
  result_.latencies.record(latency);
  result_.commits_per_window.record(time);
  result_.duration_s = std::max(result_.duration_s, time);
  --remaining_;
}

void Simulation::abort_transaction(std::uint32_t index, SimTime time) {
  (void)index;
  OPTCHAIN_ASSERT(remaining_ > 0);
  ++result_.aborted_txs;
  result_.duration_s = std::max(result_.duration_s, time);
  --remaining_;
}

void Simulation::sample_queues() {
  std::vector<std::uint64_t> sizes(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    sizes[s] = shards_[s]->queue_size();
  }
  result_.queue_tracker.record(events_.now(), sizes);
}

}  // namespace optchain::sim

#include "sim/simulation.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "sim/shard_spawn.hpp"
#include "workload/dynamic_profile.hpp"

namespace optchain::sim {

Simulation::Simulation(SimConfig config)
    : config_(config),
      network_(config.network),
      fabric_(config.fabric, network_, config.seed),
      rng_(config.seed),
      result_{} {
  OPTCHAIN_EXPECTS(config_.num_shards >= 1);
  OPTCHAIN_EXPECTS(config_.tx_rate_tps > 0.0);
  for (const ShardChurnEvent& change : config_.churn.events) {
    OPTCHAIN_EXPECTS(change.time_s >= 0.0);
  }

  client_position_ = network_.random_position(rng_);
  OPTCHAIN_ASSERT(fabric_.add_endpoint() == kClientEndpoint);
  shards_.reserve(config_.num_shards);
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) spawn_shard_node();
}

void Simulation::spawn_shard_node() {
  const auto s = static_cast<std::uint32_t>(shards_.size());
  // Per-shard spawn stream (sim/shard_spawn.hpp): shard s's geography is a
  // pure function of (sim_seed, s), shared with the parallel engine. An
  // enabled fabric routes consensus block dissemination over the shard's
  // access link (pure config — identical in both engines).
  SpawnedShard spawned = spawn_shard(
      config_.consensus, network_, config_.seed, s,
      config_.fabric.enabled ? config_.fabric.link.bandwidth_bps : 0.0);
  const Position leader = spawned.leader_position;
  ConsensusModel model = std::move(spawned.model);
  ShardFaults faults;
  faults.slowdown =
      s < config_.shard_slowdown.size() ? config_.shard_slowdown[s] : 1.0;
  faults.leader_fault_rate = config_.leader_fault_rate;
  faults.view_change_penalty_s = config_.view_change_penalty_s;
  faults.seed = config_.seed;
  shards_.push_back(std::make_unique<ShardNode>(
      s, leader, std::move(model), events_,
      [this](std::uint32_t shard, const QueueItem& item, SimTime time) {
        on_item_committed(shard, item, time);
      },
      faults));
  OPTCHAIN_ASSERT(fabric_.add_endpoint() == endpoint_of(s));
}

void Simulation::observe_timings() {
  // What a client can see of each shard (paper §IV.C): the round-trip time it
  // samples itself, and a verification-time estimate formed from the shard's
  // recent consensus duration scaled by the mempool backlog.
  timings_.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardNode& shard = *shards_[s];
    // Stateless fabric propagation (= the flat model when disabled), so the
    // placement view prices region tiers and stragglers without perturbing
    // delivery state.
    timings_[s].mean_comm =
        2.0 * fabric_.propagation_delay(
                  kClientEndpoint, endpoint_of(static_cast<std::uint32_t>(s)),
                  client_position_, shard.leader_position());
    const double backlog_blocks =
        static_cast<double>(shard.queue_size()) /
        static_cast<double>(config_.consensus.txs_per_block);
    timings_[s].mean_verify =
        shard.last_round_duration() * (1.0 + backlog_blocks);
  }
}

SimResult Simulation::run(std::span<const tx::Transaction> transactions,
                          api::PlacementPipeline& pipeline) {
  workload::SpanTxSource source(transactions);
  return run(source, pipeline);
}

SimResult Simulation::run(workload::TxSource& source,
                          api::PlacementPipeline& pipeline) {
  OPTCHAIN_EXPECTS(pipeline.k() == config_.num_shards);
  // Fresh pipeline only: nothing placed AND nothing previewed (a stale
  // preview would commit a decision made without the simulator's live
  // timing view).
  OPTCHAIN_EXPECTS(pipeline.total() == 0);
  OPTCHAIN_EXPECTS(pipeline.dag().num_nodes() == 0);

  source_ = &source;
  pipeline_ = &pipeline;
  assignment_ = &pipeline.assignment();
  issued_ = 0;
  outstanding_ = 0;
  committed_ = 0;
  inflight_.clear();
  outpoint_state_.clear();
  successor_of_.resize(shards_.size());
  for (std::uint32_t s = 0; s < successor_of_.size(); ++s) {
    successor_of_[s] = s;
  }
  utxo_records_.assign(churn_enabled() ? shards_.size() : 0, 0);
  live_outputs_.clear();
  repartitioner_.reset();
  if (repartition_enabled()) {
    repartitioner_ =
        std::make_unique<RepartitionController>(config_.repartition);
  }

  result_ = SimResult{};
  result_.placer_name = std::string(pipeline.method_name());
  fabric_.reset_state();

  // All metric collection flows through the observer seam: the engine's own
  // collectors are observers_[0], followed by whatever the caller installed
  // via SimConfig::observers (RunSpec plumbs them through). Hooks fire in
  // this order, synchronously, inside event dispatch.
  metrics_ = stats::MetricsObserver(config_.commit_window_s);
  observers_.clear();
  observers_.push_back(&metrics_);
  for (SimObserver* observer : config_.observers) {
    OPTCHAIN_EXPECTS(observer != nullptr);
    observers_.push_back(observer);
  }

  const auto hint = source.size_hint();
  if (hint.has_value()) {
    // Pre-size everything that scales with the stream so the run never
    // rehashes or reallocates per-transaction state mid-flight: the
    // lock/spend ledger sees ~2 entries per transaction on Bitcoin-like
    // workloads, and the pipeline forwards the hint to its dag, assignment
    // and placer (TanDag::reserve / ScorePool::reserve).
    outpoint_state_.reserve(static_cast<std::size_t>(*hint * 2));
    pipeline.reserve(*hint);
    if (repartition_enabled()) {
      live_outputs_.reserve(static_cast<std::size_t>(*hint));
    }
  }
  inflight_.reserve(1024);
  // The event heap's working set is O(in-flight messages), not O(stream):
  // size it from the expected-txs hint (capped — bench_scale's
  // event_heap_peak tracks how much is actually used) so steady-state runs
  // never reallocate it mid-flight.
  events_.reserve(event_heap_reserve(hint));
  shard_event_counts_.assign(shards_.size(), 0);

  // The issue chain pulls one transaction ahead: the prefetched transaction
  // is what the pending kTxIssue event will issue, and its existence is what
  // tells us whether to chain another issue event (the stream length need
  // not be known).
  staged_valid_ = source_->next(staged_);
  if (staged_valid_) {
    events_.schedule(0.0, Event::tx_issue(0));
  }
  // Periodic queue sampling (Figs. 6-7); stops once everything committed.
  events_.schedule(0.0, Event::queue_sample());
  // Scripted shard churn fires through the same typed queue; the payload is
  // the plan index (the event record has no room for the full change).
  for (std::uint32_t c = 0; c < config_.churn.events.size(); ++c) {
    events_.schedule(config_.churn.events[c].time_s, Event::shard_change(c));
  }
  // The re-partition cadence chains itself like queue sampling: one pending
  // tick at a time, rescheduled while work remains.
  if (repartition_enabled()) {
    events_.schedule(config_.repartition.interval_s, Event::repartition());
  }

  while (work_remaining() && !events_.empty() &&
         events_.now() <= config_.max_sim_time_s) {
    events_.run_one(*this);
    ++result_.total_events;
  }

  result_.total_txs = hint.has_value() ? *hint : issued_;
  result_.committed_txs = committed_;
  result_.completed = !work_remaining();
  result_.cross_txs = metrics_.cross_counter().cross();
  result_.aborted_txs = metrics_.aborted();
  result_.duration_s = metrics_.duration_s();
  result_.shard_changes = metrics_.shard_changes();
  result_.migrated_txs = metrics_.migrated_txs();
  result_.migrated_utxos = metrics_.migrated_utxos();
  result_.repartition_events = metrics_.repartition_events();
  result_.repartition_migrated_txs = metrics_.repartition_migrated_txs();
  result_.repartition_migrated_utxos = metrics_.repartition_migrated_utxos();
  result_.repartition_deferred_txs = metrics_.repartition_deferred_txs();
  result_.latencies = metrics_.latencies();
  result_.commits_per_window = metrics_.commits_per_window();
  result_.queue_tracker = metrics_.queue_tracker();
  if (result_.latencies.count() > 0) {
    result_.avg_latency_s = result_.latencies.average();
    result_.max_latency_s = result_.latencies.maximum();
  }
  if (result_.duration_s > 0.0) {
    result_.throughput_tps =
        static_cast<double>(result_.committed_txs) / result_.duration_s;
  }
  for (const auto& shard : shards_) {
    result_.total_blocks += shard->blocks_committed();
  }
  result_.event_heap_peak = events_.peak_pending();
  const LinkFabric::Stats& link_stats = fabric_.stats();
  result_.link_messages = link_stats.messages;
  result_.link_bytes = link_stats.bytes;
  result_.link_drops = link_stats.drops;
  result_.link_queue_delay_s = link_stats.queue_delay_s;
  result_.link_peak_backlog_s = link_stats.peak_backlog_s;
  shard_event_counts_.resize(shards_.size(), 0);
  result_.shard_event_counts = shard_event_counts_;
  result_.final_shard_sizes = pipeline.assignment().sizes();
  assignment_ = nullptr;
  pipeline_ = nullptr;
  source_ = nullptr;
  return result_;
}

void Simulation::on_event(const Event& event) {
  // Shard-addressed events feed the per-shard diagnostics; client-side
  // events (issues, samples, churn) have no shard. Counted by the shard the
  // message was *addressed* to (pre-churn-resolution), matching the
  // parallel engine's count at record-merge time.
  if (event.type != EventType::kTxIssue &&
      event.type != EventType::kQueueSample &&
      event.type != EventType::kShardChange &&
      event.type != EventType::kRepartition &&
      event.type != EventType::kGossipHop) {
    if (event.shard >= shard_event_counts_.size()) {
      shard_event_counts_.resize(event.shard + 1, 0);
    }
    ++shard_event_counts_[event.shard];
  }
  switch (event.type) {
    case EventType::kTxIssue:
      issue_transaction(event.tx);
      break;
    // Protocol messages resolve their destination through the churn
    // successor chain at *delivery* time: a message sent to a shard that
    // retired mid-flight lands at the shard that inherited its records
    // (resolve_shard is the identity without churn).
    case EventType::kTxDeliver:
      shards_[resolve_shard(event.shard)]->enqueue(
          QueueItem{event.tx, ItemKind::kSameShard});
      break;
    case EventType::kLockRequest:
      shards_[resolve_shard(event.shard)]->enqueue(
          QueueItem{event.tx, ItemKind::kLock});
      break;
    case EventType::kUnlockCommit:
      shards_[resolve_shard(event.shard)]->enqueue(
          QueueItem{event.tx, ItemKind::kCommit});
      break;
    case EventType::kProof:
      handle_proof(event.tx, event.flag != 0, event.shard);
      break;
    case EventType::kUnlockAbort: {
      release_locks(event.tx, resolve_shard(event.shard));
      Inflight& flight = inflight_.at(event.tx);
      OPTCHAIN_ASSERT(flight.releases_in_flight > 0);
      --flight.releases_in_flight;
      erase_if_settled(event.tx);
      break;
    }
    case EventType::kBlockCommit:
    case EventType::kViewChange:
      shards_[event.shard]->complete_round();
      notify_block_commit(event.shard, events_.now());
      break;
    case EventType::kQueueSample:
      sample_queues();
      if (work_remaining()) {
        events_.schedule_in(config_.queue_sample_interval_s,
                            Event::queue_sample());
      }
      break;
    case EventType::kShardChange:
      apply_churn(config_.churn.events[event.tx]);
      break;
    case EventType::kRepartition:
      apply_repartition();
      break;
    case EventType::kGossipHop:
      OPTCHAIN_ASSERT(false);  // tree gossip runs on its own queue
      break;
  }
}

void Simulation::issue_transaction(std::uint32_t index) {
  OPTCHAIN_ASSERT(staged_valid_);
  OPTCHAIN_ASSERT(staged_.index == index);
  constexpr std::uint64_t kMinPayloadBytes = 512;

  Inflight flight;
  flight.issue_time = events_.now();

  // Client-side placement with the client's current view of shard timings
  // for the L2S term. The pipeline handles the TaN registration, the
  // decision and the placer bookkeeping.
  observe_timings();
  const api::StepResult placed = pipeline_->step(staged_, timings_);
  const placement::ShardId target = placed.shard;

  // Dispatch into the cross-shard protocol.
  const std::uint64_t payload =
      std::max<std::uint64_t>(staged_.serialized_size(), kMinPayloadBytes);
  if (!placed.cross) {
    events_.schedule_in(
        fabric_.message_delay(events_.now(), kClientEndpoint,
                              endpoint_of(target), client_position_,
                              shards_[target]->leader_position(), payload),
        Event::deliver(EventType::kTxDeliver, target, index));
  } else {
    flight.cross.remaining_locks =
        static_cast<std::uint32_t>(placed.input_shards.size());
    flight.cross.output_shard = target;
    for (const placement::ShardId s : placed.input_shards) {
      events_.schedule_in(
          fabric_.message_delay(events_.now(), kClientEndpoint,
                                endpoint_of(s), client_position_,
                                shards_[s]->leader_position(), payload),
          Event::deliver(EventType::kLockRequest, s, index));
    }
  }

  // Churn runs track the live UTXO ledger per owning shard (outputs of a
  // transaction belong to its shard), so a retirement can report how many
  // records migrate.
  if (churn_enabled()) {
    utxo_records_[target] += staged_.outputs.size();
  }
  // Repartition runs additionally track live outputs per transaction: what
  // one migrated record carries with it.
  if (repartition_enabled()) {
    OPTCHAIN_ASSERT(live_outputs_.size() == index);
    live_outputs_.push_back(
        static_cast<std::uint32_t>(staged_.outputs.size()));
  }

  // The protocol only needs the inputs from here on; steal them instead of
  // copying (staged_ is overwritten by the prefetch below anyway).
  flight.inputs = std::move(staged_.inputs);
  const double issue_time = flight.issue_time;
  inflight_.emplace(index, std::move(flight));
  ++outstanding_;
  ++issued_;
  notify_issue(index, issue_time, placed.cross);

  // Chain the next issue event, if the stream has one. The source owns the
  // schedule: the default is the historical uniform index/rate, and dynamic
  // sources substitute their rate curve (step/ramp/diurnal/flash-crowd).
  staged_valid_ = source_->next(staged_);
  if (staged_valid_) {
    const double next_time =
        source_->issue_time(index + 1, config_.tx_rate_tps);
    events_.schedule(next_time, Event::tx_issue(index + 1));
  }
}

bool Simulation::try_lock_inputs(std::uint32_t index, std::uint32_t shard) {
  const Inflight& flight = inflight_.at(index);
  for (const tx::OutPoint& point : flight.inputs) {
    if (assignment_->shard_of(point.tx) != shard) continue;
    const auto it = outpoint_state_.find(outpoint_key(point));
    if (it != outpoint_state_.end() && it->second.second != index) {
      return false;  // held or spent by a conflicting transaction
    }
  }
  for (const tx::OutPoint& point : flight.inputs) {
    if (assignment_->shard_of(point.tx) != shard) continue;
    outpoint_state_[outpoint_key(point)] = {OutpointState::kLocked, index};
  }
  return true;
}

void Simulation::release_locks(std::uint32_t index, std::uint32_t shard) {
  const Inflight& flight = inflight_.at(index);
  for (const tx::OutPoint& point : flight.inputs) {
    if (assignment_->shard_of(point.tx) != shard) continue;
    const auto it = outpoint_state_.find(outpoint_key(point));
    if (it != outpoint_state_.end() &&
        it->second == std::make_pair(OutpointState::kLocked, index)) {
      outpoint_state_.erase(it);
    }
  }
}

void Simulation::spend_inputs(std::uint32_t index) {
  const Inflight& flight = inflight_.at(index);
  for (const tx::OutPoint& point : flight.inputs) {
    auto& entry = outpoint_state_[outpoint_key(point)];
    // Without churn or repartition the lock protocol makes a conflicting
    // double-commit impossible; a retirement or re-partition move
    // mid-handoff can drop a lock, so those runs tolerate (and ignore) a
    // late conflicting spend instead of asserting.
    if (entry.first == OutpointState::kSpent && entry.second != index) {
      OPTCHAIN_ASSERT(churn_enabled() || repartition_enabled());
      continue;
    }
    entry = {OutpointState::kSpent, index};
    // Synthetic hotspot outpoints (vout >= kInjectedVoutBase) were never
    // credited as outputs, so only genuine spends consume a record.
    if (point.vout < workload::DynamicTxSource::kInjectedVoutBase) {
      if (churn_enabled()) {
        std::uint64_t& records =
            utxo_records_[assignment_->shard_of(point.tx)];
        if (records > 0) --records;
      }
      if (repartition_enabled() && point.tx < live_outputs_.size()) {
        std::uint32_t& live = live_outputs_[point.tx];
        if (live > 0) --live;
      }
    }
  }
}

void Simulation::on_item_committed(std::uint32_t shard, const QueueItem& item,
                                   SimTime time) {
  // A retired shard's in-flight block still commits; its items act on behalf
  // of the successor that inherited the shard's records.
  shard = resolve_shard(shard);
  switch (item.kind) {
    case ItemKind::kSameShard: {
      // Single-pass validation: all inputs live here. A conflict (outpoint
      // already locked/spent by another transaction) is rejected outright.
      if (try_lock_inputs(item.tx, shard)) {
        spend_inputs(item.tx);
        commit_transaction(item.tx, time);
      } else {
        abort_transaction(item.tx, time);
        inflight_.at(item.tx).aborted = true;
        erase_if_settled(item.tx);
      }
      break;
    }
    case ItemKind::kCommit:
      // Unlock-to-commit at the output shard: locks become permanent spends.
      spend_inputs(item.tx);
      commit_transaction(item.tx, time);
      break;
    case ItemKind::kLock: {
      // Validate and lock this shard's inputs; the proof (acceptance or
      // rejection) travels to the decision point — the client in OmniLedger,
      // the output committee in RapidChain.
      const std::uint32_t index = item.tx;
      const bool accepted = try_lock_inputs(index, shard);
      const ShardNode& origin = *shards_[shard];
      const std::uint32_t decision_ep =
          config_.protocol == ProtocolMode::kOmniLedger
              ? kClientEndpoint
              : endpoint_of(
                    resolve_shard(inflight_.at(index).cross.output_shard));
      const Position decision_point =
          decision_ep == kClientEndpoint
              ? client_position_
              : shards_[decision_ep - 1]->leader_position();
      const double delay =
          fabric_.message_delay(time, endpoint_of(shard), decision_ep,
                                origin.leader_position(), decision_point,
                                config_.proof_bytes);
      events_.schedule_in(delay, Event::proof(index, shard, accepted));
      break;
    }
  }
}

void Simulation::handle_proof(std::uint32_t index, bool accepted,
                              std::uint32_t from_shard) {
  Inflight& flight = inflight_.at(index);
  PendingCross& pending = flight.cross;
  OPTCHAIN_ASSERT(pending.remaining_locks > 0);
  if (accepted) {
    pending.accepted_shards.push_back(from_shard);
  } else {
    pending.rejected = true;
  }
  if (--pending.remaining_locks > 0) return;

  const std::uint32_t output_shard = resolve_shard(pending.output_shard);
  const ShardNode& output = *shards_[output_shard];
  const std::uint32_t decision_ep =
      config_.protocol == ProtocolMode::kOmniLedger
          ? kClientEndpoint
          : endpoint_of(output_shard);
  const Position decision_point =
      config_.protocol == ProtocolMode::kOmniLedger
          ? client_position_
          : output.leader_position();

  if (!pending.rejected) {
    // All proofs of acceptance: unlock-to-commit to the output shard.
    const double to_output = fabric_.message_delay(
        events_.now(), decision_ep, endpoint_of(output_shard), decision_point,
        output.leader_position(), config_.proof_bytes + 512);
    events_.schedule_in(
        to_output,
        Event::deliver(EventType::kUnlockCommit, pending.output_shard, index));
    return;
  }

  // At least one proof-of-rejection: unlock-to-abort reclaims the locks at
  // every shard that accepted, and the transaction is abandoned. The
  // in-flight record stays alive until the releases land (they need the
  // input list).
  for (const std::uint32_t shard : pending.accepted_shards) {
    const double to_shard = fabric_.message_delay(
        events_.now(), decision_ep, endpoint_of(shard), decision_point,
        shards_[shard]->leader_position(), config_.proof_bytes);
    events_.schedule_in(to_shard,
                        Event::deliver(EventType::kUnlockAbort, shard, index));
  }
  flight.releases_in_flight =
      static_cast<std::uint32_t>(pending.accepted_shards.size());
  flight.aborted = true;
  abort_transaction(index, events_.now());
  erase_if_settled(index);
}

void Simulation::commit_transaction(std::uint32_t index, SimTime time) {
  OPTCHAIN_ASSERT(outstanding_ > 0);
  const auto it = inflight_.find(index);
  OPTCHAIN_ASSERT(it != inflight_.end());
  const double latency = time - it->second.issue_time;
  OPTCHAIN_ASSERT(latency >= 0.0);
  ++committed_;
  --outstanding_;
  inflight_.erase(it);
  notify_commit(index, time, latency);
}

void Simulation::abort_transaction(std::uint32_t index, SimTime time) {
  OPTCHAIN_ASSERT(outstanding_ > 0);
  --outstanding_;
  notify_abort(index, time);
}

void Simulation::erase_if_settled(std::uint32_t index) {
  const auto it = inflight_.find(index);
  OPTCHAIN_ASSERT(it != inflight_.end());
  if (it->second.aborted && it->second.releases_in_flight == 0) {
    inflight_.erase(it);
  }
}

void Simulation::sample_queues() {
  queue_sizes_.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    queue_sizes_[s] = shards_[s]->queue_size();
  }
  notify_queue_sample(events_.now(), queue_sizes_);
  // Link samples piggyback on the queue-sample cadence; flat runs (fabric
  // disabled) keep the historical hook sequence exactly.
  if (fabric_.enabled()) {
    fabric_.sample_links(events_.now(), link_samples_);
    notify_link_sample(events_.now(), link_samples_);
  }
}

void Simulation::notify_issue(std::uint32_t tx, double time, bool cross) {
  for (SimObserver* observer : observers_) observer->on_issue(tx, time, cross);
}

void Simulation::notify_commit(std::uint32_t tx, double time,
                               double latency_s) {
  for (SimObserver* observer : observers_) {
    observer->on_commit(tx, time, latency_s);
  }
}

void Simulation::notify_abort(std::uint32_t tx, double time) {
  for (SimObserver* observer : observers_) observer->on_abort(tx, time);
}

void Simulation::notify_queue_sample(
    double time, std::span<const std::uint64_t> queue_sizes) {
  for (SimObserver* observer : observers_) {
    observer->on_queue_sample(time, queue_sizes);
  }
}

void Simulation::notify_link_sample(double time,
                                    std::span<const LinkSample> links) {
  for (SimObserver* observer : observers_) {
    observer->on_link_sample(time, links);
  }
}

void Simulation::notify_block_commit(std::uint32_t shard, double time) {
  for (SimObserver* observer : observers_) {
    observer->on_block_commit(shard, time);
  }
}

void Simulation::notify_shard_change(std::uint32_t shard, double time,
                                     bool joined, std::uint64_t migrated_txs,
                                     std::uint64_t migrated_utxos) {
  for (SimObserver* observer : observers_) {
    observer->on_shard_change(shard, time, joined, migrated_txs,
                              migrated_utxos);
  }
}

void Simulation::apply_churn(const ShardChurnEvent& change) {
  const double time = events_.now();
  const placement::ShardAssignment& assignment = pipeline_->assignment();

  if (change.kind == ChurnKind::kAddShard) {
    // A fresh shard joins: sampled with the same path as start-up shards,
    // announced to the pipeline so placers see k+1 on their next choose().
    spawn_shard_node();
    const placement::ShardId id = pipeline_->add_shard();
    OPTCHAIN_ASSERT(id + 1 == shards_.size());
    successor_of_.push_back(id);
    utxo_records_.push_back(0);
    notify_shard_change(id, time, /*joined=*/true, 0, 0);
    return;
  }

  // Removal: pick the target (kAutoShard = largest active) and hand its
  // whole state to the least-loaded other active shard in one bulk step.
  std::uint32_t target = change.shard;
  if (target == ShardChurnEvent::kAutoShard) {
    target = assignment.largest_active();
  }
  OPTCHAIN_EXPECTS(target < assignment.k() && assignment.is_active(target));
  OPTCHAIN_EXPECTS(assignment.active_count() >= 2);
  std::uint32_t successor = placement::kUnplaced;
  std::uint64_t successor_size = 0;
  for (std::uint32_t j = 0; j < assignment.k(); ++j) {
    if (j == target || !assignment.is_active(j)) continue;
    if (successor == placement::kUnplaced ||
        assignment.size_of(j) < successor_size) {
      successor = j;
      successor_size = assignment.size_of(j);
    }
  }

  const std::uint64_t migrated_txs = pipeline_->retire_shard(target,
                                                             successor);
  const std::uint64_t migrated_utxos = utxo_records_[target];
  utxo_records_[successor] += migrated_utxos;
  utxo_records_[target] = 0;
  successor_of_[target] = successor;
  // Pending mempool work transfers; the retired shard's in-flight block (if
  // any) still commits and is resolved to the successor on delivery.
  for (const QueueItem& item : shards_[target]->drain_queue()) {
    shards_[successor]->enqueue(item);
  }
  notify_shard_change(target, time, /*joined=*/false, migrated_txs,
                      migrated_utxos);
}

void Simulation::notify_repartition(double time, std::uint64_t migrated_txs,
                                    std::uint64_t migrated_utxos,
                                    std::uint64_t deferred_txs) {
  for (SimObserver* observer : observers_) {
    observer->on_repartition(time, migrated_txs, migrated_utxos, deferred_txs);
  }
}

void Simulation::apply_repartition() {
  const double time = events_.now();
  const RepartitionOutcome outcome = repartitioner_->step(*pipeline_);
  std::uint64_t moved_utxos = 0;
  for (const RepartitionMove& move : outcome.applied) {
    OPTCHAIN_ASSERT(move.tx < live_outputs_.size());
    const std::uint64_t live = live_outputs_[move.tx];
    moved_utxos += live;
    if (churn_enabled() && live > 0) {
      // Keep the per-shard aggregates consistent with record ownership, so
      // a later retirement reports the right migrated-UTXO count.
      std::uint64_t& from = utxo_records_[move.from];
      const std::uint64_t transfer = live < from ? live : from;
      from -= transfer;
      utxo_records_[move.to] += transfer;
    }
  }
  notify_repartition(time, outcome.applied.size(), moved_utxos,
                     outcome.deferred);
  if (work_remaining()) {
    events_.schedule_in(config_.repartition.interval_s, Event::repartition());
  }
}

}  // namespace optchain::sim

// Sharded-blockchain simulation driver — the reproduction of the paper's
// OverSim/OMNeT++ experiment harness (§V.A).
//
// Clients issue the transaction stream at a configured rate; each
// transaction is placed by a pluggable placement::Placer, then handled by
// the OmniLedger atomic cross-shard protocol (§III.A):
//
//   same-shard  : client ──tx──▶ output shard ──(block)──▶ committed
//   cross-shard : client ──tx──▶ every input shard (lock)
//                 input shard ──(block)──▶ proof-of-acceptance ──▶ client
//                 client (all proofs) ──unlock-to-commit──▶ output shard
//                 output shard ──(block)──▶ committed
//
// The abort path is simulated too (§III.A step 2-3): every shard tracks the
// lock/spend state of the UTXOs it owns; a lock request hitting an already
// locked or spent outpoint yields a proof-of-rejection, and one rejection
// makes the client abort the transaction with unlock-to-abort messages that
// release the locks taken at the other input shards. Double-spend conflicts
// for exercising this path come from workload::inject_double_spends().
// Consistency with issue order is optimistic: a transaction may lock the
// (not yet committed) outputs of an in-flight ancestor, since the stream
// issues children after their parents.
//
// A RapidChain-style mode routes proofs committee-to-committee ("yanking")
// instead of through the client. All messaging pays the network model's
// latency + bandwidth costs, and every lock/commit consumes mempool and
// block space at its shard — the mechanism behind every throughput/latency
// number in the paper's Figs. 3-11.
//
// Engine shape: the simulation IS the event dispatcher. Every scheduled
// action is a typed POD Event (sim/event_queue.hpp) dispatched by the
// on_event() switch — no per-event closures — and the transaction stream is
// pulled from a workload::TxSource one transaction at a time, so a run
// retains only the in-flight transactions (plus the O(1)-per-tx placement
// state the pipeline owns), not the whole stream.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/placement_pipeline.hpp"
#include "latency/l2s_model.hpp"
#include "placement/shard_assignment.hpp"
#include "sim/consensus.hpp"
#include "sim/event_queue.hpp"
#include "sim/fabric/fabric.hpp"
#include "sim/network.hpp"
#include "sim/repartition.hpp"
#include "sim/shard_churn.hpp"
#include "sim/shard_node.hpp"
#include "sim/sim_observer.hpp"
#include "stats/metrics.hpp"
#include "txmodel/transaction.hpp"
#include "workload/tx_source.hpp"

namespace optchain::sim {

enum class ProtocolMode : std::uint8_t {
  kOmniLedger,  // client-driven lock/unlock (Atomix)
  kRapidChain,  // committee-to-committee yanking
};

struct SimConfig {
  std::uint32_t num_shards = 16;
  double tx_rate_tps = 2000.0;
  NetworkConfig network;
  /// Link-level network fabric (sim/fabric/). Disabled by default: every
  /// delivery then goes through the flat `network` model unchanged. When
  /// enabled, protocol messages pay region-tier propagation, access-link
  /// serialization/queueing and jitter instead (see FabricConfig), and
  /// consensus block dissemination pays the fabric's link bandwidth.
  FabricConfig fabric;
  ConsensusConfig consensus;
  ProtocolMode protocol = ProtocolMode::kOmniLedger;
  std::uint64_t seed = 42;

  /// Failure injection: per-round leader faults across all shards, plus an
  /// optional chronic per-shard slowdown (shard_slowdown[s] multiplies shard
  /// s's round durations; missing entries default to 1.0).
  double leader_fault_rate = 0.0;
  double view_change_penalty_s = 5.0;
  std::vector<double> shard_slowdown;

  /// Metric cadence. The paper uses 50 s commit windows (Fig. 5); scaled-down
  /// streams may prefer narrower windows.
  double queue_sample_interval_s = 5.0;
  double commit_window_s = 50.0;

  /// Safety horizon: the run aborts (and reports failure) if the simulated
  /// clock passes this bound before every transaction commits.
  double max_sim_time_s = 1e7;

  /// Scripted shard membership changes (see sim/shard_churn.hpp). An empty
  /// plan leaves every engine code path and random draw untouched.
  ShardChurnPlan churn;

  /// Online re-partition cadence/budget (see sim/repartition.hpp). Disabled
  /// by default; a disabled config leaves every code path untouched.
  RepartitionConfig repartition;

  /// Message payload sizes (bytes).
  std::uint64_t proof_bytes = 256;

  /// Borrowed instrumentation hooks (see sim/sim_observer.hpp); each must
  /// outlive the run. The engine's own metric collection is itself an
  /// observer (stats::MetricsObserver), always notified first.
  std::vector<SimObserver*> observers;
};

struct SimResult {
  std::string placer_name;
  std::uint64_t total_txs = 0;
  std::uint64_t cross_txs = 0;
  std::uint64_t committed_txs = 0;
  std::uint64_t aborted_txs = 0;  // proof-of-rejection path (double spends)
  bool completed = false;        // every transaction committed or aborted
  double duration_s = 0.0;       // simulated time of the last commit
  double throughput_tps = 0.0;   // total_txs / duration_s
  double avg_latency_s = 0.0;
  double max_latency_s = 0.0;
  std::uint64_t total_blocks = 0;
  std::uint64_t total_events = 0;

  /// Memory-shape diagnostics. `shard_event_counts[s]` counts the
  /// shard-addressed events (deliveries, proofs, round completions,
  /// unlocks) dispatched for shard s — identical across engines by
  /// construction. `event_heap_peak` is the deepest any event heap got
  /// during the run; it is engine-*specific* (the parallel engine's
  /// per-shard-group heaps are individually shallower than the sequential
  /// engine's one global heap) and deliberately outside the bit-identity
  /// contract.
  std::uint64_t event_heap_peak = 0;
  std::vector<std::uint64_t> shard_event_counts;

  /// Shard churn accounting (zero without a churn plan): fired membership
  /// changes, transaction records bulk-migrated off retiring shards, and
  /// live UTXO-ledger records that moved with them.
  std::uint64_t shard_changes = 0;
  std::uint64_t migrated_txs = 0;
  std::uint64_t migrated_utxos = 0;

  /// Online re-partition accounting (zero unless SimConfig::repartition is
  /// enabled): fired events, transaction records migrated by the controller,
  /// live UTXO-ledger records that moved with them, and the sum over events
  /// of moves deferred past the migration budget.
  std::uint64_t repartition_events = 0;
  std::uint64_t repartition_migrated_txs = 0;
  std::uint64_t repartition_migrated_utxos = 0;
  std::uint64_t repartition_deferred_txs = 0;

  /// Link-fabric accounting (all zero when SimConfig::fabric is disabled;
  /// copied from LinkFabric::stats() at run end, inside the cross-engine
  /// bit-identity contract): delivered protocol messages and payload bytes,
  /// tail drops (each retransmitted), total time messages spent queued on
  /// busy uplinks, and the deepest uplink backlog ever observed.
  std::uint64_t link_messages = 0;
  std::uint64_t link_bytes = 0;
  std::uint64_t link_drops = 0;
  double link_queue_delay_s = 0.0;
  double link_peak_backlog_s = 0.0;

  stats::LatencyRecorder latencies;
  stats::WindowCounter commits_per_window{50.0};
  stats::QueueTracker queue_tracker;
  std::vector<std::uint64_t> final_shard_sizes;

  double cross_fraction() const noexcept {
    return total_txs == 0 ? 0.0
                          : static_cast<double>(cross_txs) /
                                static_cast<double>(total_txs);
  }
};

class Simulation final : private EventHandler {
 public:
  explicit Simulation(SimConfig config);

  /// Streams transactions from `source` through the placement pipeline and
  /// the cross-shard protocol. The pipeline must be fresh (nothing placed
  /// yet) and its shard count must match the simulation's: its TaN dag fills
  /// online as transactions are issued, so a placer constructed over it sees
  /// exactly the prefix that has arrived. The source must yield dense
  /// indices 0..n-1. Working memory is O(in-flight transactions), not O(n).
  SimResult run(workload::TxSource& source, api::PlacementPipeline& pipeline);

  /// Convenience for pre-materialized streams (adapts a SpanTxSource).
  SimResult run(std::span<const tx::Transaction> transactions,
                api::PlacementPipeline& pipeline);

  const SimConfig& config() const noexcept { return config_; }

 private:
  struct PendingCross {
    std::uint32_t remaining_locks = 0;
    std::uint32_t output_shard = 0;
    bool rejected = false;
    std::vector<std::uint32_t> accepted_shards;
  };

  /// Everything the protocol still needs about an issued, not-yet-terminal
  /// transaction. Erased once the transaction commits (or aborts and every
  /// unlock-to-abort has released its locks), which is what keeps streamed
  /// runs at O(in-flight) memory.
  struct Inflight {
    double issue_time = 0.0;
    std::vector<tx::OutPoint> inputs;
    PendingCross cross;
    /// Unlock-to-abort messages still traveling after an abort; the entry
    /// stays alive until they have all released their locks.
    std::uint32_t releases_in_flight = 0;
    bool aborted = false;
  };

  enum class OutpointState : std::uint8_t { kLocked, kSpent };

  void on_event(const Event& event) override;
  void notify_issue(std::uint32_t tx, double time, bool cross);
  void notify_commit(std::uint32_t tx, double time, double latency_s);
  void notify_abort(std::uint32_t tx, double time);
  void notify_queue_sample(double time,
                           std::span<const std::uint64_t> queue_sizes);
  void notify_link_sample(double time, std::span<const LinkSample> links);
  void notify_block_commit(std::uint32_t shard, double time);
  void notify_shard_change(std::uint32_t shard, double time, bool joined,
                           std::uint64_t migrated_txs,
                           std::uint64_t migrated_utxos);
  void issue_transaction(std::uint32_t index);
  void on_item_committed(std::uint32_t shard, const QueueItem& item,
                         SimTime time);
  void commit_transaction(std::uint32_t index, SimTime time);
  void abort_transaction(std::uint32_t index, SimTime time);
  void sample_queues();
  void observe_timings();

  /// Transactions issued but not yet terminal, or not yet issued: the run
  /// loop's continue condition (the streaming equivalent of the old
  /// "remaining > 0").
  bool work_remaining() const noexcept {
    return staged_valid_ || outstanding_ > 0;
  }

  static std::uint64_t outpoint_key(const tx::OutPoint& point) noexcept {
    return (static_cast<std::uint64_t>(point.tx) << 32) | point.vout;
  }
  /// Fabric endpoint ids: the client is endpoint 0, shard s is 1 + s (the
  /// same convention in both engines — endpoints register in spawn order).
  static constexpr std::uint32_t kClientEndpoint = 0;
  static std::uint32_t endpoint_of(std::uint32_t shard) noexcept {
    return shard + 1;
  }
  /// Attempts to lock `index`'s inputs owned by `shard`; returns false (and
  /// locks nothing) if any is held or spent by another transaction.
  bool try_lock_inputs(std::uint32_t index, std::uint32_t shard);
  void release_locks(std::uint32_t index, std::uint32_t shard);
  void spend_inputs(std::uint32_t index);
  void handle_proof(std::uint32_t index, bool accepted,
                    std::uint32_t from_shard);
  void erase_if_settled(std::uint32_t index);

  // ----- shard churn ------------------------------------------------------
  bool churn_enabled() const noexcept { return !config_.churn.events.empty(); }
  /// Appends one ShardNode (constructor start-up and mid-run kAddShard share
  /// the same sampling path, so churn-free runs draw identically).
  void spawn_shard_node();
  /// Follows the retirement successor chain to the shard currently
  /// responsible for `shard`'s protocol role (identity without churn).
  std::uint32_t resolve_shard(std::uint32_t shard) const noexcept {
    while (successor_of_[shard] != shard) shard = successor_of_[shard];
    return shard;
  }
  void apply_churn(const ShardChurnEvent& change);

  // ----- online re-partition ---------------------------------------------
  bool repartition_enabled() const noexcept {
    return config_.repartition.enabled();
  }
  /// One kRepartition tick: drives the controller, transfers per-shard UTXO
  /// aggregates with the moved records, notifies observers, reschedules.
  void apply_repartition();
  void notify_repartition(double time, std::uint64_t migrated_txs,
                          std::uint64_t migrated_utxos,
                          std::uint64_t deferred_txs);

  SimConfig config_;
  EventQueue events_;
  NetworkModel network_;
  /// The link-level fabric every delivery routes through; a disabled config
  /// makes it a stateless pass-through to network_.
  LinkFabric fabric_;
  Rng rng_;
  Position client_position_;
  std::vector<std::unique_ptr<ShardNode>> shards_;

  // Per-run state.
  workload::TxSource* source_ = nullptr;
  tx::Transaction staged_;    // prefetched next transaction (buffer reused)
  bool staged_valid_ = false;
  std::uint64_t issued_ = 0;
  std::uint64_t outstanding_ = 0;  // issued, not yet terminal
  std::uint64_t committed_ = 0;
  std::unordered_map<std::uint32_t, Inflight> inflight_;
  api::PlacementPipeline* pipeline_ = nullptr;
  const placement::ShardAssignment* assignment_ = nullptr;
  std::vector<latency::ShardTiming> timings_;  // scratch for observe_timings
  // Lock/spend ledger state per outpoint; absent key = available. Spent
  // entries persist (double-spend detection), so this is the one per-run
  // structure that grows with the stream — bucket-reserved from the size
  // hint to avoid rehash storms mid-run.
  std::unordered_map<std::uint64_t, std::pair<OutpointState, std::uint32_t>>
      outpoint_state_;
  std::vector<std::uint64_t> queue_sizes_;  // scratch for sample_queues
  std::vector<LinkSample> link_samples_;    // scratch for sample_queues
  /// Shard-addressed events dispatched per shard (SimResult diagnostics).
  std::vector<std::uint64_t> shard_event_counts_;
  /// Retirement successor chain: successor_of_[s] == s while s is active.
  /// Messages addressed to a retired shard resolve through this at delivery.
  std::vector<std::uint32_t> successor_of_;
  /// Live UTXO-ledger records per owning shard (churn runs only): outputs
  /// created by the shard's transactions minus spends. The per-retirement
  /// migrated-UTXO metric reads the retiring shard's entry.
  std::vector<std::uint64_t> utxo_records_;
  /// Live (unspent, non-injected) outputs per transaction (repartition runs
  /// only): what a single migrated record carries with it. Maintained by the
  /// same spend path as utxo_records_.
  std::vector<std::uint32_t> live_outputs_;
  /// The online re-partition controller (repartition runs only).
  std::unique_ptr<RepartitionController> repartitioner_;
  /// The engine's own collectors, attached through the same observer seam as
  /// external hooks (observers_[0]); copied into result_ when the run ends.
  stats::MetricsObserver metrics_;
  std::vector<SimObserver*> observers_;
  SimResult result_;
};

}  // namespace optchain::sim

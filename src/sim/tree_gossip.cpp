#include "sim/tree_gossip.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/assert.hpp"
#include "sim/event_queue.hpp"
#include "sim/fabric/fabric.hpp"

namespace optchain::sim {
namespace {

/// Hop delivery model of a phase: delay of `bytes` sent from tree node
/// `from` to `to` at simulated time `now`. The flat overloads close over a
/// NetworkModel (stateless — `now` unused); the fabric overload closes over
/// a LinkFabric, whose uplink queues advance as hops are scheduled.
using HopDelay = std::function<double(
    double now, std::size_t from, std::size_t to, std::uint64_t bytes)>;

/// One phase: the payload flows root -> leaves along the tree, each node
/// responds as soon as its whole subtree has responded, and the phase ends
/// when the root holds every response. Returns the phase duration.
///
/// Node 0 is the leader; nodes 1..n are validators; the parent of node i
/// (i >= 1) is (i - 1) / branching. Messages are typed kGossipHop events
/// (flag 0 = payload downward to `shard`, flag 1 = response upward to
/// `shard`), dispatched by the on_event switch below.
class TreePhase final : public EventHandler {
 public:
  TreePhase(HopDelay delay, std::size_t nodes, std::uint32_t branching,
            std::uint64_t down_bytes, std::uint64_t up_bytes,
            double node_compute)
      : delay_(std::move(delay)),
        nodes_(nodes),
        branching_(branching),
        down_bytes_(down_bytes),
        up_bytes_(up_bytes),
        node_compute_(node_compute),
        pending_children_(nodes, 0),
        subtree_done_at_(nodes, 0.0) {
    OPTCHAIN_EXPECTS(branching_ >= 1);
  }

  double run() {
    const std::size_t n = nodes_;
    for (std::size_t i = 1; i < n; ++i) {
      ++pending_children_[parent_of(i)];
    }
    // Deliver downward from the root at t=0.
    deliver_down(0, 0.0);
    while (events_.run_one(*this)) {
    }
    return done_time_;
  }

  void on_event(const Event& event) override {
    OPTCHAIN_ASSERT(event.type == EventType::kGossipHop);
    if (event.flag == 0) {
      deliver_down(event.shard, events_.now());
    } else {
      // A child's response reaches its parent; the parent aggregates once
      // all children reported — its own response (already validated on the
      // way down) joins the aggregate.
      const std::size_t parent = event.shard;
      OPTCHAIN_ASSERT(pending_children_[parent] > 0);
      if (--pending_children_[parent] == 0) {
        respond_up(parent, events_.now());
      }
    }
  }

 private:
  std::size_t parent_of(std::size_t i) const noexcept {
    return (i - 1) / branching_;
  }

  void deliver_down(std::size_t node, double now) {
    // Node receives the payload at `now`, validates, forwards to children.
    const double ready = now + node_compute_;
    bool has_children = false;
    for (std::uint32_t c = 1; c <= branching_; ++c) {
      const std::size_t child = node * branching_ + c;
      if (child >= nodes_) break;
      has_children = true;
      const double delay = delay_(ready, node, child, down_bytes_);
      events_.schedule(
          ready + delay,
          Event::gossip(static_cast<std::uint32_t>(child), /*upward=*/false));
    }
    if (!has_children) {
      // Leaf: respond immediately after validation.
      respond_up(node, ready);
    }
  }

  void respond_up(std::size_t node, double now) {
    subtree_done_at_[node] = std::max(subtree_done_at_[node], now);
    if (node == 0) {
      done_time_ = std::max(done_time_, now);
      return;
    }
    const std::size_t parent = parent_of(node);
    const double delay = delay_(now, node, parent, up_bytes_);
    events_.schedule(
        now + delay,
        Event::gossip(static_cast<std::uint32_t>(parent), /*upward=*/true));
  }

  HopDelay delay_;
  std::size_t nodes_;
  std::uint32_t branching_;
  std::uint64_t down_bytes_;
  std::uint64_t up_bytes_;
  double node_compute_;

  EventQueue events_;
  std::vector<std::uint32_t> pending_children_;
  std::vector<double> subtree_done_at_;
  double done_time_ = 0.0;
};

/// The tree positions: leader at node 0, validators behind it.
std::vector<Position> build_tree(const Position& leader,
                                 std::span<const Position> validators) {
  std::vector<Position> tree;
  tree.reserve(validators.size() + 1);
  tree.push_back(leader);
  tree.insert(tree.end(), validators.begin(), validators.end());
  return tree;
}

/// Runs the two phases of a round under the given hop-delivery models.
/// Phase 1 (prepare): full block travels down, signature shares up. Phase 2
/// (commit): only the aggregate announcement travels (small), no
/// re-validation.
double run_two_phase(const HopDelay& prepare_delay,
                     const HopDelay& commit_delay, std::size_t nodes,
                     const ConsensusConfig& consensus,
                     std::uint32_t txs_in_block,
                     const TreeGossipConfig& config) {
  OPTCHAIN_EXPECTS(txs_in_block <= consensus.txs_per_block);
  const double fill = static_cast<double>(txs_in_block) /
                      static_cast<double>(consensus.txs_per_block);
  const auto block_bytes = static_cast<std::uint64_t>(
      fill * static_cast<double>(consensus.block_bytes));
  const double validation = consensus.per_tx_validation_s * txs_in_block;

  TreePhase prepare(prepare_delay, nodes, config.branching, block_bytes,
                    config.response_bytes, validation);
  TreePhase commit(commit_delay, nodes, config.branching,
                   config.response_bytes, config.response_bytes, 0.0);
  return consensus.prepare_overhead_s + prepare.run() + commit.run();
}

}  // namespace

double simulate_tree_gossip_round(const NetworkModel& network,
                                  const Position& leader,
                                  std::span<const Position> validators,
                                  const ConsensusConfig& consensus,
                                  std::uint32_t txs_in_block,
                                  const TreeGossipConfig& config) {
  const std::vector<Position> tree = build_tree(leader, validators);
  const HopDelay flat = [&](double /*now*/, std::size_t from, std::size_t to,
                            std::uint64_t bytes) {
    return network.message_delay(tree[from], tree[to], bytes);
  };
  return run_two_phase(flat, flat, tree.size(), consensus, txs_in_block,
                       config);
}

double simulate_tree_gossip_round(const NetworkModel& network,
                                  const Position& leader,
                                  const ConsensusConfig& consensus,
                                  std::uint32_t txs_in_block, Rng& rng,
                                  const TreeGossipConfig& config) {
  std::vector<Position> validators;
  const std::uint32_t n =
      consensus.committee_size > 0 ? consensus.committee_size - 1 : 0;
  validators.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    validators.push_back(network.random_position(rng));
  }
  return simulate_tree_gossip_round(network, leader, validators, consensus,
                                    txs_in_block, config);
}

double simulate_tree_gossip_round(const FabricConfig& fabric,
                                  const NetworkModel& network,
                                  const Position& leader,
                                  std::span<const Position> validators,
                                  const ConsensusConfig& consensus,
                                  std::uint32_t txs_in_block,
                                  std::uint64_t sim_seed,
                                  const TreeGossipConfig& config) {
  const std::vector<Position> tree = build_tree(leader, validators);
  // One fabric per phase: links start idle at each phase boundary, so the
  // prepare fan-out's queue buildup doesn't leak into the commit wave.
  LinkFabric prepare_fabric(fabric, network, sim_seed);
  LinkFabric commit_fabric(fabric, network, sim_seed);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    prepare_fabric.add_endpoint();
    commit_fabric.add_endpoint();
  }
  const auto hop = [&tree](LinkFabric* links) -> HopDelay {
    return [&tree, links](double now, std::size_t from, std::size_t to,
                          std::uint64_t bytes) {
      return links->message_delay(now, static_cast<std::uint32_t>(from),
                                  static_cast<std::uint32_t>(to), tree[from],
                                  tree[to], bytes);
    };
  };
  return run_two_phase(hop(&prepare_fabric), hop(&commit_fabric), tree.size(),
                       consensus, txs_in_block, config);
}

}  // namespace optchain::sim

// Message-level intra-shard consensus round (ByzCoinX-style tree gossip).
//
// The main simulator abstracts a committee round to the closed-form
// ConsensusModel (the consensus-abstraction substitution). This module simulates the same
// round at per-message fidelity so that abstraction can be *validated*
// rather than assumed:
//
//   - the leader multicasts the block proposal down a branching-factor-b
//     communication tree over the committee (store-and-forward: every hop
//     pays propagation latency plus serialization of the full block),
//   - validators validate (per-transaction cost) and aggregate signed
//     responses back up the tree (small messages),
//   - a second announce/collect wave (the commit phase) finishes the round.
//
// simulate_tree_gossip_round() returns the completion time of one round on a
// dedicated event queue. tests/sim_test.cpp checks the closed-form
// ConsensusModel stays within a small band of this ground truth across
// committee sizes and block fills; bench_micro quantifies the fidelity/cost
// gap between the two.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/consensus.hpp"
#include "sim/fabric/fabric_config.hpp"
#include "sim/network.hpp"

namespace optchain::sim {

struct TreeGossipConfig {
  /// Communication-tree fan-out. ByzCoinX uses shallow, wide trees so block
  /// dissemination is nearly single-hop; 8 keeps a 400-validator committee
  /// at depth 3.
  std::uint32_t branching = 8;
  std::uint64_t response_bytes = 192;  // aggregated signature share
};

/// Simulates one two-phase tree-gossip consensus round at message level.
/// `validators` are the committee members' positions (the leader is separate
/// and forms the tree root). Returns the round duration in seconds.
double simulate_tree_gossip_round(const NetworkModel& network,
                                  const Position& leader,
                                  std::span<const Position> validators,
                                  const ConsensusConfig& consensus,
                                  std::uint32_t txs_in_block,
                                  const TreeGossipConfig& config = {});

/// Convenience: samples `committee_size - 1` validator positions with `rng`
/// and runs the round (mirrors how ConsensusModel samples its committee).
double simulate_tree_gossip_round(const NetworkModel& network,
                                  const Position& leader,
                                  const ConsensusConfig& consensus,
                                  std::uint32_t txs_in_block, Rng& rng,
                                  const TreeGossipConfig& config = {});

/// Fabric-aware variant: every hop is delivered through a LinkFabric built
/// from `fabric` (tree node i = fabric endpoint i, the leader at 0), so a
/// parent's fan-out to its children serializes on the parent's uplink and
/// geo-region tiers/jitter/stragglers apply per hop. Each phase gets a fresh
/// fabric (links start idle, like a fresh round). With `fabric.enabled ==
/// false` this reduces exactly to the flat overload above.
double simulate_tree_gossip_round(const FabricConfig& fabric,
                                  const NetworkModel& network,
                                  const Position& leader,
                                  std::span<const Position> validators,
                                  const ConsensusConfig& consensus,
                                  std::uint32_t txs_in_block,
                                  std::uint64_t sim_seed,
                                  const TreeGossipConfig& config = {});

}  // namespace optchain::sim

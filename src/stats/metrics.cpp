#include "stats/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace optchain::stats {

WindowCounter::WindowCounter(double window_seconds)
    : window_seconds_(window_seconds) {
  OPTCHAIN_EXPECTS(window_seconds > 0.0);
}

void WindowCounter::record(double time_seconds, std::uint64_t count) {
  OPTCHAIN_EXPECTS(time_seconds >= 0.0);
  const auto window = static_cast<std::size_t>(time_seconds / window_seconds_);
  if (window >= counts_.size()) counts_.resize(window + 1, 0);
  counts_[window] += count;
}

std::uint64_t WindowCounter::count_in_window(std::size_t window) const noexcept {
  return window < counts_.size() ? counts_[window] : 0;
}

void QueueTracker::record(double time_seconds,
                          std::span<const std::uint64_t> queues) {
  OPTCHAIN_EXPECTS(!queues.empty());
  QueueSnapshot snap;
  snap.time = time_seconds;
  snap.max_queue = *std::max_element(queues.begin(), queues.end());
  snap.min_queue = *std::min_element(queues.begin(), queues.end());
  global_max_ = std::max(global_max_, snap.max_queue);
  snapshots_.push_back(snap);
}

double QueueTracker::worst_ratio() const noexcept {
  double worst = 0.0;
  for (const auto& snap : snapshots_) worst = std::max(worst, snap.ratio());
  return worst;
}

}  // namespace optchain::stats

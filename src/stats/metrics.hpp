// Experiment metric collectors.
//
// These map one-to-one onto the measurements in the paper's evaluation:
//  - LatencyRecorder   → Figs. 8, 9, 10 (avg/max latency, latency CDF)
//  - WindowCounter     → Fig. 5 (transactions committed per 50 s window)
//  - QueueTracker      → Figs. 6, 7 (max/min shard queue sizes and their ratio)
//  - CrossTxCounter    → Tables I, II (cross-shard transaction counts)
//  - MetricsObserver   → all of the above as one sim::SimObserver, attachable
//                        to a run through api::RunSpec::observers
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/histogram.hpp"
#include "sim/sim_observer.hpp"

namespace optchain::stats {

/// Records per-transaction confirmation latencies ("the time from when the
/// transaction is sent until it is committed to the blockchain").
class LatencyRecorder {
 public:
  void record(double latency_seconds) { samples_.add(latency_seconds); }

  std::size_t count() const noexcept { return samples_.count(); }
  double average() const noexcept { return samples_.mean(); }
  double maximum() const noexcept { return samples_.max(); }
  double quantile(double q) const { return samples_.quantile(q); }

  /// Fraction of transactions confirmed within each threshold (Fig. 10).
  std::vector<double> cdf_at(const std::vector<double>& thresholds) const {
    return samples_.cdf_at(thresholds);
  }

 private:
  SampleStats samples_;
};

/// Counts events into fixed-width time windows (window index = t / width).
class WindowCounter {
 public:
  explicit WindowCounter(double window_seconds);

  void record(double time_seconds, std::uint64_t count = 1);

  double window_seconds() const noexcept { return window_seconds_; }
  std::size_t num_windows() const noexcept { return counts_.size(); }
  std::uint64_t count_in_window(std::size_t window) const noexcept;
  const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }

 private:
  double window_seconds_;
  std::vector<std::uint64_t> counts_;
};

/// Periodic snapshot of per-shard queue sizes.
struct QueueSnapshot {
  double time = 0.0;
  std::uint64_t max_queue = 0;
  std::uint64_t min_queue = 0;

  /// max/min with the paper's convention that an idle (zero) minimum makes
  /// the ratio diverge; we report min clamped to 1 to keep it finite.
  double ratio() const noexcept {
    return static_cast<double>(max_queue) /
           static_cast<double>(min_queue == 0 ? 1 : min_queue);
  }
};

class QueueTracker {
 public:
  void record(double time_seconds, std::span<const std::uint64_t> queues);

  const std::vector<QueueSnapshot>& snapshots() const noexcept {
    return snapshots_;
  }
  std::uint64_t global_max() const noexcept { return global_max_; }
  double worst_ratio() const noexcept;

 private:
  std::vector<QueueSnapshot> snapshots_;
  std::uint64_t global_max_ = 0;
};

/// Same-shard vs cross-shard placement accounting.
class CrossTxCounter {
 public:
  void record(bool is_cross) noexcept {
    ++total_;
    if (is_cross) ++cross_;
  }

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t cross() const noexcept { return cross_; }
  double fraction() const noexcept {
    return total_ == 0 ? 0.0
                       : static_cast<double>(cross_) /
                             static_cast<double>(total_);
  }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t cross_ = 0;
};

/// The standard collector bundle as one sim::SimObserver: everything the
/// paper's figures measure, filled from the four observer hooks instead of
/// hand-wired engine members. The simulator installs one internally (its
/// collectors become SimResult's), and any consumer can attach its own
/// through api::RunSpec::observers to measure a run from outside the engine
/// — tests/scenario_test.cpp pins the two views bit-identical.
class MetricsObserver final : public sim::SimObserver {
 public:
  /// `commit_window_s` is the Fig. 5 window width (the paper uses 50 s).
  explicit MetricsObserver(double commit_window_s = 50.0)
      : commits_per_window_(commit_window_s) {}

  void on_issue(std::uint32_t /*tx*/, double /*time*/, bool cross) override {
    cross_counter_.record(cross);
  }
  void on_commit(std::uint32_t /*tx*/, double time,
                 double latency_s) override {
    latencies_.record(latency_s);
    commits_per_window_.record(time);
    ++committed_;
    duration_s_ = duration_s_ < time ? time : duration_s_;
  }
  void on_abort(std::uint32_t /*tx*/, double time) override {
    ++aborted_;
    duration_s_ = duration_s_ < time ? time : duration_s_;
  }
  void on_queue_sample(double time,
                       std::span<const std::uint64_t> queue_sizes) override {
    queue_tracker_.record(time, queue_sizes);
  }
  void on_block_commit(std::uint32_t /*shard*/, double /*time*/) override {
    ++blocks_;
  }
  void on_link_sample(double /*time*/,
                      std::span<const sim::LinkSample> links) override {
    ++link_samples_;
    for (const sim::LinkSample& link : links) {
      peak_backlog_s_ =
          peak_backlog_s_ < link.backlog_s ? link.backlog_s : peak_backlog_s_;
      if (link.endpoint >= link_drops_.size()) {
        link_drops_.resize(link.endpoint + 1, 0);
      }
      link_drops_[link.endpoint] = link.drops;  // cumulative; keep latest
    }
  }
  void on_shard_change(std::uint32_t /*shard*/, double /*time*/,
                       bool /*joined*/, std::uint64_t migrated_txs,
                       std::uint64_t migrated_utxos) override {
    ++shard_changes_;
    migrated_txs_ += migrated_txs;
    migrated_utxos_ += migrated_utxos;
  }
  void on_repartition(double /*time*/, std::uint64_t migrated_txs,
                      std::uint64_t migrated_utxos,
                      std::uint64_t deferred_txs) override {
    ++repartition_events_;
    repartition_migrated_txs_ += migrated_txs;
    repartition_migrated_utxos_ += migrated_utxos;
    repartition_deferred_txs_ += deferred_txs;
  }

  const LatencyRecorder& latencies() const noexcept { return latencies_; }
  const WindowCounter& commits_per_window() const noexcept {
    return commits_per_window_;
  }
  const QueueTracker& queue_tracker() const noexcept { return queue_tracker_; }
  const CrossTxCounter& cross_counter() const noexcept {
    return cross_counter_;
  }
  std::uint64_t committed() const noexcept { return committed_; }
  std::uint64_t aborted() const noexcept { return aborted_; }
  std::uint64_t blocks() const noexcept { return blocks_; }
  /// Simulated time of the last terminal (commit or abort) event.
  double duration_s() const noexcept { return duration_s_; }
  /// Shard churn accounting (zero in churn-free runs).
  std::uint64_t shard_changes() const noexcept { return shard_changes_; }
  std::uint64_t migrated_txs() const noexcept { return migrated_txs_; }
  std::uint64_t migrated_utxos() const noexcept { return migrated_utxos_; }
  /// Online re-partition accounting (zero unless the controller is enabled).
  std::uint64_t repartition_events() const noexcept {
    return repartition_events_;
  }
  std::uint64_t repartition_migrated_txs() const noexcept {
    return repartition_migrated_txs_;
  }
  std::uint64_t repartition_migrated_utxos() const noexcept {
    return repartition_migrated_utxos_;
  }
  /// Sum over events of the budget-deferred move count — budget pressure.
  std::uint64_t repartition_deferred_txs() const noexcept {
    return repartition_deferred_txs_;
  }
  /// Link-fabric accounting (zero unless the run enables the fabric).
  std::uint64_t link_samples() const noexcept { return link_samples_; }
  /// Worst sampled uplink backlog, in seconds of queued serialization.
  double peak_backlog_s() const noexcept { return peak_backlog_s_; }
  /// Total tail drops across endpoints (latest cumulative counters).
  std::uint64_t link_drops() const noexcept {
    std::uint64_t total = 0;
    for (std::uint64_t d : link_drops_) total += d;
    return total;
  }

 private:
  LatencyRecorder latencies_;
  WindowCounter commits_per_window_;
  QueueTracker queue_tracker_;
  CrossTxCounter cross_counter_;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t shard_changes_ = 0;
  std::uint64_t migrated_txs_ = 0;
  std::uint64_t migrated_utxos_ = 0;
  std::uint64_t repartition_events_ = 0;
  std::uint64_t repartition_migrated_txs_ = 0;
  std::uint64_t repartition_migrated_utxos_ = 0;
  std::uint64_t repartition_deferred_txs_ = 0;
  std::uint64_t link_samples_ = 0;
  double peak_backlog_s_ = 0.0;
  std::vector<std::uint64_t> link_drops_;
  double duration_s_ = 0.0;
};

}  // namespace optchain::stats

// Experiment metric collectors.
//
// These map one-to-one onto the measurements in the paper's evaluation:
//  - LatencyRecorder   → Figs. 8, 9, 10 (avg/max latency, latency CDF)
//  - WindowCounter     → Fig. 5 (transactions committed per 50 s window)
//  - QueueTracker      → Figs. 6, 7 (max/min shard queue sizes and their ratio)
//  - CrossTxCounter    → Tables I, II (cross-shard transaction counts)
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/histogram.hpp"

namespace optchain::stats {

/// Records per-transaction confirmation latencies ("the time from when the
/// transaction is sent until it is committed to the blockchain").
class LatencyRecorder {
 public:
  void record(double latency_seconds) { samples_.add(latency_seconds); }

  std::size_t count() const noexcept { return samples_.count(); }
  double average() const noexcept { return samples_.mean(); }
  double maximum() const noexcept { return samples_.max(); }
  double quantile(double q) const { return samples_.quantile(q); }

  /// Fraction of transactions confirmed within each threshold (Fig. 10).
  std::vector<double> cdf_at(const std::vector<double>& thresholds) const {
    return samples_.cdf_at(thresholds);
  }

 private:
  SampleStats samples_;
};

/// Counts events into fixed-width time windows (window index = t / width).
class WindowCounter {
 public:
  explicit WindowCounter(double window_seconds);

  void record(double time_seconds, std::uint64_t count = 1);

  double window_seconds() const noexcept { return window_seconds_; }
  std::size_t num_windows() const noexcept { return counts_.size(); }
  std::uint64_t count_in_window(std::size_t window) const noexcept;
  const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }

 private:
  double window_seconds_;
  std::vector<std::uint64_t> counts_;
};

/// Periodic snapshot of per-shard queue sizes.
struct QueueSnapshot {
  double time = 0.0;
  std::uint64_t max_queue = 0;
  std::uint64_t min_queue = 0;

  /// max/min with the paper's convention that an idle (zero) minimum makes
  /// the ratio diverge; we report min clamped to 1 to keep it finite.
  double ratio() const noexcept {
    return static_cast<double>(max_queue) /
           static_cast<double>(min_queue == 0 ? 1 : min_queue);
  }
};

class QueueTracker {
 public:
  void record(double time_seconds, const std::vector<std::uint64_t>& queues);

  const std::vector<QueueSnapshot>& snapshots() const noexcept {
    return snapshots_;
  }
  std::uint64_t global_max() const noexcept { return global_max_; }
  double worst_ratio() const noexcept;

 private:
  std::vector<QueueSnapshot> snapshots_;
  std::uint64_t global_max_ = 0;
};

/// Same-shard vs cross-shard placement accounting.
class CrossTxCounter {
 public:
  void record(bool is_cross) noexcept {
    ++total_;
    if (is_cross) ++cross_;
  }

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t cross() const noexcept { return cross_; }
  double fraction() const noexcept {
    return total_ == 0 ? 0.0
                       : static_cast<double>(cross_) /
                             static_cast<double>(total_);
  }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t cross_ = 0;
};

}  // namespace optchain::stats

// OPTX v2 — the chunk-indexed binary trace container (src/trace).
//
// The flat OPTX v1 stream (txmodel/serialization.hpp) must be decoded front
// to back and materialized whole; v2 keeps the same per-transaction body
// codec but frames it into independently-decodable chunks and appends a
// footer index, so any window of a multi-million-transaction trace opens in
// O(1) seeks without touching the prefix.
//
// Layout (all varints are LEB128, as in v1):
//
//   header   "OPTX" magic, varint version = 2, varint chunk_capacity
//   chunk*   varint count            transactions in this chunk (>= 1)
//            varint payload_bytes
//            payload                 `count` transactions, the v1 per-tx
//                                    body codec (tx::encode_transaction);
//                                    indices are implied dense from the
//                                    chunk's first_index, parent references
//                                    are absolute trace indices
//            varint checksum         FNV-1a 64 over the payload bytes
//   footer   varint n_chunks, then per chunk
//            { varint file_offset, varint first_index, varint count },
//            varint total_transactions
//   trailer  u64 LE footer file offset, "XTPO" magic   (12 bytes, fixed)
//
// A reader locates the footer through the fixed-size trailer, binary-
// searches the chunk index for any transaction index, and verifies each
// chunk's checksum as it loads — corruption anywhere in a chunk is caught
// before a single damaged transaction escapes, and corruption outside the
// replayed window is never even read.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace optchain::trace {

/// Shared file magic of every OPTX container ("OPTX", v1 and v2 alike).
inline constexpr std::uint8_t kMagic[4] = {'O', 'P', 'T', 'X'};
/// Magic closing the fixed-size v2 trailer ("XTPO" — OPTX reversed).
inline constexpr std::uint8_t kTrailerMagic[4] = {'X', 'T', 'P', 'O'};
/// The chunk-indexed container version this module writes.
inline constexpr std::uint32_t kTraceVersion = 2;
/// Trailer size: u64 LE footer offset + 4-byte trailer magic.
inline constexpr std::size_t kTrailerBytes = 12;
/// Default transactions per chunk: large enough that the footer index is
/// negligible (~24 B per 64k transactions), small enough that a windowed
/// seek decodes at most one unwanted chunk prefix.
inline constexpr std::uint32_t kDefaultChunkCapacity = 65536;

/// One footer-index entry: where a chunk lives and what it holds. O(1) seek
/// to any transaction = binary search on first_index + one file seek.
struct ChunkInfo {
  std::uint64_t offset = 0;       ///< file offset of the chunk frame
  std::uint64_t first_index = 0;  ///< absolute index of the chunk's first tx
  std::uint64_t count = 0;        ///< transactions in the chunk
};

/// FNV-1a 64 over `data` — the per-chunk payload checksum. Dependency-free
/// and byte-order independent; this is an integrity check against torn
/// writes and bit rot, not a cryptographic commitment.
inline std::uint64_t fnv1a64(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t hash = 14695981039346656037ull;
  for (const std::uint8_t byte : data) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace optchain::trace

#include "trace/trace_import.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <stdexcept>

#include "trace/trace_format.hpp"
#include "trace/trace_source.hpp"

namespace optchain::trace {
namespace {

[[noreturn]] void fail_csv(const std::string& path, std::size_t line_no,
                           const std::string& what) {
  throw std::runtime_error("csv import: " + path + ":" +
                           std::to_string(line_no) + ": " + what);
}

/// Parses "a:b" pairs separated by spaces from [cursor, end).
template <typename Emit>
void parse_pairs(const char* cursor, const char* end, const Emit& emit,
                 const std::string& path, std::size_t line_no) {
  while (cursor < end) {
    while (cursor < end && *cursor == ' ') ++cursor;
    if (cursor == end) break;
    std::uint64_t first = 0;
    auto [p1, e1] = std::from_chars(cursor, end, first);
    if (e1 != std::errc{} || p1 == end || *p1 != ':') {
      fail_csv(path, line_no, "expected \"a:b\" pair");
    }
    std::uint64_t second = 0;
    auto [p2, e2] = std::from_chars(p1 + 1, end, second);
    if (e2 != std::errc{}) fail_csv(path, line_no, "expected \"a:b\" pair");
    emit(first, second);
    cursor = p2;
  }
}

bool has_suffix(const std::string& text, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return text.size() >= n && text.compare(text.size() - n, n, suffix) == 0;
}

ImportFormat sniff_format(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) throw std::runtime_error("cannot open for import: " + path);
  std::uint8_t magic[4] = {};
  probe.read(reinterpret_cast<char*>(magic), 4);
  if (probe.gcount() == 4 && std::memcmp(magic, kMagic, 4) == 0) {
    return ImportFormat::kOptx;
  }
  return has_suffix(path, ".csv") ? ImportFormat::kCsv
                                  : ImportFormat::kEdgeList;
}

}  // namespace

CsvFileTxSource::CsvFileTxSource(const std::string& path)
    : file_(path), path_(path) {
  if (!file_) throw std::runtime_error("cannot open CSV dump: " + path);
}

bool CsvFileTxSource::next(tx::Transaction& out) {
  while (std::getline(file_, line_)) {
    ++line_no_;
    if (line_.empty() || line_[0] == '#') continue;
    // Skip a spreadsheet-style header once, wherever the dump put it.
    if (line_.rfind("index,", 0) == 0) continue;

    const std::size_t comma1 = line_.find(',');
    const std::size_t comma2 =
        comma1 == std::string::npos ? std::string::npos
                                    : line_.find(',', comma1 + 1);
    if (comma2 == std::string::npos) {
      fail_csv(path_, line_no_, "expected <index>,<inputs>,<outputs>");
    }

    std::uint32_t index = 0;
    const auto [iptr, iec] =
        std::from_chars(line_.data(), line_.data() + comma1, index);
    if (iec != std::errc{} || iptr != line_.data() + comma1) {
      fail_csv(path_, line_no_, "bad transaction index");
    }
    if (index != next_index_) {
      fail_csv(path_, line_no_, "non-dense transaction index " +
                                    std::to_string(index) + " (expected " +
                                    std::to_string(next_index_) + ")");
    }

    out.index = index;
    out.inputs.clear();
    out.outputs.clear();
    parse_pairs(line_.data() + comma1 + 1, line_.data() + comma2,
                [&](std::uint64_t tx, std::uint64_t vout) {
                  if (tx >= index) {
                    fail_csv(path_, line_no_, "forward/self input reference");
                  }
                  out.inputs.push_back({static_cast<tx::TxIndex>(tx),
                                        static_cast<std::uint32_t>(vout)});
                },
                path_, line_no_);
    parse_pairs(line_.data() + comma2 + 1, line_.data() + line_.size(),
                [&](std::uint64_t value, std::uint64_t owner) {
                  out.outputs.push_back(
                      {static_cast<tx::Amount>(value),
                       static_cast<tx::WalletId>(owner)});
                },
                path_, line_no_);
    ++next_index_;
    return true;
  }
  if (file_.bad()) throw std::runtime_error("read failed: " + path_);
  return false;
}

ImportResult import_source(workload::TxSource& source,
                           const std::string& out_path,
                           TraceWriterOptions options) {
  TraceWriter writer(out_path, options);
  tx::Transaction transaction;
  while (source.next(transaction)) writer.append(transaction);
  ImportResult result;
  result.txs = writer.finish();
  result.chunks = (result.txs + options.chunk_capacity - 1) /
                  std::max<std::uint64_t>(1, options.chunk_capacity);
  return result;
}

ImportResult import_file(const std::string& in_path,
                         const std::string& out_path, ImportFormat format,
                         TraceWriterOptions options) {
  if (format == ImportFormat::kAuto) format = sniff_format(in_path);
  switch (format) {
    case ImportFormat::kOptx: {
      TraceTxSource source(in_path);
      return import_source(source, out_path, options);
    }
    case ImportFormat::kEdgeList: {
      workload::EdgeListFileTxSource source(in_path);
      return import_source(source, out_path, options);
    }
    case ImportFormat::kCsv: {
      CsvFileTxSource source(in_path);
      return import_source(source, out_path, options);
    }
    case ImportFormat::kAuto:
      break;
  }
  throw std::logic_error("unreachable import format");
}

}  // namespace optchain::trace

// Importers feeding the OPTX v2 trace container — import once, replay from
// disk forever.
//
// Three ways in:
//   - import_source: any workload::TxSource (generator snapshots, dynamic
//     decorators, another trace's window — anything behind the seam).
//   - the TaN edge-list format (workload::EdgeListFileTxSource), the text
//     interchange format of the paper's datasets.
//   - a CSV inputs/outputs dump (CsvFileTxSource), the bring-your-own-
//     Bitcoin-data format:
//         <index>,<inputs>,<outputs>
//     where <inputs> is space-separated "tx:vout" pairs (empty = coinbase)
//     and <outputs> is space-separated "value:owner" pairs. Lines starting
//     with '#' and a leading "index,inputs,outputs" header are skipped.
//     Example:
//         0,,5000000000:0
//         1,0:0,2500000000:1 2499990000:0
// import_file dispatches between them (and re-chunks existing OPTX v1/v2
// files) by magic and extension.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace_writer.hpp"
#include "workload/tx_source.hpp"

namespace optchain::trace {

/// What a finished import produced.
struct ImportResult {
  std::uint64_t txs = 0;     ///< transactions written
  std::uint64_t chunks = 0;  ///< chunk frames in the container
};

/// Drains `source` into a fresh chunk-indexed trace at `out_path`. Throws
/// std::runtime_error on I/O failure or a malformed source stream.
ImportResult import_source(workload::TxSource& source,
                           const std::string& out_path,
                           TraceWriterOptions options = {});

/// Input kinds import_file understands.
enum class ImportFormat : std::uint8_t {
  kAuto,      ///< sniff: OPTX magic → optx; ".csv" → csv; else edge list
  kOptx,      ///< an existing OPTX v1/v2 container (re-chunked)
  kEdgeList,  ///< text TaN edge list (dataset_loader.hpp format)
  kCsv,       ///< CSV inputs/outputs dump (see the file comment)
};

/// Imports `in_path` into a chunk-indexed trace at `out_path`. Throws
/// std::runtime_error on I/O failure or malformed input.
ImportResult import_file(const std::string& in_path,
                         const std::string& out_path,
                         ImportFormat format = ImportFormat::kAuto,
                         TraceWriterOptions options = {});

/// Streams a CSV inputs/outputs dump (see the file comment for the format)
/// as transactions. Throws std::runtime_error on I/O failure or malformed
/// input (non-dense indices, forward references, negative values).
class CsvFileTxSource final : public workload::TxSource {
 public:
  /// Opens `path` (throws std::runtime_error on I/O failure).
  explicit CsvFileTxSource(const std::string& path);

  bool next(tx::Transaction& out) override;

 private:
  std::ifstream file_;
  std::string path_;
  std::string line_;
  std::size_t line_no_ = 0;
  tx::TxIndex next_index_ = 0;
};

}  // namespace optchain::trace

#include "trace/trace_reader.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "txmodel/serialization.hpp"

namespace optchain::trace {
namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("trace reader: " + path + ": " + what);
}

}  // namespace

std::uint64_t TraceReader::read_varint_stream() {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    const int byte = file_.get();
    if (byte == std::char_traits<char>::eof()) {
      fail(path_, "truncated varint");
    }
    if (shift >= 64) fail(path_, "varint overflow");
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

TraceReader::TraceReader(const std::string& path)
    : file_(path, std::ios::binary), path_(path) {
  if (!file_) fail(path_, "cannot open for reading");

  std::uint8_t magic[4] = {};
  file_.read(reinterpret_cast<char*>(magic), 4);
  if (!file_ || std::memcmp(magic, kMagic, 4) != 0) fail(path_, "bad magic");
  version_ = static_cast<std::uint32_t>(read_varint_stream());

  if (version_ == 1) {
    // Flat v1 stream: varint count, then the body. Slurp the raw bytes and
    // decode incrementally — compact (~16 B/tx) and sequential by nature.
    total_ = read_varint_stream();
    const std::streampos body_start = file_.tellg();
    file_.seekg(0, std::ios::end);
    const std::streampos end = file_.tellg();
    file_.seekg(body_start);
    buffer_.resize(static_cast<std::size_t>(end - body_start));
    file_.read(reinterpret_cast<char*>(buffer_.data()),
               static_cast<std::streamsize>(buffer_.size()));
    if (!file_) fail(path_, "read failed");
    return;
  }
  if (version_ != kTraceVersion) {
    fail(path_, "unsupported version " + std::to_string(version_));
  }

  chunk_capacity_ = static_cast<std::uint32_t>(read_varint_stream());
  if (chunk_capacity_ == 0) fail(path_, "corrupt header: chunk_capacity 0");
  file_.seekg(0, std::ios::end);
  parse_footer(static_cast<std::uint64_t>(file_.tellg()));
}

void TraceReader::parse_footer(std::uint64_t file_size) {
  if (file_size < kTrailerBytes) fail(path_, "truncated: no trailer");
  std::uint8_t trailer[kTrailerBytes] = {};
  file_.seekg(static_cast<std::streamoff>(file_size - kTrailerBytes));
  file_.read(reinterpret_cast<char*>(trailer), kTrailerBytes);
  if (!file_) fail(path_, "trailer read failed");
  if (std::memcmp(trailer + 8, kTrailerMagic, 4) != 0) {
    fail(path_, "bad trailer magic (truncated or not a finished trace)");
  }
  std::uint64_t footer_offset = 0;
  for (int i = 7; i >= 0; --i) {
    footer_offset = (footer_offset << 8) | trailer[i];
  }
  if (footer_offset >= file_size - kTrailerBytes) {
    fail(path_, "corrupt trailer: footer offset out of range");
  }

  std::vector<std::uint8_t> footer(
      static_cast<std::size_t>(file_size - kTrailerBytes - footer_offset));
  file_.seekg(static_cast<std::streamoff>(footer_offset));
  file_.read(reinterpret_cast<char*>(footer.data()),
             static_cast<std::streamsize>(footer.size()));
  if (!file_) fail(path_, "footer read failed");

  std::size_t offset = 0;
  const std::uint64_t n_chunks = tx::read_varint(footer, offset);
  chunks_.reserve(n_chunks);
  std::uint64_t expected_first = 0;
  std::uint64_t previous_end = 0;
  for (std::uint64_t i = 0; i < n_chunks; ++i) {
    ChunkInfo chunk;
    chunk.offset = tx::read_varint(footer, offset);
    chunk.first_index = tx::read_varint(footer, offset);
    chunk.count = tx::read_varint(footer, offset);
    if (chunk.first_index != expected_first || chunk.count == 0 ||
        chunk.offset < previous_end || chunk.offset >= footer_offset) {
      fail(path_, "corrupt footer: inconsistent chunk index");
    }
    expected_first += chunk.count;
    previous_end = chunk.offset;
    chunks_.push_back(chunk);
  }
  total_ = tx::read_varint(footer, offset);
  if (total_ != expected_first) {
    fail(path_, "corrupt footer: total does not match chunk index");
  }
  if (offset != footer.size()) fail(path_, "corrupt footer: trailing bytes");
}

void TraceReader::load_chunk(std::size_t chunk) {
  const ChunkInfo& info = chunks_[chunk];
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(info.offset));
  const std::uint64_t count = read_varint_stream();
  if (count != info.count) {
    fail(path_, "chunk " + std::to_string(chunk) +
                    ": frame count does not match footer index");
  }
  const std::uint64_t payload_bytes = read_varint_stream();
  buffer_.resize(static_cast<std::size_t>(payload_bytes));
  file_.read(reinterpret_cast<char*>(buffer_.data()),
             static_cast<std::streamsize>(buffer_.size()));
  if (!file_) fail(path_, "chunk " + std::to_string(chunk) + ": read failed");
  const std::uint64_t checksum = read_varint_stream();
  if (checksum != fnv1a64(buffer_)) {
    fail(path_, "chunk " + std::to_string(chunk) + ": checksum mismatch");
  }
  buffer_offset_ = 0;
  current_chunk_ = chunk;
  ++chunks_loaded_;
}

bool TraceReader::next(tx::Transaction& out) {
  if (next_index_ >= total_) return false;

  if (version_ == 1) {
    std::size_t offset = buffer_offset_;
    tx::decode_transaction(buffer_, offset,
                           static_cast<tx::TxIndex>(next_index_), out);
    buffer_offset_ = offset;
    ++next_index_;
    // The flat stream has no checksums; the one integrity check v1 offers
    // is that the body is exactly `total_` transactions long. Keep
    // decode_transactions' trailing-bytes guarantee: a bit-rotted count or
    // appended garbage must fail loudly, not replay silently truncated.
    if (next_index_ == total_ && buffer_offset_ != buffer_.size()) {
      fail(path_, "trailing bytes after final transaction");
    }
    return true;
  }

  // v2: hop to the chunk holding next_index_ when the cursor leaves the
  // loaded one (sequential reads land on current_chunk_ + 1; a fresh seek
  // may land anywhere).
  if (current_chunk_ == SIZE_MAX ||
      next_index_ >= chunks_[current_chunk_].first_index +
                         chunks_[current_chunk_].count ||
      next_index_ < chunks_[current_chunk_].first_index) {
    const auto it = std::upper_bound(
        chunks_.begin(), chunks_.end(), next_index_,
        [](std::uint64_t index, const ChunkInfo& chunk) {
          return index < chunk.first_index;
        });
    load_chunk(static_cast<std::size_t>(it - chunks_.begin()) - 1);
    // A seek may target mid-chunk: skip the intra-chunk prefix.
    for (std::uint64_t i = chunks_[current_chunk_].first_index;
         i < next_index_; ++i) {
      std::size_t offset = buffer_offset_;
      tx::decode_transaction(buffer_, offset, static_cast<tx::TxIndex>(i),
                             skip_scratch_);
      buffer_offset_ = offset;
    }
  }

  std::size_t offset = buffer_offset_;
  tx::decode_transaction(buffer_, offset,
                         static_cast<tx::TxIndex>(next_index_), out);
  buffer_offset_ = offset;
  ++next_index_;
  return true;
}

void TraceReader::seek(std::uint64_t index) {
  if (index > total_) {
    throw std::out_of_range("trace reader: " + path_ + ": seek(" +
                            std::to_string(index) + ") past end (" +
                            std::to_string(total_) + " txs)");
  }
  if (version_ == 1) {
    if (index < next_index_) {
      buffer_offset_ = 0;
      next_index_ = 0;
    }
    while (next_index_ < index) {
      std::size_t offset = buffer_offset_;
      tx::decode_transaction(buffer_, offset,
                             static_cast<tx::TxIndex>(next_index_),
                             skip_scratch_);
      buffer_offset_ = offset;
      ++next_index_;
    }
    return;
  }
  // v2: reposition the intra-chunk cursor when the target stays inside the
  // loaded chunk (backwards restarts the chunk decode, forwards skips from
  // the current cursor); otherwise just invalidate — next() binary-searches
  // the chunk index and loads exactly the target chunk.
  if (current_chunk_ != SIZE_MAX &&
      index >= chunks_[current_chunk_].first_index &&
      index < chunks_[current_chunk_].first_index +
                  chunks_[current_chunk_].count) {
    std::uint64_t from = next_index_;
    if (index < next_index_) {
      buffer_offset_ = 0;
      from = chunks_[current_chunk_].first_index;
    }
    for (std::uint64_t i = from; i < index; ++i) {
      std::size_t offset = buffer_offset_;
      tx::decode_transaction(buffer_, offset, static_cast<tx::TxIndex>(i),
                             skip_scratch_);
      buffer_offset_ = offset;
    }
  } else {
    current_chunk_ = SIZE_MAX;
  }
  next_index_ = index;
}

}  // namespace optchain::trace

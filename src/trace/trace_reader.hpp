// Streaming reader for OPTX trace containers — chunk-indexed v2 natively,
// flat v1 for backward compatibility.
//
// v2 files open in O(1): the reader parses the header and the footer chunk
// index, then loads (and checksum-verifies) one chunk at a time as next()
// walks the stream. seek(index) binary-searches the chunk index and decodes
// only the target chunk's prefix — opening a window at transaction 500k of
// a 10M-transaction trace never reads the first 499k-ish transactions, let
// alone decodes them.
//
// v1 files (txmodel/serialization.hpp's flat OPTX stream) have no index;
// the reader slurps the raw bytes (~16 B per transaction — an order of
// magnitude below materializing std::vector<Transaction>) and decodes
// incrementally; seek() is a decode-skip.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_format.hpp"
#include "txmodel/transaction.hpp"

namespace optchain::trace {

/// Streaming decoder over an on-disk OPTX trace (v1 or v2); see the file
/// comment for the version-specific costs.
class TraceReader {
 public:
  /// Opens and validates `path` (header, and for v2 the trailer + footer
  /// index). Throws std::runtime_error on I/O failure, bad magic, an
  /// unsupported version, or a corrupt footer.
  explicit TraceReader(const std::string& path);

  /// Container version: 1 (flat) or 2 (chunk-indexed).
  std::uint32_t version() const noexcept { return version_; }
  /// Total transactions in the trace.
  std::uint64_t size() const noexcept { return total_; }
  /// Chunk count (v1: 0 — the flat stream has no frames).
  std::uint64_t num_chunks() const noexcept { return chunks_.size(); }
  /// The footer chunk index (v1: empty).
  const std::vector<ChunkInfo>& chunks() const noexcept { return chunks_; }
  /// Nominal transactions per chunk (v1: 0).
  std::uint32_t chunk_capacity() const noexcept { return chunk_capacity_; }
  /// Absolute index the next next() call will yield.
  std::uint64_t position() const noexcept { return next_index_; }
  /// Chunks loaded + checksum-verified so far — the observable cost of a
  /// read pattern (tests pin that windowed seeks skip the prefix).
  std::uint64_t chunks_loaded() const noexcept { return chunks_loaded_; }

  /// Decodes the next transaction (absolute indices; parent references are
  /// absolute too). Returns false at end of trace. Throws
  /// std::runtime_error on truncation or a chunk checksum mismatch.
  bool next(tx::Transaction& out);

  /// Repositions the cursor so the next next() yields `index` (== size()
  /// positions at end). v2: one chunk-index binary search + one chunk load;
  /// v1: decode-skip from the closest earlier position. Throws
  /// std::out_of_range past the end.
  void seek(std::uint64_t index);

 private:
  void load_chunk(std::size_t chunk);
  std::uint64_t read_varint_stream();
  void parse_footer(std::uint64_t file_size);

  std::ifstream file_;
  std::string path_;
  std::uint32_t version_ = 0;
  std::uint32_t chunk_capacity_ = 0;
  std::uint64_t total_ = 0;
  std::vector<ChunkInfo> chunks_;

  // Decode cursor. For v2, buffer_ holds the current chunk's payload; for
  // v1 it holds the whole body (raw bytes, not Transactions).
  std::vector<std::uint8_t> buffer_;
  std::size_t buffer_offset_ = 0;
  std::size_t current_chunk_ = SIZE_MAX;  ///< v2: chunk in buffer_
  std::uint64_t next_index_ = 0;
  std::uint64_t chunks_loaded_ = 0;
  tx::Transaction skip_scratch_;  ///< decode target for seek's skips
};

}  // namespace optchain::trace

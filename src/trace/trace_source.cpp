#include "trace/trace_source.hpp"

#include <stdexcept>

namespace optchain::trace {

TraceTxSource::TraceTxSource(const std::string& path, std::uint64_t begin,
                             std::uint64_t end)
    : reader_(path), begin_(begin), end_(end) {
  if (end_ == kToEnd || end_ > reader_.size()) end_ = reader_.size();
  if (begin_ > reader_.size()) {
    throw std::invalid_argument(
        "trace window: begin " + std::to_string(begin_) + " beyond trace (" +
        std::to_string(reader_.size()) + " txs): " + path);
  }
  if (begin_ > end_) {
    throw std::invalid_argument("trace window: begin " +
                                std::to_string(begin_) + " > end " +
                                std::to_string(end_) + ": " + path);
  }
  reader_.seek(begin_);
}

bool TraceTxSource::next(tx::Transaction& out) {
  if (begin_ + next_local_ >= end_) return false;
  if (!reader_.next(out)) return false;  // unreachable: window ⊆ trace

  // Re-index into the window; see the boundary policy in the header.
  out.index = static_cast<tx::TxIndex>(out.index - begin_);
  std::size_t kept = 0;
  for (const tx::OutPoint& in : out.inputs) {
    if (in.tx >= begin_) {
      out.inputs[kept++] = {static_cast<tx::TxIndex>(in.tx - begin_),
                            in.vout};
    }
  }
  out.inputs.resize(kept);
  ++next_local_;
  return true;
}

void TraceTxSource::rewind() {
  reader_.seek(begin_);
  next_local_ = 0;
}

}  // namespace optchain::trace

// TraceTxSource — windowed, rewindable replay of an on-disk OPTX trace
// through the workload::TxSource seam.
//
// This is the zero-regeneration path the experiment layer stands on: import
// a dataset once (trace::import_source / the optchain-trace tool), then
// point every cell of every sweep at the file. A window [begin, end) opens
// through the v2 chunk index without decoding the prefix, and rewind()
// restarts the window for the next replica at the cost of one seek.
//
// Window boundary policy (mirrors EdgeListFileTxSource's synthesized-
// outpoint trick — the loader completes information the container cannot
// carry, without inventing conflicts):
//   - Transactions are re-indexed densely: local index = absolute - begin.
//   - An input whose parent is inside the window keeps its outpoint,
//     re-indexed ({parent - begin, vout}).
//   - An input whose parent precedes the window becomes external funding:
//     it is dropped from the input list, exactly as if the output had been
//     minted before the system came up. Each such parent was a distinct
//     outpoint in the full trace, so dropping them introduces no false
//     conflicts — and keeps none, which is the same information loss the
//     TaN edge-list format has at its own stream start.
//   - A transaction whose parents are all external therefore replays as a
//     root (coinbase-like), matching what an online placer cold-starting at
//     `begin` could ever know about it.
// The windowed TaN is exactly the induced subgraph of the full TaN on
// [begin, end); a [0, size) window replays the trace bit-identically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "trace/trace_reader.hpp"
#include "workload/tx_source.hpp"

namespace optchain::trace {

/// Replays a window of an on-disk OPTX trace as a TxSource (see the file
/// comment for the boundary policy).
class TraceTxSource final : public workload::TxSource {
 public:
  /// "To the end of the trace" sentinel for `end`.
  static constexpr std::uint64_t kToEnd = ~0ull;

  /// Opens `path` and positions at `begin`. The window is [begin, end)
  /// clamped to the trace; throws std::invalid_argument when begin lies
  /// beyond the trace or the window is empty on a non-empty trace request
  /// (begin >= end), and std::runtime_error on container corruption.
  explicit TraceTxSource(const std::string& path, std::uint64_t begin = 0,
                         std::uint64_t end = kToEnd);

  bool next(tx::Transaction& out) override;

  /// Exact window length — every trace-driven run pre-sizes like a
  /// generator-driven one.
  std::optional<std::uint64_t> size_hint() const override {
    return end_ - begin_;
  }

  /// Restarts the window from its first transaction (one chunk-index seek;
  /// how one imported trace replays across sweep replicas without being
  /// re-imported or re-opened).
  void rewind();

  /// First absolute trace index of the window.
  std::uint64_t window_begin() const noexcept { return begin_; }
  /// One past the last absolute trace index of the window.
  std::uint64_t window_end() const noexcept { return end_; }
  /// The underlying reader (trace metadata: version, chunks, total size).
  const TraceReader& reader() const noexcept { return reader_; }

 private:
  TraceReader reader_;
  std::uint64_t begin_ = 0;
  std::uint64_t end_ = 0;
  std::uint64_t next_local_ = 0;
};

}  // namespace optchain::trace

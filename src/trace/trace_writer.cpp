#include "trace/trace_writer.hpp"

#include <stdexcept>

#include "txmodel/serialization.hpp"

namespace optchain::trace {
namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("trace writer: " + path + ": " + what);
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path, TraceWriterOptions options)
    : out_(path, std::ios::binary),
      path_(path),
      chunk_capacity_(options.chunk_capacity) {
  if (chunk_capacity_ == 0) fail(path_, "chunk_capacity must be > 0");
  if (!out_) fail(path_, "cannot open for writing");

  std::vector<std::uint8_t> header;
  for (const std::uint8_t byte : kMagic) header.push_back(byte);
  tx::write_varint(header, kTraceVersion);
  tx::write_varint(header, chunk_capacity_);
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
  if (!out_) fail(path_, "header write failed");
  offset_ = header.size();
}

TraceWriter::~TraceWriter() {
  if (finished_) return;
  try {
    finish();
  } catch (...) {
    // Destruction must not throw; an unreadable tail is caught by the
    // reader's trailer/checksum validation.
  }
}

void TraceWriter::append(const tx::Transaction& transaction) {
  if (finished_) fail(path_, "append after finish()");
  if (transaction.index != total_) {
    fail(path_, "non-dense transaction index " +
                    std::to_string(transaction.index) + " (expected " +
                    std::to_string(total_) + ")");
  }
  for (const tx::OutPoint& in : transaction.inputs) {
    if (in.tx >= transaction.index) {
      fail(path_, "tx " + std::to_string(transaction.index) +
                      ": forward/self input reference " +
                      std::to_string(in.tx));
    }
  }
  tx::encode_transaction(payload_, transaction);
  ++chunk_count_;
  ++total_;
  if (chunk_count_ >= chunk_capacity_) flush_chunk();
}

void TraceWriter::flush_chunk() {
  if (chunk_count_ == 0) return;
  ChunkInfo info;
  info.offset = offset_;
  info.first_index = total_ - chunk_count_;
  info.count = chunk_count_;

  std::vector<std::uint8_t> frame;
  frame.reserve(payload_.size() + 24);
  tx::write_varint(frame, chunk_count_);
  tx::write_varint(frame, payload_.size());
  frame.insert(frame.end(), payload_.begin(), payload_.end());
  tx::write_varint(frame, fnv1a64(payload_));
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  if (!out_) fail(path_, "chunk write failed");

  offset_ += frame.size();
  chunks_.push_back(info);
  payload_.clear();
  chunk_count_ = 0;
}

std::uint64_t TraceWriter::finish() {
  if (finished_) return total_;
  flush_chunk();

  const std::uint64_t footer_offset = offset_;
  std::vector<std::uint8_t> footer;
  tx::write_varint(footer, chunks_.size());
  for (const ChunkInfo& chunk : chunks_) {
    tx::write_varint(footer, chunk.offset);
    tx::write_varint(footer, chunk.first_index);
    tx::write_varint(footer, chunk.count);
  }
  tx::write_varint(footer, total_);

  // Fixed-size trailer: u64 LE footer offset + trailer magic, so a reader
  // finds the footer from the file's end without parsing anything else.
  for (int shift = 0; shift < 64; shift += 8) {
    footer.push_back(static_cast<std::uint8_t>(footer_offset >> shift));
  }
  for (const std::uint8_t byte : kTrailerMagic) footer.push_back(byte);

  out_.write(reinterpret_cast<const char*>(footer.data()),
             static_cast<std::streamsize>(footer.size()));
  out_.close();
  if (!out_) fail(path_, "footer write failed");
  finished_ = true;
  return total_;
}

}  // namespace optchain::trace

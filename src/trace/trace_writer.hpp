// Streaming writer for the OPTX v2 chunk-indexed trace container.
//
// Appends transactions one at a time — O(chunk) memory, never the whole
// stream — and seals the file with the footer index on finish(). Feed it
// from any workload::TxSource (trace::import_source) or call append()
// directly from a generator loop.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_format.hpp"
#include "txmodel/transaction.hpp"

namespace optchain::trace {

/// Knobs of a trace import.
struct TraceWriterOptions {
  /// Nominal transactions per chunk (the seek granularity). Must be > 0.
  std::uint32_t chunk_capacity = kDefaultChunkCapacity;
};

/// Streams transactions into a chunk-indexed .optx trace (see
/// trace_format.hpp for the layout). Usage:
///
///   trace::TraceWriter writer("bitcoin.optx");
///   while (source.next(transaction)) writer.append(transaction);
///   writer.finish();
class TraceWriter {
 public:
  /// Opens `path` for writing and emits the header. Throws
  /// std::runtime_error on I/O failure or chunk_capacity == 0.
  explicit TraceWriter(const std::string& path,
                       TraceWriterOptions options = {});

  /// finish()es an unfinished writer, swallowing errors — call finish()
  /// explicitly to observe them.
  ~TraceWriter();

  /// Not copyable (owns the output stream and the in-flight chunk).
  TraceWriter(const TraceWriter&) = delete;
  /// Not copy-assignable.
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Appends one transaction. Indices must be dense (0, 1, 2, ...) and
  /// inputs must reference earlier transactions; violations throw
  /// std::runtime_error (an importer feeding a malformed dump fails loudly
  /// instead of sealing a corrupt trace).
  void append(const tx::Transaction& transaction);

  /// Flushes the tail chunk, writes the footer index and trailer, and
  /// closes the file. Returns the total transaction count. Idempotent;
  /// append() after finish() throws.
  std::uint64_t finish();

  /// Transactions appended so far.
  std::uint64_t total() const noexcept { return total_; }

 private:
  void flush_chunk();

  std::ofstream out_;
  std::string path_;
  std::uint32_t chunk_capacity_;
  std::vector<std::uint8_t> payload_;      // current chunk's encoded body
  std::uint64_t chunk_count_ = 0;          // transactions in current chunk
  std::vector<ChunkInfo> chunks_;          // footer index under construction
  std::uint64_t offset_ = 0;               // current file offset
  std::uint64_t total_ = 0;
  bool finished_ = false;
};

}  // namespace optchain::trace

#include "txmodel/serialization.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "common/assert.hpp"

namespace optchain::tx {
namespace {

constexpr std::uint8_t kMagic[4] = {'O', 'P', 'T', 'X'};
constexpr std::uint32_t kVersion = 1;

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string("transaction codec: ") + what);
}

}  // namespace

void write_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t read_varint(std::span<const std::uint8_t> data,
                          std::size_t& offset) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (offset >= data.size()) fail("truncated varint");
    if (shift >= 64) fail("varint overflow");
    const std::uint8_t byte = data[offset++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

void encode_transaction(std::vector<std::uint8_t>& out,
                        const Transaction& transaction) {
  write_varint(out, transaction.inputs.size());
  for (const OutPoint& in : transaction.inputs) {
    write_varint(out, in.tx);
    write_varint(out, in.vout);
  }
  write_varint(out, transaction.outputs.size());
  for (const TxOut& txo : transaction.outputs) {
    OPTCHAIN_EXPECTS(txo.value >= 0);
    write_varint(out, static_cast<std::uint64_t>(txo.value));
    write_varint(out, txo.owner);
  }
}

void decode_transaction(std::span<const std::uint8_t> data,
                        std::size_t& offset, TxIndex index, Transaction& out) {
  out.index = index;
  out.inputs.clear();
  out.outputs.clear();
  const std::uint64_t n_inputs = read_varint(data, offset);
  out.inputs.reserve(n_inputs);
  for (std::uint64_t j = 0; j < n_inputs; ++j) {
    OutPoint point;
    const std::uint64_t referenced = read_varint(data, offset);
    if (referenced >= index) fail("forward/self input reference");
    point.tx = static_cast<TxIndex>(referenced);
    point.vout = static_cast<std::uint32_t>(read_varint(data, offset));
    out.inputs.push_back(point);
  }
  const std::uint64_t n_outputs = read_varint(data, offset);
  out.outputs.reserve(n_outputs);
  for (std::uint64_t j = 0; j < n_outputs; ++j) {
    TxOut txo;
    txo.value = static_cast<Amount>(read_varint(data, offset));
    txo.owner = static_cast<WalletId>(read_varint(data, offset));
    out.outputs.push_back(txo);
  }
}

std::vector<std::uint8_t> encode_transactions(
    std::span<const Transaction> transactions) {
  std::vector<std::uint8_t> out;
  out.reserve(transactions.size() * 16 + 16);
  // Byte-wise append (not range insert): GCC 12's -O2 stringop-overflow
  // analysis false-positives on inserting a 4-byte array here.
  for (const std::uint8_t byte : kMagic) out.push_back(byte);
  write_varint(out, kVersion);
  write_varint(out, transactions.size());
  for (std::size_t i = 0; i < transactions.size(); ++i) {
    const Transaction& transaction = transactions[i];
    OPTCHAIN_EXPECTS(transaction.index == i);  // dense
    encode_transaction(out, transaction);
  }
  return out;
}

std::vector<Transaction> decode_transactions(
    std::span<const std::uint8_t> data) {
  if (data.size() < 4 || std::memcmp(data.data(), kMagic, 4) != 0) {
    fail("bad magic");
  }
  std::size_t offset = 4;
  if (read_varint(data, offset) != kVersion) fail("unsupported version");
  const std::uint64_t count = read_varint(data, offset);

  std::vector<Transaction> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Transaction transaction;
    decode_transaction(data, offset, static_cast<TxIndex>(i), transaction);
    out.push_back(std::move(transaction));
  }
  if (offset != data.size()) fail("trailing bytes");
  return out;
}

void save_transactions(std::span<const Transaction> transactions,
                       const std::string& path) {
  const std::vector<std::uint8_t> encoded = encode_transactions(transactions);
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot open file for writing");
  out.write(reinterpret_cast<const char*>(encoded.data()),
            static_cast<std::streamsize>(encoded.size()));
  if (!out) fail("write failed");
}

std::vector<Transaction> load_transactions(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) fail("cannot open file for reading");
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) fail("read failed");
  return decode_transactions(data);
}

}  // namespace optchain::tx

// Binary serialization for transaction streams.
//
// A compact varint-based codec so generated workloads can be stored and
// replayed without regeneration (the binary form is ~6x smaller than the
// text TaN edge list and keeps amounts/owners, which the TaN format drops).
//
// Format: magic "OPTX", u32 version, varint count, then per transaction
// (dense indices implied):
//   varint n_inputs  { varint tx, varint vout }*
//   varint n_outputs { varint value, varint owner }*
// All varints are LEB128. Amounts are non-negative by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "txmodel/transaction.hpp"

namespace optchain::tx {

/// Appends the LEB128 encoding of `value` to `out`.
void write_varint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Reads a LEB128 varint from data[offset...]; advances offset. Throws
/// std::runtime_error on truncation or >64-bit encodings.
std::uint64_t read_varint(std::span<const std::uint8_t> data,
                          std::size_t& offset);

/// Appends the per-transaction encoding (varint n_inputs {tx, vout}*,
/// varint n_outputs {value, owner}*) to `out`. The transaction's index is
/// implied by stream position, never stored. This is the shared body codec
/// of the flat OPTX v1 stream and the chunked OPTX v2 trace container
/// (src/trace).
void encode_transaction(std::vector<std::uint8_t>& out,
                        const Transaction& transaction);

/// Decodes one transaction from data[offset...] into `out`, assigning it
/// `index` and advancing `offset`. Throws std::runtime_error on truncation
/// or a forward/self input reference (inputs must name transactions with a
/// smaller index).
void decode_transaction(std::span<const std::uint8_t> data,
                        std::size_t& offset, TxIndex index, Transaction& out);

/// Serializes the stream (indices must be dense, 0..n-1).
std::vector<std::uint8_t> encode_transactions(
    std::span<const Transaction> transactions);

/// Parses a stream produced by encode_transactions. Throws
/// std::runtime_error on malformed input (bad magic/version, truncation,
/// forward references).
std::vector<Transaction> decode_transactions(
    std::span<const std::uint8_t> data);

/// File convenience wrappers.
void save_transactions(std::span<const Transaction> transactions,
                       const std::string& path);
std::vector<Transaction> load_transactions(const std::string& path);

}  // namespace optchain::tx

#include "txmodel/transaction.hpp"

#include <algorithm>

namespace optchain::tx {

std::vector<TxIndex> Transaction::distinct_input_txs() const {
  std::vector<TxIndex> out;
  distinct_input_txs(out);
  return out;
}

void Transaction::distinct_input_txs(std::vector<TxIndex>& out) const {
  out.clear();
  out.reserve(inputs.size());
  for (const auto& in : inputs) {
    if (std::find(out.begin(), out.end(), in.tx) == out.end()) {
      out.push_back(in.tx);
    }
  }
}

Digest256 Transaction::txid() const {
  Sha256 hasher;
  hasher.update_value(index);
  hasher.update_value(static_cast<std::uint32_t>(inputs.size()));
  for (const auto& in : inputs) {
    hasher.update_value(in.tx);
    hasher.update_value(in.vout);
  }
  hasher.update_value(static_cast<std::uint32_t>(outputs.size()));
  for (const auto& out : outputs) {
    hasher.update_value(out.value);
    hasher.update_value(out.owner);
  }
  return hasher.finish();
}

std::size_t Transaction::serialized_size() const noexcept {
  // Bitcoin ballpark: ~10 B framing, ~148 B per input (outpoint + signature),
  // ~34 B per output (value + script). A 2-in/2-out transaction lands near
  // the paper's ~500 B average once txid/witness overheads are counted; we
  // fold those into the per-input constant.
  return 10 + 180 * inputs.size() + 34 * outputs.size();
}

}  // namespace optchain::tx

// UTXO-model transaction types (paper §III.A).
//
// Transactions carry multiple inputs (references to unspent outputs of
// earlier transactions) and multiple outputs (value locked to an owner).
// A dense TxIndex — assigned in arrival order — doubles as the node id of
// the transaction in the TaN network; the SHA-256 txid over the canonical
// encoding exists so that hash-based (OmniLedger random) placement works the
// way the paper describes: "the hashed value of a transaction is used to
// determine which shards the transaction will be placed into".
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.hpp"

namespace optchain::tx {

using TxIndex = std::uint32_t;
using WalletId = std::uint32_t;
using Amount = std::int64_t;

inline constexpr TxIndex kInvalidTx = static_cast<TxIndex>(-1);

/// Reference to the `vout`-th output of transaction `tx`.
struct OutPoint {
  TxIndex tx = kInvalidTx;
  std::uint32_t vout = 0;

  friend bool operator==(const OutPoint&, const OutPoint&) = default;
  friend auto operator<=>(const OutPoint&, const OutPoint&) = default;
};

/// A transaction output: value locked to an owner (the owner id stands in
/// for Bitcoin's locking script).
struct TxOut {
  Amount value = 0;
  WalletId owner = 0;

  friend bool operator==(const TxOut&, const TxOut&) = default;
};

struct Transaction {
  TxIndex index = kInvalidTx;
  std::vector<OutPoint> inputs;   // empty iff coinbase
  std::vector<TxOut> outputs;

  bool is_coinbase() const noexcept { return inputs.empty(); }

  Amount total_output() const noexcept {
    Amount sum = 0;
    for (const auto& out : outputs) sum += out.value;
    return sum;
  }

  /// Distinct transactions referenced by the inputs, i.e. the TaN input
  /// neighborhood Nin (first-seen order).
  std::vector<TxIndex> distinct_input_txs() const;

  /// As above, into a caller-reused buffer (assign semantics): the streaming
  /// placement loop calls this once per transaction.
  void distinct_input_txs(std::vector<TxIndex>& out) const;

  /// SHA-256 over the canonical little-endian encoding of index, inputs and
  /// outputs. Stable across platforms.
  Digest256 txid() const;

  /// Approximate serialized size in bytes, following Bitcoin's rough
  /// per-input / per-output footprint (the paper assumes ~500 B average and
  /// 2000 transactions per 1 MB block).
  std::size_t serialized_size() const noexcept;
};

}  // namespace optchain::tx

#include "txmodel/utxo_set.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace optchain::tx {

const char* to_string(ValidationError error) noexcept {
  switch (error) {
    case ValidationError::kOk: return "ok";
    case ValidationError::kUnknownInputTx: return "unknown input transaction";
    case ValidationError::kBadOutputIndex: return "bad output index";
    case ValidationError::kAlreadySpent: return "output already spent";
    case ValidationError::kValueNotConserved: return "value not conserved";
    case ValidationError::kDuplicateInput: return "duplicate input";
    case ValidationError::kIndexMismatch: return "transaction index mismatch";
  }
  return "unknown error";
}

void UtxoSet::reserve(std::size_t txs) {
  starts_.reserve(txs + 1);
  outputs_.reserve(txs * 2);
}

bool UtxoSet::spent_bit(std::uint64_t flat_index) const noexcept {
  return (spent_bits_[flat_index >> 6] >> (flat_index & 63)) & 1ULL;
}

void UtxoSet::set_spent_bit(std::uint64_t flat_index) noexcept {
  spent_bits_[flat_index >> 6] |= 1ULL << (flat_index & 63);
}

std::uint32_t UtxoSet::num_outputs(TxIndex tx) const noexcept {
  if (!contains_tx(tx)) return 0;
  return static_cast<std::uint32_t>(starts_[tx + 1] - starts_[tx]);
}

std::optional<TxOut> UtxoSet::output(const OutPoint& point) const noexcept {
  if (!contains_tx(point.tx) || point.vout >= num_outputs(point.tx)) {
    return std::nullopt;
  }
  return outputs_[starts_[point.tx] + point.vout];
}

bool UtxoSet::is_spent(const OutPoint& point) const noexcept {
  OPTCHAIN_EXPECTS(contains_tx(point.tx) &&
                   point.vout < num_outputs(point.tx));
  return spent_bit(starts_[point.tx] + point.vout);
}

std::vector<std::uint32_t> UtxoSet::unspent_outputs(TxIndex tx) const {
  std::vector<std::uint32_t> out;
  const std::uint32_t n = num_outputs(tx);
  for (std::uint32_t vout = 0; vout < n; ++vout) {
    if (!spent_bit(starts_[tx] + vout)) out.push_back(vout);
  }
  return out;
}

ValidationError UtxoSet::validate(const Transaction& tx) const noexcept {
  if (tx.index != num_txs()) return ValidationError::kIndexMismatch;

  Amount input_value = 0;
  for (std::size_t i = 0; i < tx.inputs.size(); ++i) {
    const OutPoint& point = tx.inputs[i];
    if (!contains_tx(point.tx)) return ValidationError::kUnknownInputTx;
    if (point.vout >= num_outputs(point.tx)) {
      return ValidationError::kBadOutputIndex;
    }
    if (spent_bit(starts_[point.tx] + point.vout)) {
      return ValidationError::kAlreadySpent;
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (tx.inputs[j] == point) return ValidationError::kDuplicateInput;
    }
    input_value += outputs_[starts_[point.tx] + point.vout].value;
  }

  if (!tx.is_coinbase() && tx.total_output() > input_value) {
    return ValidationError::kValueNotConserved;
  }
  return ValidationError::kOk;
}

ValidationError UtxoSet::apply(const Transaction& tx) {
  const ValidationError err = validate(tx);
  if (err != ValidationError::kOk) return err;

  for (const OutPoint& point : tx.inputs) {
    const std::uint64_t flat = starts_[point.tx] + point.vout;
    set_spent_bit(flat);
    --unspent_count_;
    unspent_value_ -= outputs_[flat].value;
  }
  for (const TxOut& out : tx.outputs) {
    outputs_.push_back(out);
    ++unspent_count_;
    unspent_value_ += out.value;
  }
  starts_.push_back(outputs_.size());
  spent_bits_.resize((outputs_.size() + 63) / 64, 0);
  return ValidationError::kOk;
}

}  // namespace optchain::tx

// Unspent-transaction-output set with validation.
//
// Mirrors the ledger-state component every shard maintains: which outputs
// exist and whether they have been spent. The double-spend rule (paper §III:
// "after this transaction is committed to a block, those UTXOs will be marked
// as spent and cannot be used again") is enforced here and exercised by the
// cross-shard protocol tests.
//
// Storage is dense per transaction (outputs plus a spent bitmask) because
// transaction indices are dense arrival-ordered integers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "txmodel/transaction.hpp"

namespace optchain::tx {

enum class ValidationError : std::uint8_t {
  kOk = 0,
  kUnknownInputTx,       // input refers to a transaction never applied
  kBadOutputIndex,       // vout out of range for the referenced transaction
  kAlreadySpent,         // double spend
  kValueNotConserved,    // outputs exceed inputs on a non-coinbase tx
  kDuplicateInput,       // same outpoint listed twice within one transaction
  kIndexMismatch,        // tx.index does not match the next dense index
};

const char* to_string(ValidationError error) noexcept;

class UtxoSet {
 public:
  UtxoSet() = default;

  void reserve(std::size_t txs);

  /// Validates `tx` against the current state without mutating it.
  ValidationError validate(const Transaction& tx) const noexcept;

  /// Validates and applies: marks inputs spent and registers outputs.
  /// Transactions must be applied in dense index order (0, 1, 2, ...).
  ValidationError apply(const Transaction& tx);

  bool contains_tx(TxIndex tx) const noexcept { return tx < starts_.size() - 1; }
  std::size_t num_txs() const noexcept { return starts_.size() - 1; }

  std::uint32_t num_outputs(TxIndex tx) const noexcept;
  std::optional<TxOut> output(const OutPoint& point) const noexcept;
  bool is_spent(const OutPoint& point) const noexcept;

  /// Unspent outputs of `tx` (vout values).
  std::vector<std::uint32_t> unspent_outputs(TxIndex tx) const;

  std::uint64_t total_unspent_count() const noexcept { return unspent_count_; }
  Amount total_unspent_value() const noexcept { return unspent_value_; }

 private:
  bool spent_bit(std::uint64_t flat_index) const noexcept;
  void set_spent_bit(std::uint64_t flat_index) noexcept;

  // Outputs of tx t occupy outputs_[starts_[t] .. starts_[t+1]).
  std::vector<std::uint64_t> starts_{0};
  std::vector<TxOut> outputs_;
  std::vector<std::uint64_t> spent_bits_;  // bitmask parallel to outputs_
  std::uint64_t unspent_count_ = 0;
  Amount unspent_value_ = 0;
};

}  // namespace optchain::tx

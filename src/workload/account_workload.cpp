#include "workload/account_workload.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace optchain::workload {

AccountWorkloadGenerator::AccountWorkloadGenerator(
    AccountWorkloadConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  OPTCHAIN_EXPECTS(config.funding_interval >= 1);
  OPTCHAIN_EXPECTS(config.p_new_account >= 0.0 && config.p_new_account <= 1.0);
  OPTCHAIN_EXPECTS(config.recency_bias > 0.0 && config.recency_bias < 1.0);
  OPTCHAIN_EXPECTS(config.initial_communities >= 1);
  community_activity_.resize(config.initial_communities);
}

std::uint32_t AccountWorkloadGenerator::alive_communities() const noexcept {
  return config_.initial_communities +
         static_cast<std::uint32_t>(next_index_ /
                                    config_.community_birth_interval);
}

std::uint32_t AccountWorkloadGenerator::pick_active_community() {
  const std::uint32_t alive = alive_communities();
  if (community_activity_.size() < alive) community_activity_.resize(alive);
  const std::uint64_t age = rng_.geometric(config_.community_recency);
  return alive - 1 -
         static_cast<std::uint32_t>(std::min<std::uint64_t>(age, alive - 1));
}

std::uint32_t AccountWorkloadGenerator::new_account(std::uint32_t community) {
  balances_.push_back(0);
  account_community_.push_back(community);
  last_writer_.push_back({});
  return static_cast<std::uint32_t>(balances_.size() - 1);
}

std::uint32_t AccountWorkloadGenerator::pick_sender() {
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (activity_.empty()) break;
    const std::uint64_t offset = rng_.geometric(config_.recency_bias);
    if (offset >= activity_.size()) continue;
    const std::uint32_t account = activity_[activity_.size() - 1 - offset];
    if (balances_[account] > 0) return account;
  }
  for (auto it = activity_.rbegin(); it != activity_.rend(); ++it) {
    if (balances_[*it] > 0) return *it;
  }
  return static_cast<std::uint32_t>(-1);
}

std::uint32_t AccountWorkloadGenerator::pick_receiver(
    std::uint32_t sender_community) {
  const bool stay_local = !rng_.bernoulli(config_.p_cross_community);
  if (stay_local) {
    auto& local = community_activity_[sender_community];
    if (local.empty() || rng_.bernoulli(config_.p_new_account)) {
      return new_account(sender_community);
    }
    return local[rng_.below(local.size())];
  }
  if (activity_.empty() || rng_.bernoulli(config_.p_new_account)) {
    return new_account(pick_active_community());
  }
  return activity_[rng_.below(activity_.size())];
}

tx::Transaction AccountWorkloadGenerator::next() {
  tx::Transaction transaction;
  transaction.index = static_cast<tx::TxIndex>(next_index_);

  const bool funding = next_index_ % config_.funding_interval == 0 ||
                       activity_.empty();
  std::uint32_t sender = static_cast<std::uint32_t>(-1);
  std::uint32_t receiver;
  tx::Amount amount;

  if (funding) {
    receiver = rng_.bernoulli(0.5) && !balances_.empty()
                   ? static_cast<std::uint32_t>(rng_.below(balances_.size()))
                   : new_account(pick_active_community());
    amount = config_.funding_amount;
  } else {
    sender = pick_sender();
    if (sender == static_cast<std::uint32_t>(-1)) {
      receiver = new_account(pick_active_community());
      amount = config_.funding_amount;
    } else {
      receiver = pick_receiver(account_community_[sender]);
      // Transfer 1..balance, biased small (most payments are fractional).
      const tx::Amount balance = balances_[sender];
      amount = std::max<tx::Amount>(
          1, static_cast<tx::Amount>(
                 static_cast<double>(balance) * rng_.uniform(0.05, 0.6)));
    }
  }

  const bool is_transfer = sender != static_cast<std::uint32_t>(-1);
  if (is_transfer) {
    // The one "input": the sender account's latest state.
    const LastWriter& writer = last_writer_[sender];
    OPTCHAIN_ASSERT(writer.tx != tx::kInvalidTx);
    transaction.inputs.push_back({writer.tx, writer.slot});
    if (config_.dependency == AccountDependency::kSenderAndReceiver &&
        last_writer_[receiver].tx != tx::kInvalidTx &&
        receiver != sender) {
      const LastWriter& rw = last_writer_[receiver];
      transaction.inputs.push_back({rw.tx, rw.slot});
    }
    balances_[sender] -= amount;
  }
  balances_[receiver] += amount;

  // State slots written by this transaction: slot 0 = sender's new state
  // (transfers only), slot 1 (or 0 for funding) = receiver's new state.
  // A self-transfer writes the account's state exactly once.
  std::uint32_t slot = 0;
  if (is_transfer && sender != receiver) {
    transaction.outputs.push_back(
        {balances_[sender], static_cast<tx::WalletId>(sender)});
    last_writer_[sender] = {transaction.index, slot++};
    activity_.push_back(sender);
    community_activity_[account_community_[sender]].push_back(sender);
  }
  transaction.outputs.push_back(
      {balances_[receiver], static_cast<tx::WalletId>(receiver)});
  last_writer_[receiver] = {transaction.index, slot};
  activity_.push_back(receiver);
  community_activity_[account_community_[receiver]].push_back(receiver);

  ++next_index_;
  return transaction;
}

std::vector<tx::Transaction> AccountWorkloadGenerator::generate(
    std::size_t n) {
  std::vector<tx::Transaction> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

}  // namespace optchain::workload

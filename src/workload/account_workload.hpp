// Account-model transaction stream (Ethereum-style).
//
// The paper's related work singles out Ethereum 2.0 as the notable sharding
// design on the account model, where "each transaction has only one input
// and one output" (§II). This generator produces such a stream and maps it
// onto the same TaN/placement machinery:
//
//   - each transfer moves value from a sender account to a receiver account;
//   - a transaction depends on the *latest transaction that touched the
//     sender's account* (its one "input"), and optionally also the
//     receiver's last writer — the account-model analogue of spending a
//     UTXO;
//   - dependencies are encoded as OutPoints into per-transaction state
//     slots: vout 0 = the sender-account state the transaction wrote,
//     vout 1 = the receiver-account state. Each slot is consumed by exactly
//     one successor (the account's next writer), so the stream is valid
//     single-spend UTXO semantics and every placer/simulator in this
//     repository runs on it unchanged.
//
// Under this model the TaN degenerates toward per-account chains, which is
// exactly why transaction placement behaves differently there (the
// `account` scenario of optchain-bench measures it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "txmodel/transaction.hpp"

namespace optchain::workload {

/// How a transfer orders against past account activity.
enum class AccountDependency : std::uint8_t {
  kSenderOnly,         ///< paper-literal: one input, one output
  kSenderAndReceiver,  ///< also order against the receiver's last writer
};

/// Knobs of the account-model stream.
struct AccountWorkloadConfig {
  /// Every funding_interval-th transaction funds a (possibly new) account
  /// out of thin air (the account-model coinbase analogue).
  std::uint64_t funding_interval = 50;
  tx::Amount funding_amount = 1'000'000'000;  ///< value per funding event

  /// Probability a transfer goes to a brand-new account.
  double p_new_account = 0.2;

  /// Sender recency bias (geometric over the activity history) — hot
  /// accounts keep transacting.
  double recency_bias = 0.03;

  /// Accounts belong to communities; transfers leave the sender's community
  /// with probability p_cross_community (same rationale as the UTXO
  /// generator).
  std::uint32_t initial_communities = 4;
  std::uint64_t community_birth_interval = 4000;  ///< txs between births
  double community_recency = 0.25;  ///< age bias toward young communities
  double p_cross_community = 0.05;  ///< P[transfer leaves the community]

  /// Dependency model (see AccountDependency).
  AccountDependency dependency = AccountDependency::kSenderOnly;
};

/// Account-model (Ethereum-style) stream generator mapped onto the UTXO
/// machinery (see the file comment for the encoding).
class AccountWorkloadGenerator {
 public:
  /// Same (config, seed) pair ⇒ same stream, on any platform.
  explicit AccountWorkloadGenerator(AccountWorkloadConfig config = {},
                                    std::uint64_t seed = 0xacc1);

  /// Next transfer (or funding) transaction; indices are dense.
  tx::Transaction next();
  /// Next n transactions.
  std::vector<tx::Transaction> generate(std::size_t n);

  /// Accounts created so far.
  std::size_t num_accounts() const noexcept { return balances_.size(); }
  /// Transactions generated so far (== the next index).
  std::uint64_t transactions_generated() const noexcept { return next_index_; }

 private:
  struct LastWriter {
    tx::TxIndex tx = tx::kInvalidTx;
    std::uint32_t slot = 0;  // which vout of that tx carries this account
  };

  std::uint32_t new_account(std::uint32_t community);
  std::uint32_t alive_communities() const noexcept;
  std::uint32_t pick_active_community();
  std::uint32_t pick_sender();
  std::uint32_t pick_receiver(std::uint32_t sender_community);

  AccountWorkloadConfig config_;
  Rng rng_;
  std::vector<tx::Amount> balances_;
  std::vector<std::uint32_t> account_community_;
  std::vector<LastWriter> last_writer_;
  std::vector<std::uint32_t> activity_;  // account ids, one per touch
  std::vector<std::vector<std::uint32_t>> community_activity_;
  std::uint64_t next_index_ = 0;
};

}  // namespace optchain::workload

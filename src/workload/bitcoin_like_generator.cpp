#include "workload/bitcoin_like_generator.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace optchain::workload {

BitcoinLikeGenerator::BitcoinLikeGenerator(WorkloadConfig config,
                                           std::uint64_t seed)
    : config_(config),
      rng_(seed),
      input_count_dist_(config.input_zipf_alpha, config.max_inputs),
      output_count_dist_(config.output_zipf_alpha, config.max_outputs) {
  OPTCHAIN_EXPECTS(config.coinbase_interval >= 1);
  OPTCHAIN_EXPECTS(config.max_inputs >= 1 && config.max_outputs >= 1);
  OPTCHAIN_EXPECTS(config.recency_bias > 0.0 && config.recency_bias < 1.0);
  OPTCHAIN_EXPECTS(config.initial_communities >= 1);
  OPTCHAIN_EXPECTS(config.community_birth_interval >= 1);
  OPTCHAIN_EXPECTS(config.community_recency > 0.0 &&
                   config.community_recency < 1.0);
  OPTCHAIN_EXPECTS(config.p_cross_community >= 0.0 &&
                   config.p_cross_community <= 1.0);
  OPTCHAIN_EXPECTS(config.flood.start <= config.flood.end);
  wallet_utxos_.reserve(1024);
  community_receipts_.resize(config.initial_communities);
}

std::uint32_t BitcoinLikeGenerator::alive_communities() const noexcept {
  return config_.initial_communities +
         static_cast<std::uint32_t>(next_index_ /
                                    config_.community_birth_interval);
}

std::uint32_t BitcoinLikeGenerator::pick_active_community() {
  // Recency-biased draw over community birth order: freshly-born communities
  // carry most of the activity, older ones decay.
  const std::uint32_t alive = alive_communities();
  if (community_receipts_.size() < alive) community_receipts_.resize(alive);
  const std::uint64_t age = rng_.geometric(config_.community_recency);
  return alive - 1 - static_cast<std::uint32_t>(
                         std::min<std::uint64_t>(age, alive - 1));
}

tx::WalletId BitcoinLikeGenerator::new_wallet(std::uint32_t community) {
  if (community == kAnyCommunity) community = pick_active_community();
  wallet_utxos_.emplace_back();
  wallet_community_.push_back(community);
  return static_cast<tx::WalletId>(wallet_utxos_.size() - 1);
}

tx::WalletId BitcoinLikeGenerator::pick_recipient(
    std::uint32_t payer_community) {
  // Payments usually stay inside the payer's community; coinbase rewards and
  // cross-community payments draw from the global receipt history.
  // Preferential attachment in both cases: one history entry per past output
  // weights wallets by how often they have received funds.
  const bool stay_local = payer_community != kAnyCommunity &&
                          !rng_.bernoulli(config_.p_cross_community);
  if (stay_local) {
    auto& local = community_receipts_[payer_community];
    if (local.empty() || rng_.bernoulli(config_.p_new_wallet)) {
      return new_wallet(payer_community);
    }
    return local[rng_.below(local.size())];
  }
  if (receipt_history_.empty() || rng_.bernoulli(config_.p_new_wallet)) {
    return new_wallet(kAnyCommunity);
  }
  return receipt_history_[rng_.below(receipt_history_.size())];
}

tx::WalletId BitcoinLikeGenerator::pick_spender_from(
    const std::vector<tx::WalletId>& history) {
  // Recency-biased draw: most outputs are spent shortly after they are
  // created (temporal locality of the Bitcoin UTXO set), so index from the
  // back of the receipt history with a geometric offset.
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (history.empty()) break;
    const std::uint64_t offset = rng_.geometric(config_.recency_bias);
    if (offset >= history.size()) continue;
    const tx::WalletId wallet = history[history.size() - 1 - offset];
    if (!wallet_utxos_[wallet].empty()) return wallet;
  }
  // Fallback: linear scan from the most recent receipts for a funded wallet.
  for (auto it = history.rbegin(); it != history.rend(); ++it) {
    if (!wallet_utxos_[*it].empty()) return *it;
  }
  return static_cast<tx::WalletId>(-1);
}

std::uint32_t BitcoinLikeGenerator::current_burst_community() {
  const std::uint64_t burst = next_index_ / config_.burst_length;
  if (burst != burst_id_) {
    burst_id_ = burst;
    burst_community_ = pick_active_community();
  }
  return burst_community_;
}

tx::WalletId BitcoinLikeGenerator::pick_spender() {
  // During a burst the hot community originates most spends.
  if (rng_.bernoulli(config_.p_burst)) {
    const std::uint32_t hot = current_burst_community();
    const tx::WalletId wallet =
        pick_spender_from(community_receipts_[hot]);
    if (wallet != static_cast<tx::WalletId>(-1)) return wallet;
  }
  return pick_spender_from(receipt_history_);
}

tx::Transaction BitcoinLikeGenerator::make_coinbase() {
  tx::Transaction coinbase;
  coinbase.index = static_cast<tx::TxIndex>(next_index_);
  const std::uint32_t n_outputs =
      1 + static_cast<std::uint32_t>(rng_.below(2));  // miner (+ payout)
  const tx::Amount reward = config_.coinbase_reward;
  for (std::uint32_t i = 0; i < n_outputs; ++i) {
    const tx::WalletId owner = pick_recipient(kAnyCommunity);
    coinbase.outputs.push_back(
        {reward / n_outputs + (i == 0 ? reward % n_outputs : 0), owner});
  }
  return coinbase;
}

tx::Transaction BitcoinLikeGenerator::make_spend() {
  const tx::WalletId spender = pick_spender();
  OPTCHAIN_ASSERT(spender != static_cast<tx::WalletId>(-1));

  const bool flooding =
      next_index_ >= config_.flood.start && next_index_ < config_.flood.end;
  const std::uint32_t want_inputs =
      flooding ? config_.flood.inputs_per_tx : input_count_dist_.sample(rng_);

  tx::Transaction spend;
  spend.index = static_cast<tx::TxIndex>(next_index_);
  tx::Amount input_value = 0;

  // Drain UTXOs from the spender's wallet; flood transactions keep pulling
  // additional wallets in (the 2015 spam attack consolidated dust scattered
  // across many attacker addresses into single high-in-degree transactions).
  tx::WalletId source = spender;
  while (spend.inputs.size() < want_inputs) {
    auto& pool = wallet_utxos_[source];
    if (pool.empty()) {
      if (!flooding) break;
      const tx::WalletId refill = pick_spender();
      if (refill == static_cast<tx::WalletId>(-1) || refill == source) break;
      source = refill;
      continue;
    }
    // Mostly spend the wallet's most recent UTXO; occasionally reach back,
    // producing the long tail of old-output spends.
    std::size_t pos = pool.size() - 1;
    if (pool.size() > 1 && rng_.bernoulli(0.25)) {
      pos = rng_.below(pool.size());
    }
    const UtxoRef ref = pool[pos];
    pool[pos] = pool.back();
    pool.pop_back();
    spend.inputs.push_back({ref.tx, ref.vout});
    input_value += ref.value;
  }
  OPTCHAIN_ASSERT(!spend.inputs.empty());

  const std::uint32_t n_outputs = flooding ? 1 : output_count_dist_.sample(rng_);
  const std::uint32_t payer_community = wallet_community_[spender];
  tx::Amount remaining = input_value;
  for (std::uint32_t i = 0; i < n_outputs; ++i) {
    const bool last = (i + 1 == n_outputs);
    tx::Amount value = remaining;
    if (!last) {
      // Uneven split; at least 1 satoshi if anything remains.
      value = remaining <= 1
                  ? remaining
                  : static_cast<tx::Amount>(rng_.uniform_int(
                        1, std::max<std::int64_t>(1, remaining / 2)));
    }
    remaining -= value;
    const bool change = last && rng_.bernoulli(0.4);
    const tx::WalletId owner =
        change ? spender : pick_recipient(payer_community);
    spend.outputs.push_back({value, owner});
    if (remaining == 0 && !last) break;  // tiny input value: stop early
  }
  return spend;
}

tx::Transaction BitcoinLikeGenerator::next() {
  const bool need_coinbase =
      next_index_ % config_.coinbase_interval == 0 || !has_funded_wallet();
  tx::Transaction transaction = need_coinbase ? make_coinbase() : make_spend();

  // Register outputs with their owner wallets and the receipt histories.
  for (std::uint32_t vout = 0;
       vout < static_cast<std::uint32_t>(transaction.outputs.size()); ++vout) {
    const tx::TxOut& out = transaction.outputs[vout];
    if (out.value > 0) {
      wallet_utxos_[out.owner].push_back({transaction.index, vout, out.value});
      receipt_history_.push_back(out.owner);
      community_receipts_[wallet_community_[out.owner]].push_back(out.owner);
      ++live_utxos_;
    }
  }
  live_utxos_ -= transaction.inputs.size();
  ++next_index_;
  return transaction;
}

bool BitcoinLikeGenerator::has_funded_wallet() const noexcept {
  return live_utxos_ > 0;
}

std::vector<tx::Transaction> BitcoinLikeGenerator::generate(std::size_t n) {
  std::vector<tx::Transaction> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

}  // namespace optchain::workload

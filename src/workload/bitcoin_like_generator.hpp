// Synthetic Bitcoin-like transaction stream.
//
// Stands in for the MIT Bitcoin dataset used by the paper (§V.A; first 10M
// transactions, TaN with 10M nodes / ~20M edges). The generator reproduces
// the three workload properties that placement algorithms are sensitive to,
// calibrated against the paper's Fig. 2 statistics:
//
//  1. Degree distribution — input and spender counts follow bounded discrete
//     power laws with mean ≈ 2 (93.1% of nodes have spender-degree < 3;
//     86.3% have input-degree < 3).
//  2. Temporal locality — outputs are mostly spent soon after creation
//     (recency-biased spender selection), so related transactions are close
//     in arrival order.
//  3. Ownership community structure — wallets own UTXOs and belong to
//     communities (exchanges, mining pools, circles of counterparties); a
//     transaction spends outputs of one wallet and pays recipients drawn by
//     preferential attachment, mostly within the payer's community. Payment
//     flows therefore stay inside communities for many hops, exactly the
//     long-range relatedness that separates OptChain's multi-hop T2S score
//     from the one-hop Greedy baseline in the paper's Tables I-II.
//
// An optional "flood episode" reproduces the 2015 spam-attack degree spike
// visible in the paper's Fig. 2c (consolidation transactions with dozens of
// inputs). Every generated transaction is valid against a UTXO set: inputs
// exist, are unspent, and value is conserved (tested in
// tests/workload_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "txmodel/transaction.hpp"

namespace optchain::workload {

/// Flood-attack episode: transactions in [start, end) are input-heavy
/// consolidations. Disabled by default (start == end).
struct FloodEpisode {
  std::uint64_t start = 0;  ///< first flooded transaction index
  std::uint64_t end = 0;    ///< one past the last flooded index
  std::uint32_t inputs_per_tx = 30;  ///< consolidation fan-in per spam tx
};

/// Knobs of the Bitcoin-like stream (defaults calibrated to Fig. 2).
struct WorkloadConfig {
  /// Every coinbase_interval-th transaction is a coinbase (block reward).
  std::uint64_t coinbase_interval = 100;
  tx::Amount coinbase_reward = 5'000'000'000;  ///< 50 BTC in satoshi

  /// Input/output count distributions: P(count = c) ∝ c^(-alpha), c ≤ max.
  double input_zipf_alpha = 1.8;
  std::uint32_t max_inputs = 24;   ///< input-count cap
  double output_zipf_alpha = 1.8;  ///< output-count exponent
  std::uint32_t max_outputs = 16;  ///< output-count cap

  /// Probability that a paid output goes to a brand-new wallet.
  double p_new_wallet = 0.30;

  /// Geometric parameter of the spend-recency distribution; higher values
  /// concentrate spending on very recent outputs.
  double recency_bias = 0.02;

  /// Wallets belong to communities (exchanges, pools, counterparty circles).
  /// Communities have a *lifecycle*: initial_communities exist at genesis and
  /// a new one is born every community_birth_interval transactions; activity
  /// concentrates on recently-born communities (community_recency is the
  /// geometric parameter of the age bias). This temporal community churn is
  /// what makes an offline min-cut partition align with *time ranges* of the
  /// stream — the paper's observation that "Metis tends to put large amounts
  /// of consecutive transactions into one shard" (§IV.B, Fig. 6c).
  /// Payments leave the payer's community with probability p_cross_community.
  std::uint32_t initial_communities = 4;
  std::uint64_t community_birth_interval = 4000;  ///< txs between births
  double community_recency = 0.25;   ///< age bias toward young communities
  double p_cross_community = 0.05;   ///< P[payment leaves the community]

  /// Activity arrives in community bursts: for burst_length consecutive
  /// transactions one community is "hot" and originates a p_burst fraction
  /// of the spends (payment waves, exchange batch processing). Bursts are
  /// what stress a placement strategy's temporal balance: an offline
  /// partitioner maps a burst to one shard wholesale, and a capacity-capped
  /// greedy strategy overflows mid-burst.
  std::uint64_t burst_length = 400;  ///< transactions per burst window
  double p_burst = 0.7;  ///< share of spends the hot community originates

  FloodEpisode flood;  ///< optional spam-attack episode (Fig. 2c)
};

/// Synthetic Bitcoin-like stream generator (see the file comment for the
/// three calibrated workload properties).
class BitcoinLikeGenerator {
 public:
  /// Same (config, seed) pair ⇒ same stream, on any platform.
  explicit BitcoinLikeGenerator(WorkloadConfig config = {},
                                std::uint64_t seed = 0x09dc4a11);

  /// Generates the next transaction in the stream. Transaction indices are
  /// dense and sequential; the same (config, seed) pair always yields the
  /// same stream.
  tx::Transaction next();

  /// Generates the next n transactions.
  std::vector<tx::Transaction> generate(std::size_t n);

  /// Transactions generated so far (== the next index).
  std::uint64_t transactions_generated() const noexcept { return next_index_; }
  /// Wallets created so far.
  std::size_t num_wallets() const noexcept { return wallet_utxos_.size(); }
  /// The community `wallet` belongs to.
  std::uint32_t community_of(tx::WalletId wallet) const {
    return wallet_community_.at(wallet);
  }
  /// The generator's configuration.
  const WorkloadConfig& config() const noexcept { return config_; }

 private:
  struct UtxoRef {
    tx::TxIndex tx;
    std::uint32_t vout;
    tx::Amount value;
  };

  tx::WalletId new_wallet(std::uint32_t community);
  /// Recipient for a payment originating from `payer_community`
  /// (kAnyCommunity for coinbase rewards).
  tx::WalletId pick_recipient(std::uint32_t payer_community);
  tx::WalletId pick_spender();
  tx::WalletId pick_spender_from(const std::vector<tx::WalletId>& history);
  std::uint32_t current_burst_community();
  std::uint32_t alive_communities() const noexcept;
  std::uint32_t pick_active_community();
  tx::Transaction make_coinbase();
  tx::Transaction make_spend();
  bool has_funded_wallet() const noexcept;

  static constexpr std::uint32_t kAnyCommunity = static_cast<std::uint32_t>(-1);

  WorkloadConfig config_;
  Rng rng_;
  ZipfSampler input_count_dist_;
  ZipfSampler output_count_dist_;

  std::vector<std::vector<UtxoRef>> wallet_utxos_;
  std::vector<std::uint32_t> wallet_community_;
  std::vector<tx::WalletId> receipt_history_;  // one entry per past output
  std::vector<std::vector<tx::WalletId>> community_receipts_;
  std::uint64_t next_index_ = 0;
  std::uint64_t live_utxos_ = 0;
  std::uint64_t burst_id_ = static_cast<std::uint64_t>(-1);
  std::uint32_t burst_community_ = 0;
};

}  // namespace optchain::workload

#include "workload/conflict_injector.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace optchain::workload {

ConflictStream inject_double_spends(std::vector<tx::Transaction> transactions,
                                    double rate, std::uint64_t seed,
                                    std::uint32_t window) {
  OPTCHAIN_EXPECTS(rate >= 0.0 && rate <= 1.0);
  OPTCHAIN_EXPECTS(window >= 1);

  ConflictStream out;
  out.is_conflict.assign(transactions.size(), false);
  Rng rng(seed);

  for (std::size_t i = 0; i < transactions.size(); ++i) {
    tx::Transaction& candidate = transactions[i];
    if (candidate.is_coinbase() || !rng.bernoulli(rate)) continue;

    // Pick a recent non-coinbase victim whose inputs we re-spend.
    const std::size_t low = i > window ? i - window : 0;
    tx::TxIndex victim = tx::kInvalidTx;
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto probe = static_cast<std::size_t>(
          low + rng.below(std::max<std::size_t>(i - low, 1)));
      if (probe < i && !transactions[probe].is_coinbase() &&
          !out.is_conflict[probe]) {
        victim = static_cast<tx::TxIndex>(probe);
        break;
      }
    }
    if (victim == tx::kInvalidTx) continue;

    candidate.inputs = transactions[victim].inputs;
    out.is_conflict[i] = true;
    ++out.num_conflicts;
  }
  out.transactions = std::move(transactions);
  return out;
}

}  // namespace optchain::workload

// Double-spend conflict injection.
//
// Replaces a fraction of a valid transaction stream's spends with conflicts
// that re-spend the inputs of a recent earlier transaction. Feeding the
// result into sim::Simulation exercises the OmniLedger abort path
// (proof-of-rejection → unlock-to-abort, §III.A): for every conflicting
// pair at most one transaction commits; the double spend (or, when locks
// race across shards, both contenders) aborts.
#pragma once

#include <cstdint>
#include <vector>

#include "txmodel/transaction.hpp"

namespace optchain::workload {

/// A transaction stream with injected double-spend conflicts.
struct ConflictStream {
  std::vector<tx::Transaction> transactions;  ///< the mutated stream
  std::vector<bool> is_conflict;  ///< parallel to transactions
  std::uint64_t num_conflicts = 0;  ///< how many spends were replaced
};

/// With probability `rate`, a non-coinbase transaction's inputs are replaced
/// by the inputs of a random earlier non-coinbase transaction within the
/// last `window` arrivals (so the conflict races the victim through the
/// protocol). Outputs and indices are untouched; the TaN stays a valid DAG.
ConflictStream inject_double_spends(std::vector<tx::Transaction> transactions,
                                    double rate, std::uint64_t seed,
                                    std::uint32_t window = 2000);

}  // namespace optchain::workload

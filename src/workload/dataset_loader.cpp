#include "workload/dataset_loader.hpp"

#include <charconv>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace optchain::workload {
namespace {

[[noreturn]] void fail(const std::string& path, std::size_t line_no,
                       const std::string& what) {
  throw std::runtime_error(path + ":" + std::to_string(line_no) + ": " + what);
}

}  // namespace

graph::TanDag load_tan_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open TaN dataset: " + path);

  graph::TanDag dag;
  std::string line;
  std::size_t line_no = 0;
  std::vector<graph::NodeId> inputs;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;

    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) fail(path, line_no, "missing ':'");

    std::uint32_t index = 0;
    const auto [iptr, iec] =
        std::from_chars(line.data(), line.data() + colon, index);
    if (iec != std::errc{} || iptr != line.data() + colon) {
      fail(path, line_no, "bad transaction index");
    }
    if (index != dag.num_nodes()) {
      fail(path, line_no, "non-dense transaction index");
    }

    inputs.clear();
    const char* cursor = line.data() + colon + 1;
    const char* end = line.data() + line.size();
    while (cursor < end) {
      while (cursor < end && *cursor == ' ') ++cursor;
      if (cursor == end) break;
      std::uint32_t input = 0;
      const auto [ptr, ec] = std::from_chars(cursor, end, input);
      if (ec != std::errc{}) fail(path, line_no, "bad input index");
      if (input >= index) fail(path, line_no, "forward/self reference");
      inputs.push_back(input);
      cursor = ptr;
    }
    dag.add_node(inputs);
  }
  return dag;
}

void save_tan_edge_list(const graph::TanDag& dag, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write TaN dataset: " + path);
  out << "# TaN edge list: <tx>: <input_tx>...\n";
  for (graph::NodeId u = 0; u < dag.num_nodes(); ++u) {
    out << u << ':';
    for (const graph::NodeId v : dag.inputs(u)) out << ' ' << v;
    out << '\n';
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace optchain::workload

#include "workload/dataset_loader.hpp"

#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "workload/edge_list_parser.hpp"

namespace optchain::workload {

graph::TanDag load_tan_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open TaN dataset: " + path);

  graph::TanDag dag;
  std::string line;
  std::size_t line_no = 0;
  std::vector<graph::NodeId> inputs;
  while (std::getline(in, line)) {
    ++line_no;
    if (edge_list_skip_line(line)) continue;
    parse_edge_list_line(line, static_cast<std::uint32_t>(dag.num_nodes()),
                         inputs, path + ":" + std::to_string(line_no));
    dag.add_node(inputs);
  }
  if (in.bad()) throw std::runtime_error("read failed: " + path);
  return dag;
}

void save_tan_edge_list(const graph::TanDag& dag, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write TaN dataset: " + path);
  out << "# TaN edge list: <tx>: <input_tx>...\n";
  for (graph::NodeId u = 0; u < dag.num_nodes(); ++u) {
    out << u << ':';
    for (const graph::NodeId v : dag.inputs(u)) out << ' ' << v;
    out << '\n';
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace optchain::workload

// Loader for on-disk TaN datasets, so the real MIT Bitcoin data (or any other
// UTXO trace) can replace the synthetic generator without code changes.
//
// Format ("tan edge list", text): one line per transaction, in arrival
// order:
//     <tx_index>: <input_tx_1> <input_tx_2> ...
// A coinbase transaction has no inputs after the colon. Lines starting with
// '#' are comments. Indices must be dense (0, 1, 2, ...).
//
// A writer is provided for round-tripping and for exporting generated
// workloads to other tools.
#pragma once

#include <string>

#include "graph/dag.hpp"

namespace optchain::workload {

/// Parses a TaN edge-list file. Throws std::runtime_error on I/O failure or
/// malformed input (non-dense indices, forward references).
graph::TanDag load_tan_edge_list(const std::string& path);

/// Writes a TaN DAG in the edge-list format accepted by load_tan_edge_list.
void save_tan_edge_list(const graph::TanDag& dag, const std::string& path);

}  // namespace optchain::workload

#include "workload/dynamic_profile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"

namespace optchain::workload {

namespace {

constexpr double kMinRate = 1e-9;  // floor keeping inter-arrival gaps finite

void expect_positive(double value, const char* what) {
  if (!(value > 0.0)) {
    throw std::invalid_argument(std::string("RateCurve: ") + what +
                                " must be > 0");
  }
}

/// Instantaneous rate of `phase` at phase-local time `local` (clamped to the
/// declared duration so the final phase extends smoothly).
double phase_rate(const RatePhase& phase, double local) noexcept {
  switch (phase.shape) {
    case RateShape::kConstant:
      return phase.r0;
    case RateShape::kRamp: {
      const double f =
          phase.duration_s > 0.0
              ? std::clamp(local / phase.duration_s, 0.0, 1.0)
              : 1.0;
      return phase.r0 + (phase.r1 - phase.r0) * f;
    }
    case RateShape::kDiurnal: {
      const double rate =
          phase.r0 +
          phase.r1 * std::sin(6.283185307179586 * local / phase.period_s);
      return std::max(rate, kMinRate);
    }
    case RateShape::kFlashCrowd:
      return phase.r0 + (phase.r1 - phase.r0) * std::exp(-local /
                                                         phase.period_s);
  }
  return kMinRate;  // unreachable
}

}  // namespace

// ---------------------------------------------------------------- RateCurve

RateCurve& RateCurve::constant(double rate_tps, double duration_s) {
  expect_positive(rate_tps, "constant rate");
  expect_positive(duration_s, "phase duration");
  phases_.push_back({RateShape::kConstant, duration_s, rate_tps, rate_tps,
                     0.0});
  return *this;
}

RateCurve& RateCurve::ramp(double from_tps, double to_tps, double duration_s) {
  expect_positive(from_tps, "ramp start rate");
  expect_positive(to_tps, "ramp end rate");
  expect_positive(duration_s, "phase duration");
  phases_.push_back({RateShape::kRamp, duration_s, from_tps, to_tps, 0.0});
  return *this;
}

RateCurve& RateCurve::diurnal(double mean_tps, double amplitude_tps,
                              double period_s, double duration_s) {
  expect_positive(mean_tps, "diurnal mean rate");
  expect_positive(period_s, "diurnal period");
  expect_positive(duration_s, "phase duration");
  if (amplitude_tps < 0.0) {
    throw std::invalid_argument("RateCurve: diurnal amplitude must be >= 0");
  }
  phases_.push_back({RateShape::kDiurnal, duration_s, mean_tps, amplitude_tps,
                     period_s});
  return *this;
}

RateCurve& RateCurve::flash_crowd(double baseline_tps, double peak_tps,
                                  double decay_s, double duration_s) {
  expect_positive(baseline_tps, "flash-crowd baseline rate");
  expect_positive(peak_tps, "flash-crowd peak rate");
  expect_positive(decay_s, "flash-crowd decay constant");
  expect_positive(duration_s, "phase duration");
  phases_.push_back({RateShape::kFlashCrowd, duration_s, baseline_tps,
                     peak_tps, decay_s});
  return *this;
}

double RateCurve::rate_at(double t) const noexcept {
  if (phases_.empty()) return kMinRate;
  double start = 0.0;
  for (std::size_t p = 0; p < phases_.size(); ++p) {
    const bool last = p + 1 == phases_.size();
    if (last || t < start + phases_[p].duration_s) {
      return phase_rate(phases_[p], std::max(0.0, t - start));
    }
    start += phases_[p].duration_s;
  }
  return kMinRate;  // unreachable
}

// ------------------------------------------------------------- RateSchedule

RateSchedule::RateSchedule(const RateCurve& curve) : curve_(curve) {
  OPTCHAIN_EXPECTS(!curve.empty());
}

double RateSchedule::time_of(std::uint64_t index) {
  OPTCHAIN_EXPECTS(index + 1 >= emitted_);
  double t = t_;
  while (emitted_ <= index) t = next_time();
  return t;
}

double RateSchedule::next_time() {
  if (emitted_ == 0) {
    ++emitted_;
    t_ = 0.0;
    return 0.0;
  }
  const auto& phases = curve_.phases();
  while (true) {
    const RatePhase& phase = phases[phase_];
    const bool last = phase_ + 1 == phases.size();
    double candidate;
    if (phase.shape == RateShape::kConstant) {
      // Analytic within constant phases: arrival n of the phase lands at
      // phase start + n/rate. A single constant phase therefore reproduces
      // the uniform index/rate schedule bit-for-bit (the decorator
      // equivalence golden relies on this).
      candidate = phase_t0_ +
                  static_cast<double>(emitted_ - phase_n0_) / phase.r0;
    } else {
      const double rate =
          std::max(phase_rate(phase, t_ - phase_t0_), kMinRate);
      candidate = t_ + 1.0 / rate;
    }
    if (last || candidate < phase_t0_ + phase.duration_s) {
      t_ = candidate;
      ++emitted_;
      return candidate;
    }
    // The arrival falls past this phase: roll to the next phase's start and
    // recompute under its rate (loops across degenerate short phases).
    phase_t0_ += phase.duration_s;
    phase_n0_ = emitted_ - 1;
    t_ = phase_t0_;
    ++phase_;
  }
}

// ----------------------------------------------------------- DynamicProfile

void DynamicProfile::validate() const {
  const auto bad = [](const char* what) {
    throw std::invalid_argument(std::string("DynamicProfile: ") + what);
  };
  if (hotspot.injection_fraction < 0.0 ||
      !std::isfinite(hotspot.injection_fraction)) {
    bad("injection_fraction must be finite and >= 0");
  }
  if (injects()) {
    if (hotspot.hot_set_size == 0) bad("hot_set_size must be >= 1");
    if (!(hotspot.zipf_s > 0.0)) bad("zipf_s must be > 0");
    if (hotspot.fanout_inputs == 0) bad("fanout_inputs must be >= 1");
  }
  for (const SpamBurst& burst : bursts) {
    if (burst.end_index <= burst.begin_index) {
      bad("burst window must be non-empty (end_index > begin_index)");
    }
    if (burst.intensity < 0.0) bad("burst intensity must be >= 0");
    if (burst.fanout_inputs == 0) bad("burst fanout_inputs must be >= 1");
  }
}

// ---------------------------------------------------------- DynamicTxSource

DynamicTxSource::DynamicTxSource(TxSource& inner, DynamicProfile profile,
                                 std::uint64_t seed)
    : inner_(&inner),
      profile_(std::move(profile)),
      rng_(seed ^ 0xdf0a11cULL),
      zipf_(profile_.hotspot.zipf_s > 0.0 ? profile_.hotspot.zipf_s : 1.0,
            std::max<std::uint32_t>(1, profile_.hotspot.hot_set_size)) {
  profile_.validate();
  if (!profile_.rate.empty()) schedule_.emplace(profile_.rate);
}

std::optional<std::uint64_t> DynamicTxSource::size_hint() const {
  if (profile_.injects()) return std::nullopt;
  return inner_->size_hint();
}

double DynamicTxSource::issue_time(std::uint64_t index,
                                   double nominal_rate_tps) {
  if (!schedule_.has_value()) {
    return TxSource::issue_time(index, nominal_rate_tps);
  }
  return schedule_->time_of(index);
}

bool DynamicTxSource::in_burst(std::uint64_t index,
                               const SpamBurst** burst) const noexcept {
  for (const SpamBurst& candidate : profile_.bursts) {
    if (index >= candidate.begin_index && index < candidate.end_index) {
      *burst = &candidate;
      return true;
    }
  }
  *burst = nullptr;
  return false;
}

void DynamicTxSource::maybe_rotate_hot_set() {
  if (!profile_.injects() || emitted_ == 0) return;
  const bool due =
      hot_set_.empty() || (profile_.hotspot.rotation_interval > 0 &&
                           emitted_ >= next_rotation_);
  if (!due) return;
  const auto size = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      profile_.hotspot.hot_set_size, emitted_));
  hot_set_.clear();
  for (std::uint32_t rank = 0; rank < size; ++rank) {
    hot_set_.push_back(static_cast<tx::TxIndex>(emitted_ - 1 - rank));
  }
  next_rotation_ =
      emitted_ + std::max<std::uint64_t>(1, profile_.hotspot.rotation_interval);
}

void DynamicTxSource::emit_injected(tx::Transaction& out,
                                    const SpamBurst* burst) {
  OPTCHAIN_ASSERT(!hot_set_.empty());
  out.index = static_cast<tx::TxIndex>(emitted_);
  out.inputs.clear();
  out.outputs.clear();
  const std::uint32_t fanout =
      burst != nullptr ? burst->fanout_inputs : profile_.hotspot.fanout_inputs;
  for (std::uint32_t i = 0; i < fanout; ++i) {
    const auto rank = static_cast<std::size_t>(
        std::min<std::uint32_t>(zipf_.sample(rng_),
                                static_cast<std::uint32_t>(hot_set_.size())));
    const tx::TxIndex parent = hot_set_[rank - 1];
    out.inputs.push_back({parent, kInjectedVoutBase + synthetic_vouts_++});
  }
  out.outputs.push_back({546, kInjectedOwner});  // dust marker output
  ++injected_;
  ++emitted_;
  credit_ -= 1.0;
}

bool DynamicTxSource::next(tx::Transaction& out) {
  maybe_rotate_hot_set();

  // Injection owed from accrued credit goes out before the next pass-through
  // transaction (credit only accrues on pass-through, which bounds runs of
  // injected transactions by the configured intensity).
  if (profile_.injects() && !hot_set_.empty() && credit_ >= 1.0) {
    const SpamBurst* burst = nullptr;
    in_burst(emitted_, &burst);
    emit_injected(out, burst);
    return true;
  }

  if (!inner_->next(out)) return false;

  if (profile_.injects()) {
    // Injected transactions shift every later index; the map keeps the inner
    // stream's spend graph intact under the new dense numbering.
    OPTCHAIN_ASSERT(out.index == index_map_.size());
    index_map_.push_back(static_cast<tx::TxIndex>(emitted_));
    for (tx::OutPoint& input : out.inputs) {
      OPTCHAIN_ASSERT(input.tx < index_map_.size());
      input.tx = index_map_[input.tx];
    }
    const SpamBurst* burst = nullptr;
    in_burst(emitted_, &burst);
    credit_ += profile_.hotspot.injection_fraction +
               (burst != nullptr ? burst->intensity : 0.0);
  }
  out.index = static_cast<tx::TxIndex>(emitted_);
  ++emitted_;
  return true;
}

}  // namespace optchain::workload

// Dynamic workload profiles — time-varying rates, hotspot skew and spam
// bursts layered over any transaction stream.
//
// The paper evaluates OptChain only under stationary trace replay (§V.A), but
// placement quality is most stressed when the workload *moves*: bursty
// arrival rates, hot accounts that concentrate spends, and DoS-style
// consolidation spam (the 2015 flood episode of Fig. 2c). Shard Scheduler
// (Król et al., AFT 2021) and Ren & Ward's placement study both show skewed,
// time-varying traffic is where static placement degrades.
//
// Everything here is a decorator over workload::TxSource, so the placement
// pipeline and the simulator consume dynamic streams unchanged:
//
//   workload::GeneratorTxSource inner({}, seed, n);
//   workload::DynamicProfile profile;
//   profile.rate.constant(2000.0, 30.0).flash_crowd(2000.0, 8000.0, 5.0, 30.0);
//   profile.hotspot.injection_fraction = 0.05;
//   workload::DynamicTxSource source(inner, profile, seed);
//   simulation.run(source, pipeline);          // rate waves + hot spends
//
// Three orthogonal knobs compose:
//   RateCurve      — piecewise arrival-rate curve (constant / step via
//                    consecutive constants / ramp / diurnal / flash-crowd);
//                    drives TxSource::issue_time, which the simulator uses to
//                    schedule client issues.
//   HotspotConfig  — injected transactions spend outputs of a *rotating hot
//                    set* of recent transactions with Zipfian popularity
//                    (hot exchanges / popular contracts).
//   SpamBurst      — index windows where injection intensifies and injected
//                    transactions fan out over many hot parents (DoS-style
//                    consolidation spam).
//
// Determinism contract: a DynamicTxSource is a pure function of
// (inner stream, profile, seed). A profile with a constant-rate curve and no
// injection is bit-identical to the undecorated inner source — issue times
// included — which is what keeps the engine goldens valid (pinned in
// tests/dynamic_workload_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "txmodel/transaction.hpp"
#include "workload/tx_source.hpp"

namespace optchain::workload {

/// Shape of one phase of a piecewise rate curve.
enum class RateShape : std::uint8_t {
  kConstant,    ///< rate r0 for the whole phase
  kRamp,        ///< linear r0 → r1 across the phase
  kDiurnal,     ///< r0 + r1 · sin(2π · t / period) (clamped above zero)
  kFlashCrowd,  ///< spike: r0 + (r1 − r0) · exp(−t / period), period = decay τ
};

/// One phase of a RateCurve, active for `duration_s` simulated seconds.
/// Fields are interpreted per RateShape (see the enum).
struct RatePhase {
  RateShape shape = RateShape::kConstant;  ///< curve shape within the phase
  double duration_s = 0.0;  ///< phase length; the final phase extends forever
  double r0 = 2000.0;       ///< base rate (tps); see RateShape
  double r1 = 2000.0;       ///< secondary rate (ramp target / amplitude / peak)
  double period_s = 0.0;    ///< diurnal period or flash-crowd decay constant
};

/// A piecewise arrival-rate curve built from fluent phase appends. Step
/// functions are consecutive constant() phases. An empty curve means
/// "no rate shaping" — the consumer's nominal rate applies.
class RateCurve {
 public:
  /// Appends a constant-rate phase (`rate_tps` for `duration_s`).
  RateCurve& constant(double rate_tps, double duration_s);
  /// Appends a linear ramp from `from_tps` to `to_tps` over `duration_s`.
  RateCurve& ramp(double from_tps, double to_tps, double duration_s);
  /// Appends a sinusoidal phase: mean ± amplitude with the given period.
  RateCurve& diurnal(double mean_tps, double amplitude_tps, double period_s,
                     double duration_s);
  /// Appends a flash-crowd spike: instantaneous jump to `peak_tps`, decaying
  /// toward `baseline_tps` with time constant `decay_s`.
  RateCurve& flash_crowd(double baseline_tps, double peak_tps, double decay_s,
                         double duration_s);

  /// True when no phase has been added (the curve imposes nothing).
  bool empty() const noexcept { return phases_.empty(); }
  /// The appended phases, in order.
  const std::vector<RatePhase>& phases() const noexcept { return phases_; }

  /// Instantaneous rate at absolute time `t` (the final phase extends past
  /// its declared duration). Validation: throws std::invalid_argument from
  /// the builders on non-positive rates or durations.
  double rate_at(double t) const noexcept;

 private:
  std::vector<RatePhase> phases_;
};

/// Walks a RateCurve to per-transaction issue times. Arrival n of a constant
/// phase is computed analytically (phase_start + n/rate — exactly the
/// uniform index/rate schedule when the curve is one constant phase), other
/// shapes advance incrementally by the instantaneous inter-arrival gap.
/// time_of() must be called with strictly increasing indices.
class RateSchedule {
 public:
  /// `curve` must be non-empty and outlive the schedule.
  explicit RateSchedule(const RateCurve& curve);

  /// Issue time of transaction `index`; indices must arrive in increasing
  /// order (skipping ahead fast-forwards the walk). index 0 is always 0.0.
  double time_of(std::uint64_t index);

 private:
  double next_time();

  const RateCurve& curve_;
  std::size_t phase_ = 0;
  double phase_t0_ = 0.0;       // absolute start time of the current phase
  std::uint64_t phase_n0_ = 0;  // arrivals emitted before the current phase
  std::uint64_t emitted_ = 0;   // issue times produced so far
  double t_ = 0.0;              // last produced issue time
};

/// Zipfian hot-set skew: a rotating window of recent transactions becomes
/// "hot", and injected transactions spend their outputs with Zipfian
/// popularity — the UTXO analogue of hot accounts / popular contracts.
struct HotspotConfig {
  /// Injected hot transactions per pass-through transaction (0 disables the
  /// hotspot layer entirely; 0.1 ≈ one injected spend per 10 stream txs).
  double injection_fraction = 0.0;
  /// Zipf exponent over hot-set ranks (rank 1 = most recent member).
  double zipf_s = 1.1;
  /// Number of transactions in the hot set.
  std::uint32_t hot_set_size = 64;
  /// The hot set is re-drawn from the most recent transactions every
  /// `rotation_interval` emitted transactions (0 = never rotate).
  std::uint64_t rotation_interval = 5000;
  /// Inputs per injected transaction outside spam bursts.
  std::uint32_t fanout_inputs = 1;
};

/// A spam/DoS episode: within [begin_index, end_index) of the *emitted*
/// stream, injection intensifies by `intensity` and injected transactions
/// fan out over `fanout_inputs` hot parents (consolidation-spam shape —
/// the paper's Fig. 2c flood, but aimed at the hot set).
struct SpamBurst {
  std::uint64_t begin_index = 0;  ///< first emitted index inside the burst
  std::uint64_t end_index = 0;    ///< one past the last emitted index
  double intensity = 0.5;         ///< extra injected txs per pass-through tx
  std::uint32_t fanout_inputs = 16;  ///< inputs per injected burst tx
};

/// A complete dynamic-workload description: rate shaping + hotspot skew +
/// spam bursts. Default-constructed profiles are inert (pure pass-through).
struct DynamicProfile {
  RateCurve rate;                ///< arrival-rate curve (empty = nominal rate)
  HotspotConfig hotspot;         ///< rotating-hot-set injection model
  std::vector<SpamBurst> bursts; ///< DoS episodes over the emitted stream

  /// True when any knob deviates from pass-through.
  bool active() const noexcept { return !rate.empty() || injects(); }
  /// True when the profile injects transactions (hotspot or bursts).
  bool injects() const noexcept {
    return hotspot.injection_fraction > 0.0 || !bursts.empty();
  }
  /// Throws std::invalid_argument on nonsensical parameters (negative
  /// fractions, zero hot set with injection, inverted burst windows).
  void validate() const;
};

/// The owner id stamped on injected transactions' outputs, so consumers and
/// tests can tell injected spends from pass-through traffic.
inline constexpr tx::WalletId kInjectedOwner = 0xFFFFFFFEu;

/// TxSource decorator applying a DynamicProfile to an inner stream.
///
/// Pass-through transactions keep their payload but are re-indexed to stay
/// dense while injected transactions interleave; their input references are
/// remapped through the same index translation, so the TaN structure of the
/// inner stream is preserved exactly. Injected transactions spend synthetic
/// outpoints of hot parents (vouts above kInjectedVoutBase), which never
/// collide with genuine outputs — hotspots skew *placement pressure*, not
/// the double-spend ledger.
class DynamicTxSource final : public TxSource {
 public:
  /// `inner` must outlive the source. Throws std::invalid_argument when the
  /// profile fails validate().
  DynamicTxSource(TxSource& inner, DynamicProfile profile, std::uint64_t seed);

  bool next(tx::Transaction& out) override;

  /// Inner hint when nothing is injected; injection makes the emitted length
  /// stochastic, so the hint degrades to "unknown".
  std::optional<std::uint64_t> size_hint() const override;

  /// Rate-curve issue times when the profile has a curve; the uniform
  /// index/rate schedule otherwise.
  double issue_time(std::uint64_t index, double nominal_rate_tps) override;

  /// Transactions injected so far (tests / reporting).
  std::uint64_t injected() const noexcept { return injected_; }

  /// Synthetic vouts of injected spends start here (keeps them disjoint from
  /// genuine outputs, see class comment).
  static constexpr std::uint32_t kInjectedVoutBase = 0x40000000u;

 private:
  bool in_burst(std::uint64_t index, const SpamBurst** burst) const noexcept;
  void maybe_rotate_hot_set();
  void emit_injected(tx::Transaction& out, const SpamBurst* burst);

  TxSource* inner_;
  DynamicProfile profile_;
  Rng rng_;
  ZipfSampler zipf_;
  std::optional<RateSchedule> schedule_;

  std::uint64_t emitted_ = 0;   // next emitted (outer) index
  std::uint64_t injected_ = 0;
  double credit_ = 0.0;         // fractional injected txs owed
  std::vector<tx::TxIndex> index_map_;     // inner index → emitted index
  std::vector<tx::TxIndex> hot_set_;       // rank → emitted parent index
  std::uint64_t next_rotation_ = 0;
  /// Monotonic counter making every synthetic outpoint globally unique —
  /// even when consecutive hot sets overlap, no (parent, vout) pair is ever
  /// issued twice, so injected spends never look like double spends.
  std::uint32_t synthetic_vouts_ = 0;
};

}  // namespace optchain::workload

#include "workload/edge_list_parser.hpp"

#include <charconv>
#include <stdexcept>

namespace optchain::workload {
namespace {

[[noreturn]] void fail(const std::string& context, const std::string& what) {
  throw std::runtime_error(context + ": " + what);
}

}  // namespace

void parse_edge_list_line(const std::string& line,
                          std::uint32_t expected_index,
                          std::vector<std::uint32_t>& inputs,
                          const std::string& context) {
  inputs.clear();

  const std::size_t colon = line.find(':');
  if (colon == std::string::npos) fail(context, "missing ':'");

  std::uint32_t index = 0;
  const auto [iptr, iec] =
      std::from_chars(line.data(), line.data() + colon, index);
  if (iec != std::errc{} || iptr != line.data() + colon) {
    fail(context, "bad transaction index");
  }
  if (index != expected_index) fail(context, "non-dense transaction index");

  const char* cursor = line.data() + colon + 1;
  const char* end = line.data() + line.size();
  while (cursor < end) {
    while (cursor < end && *cursor == ' ') ++cursor;
    if (cursor == end) break;
    std::uint32_t input = 0;
    const auto [ptr, ec] = std::from_chars(cursor, end, input);
    if (ec != std::errc{}) fail(context, "bad input index");
    if (input >= index) fail(context, "forward/self reference");
    inputs.push_back(input);
    cursor = ptr;
  }
}

}  // namespace optchain::workload

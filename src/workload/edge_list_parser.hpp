// The one parser for TaN edge-list lines ("<tx_index>: <input_tx> ...").
//
// Both consumers of the text TaN format — the whole-file DAG loader
// (dataset_loader.cpp) and the streaming EdgeListFileTxSource
// (tx_source.cpp) — used to carry their own copy of the same
// std::from_chars loop; this header is the shared implementation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace optchain::workload {

/// Parses one TaN edge-list line into `inputs`.
///
/// The line must be "<index>: <input> <input> ..." with `index ==
/// expected_index` (indices are dense) and every input strictly smaller than
/// the index (the spend graph is a DAG by arrival order). Comment lines
/// ('#') and blank lines must be filtered by the caller — they carry no
/// transaction. Throws std::runtime_error (prefixed with `context`, e.g.
/// "path:line") on malformed input.
void parse_edge_list_line(const std::string& line,
                          std::uint32_t expected_index,
                          std::vector<std::uint32_t>& inputs,
                          const std::string& context);

/// True for lines the edge-list format skips: blank lines and '#' comments.
inline bool edge_list_skip_line(const std::string& line) noexcept {
  return line.empty() || line[0] == '#';
}

}  // namespace optchain::workload

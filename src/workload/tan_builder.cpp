#include "workload/tan_builder.hpp"

#include "common/assert.hpp"

namespace optchain::workload {

TanBuilder::TanBuilder(std::size_t expected_txs) {
  if (expected_txs > 0) {
    // Average TaN degree is ~2 (paper Fig. 2); reserve accordingly.
    dag_.reserve(expected_txs, expected_txs * 2);
  }
}

graph::NodeId TanBuilder::add(const tx::Transaction& transaction) {
  OPTCHAIN_EXPECTS(transaction.index == dag_.num_nodes());
  // add_node deduplicates repeated input transactions itself; passing the raw
  // outpoint transaction list is sufficient.
  std::vector<graph::NodeId> input_nodes;
  input_nodes.reserve(transaction.inputs.size());
  for (const auto& in : transaction.inputs) input_nodes.push_back(in.tx);
  return dag_.add_node(input_nodes);
}

graph::TanDag build_tan(std::span<const tx::Transaction> transactions) {
  TanBuilder builder(transactions.size());
  for (const auto& transaction : transactions) builder.add(transaction);
  return std::move(builder).take();
}

}  // namespace optchain::workload

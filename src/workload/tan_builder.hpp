// Builds the TaN DAG (graph::TanDag) from a transaction stream: node u gets
// one edge to each distinct transaction whose outputs u spends (paper Def. 1).
#pragma once

#include <cstddef>
#include <span>
#include <utility>

#include "graph/dag.hpp"
#include "txmodel/transaction.hpp"

namespace optchain::workload {

/// Incrementally builds the TaN DAG from an arriving transaction stream.
class TanBuilder {
 public:
  /// `expected_txs` pre-sizes the dag (0 = grow amortized).
  explicit TanBuilder(std::size_t expected_txs = 0);

  /// Appends the transaction as a TaN node. Transactions must arrive in
  /// dense index order. Returns the TaN node id (== tx.index).
  graph::NodeId add(const tx::Transaction& transaction);

  /// The DAG built so far.
  const graph::TanDag& dag() const noexcept { return dag_; }
  /// Moves the DAG out of the builder.
  graph::TanDag take() && noexcept { return std::move(dag_); }

 private:
  graph::TanDag dag_;
};

/// Convenience: TaN of a whole batch.
graph::TanDag build_tan(std::span<const tx::Transaction> transactions);

}  // namespace optchain::workload

#include "workload/tx_source.hpp"

#include <stdexcept>

#include "workload/edge_list_parser.hpp"

namespace optchain::workload {

EdgeListFileTxSource::EdgeListFileTxSource(const std::string& path)
    : file_(path), path_(path) {
  if (!file_) throw std::runtime_error("cannot open TaN dataset: " + path);
}

bool EdgeListFileTxSource::next(tx::Transaction& out) {
  while (std::getline(file_, line_)) {
    if (edge_list_skip_line(line_)) continue;
    parse_edge_list_line(line_, next_index_, inputs_scratch_,
                         path_ + ": tx " + std::to_string(next_index_));

    out.index = next_index_;
    out.inputs.clear();
    out.outputs.clear();
    for (const std::uint32_t input : inputs_scratch_) {
      // Unique synthesized outpoint: the input transaction's next unspent
      // slot. Keeps the lock/spend ledger free of false double spends.
      out.inputs.push_back({input, spend_counts_[input]++});
    }
    out.outputs.push_back({1, 0});
    spend_counts_.push_back(0);
    ++next_index_;
    return true;
  }
  if (file_.bad()) throw std::runtime_error("read failed: " + path_);
  return false;
}

std::optional<std::uint64_t> EdgeListFileTxSource::size_hint() const {
  if (!counted_size_.has_value()) {
    // Cheap first pass: transactions are exactly the non-comment, non-blank
    // lines. A separate stream leaves the replay cursor untouched, and the
    // count is cached so repeated hints (pipeline reserve, simulator ledger
    // sizing) pay for one scan total.
    std::ifstream counter(path_);
    if (!counter) throw std::runtime_error("cannot open TaN dataset: " + path_);
    std::uint64_t count = 0;
    std::string line;
    while (std::getline(counter, line)) {
      if (!edge_list_skip_line(line)) ++count;
    }
    if (counter.bad()) throw std::runtime_error("read failed: " + path_);
    counted_size_ = count;
  }
  return counted_size_;
}

std::vector<tx::Transaction> materialize(TxSource& source) {
  std::vector<tx::Transaction> transactions;
  if (const auto hint = source.size_hint()) {
    transactions.reserve(*hint);
  }
  tx::Transaction transaction;
  while (source.next(transaction)) {
    transactions.push_back(std::move(transaction));
  }
  return transactions;
}

}  // namespace optchain::workload

#include "workload/tx_source.hpp"

#include <charconv>
#include <stdexcept>

namespace optchain::workload {
namespace {

[[noreturn]] void fail(const std::string& path, tx::TxIndex index,
                       const std::string& what) {
  throw std::runtime_error(path + ": tx " + std::to_string(index) + ": " +
                           what);
}

}  // namespace

EdgeListFileTxSource::EdgeListFileTxSource(const std::string& path)
    : file_(path), path_(path) {
  if (!file_) throw std::runtime_error("cannot open TaN dataset: " + path);
}

bool EdgeListFileTxSource::next(tx::Transaction& out) {
  while (std::getline(file_, line_)) {
    if (line_.empty() || line_[0] == '#') continue;

    const std::size_t colon = line_.find(':');
    if (colon == std::string::npos) fail(path_, next_index_, "missing ':'");

    std::uint32_t index = 0;
    const auto [iptr, iec] =
        std::from_chars(line_.data(), line_.data() + colon, index);
    if (iec != std::errc{} || iptr != line_.data() + colon) {
      fail(path_, next_index_, "bad transaction index");
    }
    if (index != next_index_) {
      fail(path_, next_index_, "non-dense transaction index");
    }

    out.index = index;
    out.inputs.clear();
    out.outputs.clear();
    const char* cursor = line_.data() + colon + 1;
    const char* end = line_.data() + line_.size();
    while (cursor < end) {
      while (cursor < end && *cursor == ' ') ++cursor;
      if (cursor == end) break;
      std::uint32_t input = 0;
      const auto [ptr, ec] = std::from_chars(cursor, end, input);
      if (ec != std::errc{}) fail(path_, next_index_, "bad input index");
      if (input >= index) fail(path_, next_index_, "forward/self reference");
      // Unique synthesized outpoint: the input transaction's next unspent
      // slot. Keeps the lock/spend ledger free of false double spends.
      out.inputs.push_back({input, spend_counts_[input]++});
      cursor = ptr;
    }
    out.outputs.push_back({1, 0});
    spend_counts_.push_back(0);
    ++next_index_;
    return true;
  }
  if (file_.bad()) throw std::runtime_error("read failed: " + path_);
  return false;
}

std::vector<tx::Transaction> materialize(TxSource& source) {
  std::vector<tx::Transaction> transactions;
  if (const auto hint = source.size_hint()) {
    transactions.reserve(*hint);
  }
  tx::Transaction transaction;
  while (source.next(transaction)) {
    transactions.push_back(std::move(transaction));
  }
  return transactions;
}

}  // namespace optchain::workload

// Pull-based transaction sources — the streaming seam between workloads and
// the engines that consume them (api::PlacementPipeline::place_stream,
// sim::Simulation::run).
//
// The paper's headline experiments run the first 10M transactions of the MIT
// Bitcoin dataset (§V.A). Materializing such a stream as one
// std::vector<Transaction> costs gigabytes before a single placement
// happens; a TxSource instead yields transactions one at a time into a
// caller-owned buffer, so a full run holds O(in-flight) transactions — the
// generator (or file reader) is the only thing that knows the whole stream.
//
// Adapters:
//   GeneratorTxSource    — streams a BitcoinLikeGenerator (same seed ⇒ same
//                          stream as materializing via generate())
//   SpanTxSource         — adapts an already-materialized vector/span (the
//                          bridge that keeps every span-based call site
//                          working on top of the streaming engines)
//   EdgeListFileTxSource — replays an on-disk TaN edge list (the
//                          save_tan_edge_list format) as a transaction
//                          stream, for dataset-driven placement runs
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "txmodel/transaction.hpp"
#include "workload/account_workload.hpp"
#include "workload/bitcoin_like_generator.hpp"

namespace optchain::workload {

/// Pull-based transaction stream interface (see the file comment); the seam
/// every engine consumes and every workload decorator wraps.
class TxSource {
 public:
  virtual ~TxSource() = default;

  /// Fills `out` with the next transaction of the stream; returns false at
  /// end of stream (out is unspecified then). Indices are dense 0, 1, 2, ...
  /// The same source yields each transaction exactly once.
  virtual bool next(tx::Transaction& out) = 0;

  /// Total stream length when known up front. Engines use it to pre-size
  /// their per-transaction structures (TaN dag, score pool, outpoint map);
  /// nullopt means "unbounded / unknown" and everything grows amortized.
  virtual std::optional<std::uint64_t> size_hint() const {
    return std::nullopt;
  }

  /// Simulated issue timestamp of transaction `index` under the consumer's
  /// nominal rate. The default is the uniform schedule index / rate — exactly
  /// what the simulator historically computed — and sources carrying their
  /// own rate model (workload::DynamicTxSource) override it with their curve.
  /// Consumers must query indices in non-decreasing order.
  virtual double issue_time(std::uint64_t index, double nominal_rate_tps) {
    return static_cast<double>(index) / nominal_rate_tps;
  }
};

/// Streams `count` transactions from a BitcoinLikeGenerator without ever
/// materializing them.
class GeneratorTxSource final : public TxSource {
 public:
  /// Streams `count` transactions of BitcoinLikeGenerator(config, seed).
  GeneratorTxSource(WorkloadConfig config, std::uint64_t seed,
                    std::uint64_t count)
      : generator_(config, seed), remaining_(count), count_(count) {}

  bool next(tx::Transaction& out) override {
    if (remaining_ == 0) return false;
    --remaining_;
    out = generator_.next();
    return true;
  }

  std::optional<std::uint64_t> size_hint() const override { return count_; }

 private:
  BitcoinLikeGenerator generator_;
  std::uint64_t remaining_;
  std::uint64_t count_;
};

/// Streams `count` transactions from an AccountWorkloadGenerator — the
/// account-model counterpart of GeneratorTxSource, so generator snapshots
/// (trace::import_source) and streamed runs treat both models uniformly.
class AccountGeneratorTxSource final : public TxSource {
 public:
  /// Streams `count` transactions of AccountWorkloadGenerator(config, seed).
  AccountGeneratorTxSource(AccountWorkloadConfig config, std::uint64_t seed,
                           std::uint64_t count)
      : generator_(config, seed), remaining_(count), count_(count) {}

  bool next(tx::Transaction& out) override {
    if (remaining_ == 0) return false;
    --remaining_;
    out = generator_.next();
    return true;
  }

  std::optional<std::uint64_t> size_hint() const override { return count_; }

 private:
  AccountWorkloadGenerator generator_;
  std::uint64_t remaining_;
  std::uint64_t count_;
};

/// Adapts a pre-materialized stream (non-owning; the span must outlive the
/// source).
class SpanTxSource final : public TxSource {
 public:
  /// Wraps `transactions` (non-owning).
  explicit SpanTxSource(std::span<const tx::Transaction> transactions)
      : transactions_(transactions) {}

  bool next(tx::Transaction& out) override {
    if (pos_ >= transactions_.size()) return false;
    out = transactions_[pos_++];
    return true;
  }

  std::optional<std::uint64_t> size_hint() const override {
    return transactions_.size();
  }

 private:
  std::span<const tx::Transaction> transactions_;
  std::size_t pos_ = 0;
};

/// Streams a TaN edge-list file (the workload::save_tan_edge_list format:
/// "<tx_index>: <input_tx> ..." per line, '#' comments) as transactions.
///
/// The TaN format keeps only the spend graph, so the loader synthesizes the
/// UTXO details: each input transaction contributes one OutPoint whose vout
/// is that transaction's running spend count (outpoints stay distinct, so
/// the simulator's lock/spend ledger sees no false conflicts), and every
/// transaction declares a single output. Placement and TaN construction over
/// the synthesized stream reproduce the file's DAG exactly.
///
/// Throws std::runtime_error on I/O failure or malformed input (non-dense
/// indices, forward references).
class EdgeListFileTxSource final : public TxSource {
 public:
  /// Opens `path` (throws std::runtime_error on I/O failure).
  explicit EdgeListFileTxSource(const std::string& path);

  bool next(tx::Transaction& out) override;

  /// Exact stream length via a cheap first pass over the file (transactions
  /// are the non-comment, non-blank lines), computed once and cached — so
  /// dataset-driven runs pre-size the TaN dag / score pool / outpoint ledger
  /// exactly like generator-backed runs do. Throws std::runtime_error if the
  /// file cannot be re-opened for counting.
  std::optional<std::uint64_t> size_hint() const override;

 private:
  std::ifstream file_;
  std::string path_;
  std::string line_;
  tx::TxIndex next_index_ = 0;
  std::vector<std::uint32_t> spend_counts_;  // next vout per past transaction
  std::vector<std::uint32_t> inputs_scratch_;  // parser output, reused
  /// size_hint() memo (the counting pass runs at most once per source).
  mutable std::optional<std::uint64_t> counted_size_;
};

/// Drains `source` into a vector (tests / small offline runs).
std::vector<tx::Transaction> materialize(TxSource& source);

}  // namespace optchain::workload

// Tests for the account-model (Ethereum-style) workload generator.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "api/placement_pipeline.hpp"
#include "core/optchain_placer.hpp"
#include "placement/random_placer.hpp"
#include "sim/simulation.hpp"
#include "txmodel/utxo_set.hpp"
#include "workload/account_workload.hpp"
#include "workload/tan_builder.hpp"

namespace optchain::workload {
namespace {

TEST(AccountWorkloadTest, IndicesDense) {
  AccountWorkloadGenerator gen;
  const auto txs = gen.generate(1000);
  for (std::size_t i = 0; i < txs.size(); ++i) EXPECT_EQ(txs[i].index, i);
}

TEST(AccountWorkloadTest, DeterministicForSameSeed) {
  AccountWorkloadGenerator a({}, 11), b({}, 11);
  const auto ta = a.generate(500);
  const auto tb = b.generate(500);
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].txid(), tb[i].txid());
  }
}

TEST(AccountWorkloadTest, SenderOnlyTransfersHaveOneInput) {
  AccountWorkloadConfig config;
  config.dependency = AccountDependency::kSenderOnly;
  AccountWorkloadGenerator gen(config, 3);
  const auto txs = gen.generate(3000);
  for (const auto& t : txs) {
    EXPECT_LE(t.inputs.size(), 1u);  // funding = 0, transfer = 1
    EXPECT_GE(t.outputs.size(), 1u);
    EXPECT_LE(t.outputs.size(), 2u);
  }
}

TEST(AccountWorkloadTest, SenderAndReceiverAddsSecondDependency) {
  AccountWorkloadConfig config;
  config.dependency = AccountDependency::kSenderAndReceiver;
  AccountWorkloadGenerator gen(config, 3);
  const auto txs = gen.generate(3000);
  bool saw_two = false;
  for (const auto& t : txs) {
    EXPECT_LE(t.inputs.size(), 2u);
    saw_two |= (t.inputs.size() == 2);
  }
  EXPECT_TRUE(saw_two);
}

TEST(AccountWorkloadTest, StateSlotsAreSingleSpend) {
  // Each (tx, vout) state slot may be consumed by at most one successor —
  // the property that lets the UTXO machinery run account streams unchanged.
  AccountWorkloadConfig config;
  config.dependency = AccountDependency::kSenderAndReceiver;
  AccountWorkloadGenerator gen(config, 7);
  const auto txs = gen.generate(5000);
  std::map<tx::OutPoint, tx::TxIndex> spender_of;
  for (const auto& t : txs) {
    for (const auto& in : t.inputs) {
      EXPECT_LT(in.tx, t.index);
      const auto [it, inserted] = spender_of.emplace(in, t.index);
      EXPECT_TRUE(inserted) << "slot (" << in.tx << "," << in.vout
                            << ") spent twice";
    }
  }
}

TEST(AccountWorkloadTest, ValidAgainstUtxoSet) {
  // Value conservation needs both account states as inputs (sender-only
  // transfers materialize the receiver's old balance from state, not from an
  // input — that is the account model's divergence from UTXO semantics).
  AccountWorkloadConfig config;
  config.dependency = AccountDependency::kSenderAndReceiver;
  AccountWorkloadGenerator gen(config, 13);
  tx::UtxoSet utxo;
  for (int i = 0; i < 4000; ++i) {
    const auto t = gen.next();
    ASSERT_EQ(utxo.apply(t), tx::ValidationError::kOk)
        << "tx " << i << ": " << tx::to_string(utxo.validate(t));
  }
}

TEST(AccountWorkloadTest, BalancesNeverNegative) {
  AccountWorkloadGenerator gen({}, 17);
  const auto txs = gen.generate(4000);
  // Outputs carry the post-transaction balance; all must be non-negative.
  for (const auto& t : txs) {
    for (const auto& out : t.outputs) EXPECT_GE(out.value, 0);
  }
}

TEST(AccountWorkloadTest, TanIsChainsPerAccount) {
  // Sender-only dependencies: spender-degree is at most 1 until funding
  // re-touches an account; TaN is a union of near-chains.
  AccountWorkloadConfig config;
  config.dependency = AccountDependency::kSenderOnly;
  AccountWorkloadGenerator gen(config, 19);
  const auto txs = gen.generate(5000);
  const graph::TanDag dag = build_tan(txs);
  for (graph::NodeId u = 0; u < dag.num_nodes(); ++u) {
    EXPECT_LE(dag.spender_count(u), 2u);
  }
}

TEST(AccountWorkloadTest, OptChainStillBeatsRandomPlacement) {
  AccountWorkloadGenerator gen({}, 23);
  const auto txs = gen.generate(20000);

  // Uncapped T2S (no timing data, no capacity cap) via the pipeline's
  // factory constructor; the baseline comes from the registry.
  api::PlacementPipeline optchain(8, [](const graph::TanDag& dag) {
    core::OptChainConfig config;
    config.l2s_weight = 0.0;
    return std::make_unique<core::OptChainPlacer>(dag, config);
  });
  api::PlacementPipeline random = api::make_pipeline("OmniLedger", 8, txs);
  const double opt_cross = optchain.place_stream(txs).fraction();
  const double rnd_cross = random.place_stream(txs).fraction();
  EXPECT_LT(opt_cross, rnd_cross / 4.0);
}

TEST(AccountWorkloadTest, RunsThroughSimulator) {
  AccountWorkloadGenerator gen({}, 29);
  const auto txs = gen.generate(5000);
  sim::SimConfig config;
  config.num_shards = 4;
  config.tx_rate_tps = 1000.0;
  sim::Simulation simulation(config);
  api::PlacementPipeline pipeline(
      4, std::make_unique<placement::RandomPlacer>());
  const auto result = simulation.run(txs, pipeline);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.committed_txs, txs.size());
  EXPECT_EQ(result.aborted_txs, 0u);
}

}  // namespace
}  // namespace optchain::workload

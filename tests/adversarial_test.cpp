// Adversarial/degenerate structures: hand-built TaN shapes (chains, stars,
// diamonds, wide fan-ins) and explicit cross-shard protocol corner cases
// that the statistical workloads may not pin down.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "api/placement_pipeline.hpp"
#include "core/optchain_placer.hpp"
#include "placement/greedy_placer.hpp"
#include "placement/static_placer.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"

namespace optchain {
namespace {

using core::OptChainConfig;
using core::OptChainPlacer;
using placement::ShardId;

/// A transaction with the given TaN input list (one outpoint per input tx).
tx::Transaction tan_tx(tx::TxIndex index,
                       const std::vector<tx::TxIndex>& inputs) {
  tx::Transaction transaction;
  transaction.index = index;
  for (const tx::TxIndex in : inputs) {
    transaction.inputs.push_back({in, 0});
  }
  transaction.outputs = {{1, 0}};
  return transaction;
}

/// Drives a hand-built input-list sequence through a pipeline.
std::vector<ShardId> place_sequence(
    const std::vector<std::vector<tx::TxIndex>>& input_lists,
    api::PlacementPipeline& pipeline) {
  std::vector<ShardId> shards;
  for (std::size_t i = 0; i < input_lists.size(); ++i) {
    const auto t = tan_tx(static_cast<tx::TxIndex>(i), input_lists[i]);
    shards.push_back(pipeline.step(t).shard);
  }
  return shards;
}

/// Pipeline over an OptChain placer with the given config.
api::PlacementPipeline optchain_pipeline(std::uint32_t k,
                                         OptChainConfig config,
                                         std::string_view label = "OptChain") {
  return api::PlacementPipeline(
      k, [config, label](const graph::TanDag& dag) {
        return std::make_unique<OptChainPlacer>(dag, config, label);
      });
}

TEST(AdversarialTanTest, UncappedChainStaysInOneShard) {
  // coinbase <- tx1 <- tx2 <- ... : without a capacity cap, T2S keeps the
  // whole chain where the coinbase landed.
  std::vector<std::vector<tx::TxIndex>> chain{{}};
  for (tx::TxIndex i = 1; i < 200; ++i) chain.push_back({i - 1});

  OptChainConfig config;
  config.l2s_weight = 0.0;
  auto pipeline = optchain_pipeline(8, config);
  const auto shards = place_sequence(chain, pipeline);
  for (std::size_t i = 1; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i], shards[0]) << "chain broke at " << i;
  }
}

TEST(AdversarialTanTest, CappedChainBreaksExactlyAtCapacity) {
  // With the T2S-based ε-cap, a 100-tx chain over k=4 with cap
  // (1+0)·(100/4)=25 must switch shards exactly every 25 transactions.
  std::vector<std::vector<tx::TxIndex>> chain{{}};
  for (tx::TxIndex i = 1; i < 100; ++i) chain.push_back({i - 1});

  OptChainConfig config;
  config.l2s_weight = 0.0;
  config.expected_txs = 100;
  config.epsilon = 0.0;
  auto pipeline = optchain_pipeline(4, config, "T2S");
  const auto shards = place_sequence(chain, pipeline);

  int switches = 0;
  for (std::size_t i = 1; i < shards.size(); ++i) {
    if (shards[i] != shards[i - 1]) {
      ++switches;
      EXPECT_EQ(i % 25, 0u) << "switch off the capacity boundary at " << i;
    }
  }
  EXPECT_EQ(switches, 3);
}

TEST(AdversarialTanTest, StarSpendersFollowTheHub) {
  // One coinbase hub, many transactions each spending only the hub: all
  // mass points at the hub's shard regardless of the growing divisor.
  std::vector<std::vector<tx::TxIndex>> star{{}};
  for (int i = 0; i < 50; ++i) star.push_back({0});

  OptChainConfig config;
  config.l2s_weight = 0.0;
  auto pipeline = optchain_pipeline(8, config);
  const auto shards = place_sequence(star, pipeline);
  for (std::size_t i = 1; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i], shards[0]);
  }
}

TEST(AdversarialTanTest, DiamondMergesToCommonShard) {
  // 0 (coinbase) <- 1, 0 <- 2, {1,2} <- 3: both branches inherited node 0's
  // shard, so the merge must land there too.
  const std::vector<std::vector<tx::TxIndex>> diamond{{}, {0}, {0}, {1, 2}};
  OptChainConfig config;
  config.l2s_weight = 0.0;
  auto pipeline = optchain_pipeline(4, config);
  const auto shards = place_sequence(diamond, pipeline);
  EXPECT_EQ(shards[1], shards[0]);
  EXPECT_EQ(shards[2], shards[0]);
  EXPECT_EQ(shards[3], shards[0]);
}

TEST(AdversarialTanTest, FanInGoesToMajorityShard) {
  // Greedy with 3 inputs in shard A and 1 in shard B picks A.
  api::PlacementPipeline pipeline(
      4, std::make_unique<placement::GreedyPlacer>(0));
  // Pin 4 coinbases: 0,1,2 -> shard 2; 3 -> shard 0.
  for (tx::TxIndex i = 0; i < 4; ++i) {
    pipeline.step_forced(tan_tx(i, {}), i < 3 ? 2u : 0u);
  }
  EXPECT_EQ(pipeline.preview(tan_tx(4, {0, 1, 2, 3})), 2u);
}

TEST(AdversarialTanTest, T2sWeighsDeepAncestryOverSingleParent) {
  // Shard 0 holds a rich chain (0<-1<-2<-3); shard 1 holds one fresh
  // coinbase (4). A transaction spending both 3 and 4 carries far more
  // inherited mass from the chain and must land in shard 0.
  OptChainConfig config;
  config.l2s_weight = 0.0;
  auto pipeline = optchain_pipeline(2, config);
  const auto& placer =
      dynamic_cast<const OptChainPlacer&>(pipeline.placer());

  const std::vector<std::vector<tx::TxIndex>> prefix{{}, {0}, {1}, {2}, {}};
  const std::vector<ShardId> pinned{0, 0, 0, 0, 1};
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    // step_forced still runs choose() first, building the score vector.
    pipeline.step_forced(tan_tx(static_cast<tx::TxIndex>(i), prefix[i]),
                         pinned[i]);
  }
  // Shard sizes: |S0| = 4, |S1| = 1. Raw mass at shard 0 through tx3 is
  // 0.5·(0.5 + 0.5·(0.5 + ...)) ≈ 0.46 vs 0.25 at shard 1 through tx4;
  // normalized: 0.46/4 ≈ 0.116 vs 0.25/1 = 0.25 — size normalization makes
  // the small shard win. This is the paper's balancing bias by design.
  const ShardId choice = pipeline.preview(tan_tx(5, {3, 4}));
  EXPECT_EQ(choice, 1u);
  // Without the size normalization the chain would win: verify the raw
  // masses behind the decision.
  const auto raw = placer.scorer().raw_vector(5);
  double mass0 = 0.0, mass1 = 0.0;
  for (const auto& entry : raw) {
    (entry.shard == 0 ? mass0 : mass1) += entry.value;
  }
  EXPECT_GT(mass0, mass1);
}

// ------------------------------------------------------- protocol corners

TEST(ProtocolCornerTest, ManyInputShardsGatherAllProofs) {
  // A transaction whose inputs live in 4 distinct shards must wait for all
  // four locks; its latency therefore exceeds a same-shard transaction's.
  // Build: 4 coinbases pinned to shards 0..3, one spender of all of them
  // pinned to shard 0, and one same-shard child of coinbase 0.
  std::vector<tx::Transaction> txs(6);
  for (std::uint32_t i = 0; i < 4; ++i) {
    txs[i].index = i;
    txs[i].outputs = {{100, i}};
  }
  txs[4].index = 4;  // cross spender of all four coinbases
  txs[4].inputs = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  txs[4].outputs = {{400, 9}};
  txs[5].index = 5;  // same-shard spender of tx4's output
  txs[5].inputs = {{4, 0}};
  txs[5].outputs = {{400, 9}};

  api::PlacementPipeline pipeline(
      4, std::make_unique<placement::StaticPlacer>(
             std::vector<std::uint32_t>{0, 1, 2, 3, 0, 0}, "pinned"));
  sim::SimConfig config;
  config.num_shards = 4;
  config.tx_rate_tps = 10.0;
  sim::Simulation simulation(config);
  const auto result = simulation.run(txs, pipeline);

  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.committed_txs, 6u);
  EXPECT_EQ(result.cross_txs, 1u);  // only tx4
  // The cross transaction pays two phases; the worst latency must belong to
  // it and be well above the same-shard floor.
  EXPECT_GT(result.max_latency_s, 1.5 * result.latencies.quantile(0.5));
}

TEST(ProtocolCornerTest, InputShardEqualToOutputShardStillLocks) {
  // tx2 spends tx0 (shard 0) and tx1 (shard 1) and is itself placed in
  // shard 0: shard 0 both locks and commits. The protocol must still
  // deliver exactly one commit.
  std::vector<tx::Transaction> txs(3);
  txs[0].index = 0;
  txs[0].outputs = {{50, 0}};
  txs[1].index = 1;
  txs[1].outputs = {{50, 1}};
  txs[2].index = 2;
  txs[2].inputs = {{0, 0}, {1, 0}};
  txs[2].outputs = {{100, 2}};

  api::PlacementPipeline pipeline(
      2, std::make_unique<placement::StaticPlacer>(
             std::vector<std::uint32_t>{0, 1, 0}, "pinned"));
  sim::SimConfig config;
  config.num_shards = 2;
  config.tx_rate_tps = 10.0;
  sim::Simulation simulation(config);
  const auto result = simulation.run(txs, pipeline);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.committed_txs, 3u);
  EXPECT_EQ(result.cross_txs, 1u);
}

TEST(ProtocolCornerTest, DirectDoubleSpendExactlyOneWinner) {
  // Two transactions spending the same outpoint, both same-shard: the first
  // into a block wins, the other must abort.
  std::vector<tx::Transaction> txs(3);
  txs[0].index = 0;
  txs[0].outputs = {{50, 0}};
  txs[1].index = 1;
  txs[1].inputs = {{0, 0}};
  txs[1].outputs = {{50, 1}};
  txs[2].index = 2;
  txs[2].inputs = {{0, 0}};  // conflict
  txs[2].outputs = {{50, 2}};

  api::PlacementPipeline pipeline(
      2, std::make_unique<placement::StaticPlacer>(
             std::vector<std::uint32_t>{0, 0, 0}, "pinned"));
  sim::SimConfig config;
  config.num_shards = 2;
  config.tx_rate_tps = 100.0;
  sim::Simulation simulation(config);
  const auto result = simulation.run(txs, pipeline);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.committed_txs, 2u);
  EXPECT_EQ(result.aborted_txs, 1u);
}

TEST(EventQueueStressTest, LargeRandomScheduleRunsInOrder) {
  struct TimeLog final : sim::EventHandler {
    explicit TimeLog(sim::EventQueue& queue) : queue(&queue) {}
    void on_event(const sim::Event&) override {
      fired.push_back(queue->now());
    }
    sim::EventQueue* queue;
    std::vector<double> fired;
  };
  sim::EventQueue queue;
  TimeLog log(queue);
  log.fired.reserve(50000);
  Rng rng(99);
  for (int i = 0; i < 50000; ++i) {
    const double t = rng.uniform(0.0, 1000.0);
    queue.schedule(t, sim::Event::tx_issue(static_cast<std::uint32_t>(i)));
  }
  while (queue.run_one(log)) {
  }
  ASSERT_EQ(log.fired.size(), 50000u);
  EXPECT_TRUE(std::is_sorted(log.fired.begin(), log.fired.end()));
}

}  // namespace
}  // namespace optchain

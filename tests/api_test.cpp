// Tests for the optchain::api layer: PlacerRegistry round-trips, the
// PlacementPipeline's equivalence with the hand-rolled driving loop it
// replaced, warm-start/preview semantics, and the RunReport CSV output.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/placement_pipeline.hpp"
#include "api/placer_registry.hpp"
#include "api/run_spec.hpp"
#include "core/optchain_placer.hpp"
#include "placement/random_placer.hpp"
#include "stats/metrics.hpp"
#include "workload/bitcoin_like_generator.hpp"

namespace optchain::api {
namespace {

std::vector<tx::Transaction> stream(std::size_t n, std::uint64_t seed = 7) {
  workload::BitcoinLikeGenerator generator({}, seed);
  return generator.generate(n);
}

// ------------------------------------------------------------- registry

TEST(PlacerRegistryTest, EveryBuiltinNameConstructs) {
  const auto txs = stream(500);
  PlacerRegistry& registry = PlacerRegistry::instance();
  const std::vector<std::string> names = registry.names();
  ASSERT_GE(names.size(), 7u);
  for (const std::string& name : names) {
    graph::TanDag dag;
    const PlacerContext context{dag, 4, 1, txs, {}};
    const auto placer = registry.make(name, context);
    ASSERT_NE(placer, nullptr) << name;
  }
}

TEST(PlacerRegistryTest, ExpectedLineUpIsRegistered) {
  PlacerRegistry& registry = PlacerRegistry::instance();
  for (const char* name :
       {"OptChain", "T2S", "Greedy", "OmniLedger", "LeastLoaded", "Static",
        "Metis", "Random"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
}

TEST(PlacerRegistryTest, LookupIsCaseInsensitive) {
  const auto txs = stream(100);
  graph::TanDag dag;
  const PlacerContext context{dag, 4, 1, txs, {}};
  const auto placer = PlacerRegistry::instance().make("optchain", context);
  EXPECT_EQ(placer->name(), "OptChain");
  // The CLI's historical lowercase "random" alias keeps working.
  EXPECT_EQ(PlacerRegistry::instance().make("random", context)->name(),
            "OmniLedger");
}

TEST(PlacerRegistryTest, UnknownNameThrowsListingKnownNames) {
  graph::TanDag dag;
  const PlacerContext context{dag, 4, 1, {}, {}};
  try {
    PlacerRegistry::instance().make("NoSuchMethod", context);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("NoSuchMethod"), std::string::npos);
    EXPECT_NE(message.find("OptChain"), std::string::npos);
    EXPECT_NE(message.find("Metis"), std::string::npos);
  }
}

TEST(PlacerRegistryTest, RegistrationHookPlugsInWithoutDriverChanges) {
  // A strategy registered at runtime is immediately constructible by name —
  // the seam future protocols plug into.
  PlacerRegistry registry;  // fresh, no built-ins
  register_builtin_placers(registry);
  registry.register_placer("PinToZero", [](const PlacerContext&) {
    class PinToZero final : public placement::Placer {
      placement::ShardId choose(const placement::PlacementRequest&,
                                const placement::ShardAssignment&) override {
        return 0;
      }
      std::string_view name() const noexcept override { return "PinToZero"; }
    };
    return std::make_unique<PinToZero>();
  });
  graph::TanDag dag;
  const PlacerContext context{dag, 4, 1, {}, {}};
  EXPECT_EQ(registry.make("pintozero", context)->name(), "PinToZero");
  EXPECT_EQ(registry.names().back(), "PinToZero");
}

TEST(PlacerRegistryTest, StreamDependentMethodsFailCleanlyWithoutStream) {
  // Metis cannot partition and Static has nothing to replay: both must
  // throw a catchable error instead of aborting mid-stream.
  graph::TanDag dag;
  const PlacerContext context{dag, 4, 1, {}, {}};
  EXPECT_THROW(PlacerRegistry::instance().make("Metis", context),
               std::invalid_argument);
  EXPECT_THROW(PlacerRegistry::instance().make("Static", context),
               std::invalid_argument);
}

TEST(PlacerRegistryTest, StaticReplaysProvidedPartition) {
  const auto txs = stream(50);
  const std::vector<std::uint32_t> parts(txs.size(), 3);
  PlacementPipeline pipeline =
      make_pipeline("Static", 4, txs, 1, parts);
  pipeline.place_stream(txs);
  for (std::uint64_t i = 0; i < pipeline.total(); ++i) {
    ASSERT_EQ(pipeline.assignment().shard_of(static_cast<tx::TxIndex>(i)),
              3u);
  }
}

// ------------------------------------------------------------- pipeline

/// The exact hand-rolled loop the pipeline replaced (pre-refactor
/// bench_common::run_placement): any divergence is an API regression.
struct HandRolled {
  graph::TanDag dag;
  placement::ShardAssignment assignment;
  stats::CrossTxCounter counter;

  explicit HandRolled(std::uint32_t k) : assignment(k) {}

  void run(std::span<const tx::Transaction> txs, placement::Placer& placer) {
    for (const auto& transaction : txs) {
      const auto inputs = transaction.distinct_input_txs();
      dag.add_node(inputs);
      placement::PlacementRequest request;
      request.index = transaction.index;
      request.input_txs = inputs;
      request.hash64 = transaction.txid().low64();
      const placement::ShardId shard = placer.choose(request, assignment);
      assignment.record(transaction.index, shard);
      placer.notify_placed(request, shard);
      if (!transaction.is_coinbase()) {
        counter.record(assignment.is_cross_shard(inputs, shard));
      }
    }
  }
};

TEST(PlacementPipelineTest, MatchesHandRolledLoopForOptChain) {
  const auto txs = stream(8000, 11);
  const std::uint32_t k = 8;

  HandRolled reference(k);
  graph::TanDag& ref_dag = reference.dag;
  core::OptChainPlacer ref_placer(ref_dag);
  reference.run(txs, ref_placer);

  PlacementPipeline pipeline = make_pipeline("OptChain", k, txs);
  const StreamOutcome outcome = pipeline.place_stream(txs);

  ASSERT_EQ(pipeline.total(), txs.size());
  for (const auto& transaction : txs) {
    ASSERT_EQ(pipeline.assignment().shard_of(transaction.index),
              reference.assignment.shard_of(transaction.index))
        << "diverged at tx " << transaction.index;
  }
  EXPECT_EQ(outcome.total, reference.counter.total());
  EXPECT_EQ(outcome.cross, reference.counter.cross());
  EXPECT_DOUBLE_EQ(outcome.fraction(), reference.counter.fraction());
}

TEST(PlacementPipelineTest, MatchesHandRolledLoopForHashPlacement) {
  const auto txs = stream(4000, 3);
  const std::uint32_t k = 16;

  HandRolled reference(k);
  placement::RandomPlacer ref_placer;
  reference.run(txs, ref_placer);

  PlacementPipeline pipeline(k, std::make_unique<placement::RandomPlacer>());
  const StreamOutcome outcome = pipeline.place_stream(txs);

  for (const auto& transaction : txs) {
    ASSERT_EQ(pipeline.assignment().shard_of(transaction.index),
              reference.assignment.shard_of(transaction.index));
  }
  EXPECT_DOUBLE_EQ(outcome.fraction(), reference.counter.fraction());
}

TEST(PlacementPipelineTest, WarmStartForcesAndExcludesFromCount) {
  const auto txs = stream(2000, 5);
  const std::uint32_t k = 4;
  std::vector<std::uint32_t> warm(500);
  for (std::size_t i = 0; i < warm.size(); ++i) {
    warm[i] = static_cast<std::uint32_t>(i % k);
  }

  PlacementPipeline pipeline = make_pipeline("T2S", k, txs);
  const StreamOutcome outcome = pipeline.place_stream(txs, warm);

  // Forced prefix is replayed verbatim...
  for (std::size_t i = 0; i < warm.size(); ++i) {
    ASSERT_EQ(pipeline.assignment().shard_of(static_cast<tx::TxIndex>(i)),
              warm[i]);
  }
  // ...and only the tail is counted.
  std::uint64_t tail_non_coinbase = 0;
  for (const auto& transaction : txs) {
    if (transaction.index >= warm.size() && !transaction.is_coinbase()) {
      ++tail_non_coinbase;
    }
  }
  EXPECT_EQ(outcome.total, tail_non_coinbase);
}

TEST(PlacementPipelineTest, PreviewDoesNotRecordAndStepCommits) {
  const auto txs = stream(300, 9);
  PlacementPipeline pipeline = make_pipeline("OptChain", 4, txs);
  for (const auto& transaction : txs) {
    const placement::ShardId previewed = pipeline.preview(transaction);
    EXPECT_EQ(pipeline.total(), transaction.index);  // nothing recorded
    const StepResult placed = pipeline.step(transaction);
    // Same request, same state: the committed decision matches the preview,
    // and the TaN node was not registered twice.
    EXPECT_EQ(placed.shard, previewed);
    EXPECT_EQ(pipeline.dag().num_nodes(), transaction.index + 1u);
  }
}

TEST(PlacementPipelineTest, StepReportsProtocolFacts) {
  // Two pinned coinbases then a spender of both: the step must report the
  // cross flag and the exact input-shard set the protocol has to lock.
  std::vector<tx::Transaction> txs(3);
  txs[0].index = 0;
  txs[0].outputs = {{50, 0}};
  txs[1].index = 1;
  txs[1].outputs = {{50, 1}};
  txs[2].index = 2;
  txs[2].inputs = {{0, 0}, {1, 0}};
  txs[2].outputs = {{100, 2}};

  const std::vector<std::uint32_t> parts{0, 1, 0};
  PlacementPipeline pipeline = make_pipeline("Static", 2, txs, 1, parts);
  const StepResult a = pipeline.step(txs[0]);
  EXPECT_TRUE(a.coinbase);
  EXPECT_FALSE(a.cross);
  EXPECT_FALSE(a.counted);
  EXPECT_TRUE(a.input_shards.empty());

  pipeline.step(txs[1]);
  const StepResult c = pipeline.step(txs[2]);
  EXPECT_FALSE(c.coinbase);
  EXPECT_TRUE(c.cross);
  EXPECT_TRUE(c.counted);
  EXPECT_EQ(c.input_shards, (std::vector<placement::ShardId>{0, 1}));
  EXPECT_EQ(pipeline.cross_counter().total(), 1u);
  EXPECT_EQ(pipeline.cross_counter().cross(), 1u);
}

// -------------------------------------------------------- RunSpec/Report

TEST(RunReportTest, CsvGoldenOutput) {
  RunReport report;
  report.method = "OptChain";
  report.num_shards = 2;
  report.total = 10;
  report.cross = 3;
  report.shard_sizes = {7, 5};

  const std::string expected =
      "metric,value\n"
      "method,OptChain\n"
      "shards,2\n"
      "transactions counted,10\n"
      "cross-shard,3\n"
      "cross-shard fraction,30.00 %\n"
      "shard 0 txs,7\n"
      "shard 1 txs,5\n";
  EXPECT_EQ(report.to_csv(), expected);
}

TEST(RunReportTest, PlaceReportsSameFractionAsPipeline) {
  const auto txs = stream(3000, 21);
  RunSpec spec;
  spec.method = "T2S";
  spec.num_shards = 8;
  const RunReport report = place(spec, txs);

  PlacementPipeline pipeline = make_pipeline("T2S", 8, txs);
  const StreamOutcome outcome = pipeline.place_stream(txs);
  EXPECT_EQ(report.total, outcome.total);
  EXPECT_EQ(report.cross, outcome.cross);
  EXPECT_EQ(report.shard_sizes, outcome.shard_sizes);
  EXPECT_EQ(report.method, "T2S");
}

TEST(RunReportTest, SimulateFillsSimResult) {
  const auto txs = stream(2000, 31);
  RunSpec spec;
  spec.method = "OmniLedger";
  spec.num_shards = 4;
  spec.rate_tps = 500.0;
  const RunReport report = simulate(spec, txs);
  ASSERT_TRUE(report.sim.has_value());
  EXPECT_TRUE(report.sim->completed);
  EXPECT_EQ(report.sim->committed_txs + report.sim->aborted_txs, txs.size());
  EXPECT_EQ(report.method, "OmniLedger");
  // The placement-side accounting flows through to the report.
  EXPECT_GT(report.total, 0u);
  const TextTable table = report.to_table();
  EXPECT_GT(table.rows(), 10u);
}

}  // namespace
}  // namespace optchain::api

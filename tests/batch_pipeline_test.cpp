// Batch-vs-sequential bit-identity for the micro-batched placement
// front-end (api/batch_pipeline.hpp).
//
// The front-end's whole contract is one sentence: place_stream() through
// BatchPlacementPipeline produces *bit-identical* results to
// PlacementPipeline::place_stream on the same stream, for every registered
// placer, at any jobs >= 1 and any batch size. These tests enforce the
// contract at its sharpest points:
//
//   - the full registry grid (every PlacerRegistry strategy x shard counts
//     x batch sizes including 1 x jobs including more than the machine has
//     cores), comparing not just the outcome totals but every individual
//     per-transaction decision and — for the OptChain family — every stored
//     p' score entry, bit for bit;
//   - conflict-heavy chains where every transaction spends the previous
//     one's output, so NO transaction is ever independent and the entire
//     stream takes the commit-time gather path;
//   - Table II warm starts (forced placements excluded from the cross count);
//   - the latency/telemetry accessors the serve tool builds on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "api/batch_pipeline.hpp"
#include "api/placement_pipeline.hpp"
#include "api/placer_registry.hpp"
#include "core/optchain_placer.hpp"
#include "core/score_pool.hpp"
#include "core/t2s_scorer.hpp"
#include "txmodel/transaction.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/tx_source.hpp"

namespace optchain {
namespace {

constexpr std::uint64_t kSeed = 20260808;
constexpr std::size_t kStreamTxs = 1200;

const std::vector<tx::Transaction>& test_stream() {
  static const std::vector<tx::Transaction> stream = [] {
    workload::BitcoinLikeGenerator gen({}, kSeed);
    return gen.generate(kStreamTxs);
  }();
  return stream;
}

/// A stream where tx i spends tx i-1's first output: every transaction has
/// an in-batch parent for any batch size > 1, so the parallel score phase
/// never fires and the whole stream exercises the commit-time gather.
std::vector<tx::Transaction> chain_stream(std::size_t n) {
  std::vector<tx::Transaction> txs(n);
  for (std::size_t i = 0; i < n; ++i) {
    txs[i].index = static_cast<tx::TxIndex>(i);
    if (i > 0) {
      txs[i].inputs.push_back({static_cast<tx::TxIndex>(i - 1), 0});
    }
    txs[i].outputs.push_back({50, static_cast<std::uint64_t>(i)});
  }
  return txs;
}

struct RunState {
  api::PlacementPipeline pipeline;
  api::StreamOutcome outcome;
};

RunState run_sequential(const std::string& method, std::uint32_t k,
                        const std::vector<tx::Transaction>& txs,
                        std::span<const std::uint32_t> warm_parts = {}) {
  api::PlacementPipeline pipeline = api::make_pipeline(method, k, txs);
  const api::StreamOutcome outcome = pipeline.place_stream(txs, warm_parts);
  return {std::move(pipeline), outcome};
}

struct BatchRunState {
  api::PlacementPipeline pipeline;
  api::StreamOutcome outcome;
  api::BatchLatencyStats stats;
  bool kernel_active = false;
  std::uint64_t parallel_txs = 0;
  std::uint64_t chained_txs = 0;
};

BatchRunState run_batched(const std::string& method, std::uint32_t k,
                          const std::vector<tx::Transaction>& txs,
                          api::BatchConfig config,
                          std::span<const std::uint32_t> warm_parts = {}) {
  api::PlacementPipeline pipeline = api::make_pipeline(method, k, txs);
  BatchRunState state{std::move(pipeline), {}, {}, false, 0, 0};
  {
    // The front-end borrows the pipeline; destroying it only joins the
    // worker pool, so moving the pipeline out afterwards is safe.
    api::BatchPlacementPipeline batched(state.pipeline, config);
    workload::SpanTxSource source(txs);
    state.outcome = batched.place_stream(source, warm_parts);
    state.stats = batched.latency_stats();
    state.kernel_active = batched.kernel_active();
    state.parallel_txs = batched.parallel_txs();
    state.chained_txs = batched.chained_txs();
  }
  return state;
}

/// Bitwise comparison: outcome aggregates, every per-transaction decision,
/// and (for OptChain-family placers) every stored p' score entry.
void expect_identical(const RunState& seq, const api::PlacementPipeline& bat,
                      const api::StreamOutcome& bat_outcome,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(seq.outcome.total, bat_outcome.total);
  EXPECT_EQ(seq.outcome.cross, bat_outcome.cross);
  ASSERT_EQ(seq.outcome.shard_sizes.size(), bat_outcome.shard_sizes.size());
  for (std::size_t s = 0; s < seq.outcome.shard_sizes.size(); ++s) {
    EXPECT_EQ(seq.outcome.shard_sizes[s], bat_outcome.shard_sizes[s])
        << "shard " << s;
  }
  ASSERT_EQ(seq.pipeline.total(), bat.total());
  for (std::uint64_t u = 0; u < seq.pipeline.total(); ++u) {
    ASSERT_EQ(seq.pipeline.assignment().shard_of(
                  static_cast<tx::TxIndex>(u)),
              bat.assignment().shard_of(static_cast<tx::TxIndex>(u)))
        << "tx " << u << " diverged";
  }
  // OptChain family: the stored sparse p' vectors must match bit for bit —
  // any reassociated gather or drifted divisor shows up here even when the
  // argmax happened to agree.
  const auto* seq_placer =
      dynamic_cast<const core::OptChainPlacer*>(&seq.pipeline.placer());
  const auto* bat_placer =
      dynamic_cast<const core::OptChainPlacer*>(&bat.placer());
  ASSERT_EQ(seq_placer == nullptr, bat_placer == nullptr);
  if (seq_placer == nullptr) return;
  const core::ScorePool& seq_pool = seq_placer->scorer().pool();
  const core::ScorePool& bat_pool = bat_placer->scorer().pool();
  ASSERT_EQ(seq_pool.num_nodes(), bat_pool.num_nodes());
  ASSERT_EQ(seq_pool.total_entries(), bat_pool.total_entries());
  for (std::size_t node = 0; node < seq_pool.num_nodes(); ++node) {
    const auto a = seq_pool.vector_of(static_cast<std::uint32_t>(node));
    const auto b = bat_pool.vector_of(static_cast<std::uint32_t>(node));
    ASSERT_EQ(a.size(), b.size()) << "node " << node;
    for (std::size_t e = 0; e < a.size(); ++e) {
      ASSERT_EQ(a[e].shard, b[e].shard) << "node " << node << " entry " << e;
      // Exact bit equality, not EXPECT_DOUBLE_EQ: the contract is
      // bit-identity, not closeness.
      ASSERT_EQ(a[e].value, b[e].value) << "node " << node << " entry " << e;
    }
  }
}

TEST(BatchPipelineTest, EveryRegisteredPlacerIsBitIdenticalAcrossTheGrid) {
  const std::vector<std::string> methods = api::PlacerRegistry::instance().names();
  ASSERT_FALSE(methods.empty());
  const std::uint32_t shard_counts[] = {3, 16};
  const std::uint32_t batch_sizes[] = {1, 7, 256};
  // jobs = 5 oversubscribes every CI machine we run on — the pool must not
  // care.
  const std::uint32_t job_counts[] = {1, 2, 5};

  const auto& txs = test_stream();
  // One sequential baseline per (method, k); every (batch, jobs) cell
  // compares against it.
  std::map<std::pair<std::string, std::uint32_t>, RunState> baselines;
  for (const std::string& method : methods) {
    for (const std::uint32_t k : shard_counts) {
      baselines.emplace(std::make_pair(method, k),
                        run_sequential(method, k, txs));
    }
  }
  for (const std::string& method : methods) {
    for (const std::uint32_t k : shard_counts) {
      const RunState& seq = baselines.at({method, k});
      for (const std::uint32_t batch : batch_sizes) {
        for (const std::uint32_t jobs : job_counts) {
          const BatchRunState bat =
              run_batched(method, k, txs, {jobs, batch});
          expect_identical(seq, bat.pipeline, bat.outcome,
                           method + " k=" + std::to_string(k) +
                               " batch=" + std::to_string(batch) +
                               " jobs=" + std::to_string(jobs));
        }
      }
    }
  }
}

TEST(BatchPipelineTest, ConflictHeavyChainTakesTheChainedPathBitIdentically) {
  // Every tx parents the previous one: zero independent transactions, the
  // entire stream gathers at commit time.
  const std::vector<tx::Transaction> txs = chain_stream(600);
  const RunState seq = run_sequential("OptChain", 4, txs);
  for (const std::uint32_t batch : {4u, 64u}) {
    const BatchRunState bat = run_batched("OptChain", 4, txs, {3, batch});
    expect_identical(seq, bat.pipeline, bat.outcome,
                     "chain batch=" + std::to_string(batch));
    EXPECT_TRUE(bat.kernel_active);
    if (batch > 1) {
      // Only each batch's first tx can be independent (its parent precedes
      // the batch); everything else is chained.
      EXPECT_GT(bat.chained_txs, bat.parallel_txs);
      EXPECT_GT(bat.chained_txs, 0u);
    }
  }
}

TEST(BatchPipelineTest, WarmStartForcedPrefixMatchesSequential) {
  const auto& txs = test_stream();
  // Table II-style warm prefix: the first quarter of the stream is
  // force-placed round-robin and excluded from the cross count.
  std::vector<std::uint32_t> warm_parts(txs.size() / 4);
  for (std::size_t i = 0; i < warm_parts.size(); ++i) {
    warm_parts[i] = static_cast<std::uint32_t>(i % 8);
  }
  const RunState seq = run_sequential("OptChain", 8, txs, warm_parts);
  const BatchRunState bat =
      run_batched("OptChain", 8, txs, {4, 50}, warm_parts);
  expect_identical(seq, bat.pipeline, bat.outcome, "warm start");
  // Warm placements are excluded from the counted totals (as are
  // coinbases, like the sequential path).
  std::uint64_t expected_counted = 0;
  for (std::size_t i = warm_parts.size(); i < txs.size(); ++i) {
    if (!txs[i].is_coinbase()) ++expected_counted;
  }
  EXPECT_EQ(seq.outcome.total, expected_counted);
}

TEST(BatchPipelineTest, KernelActivationMatchesTheBatchScorableInterface) {
  const auto& txs = test_stream();
  EXPECT_TRUE(run_batched("OptChain", 8, txs, {2, 64}).kernel_active);
  EXPECT_TRUE(run_batched("T2S", 8, txs, {2, 64}).kernel_active);
  // Greedy has no score vectors to gather — it runs the exact sequential
  // loop per batch (identical by construction) and spawns no threads.
  EXPECT_FALSE(run_batched("Greedy", 8, txs, {2, 64}).kernel_active);
}

TEST(BatchPipelineTest, LatencyStatsCoverEveryBatch) {
  const auto& txs = test_stream();
  const std::uint32_t batch = 128;
  const BatchRunState bat = run_batched("OptChain", 8, txs, {2, batch});
  const std::uint64_t expected_batches =
      (txs.size() + batch - 1) / batch;
  EXPECT_EQ(bat.stats.batches, expected_batches);
  EXPECT_GE(bat.stats.p50_us, 0.0);
  EXPECT_GE(bat.stats.p99_us, bat.stats.p50_us);
  EXPECT_GE(bat.stats.max_us, bat.stats.p99_us);
  EXPECT_GT(bat.stats.max_us, 0.0);
  // A generated UTXO stream has both kinds of transactions, so both
  // counters move and they account for every gathered (non-coinbase) tx.
  EXPECT_GT(bat.parallel_txs, 0u);
}

TEST(BatchPipelineTest, BatchOfOneDegeneratesToTheSequentialLoop) {
  const auto& txs = test_stream();
  const RunState seq = run_sequential("OptChain", 16, txs);
  const BatchRunState bat = run_batched("OptChain", 16, txs, {1, 1});
  expect_identical(seq, bat.pipeline, bat.outcome, "batch=1 jobs=1");
  EXPECT_EQ(bat.stats.batches, txs.size());
}

}  // namespace
}  // namespace optchain

// Tests for the shard-churn subsystem: ShardAssignment's active-set /
// migration API, the on_shard_change observer hook (firing order against
// BlockCommit events, parity with SimResult's migration accounting),
// retired shards never receiving placements, churn-sweep determinism at any
// --jobs, and the ShardScheduler affinity baseline.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/placement_pipeline.hpp"
#include "api/placer_registry.hpp"
#include "api/run_spec.hpp"
#include "api/scenario_spec.hpp"
#include "api/sweep_runner.hpp"
#include "common/json_writer.hpp"
#include "placement/shard_assignment.hpp"
#include "sim/fabric/fabric.hpp"
#include "sim/shard_churn.hpp"
#include "sim/sim_observer.hpp"
#include "workload/bitcoin_like_generator.hpp"

namespace optchain {
namespace {

// --------------------------------------------- ShardAssignment active set

TEST(ShardAssignmentChurnTest, AddAndRetireShards) {
  placement::ShardAssignment assignment(3);
  EXPECT_TRUE(assignment.all_active());
  EXPECT_EQ(assignment.active_count(), 3u);

  // 0:3 txs, 1:1 tx, 2:2 txs.
  const placement::ShardId plan[] = {0, 0, 0, 1, 2, 2};
  for (tx::TxIndex i = 0; i < 6; ++i) assignment.record(i, plan[i]);

  const placement::ShardId added = assignment.add_shard();
  EXPECT_EQ(added, 3u);
  EXPECT_EQ(assignment.k(), 4u);
  EXPECT_EQ(assignment.active_count(), 4u);
  EXPECT_EQ(assignment.least_loaded(), 3u);  // fresh shard is emptiest
  EXPECT_EQ(assignment.largest_active(), 0u);

  // Retire shard 0 into shard 1: records remap, sizes move wholesale.
  const std::uint64_t migrated = assignment.retire_shard(0, 1);
  EXPECT_EQ(migrated, 3u);
  EXPECT_FALSE(assignment.is_active(0));
  EXPECT_EQ(assignment.active_count(), 3u);
  EXPECT_FALSE(assignment.all_active());
  EXPECT_EQ(assignment.size_of(0), 0u);
  EXPECT_EQ(assignment.size_of(1), 4u);
  for (tx::TxIndex i = 0; i < 3; ++i) EXPECT_EQ(assignment.shard_of(i), 1u);
  EXPECT_EQ(assignment.shard_of(3), 1u);
  EXPECT_EQ(assignment.shard_of(4), 2u);

  // Active-set views skip the retired shard.
  EXPECT_EQ(assignment.least_loaded(), 3u);
  EXPECT_EQ(assignment.largest_active(), 1u);
  EXPECT_EQ(assignment.nth_active(0), 1u);
  EXPECT_EQ(assignment.nth_active(1), 2u);
  EXPECT_EQ(assignment.nth_active(2), 3u);
}

// ------------------------------------------------- simulation-level churn

/// Records shard-change and block-commit hooks as one interleaved sequence.
class ChurnRecorder final : public sim::SimObserver {
 public:
  struct Entry {
    char kind;  // 'C' = shard change, 'B' = block commit
    std::uint32_t shard;
    double time;
    bool joined;
    std::uint64_t migrated_txs;
    std::uint64_t migrated_utxos;

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  void on_block_commit(std::uint32_t shard, double time) override {
    entries.push_back({'B', shard, time, false, 0, 0});
  }
  void on_shard_change(std::uint32_t shard, double time, bool joined,
                       std::uint64_t migrated_txs,
                       std::uint64_t migrated_utxos) override {
    entries.push_back({'C', shard, time, joined, migrated_txs,
                       migrated_utxos});
  }

  std::vector<Entry> entries;
};

api::RunSpec churn_run_spec(const std::string& method) {
  api::RunSpec spec;
  spec.method = method;
  spec.num_shards = 6;
  spec.seed = 7;
  spec.rate_tps = 500.0;
  spec.commit_window_s = 2.0;
  spec.churn.events = {
      {1.0, sim::ChurnKind::kRemoveShard, sim::ShardChurnEvent::kAutoShard},
      {2.0, sim::ChurnKind::kAddShard, 0},
  };
  return spec;
}

std::vector<tx::Transaction> churn_stream() {
  workload::BitcoinLikeGenerator generator({}, 7);
  return generator.generate(2000);  // 4 s of issue at 500 tps
}

TEST(ChurnSimulationTest, ShardChangeHookFiresInTimeOrderWithMigration) {
  const auto txs = churn_stream();
  ChurnRecorder recorder;
  api::RunSpec spec = churn_run_spec("OptChain");
  spec.observers = {&recorder};
  const api::RunReport report = api::simulate(spec, txs);
  ASSERT_TRUE(report.sim.has_value());
  const sim::SimResult& result = *report.sim;
  EXPECT_TRUE(result.completed);

  // The two scripted changes fired, at exactly their scheduled times.
  std::vector<ChurnRecorder::Entry> changes;
  for (const auto& entry : recorder.entries) {
    if (entry.kind == 'C') changes.push_back(entry);
  }
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].time, 1.0);
  EXPECT_FALSE(changes[0].joined);
  EXPECT_GT(changes[0].migrated_txs, 0u);
  EXPECT_GT(changes[0].migrated_utxos, 0u);
  EXPECT_EQ(changes[1].time, 2.0);
  EXPECT_TRUE(changes[1].joined);
  EXPECT_EQ(changes[1].shard, 6u);  // appended after the initial 6
  EXPECT_EQ(changes[1].migrated_txs, 0u);

  // Hook parity: the engine's SimResult accounting equals what an external
  // observer collected on the same hooks.
  EXPECT_EQ(result.shard_changes, 2u);
  EXPECT_EQ(result.migrated_txs, changes[0].migrated_txs);
  EXPECT_EQ(result.migrated_utxos, changes[0].migrated_utxos);

  // Firing order versus BlockCommit: hooks fire inside event dispatch in
  // simulated-time order, so the interleaved sequence is time-monotonic —
  // every block before t=1.0 precedes the removal, every one after follows.
  double previous = 0.0;
  for (const auto& entry : recorder.entries) {
    EXPECT_GE(entry.time, previous);
    previous = entry.time;
  }

  // The retired shard never receives another placement: its final size is
  // exactly zero (records migrated away, placers skip it), while the added
  // shard picked up work.
  const std::uint32_t retired = changes[0].shard;
  ASSERT_EQ(result.final_shard_sizes.size(), 7u);
  EXPECT_EQ(result.final_shard_sizes[retired], 0u);
  EXPECT_GT(result.final_shard_sizes[6], 0u);
}

TEST(ChurnSimulationTest, ChurnRunsAreDeterministic) {
  const auto txs = churn_stream();
  for (const char* method : {"OptChain", "OmniLedger", "ShardScheduler"}) {
    ChurnRecorder first, second;
    api::RunSpec spec = churn_run_spec(method);
    spec.observers = {&first};
    const api::RunReport a = api::simulate(spec, txs);
    spec.observers = {&second};
    const api::RunReport b = api::simulate(spec, txs);
    EXPECT_EQ(first.entries, second.entries) << method;
    ASSERT_TRUE(a.sim.has_value() && b.sim.has_value());
    EXPECT_EQ(a.sim->total_events, b.sim->total_events) << method;
    EXPECT_EQ(a.shard_sizes, b.shard_sizes) << method;
    EXPECT_DOUBLE_EQ(a.sim->avg_latency_s, b.sim->avg_latency_s) << method;
  }
}

// ------------------------------------------------------- churn × fabric

TEST(ChurnFabricTest, RetiredShardHandoffSurvivesCongestedLossyLinks) {
  // A shard retires while deliveries ride the congested fabric preset —
  // constrained access links, queueing, and tail drops. Messages in flight
  // to the retiring shard at the churn barrier must land on the successor
  // (the engines remap shard-addressed events at the barrier), so the run
  // still drains, the retired shard ends empty, and the whole interaction
  // stays bit-identical between the engines.
  const auto txs = churn_stream();
  for (const std::uint32_t jobs : {0u, 4u}) {
    ChurnRecorder recorder;
    api::RunSpec spec = churn_run_spec("OptChain");
    spec.fabric = sim::fabric_preset("congested");
    // The preset's 5 Mbps links absorb this small stream; starve them
    // further so tail drops actually fire at the test's 500 tps.
    spec.fabric.link.bandwidth_bps = 1e6;
    spec.fabric.link.queue_bytes = 16 * 1024;
    spec.sim_jobs = jobs;
    spec.observers = {&recorder};
    const api::RunReport report = api::simulate(spec, txs);
    ASSERT_TRUE(report.sim.has_value());
    const sim::SimResult& result = *report.sim;
    EXPECT_TRUE(result.completed) << "jobs=" << jobs;
    EXPECT_EQ(result.committed_txs + result.aborted_txs, txs.size())
        << "jobs=" << jobs;

    // The lossy, bandwidth-limited path was actually exercised.
    EXPECT_GT(result.link_messages, 0u) << "jobs=" << jobs;
    EXPECT_GT(result.link_drops, 0u) << "jobs=" << jobs;

    // The bulk handoff happened and the retired shard saw no deliveries
    // afterwards: its records moved wholesale and its size stays zero.
    std::uint32_t retired = 0;
    bool saw_removal = false;
    for (const auto& entry : recorder.entries) {
      if (entry.kind == 'C' && !entry.joined) {
        retired = entry.shard;
        saw_removal = true;
        EXPECT_GT(entry.migrated_txs, 0u);
      }
    }
    ASSERT_TRUE(saw_removal);
    EXPECT_EQ(result.final_shard_sizes[retired], 0u) << "jobs=" << jobs;
  }

  // Cross-engine bit-identity of the full interaction, drops included.
  api::RunSpec spec = churn_run_spec("OptChain");
  spec.fabric = sim::fabric_preset("congested");
  spec.fabric.link.bandwidth_bps = 1e6;
  spec.fabric.link.queue_bytes = 16 * 1024;
  spec.sim_jobs = 0;
  const api::RunReport sequential = api::simulate(spec, txs);
  spec.sim_jobs = 4;
  const api::RunReport parallel = api::simulate(spec, txs);
  EXPECT_EQ(sequential.sim->committed_txs, parallel.sim->committed_txs);
  EXPECT_EQ(sequential.sim->total_events, parallel.sim->total_events);
  EXPECT_EQ(sequential.sim->link_messages, parallel.sim->link_messages);
  EXPECT_EQ(sequential.sim->link_drops, parallel.sim->link_drops);
  EXPECT_EQ(sequential.sim->migrated_txs, parallel.sim->migrated_txs);
  EXPECT_DOUBLE_EQ(sequential.sim->avg_latency_s,
                   parallel.sim->avg_latency_s);
  EXPECT_EQ(sequential.shard_sizes, parallel.shard_sizes);
}

// ----------------------------------------------- sweep-level determinism

TEST(ChurnSweepTest, ReportsAreBitIdenticalAtAnyJobCount) {
  api::ScenarioSpec spec;
  spec.name = "churn-test";
  spec.methods = {"OptChain", "OmniLedger", "ShardScheduler"};
  spec.shards = {4};
  spec.rates = {400.0};
  spec.seeds = {1, 2};
  spec.txs = 800;
  spec.commit_window_s = 2.0;
  spec.churn.events = {
      {0.5, sim::ChurnKind::kRemoveShard, sim::ShardChurnEvent::kAutoShard},
      {1.2, sim::ChurnKind::kAddShard, 0},
  };

  const api::SweepReport serial = api::SweepRunner({.jobs = 1}).run(spec);
  const api::SweepReport parallel = api::SweepRunner({.jobs = 4}).run(spec);
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());

  JsonWriter serial_json, parallel_json;
  serial.write_json(serial_json);
  parallel.write_json(parallel_json);
  const std::string json = serial_json.finish();
  EXPECT_EQ(json, parallel_json.finish());

  // The migration metrics are part of the emitted schema.
  EXPECT_NE(json.find("migrated_utxos"), std::string::npos);
  EXPECT_NE(json.find("shard_changes"), std::string::npos);
  EXPECT_NE(serial.to_csv().find("migrated_utxos_mean"), std::string::npos);
  for (const api::CellReport& cell : serial.cells) {
    EXPECT_DOUBLE_EQ(cell.shard_changes.mean, 2.0);
    EXPECT_GT(cell.migrated_txs.mean, 0.0);
  }
}

TEST(ChurnScenarioTest, ExpandRejectsChurnInPlacementMode) {
  api::ScenarioSpec spec;
  spec.mode = api::RunMode::kPlace;
  spec.txs = 100;
  spec.churn.events = {{1.0, sim::ChurnKind::kAddShard, 0}};
  EXPECT_THROW(spec.expand(), std::invalid_argument);
}

// ------------------------------------------------- ShardScheduler baseline

TEST(ShardSchedulerTest, RegisteredAndBalancesUnderPlacement) {
  EXPECT_TRUE(api::PlacerRegistry::instance().contains("ShardScheduler"));
  EXPECT_TRUE(api::PlacerRegistry::instance().contains("shardscheduler"));

  workload::BitcoinLikeGenerator generator({}, 11);
  const auto txs = generator.generate(4000);
  api::PlacementPipeline pipeline = api::make_pipeline("ShardScheduler", 8,
                                                       txs);
  const api::StreamOutcome outcome = pipeline.place_stream(txs);

  std::uint64_t placed = 0, largest = 0;
  std::uint32_t used = 0;
  for (const std::uint64_t size : outcome.shard_sizes) {
    placed += size;
    largest = std::max(largest, size);
    if (size > 0) ++used;
  }
  EXPECT_EQ(placed, txs.size());
  EXPECT_EQ(used, 8u);  // the load trigger spreads activity everywhere
  // The balance_factor=1.25 divert rule bounds the hottest shard near the
  // mean (slack for the trigger lagging one placement).
  EXPECT_LT(static_cast<double>(largest),
            1.35 * static_cast<double>(placed) / 8.0);
  // Affinity keeps it far from hash placement: clearly below OmniLedger's
  // ~99% cross fraction at 8 shards.
  EXPECT_LT(outcome.fraction(), 0.8);
}

}  // namespace
}  // namespace optchain

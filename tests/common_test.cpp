// Unit tests for src/common: RNG, hashing, histograms, tables, flags.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/hash.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace optchain {
namespace {

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(7);
  const std::uint64_t first = rng();
  rng();
  rng.reseed(7);
  EXPECT_EQ(rng(), first);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(42);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01MeanNearHalf) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(23);
  const double lambda = 4.0;
  double sum = 0.0;
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(lambda);
  EXPECT_NEAR(sum / kSamples, 1.0 / lambda, 0.01);
}

TEST(RngTest, ExponentialNonNegative) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(0.5), 0.0);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(37);
  const double p = 0.25;
  double sum = 0.0;
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.geometric(p));
  }
  // Mean of failures-before-success geometric is (1-p)/p = 3.
  EXPECT_NEAR(sum / kSamples, 3.0, 0.1);
}

TEST(RngTest, NormalMoments) {
  Rng rng(41);
  double sum = 0.0, sq = 0.0;
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

// ---------------------------------------------------------------- Zipf

TEST(ZipfSamplerTest, RangeRespected) {
  ZipfSampler zipf(2.0, 10);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t x = zipf.sample(rng);
    EXPECT_GE(x, 1u);
    EXPECT_LE(x, 10u);
  }
}

TEST(ZipfSamplerTest, SingletonSupport) {
  ZipfSampler zipf(2.5, 1);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 1u);
  EXPECT_DOUBLE_EQ(zipf.mean(), 1.0);
}

TEST(ZipfSamplerTest, HeavierAlphaConcentratesOnOne) {
  Rng rng(3);
  ZipfSampler light(1.2, 50), heavy(3.0, 50);
  int light_ones = 0, heavy_ones = 0;
  for (int i = 0; i < 5000; ++i) {
    if (light.sample(rng) == 1) ++light_ones;
    if (heavy.sample(rng) == 1) ++heavy_ones;
  }
  EXPECT_GT(heavy_ones, light_ones);
}

TEST(ZipfSamplerTest, EmpiricalMeanMatchesAnalytic) {
  ZipfSampler zipf(2.2, 24);
  Rng rng(4);
  double sum = 0.0;
  constexpr int kSamples = 60000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(zipf.sample(rng));
  }
  EXPECT_NEAR(sum / kSamples, zipf.mean(), 0.05);
}

// ---------------------------------------------------------------- Sha256

TEST(Sha256Test, EmptyStringVector) {
  // FIPS 180-4 test vector.
  EXPECT_EQ(Sha256::digest("").hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, AbcVector) {
  EXPECT_EQ(Sha256::digest("abc").hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockVector) {
  EXPECT_EQ(Sha256::digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
                .hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(hasher.finish().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Sha256 hasher;
  hasher.update("hello ");
  hasher.update("world");
  EXPECT_EQ(hasher.finish().hex(), Sha256::digest("hello world").hex());
}

TEST(Sha256Test, UpdateValueIsDeterministic) {
  Sha256 a, b;
  a.update_value(std::uint64_t{42});
  b.update_value(std::uint64_t{42});
  EXPECT_EQ(a.finish().hex(), b.finish().hex());
}

TEST(Sha256Test, Low64Differs) {
  EXPECT_NE(Sha256::digest("a").low64(), Sha256::digest("b").low64());
}

TEST(Sha256Test, ResetReusesObject) {
  Sha256 hasher;
  hasher.update("abc");
  const auto first = hasher.finish();
  hasher.reset();
  hasher.update("abc");
  EXPECT_EQ(hasher.finish(), first);
}

// ---------------------------------------------------------------- mix64/fnv

TEST(MixTest, Mix64IsInjectiveOnSmallRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(MixTest, Fnv1aKnownValue) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(fnv1a({}), 0xcbf29ce484222325ULL);
}

TEST(MixTest, Fnv1aDistinguishesInputs) {
  const std::uint8_t a[] = {1, 2, 3};
  const std::uint8_t b[] = {3, 2, 1};
  EXPECT_NE(fnv1a(a), fnv1a(b));
}

// ---------------------------------------------------------------- Histogram

TEST(IntHistogramTest, CountsAndTotal) {
  IntHistogram hist;
  hist.add(1);
  hist.add(1);
  hist.add(5, 3);
  EXPECT_EQ(hist.total(), 5u);
  EXPECT_EQ(hist.count_of(1), 2u);
  EXPECT_EQ(hist.count_of(5), 3u);
  EXPECT_EQ(hist.count_of(2), 0u);
  EXPECT_EQ(hist.max_value(), 5u);
}

TEST(IntHistogramTest, FractionBelow) {
  IntHistogram hist;
  for (std::uint64_t v : {0u, 1u, 1u, 2u, 3u}) hist.add(v);
  EXPECT_DOUBLE_EQ(hist.fraction_below(0), 0.0);
  EXPECT_DOUBLE_EQ(hist.fraction_below(2), 0.6);
  EXPECT_DOUBLE_EQ(hist.fraction_below(100), 1.0);
}

TEST(IntHistogramTest, CumulativeReachesOne) {
  IntHistogram hist;
  hist.add(2, 10);
  hist.add(7, 30);
  const auto cdf = hist.cumulative();
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf[0].second, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].second, 1.0);
}

TEST(IntHistogramTest, EmptyHistogram) {
  IntHistogram hist;
  EXPECT_EQ(hist.total(), 0u);
  EXPECT_EQ(hist.max_value(), 0u);
  EXPECT_DOUBLE_EQ(hist.fraction_below(10), 0.0);
  EXPECT_TRUE(hist.cumulative().empty());
}

TEST(SampleStatsTest, Moments) {
  SampleStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 10.0);
}

TEST(SampleStatsTest, Quantiles) {
  SampleStats stats;
  for (int i = 1; i <= 100; ++i) stats.add(i);
  EXPECT_DOUBLE_EQ(stats.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(stats.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(stats.quantile(0.0), 1.0);
}

TEST(SampleStatsTest, CdfAtThresholds) {
  SampleStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) stats.add(v);
  const auto cdf = stats.cdf_at({0.5, 2.0, 10.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.5);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
}

TEST(SampleStatsTest, AddAfterQuantileInvalidatesCache) {
  SampleStats stats;
  stats.add(1.0);
  EXPECT_DOUBLE_EQ(stats.quantile(1.0), 1.0);
  stats.add(5.0);
  EXPECT_DOUBLE_EQ(stats.quantile(1.0), 5.0);
}

// ---------------------------------------------------------------- TextTable

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"k", "value"});
  table.add_row({"4", "9.28 %"});
  table.add_row({"64", "21.65 %"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("k   value"), std::string::npos);
  EXPECT_NE(text.find("64  21.65 %"), std::string::npos);
}

TEST(TextTableTest, Formatters) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt_percent(0.0928, 2), "9.28 %");
  EXPECT_EQ(TextTable::fmt_int(-42), "-42");
}

TEST(TextTableTest, RowCount) {
  TextTable table({"a"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"x"});
  EXPECT_EQ(table.rows(), 1u);
}

TEST(TextTableTest, CsvBasic) {
  TextTable table({"k", "value"});
  table.add_row({"4", "9.28 %"});
  EXPECT_EQ(table.to_csv(), "k,value\n4,9.28 %\n");
}

TEST(TextTableTest, CsvEscapesSpecials) {
  TextTable table({"name", "note"});
  table.add_row({"a,b", "say \"hi\""});
  EXPECT_EQ(table.to_csv(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

// ---------------------------------------------------------------- Flags

TEST(FlagsTest, ParsesTypes) {
  const char* argv[] = {"prog", "--txs=1000", "--rate=2.5", "--verbose",
                        "--name=opt"};
  Flags flags(5, argv);
  EXPECT_EQ(flags.get_int("txs", 0), 1000);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 2.5);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_string("name", ""), "opt");
}

TEST(FlagsTest, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  Flags flags(1, argv);
  EXPECT_EQ(flags.get_int("txs", 77), 77);
  EXPECT_FALSE(flags.has("txs"));
}

TEST(FlagsTest, IntList) {
  const char* argv[] = {"prog", "--shards=4,8,16"};
  Flags flags(2, argv);
  const auto list = flags.get_int_list("shards", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], 4);
  EXPECT_EQ(list[2], 16);
}

TEST(FlagsTest, IntListFallback) {
  const char* argv[] = {"prog"};
  Flags flags(1, argv);
  const auto list = flags.get_int_list("shards", {1, 2});
  ASSERT_EQ(list.size(), 2u);
}

TEST(FlagsTest, IgnoresBenchmarkFlags) {
  const char* argv[] = {"prog", "--benchmark_filter=abc"};
  EXPECT_NO_THROW(Flags(2, argv));
}

TEST(FlagsTest, ThrowsOnMalformed) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Flags(2, argv), std::invalid_argument);
}

}  // namespace
}  // namespace optchain

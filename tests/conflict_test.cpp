// Double-spend conflicts and the OmniLedger abort path.
#include <gtest/gtest.h>

#include <memory>

#include "api/placement_pipeline.hpp"
#include "placement/random_placer.hpp"
#include "sim/simulation.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/conflict_injector.hpp"

namespace optchain {
namespace {

api::PlacementPipeline random_pipeline(std::uint32_t k) {
  return api::PlacementPipeline(k,
                                std::make_unique<placement::RandomPlacer>());
}

workload::ConflictStream conflicted_stream(std::size_t n, double rate,
                                           std::uint64_t seed = 3) {
  workload::BitcoinLikeGenerator generator({}, seed);
  return workload::inject_double_spends(generator.generate(n), rate,
                                        seed + 1);
}

sim::SimConfig conflict_config(std::uint32_t shards, double rate) {
  sim::SimConfig config;
  config.num_shards = shards;
  config.tx_rate_tps = rate;
  return config;
}

TEST(ConflictInjectorTest, ZeroRateChangesNothing) {
  workload::BitcoinLikeGenerator a({}, 5), b({}, 5);
  const auto original = a.generate(2000);
  const auto injected =
      workload::inject_double_spends(b.generate(2000), 0.0, 9);
  EXPECT_EQ(injected.num_conflicts, 0u);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i].txid(), injected.transactions[i].txid());
  }
}

TEST(ConflictInjectorTest, RateControlsConflictCount) {
  const auto stream = conflicted_stream(5000, 0.05);
  // ~5% of non-coinbase transactions; generous tolerance.
  EXPECT_GT(stream.num_conflicts, 150u);
  EXPECT_LT(stream.num_conflicts, 400u);
  std::uint64_t flagged = 0;
  for (const bool flag : stream.is_conflict) flagged += flag;
  EXPECT_EQ(flagged, stream.num_conflicts);
}

TEST(ConflictInjectorTest, ConflictsDuplicateEarlierInputs) {
  const auto stream = conflicted_stream(5000, 0.05);
  for (std::size_t i = 0; i < stream.transactions.size(); ++i) {
    if (!stream.is_conflict[i]) continue;
    const auto& conflict = stream.transactions[i];
    ASSERT_FALSE(conflict.inputs.empty());
    // Every input must reference an earlier transaction (TaN stays a DAG).
    for (const auto& in : conflict.inputs) EXPECT_LT(in.tx, conflict.index);
    // And some earlier non-conflict transaction spends the same outpoints.
    bool found_victim = false;
    for (std::size_t j = 0; j < i && !found_victim; ++j) {
      found_victim = !stream.is_conflict[j] &&
                     stream.transactions[j].inputs == conflict.inputs;
    }
    EXPECT_TRUE(found_victim) << "conflict " << i << " has no victim";
  }
}

TEST(ConflictSimTest, CleanStreamNeverAborts) {
  const auto stream = conflicted_stream(3000, 0.0);
  sim::Simulation simulation(conflict_config(4, 1500.0));
  auto pipeline = random_pipeline(4);
  const auto result = simulation.run(stream.transactions, pipeline);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.aborted_txs, 0u);
  EXPECT_EQ(result.committed_txs, stream.transactions.size());
}

TEST(ConflictSimTest, EveryTransactionResolvesOnce) {
  const auto stream = conflicted_stream(4000, 0.05);
  sim::Simulation simulation(conflict_config(8, 2000.0));
  auto pipeline = random_pipeline(8);
  const auto result = simulation.run(stream.transactions, pipeline);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.committed_txs + result.aborted_txs,
            stream.transactions.size());
  // At least one contender of every conflicting pair must abort.
  EXPECT_GE(result.aborted_txs, stream.num_conflicts);
  // And aborts stay bounded by both contenders of each pair.
  EXPECT_LE(result.aborted_txs, 2 * stream.num_conflicts);
}

TEST(ConflictSimTest, AbortsAlsoResolveUnderOptChain) {
  const auto stream = conflicted_stream(4000, 0.08);
  sim::Simulation simulation(conflict_config(8, 2000.0));
  auto pipeline = api::make_pipeline("OptChain", 8);
  const auto result = simulation.run(stream.transactions, pipeline);
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.aborted_txs, stream.num_conflicts);
  EXPECT_EQ(result.committed_txs + result.aborted_txs,
            stream.transactions.size());
}

TEST(ConflictSimTest, AbortsAlsoResolveUnderRapidChain) {
  const auto stream = conflicted_stream(3000, 0.05);
  sim::SimConfig config = conflict_config(4, 1500.0);
  config.protocol = sim::ProtocolMode::kRapidChain;
  sim::Simulation simulation(config);
  auto pipeline = random_pipeline(4);
  const auto result = simulation.run(stream.transactions, pipeline);
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.aborted_txs, stream.num_conflicts);
}

TEST(ConflictSimTest, DeterministicWithConflicts) {
  const auto stream = conflicted_stream(2500, 0.05);
  auto pipeline_a = random_pipeline(4);
  auto pipeline_b = random_pipeline(4);
  const auto a = sim::Simulation(conflict_config(4, 1200.0))
                     .run(stream.transactions, pipeline_a);
  const auto b = sim::Simulation(conflict_config(4, 1200.0))
                     .run(stream.transactions, pipeline_b);
  EXPECT_EQ(a.aborted_txs, b.aborted_txs);
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_DOUBLE_EQ(a.avg_latency_s, b.avg_latency_s);
}

// Property sweep: conservation across conflict rates.
class ConflictRateTest : public ::testing::TestWithParam<double> {};

TEST_P(ConflictRateTest, CommitPlusAbortEqualsTotal) {
  const double rate = GetParam();
  const auto stream = conflicted_stream(3000, rate, /*seed=*/17);
  sim::Simulation simulation(conflict_config(8, 1500.0));
  auto pipeline = random_pipeline(8);
  const auto result = simulation.run(stream.transactions, pipeline);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.committed_txs + result.aborted_txs,
            stream.transactions.size());
}

INSTANTIATE_TEST_SUITE_P(Rates, ConflictRateTest,
                         ::testing::Values(0.0, 0.01, 0.05, 0.1, 0.25));

}  // namespace
}  // namespace optchain

// Tests for the dynamic-workload layer (workload/dynamic_profile.hpp):
// rate-curve issue schedules, the DynamicTxSource decorator's pass-through
// equivalence golden (a constant-rate profile must be bit-identical to the
// undecorated stream, placement and simulation included), hotspot/spam
// injection with index remapping, and profile validation.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "api/run_spec.hpp"
#include "api/scenario_spec.hpp"
#include "api/sweep_runner.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/dynamic_profile.hpp"
#include "workload/tx_source.hpp"

namespace optchain::workload {
namespace {

constexpr std::uint64_t kSeed = 7;

std::vector<tx::Transaction> reference_stream(std::size_t n) {
  BitcoinLikeGenerator generator({}, kSeed);
  return generator.generate(n);
}

void expect_same_transaction(const tx::Transaction& a,
                             const tx::Transaction& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.inputs, b.inputs);
  EXPECT_EQ(a.outputs, b.outputs);
}

// ------------------------------------------------------------- rate curves

TEST(RateCurveTest, ConstantScheduleMatchesUniformExactly) {
  RateCurve curve;
  curve.constant(2000.0, 30.0);
  RateSchedule schedule(curve);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    // Bit-identical to the simulator's historical index/rate schedule.
    EXPECT_EQ(schedule.time_of(i), static_cast<double>(i) / 2000.0) << i;
  }
}

TEST(RateCurveTest, DefaultIssueTimeIsUniform) {
  GeneratorTxSource source({}, kSeed, 10);
  EXPECT_EQ(source.issue_time(0, 500.0), 0.0);
  EXPECT_EQ(source.issue_time(7, 500.0), 7.0 / 500.0);
}

TEST(RateCurveTest, StepCurveRollsOverAtPhaseBoundary) {
  RateCurve curve;
  curve.constant(100.0, 1.0).constant(200.0, 10.0);
  RateSchedule schedule(curve);
  EXPECT_EQ(schedule.time_of(0), 0.0);
  EXPECT_EQ(schedule.time_of(50), 0.5);
  // Arrival 100 would land exactly on the boundary (t = 1.0), which belongs
  // to the next phase: it arrives one 200 tps gap after the boundary.
  EXPECT_EQ(schedule.time_of(100), 1.0 + 1.0 / 200.0);
  EXPECT_EQ(schedule.time_of(101), 1.0 + 2.0 / 200.0);
}

TEST(RateCurveTest, RampTightensInterArrivalGaps) {
  RateCurve curve;
  curve.ramp(100.0, 1000.0, 10.0);
  RateSchedule schedule(curve);
  double previous = schedule.time_of(0);
  double previous_gap = 0.0;
  bool first_gap = true;
  for (std::uint64_t i = 1; i < 500; ++i) {
    const double t = schedule.time_of(i);
    const double gap = t - previous;
    EXPECT_GT(gap, 0.0);
    if (!first_gap) {
      EXPECT_LE(gap, previous_gap);  // rate only increases
    }
    first_gap = false;
    previous = t;
    previous_gap = gap;
  }
}

TEST(RateCurveTest, FlashCrowdDecaysTowardBaseline) {
  RateCurve curve;
  curve.flash_crowd(1000.0, 5000.0, 2.0, 100.0);
  EXPECT_DOUBLE_EQ(curve.rate_at(0.0), 5000.0);
  EXPECT_LT(curve.rate_at(10.0), 5000.0);
  EXPECT_NEAR(curve.rate_at(50.0), 1000.0, 1.0);
}

TEST(RateCurveTest, BuildersRejectNonPositiveParameters) {
  RateCurve curve;
  EXPECT_THROW(curve.constant(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(curve.constant(100.0, 0.0), std::invalid_argument);
  EXPECT_THROW(curve.ramp(-1.0, 10.0, 1.0), std::invalid_argument);
  EXPECT_THROW(curve.diurnal(100.0, -5.0, 10.0, 1.0), std::invalid_argument);
  EXPECT_THROW(curve.flash_crowd(100.0, 500.0, 0.0, 1.0),
               std::invalid_argument);
}

// --------------------------------------- pass-through equivalence goldens

TEST(DynamicTxSourceTest, InertProfilePassesThroughBitIdentical) {
  const auto reference = reference_stream(500);
  GeneratorTxSource inner({}, kSeed, 500);
  DynamicTxSource source(inner, DynamicProfile{}, kSeed);
  ASSERT_EQ(source.size_hint(), 500u);
  const auto decorated = materialize(source);
  ASSERT_EQ(decorated.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    expect_same_transaction(decorated[i], reference[i]);
  }
}

TEST(DynamicTxSourceTest, ConstantRateProfilePassesThroughBitIdentical) {
  const auto reference = reference_stream(400);
  GeneratorTxSource inner({}, kSeed, 400);
  DynamicProfile profile;
  profile.rate.constant(800.0, 1e9);
  DynamicTxSource source(inner, profile, kSeed);
  const auto decorated = materialize(source);
  ASSERT_EQ(decorated.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    expect_same_transaction(decorated[i], reference[i]);
  }
}

/// The decorator-equivalence golden of the engine: simulating through a
/// constant-rate DynamicTxSource is bit-identical to simulating the bare
/// stream — placement decisions, event counts, every latency metric.
TEST(DynamicTxSourceTest, ConstantRateSimulationIsBitIdentical) {
  const auto txs = reference_stream(600);
  for (const char* method : {"OptChain", "Greedy", "OmniLedger"}) {
    api::RunSpec spec;
    spec.method = method;
    spec.num_shards = 8;
    spec.seed = kSeed;
    spec.rate_tps = 300.0;
    spec.commit_window_s = 5.0;
    const api::RunReport baseline = api::simulate(spec, txs);

    SpanTxSource inner(txs);
    DynamicProfile profile;
    profile.rate.constant(300.0, 1e9);
    DynamicTxSource source(inner, profile, kSeed);
    const api::RunReport decorated = api::simulate(spec, source);

    ASSERT_TRUE(baseline.sim.has_value() && decorated.sim.has_value());
    EXPECT_EQ(decorated.cross, baseline.cross) << method;
    EXPECT_EQ(decorated.shard_sizes, baseline.shard_sizes) << method;
    EXPECT_EQ(decorated.sim->total_events, baseline.sim->total_events)
        << method;
    EXPECT_EQ(decorated.sim->committed_txs, baseline.sim->committed_txs);
    EXPECT_DOUBLE_EQ(decorated.sim->duration_s, baseline.sim->duration_s);
    EXPECT_DOUBLE_EQ(decorated.sim->avg_latency_s,
                     baseline.sim->avg_latency_s);
    EXPECT_DOUBLE_EQ(decorated.sim->max_latency_s,
                     baseline.sim->max_latency_s);
    EXPECT_EQ(decorated.sim->total_blocks, baseline.sim->total_blocks);
  }
}

TEST(DynamicTxSourceTest, ConstantRatePlacementIsBitIdentical) {
  const auto txs = reference_stream(600);
  api::RunSpec spec;
  spec.method = "Greedy";
  spec.num_shards = 8;
  spec.seed = kSeed;
  const api::RunReport baseline = api::place(spec, txs);

  SpanTxSource inner(txs);
  DynamicProfile profile;
  profile.rate.constant(800.0, 1e9);
  DynamicTxSource source(inner, profile, kSeed);
  const api::RunReport decorated = api::place(spec, source);

  EXPECT_EQ(decorated.total, baseline.total);
  EXPECT_EQ(decorated.cross, baseline.cross);
  EXPECT_EQ(decorated.shard_sizes, baseline.shard_sizes);
}

// ----------------------------------------------------- hotspot / injection

TEST(DynamicTxSourceTest, HotspotInjectionKeepsIndicesDenseAndRemapsInputs) {
  const std::size_t n = 2000;
  const auto reference = reference_stream(n);
  GeneratorTxSource inner({}, kSeed, n);
  DynamicProfile profile;
  profile.hotspot.injection_fraction = 0.2;
  profile.hotspot.hot_set_size = 16;
  profile.hotspot.rotation_interval = 300;
  DynamicTxSource source(inner, profile, kSeed);
  EXPECT_FALSE(source.size_hint().has_value());  // emitted length stochastic

  const auto decorated = materialize(source);
  EXPECT_GT(decorated.size(), n);  // injection only adds
  EXPECT_EQ(source.injected(), decorated.size() - n);
  // Injection cadence follows the credit accumulator: ~fraction per
  // pass-through transaction.
  EXPECT_NEAR(static_cast<double>(source.injected()),
              0.2 * static_cast<double>(n), 0.2 * n * 0.1 + 2.0);

  // Rebuild inner→outer: pass-through transactions are exactly those not
  // marked with the injected owner, in order.
  std::vector<std::size_t> inner_to_outer;
  for (std::size_t i = 0; i < decorated.size(); ++i) {
    EXPECT_EQ(decorated[i].index, i);  // dense outer indices
    const bool injected =
        decorated[i].outputs.size() == 1 &&
        decorated[i].outputs[0].owner == kInjectedOwner;
    if (injected) {
      // Injected spends reference earlier emitted transactions through
      // synthetic vouts disjoint from genuine outputs.
      for (const tx::OutPoint& input : decorated[i].inputs) {
        EXPECT_LT(input.tx, i);
        EXPECT_GE(input.vout, DynamicTxSource::kInjectedVoutBase);
      }
    } else {
      inner_to_outer.push_back(i);
    }
  }
  ASSERT_EQ(inner_to_outer.size(), n);

  // Every pass-through transaction carries the reference payload with its
  // inputs remapped through the same translation.
  for (std::size_t inner_idx = 0; inner_idx < n; ++inner_idx) {
    const tx::Transaction& original = reference[inner_idx];
    const tx::Transaction& mapped = decorated[inner_to_outer[inner_idx]];
    EXPECT_EQ(mapped.outputs, original.outputs);
    ASSERT_EQ(mapped.inputs.size(), original.inputs.size());
    for (std::size_t j = 0; j < original.inputs.size(); ++j) {
      EXPECT_EQ(mapped.inputs[j].tx, inner_to_outer[original.inputs[j].tx]);
      EXPECT_EQ(mapped.inputs[j].vout, original.inputs[j].vout);
    }
  }
}

TEST(DynamicTxSourceTest, SpamBurstFansOutOverHotParents) {
  const std::size_t n = 1500;
  GeneratorTxSource inner({}, kSeed, n);
  DynamicProfile profile;
  profile.hotspot.hot_set_size = 8;
  profile.hotspot.rotation_interval = 200;
  profile.bursts = {{500, 700, 1.0, 24}};
  DynamicTxSource source(inner, profile, kSeed);
  const auto decorated = materialize(source);

  std::uint64_t burst_injected = 0;
  for (const tx::Transaction& transaction : decorated) {
    const bool injected =
        transaction.outputs.size() == 1 &&
        transaction.outputs[0].owner == kInjectedOwner;
    if (!injected) continue;
    if (transaction.index >= 500 && transaction.index < 700 + 64) {
      EXPECT_EQ(transaction.inputs.size(), 24u);  // burst fan-out
      ++burst_injected;
    }
  }
  // intensity 1.0 over a 200-tx window ≈ one injected tx per pass-through.
  EXPECT_GT(burst_injected, 50u);
}

TEST(DynamicProfileTest, ValidateRejectsNonsense) {
  DynamicProfile negative;
  negative.hotspot.injection_fraction = -0.5;
  EXPECT_THROW(negative.validate(), std::invalid_argument);

  DynamicProfile no_hot_set;
  no_hot_set.hotspot.injection_fraction = 0.1;
  no_hot_set.hotspot.hot_set_size = 0;
  EXPECT_THROW(no_hot_set.validate(), std::invalid_argument);

  DynamicProfile inverted_burst;
  inverted_burst.bursts = {{100, 100, 0.5, 8}};
  EXPECT_THROW(inverted_burst.validate(), std::invalid_argument);

  DynamicProfile ok;
  ok.hotspot.injection_fraction = 0.1;
  ok.bursts = {{10, 20, 0.5, 8}};
  EXPECT_NO_THROW(ok.validate());
}

// ------------------------------------------------ scenario-layer plumbing

TEST(DynamicScenarioTest, ExpandRejectsDynamicWarmCombination) {
  api::ScenarioSpec spec;
  spec.mode = api::RunMode::kPlace;
  spec.txs = 100;
  spec.warm_ratio = 10;
  spec.dynamic.rate.constant(100.0, 10.0);
  EXPECT_THROW(spec.expand(), std::invalid_argument);
}

TEST(DynamicScenarioTest, ExpandCopiesProfileIntoCells) {
  api::ScenarioSpec spec;
  spec.txs = 50;
  spec.dynamic.rate.constant(100.0, 10.0).ramp(100.0, 200.0, 5.0);
  spec.dynamic.hotspot.injection_fraction = 0.05;
  const api::Sweep sweep = spec.expand();
  ASSERT_FALSE(sweep.cells.empty());
  EXPECT_EQ(sweep.cells[0].dynamic.rate.phases().size(), 2u);
  EXPECT_DOUBLE_EQ(sweep.cells[0].dynamic.hotspot.injection_fraction, 0.05);
}

TEST(DynamicScenarioTest, ZeroCellSweepFailsLoudly) {
  api::Sweep empty;
  empty.scenario = "empty";
  EXPECT_THROW(api::SweepRunner().run(empty), std::runtime_error);
}

}  // namespace
}  // namespace optchain::workload

// Cross-engine equivalence harness: a standing randomized property test for
// the repo's core determinism contract — the conservative parallel engine
// (sim/parallel/) produces a SimResult bit-identical to the sequential
// engine for *every* configuration, not just the hand-picked ones the other
// suites pin. Each case draws a small random ScenarioSpec-like operating
// point (placer × protocol × churn × re-partition × fabric preset ×
// sim_jobs × stream seed/length) from a fixed-seed PRNG, runs it through
// both engines, and asserts full-result equality. The draw sequence is
// deterministic, so a failure reproduces by case index; the SCOPED_TRACE
// string is the repro recipe. Runs under TSan in CI (label: threaded).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "api/run_spec.hpp"
#include "obs/run_tracer.hpp"
#include "sim/fabric/fabric.hpp"
#include "sim/shard_churn.hpp"
#include "workload/bitcoin_like_generator.hpp"

namespace optchain {
namespace {

constexpr int kCases = 28;  // ≥ 25 random specs (acceptance floor)

/// One randomly drawn operating point, printable as a repro recipe.
struct DrawnCase {
  std::string method;
  std::string fabric;
  sim::ProtocolMode protocol = sim::ProtocolMode::kOmniLedger;
  std::uint32_t shards = 0;
  std::uint32_t jobs = 0;
  std::uint64_t stream_seed = 0;
  std::size_t stream_length = 0;
  double rate_tps = 0.0;
  bool churn = false;
  bool repartition = false;

  std::string describe() const {
    return "method=" + method + " fabric=" + fabric + " protocol=" +
           (protocol == sim::ProtocolMode::kOmniLedger ? "omniledger"
                                                       : "rapidchain") +
           " shards=" + std::to_string(shards) +
           " jobs=" + std::to_string(jobs) +
           " seed=" + std::to_string(stream_seed) +
           " txs=" + std::to_string(stream_length) +
           " rate=" + std::to_string(rate_tps) +
           " churn=" + (churn ? "on" : "off") +
           " repartition=" + (repartition ? "on" : "off");
  }
};

template <typename T, std::size_t N>
const T& pick(std::mt19937_64& rng, const T (&options)[N]) {
  return options[std::uniform_int_distribution<std::size_t>(0, N - 1)(rng)];
}

DrawnCase draw(std::mt19937_64& rng) {
  // Online placers only: stream-dependent methods (Metis, Static) are a
  // placement-time concern, orthogonal to the engine under test.
  static const std::string kMethods[] = {
      "OptChain",   "T2S",         "Greedy",        "Fennel",
      "OmniLedger", "LeastLoaded", "ShardScheduler"};
  static const std::string kFabrics[] = {"off", "flat", "wan", "congested"};
  static const std::uint32_t kShards[] = {3, 4, 6, 8};
  static const std::uint32_t kJobs[] = {1, 2, 4};

  DrawnCase out;
  out.method = pick(rng, kMethods);
  out.fabric = pick(rng, kFabrics);
  out.protocol = std::bernoulli_distribution(0.5)(rng)
                     ? sim::ProtocolMode::kRapidChain
                     : sim::ProtocolMode::kOmniLedger;
  out.shards = pick(rng, kShards);
  out.jobs = pick(rng, kJobs);
  out.stream_seed = rng();
  out.stream_length =
      std::uniform_int_distribution<std::size_t>(600, 1800)(rng);
  out.rate_tps = std::uniform_real_distribution<double>(400.0, 1200.0)(rng);
  out.churn = std::bernoulli_distribution(0.5)(rng);
  out.repartition = std::bernoulli_distribution(0.5)(rng);
  return out;
}

api::RunSpec spec_of(const DrawnCase& drawn, std::mt19937_64& rng) {
  api::RunSpec spec;
  spec.method = drawn.method;
  spec.num_shards = drawn.shards;
  spec.seed = 1 + (drawn.stream_seed % 97);
  spec.rate_tps = drawn.rate_tps;
  spec.protocol = drawn.protocol;
  spec.commit_window_s = 2.0;
  spec.queue_sample_interval_s = 1.0;
  spec.fabric = sim::fabric_preset(drawn.fabric);
  const double issue_window_s =
      static_cast<double>(drawn.stream_length) / drawn.rate_tps;
  if (drawn.churn) {
    spec.churn.events = {
        {0.3 * issue_window_s, sim::ChurnKind::kRemoveShard,
         sim::ShardChurnEvent::kAutoShard},
        {0.6 * issue_window_s, sim::ChurnKind::kAddShard, 0},
    };
  }
  if (drawn.repartition) {
    spec.repartition.interval_s = std::uniform_real_distribution<double>(
        0.25 * issue_window_s, 0.5 * issue_window_s)(rng);
    static const std::uint64_t kBudgets[] = {0, 50, 200};
    spec.repartition.budget = pick(rng, kBudgets);
    static const std::uint64_t kWindows[] = {0, 400};
    spec.repartition.window = pick(rng, kWindows);
  }
  return spec;
}

/// Full-result equality; event_heap_peak is the one engine-specific field.
void expect_equivalent(const sim::SimResult& sequential,
                       const sim::SimResult& parallel) {
  EXPECT_EQ(parallel.placer_name, sequential.placer_name);
  EXPECT_EQ(parallel.total_txs, sequential.total_txs);
  EXPECT_EQ(parallel.cross_txs, sequential.cross_txs);
  EXPECT_EQ(parallel.committed_txs, sequential.committed_txs);
  EXPECT_EQ(parallel.aborted_txs, sequential.aborted_txs);
  EXPECT_EQ(parallel.completed, sequential.completed);
  EXPECT_EQ(parallel.total_blocks, sequential.total_blocks);
  EXPECT_EQ(parallel.total_events, sequential.total_events);
  EXPECT_DOUBLE_EQ(parallel.duration_s, sequential.duration_s);
  EXPECT_DOUBLE_EQ(parallel.throughput_tps, sequential.throughput_tps);
  EXPECT_DOUBLE_EQ(parallel.avg_latency_s, sequential.avg_latency_s);
  EXPECT_DOUBLE_EQ(parallel.max_latency_s, sequential.max_latency_s);
  EXPECT_EQ(parallel.shard_event_counts, sequential.shard_event_counts);
  EXPECT_EQ(parallel.final_shard_sizes, sequential.final_shard_sizes);
  EXPECT_EQ(parallel.shard_changes, sequential.shard_changes);
  EXPECT_EQ(parallel.migrated_txs, sequential.migrated_txs);
  EXPECT_EQ(parallel.migrated_utxos, sequential.migrated_utxos);
  EXPECT_EQ(parallel.repartition_events, sequential.repartition_events);
  EXPECT_EQ(parallel.repartition_migrated_txs,
            sequential.repartition_migrated_txs);
  EXPECT_EQ(parallel.repartition_migrated_utxos,
            sequential.repartition_migrated_utxos);
  EXPECT_EQ(parallel.repartition_deferred_txs,
            sequential.repartition_deferred_txs);
  EXPECT_EQ(parallel.link_messages, sequential.link_messages);
  EXPECT_EQ(parallel.link_drops, sequential.link_drops);
  EXPECT_DOUBLE_EQ(parallel.link_peak_backlog_s,
                   sequential.link_peak_backlog_s);
  EXPECT_EQ(parallel.latencies.count(), sequential.latencies.count());
  EXPECT_DOUBLE_EQ(parallel.latencies.average(),
                   sequential.latencies.average());
  EXPECT_DOUBLE_EQ(parallel.latencies.maximum(),
                   sequential.latencies.maximum());
  EXPECT_EQ(parallel.commits_per_window.counts(),
            sequential.commits_per_window.counts());

  const auto& seq_snaps = sequential.queue_tracker.snapshots();
  const auto& par_snaps = parallel.queue_tracker.snapshots();
  ASSERT_EQ(par_snaps.size(), seq_snaps.size());
  for (std::size_t i = 0; i < seq_snaps.size(); ++i) {
    EXPECT_DOUBLE_EQ(par_snaps[i].time, seq_snaps[i].time);
    EXPECT_EQ(par_snaps[i].max_queue, seq_snaps[i].max_queue);
    EXPECT_EQ(par_snaps[i].min_queue, seq_snaps[i].min_queue);
  }
}

/// A whole file as raw bytes (trace comparison).
std::string slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

TEST(EngineEquivalenceTest, RandomizedSpecsAreBitIdentical) {
  // Fixed master seed: the same kCases operating points every run, in every
  // environment. Bump the seed deliberately (never ambiently) to explore a
  // fresh region of the space.
  std::mt19937_64 rng(0x0C7C4A1A2026ull);
  const std::string trace_dir = ::testing::TempDir();
  for (int index = 0; index < kCases; ++index) {
    const DrawnCase drawn = draw(rng);
    SCOPED_TRACE("case " + std::to_string(index) + ": " + drawn.describe());

    workload::BitcoinLikeGenerator generator({}, drawn.stream_seed);
    const std::vector<tx::Transaction> txs =
        generator.generate(drawn.stream_length);

    // Every run carries an obs::RunTracer, so each case also pins
    // determinism rule 9: the captured .otrace must be byte-identical
    // across engines, not just the SimResult.
    const std::string seq_trace =
        trace_dir + "/equiv_seq_" + std::to_string(index) + ".otrace";
    const std::string par_trace =
        trace_dir + "/equiv_par_" + std::to_string(index) + ".otrace";

    api::RunSpec spec = spec_of(drawn, rng);
    obs::RunTracer seq_tracer(seq_trace);
    spec.observers = {&seq_tracer};
    spec.sim_jobs = 0;
    const api::RunReport sequential = api::simulate(spec, txs);
    seq_tracer.finish();

    obs::RunTracer par_tracer(par_trace);
    spec.observers = {&par_tracer};
    spec.sim_jobs = drawn.jobs;
    const api::RunReport parallel = api::simulate(spec, txs);
    par_tracer.finish();

    ASSERT_TRUE(sequential.sim.has_value());
    ASSERT_TRUE(parallel.sim.has_value());
    expect_equivalent(*sequential.sim, *parallel.sim);
    EXPECT_EQ(parallel.shard_sizes, sequential.shard_sizes);
    EXPECT_EQ(parallel.cross, sequential.cross);

    EXPECT_EQ(par_tracer.total(), seq_tracer.total());
    EXPECT_GT(seq_tracer.total(), 0u);
    EXPECT_EQ(slurp(par_trace), slurp(seq_trace))
        << "rule 9 violation: .otrace bytes differ across engines";
    std::filesystem::remove(seq_trace);
    std::filesystem::remove(par_trace);
  }
}

}  // namespace
}  // namespace optchain

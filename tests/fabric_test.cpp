// Link-fabric suite (sim/fabric/): config validation, the flat-identity
// contract (an enabled-but-degenerate fabric is bit-identical to the
// classic NetworkModel path), queue buildup / tail-drop accounting, jitter
// determinism, region-tier latency math, the tree-gossip fabric overload,
// and — the load-bearing one — bit-identity of congested-topology runs
// across the sequential engine and any parallel sim_jobs value.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/placement_pipeline.hpp"
#include "api/run_spec.hpp"
#include "sim/fabric/fabric.hpp"
#include "sim/parallel/parallel_simulation.hpp"
#include "sim/simulation.hpp"
#include "sim/tree_gossip.hpp"
#include "stats/metrics.hpp"
#include "workload/bitcoin_like_generator.hpp"

namespace optchain {
namespace {

using sim::FabricConfig;
using sim::LinkFabric;
using sim::NetworkConfig;
using sim::NetworkModel;
using sim::Position;
using sim::ProtocolMode;
using sim::parallel::ParallelSimulation;

constexpr std::uint64_t kStreamSeed = 20260808;
constexpr std::size_t kStreamLength = 2500;

std::vector<tx::Transaction> stream() {
  workload::BitcoinLikeGenerator generator({}, kStreamSeed);
  return generator.generate(kStreamLength);
}

sim::SimConfig base_config(ProtocolMode protocol) {
  sim::SimConfig config;
  config.num_shards = 8;
  config.tx_rate_tps = 1000.0;
  config.consensus.txs_per_block = 100;
  config.consensus.block_bytes = 50'000;
  config.consensus.committee_size = 64;
  config.queue_sample_interval_s = 1.0;
  config.commit_window_s = 10.0;
  config.protocol = protocol;
  return config;
}

sim::SimResult run_sequential(const sim::SimConfig& config,
                              const std::vector<tx::Transaction>& txs) {
  api::PlacementPipeline pipeline =
      api::make_pipeline("OptChain", config.num_shards, txs);
  sim::Simulation simulation(config);
  return simulation.run(txs, pipeline);
}

sim::SimResult run_parallel(const sim::SimConfig& config, std::uint32_t jobs,
                            const std::vector<tx::Transaction>& txs) {
  api::PlacementPipeline pipeline =
      api::make_pipeline("OptChain", config.num_shards, txs);
  ParallelSimulation simulation(config, jobs);
  return simulation.run(txs, pipeline);
}

/// The full bit-identity contract between two SimResults, link-fabric
/// accounting included. event_heap_peak is excluded as ever (per-group
/// heaps are shallower than one global heap by design).
void expect_bit_identical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(b.placer_name, a.placer_name);
  EXPECT_EQ(b.total_txs, a.total_txs);
  EXPECT_EQ(b.cross_txs, a.cross_txs);
  EXPECT_EQ(b.committed_txs, a.committed_txs);
  EXPECT_EQ(b.aborted_txs, a.aborted_txs);
  EXPECT_EQ(b.completed, a.completed);
  EXPECT_EQ(b.total_blocks, a.total_blocks);
  EXPECT_EQ(b.total_events, a.total_events);
  EXPECT_DOUBLE_EQ(b.duration_s, a.duration_s);
  EXPECT_DOUBLE_EQ(b.throughput_tps, a.throughput_tps);
  EXPECT_DOUBLE_EQ(b.avg_latency_s, a.avg_latency_s);
  EXPECT_DOUBLE_EQ(b.max_latency_s, a.max_latency_s);
  EXPECT_EQ(b.shard_event_counts, a.shard_event_counts);
  EXPECT_EQ(b.final_shard_sizes, a.final_shard_sizes);
  EXPECT_EQ(b.latencies.count(), a.latencies.count());
  EXPECT_DOUBLE_EQ(b.latencies.average(), a.latencies.average());
  EXPECT_DOUBLE_EQ(b.latencies.maximum(), a.latencies.maximum());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(b.latencies.quantile(q), a.latencies.quantile(q));
  }
  EXPECT_EQ(b.commits_per_window.counts(), a.commits_per_window.counts());
  EXPECT_EQ(b.queue_tracker.global_max(), a.queue_tracker.global_max());
  EXPECT_EQ(b.link_messages, a.link_messages);
  EXPECT_EQ(b.link_bytes, a.link_bytes);
  EXPECT_EQ(b.link_drops, a.link_drops);
  EXPECT_DOUBLE_EQ(b.link_queue_delay_s, a.link_queue_delay_s);
  EXPECT_DOUBLE_EQ(b.link_peak_backlog_s, a.link_peak_backlog_s);
}

// ----------------------------------------------------------- validation

TEST(FabricValidation, NetworkModelRejectsNonPositiveBandwidth) {
  EXPECT_THROW(NetworkModel({0.100, 0.050, 0.0}), std::invalid_argument);
  EXPECT_THROW(NetworkModel({0.100, 0.050, -20e6}), std::invalid_argument);
  EXPECT_NO_THROW(NetworkModel({0.100, 0.050, 20e6}));
}

TEST(FabricValidation, FabricConfigRejectsBrokenConfigs) {
  {
    FabricConfig config;  // disabled, but the bandwidth check still applies
    config.link.bandwidth_bps = 0.0;
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  {
    FabricConfig config;
    config.enabled = true;
    config.regions = 0;
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  {
    FabricConfig config;
    config.enabled = true;
    config.max_jitter_s = -0.01;
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  {
    FabricConfig config;
    config.enabled = true;
    config.straggler_fraction = 1.5;
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  {
    FabricConfig config;
    config.enabled = true;
    config.link.queue_bytes = 1024;
    config.retransmit_timeout_s = 0.0;  // finite queue needs a retry clock
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  EXPECT_NO_THROW(FabricConfig{}.validate());
}

TEST(FabricValidation, PresetsAreValidAndUnknownNamesThrow) {
  for (const char* name : {"off", "", "flat", "wan", "congested"}) {
    EXPECT_NO_THROW(sim::fabric_preset(name).validate()) << name;
  }
  EXPECT_FALSE(sim::fabric_preset("off").enabled);
  EXPECT_TRUE(sim::fabric_preset("congested").enabled);
  EXPECT_THROW(sim::fabric_preset("lan"), std::invalid_argument);
}

TEST(FabricValidation, ConstructionAndSimulationRejectInvalidConfigs) {
  const NetworkModel flat;
  FabricConfig config;
  config.enabled = true;
  config.intra_region_latency_s = -1.0;
  EXPECT_THROW(LinkFabric(config, flat, 42), std::invalid_argument);
  sim::SimConfig sim_config = base_config(ProtocolMode::kOmniLedger);
  sim_config.fabric = config;
  EXPECT_THROW(sim::Simulation{sim_config}, std::invalid_argument);
}

// -------------------------------------------------------- flat identity

TEST(FabricFlatIdentity, DegenerateFabricBitIdenticalToDisabled) {
  const auto txs = stream();
  for (const ProtocolMode protocol :
       {ProtocolMode::kOmniLedger, ProtocolMode::kRapidChain}) {
    sim::SimConfig disabled = base_config(protocol);
    const sim::SimResult golden = run_sequential(disabled, txs);

    sim::SimConfig flat = base_config(protocol);
    flat.fabric = sim::fabric_preset("flat");
    const sim::SimResult fabric = run_sequential(flat, txs);

    // Same engine outcome down to the last double; only the fabric's own
    // delivery accounting (zero when disabled) is allowed to differ.
    EXPECT_EQ(fabric.total_txs, golden.total_txs);
    EXPECT_EQ(fabric.cross_txs, golden.cross_txs);
    EXPECT_EQ(fabric.committed_txs, golden.committed_txs);
    EXPECT_EQ(fabric.aborted_txs, golden.aborted_txs);
    EXPECT_EQ(fabric.total_blocks, golden.total_blocks);
    EXPECT_EQ(fabric.total_events, golden.total_events);
    EXPECT_DOUBLE_EQ(fabric.duration_s, golden.duration_s);
    EXPECT_DOUBLE_EQ(fabric.throughput_tps, golden.throughput_tps);
    EXPECT_DOUBLE_EQ(fabric.avg_latency_s, golden.avg_latency_s);
    EXPECT_DOUBLE_EQ(fabric.max_latency_s, golden.max_latency_s);
    EXPECT_EQ(fabric.latencies.count(), golden.latencies.count());
    EXPECT_DOUBLE_EQ(fabric.latencies.average(), golden.latencies.average());
    EXPECT_EQ(fabric.commits_per_window.counts(),
              golden.commits_per_window.counts());
    EXPECT_EQ(fabric.final_shard_sizes, golden.final_shard_sizes);
    EXPECT_EQ(golden.link_messages, 0u);  // disabled fabric counts nothing
    EXPECT_GT(fabric.link_messages, 0u);
    EXPECT_EQ(fabric.link_drops, 0u);  // unconstrained queue never drops
  }
}

// --------------------------------------------------- queueing and drops

TEST(FabricQueueing, UplinkSerializesAndTailDrops) {
  // 8000 bps = 1000 bytes/s; a 1000-byte queue holds one second of backlog.
  FabricConfig config;
  config.enabled = true;
  config.link.bandwidth_bps = 8000.0;
  config.link.queue_bytes = 1000;
  config.retransmit_timeout_s = 2.0;
  config.intra_region_latency_s = 0.0;
  config.max_distance_latency_s = 0.0;
  const NetworkModel flat;
  LinkFabric fabric(config, flat, 7);
  fabric.add_endpoint();
  fabric.add_endpoint();
  const Position at{0.0, 0.0};

  // First send: empty uplink, pure serialization (500 bytes = 0.5 s).
  EXPECT_DOUBLE_EQ(fabric.message_delay(0.0, 0, 1, at, at, 500), 0.5);
  // Second send at the same instant queues behind it: 0.5 s wait + 0.5 s.
  EXPECT_DOUBLE_EQ(fabric.message_delay(0.0, 0, 1, at, at, 500), 1.0);
  // Third: 1.0 s of backlog = exactly queue_bytes — still admitted.
  EXPECT_DOUBLE_EQ(fabric.message_delay(0.0, 0, 1, at, at, 500), 1.5);
  EXPECT_EQ(fabric.stats().drops, 0u);
  // Fourth: 1.5 s of backlog > 1 s of queue — tail drop, retransmitted at
  // t = 2.0 where the uplink (busy until 1.5) has drained: 2.0 s of
  // retry-queueing plus its own 0.5 s serialization.
  EXPECT_DOUBLE_EQ(fabric.message_delay(0.0, 0, 1, at, at, 500), 2.5);
  EXPECT_EQ(fabric.stats().drops, 1u);
  EXPECT_DOUBLE_EQ(fabric.stats().peak_backlog_s, 1.0);

  // reset_state() returns the uplink to idle.
  fabric.reset_state();
  EXPECT_EQ(fabric.stats().drops, 0u);
  EXPECT_DOUBLE_EQ(fabric.message_delay(0.0, 0, 1, at, at, 500), 0.5);
}

TEST(FabricQueueing, CongestedSimulationAccountsDropsAndCompletes) {
  sim::SimConfig config = base_config(ProtocolMode::kOmniLedger);
  config.tx_rate_tps = 3000.0;
  config.fabric = sim::fabric_preset("congested");
  const sim::SimResult result = run_sequential(config, stream());
  EXPECT_TRUE(result.completed);  // retransmits delay, never deadlock
  EXPECT_GT(result.committed_txs, 0u);
  EXPECT_GT(result.link_messages, 0u);
  EXPECT_GT(result.link_bytes, 0u);
  EXPECT_GT(result.link_drops, 0u);  // 5 Mbps + 64 KiB queues must drop
  EXPECT_GT(result.link_queue_delay_s, 0.0);
  EXPECT_GT(result.link_peak_backlog_s, 0.0);
  // An admitted send's backlog never exceeds the queue capacity.
  const double queue_capacity_s =
      static_cast<double>(config.fabric.link.queue_bytes) * 8.0 /
      config.fabric.link.bandwidth_bps;
  EXPECT_LE(result.link_peak_backlog_s, queue_capacity_s);
}

// -------------------------------------------------- jitter determinism

TEST(FabricJitter, DrawsAreDeterministicPerSeedAndPair) {
  FabricConfig config;
  config.enabled = true;
  config.max_jitter_s = 0.010;
  const NetworkModel flat;
  LinkFabric a(config, flat, 42);
  LinkFabric b(config, flat, 42);
  LinkFabric other_seed(config, flat, 43);
  for (LinkFabric* fabric : {&a, &b, &other_seed}) {
    fabric->add_endpoint();
    fabric->add_endpoint();
  }
  const Position at{0.25, 0.75};
  double sum_a = 0.0, sum_b = 0.0, sum_other = 0.0;
  for (int i = 0; i < 8; ++i) {
    const double da = a.message_delay(0.0, 0, 1, at, at, 100);
    const double db = b.message_delay(0.0, 0, 1, at, at, 100);
    EXPECT_DOUBLE_EQ(da, db);  // same seed: the same stream, draw by draw
    sum_a += da;
    sum_b += db;
    sum_other += other_seed.message_delay(0.0, 0, 1, at, at, 100);
  }
  EXPECT_NE(sum_a, sum_other);  // different seed: a different stream
  EXPECT_DOUBLE_EQ(sum_a, sum_b);
}

TEST(FabricJitter, WanRunsAreReproducible) {
  sim::SimConfig config = base_config(ProtocolMode::kRapidChain);
  config.fabric = sim::fabric_preset("wan");
  const auto txs = stream();
  const sim::SimResult first = run_sequential(config, txs);
  const sim::SimResult second = run_sequential(config, txs);
  expect_bit_identical(first, second);
  EXPECT_GT(first.link_messages, 0u);
}

// ---------------------------------------------- parallel-engine identity

TEST(FabricParallel, CongestedTopologyBitIdenticalAtAnySimJobs) {
  const auto txs = stream();
  for (const ProtocolMode protocol :
       {ProtocolMode::kOmniLedger, ProtocolMode::kRapidChain}) {
    sim::SimConfig config = base_config(protocol);
    config.fabric = sim::fabric_preset("congested");
    const sim::SimResult sequential = run_sequential(config, txs);
    EXPECT_GT(sequential.link_drops, 0u);  // the topology actually bites
    for (const std::uint32_t jobs : {1u, 4u}) {
      const sim::SimResult parallel = run_parallel(config, jobs, txs);
      expect_bit_identical(sequential, parallel);
    }
  }
}

TEST(FabricParallel, WanTopologyBitIdenticalAtAnySimJobs) {
  const auto txs = stream();
  sim::SimConfig config = base_config(ProtocolMode::kOmniLedger);
  config.fabric = sim::fabric_preset("wan");
  const sim::SimResult sequential = run_sequential(config, txs);
  for (const std::uint32_t jobs : {1u, 4u}) {
    expect_bit_identical(sequential, run_parallel(config, jobs, txs));
  }
}

// -------------------------------------------------- region-tier latency

TEST(FabricRegions, TierLatencyMatchesTheTierNetworkModel) {
  FabricConfig config;
  config.enabled = true;
  config.regions = 4;
  config.intra_region_latency_s = 0.030;
  config.inter_region_latency_s = 0.180;
  config.max_distance_latency_s = 0.050;
  const NetworkModel flat;
  LinkFabric fabric(config, flat, 42);
  const std::uint32_t n = 16;
  for (std::uint32_t ep = 0; ep < n; ++ep) fabric.add_endpoint();

  const NetworkModel intra(
      {config.intra_region_latency_s, config.max_distance_latency_s,
       config.link.bandwidth_bps});
  const NetworkModel inter(
      {config.inter_region_latency_s, config.max_distance_latency_s,
       config.link.bandwidth_bps});
  const Position from{0.1, 0.2};
  const Position to{0.8, 0.9};

  bool saw_intra = false, saw_inter = false;
  for (std::uint32_t a = 0; a < n; ++a) {
    EXPECT_LT(fabric.region_of(a), config.regions);
    for (std::uint32_t b = 0; b < n; ++b) {
      const bool same = fabric.region_of(a) == fabric.region_of(b);
      (same ? saw_intra : saw_inter) = true;
      const NetworkModel& tier = same ? intra : inter;
      EXPECT_DOUBLE_EQ(fabric.propagation_delay(a, b, from, to),
                       tier.propagation_delay(from, to));
      // queue_bytes == 0: the stateless path is literally the tier model.
      EXPECT_DOUBLE_EQ(fabric.message_delay(0.0, a, b, from, to, 4096),
                       tier.message_delay(from, to, 4096));
    }
  }
  EXPECT_TRUE(saw_intra);  // 16 endpoints over 4 regions: both tiers exist
  EXPECT_TRUE(saw_inter);

  // Stragglers add their extra per touched endpoint, on top of the tier.
  config.straggler_fraction = 1.0;
  config.straggler_extra_s = 0.100;
  LinkFabric slow(config, flat, 42);
  slow.add_endpoint();
  slow.add_endpoint();
  EXPECT_TRUE(slow.is_straggler(0));
  EXPECT_DOUBLE_EQ(slow.propagation_delay(0, 1, from, to),
                   (slow.region_of(0) == slow.region_of(1) ? intra : inter)
                           .propagation_delay(from, to) +
                       2 * config.straggler_extra_s);
}

// ------------------------------------------------------------ tree gossip

TEST(FabricTreeGossip, DisabledAndDegenerateFabricMatchTheFlatOverload) {
  const NetworkModel network;
  sim::ConsensusConfig consensus;
  Rng rng(7);
  const Position leader = network.random_position(rng);
  std::vector<Position> validators;
  for (int i = 0; i < 30; ++i) {
    validators.push_back(network.random_position(rng));
  }
  const double flat_round = simulate_tree_gossip_round(
      network, leader, validators, consensus, consensus.txs_per_block);
  EXPECT_GT(flat_round, 0.0);

  const double off_round = simulate_tree_gossip_round(
      sim::fabric_preset("off"), network, leader, validators, consensus,
      consensus.txs_per_block, /*sim_seed=*/42);
  EXPECT_DOUBLE_EQ(off_round, flat_round);

  // The degenerate preset pays serialization through its (unconstrained)
  // links with the same arithmetic — the flat identity extends here too.
  const double degenerate_round = simulate_tree_gossip_round(
      sim::fabric_preset("flat"), network, leader, validators, consensus,
      consensus.txs_per_block, /*sim_seed=*/42);
  EXPECT_DOUBLE_EQ(degenerate_round, flat_round);
}

TEST(FabricTreeGossip, CongestedFabricSlowsTheRoundDeterministically) {
  const NetworkModel network;
  sim::ConsensusConfig consensus;
  Rng rng(11);
  const Position leader = network.random_position(rng);
  std::vector<Position> validators;
  for (int i = 0; i < 60; ++i) {
    validators.push_back(network.random_position(rng));
  }
  const auto run = [&] {
    return simulate_tree_gossip_round(sim::fabric_preset("congested"),
                                      network, leader, validators, consensus,
                                      consensus.txs_per_block,
                                      /*sim_seed=*/42);
  };
  const double first = run();
  EXPECT_GT(first, 0.0);
  EXPECT_DOUBLE_EQ(run(), first);  // fresh per-phase fabrics: reproducible
}

// ---------------------------------------------------- observer plumbing

TEST(FabricObserver, MetricsObserverSeesLinkSamples) {
  const auto txs = stream();
  api::RunSpec spec;
  spec.method = "OptChain";
  spec.num_shards = 8;
  spec.rate_tps = 2000.0;
  spec.queue_sample_interval_s = 1.0;
  spec.fabric = sim::fabric_preset("congested");
  stats::MetricsObserver observer;
  spec.observers = {&observer};
  const api::RunReport report = api::simulate(spec, txs);
  ASSERT_TRUE(report.sim.has_value());
  EXPECT_GT(observer.link_samples(), 0u);
  EXPECT_GT(observer.peak_backlog_s(), 0.0);
  // The observer holds the last sample's cumulative drop counters; drops
  // after the final sample are visible only in the run totals.
  EXPECT_LE(observer.link_drops(), report.sim->link_drops);
  EXPECT_GT(report.sim->link_drops, 0u);

  // A disabled fabric fires no link samples at all.
  stats::MetricsObserver quiet;
  spec.fabric = sim::fabric_preset("off");
  spec.observers = {&quiet};
  const api::RunReport flat_report = api::simulate(spec, txs);
  EXPECT_EQ(quiet.link_samples(), 0u);
  EXPECT_EQ(flat_report.sim->link_messages, 0u);
}

}  // namespace
}  // namespace optchain

// Failure injection: leader faults (view changes) and chronic shard
// slowdowns, and how placement strategies react to them.
#include <gtest/gtest.h>

#include <memory>

#include "api/placement_pipeline.hpp"
#include "placement/random_placer.hpp"
#include "sim/simulation.hpp"
#include "workload/bitcoin_like_generator.hpp"

namespace optchain::sim {
namespace {

/// Routes round-completion events to a standalone ShardNode.
struct ShardRouter final : EventHandler {
  explicit ShardRouter(ShardNode& node) : node(&node) {}
  void on_event(const Event& event) override {
    EXPECT_TRUE(node->route_round_event(event));
  }
  ShardNode* node;
};

/// Fresh hash-placement pipeline for k shards.
api::PlacementPipeline random_pipeline(std::uint32_t k) {
  return api::PlacementPipeline(k,
                                std::make_unique<placement::RandomPlacer>());
}

std::vector<tx::Transaction> stream(std::size_t n, std::uint64_t seed = 4) {
  workload::BitcoinLikeGenerator gen({}, seed);
  return gen.generate(n);
}

SimConfig base_config(std::uint32_t shards, double rate) {
  SimConfig config;
  config.num_shards = shards;
  config.tx_rate_tps = rate;
  return config;
}

TEST(ShardFaultsTest, ViewChangeExtendsRound) {
  EventQueue events;
  NetworkModel network;
  Rng rng(1);
  ConsensusModel model({}, network, {0.5, 0.5}, rng);
  const double base_round = model.round_duration(1);

  ShardFaults always_faulty;
  always_faulty.leader_fault_rate = 1.0;
  always_faulty.view_change_penalty_s = 7.0;
  double commit_time = 0.0;
  ShardNode shard(0, {0.5, 0.5}, std::move(model), events,
                  [&](std::uint32_t, const QueueItem&, SimTime t) {
                    commit_time = t;
                  },
                  always_faulty);
  ShardRouter router(shard);
  shard.enqueue(QueueItem{0, ItemKind::kSameShard});
  while (events.run_one(router)) {
  }
  EXPECT_NEAR(commit_time, base_round + 7.0, 1e-9);
  EXPECT_EQ(shard.view_changes(), 1u);
  // Clients observe the degraded round.
  EXPECT_NEAR(shard.last_round_duration(), base_round + 7.0, 1e-9);
}

TEST(ShardFaultsTest, SlowdownScalesRounds) {
  EventQueue events;
  NetworkModel network;
  Rng rng(2);
  ConsensusModel model({}, network, {0.5, 0.5}, rng);
  const double base_round = model.round_duration(1);

  ShardFaults slow;
  slow.slowdown = 3.0;
  double commit_time = 0.0;
  ShardNode shard(0, {0.5, 0.5}, std::move(model), events,
                  [&](std::uint32_t, const QueueItem&, SimTime t) {
                    commit_time = t;
                  },
                  slow);
  ShardRouter router(shard);
  shard.enqueue(QueueItem{0, ItemKind::kSameShard});
  while (events.run_one(router)) {
  }
  EXPECT_NEAR(commit_time, 3.0 * base_round, 1e-9);
}

TEST(FaultSimTest, CompletesUnderLeaderFaults) {
  const auto txs = stream(6000);
  SimConfig config = base_config(8, 2000.0);
  config.leader_fault_rate = 0.3;
  Simulation sim(config);
  auto pipeline = random_pipeline(8);
  const auto result = sim.run(txs, pipeline);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.committed_txs, txs.size());
}

TEST(FaultSimTest, FaultsRaiseLatency) {
  const auto txs = stream(8000);

  SimConfig clean = base_config(8, 2000.0);
  SimConfig faulty = clean;
  faulty.leader_fault_rate = 0.5;
  faulty.view_change_penalty_s = 8.0;
  auto pipeline_clean = random_pipeline(8);
  auto pipeline_faulty = random_pipeline(8);
  const auto clean_result = Simulation(clean).run(txs, pipeline_clean);
  const auto faulty_result = Simulation(faulty).run(txs, pipeline_faulty);
  EXPECT_GT(faulty_result.avg_latency_s, clean_result.avg_latency_s * 1.3);
}

TEST(FaultSimTest, DeterministicUnderFaults) {
  const auto txs = stream(4000);
  SimConfig config = base_config(4, 1500.0);
  config.leader_fault_rate = 0.2;
  auto pipeline_a = random_pipeline(4);
  auto pipeline_b = random_pipeline(4);
  const auto a = Simulation(config).run(txs, pipeline_a);
  const auto b = Simulation(config).run(txs, pipeline_b);
  EXPECT_DOUBLE_EQ(a.avg_latency_s, b.avg_latency_s);
  EXPECT_EQ(a.total_events, b.total_events);
}

TEST(FaultSimTest, OptChainRoutesAroundChronicallySlowShard) {
  // Shard 0 is 6x slower. OptChain's L2S term observes the longer rounds
  // and steers new chains elsewhere; random placement keeps hashing ~1/k
  // of the load into the degraded shard.
  const auto txs = stream(30000);
  SimConfig config = base_config(8, 3000.0);
  config.shard_slowdown = {6.0};

  auto optchain = api::make_pipeline("OptChain", 8);
  auto random = random_pipeline(8);
  const auto opt = Simulation(config).run(txs, optchain);
  const auto rnd = Simulation(config).run(txs, random);

  const double uniform_share = 1.0 / 8.0;
  const double opt_share =
      static_cast<double>(opt.final_shard_sizes[0]) /
      static_cast<double>(txs.size());
  const double rnd_share =
      static_cast<double>(rnd.final_shard_sizes[0]) /
      static_cast<double>(txs.size());
  EXPECT_NEAR(rnd_share, uniform_share, 0.02);   // hashing is oblivious
  EXPECT_LT(opt_share, uniform_share * 0.6);     // OptChain avoids shard 0
  // And it pays off end to end.
  EXPECT_LT(opt.avg_latency_s, rnd.avg_latency_s);
}

TEST(FaultSimTest, SlowShardOnlyHurtsLocally) {
  // With OptChain routing around it, a single slow shard must not collapse
  // the whole system's health.
  const auto txs = stream(20000);
  SimConfig config = base_config(8, 2000.0);
  config.shard_slowdown = {5.0};
  auto pipeline = api::make_pipeline("OptChain", 8);
  const auto result = Simulation(config).run(txs, pipeline);
  EXPECT_TRUE(result.completed);
  EXPECT_LT(result.avg_latency_s, 30.0);
}

}  // namespace
}  // namespace optchain::sim

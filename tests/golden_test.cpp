// Golden determinism tests for the million-transaction engine refactor.
//
// The typed-POD-event queue, the pooled T2S score store and the streaming
// TxSource path all promised *bit-identical* results to the closure-based /
// per-node-vector engine they replaced. These goldens were captured from the
// pre-refactor engine (PR 1 tree) with %.17g precision — every double
// round-trips exactly — for fixed seeds on both protocol modes and the
// OptChain / Greedy / T2S placers. Any event reordering, floating-point
// reassociation or divergent placement shows up here as a hard failure.
//
// If a future PR changes simulation semantics ON PURPOSE, re-capture these
// numbers and say so in the PR description; this suite exists to make silent
// drift impossible, not to freeze behavior forever.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/batch_pipeline.hpp"
#include "api/placement_pipeline.hpp"
#include "core/score_pool.hpp"
#include "core/t2s_scorer.hpp"
#include "sim/parallel/parallel_simulation.hpp"
#include "sim/simulation.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/tx_source.hpp"

namespace optchain {
namespace {

using sim::ProtocolMode;

constexpr std::uint64_t kStreamSeed = 20260729;
constexpr std::size_t kStreamLength = 3000;

std::vector<tx::Transaction> golden_stream() {
  workload::BitcoinLikeGenerator gen({}, kStreamSeed);
  return gen.generate(kStreamLength);
}

sim::SimConfig golden_config(ProtocolMode protocol) {
  sim::SimConfig config;
  config.num_shards = 8;
  config.tx_rate_tps = 1000.0;
  config.consensus.txs_per_block = 100;
  config.consensus.block_bytes = 50'000;
  config.consensus.committee_size = 64;
  config.queue_sample_interval_s = 1.0;
  config.commit_window_s = 10.0;
  config.protocol = protocol;
  return config;
}

struct SimGolden {
  const char* method;
  ProtocolMode protocol;
  std::uint64_t cross_txs;
  std::uint64_t committed_txs;
  std::uint64_t aborted_txs;
  std::uint64_t total_blocks;
  double duration_s;
  double throughput_tps;
  double avg_latency_s;
  double max_latency_s;
  std::uint64_t total_events;
  std::uint64_t shard0_size;
};

// Originally captured from the pre-refactor engine (std::function events,
// vector-of-vectors T2S store, materialized streams) at commit 17b789b.
// Re-captured for the parallel-engine PR: the content-keyed event tie-break
// and per-shard spawn RNG streams (sim/shard_spawn.hpp) deliberately change
// the draw order and simultaneous-event order, shifting shard geographies
// and therefore every timing-derived number. The new values pin the shared
// sequential/parallel semantics; tests/parallel_sim_test.cpp holds the
// parallel engine bit-identical to these same runs.
constexpr SimGolden kSimGoldens[] = {
    {"OptChain", ProtocolMode::kOmniLedger, 391, 3000, 0, 69,
     16.200536145047913, 185.17905661517398, 5.6366342502404292,
     13.338536145047913, 7908, 499},
    {"OptChain", ProtocolMode::kRapidChain, 391, 3000, 0, 69,
     16.200536145047913, 185.17905661517398, 5.636157778551528,
     13.338536145047913, 7908, 499},
    {"Greedy", ProtocolMode::kOmniLedger, 439, 3000, 0, 56,
     14.177539896835354, 211.6022964371729, 5.6856748547690925,
     11.536152977768634, 7477, 412},
    {"Greedy", ProtocolMode::kRapidChain, 439, 3000, 0, 56,
     14.161713163457454, 211.83877722796478, 5.6854532805018003,
     11.536152977768634, 7477, 412},
    {"T2S", ProtocolMode::kOmniLedger, 546, 3000, 0, 67,
     14.007444413156756, 214.17182974377491, 5.3095046500720269,
     12.003444413156757, 8210, 412},
    {"T2S", ProtocolMode::kRapidChain, 546, 3000, 0, 67,
     14.007444413156756, 214.17182974377491, 5.3095046500720269,
     12.003444413156757, 8210, 412},
};

class SimGoldenTest : public ::testing::TestWithParam<SimGolden> {};

TEST_P(SimGoldenTest, BitIdenticalToPreRefactorEngine) {
  const SimGolden& golden = GetParam();
  const auto txs = golden_stream();
  api::PlacementPipeline pipeline = api::make_pipeline(golden.method, 8, txs);
  sim::Simulation simulation(golden_config(golden.protocol));
  const sim::SimResult result = simulation.run(txs, pipeline);

  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.cross_txs, golden.cross_txs);
  EXPECT_EQ(result.committed_txs, golden.committed_txs);
  EXPECT_EQ(result.aborted_txs, golden.aborted_txs);
  EXPECT_EQ(result.total_blocks, golden.total_blocks);
  EXPECT_EQ(result.total_events, golden.total_events);
  // Bit-identical, not approximately-equal: the refactor preserved the exact
  // event order and arithmetic.
  EXPECT_DOUBLE_EQ(result.duration_s, golden.duration_s);
  EXPECT_DOUBLE_EQ(result.throughput_tps, golden.throughput_tps);
  EXPECT_DOUBLE_EQ(result.avg_latency_s, golden.avg_latency_s);
  EXPECT_DOUBLE_EQ(result.max_latency_s, golden.max_latency_s);
  ASSERT_FALSE(result.final_shard_sizes.empty());
  EXPECT_EQ(result.final_shard_sizes[0], golden.shard0_size);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimGoldenTest, ::testing::ValuesIn(kSimGoldens),
    [](const ::testing::TestParamInfo<SimGolden>& info) {
      return std::string(info.param.method) +
             (info.param.protocol == ProtocolMode::kOmniLedger ? "_omni"
                                                               : "_rapid");
    });

// The parallel engine is held to the *same* golden rows: not merely
// self-consistent with the sequential engine, but pinned to the captured
// bits. (event_heap_peak and shard0_size stay covered by the sequential
// variant; the peak is engine-specific, the shard sizes are checked for
// both engines via tests/parallel_sim_test.cpp.)
class ParallelSimGoldenTest : public ::testing::TestWithParam<SimGolden> {};

TEST_P(ParallelSimGoldenTest, ParallelEngineReproducesTheGoldenBits) {
  const SimGolden& golden = GetParam();
  const auto txs = golden_stream();
  api::PlacementPipeline pipeline = api::make_pipeline(golden.method, 8, txs);
  sim::parallel::ParallelSimulation simulation(golden_config(golden.protocol),
                                               /*jobs=*/4);
  const sim::SimResult result = simulation.run(txs, pipeline);

  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.cross_txs, golden.cross_txs);
  EXPECT_EQ(result.committed_txs, golden.committed_txs);
  EXPECT_EQ(result.aborted_txs, golden.aborted_txs);
  EXPECT_EQ(result.total_blocks, golden.total_blocks);
  EXPECT_EQ(result.total_events, golden.total_events);
  EXPECT_DOUBLE_EQ(result.duration_s, golden.duration_s);
  EXPECT_DOUBLE_EQ(result.throughput_tps, golden.throughput_tps);
  EXPECT_DOUBLE_EQ(result.avg_latency_s, golden.avg_latency_s);
  EXPECT_DOUBLE_EQ(result.max_latency_s, golden.max_latency_s);
  ASSERT_FALSE(result.final_shard_sizes.empty());
  EXPECT_EQ(result.final_shard_sizes[0], golden.shard0_size);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParallelSimGoldenTest, ::testing::ValuesIn(kSimGoldens),
    [](const ::testing::TestParamInfo<SimGolden>& info) {
      return std::string(info.param.method) +
             (info.param.protocol == ProtocolMode::kOmniLedger ? "_omni"
                                                               : "_rapid");
    });

// The streaming source path must issue the exact same stream (and therefore
// reproduce the same golden) without ever materializing it.
TEST(SimGoldenTest, GeneratorSourceMatchesMaterializedGolden) {
  const SimGolden& golden = kSimGoldens[0];  // OptChain / OmniLedger
  workload::GeneratorTxSource source({}, kStreamSeed, kStreamLength);
  api::PlacementPipeline pipeline = api::make_pipeline(
      golden.method, 8, {}, 1, {}, kStreamLength);
  sim::Simulation simulation(golden_config(golden.protocol));
  const sim::SimResult result = simulation.run(source, pipeline);
  EXPECT_EQ(result.total_events, golden.total_events);
  EXPECT_DOUBLE_EQ(result.duration_s, golden.duration_s);
  EXPECT_DOUBLE_EQ(result.avg_latency_s, golden.avg_latency_s);
  EXPECT_EQ(result.cross_txs, golden.cross_txs);
}

// ------------------------------------------------- placement-only goldens

struct PlaceGolden {
  const char* method;
  std::uint64_t total;
  std::uint64_t cross;
  std::uint64_t sizes0123[4];
};

constexpr PlaceGolden kPlaceGoldens[] = {
    {"OptChain", 2970, 364, {662, 327, 565, 247}},
    {"Greedy", 2970, 673, {205, 205, 205, 205}},
    {"T2S", 2970, 658, {205, 205, 205, 148}},
};

class PlaceGoldenTest : public ::testing::TestWithParam<PlaceGolden> {};

TEST_P(PlaceGoldenTest, PlacementBitIdenticalAt16Shards) {
  const PlaceGolden& golden = GetParam();
  const auto txs = golden_stream();
  api::PlacementPipeline pipeline = api::make_pipeline(golden.method, 16, txs);
  const api::StreamOutcome outcome = pipeline.place_stream(txs);
  EXPECT_EQ(outcome.total, golden.total);
  EXPECT_EQ(outcome.cross, golden.cross);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(outcome.shard_sizes[s], golden.sizes0123[s]) << "shard " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlaceGoldenTest, ::testing::ValuesIn(kPlaceGoldens),
    [](const ::testing::TestParamInfo<PlaceGolden>& info) {
      return std::string(info.param.method);
    });

// The micro-batched front-end (api/batch_pipeline.hpp) is held to the same
// captured placement bits at an adversarial jobs/batch combination: 4
// scoring workers on a 64-tx micro-batch, so the 3000-tx golden stream
// crosses dozens of batch barriers and every chained/independent split. The
// exhaustive batch-vs-sequential grid lives in tests/batch_pipeline_test.cpp;
// this pins the batched path to the pre-refactor golden bits specifically.
class BatchPlaceGoldenTest : public ::testing::TestWithParam<PlaceGolden> {};

TEST_P(BatchPlaceGoldenTest, BatchedFrontEndReproducesTheGoldenBits) {
  const PlaceGolden& golden = GetParam();
  const auto txs = golden_stream();
  api::PlacementPipeline pipeline = api::make_pipeline(golden.method, 16, txs);
  api::BatchPlacementPipeline batched(pipeline,
                                      {/*jobs=*/4, /*batch_txs=*/64});
  workload::SpanTxSource source(txs);
  const api::StreamOutcome outcome = batched.place_stream(source);
  EXPECT_EQ(outcome.total, golden.total);
  EXPECT_EQ(outcome.cross, golden.cross);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(outcome.shard_sizes[s], golden.sizes0123[s]) << "shard " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BatchPlaceGoldenTest, ::testing::ValuesIn(kPlaceGoldens),
    [](const ::testing::TestParamInfo<PlaceGolden>& info) {
      return std::string(info.param.method);
    });

// ------------------------------------------- pooled score store vs dense

// The ScorePool must reproduce the dense from-scratch recomputation exactly,
// including across page boundaries and slack-slot reuse — exercised with a
// pathologically small page so a 400-node run crosses pages hundreds of
// times.
TEST(ScorePoolGoldenTest, PooledVectorsMatchDenseRecomputation) {
  Rng rng(1234);
  graph::TanDag dag;
  placement::ShardAssignment assignment(8);
  core::T2sConfig config;
  config.prune_threshold = 0.0;  // exact comparison
  core::T2sScorer scorer(config);

  constexpr std::size_t kNodes = 400;
  std::vector<graph::NodeId> inputs;
  std::vector<double> scores;
  for (graph::NodeId u = 0; u < kNodes; ++u) {
    inputs.clear();
    if (u > 0) {
      const auto deg = static_cast<std::uint32_t>(rng.below(4));
      for (std::uint32_t i = 0; i < deg; ++i) {
        inputs.push_back(static_cast<graph::NodeId>(rng.below(u)));
      }
    }
    dag.add_node(inputs);
    scorer.score(dag, u, assignment, scores);
    const auto shard = static_cast<placement::ShardId>(rng.below(8));
    assignment.record(u, shard);
    scorer.commit(u, shard);
  }

  const auto dense = core::recompute_all_scores_dense(dag, assignment, config);
  for (graph::NodeId u = 0; u < kNodes; ++u) {
    std::vector<double> raw(8, 0.0);
    std::uint32_t last_shard = 0;
    bool first = true;
    for (const core::ScoreEntry& entry : scorer.raw_vector(u)) {
      // Pool vectors stay sorted by shard id (the merge invariant).
      EXPECT_TRUE(first || entry.shard > last_shard);
      first = false;
      last_shard = entry.shard;
      raw[entry.shard] = entry.value;
    }
    for (std::uint32_t i = 0; i < 8; ++i) {
      EXPECT_DOUBLE_EQ(raw[i], dense[u][i]) << "node " << u << " shard " << i;
    }
  }
}

// Direct ScorePool mechanics: page rollover, slack-slot insertion and
// reclamation, oversized runs.
TEST(ScorePoolTest, PagingAndSlackSlots) {
  core::ScorePool pool(/*page_entries=*/4);
  // Node 0: empty vector, commit inserts into the slack slot.
  pool.append_node({});
  pool.add_to_last(0, 2, 0.5);
  ASSERT_EQ(pool.vector_of(0).size(), 1u);
  EXPECT_EQ(pool.vector_of(0)[0].shard, 2u);
  EXPECT_DOUBLE_EQ(pool.vector_of(0)[0].value, 0.5);

  // Node 1: two entries; commit hits an existing shard (slack reclaimed by
  // the next append).
  const core::ScoreEntry two[] = {{1, 0.25}, {3, 0.125}};
  pool.append_node(two);
  pool.add_to_last(1, 3, 0.5);
  ASSERT_EQ(pool.vector_of(1).size(), 2u);
  EXPECT_DOUBLE_EQ(pool.vector_of(1)[1].value, 0.625);

  // Node 2: insertion in the middle, keeping shard order.
  const core::ScoreEntry ends[] = {{0, 0.1}, {7, 0.2}};
  pool.append_node(ends);
  pool.add_to_last(2, 4, 0.5);
  ASSERT_EQ(pool.vector_of(2).size(), 3u);
  EXPECT_EQ(pool.vector_of(2)[1].shard, 4u);
  EXPECT_DOUBLE_EQ(pool.vector_of(2)[1].value, 0.5);

  // Node 3: larger than a whole page (dedicated page).
  const core::ScoreEntry big[] = {{0, 1.0}, {1, 1.0}, {2, 1.0}, {3, 1.0},
                                  {4, 1.0}, {5, 1.0}};
  pool.append_node(big);
  pool.add_to_last(3, 6, 0.5);
  ASSERT_EQ(pool.vector_of(3).size(), 7u);
  EXPECT_EQ(pool.vector_of(3)[6].shard, 6u);

  // Earlier vectors must be untouched by later appends.
  EXPECT_EQ(pool.vector_of(0).size(), 1u);
  EXPECT_DOUBLE_EQ(pool.vector_of(1)[0].value, 0.25);
  EXPECT_EQ(pool.total_entries(), 1u + 2u + 3u + 7u);

  // Slot accounting: pages are 4-entry (node 3 got a dedicated 7-slot
  // page), the two closed pages hold 6 live entries in 8 slots (node 1's
  // unclaimed slack was reclaimed by node 2's append; the two tail gaps
  // from page rollover are the only permanent waste), and the live page is
  // full.
  EXPECT_EQ(pool.num_pages(), 3u);
  EXPECT_EQ(pool.used_slots(), pool.total_entries());
  EXPECT_EQ(pool.used_slots(), 13u);
  EXPECT_EQ(pool.slot_capacity(), 15u);
  EXPECT_EQ(pool.wasted_slots(), 2u);
  EXPECT_EQ(pool.slab_bytes(), 15u * sizeof(core::ScoreEntry));
}

// append_committed (the batched commit path) must produce bit-identical
// vectors to append_node + add_to_last (the tx-at-a-time path) while never
// reserving a slack slot.
TEST(ScorePoolTest, AppendCommittedMatchesAppendPlusCommit) {
  const core::ScoreEntry entries[] = {{0, 0.1}, {4, 0.2}, {9, 0.3}};
  // Shards hitting existing entries (0, 4, 9) and forcing front / middle /
  // back insertions (2, 11, and 0-before-anything is covered by node 0).
  const std::uint32_t shards[] = {0, 2, 4, 9, 11};
  constexpr double kAlpha = 0.5;

  core::ScorePool incremental(/*page_entries=*/4);
  core::ScorePool committed(/*page_entries=*/4);
  for (std::size_t i = 0; i < sizeof(shards) / sizeof(shards[0]); ++i) {
    incremental.append_node(entries);
    incremental.add_to_last(static_cast<std::uint32_t>(i), shards[i], kAlpha);
    committed.append_committed(entries, shards[i], kAlpha);
  }

  ASSERT_EQ(incremental.num_nodes(), committed.num_nodes());
  ASSERT_EQ(incremental.total_entries(), committed.total_entries());
  for (std::uint32_t node = 0; node < committed.num_nodes(); ++node) {
    const auto a = incremental.vector_of(node);
    const auto b = committed.vector_of(node);
    ASSERT_EQ(a.size(), b.size()) << "node " << node;
    for (std::size_t e = 0; e < a.size(); ++e) {
      EXPECT_EQ(a[e].shard, b[e].shard) << "node " << node;
      // Bitwise: x += α and x + α are the same operation on the same
      // operands.
      EXPECT_EQ(a[e].value, b[e].value) << "node " << node;
    }
  }

  // The committed pool carries no slack: every slot it ever allocated is a
  // live entry or a page-rollover tail gap. Runs are 3 or 4 entries on
  // 4-entry pages, so: p1 {3 of 4}, p2 {4 of 4}, p3 {3 of 4}, p4 {3 of 4},
  // p5 {4 of 4} = 17 used / 20 allocated / 3 wasted.
  EXPECT_EQ(committed.used_slots(), committed.total_entries());
  EXPECT_EQ(committed.total_entries(), 17u);
  EXPECT_EQ(committed.num_pages(), 5u);
  EXPECT_EQ(committed.slot_capacity(), 20u);
  EXPECT_EQ(committed.wasted_slots(), 3u);
  EXPECT_EQ(committed.slab_bytes(), 20u * sizeof(core::ScoreEntry));
}

}  // namespace
}  // namespace optchain

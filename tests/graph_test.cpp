// Unit tests for src/graph: TaN DAG storage, CSR conversion, degree stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "graph/csr.hpp"
#include "graph/dag.hpp"

namespace optchain::graph {
namespace {

std::vector<NodeId> ids(std::initializer_list<NodeId> list) { return list; }

TEST(TanDagTest, EmptyDag) {
  TanDag dag;
  EXPECT_EQ(dag.num_nodes(), 0u);
  EXPECT_EQ(dag.num_edges(), 0u);
}

TEST(TanDagTest, CoinbaseNodeHasNoInputs) {
  TanDag dag;
  const NodeId u = dag.add_node({});
  EXPECT_EQ(u, 0u);
  EXPECT_TRUE(dag.is_coinbase(u));
  EXPECT_EQ(dag.input_degree(u), 0u);
  EXPECT_EQ(dag.spender_count(u), 0u);
}

TEST(TanDagTest, EdgesRecordedBothDirections) {
  TanDag dag;
  dag.add_node({});                      // 0
  dag.add_node({});                      // 1
  const auto u = dag.add_node(ids({0, 1}));  // 2 spends 0 and 1
  EXPECT_EQ(dag.input_degree(u), 2u);
  EXPECT_EQ(dag.spender_count(0), 1u);
  EXPECT_EQ(dag.spender_count(1), 1u);
  const auto inputs = dag.inputs(u);
  EXPECT_EQ(std::vector<NodeId>(inputs.begin(), inputs.end()),
            ids({0, 1}));
}

TEST(TanDagTest, DuplicateInputsCollapse) {
  TanDag dag;
  dag.add_node({});
  const auto u = dag.add_node(ids({0, 0, 0}));
  EXPECT_EQ(dag.input_degree(u), 1u);
  EXPECT_EQ(dag.spender_count(0), 1u);
  EXPECT_EQ(dag.num_edges(), 1u);
}

TEST(TanDagTest, SpenderCountAccumulates) {
  TanDag dag;
  dag.add_node({});
  dag.add_node(ids({0}));
  dag.add_node(ids({0}));
  dag.add_node(ids({0}));
  EXPECT_EQ(dag.spender_count(0), 3u);
}

TEST(TanDagDeathTest, ForwardReferenceRejected) {
  TanDag dag;
  dag.add_node({});
  // Node 1 cannot reference itself (id 1 not yet assigned).
  EXPECT_DEATH(dag.add_node(ids({1})), "Precondition");
}

TEST(TanDagTest, ArrivalOrderIsTopological) {
  // Every edge must point to a strictly smaller id.
  Rng rng(7);
  TanDag dag;
  dag.add_node({});
  for (NodeId u = 1; u < 500; ++u) {
    std::vector<NodeId> inputs;
    const std::uint32_t deg = static_cast<std::uint32_t>(rng.below(3));
    for (std::uint32_t i = 0; i < deg; ++i) {
      inputs.push_back(static_cast<NodeId>(rng.below(u)));
    }
    dag.add_node(inputs);
  }
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (const NodeId v : dag.inputs(u)) EXPECT_LT(v, u);
  }
}

TEST(TanDagTest, UndirectedViewDoublesEdges) {
  TanDag dag;
  dag.add_node({});
  dag.add_node(ids({0}));
  dag.add_node(ids({0, 1}));
  const Csr undirected = dag.to_undirected();
  EXPECT_EQ(undirected.num_nodes(), 3u);
  EXPECT_EQ(undirected.num_entries(), 2 * dag.num_edges());
  // Node 0 is referenced by 1 and 2.
  EXPECT_EQ(undirected.degree(0), 2u);
  EXPECT_EQ(undirected.degree(2), 2u);
}

TEST(TanDagTest, SpendersViewMatchesCounts) {
  TanDag dag;
  dag.add_node({});
  dag.add_node(ids({0}));
  dag.add_node(ids({0}));
  const Csr spenders = dag.to_spenders();
  EXPECT_EQ(spenders.degree(0), 2u);
  EXPECT_EQ(spenders.degree(1), 0u);
  const auto list = spenders.neighbors(0);
  EXPECT_EQ(std::vector<std::uint32_t>(list.begin(), list.end()),
            (std::vector<std::uint32_t>{1, 2}));
}

TEST(TanDagTest, DegreeStats) {
  TanDag dag;
  dag.add_node({});          // coinbase, spent below
  dag.add_node({});          // coinbase, never spent AND no inputs: isolated
  dag.add_node(ids({0}));    // spends 0; its output never spent
  const TanDegreeStats stats = compute_degree_stats(dag);
  EXPECT_EQ(stats.nodes, 3u);
  EXPECT_EQ(stats.edges, 1u);
  EXPECT_EQ(stats.coinbase_nodes, 2u);
  EXPECT_EQ(stats.unspent_nodes, 2u);   // nodes 1 and 2
  EXPECT_EQ(stats.isolated_nodes, 1u);  // node 1
  EXPECT_NEAR(stats.average_degree, 1.0 / 3.0, 1e-12);
}

TEST(CsrTest, FromEdges) {
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> edges = {
      {0, 1}, {0, 2}, {2, 1}};
  const Csr csr = Csr::from_edges(3, edges);
  EXPECT_EQ(csr.num_nodes(), 3u);
  EXPECT_EQ(csr.num_entries(), 3u);
  EXPECT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.degree(1), 0u);
  EXPECT_EQ(csr.degree(2), 1u);
  EXPECT_EQ(csr.neighbors(0)[0], 1u);
  EXPECT_EQ(csr.neighbors(0)[1], 2u);
}

TEST(CsrTest, EmptyGraph) {
  const Csr csr = Csr::from_edges(0, {});
  EXPECT_EQ(csr.num_nodes(), 0u);
  EXPECT_EQ(csr.num_entries(), 0u);
}

TEST(CsrTest, NodesWithoutEdges) {
  const Csr csr = Csr::from_edges(5, {});
  EXPECT_EQ(csr.num_nodes(), 5u);
  for (std::uint32_t u = 0; u < 5; ++u) EXPECT_EQ(csr.degree(u), 0u);
}

// Property sweep: undirected view preserves the degree sum for random DAGs.
class TanDagPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TanDagPropertyTest, UndirectedDegreeSumEqualsTwiceEdges) {
  Rng rng(GetParam());
  TanDag dag;
  const std::size_t n = 200 + rng.below(300);
  dag.add_node({});
  for (NodeId u = 1; u < n; ++u) {
    std::vector<NodeId> inputs;
    const std::uint32_t deg = static_cast<std::uint32_t>(rng.below(4));
    for (std::uint32_t i = 0; i < deg; ++i) {
      inputs.push_back(static_cast<NodeId>(rng.below(u)));
    }
    dag.add_node(inputs);
  }
  const Csr undirected = dag.to_undirected();
  std::uint64_t degree_sum = 0;
  for (NodeId u = 0; u < undirected.num_nodes(); ++u) {
    degree_sum += undirected.degree(u);
  }
  EXPECT_EQ(degree_sum, 2 * dag.num_edges());

  // Spender counts must agree with the reverse CSR.
  const Csr spenders = dag.to_spenders();
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    EXPECT_EQ(spenders.degree(u), dag.spender_count(u));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TanDagPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace optchain::graph

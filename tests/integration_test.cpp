// End-to-end integration: the full pipeline (generator → TaN → placement →
// simulator → metrics) reproduces the paper's qualitative findings at test
// scale. These are the "shape" assertions behind Tables I-II and Figs. 3-10.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/placement_pipeline.hpp"
#include "core/optchain_placer.hpp"
#include "metis/kway_partitioner.hpp"
#include "sim/simulation.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/tan_builder.hpp"

namespace optchain {
namespace {

std::vector<tx::Transaction> stream(std::size_t n, std::uint64_t seed = 42) {
  workload::BitcoinLikeGenerator gen({}, seed);
  return gen.generate(n);
}

sim::SimConfig test_config(std::uint32_t shards, double rate) {
  // Paper-regime consensus (2000-tx blocks, 400-validator committees):
  // the L2S term is calibrated for backlogs measured in whole blocks, so
  // shrinking the block size distorts OptChain's behavior.
  sim::SimConfig config;
  config.num_shards = shards;
  config.tx_rate_tps = rate;
  config.queue_sample_interval_s = 2.0;
  config.commit_window_s = 10.0;
  return config;
}

/// Offline Metis partition of the full stream (the paper's oracle baseline).
std::vector<std::uint32_t> metis_partition(
    std::span<const tx::Transaction> txs, std::uint32_t k) {
  const graph::TanDag dag = workload::build_tan(txs);
  metis::PartitionConfig config;
  config.k = k;
  return metis::partition_kway(dag.to_undirected(), config);
}

struct MethodResult {
  double cross_fraction = 0.0;
  sim::SimResult sim;
};

std::map<std::string, MethodResult> run_all_methods(
    std::span<const tx::Transaction> txs, std::uint32_t k, double rate) {
  // Registry names: OmniLedger = random hashing; T2S = Table I's "T2S-based"
  // variant (no L2S term, ε-capped like Greedy).
  const std::map<std::string, std::string> methods{
      {"random", "OmniLedger"}, {"greedy", "Greedy"}, {"metis", "Metis"},
      {"optchain", "OptChain"}, {"t2s", "T2S"}};
  std::map<std::string, MethodResult> results;
  for (const auto& [label, method] : methods) {
    api::PlacementPipeline pipeline = api::make_pipeline(method, k, txs);
    sim::Simulation simulation(test_config(k, rate));
    MethodResult r;
    r.sim = simulation.run(txs, pipeline);
    r.cross_fraction = r.sim.cross_fraction();
    results[label] = std::move(r);
  }
  return results;
}

TEST(IntegrationTest, CrossTxOrderingMatchesTableOne) {
  // Table I's robust shape: the offline Metis oracle is the best
  // cross-TX minimizer, every informed method lands an order of magnitude
  // below random placement, and the T2S score stays in the paper's value
  // range. (The paper additionally measures Greedy well above T2S on the
  // real Bitcoin data; our synthetic stream's temporal communities flatter
  // Greedy on this metric — see EXPERIMENTS.md — while the simulation
  // figures still show Greedy losing on latency/throughput.)
  const auto txs = stream(60000);
  const auto results = run_all_methods(txs, 8, 3000.0);
  EXPECT_LT(results.at("metis").cross_fraction,
            results.at("t2s").cross_fraction);
  EXPECT_LT(results.at("t2s").cross_fraction,
            results.at("random").cross_fraction / 4.0);
  EXPECT_LT(results.at("greedy").cross_fraction,
            results.at("random").cross_fraction / 4.0);
  EXPECT_GT(results.at("random").cross_fraction, 0.6);
  // Paper Table I at k=8: T2S-based = 12.52%.
  EXPECT_LT(results.at("t2s").cross_fraction, 0.25);
  // Full OptChain still lands far below random placement.
  EXPECT_LT(results.at("optchain").cross_fraction,
            results.at("random").cross_fraction / 3.0);
}

TEST(IntegrationTest, OptChainCutsCrossTxByLargeFactor) {
  // Paper headline: up to 10x cross-TX reduction vs random placement.
  const auto txs = stream(20000);
  auto random = api::make_pipeline("OmniLedger", 16, txs);
  auto optchain = api::make_pipeline("OptChain", 16, txs);
  const auto r = sim::Simulation(test_config(16, 2000.0)).run(txs, random);
  const auto o = sim::Simulation(test_config(16, 2000.0)).run(txs, optchain);
  EXPECT_GT(r.cross_fraction(), 0.75);
  EXPECT_LT(o.cross_fraction(), r.cross_fraction() / 2.5);
}

TEST(IntegrationTest, OptChainBestLatencyUnderLoad) {
  // Fig. 8 shape: at a rate the baselines struggle with, OptChain's average
  // latency is the lowest.
  const auto txs = stream(60000);
  const auto results = run_all_methods(txs, 8, 4500.0);
  EXPECT_LT(results.at("optchain").sim.avg_latency_s,
            results.at("random").sim.avg_latency_s);
  EXPECT_LT(results.at("optchain").sim.avg_latency_s,
            results.at("greedy").sim.avg_latency_s);
  EXPECT_LT(results.at("optchain").sim.avg_latency_s,
            results.at("metis").sim.avg_latency_s);
}

TEST(IntegrationTest, MetisSuffersTemporalImbalance) {
  // Fig. 6 shape: Metis minimizes the cut but maps long consecutive runs of
  // the stream onto single shards, so its worst-case queue depth dwarfs
  // OptChain's. The contrast needs the paper's consensus regime (2000-tx
  // blocks, ~700 tps per shard): OptChain's L2S term only diverts once a
  // backlog is worth whole seconds, which toy block sizes never reach.
  const auto txs = stream(60000);
  sim::SimConfig config;  // paper-scale consensus defaults
  config.num_shards = 8;
  config.tx_rate_tps = 4500.0;
  config.queue_sample_interval_s = 1.0;

  auto metis_pipeline = api::make_pipeline("Metis", 8, txs);
  auto opt_pipeline = api::make_pipeline("OptChain", 8, txs);
  const auto metis_result =
      sim::Simulation(config).run(txs, metis_pipeline);
  const auto opt_result = sim::Simulation(config).run(txs, opt_pipeline);

  EXPECT_GT(static_cast<double>(metis_result.queue_tracker.global_max()),
            1.5 * static_cast<double>(opt_result.queue_tracker.global_max()));
}

TEST(IntegrationTest, OptChainShardSizesStayBalanced) {
  const auto txs = stream(30000);
  auto pipeline = api::make_pipeline("OptChain", 8, txs);
  const auto result =
      sim::Simulation(test_config(8, 3000.0)).run(txs, pipeline);
  std::uint64_t max_size = 0, min_size = UINT64_MAX;
  for (const auto s : result.final_shard_sizes) {
    max_size = std::max(max_size, s);
    min_size = std::min(min_size, s);
  }
  // OptChain's balance objective is *temporal* (queue sizes), not total
  // counts: affinity may concentrate counts, but never beyond a loose factor
  // while queues stay level.
  EXPECT_LT(static_cast<double>(max_size),
            6.0 * static_cast<double>(std::max<std::uint64_t>(min_size, 1)));
}

TEST(IntegrationTest, HigherShardCountReducesLatencyUnderLoad) {
  // Fig. 3 shape: at a fixed rate, more shards => lower average latency.
  const auto txs = stream(30000);
  auto pipeline_small = api::make_pipeline("OptChain", 4, txs);
  auto pipeline_large = api::make_pipeline("OptChain", 16, txs);
  const auto small =
      sim::Simulation(test_config(4, 3000.0)).run(txs, pipeline_small);
  const auto large =
      sim::Simulation(test_config(16, 3000.0)).run(txs, pipeline_large);
  EXPECT_LT(large.avg_latency_s, small.avg_latency_s);
}

TEST(IntegrationTest, WarmStartPlacementStillFavorsT2s) {
  // Table II setting: warm-start the assignment with a Metis partition of a
  // prefix, then place the remaining stream online. The method separation
  // needs a reasonably long placed window (Table II uses 1M transactions).
  const auto txs = stream(100000);
  const std::size_t warm = 60000;
  const std::uint32_t k = 8;

  // Offline partition of the warm prefix only.
  const auto prefix_parts = metis_partition(
      std::span<const tx::Transaction>(txs).subspan(0, warm), k);

  // The pipeline's warm-start handling: the prefix is force-placed per the
  // precomputed partition (choose() still runs so stateful placers build
  // their score vectors) and only the tail is counted.
  const auto run_tail = [&](const char* method) -> double {
    api::PlacementPipeline pipeline = api::make_pipeline(method, k, txs);
    return pipeline.place_stream(txs, prefix_parts).fraction();
  };

  const double t2s_cross = run_tail("T2S");
  const double greedy_cross = run_tail("Greedy");
  const double random_cross = run_tail("OmniLedger");

  EXPECT_LT(t2s_cross, greedy_cross);
  EXPECT_LT(greedy_cross, random_cross);
}

// OptChain placement must stay cheap: the average placement cost is O(k)
// sparse-entry work, far below a millisecond.
TEST(IntegrationTest, PlacementThroughputIsPractical) {
  const auto txs = stream(20000);
  api::PlacementPipeline pipeline(16, [](const graph::TanDag& dag) {
    core::OptChainConfig config;
    config.l2s_weight = 0.0;
    return std::make_unique<core::OptChainPlacer>(dag, config);
  });

  const auto start = std::chrono::steady_clock::now();
  for (const auto& transaction : txs) {
    pipeline.step(transaction);
  }
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  // 20k placements in well under 2 s even on slow CI hardware.
  EXPECT_LT(elapsed / static_cast<double>(txs.size()), 1e-4);
}

}  // namespace
}  // namespace optchain

// Tests for the L2S latency model: distribution helpers, expectations,
// quadrature, and the estimator's protocol semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "latency/l2s_model.hpp"
#include "latency/quadrature.hpp"

namespace optchain::latency {
namespace {

// -------------------------------------------------------------- quadrature

TEST(QuadratureTest, PolynomialExact) {
  // Simpson is exact for cubics.
  const double integral =
      integrate_simpson([](double x) { return x * x * x; }, 0.0, 2.0, 4);
  EXPECT_NEAR(integral, 4.0, 1e-12);
}

TEST(QuadratureTest, EmptyInterval) {
  EXPECT_DOUBLE_EQ(integrate_simpson([](double) { return 1.0; }, 1.0, 1.0),
                   0.0);
  EXPECT_DOUBLE_EQ(integrate_simpson([](double) { return 1.0; }, 2.0, 1.0),
                   0.0);
}

TEST(QuadratureTest, ExponentialTail) {
  // ∫₀^∞ e^(-t) dt = 1.
  const double integral =
      integrate_decaying([](double t) { return std::exp(-t); }, 1.0);
  EXPECT_NEAR(integral, 1.0, 1e-6);
}

TEST(QuadratureTest, OddSubintervalCountRoundsUp) {
  const double integral =
      integrate_simpson([](double x) { return x; }, 0.0, 1.0, 3);
  EXPECT_NEAR(integral, 0.5, 1e-12);
}

// -------------------------------------------------------------- two-phase

TEST(TwoPhaseTest, CdfIsMonotoneFromZeroToOne) {
  const ShardTiming timing{0.2, 1.5};
  EXPECT_DOUBLE_EQ(two_phase_cdf(timing, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(two_phase_cdf(timing, -1.0), 0.0);
  double prev = 0.0;
  for (double t = 0.1; t < 60.0; t += 0.5) {
    const double cur = two_phase_cdf(timing, t);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
  EXPECT_NEAR(two_phase_cdf(timing, 200.0), 1.0, 1e-9);
}

TEST(TwoPhaseTest, EqualRatesUseErlangBranch) {
  const ShardTiming timing{1.0, 1.0};
  // Erlang-2, rate 1: F(t) = 1 - e^-t (1 + t).
  for (double t : {0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(two_phase_cdf(timing, t),
                1.0 - std::exp(-t) * (1.0 + t), 1e-9);
  }
}

TEST(TwoPhaseTest, PdfIntegratesToOne) {
  const ShardTiming timing{0.3, 2.0};
  const double total = integrate_decaying(
      [&](double t) { return two_phase_pdf(timing, t); }, 2.3, 30.0, 2048);
  EXPECT_NEAR(total, 1.0, 1e-4);
}

TEST(TwoPhaseTest, PdfMatchesCdfDerivative) {
  const ShardTiming timing{0.4, 1.1};
  const double h = 1e-5;
  for (double t : {0.5, 1.0, 3.0}) {
    const double numeric =
        (two_phase_cdf(timing, t + h) - two_phase_cdf(timing, t - h)) /
        (2 * h);
    EXPECT_NEAR(two_phase_pdf(timing, t), numeric, 1e-5);
  }
}

TEST(TwoPhaseTest, MeanByQuadratureMatchesClosedForm) {
  const ShardTiming timing{0.25, 1.75};
  // E[T] = ∫ (1 - F(t)) dt.
  const double mean = integrate_decaying(
      [&](double t) { return 1.0 - two_phase_cdf(timing, t); }, 2.0, 30.0,
      2048);
  EXPECT_NEAR(mean, expected_two_phase(timing), 1e-6);
}

// -------------------------------------------------------------- E[max]

TEST(ExpectedMaxTest, EmptySetIsZero) {
  EXPECT_DOUBLE_EQ(expected_max_two_phase({}), 0.0);
}

TEST(ExpectedMaxTest, SingletonEqualsMean) {
  const ShardTiming timing{0.2, 1.0};
  const std::vector<ShardTiming> one{timing};
  EXPECT_NEAR(expected_max_two_phase(one), 1.2, 1e-9);
}

TEST(ExpectedMaxTest, MaxAtLeastEveryComponent) {
  const std::vector<ShardTiming> set{{0.1, 0.5}, {0.2, 3.0}, {0.1, 1.0}};
  const double max_mean = expected_max_two_phase(set);
  for (const auto& timing : set) {
    EXPECT_GE(max_mean, expected_two_phase(timing) - 1e-6);
  }
  // And at most the sum of means.
  double sum = 0.0;
  for (const auto& timing : set) sum += expected_two_phase(timing);
  EXPECT_LE(max_mean, sum);
}

TEST(ExpectedMaxTest, IdenticalShardsGrowWithCount) {
  const ShardTiming timing{0.1, 1.0};
  const double one = expected_max_two_phase(std::vector<ShardTiming>{timing});
  const double two =
      expected_max_two_phase(std::vector<ShardTiming>{timing, timing});
  const double four = expected_max_two_phase(
      std::vector<ShardTiming>{timing, timing, timing, timing});
  EXPECT_GT(two, one);
  EXPECT_GT(four, two);
}

TEST(ExpectedMaxTest, OrderInvariant) {
  const std::vector<ShardTiming> a{{0.1, 0.5}, {0.3, 2.0}};
  const std::vector<ShardTiming> b{{0.3, 2.0}, {0.1, 0.5}};
  EXPECT_NEAR(expected_max_two_phase(a), expected_max_two_phase(b), 1e-9);
}

// -------------------------------------------------------------- estimator

TEST(L2sEstimatorTest, SameShardSkipsProofPhase) {
  const std::vector<ShardTiming> timings{{0.1, 1.0}, {0.1, 5.0}};
  L2sEstimator estimator;
  // All inputs in shard 0, candidate 0: just one commit pass.
  const std::vector<std::uint32_t> inputs{0};
  EXPECT_NEAR(estimator.score(timings, inputs, 0), 1.1, 1e-9);
  // Candidate 1 is cross: proof from shard 0 plus commit at shard 1.
  const double cross = estimator.score(timings, inputs, 1);
  EXPECT_NEAR(cross, 1.1 + 5.1, 1e-6);
}

TEST(L2sEstimatorTest, CoinbaseUsesCandidateOnly) {
  const std::vector<ShardTiming> timings{{0.1, 1.0}, {0.1, 2.0}};
  L2sEstimator estimator;
  EXPECT_NEAR(estimator.score(timings, {}, 0), 1.1, 1e-9);
  EXPECT_NEAR(estimator.score(timings, {}, 1), 2.1, 1e-9);
}

TEST(L2sEstimatorTest, BusierShardScoresWorse) {
  const std::vector<ShardTiming> timings{{0.1, 1.0}, {0.1, 10.0}};
  L2sEstimator estimator;
  const std::vector<std::uint32_t> inputs{0, 1};  // cross either way
  EXPECT_LT(estimator.score(timings, inputs, 0),
            estimator.score(timings, inputs, 1));
}

TEST(L2sEstimatorTest, MonotoneInQueueBacklog) {
  // Growing mean_verify (deeper queue) must raise the score.
  L2sEstimator estimator;
  double prev = 0.0;
  for (double verify = 1.0; verify < 20.0; verify += 2.0) {
    const std::vector<ShardTiming> timings{{0.1, verify}};
    const double score = estimator.score(timings, {}, 0);
    EXPECT_GT(score, prev);
    prev = score;
  }
}

TEST(L2sEstimatorTest, ScoreAllMatchesScore) {
  const std::vector<ShardTiming> timings{
      {0.1, 1.0}, {0.2, 2.0}, {0.15, 4.0}};
  const std::vector<std::uint32_t> inputs{0, 2};
  L2sEstimator estimator;
  const auto all = estimator.score_all(timings, inputs);
  ASSERT_EQ(all.size(), timings.size());
  for (std::uint32_t j = 0; j < timings.size(); ++j) {
    EXPECT_NEAR(all[j], estimator.score(timings, inputs, j), 1e-9);
  }
}

TEST(L2sEstimatorTest, PaperSelfConvolutionMode) {
  const std::vector<ShardTiming> timings{{0.1, 1.0}, {0.1, 2.0}};
  const std::vector<std::uint32_t> inputs{0};
  L2sEstimator paper({L2sMode::kPaperSelfConvolution});
  // Cross placement at shard 1: E = 2 × E[proof gathering from shard 0].
  EXPECT_NEAR(paper.score(timings, inputs, 1), 2.0 * 1.1, 1e-6);
  // Same-shard behavior unchanged.
  EXPECT_NEAR(paper.score(timings, inputs, 0), 1.1, 1e-9);
}

TEST(L2sEstimatorTest, NonNegativeScores) {
  const std::vector<ShardTiming> timings{{1e-12, 1e-12}, {0.1, 1.0}};
  L2sEstimator estimator;
  const std::vector<std::uint32_t> inputs{0, 1};
  for (std::uint32_t j = 0; j < 2; ++j) {
    EXPECT_GE(estimator.score(timings, inputs, j), 0.0);
  }
}

// ------------------------------------------------ Monte-Carlo validation

/// Empirically samples the protocol's latency (draw l_c + l_v per shard,
/// take the max over input shards, add the commit phase) and compares the
/// mean against the quadrature-based estimator.
double monte_carlo_cross_latency(const std::vector<ShardTiming>& timings,
                                 const std::vector<std::uint32_t>& inputs,
                                 std::uint32_t candidate, int samples,
                                 std::uint64_t seed) {
  Rng rng(seed);
  double total = 0.0;
  for (int s = 0; s < samples; ++s) {
    double proof_phase = 0.0;
    for (const std::uint32_t shard : inputs) {
      const double t = rng.exponential(1.0 / timings[shard].mean_comm) +
                       rng.exponential(1.0 / timings[shard].mean_verify);
      proof_phase = std::max(proof_phase, t);
    }
    const double commit_phase =
        rng.exponential(1.0 / timings[candidate].mean_comm) +
        rng.exponential(1.0 / timings[candidate].mean_verify);
    total += proof_phase + commit_phase;
  }
  return total / samples;
}

TEST(L2sMonteCarloTest, QuadratureMatchesSimulation) {
  const std::vector<ShardTiming> timings{
      {0.12, 1.4}, {0.25, 3.3}, {0.08, 0.7}, {0.2, 2.0}};
  const std::vector<std::uint32_t> inputs{0, 1, 2};
  L2sEstimator estimator;
  for (std::uint32_t candidate : {1u, 3u}) {
    const double analytic = estimator.score(timings, inputs, candidate);
    const double empirical =
        monte_carlo_cross_latency(timings, inputs, candidate, 200000, 99);
    EXPECT_NEAR(analytic, empirical, 0.02 * analytic)
        << "candidate " << candidate;
  }
}

TEST(L2sMonteCarloTest, ExpectedMaxMatchesSimulation) {
  const std::vector<ShardTiming> set{{0.1, 0.9}, {0.3, 2.1}, {0.15, 1.2}};
  Rng rng(7);
  double total = 0.0;
  constexpr int kSamples = 200000;
  for (int s = 0; s < kSamples; ++s) {
    double worst = 0.0;
    for (const auto& timing : set) {
      worst = std::max(worst, rng.exponential(1.0 / timing.mean_comm) +
                                  rng.exponential(1.0 / timing.mean_verify));
    }
    total += worst;
  }
  const double empirical = total / kSamples;
  const double analytic = expected_max_two_phase(set);
  EXPECT_NEAR(analytic, empirical, 0.02 * analytic);
}

// Property sweep: E(j) for a cross placement always exceeds the same-shard
// expectation at the same shard.
class L2sPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(L2sPropertyTest, CrossAlwaysCostsMoreThanSameShard) {
  const int seed = GetParam();
  std::vector<ShardTiming> timings;
  for (int i = 0; i < 4; ++i) {
    timings.push_back({0.05 + 0.05 * ((seed + i) % 5),
                       0.5 + 0.7 * ((seed * 3 + i) % 7)});
  }
  L2sEstimator estimator;
  const std::vector<std::uint32_t> inputs{0, 1};
  for (std::uint32_t j = 0; j < timings.size(); ++j) {
    const double cross = estimator.score(timings, inputs, j);
    const double same = expected_two_phase(timings[j]);
    EXPECT_GT(cross, same);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, L2sPropertyTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace optchain::latency

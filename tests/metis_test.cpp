// Tests for the from-scratch multilevel k-way partitioner.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "graph/csr.hpp"
#include "metis/kway_partitioner.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/tan_builder.hpp"

namespace optchain::metis {
namespace {

using Edge = std::pair<std::uint32_t, std::uint32_t>;

graph::Csr undirected_from(std::size_t n, std::vector<Edge> edges) {
  std::vector<Edge> both;
  both.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    both.emplace_back(u, v);
    both.emplace_back(v, u);
  }
  return graph::Csr::from_edges(n, both);
}

/// Two K4 cliques joined by one bridge edge.
graph::Csr two_cliques() {
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = i + 1; j < 4; ++j) {
      edges.emplace_back(i, j);
      edges.emplace_back(i + 4, j + 4);
    }
  }
  edges.emplace_back(3, 4);  // bridge
  return undirected_from(8, edges);
}

TEST(KwayPartitionerTest, EmptyGraph) {
  const graph::Csr empty = graph::Csr::from_edges(0, {});
  EXPECT_TRUE(partition_kway(empty, {.k = 4}).empty());
}

TEST(KwayPartitionerTest, SinglePartIsTrivial) {
  const graph::Csr g = two_cliques();
  const auto parts = partition_kway(g, {.k = 1});
  for (const auto p : parts) EXPECT_EQ(p, 0u);
  EXPECT_EQ(edge_cut(g, parts), 0u);
}

TEST(KwayPartitionerTest, TwoCliquesSplitAtBridge) {
  const graph::Csr g = two_cliques();
  PartitionConfig config;
  config.k = 2;
  config.coarsen_target = 4;  // exercise coarsening even on a tiny graph
  const auto parts = partition_kway(g, config);
  ASSERT_EQ(parts.size(), 8u);
  // Each clique must be monochromatic and the cliques in different parts.
  for (std::uint32_t i = 1; i < 4; ++i) {
    EXPECT_EQ(parts[i], parts[0]);
    EXPECT_EQ(parts[i + 4], parts[4]);
  }
  EXPECT_NE(parts[0], parts[4]);
  EXPECT_EQ(edge_cut(g, parts), 1u);
}

TEST(KwayPartitionerTest, AllPartsInRange) {
  const graph::Csr g = two_cliques();
  for (std::uint32_t k : {2u, 3u, 4u}) {
    const auto parts = partition_kway(g, {.k = k});
    for (const auto p : parts) EXPECT_LT(p, k);
  }
}

TEST(KwayPartitionerTest, EveryNodeAssignedExactlyOnce) {
  const graph::Csr g = two_cliques();
  const auto parts = partition_kway(g, {.k = 2});
  EXPECT_EQ(parts.size(), g.num_nodes());
}

TEST(EdgeCutTest, KnownValues) {
  const graph::Csr g = two_cliques();
  // All in one part: no cut.
  EXPECT_EQ(edge_cut(g, std::vector<std::uint32_t>(8, 0)), 0u);
  // Alternating: cuts most edges.
  std::vector<std::uint32_t> alternating(8);
  for (std::size_t i = 0; i < 8; ++i) alternating[i] = i % 2;
  EXPECT_GT(edge_cut(g, alternating), 5u);
}

TEST(BalanceFactorTest, PerfectAndSkewed) {
  EXPECT_DOUBLE_EQ(balance_factor(std::vector<std::uint32_t>{0, 1, 0, 1}, 2),
                   1.0);
  EXPECT_DOUBLE_EQ(balance_factor(std::vector<std::uint32_t>{0, 0, 0, 1}, 2),
                   1.5);
}

// Property sweep: on generated TaN graphs the partitioner must (a) respect
// the balance constraint loosely, (b) beat random placement's cut, and
// (c) assign all nodes.
struct KwayCase {
  std::uint32_t k;
  std::uint64_t seed;
};

class KwayPropertyTest : public ::testing::TestWithParam<KwayCase> {};

TEST_P(KwayPropertyTest, BeatsRandomCutAndStaysBalanced) {
  const auto [k, seed] = GetParam();
  workload::BitcoinLikeGenerator gen({}, seed);
  const auto txs = gen.generate(4000);
  const graph::TanDag dag = workload::build_tan(txs);
  const graph::Csr undirected = dag.to_undirected();

  PartitionConfig config;
  config.k = k;
  config.seed = seed;
  const auto parts = partition_kway(undirected, config);
  ASSERT_EQ(parts.size(), undirected.num_nodes());
  for (const auto p : parts) ASSERT_LT(p, k);

  // Balance: within the (1+ε) bound plus slack for the coarsest granularity.
  EXPECT_LE(balance_factor(parts, k), 1.0 + config.imbalance + 0.15);

  // Cut quality: strictly better than hash-random assignment.
  Rng rng(seed);
  std::vector<std::uint32_t> random_parts(parts.size());
  for (auto& p : random_parts) {
    p = static_cast<std::uint32_t>(rng.below(k));
  }
  EXPECT_LT(edge_cut(undirected, parts),
            edge_cut(undirected, random_parts) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KwayPropertyTest,
    ::testing::Values(KwayCase{2, 1}, KwayCase{4, 1}, KwayCase{8, 1},
                      KwayCase{16, 1}, KwayCase{4, 2}, KwayCase{8, 3},
                      KwayCase{16, 4}, KwayCase{32, 5}),
    [](const ::testing::TestParamInfo<KwayCase>& param_info) {
      return "k" + std::to_string(param_info.param.k) + "_seed" +
             std::to_string(param_info.param.seed);
    });

TEST(KwayPartitionerTest, DeterministicForSameSeed) {
  workload::BitcoinLikeGenerator gen({}, 31);
  const auto txs = gen.generate(3000);
  const graph::Csr g = workload::build_tan(txs).to_undirected();
  const auto a = partition_kway(g, {.k = 8, .seed = 9});
  const auto b = partition_kway(g, {.k = 8, .seed = 9});
  EXPECT_EQ(a, b);
}

TEST(KwayPartitionerTest, PathGraphBisection) {
  // A path of 100 nodes: optimal bisection cuts exactly 1 edge.
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i + 1 < 100; ++i) edges.emplace_back(i, i + 1);
  const graph::Csr g = undirected_from(100, edges);
  const auto parts = partition_kway(g, {.k = 2, .seed = 3});
  const std::uint64_t cut = edge_cut(g, parts);
  EXPECT_LE(cut, 3u);  // multilevel heuristics may be slightly off-optimal
  EXPECT_LE(balance_factor(parts, 2), 1.25);
}

}  // namespace
}  // namespace optchain::metis
